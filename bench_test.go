package insidedropbox

// The benchmark harness regenerates every table and figure of the paper
// (one Benchmark per experiment) and reports the experiment's headline
// metric via b.ReportMetric, so `go test -bench=.` doubles as the
// reproduction run. Ablation benchmarks exercise the design choices called
// out in DESIGN.md: chunk bundling, the server initial window, data-center
// distance, delta encoding and LAN sync.

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"insidedropbox/internal/chunker"
	"insidedropbox/internal/classify"
	"insidedropbox/internal/deltasync"
	"insidedropbox/internal/dropbox"
	"insidedropbox/internal/experiments"
	"insidedropbox/internal/fleet"
	"insidedropbox/internal/flowmodel"
	"insidedropbox/internal/simrand"
	"insidedropbox/internal/traces"
	"insidedropbox/internal/workload"
)

var (
	benchOnce sync.Once
	benchCamp *experiments.Campaign
)

func benchCampaign(b *testing.B) *experiments.Campaign {
	b.Helper()
	benchOnce.Do(func() {
		benchCamp = experiments.RunCampaign(2012, experiments.SmallScale())
	})
	return benchCamp
}

// runExperiment benchmarks one campaign-level experiment and reports the
// chosen metric.
func runExperiment(b *testing.B, fn func(*experiments.Campaign) *experiments.Result, metric string) {
	c := benchCampaign(b)
	b.ResetTimer()
	var r *experiments.Result
	for i := 0; i < b.N; i++ {
		r = fn(c)
	}
	if v, ok := r.Metrics[metric]; ok {
		b.ReportMetric(v, metricUnit(metric))
	}
}

// metricUnit sanitizes a metric name into a ReportMetric-safe unit.
func metricUnit(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		switch c := name[i]; {
		case c == ' ' || c == '(' || c == ')':
			// drop
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1()
		if r.Text == "" {
			b.Fatal("empty")
		}
	}
}

func BenchmarkTable2(b *testing.B) { runExperiment(b, experiments.Table2, "gb_home1") }
func BenchmarkTable3(b *testing.B) { runExperiment(b, experiments.Table3, "devices_total") }

func BenchmarkTable4(b *testing.B) {
	var r *experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table4(77, 0.25)
	}
	b.ReportMetric(r.Metrics["after_avg_tp_retrieve"]/r.Metrics["before_avg_tp_retrieve"],
		"retrieve_tp_gain")
}

func BenchmarkTable5(b *testing.B) { runExperiment(b, experiments.Table5, "home1_Heavy_addr") }

func BenchmarkFigure1(b *testing.B) {
	var tb *experiments.TestbedResult
	for i := 0; i < b.N; i++ {
		var err error
		tb, err = experiments.RunTestbed(context.Background(), int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tb.Figure1.Metrics["messages"], "messages")
}

func BenchmarkFigure2(b *testing.B) { runExperiment(b, experiments.Figure2, "gdrive_first_day") }
func BenchmarkFigure3(b *testing.B) { runExperiment(b, experiments.Figure3, "ratio") }
func BenchmarkFigure4(b *testing.B) {
	runExperiment(b, experiments.Figure4, "bytes_home1_Client (storage)")
}
func BenchmarkFigure5(b *testing.B)  { runExperiment(b, experiments.Figure5, "avg_servers_home1") }
func BenchmarkFigure6(b *testing.B)  { runExperiment(b, experiments.Figure6, "storage_median_campus1") }
func BenchmarkFigure7(b *testing.B)  { runExperiment(b, experiments.Figure7, "store_le100k_home1") }
func BenchmarkFigure8(b *testing.B)  { runExperiment(b, experiments.Figure8, "store_le10_home1") }
func BenchmarkFigure11(b *testing.B) { runExperiment(b, experiments.Figure11, "dl_ul_ratio_home1") }
func BenchmarkFigure12(b *testing.B) { runExperiment(b, experiments.Figure12, "frac1_home1") }
func BenchmarkFigure13(b *testing.B) { runExperiment(b, experiments.Figure13, "frac_ge5_campus1") }
func BenchmarkFigure14(b *testing.B) { runExperiment(b, experiments.Figure14, "avg_frac_home1") }
func BenchmarkFigure15(b *testing.B) {
	runExperiment(b, experiments.Figure15, "startup_peak_hour_home1")
}
func BenchmarkFigure16(b *testing.B) { runExperiment(b, experiments.Figure16, "sub_minute_home1") }
func BenchmarkFigure17(b *testing.B) { runExperiment(b, experiments.Figure17, "up_le10k_home1") }
func BenchmarkFigure18(b *testing.B) { runExperiment(b, experiments.Figure18, "gt10M_home1") }
func BenchmarkFigure20(b *testing.B) { runExperiment(b, experiments.Figure20, "retrieve_flows") }
func BenchmarkFigure21(b *testing.B) { runExperiment(b, experiments.Figure21, "store_median_home1") }

func BenchmarkFigure9And10(b *testing.B) {
	var fig9 *experiments.Result
	for i := 0; i < b.N; i++ {
		store := experiments.QuickPacketLab(false)
		retr := experiments.QuickPacketLab(true)
		store.Seed = int64(i) + 1
		retr.Seed = int64(i) + 1001
		var err error
		fig9, _, err = experiments.RunPacketLabs(context.Background(), store, retr)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fig9.Metrics["avg_tp_store"], "avg_store_bps")
	b.ReportMetric(fig9.Metrics["avg_tp_retrieve"], "avg_retrieve_bps")
}

func BenchmarkFigure19(b *testing.B) {
	var tb *experiments.TestbedResult
	for i := 0; i < b.N; i++ {
		var err error
		tb, err = experiments.RunTestbed(context.Background(), int64(i)+50)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tb.Figure19.Metrics["captured_packets"], "packets")
}

// ---------- ablations ----------

// BenchmarkAblationBundling sweeps the per-chunk acknowledgment penalty:
// the same 2 MB payload as 1..64 chunks, v1.2.52 versus v1.4.0.
func BenchmarkAblationBundling(b *testing.B) {
	rng := simrand.New(1, "ablate")
	rtt := 90 * time.Millisecond
	var last float64
	for i := 0; i < b.N; i++ {
		for _, chunks := range []int{1, 4, 16, 64} {
			wires := make([]int, chunks)
			for j := range wires {
				wires[j] = 2 << 20 / chunks
			}
			for _, v := range []dropbox.Version{dropbox.V1252, dropbox.V140} {
				p := flowmodel.DefaultParams(rtt)
				p.Version = v
				rec := flowmodel.Synthesize(rng, p, flowmodel.StorageFlowSpec{
					Dir: classify.DirStore, ChunkWires: wires,
				})
				last = classify.TransferDuration(rec, classify.DirStore).Seconds()
			}
		}
	}
	b.ReportMetric(last, "last_dur_s")
}

// BenchmarkAblationIW sweeps the server initial window: the handshake RTT
// penalty the paper saw fixed after 1.4.0.
func BenchmarkAblationIW(b *testing.B) {
	rng := simrand.New(2, "ablate")
	var dur2, dur3 float64
	for i := 0; i < b.N; i++ {
		for _, iw := range []int{2, 3, 10} {
			p := flowmodel.DefaultParams(90 * time.Millisecond)
			p.IW = iw
			rec := flowmodel.Synthesize(rng, p, flowmodel.StorageFlowSpec{
				Dir: classify.DirStore, ChunkWires: []int{50 << 10},
			})
			d := classify.TransferDuration(rec, classify.DirStore).Seconds()
			switch iw {
			case 2:
				dur2 = d
			case 3:
				dur3 = d
			}
		}
	}
	b.ReportMetric(dur2-dur3, "iw2_extra_s")
}

// BenchmarkAblationRTT sweeps the client/data-center distance: the paper's
// "bring storage servers closer" recommendation.
func BenchmarkAblationRTT(b *testing.B) {
	rng := simrand.New(3, "ablate")
	var near, far float64
	for i := 0; i < b.N; i++ {
		for _, rtt := range []time.Duration{10 * time.Millisecond, 90 * time.Millisecond} {
			p := flowmodel.DefaultParams(rtt)
			wires := make([]int, 20)
			for j := range wires {
				wires[j] = 100 << 10
			}
			rec := flowmodel.Synthesize(rng, p, flowmodel.StorageFlowSpec{
				Dir: classify.DirStore, ChunkWires: wires,
			})
			tp := classify.Throughput(rec, classify.DirStore)
			if rtt == 10*time.Millisecond {
				near = tp
			} else {
				far = tp
			}
		}
	}
	b.ReportMetric(near/far, "near_far_speedup")
}

// BenchmarkAblationDelta measures delta encoding's traffic reduction on an
// edited 1 MB file (Sec. 2.1's librsync mechanism).
func BenchmarkAblationDelta(b *testing.B) {
	base := chunker.SyntheticFile{Seed: 5, Size: 1 << 20}.Generate()
	target := append([]byte(nil), base...)
	for i := 0; i < 20; i++ {
		target[i*50_000] ^= 0xAA
	}
	sig := deltasync.NewSignature(base, 0)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	var saved float64
	for i := 0; i < b.N; i++ {
		d := deltasync.GenerateDelta(sig, target)
		saved = 1 - float64(d.WireSize())/float64(len(target))
	}
	b.ReportMetric(100*saved, "saved_%")
}

// BenchmarkCampaignGeneration measures the flow-level fast path end to end.
func BenchmarkCampaignGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.RunCampaign(int64(i), experiments.ScaleConfig{
			Campus1: 0.25, Campus2: 0.05, Home1: 0.015, Home2: 0.015,
		})
		total := 0
		for _, ds := range c.Datasets {
			total += len(ds.Records)
		}
		if total == 0 {
			b.Fatal("empty campaign")
		}
	}
}

// ---------- fleet engine: sequential versus sharded ----------

// BenchmarkFleetVsSequential pits the legacy single-threaded generator
// against the sharded engine on one vantage point at growing populations:
// materializing (dataset) and streaming-aggregation (summary) paths.
func BenchmarkFleetVsSequential(b *testing.B) {
	for _, scale := range []float64{0.05, 0.2} {
		cfg := workload.Home1(scale)
		name := fmt.Sprintf("home1/scale=%.2f", scale)
		b.Run(name+"/sequential", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ds := workload.Generate(cfg, int64(i))
				if len(ds.Records) == 0 {
					b.Fatal("empty dataset")
				}
			}
		})
		shards := 2 * runtime.GOMAXPROCS(0)
		b.Run(name+"/sharded-dataset", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ds, err := fleet.Dataset(context.Background(), cfg, int64(i), fleet.Config{Shards: shards})
				if err != nil {
					b.Fatal(err)
				}
				if len(ds.Records) == 0 {
					b.Fatal("empty dataset")
				}
			}
		})
		b.Run(name+"/sharded-stream", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sum, _, err := fleet.Summarize(context.Background(), cfg, int64(i), fleet.Config{Shards: shards})
				if err != nil {
					b.Fatal(err)
				}
				if sum.Flows == 0 {
					b.Fatal("empty summary")
				}
			}
		})
	}
}

// BenchmarkFleetCampaign runs the whole four-VP campaign through each path.
func BenchmarkFleetCampaign(b *testing.B) {
	sc := experiments.ScaleConfig{Campus1: 0.25, Campus2: 0.05, Home1: 0.015, Home2: 0.015}
	shards := 2 * runtime.GOMAXPROCS(0)
	b.Run("materialized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := experiments.RunShardedCampaign(int64(i), sc, fleet.Config{Shards: shards})
			if len(c.Datasets) != 4 {
				b.Fatal("short campaign")
			}
		}
	})
	b.Run("streaming", func(b *testing.B) {
		var flows float64
		for i := 0; i < b.N; i++ {
			rep := experiments.RunFleetCampaign(int64(i), sc, fleet.Config{Shards: shards})
			flows = 0
			for _, vp := range rep.VPs {
				flows += float64(vp.Summary.Flows)
			}
			if flows == 0 {
				b.Fatal("empty report")
			}
		}
		b.ReportMetric(flows, "flows")
	})
	// 10x the default population, streaming only: the configuration that
	// does not fit the materializing path's memory envelope.
	b.Run("streaming-10x", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep := experiments.RunFleetCampaign(int64(i), sc,
				fleet.Config{Shards: shards, DevicesScale: 10})
			if rep.VPs[0].Summary.Flows == 0 {
				b.Fatal("empty report")
			}
		}
	})
}

// ---------- record pipeline: serialization and pooled generation ----------

// BenchmarkTraceWriteCSV measures the compatibility serializer on a
// pre-generated dataset.
func BenchmarkTraceWriteCSV(b *testing.B) {
	ds := workload.Generate(workload.Home1(0.02), 42)
	b.ReportAllocs()
	b.ResetTimer()
	var n int64
	for i := 0; i < b.N; i++ {
		w := traces.NewWriter(io.Discard)
		w.Anonymize = true
		for _, r := range ds.Records {
			if err := w.Write(r); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		n += int64(len(ds.Records))
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkTraceWriteBinary measures the binary columnar serializer on the
// same dataset — the allocation-free fast path.
func BenchmarkTraceWriteBinary(b *testing.B) {
	ds := workload.Generate(workload.Home1(0.02), 42)
	b.ReportAllocs()
	b.ResetTimer()
	var n int64
	for i := 0; i < b.N; i++ {
		w := traces.NewBinaryWriter(io.Discard)
		w.Anonymize = true
		for _, r := range ds.Records {
			if err := w.Write(r); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		n += int64(len(ds.Records))
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkGeneratePooled measures one pooled shard generation — the
// allocation profile the fleet aggregation path runs at (allocs/op divided
// by the record count is the allocs-per-record figure cmd/bench tracks).
func BenchmarkGeneratePooled(b *testing.B) {
	cfg := workload.Home1(0.05)
	b.ReportAllocs()
	var records int64
	for i := 0; i < b.N; i++ {
		pool := new(fleet.RecordPool)
		stats := workload.GenerateShardSink(cfg, 42, 0, 1, workload.ShardSink{
			Emit:  func(r *traces.FlowRecord) { pool.Put(r) },
			Alloc: pool.Get,
			Free:  pool.Put,
		})
		records += int64(stats.Records)
	}
	b.ReportMetric(float64(records)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkFleetSummarizePooled measures the full 8-shard streaming
// aggregation — the cmd/bench fleet/home1-8shard scenario as a Go
// benchmark.
func BenchmarkFleetSummarizePooled(b *testing.B) {
	cfg := workload.Home1(0.05)
	b.ReportAllocs()
	var records int64
	for i := 0; i < b.N; i++ {
		_, stats, err := fleet.Summarize(context.Background(), cfg, 42, fleet.Config{Shards: 8})
		if err != nil {
			b.Fatal(err)
		}
		records += int64(stats.Records)
	}
	b.ReportMetric(float64(records)/b.Elapsed().Seconds(), "records/s")
}
