// Quickstart: generate a small measurement campaign and print the headline
// characterization — the fastest way to see the library end to end.
package main

import (
	"fmt"

	"insidedropbox"
)

func main() {
	// A campaign generates 42 days of traffic at four vantage points and
	// runs it through the passive-measurement methodology of the paper.
	camp := insidedropbox.RunCampaign(1, insidedropbox.SmallScale())

	for _, ds := range camp.Datasets {
		fmt.Printf("%-10s %5d IPs, %6d flows, %6.2f GB total, %d Dropbox devices\n",
			ds.Cfg.Name, ds.Cfg.TotalIPs, len(ds.Records),
			ds.TotalVolume()/1e9, ds.DropboxDevices)
	}
	fmt.Println()

	// Regenerate a couple of the paper's results.
	for _, r := range insidedropbox.AllExperiments(camp) {
		switch r.ID {
		case "table3", "figure6":
			fmt.Println(r.Text)
		}
	}
}
