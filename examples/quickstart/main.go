// Quickstart: run a selection of the paper's experiments through the
// unified Run entry point — the fastest way to see the library end to end.
//
// Every table and figure is a registered experiment with a stable ID;
// Run materializes the shared campaign once and executes any selection of
// the catalogue under a cancellable context.
package main

import (
	"context"
	"fmt"
	"log"

	"insidedropbox"
)

func main() {
	// The catalogue: every table, figure and lab, addressable by ID.
	catalogue := insidedropbox.Experiments()
	fmt.Printf("registered experiments: %d (table1..table5, figure1..figure21, fleet, whatif)\n\n", len(catalogue))

	// Run just Table 3 and Figure 6 at a small scale. The campaign behind
	// them generates once and is shared; cancelling ctx would stop it
	// mid-shard.
	results, err := insidedropbox.Run(context.Background(),
		insidedropbox.Spec{Seed: 1, Scale: insidedropbox.SmallScale()},
		insidedropbox.WithExperiments("table3", "figure6"))
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Println(r.Text)
	}
}
