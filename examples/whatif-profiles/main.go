// What-if profiles: replay one vantage-point population under several
// client capability profiles and compare the storage traffic each would
// have produced — the generalization of the paper's Sec. 6 bundling
// analysis (examples/bundling-comparison) to capabilities Dropbox never
// shipped: no deduplication, no delta encoding, 16 MB chunks, a fully
// pipelined storage protocol.
//
// The what-if lab is an opt-in registry experiment: configuring profiles
// on the Spec (WithProfiles) opts it into the run. The first profile is
// the baseline the delta table references. The two Dropbox presets
// reproduce the historical clients bit for bit, so the dropbox-1.2.52 row
// is exactly the Campus 1 population the other experiments measure.
package main

import (
	"context"
	"fmt"
	"log"

	"insidedropbox"
)

func main() {
	profiles := insidedropbox.CapabilityPresets()

	// A small Campus 1 fraction keeps the example fast (each of the six
	// profiles replays the full 42-day population at this scale).
	// WithShards(4) spreads each profile's replay across four
	// deterministic population shards.
	results, err := insidedropbox.Run(context.Background(),
		insidedropbox.Spec{Seed: 2012},
		insidedropbox.WithScale(insidedropbox.ScaleConfig{Campus1: 0.15}),
		insidedropbox.WithExperiments("whatif"),
		insidedropbox.WithProfiles(profiles...),
		insidedropbox.WithShards(4))
	if err != nil {
		log.Fatal(err)
	}
	r := results[0]
	fmt.Println(r.Text)

	// The metrics carry every absolute value keyed by profile name, so the
	// deltas recompute from the Result alone.
	base := profiles[0].Name
	vol := func(p string) float64 { return r.Metrics["store_gb_"+p] + r.Metrics["retrieve_gb_"+p] }
	fmt.Println("Reading the table:")
	fmt.Printf("  baseline %s moved %.2f GB of storage traffic in %.0f flows\n",
		base, vol(base), r.Metrics["storage_flows_"+base])
	for _, p := range profiles[1:] {
		name := p.Name
		fmt.Printf("  %-16s volume %+6.1f%%  ops %+6.1f%%  store latency %+6.1f%%\n",
			name,
			100*(vol(name)/vol(base)-1),
			100*(r.Metrics["ops_"+name]/r.Metrics["ops_"+base]-1),
			100*(r.Metrics["store_med_ms_"+name]/r.Metrics["store_med_ms_"+base]-1))
	}
	fmt.Println("\nNote: profiles that change operation structure resample the heavy-tailed")
	fmt.Println("file sizes (EXPERIMENTS.md, determinism contract point 8), so volume deltas")
	fmt.Println("at this example's small scale carry sampling noise of a few tail files —")
	fmt.Println("grow the population (scale, -devices-scale) to tighten them.")
}
