// What-if profiles: replay one vantage-point population under several
// client capability profiles and compare the storage traffic each would
// have produced — the generalization of the paper's Sec. 6 bundling
// analysis (examples/bundling-comparison) to capabilities Dropbox never
// shipped: no deduplication, no delta encoding, 16 MB chunks, a fully
// pipelined storage protocol.
//
// The first profile is the baseline the delta table references. The two
// Dropbox presets reproduce the historical clients bit for bit, so the
// dropbox-1.2.52 row is exactly the Campus 1 population the other
// experiments measure.
package main

import (
	"fmt"

	"insidedropbox"
)

func main() {
	cfg := insidedropbox.Campus1(0.4)
	cfg.Days = 14 // two weeks keep the example fast

	rep := insidedropbox.RunWhatIf(insidedropbox.WhatIfConfig{
		Seed:     2012,
		VP:       cfg,
		Fleet:    insidedropbox.FleetConfig{Shards: 4},
		Profiles: insidedropbox.CapabilityPresets(),
	})
	fmt.Println(rep.Result().Text)

	base := rep.Runs[0].Agg
	fmt.Println("Reading the table:")
	fmt.Printf("  baseline %s moved %.2f GB of storage traffic in %d flows\n",
		rep.Runs[0].Profile.Name,
		float64(base.Summary.StoreBytes+base.Summary.RetrieveBytes)/1e9,
		base.Summary.StoreFlows+base.Summary.RetrieveFlows)
	for _, run := range rep.Runs[1:] {
		a := run.Agg
		fmt.Printf("  %-16s volume %+6.1f%%  ops %+6.1f%%  store latency %+6.1f%%\n",
			run.Profile.Name,
			100*(float64(a.Summary.StoreBytes+a.Summary.RetrieveBytes)/
				float64(base.Summary.StoreBytes+base.Summary.RetrieveBytes)-1),
			100*(float64(a.StoreOps+a.RetrieveOps)/float64(base.StoreOps+base.RetrieveOps)-1),
			100*(a.StoreLatency.Quantile(0.5)/base.StoreLatency.Quantile(0.5)-1))
	}
	fmt.Println("\nNote: profiles that change operation structure resample the heavy-tailed")
	fmt.Println("file sizes (EXPERIMENTS.md, determinism contract point 8), so volume deltas")
	fmt.Println("at this example's small scale carry sampling noise of a few tail files —")
	fmt.Println("grow the population (scale, -devices-scale) to tighten them.")
}
