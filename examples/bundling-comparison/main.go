// Bundling comparison: reproduce Table 4 — the performance effect of the
// Dropbox 1.4.0 chunk-bundling deployment that the paper measured between
// its Mar/Apr and Jun/Jul Campus 1 datasets, and the paper's headline
// recommendation in action — selected from the experiment registry.
package main

import (
	"context"
	"fmt"
	"log"

	"insidedropbox"
)

func main() {
	results, err := insidedropbox.Run(context.Background(),
		insidedropbox.Spec{Seed: 7, Scale: insidedropbox.DefaultScale()},
		insidedropbox.WithExperiments("table4"))
	if err != nil {
		log.Fatal(err)
	}
	r := results[0]
	fmt.Println(r.Text)

	imp := func(metric string) float64 {
		return 100 * (r.Metrics["after_"+metric]/r.Metrics["before_"+metric] - 1)
	}
	fmt.Println("Improvements from bundling (client 1.4.0 + server IW tuning):")
	fmt.Printf("  store   median throughput: %+.0f%%\n", imp("median_tp_store"))
	fmt.Printf("  retrieve median throughput: %+.0f%%\n", imp("median_tp_retrieve"))
	fmt.Printf("  store   average throughput: %+.0f%%\n", imp("avg_tp_store"))
	fmt.Printf("  retrieve average throughput: %+.0f%% (paper: ≈ +65%%)\n", imp("avg_tp_retrieve"))
}
