// Delta encoding: the client-side mechanics of Sec. 2.1 — Dropbox splits
// files into 4 MB chunks identified by SHA-256, deduplicates against the
// server's chunk index, and ships rsync-style deltas for edited files.
// This example runs those primitives directly and reports the traffic each
// one saves; the campaign-level view of the same knobs is the what-if
// lab (examples/whatif-profiles, profiles no-dedup / no-delta).
package main

import (
	"fmt"

	"insidedropbox/internal/chunker"
	"insidedropbox/internal/deltasync"
)

func main() {
	// A 10 MB "photo archive" on device A.
	original := chunker.SyntheticFile{Seed: 42, Size: 10 << 20}.Generate()
	chunks := chunker.Split(original)
	fmt.Printf("file: %d bytes -> %d chunks (<= 4 MB each)\n", len(original), len(chunks))
	for i, c := range chunks {
		fmt.Printf("  chunk %d: %7d bytes  sha256=%s...\n", i, c.Size, c.Hash.Short())
	}

	// Device B adds the same file: every chunk already exists server-side,
	// so need_blocks returns empty and nothing is uploaded.
	dup := chunker.Split(chunker.SyntheticFile{Seed: 42, Size: 10 << 20}.Generate())
	same := 0
	for i := range dup {
		if dup[i].Hash == chunks[i].Hash {
			same++
		}
	}
	fmt.Printf("\ndeduplication: %d/%d chunks already stored -> 0 bytes uploaded\n", same, len(dup))

	// The user edits a few spots in the file; librsync-style delta
	// encoding ships only the changed blocks.
	edited := append([]byte(nil), original...)
	for i := 0; i < 12; i++ {
		edited[i*800_000] ^= 0xFF
	}
	sig := deltasync.NewSignature(original, 0)
	delta := deltasync.GenerateDelta(sig, edited)
	fmt.Printf("\ndelta encoding after 12 point edits:\n")
	fmt.Printf("  signature: %7d bytes (%d blocks)\n", sig.WireSize(), sig.Blocks())
	fmt.Printf("  delta:     %7d bytes (%d literal, %d matched)\n",
		delta.WireSize(), delta.LiteralBytes, delta.MatchedBytes)
	fmt.Printf("  saving:    %.1f%% versus re-uploading %d bytes\n",
		100*(1-float64(delta.WireSize())/float64(len(edited))), len(edited))

	// And the receiver reconstructs the edited file exactly.
	patched, err := deltasync.Apply(original, sig.BlockSize, delta)
	if err != nil {
		panic(err)
	}
	if chunker.HashBytes(patched) == chunker.HashBytes(edited) {
		fmt.Println("\npatch verified: reconstructed file matches the edit byte-for-byte")
	}
}
