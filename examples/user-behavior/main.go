// User behavior: reproduce the home-network workload characterization —
// the four user groups of Table 5 (occasional / upload-only /
// download-only / heavy), the per-household volume scatter of Fig. 11, and
// the device counts of Fig. 12.
package main

import (
	"fmt"

	"insidedropbox"
)

func main() {
	camp := insidedropbox.RunCampaign(3, insidedropbox.SmallScale())
	for _, r := range insidedropbox.AllExperiments(camp) {
		switch r.ID {
		case "table5", "figure11", "figure12":
			fmt.Println(r.Text)
			fmt.Println()
		}
	}
}
