// User behavior: reproduce the home-network workload characterization —
// the four user groups of Table 5 (occasional / upload-only /
// download-only / heavy), the per-household volume scatter of Fig. 11, and
// the device counts of Fig. 12 — as one registry selection sharing a
// single generated campaign.
package main

import (
	"context"
	"fmt"
	"log"

	"insidedropbox"
)

func main() {
	results, err := insidedropbox.Run(context.Background(),
		insidedropbox.Spec{Seed: 3, Scale: insidedropbox.SmallScale()},
		insidedropbox.WithExperiments("table5", "figure11", "figure12"))
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Println(r.Text)
		fmt.Println()
	}
}
