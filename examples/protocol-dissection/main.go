// Protocol dissection: the paper's Sec. 2.2 testbed — run a real client
// session against the simulated service and observe the decrypted protocol
// message sequence (Fig. 1) plus the packet-level anatomy of storage flows
// (Fig. 19). Both figures come from one testbed run: the registry session
// memoizes it, so selecting them together dissects a single session.
package main

import (
	"context"
	"fmt"
	"log"

	"insidedropbox"
)

func main() {
	results, err := insidedropbox.Run(context.Background(),
		insidedropbox.Spec{Seed: 2012},
		insidedropbox.WithExperiments("figure1", "figure19"))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== The Dropbox protocol, as seen by the testbed ===")
	fmt.Println()
	for _, r := range results {
		fmt.Println(r.Text)
	}
}
