// Protocol dissection: the paper's Sec. 2.2 testbed — run a real client
// session against the simulated service and observe the decrypted protocol
// message sequence (Fig. 1) plus the packet-level anatomy of storage flows
// (Fig. 19).
package main

import (
	"fmt"

	"insidedropbox"
)

func main() {
	fig1, fig19 := insidedropbox.Testbed(2012)

	fmt.Println("=== The Dropbox protocol, as seen by the testbed ===")
	fmt.Println()
	fmt.Println(fig1.Text)
	fmt.Println("=== Packet-level anatomy of storage flows ===")
	fmt.Println()
	fmt.Println(fig19.Text)
}
