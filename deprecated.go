// Deprecated facade entry points: the pre-context API surface, kept as
// thin wrappers over the unified experiment API. Every function here is
// bit-identical to its historical behaviour (pinned by the golden
// equivalence tests) and maps to a replacement documented on the wrapper
// and in the MIGRATION section of CHANGES.md. None of them can observe
// cancellation or report errors — that is why they are deprecated.
package insidedropbox

import (
	"context"

	"insidedropbox/internal/experiments"
	"insidedropbox/internal/fleet"
)

// RunCampaign generates the four vantage-point datasets (Campus 1/2,
// Home 1/2) for the 42-day observation window.
//
// Deprecated: use NewCampaign(ctx, seed, scale, FleetConfig{Shards: 1}),
// or Run with a Spec for whole-catalogue regeneration.
func RunCampaign(seed int64, scale ScaleConfig) *Campaign {
	return experiments.RunCampaign(seed, scale)
}

// RunShardedCampaign materializes a Campaign through the fleet engine.
// With fc.Shards == 1 it reproduces RunCampaign exactly; higher shard
// counts use every core at identical population sizes.
//
// Deprecated: use NewCampaign.
func RunShardedCampaign(seed int64, scale ScaleConfig, fc FleetConfig) *Campaign {
	return experiments.RunShardedCampaign(seed, scale, fc)
}

// RunFleetCampaign streams all four vantage points through the sharded
// fleet engine with bounded memory.
//
// Deprecated: use RunFleet (cancellable, error-returning) or Run with
// WithFleetScale.
func RunFleetCampaign(seed int64, scale ScaleConfig, fc FleetConfig) *FleetReport {
	return experiments.RunFleetCampaign(seed, scale, fc)
}

// GenerateFleetSummary streams one vantage point through the engine's
// aggregation path, returning the summary and generation ground truth.
//
// Deprecated: use Summarize (cancellable, error-returning).
func GenerateFleetSummary(cfg VPConfig, seed int64, fc FleetConfig) (*FleetSummary, FleetStats) {
	sum, stats, _ := fleet.Summarize(context.Background(), cfg, seed, fc)
	return sum, stats
}

// StreamDataset generates one vantage point through the sharded engine and
// delivers every record to emit in canonical shard order with bounded
// buffering.
//
// Deprecated: use the Records iterator, or StreamRecords when the
// FleetStats are needed.
func StreamDataset(cfg VPConfig, seed int64, fc FleetConfig, emit func(*FlowRecord)) FleetStats {
	stats, _ := fleet.StreamRecords(context.Background(), cfg, seed, fc, func(r *FlowRecord) bool {
		emit(r)
		return true
	})
	return stats
}

// RunWhatIf executes a what-if campaign.
//
// Deprecated: use WhatIf (cancellable, error-returning) or Run with
// WithProfiles.
func RunWhatIf(cfg WhatIfConfig) *WhatIfReport {
	return experiments.RunWhatIf(cfg)
}

// AllExperiments regenerates every campaign-level table and figure in
// paper order (packet-level labs are separate; see PerformanceLab and
// Testbed).
//
// Deprecated: use Run, which regenerates any catalogue selection —
// including the packet labs — under one cancellable entry point.
func AllExperiments(c *Campaign) []*Result {
	return experiments.All(c)
}

// Table4 regenerates the before/after bundling comparison (two Campus 1
// campaigns: Mar/Apr with client 1.2.52, Jun/Jul with 1.4.0).
//
// Deprecated: use Run with WithExperiments("table4").
func Table4(seed int64, scale float64) *Result {
	return experiments.Table4(seed, scale)
}

// PerformanceLab runs the packet-level storage experiments behind Figs. 9
// and 10: stratified flow sizes through the real protocol over simulated
// TCP, measured by the passive probe. quick trades coverage for speed.
//
// Deprecated: use Run with WithExperiments("figure9", "figure10") — the
// shared Session runs the labs once for both figures.
func PerformanceLab(quick bool) (fig9, fig10 *Result) {
	store := experiments.DefaultPacketLab(false)
	retr := experiments.DefaultPacketLab(true)
	if quick {
		store = experiments.QuickPacketLab(false)
		retr = experiments.QuickPacketLab(true)
	}
	fig9, fig10, _ = experiments.RunPacketLabs(context.Background(), store, retr)
	return fig9, fig10
}

// Testbed runs the decrypting-proxy-equivalent dissection: one client
// against the full service with protocol message logging (Fig. 1) and
// annotated packet traces (Fig. 19).
//
// Deprecated: use Run with WithExperiments("figure1", "figure19").
func Testbed(seed int64) (fig1, fig19 *Result) {
	tb, _ := experiments.RunTestbed(context.Background(), seed)
	return tb.Figure1, tb.Figure19
}
