// Package tstat implements the passive probe of the measurement setup: a
// Tstat-like flow monitor attached to the border of a vantage point.
//
// From the packet stream it reconstructs per-flow records with the metrics
// the paper relies on (Sec. 3.1): payload bytes per direction, packet and
// PSH-flag counts, retransmissions, the minimum probe-to-server RTT from
// sequence/acknowledgment matching, TLS server-name and certificate
// extraction by classic DPI, cleartext notification-protocol parsing
// (device identifiers and namespace lists), and DNS-based FQDN labeling of
// server addresses.
package tstat

import (
	"time"

	"insidedropbox/internal/dnssim"
	"insidedropbox/internal/netem"
	"insidedropbox/internal/simtime"
	"insidedropbox/internal/traces"
	"insidedropbox/internal/wire"
)

// Config tunes a probe.
type Config struct {
	// VP names the vantage point in exported records.
	VP string
	// HasDNS enables FQDN labeling. Campus 2's probe could not see DNS
	// traffic (Sec. 3.2), which disables per-service FQDN breakdowns there.
	HasDNS bool
	// DPIBudget caps the payload bytes buffered per direction for DPI.
	DPIBudget int
	// IdleTimeout finalizes flows with no traffic for this long.
	IdleTimeout time.Duration
	// SweepEvery sets the idle-scan cadence.
	SweepEvery time.Duration
}

// DefaultConfig returns the standard probe settings.
func DefaultConfig(vp string) Config {
	return Config{VP: vp, HasDNS: true, DPIBudget: 4096,
		IdleTimeout: 5 * time.Minute, SweepEvery: 30 * time.Second}
}

// Probe is a passive flow monitor. Attach it to a netem site with
// Network.AttachTap and feed DNS events via ObserveDNS.
type Probe struct {
	cfg   Config
	sched *simtime.Scheduler

	// OnRecord receives each finalized flow record.
	OnRecord func(*traces.FlowRecord)

	flows map[wire.FlowKey]*flowState
	fqdn  map[wire.IP]string
	// tombstones swallow straggler packets of flows just finalized by a
	// RST, so in-flight segments do not spawn ghost flows.
	tombstones map[wire.FlowKey]simtime.Time

	captured uint64
}

// New builds a probe and starts its idle sweeper.
func New(sched *simtime.Scheduler, cfg Config) *Probe {
	p := &Probe{
		cfg:        cfg,
		sched:      sched,
		flows:      make(map[wire.FlowKey]*flowState),
		fqdn:       make(map[wire.IP]string),
		tombstones: make(map[wire.FlowKey]simtime.Time),
	}
	sched.NewTicker(cfg.SweepEvery, func(now simtime.Time) { p.sweep(now) })
	return p
}

// Captured returns the number of frames the probe has seen.
func (p *Probe) Captured() uint64 { return p.captured }

// ActiveFlows returns the number of flows currently tracked.
func (p *Probe) ActiveFlows() int { return len(p.flows) }

// ObserveDNS records a resolution so later flows to the server IP can be
// labeled with the requested FQDN. Plug into dnssim.Resolver.Log.
func (p *Probe) ObserveDNS(e dnssim.Event) {
	if p.cfg.HasDNS {
		p.fqdn[e.Server] = e.FQDN
	}
}

// pendingSample is an outbound segment awaiting its acknowledgment.
type pendingSample struct {
	wantAck uint32
	at      simtime.Time
}

type flowState struct {
	rec traces.FlowRecord

	upInit, downInit       bool
	maxSeqEndUp            uint32
	maxSeqEndDown          uint32
	pending                []pendingSample // outbound segments awaiting acks
	upDPI, downDPI         []byte
	upDPIDone, downDPIDone bool
	notifyDone             bool
	finUp, finDown         bool
	lastActivity           simtime.Time
	minRTT                 time.Duration
	rttSamples             int
}

// seqAfter reports whether a comes strictly after b in sequence space.
func seqAfter(a, b uint32) bool { return int32(a-b) > 0 }

// Capture implements netem.Tap.
func (p *Probe) Capture(now simtime.Time, f *wire.Frame, dir netem.TapDir) {
	p.captured++
	key, _ := wire.Canonical(f)
	fs := p.flows[key]
	if fs == nil {
		if t, dead := p.tombstones[key]; dead {
			if now.Sub(t) < 30*time.Second {
				return // straggler of a reset flow
			}
			delete(p.tombstones, key)
		}
	}
	if fs == nil {
		fs = &flowState{minRTT: -1}
		fs.rec.VP = p.cfg.VP
		fs.rec.FirstPacket = now.Duration()
		// The client is the endpoint inside the monitored site.
		if dir == netem.TapOutbound {
			fs.rec.Client, fs.rec.ClientPort = f.IP.Src, f.TCP.SrcPort
			fs.rec.Server, fs.rec.ServerPort = f.IP.Dst, f.TCP.DstPort
		} else {
			fs.rec.Client, fs.rec.ClientPort = f.IP.Dst, f.TCP.DstPort
			fs.rec.Server, fs.rec.ServerPort = f.IP.Src, f.TCP.SrcPort
		}
		p.flows[key] = fs
	}
	fs.rec.LastPacket = now.Duration()
	fs.lastActivity = now

	up := dir == netem.TapOutbound
	flags := f.TCP.Flags
	if flags.Has(wire.FlagSYN) {
		fs.rec.SawSYN = true
	}
	if flags.Has(wire.FlagRST) {
		fs.rec.SawRST = true
		p.tombstones[key] = now
		p.finalize(key, fs)
		return
	}
	if flags.Has(wire.FlagFIN) {
		fs.rec.SawFIN = true
		if up {
			fs.finUp = true
		} else {
			fs.finDown = true
			if !fs.finUp {
				fs.rec.ServerClosed = true
			}
		}
	}

	if up {
		p.accountUp(now, fs, f)
		if ack := flags.Has(wire.FlagACK); ack {
			// Client acks tell us nothing about the external path.
			_ = ack
		}
	} else {
		p.accountDown(now, fs, f)
		if flags.Has(wire.FlagACK) {
			p.sampleRTT(now, fs, f.TCP.Ack)
		}
	}

	if fs.finUp && fs.finDown {
		p.finalize(key, fs)
	}
}

func (p *Probe) accountUp(now simtime.Time, fs *flowState, f *wire.Frame) {
	fs.rec.PktsUp++
	consumed := uint32(f.PayloadLen)
	if f.TCP.Flags.Has(wire.FlagSYN) || f.TCP.Flags.Has(wire.FlagFIN) {
		consumed++
	}
	seqEnd := f.TCP.Seq + consumed
	isRetrans := false
	if f.PayloadLen > 0 {
		if !fs.upInit || seqAfter(seqEnd, fs.maxSeqEndUp) {
			newBytes := f.PayloadLen
			if fs.upInit {
				if delta := int(seqEnd - fs.maxSeqEndUp); delta < newBytes {
					newBytes = delta // partial overlap
				}
			}
			fs.rec.BytesUp += int64(newBytes)
			fs.maxSeqEndUp = seqEnd
			fs.upInit = true
		} else {
			isRetrans = true
			fs.rec.RetransUp++
		}
		fs.rec.LastPayloadUp = now.Duration()
		if f.TCP.Flags.Has(wire.FlagPSH) {
			fs.rec.PSHUp++
		}
		if !fs.upDPIDone && len(fs.upDPI) < p.cfg.DPIBudget {
			fs.upDPI = append(fs.upDPI, f.Payload...)
		}
	} else if f.TCP.Flags.Has(wire.FlagSYN) && !fs.upInit {
		fs.maxSeqEndUp = seqEnd
		fs.upInit = true
	}

	// Queue an RTT probe: the time until the server acknowledges this
	// segment is the probe->server round trip (Karn: skip retransmits and
	// cancel samples they invalidate).
	if consumed > 0 {
		if isRetrans {
			for i := range fs.pending {
				if fs.pending[i].wantAck == seqEnd {
					fs.pending = append(fs.pending[:i], fs.pending[i+1:]...)
					break
				}
			}
		} else if len(fs.pending) < 32 {
			fs.pending = append(fs.pending, pendingSample{wantAck: seqEnd, at: now})
		}
	}
}

func (p *Probe) accountDown(now simtime.Time, fs *flowState, f *wire.Frame) {
	fs.rec.PktsDown++
	consumed := uint32(f.PayloadLen)
	if f.TCP.Flags.Has(wire.FlagSYN) || f.TCP.Flags.Has(wire.FlagFIN) {
		consumed++
	}
	seqEnd := f.TCP.Seq + consumed
	if f.PayloadLen > 0 {
		if !fs.downInit || seqAfter(seqEnd, fs.maxSeqEndDown) {
			newBytes := f.PayloadLen
			if fs.downInit {
				if delta := int(seqEnd - fs.maxSeqEndDown); delta < newBytes {
					newBytes = delta
				}
			}
			fs.rec.BytesDown += int64(newBytes)
			fs.maxSeqEndDown = seqEnd
			fs.downInit = true
		} else {
			fs.rec.RetransDown++
		}
		fs.rec.LastPayloadDown = now.Duration()
		if f.TCP.Flags.Has(wire.FlagPSH) {
			fs.rec.PSHDown++
		}
		if !fs.downDPIDone && len(fs.downDPI) < p.cfg.DPIBudget {
			fs.downDPI = append(fs.downDPI, f.Payload...)
		}
	} else if f.TCP.Flags.Has(wire.FlagSYN) && !fs.downInit {
		fs.maxSeqEndDown = seqEnd
		fs.downInit = true
	}
}

// sampleRTT matches an inbound acknowledgment against outbound segments.
func (p *Probe) sampleRTT(now simtime.Time, fs *flowState, ack uint32) {
	kept := fs.pending[:0]
	for _, ps := range fs.pending {
		if int32(ack-ps.wantAck) >= 0 {
			rtt := now.Sub(ps.at)
			if rtt > 0 {
				if fs.minRTT < 0 || rtt < fs.minRTT {
					fs.minRTT = rtt
				}
				fs.rttSamples++
			}
		} else {
			kept = append(kept, ps)
		}
	}
	fs.pending = kept
}

// sweep finalizes idle flows.
func (p *Probe) sweep(now simtime.Time) {
	for key, fs := range p.flows {
		if now.Sub(fs.lastActivity) >= p.cfg.IdleTimeout {
			p.finalize(key, fs)
		}
	}
}

// FlushAll finalizes every tracked flow (campaign end).
func (p *Probe) FlushAll() {
	for key, fs := range p.flows {
		p.finalize(key, fs)
	}
}

func (p *Probe) finalize(key wire.FlowKey, fs *flowState) {
	delete(p.flows, key)
	rec := &fs.rec
	if fs.minRTT > 0 {
		rec.MinRTT = fs.minRTT
		rec.RTTSamples = fs.rttSamples
	}
	// DPI extraction over the buffered prefixes.
	if sni, ok := wire.ExtractSNI(fs.upDPI); ok {
		rec.SNI = sni
	}
	if cn, ok := wire.ExtractCertName(fs.downDPI); ok {
		rec.CertName = cn
	}
	if rec.ServerPort == 80 {
		if req, ok := ParseNotify(fs.upDPI); ok {
			rec.NotifyHost = req.Host
			rec.NotifyNamespaces = req.Namespaces
		}
	}
	if p.cfg.HasDNS {
		rec.FQDN = p.fqdn[rec.Server]
	}
	if p.OnRecord != nil {
		p.OnRecord(rec)
	}
}
