package tstat

import (
	"strings"
	"testing"
	"time"

	"insidedropbox/internal/chunker"
	"insidedropbox/internal/dnssim"
	"insidedropbox/internal/dropbox"
	"insidedropbox/internal/netem"
	"insidedropbox/internal/simrand"
	"insidedropbox/internal/simtime"
	"insidedropbox/internal/tcpsim"
	"insidedropbox/internal/tlssim"
	"insidedropbox/internal/traces"
	"insidedropbox/internal/wire"
)

// world glues the full service + one monitored vantage point + the probe.
type world struct {
	sched    *simtime.Scheduler
	rng      *simrand.Source
	net      *netem.Network
	dir      *dnssim.Directory
	resolver *dnssim.Resolver
	svc      *dropbox.Service
	probe    *Probe
	records  []*traces.FlowRecord
	nextIP   byte
}

func newWorld(t testing.TB) *world {
	t.Helper()
	sched := simtime.NewScheduler()
	rng := simrand.New(11, "tstat-test")
	net := netem.New(sched, rng)
	net.SetCoreDelay("vp", dnssim.AmazonDC, 45*time.Millisecond)
	net.SetCoreDelay("vp", dnssim.DropboxDC, 85*time.Millisecond)
	dir := dnssim.Build(dnssim.Layout{MetaIPs: 3, NotifyIPs: 4, StorageNames: 12, StorageIPs: 8})
	svc := dropbox.NewService(dropbox.ServiceConfig{
		Sched: sched, Net: net, Rng: rng, Dir: dir,
		ServerTCP: tcpsim.DefaultConfig(), StorageNamesPerClient: 6,
	})
	resolver := dnssim.NewResolver(dir, rng)
	w := &world{sched: sched, rng: rng, net: net, dir: dir, resolver: resolver, svc: svc}
	w.probe = New(sched, DefaultConfig("test-vp"))
	w.probe.OnRecord = func(r *traces.FlowRecord) { w.records = append(w.records, r) }
	resolver.Log = w.probe.ObserveDNS
	net.AttachTap("vp", w.probe)
	return w
}

func (w *world) device(t testing.TB, acct dropbox.AccountID, v dropbox.Version) *dropbox.Device {
	t.Helper()
	w.nextIP++
	ip := wire.MakeIP(10, 0, 0, w.nextIP)
	host := w.net.AddHost(ip, "vp", netem.WiredWorkstation())
	stack := tcpsim.NewStack(host, w.sched, w.rng, tcpsim.DefaultConfig())
	dev, err := dropbox.NewDevice(dropbox.ClientConfig{
		Sched: w.sched, Rng: w.rng, Service: w.svc, Resolver: w.resolver,
		Stack: stack, Version: v, Handshake: tlssim.DefaultHandshake(),
	}, acct)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func (w *world) finish() {
	w.probe.FlushAll()
}

func refsOf(seed uint64, n, size int) []chunker.Ref {
	out := make([]chunker.Ref, 0, n)
	for i := 0; i < n; i++ {
		f := chunker.SyntheticFile{Seed: seed + uint64(i)*7919, Size: int64(size)}
		out = append(out, f.Refs()...)
	}
	return out
}

func wireID(r chunker.Ref) int { return r.Size }

// findRecords filters by a predicate.
func (w *world) find(pred func(*traces.FlowRecord) bool) []*traces.FlowRecord {
	var out []*traces.FlowRecord
	for _, r := range w.records {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

func isStorageFQDN(r *traces.FlowRecord) bool {
	return strings.HasPrefix(r.FQDN, "dl-client")
}

func TestProbeSeesUploadFlow(t *testing.T) {
	w := newWorld(t)
	acct := w.svc.Meta.CreateAccount()
	dev := w.device(t, acct.ID, dropbox.V1252)
	dev.Start()
	const chunks = 5
	const chunkSize = 200_000
	refs := refsOf(42, chunks, chunkSize)
	w.sched.After(2*time.Second, func() { dev.Upload(acct.Root, refs, wireID, nil) })
	w.sched.RunUntil(simtime.Time(10 * time.Minute))
	w.finish()

	storage := w.find(isStorageFQDN)
	if len(storage) != 1 {
		t.Fatalf("storage flows = %d, want 1", len(storage))
	}
	r := storage[0]
	if r.CertName != "*.dropbox.com" {
		t.Fatalf("cert = %q", r.CertName)
	}
	if r.SNI == "" || !strings.HasPrefix(r.SNI, "dl-client") {
		t.Fatalf("sni = %q", r.SNI)
	}
	// Upload bytes: TLS handshake 294 + per-chunk (634 + chunk + record
	// headers). Bound loosely.
	minUp := int64(294 + chunks*(634+chunkSize))
	if r.BytesUp < minUp || r.BytesUp > minUp+int64(chunks*400) {
		t.Fatalf("bytes up = %d, want ≈ %d", r.BytesUp, minUp)
	}
	// Server direction: 4103 handshake + 5 OKs of 309 (+records).
	if r.BytesDown < 4103+chunks*309 || r.BytesDown > 4103+chunks*(309+20) {
		t.Fatalf("bytes down = %d", r.BytesDown)
	}
	// PSH count downstream: hello + ccs/finish + c OKs + alert = c+3
	// (server closed the idle flow).
	if !r.ServerClosed {
		t.Fatal("storage flow should be passively closed by the server")
	}
	if r.PSHDown != chunks+3 {
		t.Fatalf("PSH down = %d, want %d", r.PSHDown, chunks+3)
	}
	if !r.SawRST {
		t.Fatal("client should have RST the flow after the server alert")
	}
}

func TestProbeRTTMeasurement(t *testing.T) {
	w := newWorld(t)
	acct := w.svc.Meta.CreateAccount()
	dev := w.device(t, acct.ID, dropbox.V1252)
	dev.Start()
	refs := refsOf(77, 20, 150_000)
	w.sched.After(2*time.Second, func() { dev.Upload(acct.Root, refs, wireID, nil) })
	w.sched.RunUntil(simtime.Time(15 * time.Minute))
	w.finish()

	storage := w.find(func(r *traces.FlowRecord) bool {
		return isStorageFQDN(r) && r.RTTSamples >= 10
	})
	if len(storage) == 0 {
		t.Fatal("no storage flow with >= 10 RTT samples")
	}
	for _, r := range storage {
		// External path: 2*45ms core + server access, plus up to ~2% jitter.
		if r.MinRTT < 90*time.Millisecond || r.MinRTT > 100*time.Millisecond {
			t.Fatalf("storage min RTT = %v, want ≈ 90-95 ms", r.MinRTT)
		}
	}
	control := w.find(func(r *traces.FlowRecord) bool {
		return strings.HasPrefix(r.FQDN, "client") && r.RTTSamples >= 3
	})
	if len(control) == 0 {
		t.Fatal("no control flows with RTT samples")
	}
	for _, r := range control {
		if r.MinRTT < 170*time.Millisecond || r.MinRTT > 185*time.Millisecond {
			t.Fatalf("control min RTT = %v, want ≈ 170-175 ms", r.MinRTT)
		}
	}
}

func TestProbeNotifyExtraction(t *testing.T) {
	w := newWorld(t)
	acct := w.svc.Meta.CreateAccount()
	dev := w.device(t, acct.ID, dropbox.V1252)
	dev.Start()
	w.sched.RunUntil(simtime.Time(3 * time.Minute))
	dev.Stop()
	w.sched.RunUntil(simtime.Time(4 * time.Minute))
	w.finish()

	notify := w.find(func(r *traces.FlowRecord) bool { return r.ServerPort == 80 })
	if len(notify) == 0 {
		t.Fatal("no notification flow captured")
	}
	r := notify[0]
	if r.NotifyHost == 0 {
		t.Fatal("host_int not extracted")
	}
	if len(r.NotifyNamespaces) != 1 {
		t.Fatalf("namespaces = %v, want the root namespace", r.NotifyNamespaces)
	}
	if !strings.HasPrefix(r.FQDN, "notify") {
		t.Fatalf("notify FQDN = %q", r.FQDN)
	}
}

func TestProbeRetransmissionCounting(t *testing.T) {
	w := newWorld(t)
	w.net.SetCoreLoss(0.01)
	acct := w.svc.Meta.CreateAccount()
	dev := w.device(t, acct.ID, dropbox.V1252)
	dev.Start()
	refs := refsOf(99, 3, 2_000_000)
	w.sched.After(2*time.Second, func() { dev.Upload(acct.Root, refs, wireID, nil) })
	w.sched.RunUntil(simtime.Time(20 * time.Minute))
	w.finish()

	storage := w.find(isStorageFQDN)
	if len(storage) == 0 {
		t.Fatal("no storage flow")
	}
	totRetr := 0
	var bytesUp int64
	for _, r := range storage {
		totRetr += r.RetransUp + r.RetransDown
		bytesUp += r.BytesUp
	}
	if totRetr == 0 {
		t.Fatal("1% loss should show retransmissions")
	}
	// Unique-byte accounting: retransmissions must not inflate volume
	// beyond payload + overheads.
	maxUp := int64(3*(634+2_000_000) + 2*294 + 3*700)
	if bytesUp > maxUp {
		t.Fatalf("bytes up = %d inflated beyond %d", bytesUp, maxUp)
	}
}

func TestProbeWithoutDNS(t *testing.T) {
	// Campus 2 operated without DNS visibility: FQDN stays empty, but TLS
	// certificates still classify the traffic.
	sched := simtime.NewScheduler()
	rng := simrand.New(12, "nodns")
	net := netem.New(sched, rng)
	net.SetCoreDelay("vp", dnssim.AmazonDC, 45*time.Millisecond)
	net.SetCoreDelay("vp", dnssim.DropboxDC, 85*time.Millisecond)
	dir := dnssim.Build(dnssim.Layout{MetaIPs: 3, NotifyIPs: 4, StorageNames: 12, StorageIPs: 8})
	svc := dropbox.NewService(dropbox.ServiceConfig{
		Sched: sched, Net: net, Rng: rng, Dir: dir, ServerTCP: tcpsim.DefaultConfig(),
	})
	resolver := dnssim.NewResolver(dir, rng)
	cfg := DefaultConfig("campus2")
	cfg.HasDNS = false
	probe := New(sched, cfg)
	var recs []*traces.FlowRecord
	probe.OnRecord = func(r *traces.FlowRecord) { recs = append(recs, r) }
	resolver.Log = probe.ObserveDNS
	net.AttachTap("vp", probe)

	ip := wire.MakeIP(10, 0, 0, 1)
	host := net.AddHost(ip, "vp", netem.CampusWireless())
	stack := tcpsim.NewStack(host, sched, rng, tcpsim.DefaultConfig())
	acct := svc.Meta.CreateAccount()
	dev, err := dropbox.NewDevice(dropbox.ClientConfig{
		Sched: sched, Rng: rng, Service: svc, Resolver: resolver,
		Stack: stack, Version: dropbox.V1252, Handshake: tlssim.DefaultHandshake(),
	}, acct.ID)
	if err != nil {
		t.Fatal(err)
	}
	dev.Start()
	sched.After(2*time.Second, func() {
		dev.Upload(acct.Root, refsOf(5, 2, 50_000), wireID, nil)
	})
	sched.RunUntil(simtime.Time(5 * time.Minute))
	probe.FlushAll()

	withCert := 0
	for _, r := range recs {
		if r.FQDN != "" {
			t.Fatalf("FQDN labeled without DNS: %q", r.FQDN)
		}
		if r.CertName == "*.dropbox.com" {
			withCert++
		}
	}
	if withCert == 0 {
		t.Fatal("TLS certificate DPI should still work without DNS")
	}
}

func TestParseNotifyDissector(t *testing.T) {
	req := dropbox.EncodeNotifyRequest(dropbox.NotifyRequest{
		Host: 98765, Namespaces: []dropbox.NamespaceID{3, 14, 159},
	})
	info, ok := ParseNotify(req)
	if !ok || info.Host != 98765 {
		t.Fatalf("parse = %+v %v", info, ok)
	}
	if len(info.Namespaces) != 3 || info.Namespaces[2] != 159 {
		t.Fatalf("namespaces = %v", info.Namespaces)
	}
	if _, ok := ParseNotify([]byte("garbage")); ok {
		t.Fatal("garbage parsed")
	}
}

func TestIdleSweepFinalizes(t *testing.T) {
	w := newWorld(t)
	acct := w.svc.Meta.CreateAccount()
	dev := w.device(t, acct.ID, dropbox.V1252)
	dev.Start()
	w.sched.After(2*time.Second, func() {
		dev.Upload(acct.Root, refsOf(123, 1, 10_000), wireID, nil)
	})
	w.sched.After(30*time.Second, dev.Stop)
	// Run far past the idle timeout: all flows must be finalized by the
	// sweeper without FlushAll.
	w.sched.RunUntil(simtime.Time(12 * time.Minute))
	if n := w.probe.ActiveFlows(); n != 0 {
		t.Fatalf("flows still tracked after idle sweep: %d", n)
	}
	if len(w.records) == 0 {
		t.Fatal("no records emitted")
	}
}

func TestCapturedCounter(t *testing.T) {
	w := newWorld(t)
	acct := w.svc.Meta.CreateAccount()
	dev := w.device(t, acct.ID, dropbox.V1252)
	dev.Start()
	w.sched.RunUntil(simtime.Time(30 * time.Second))
	if w.probe.Captured() == 0 {
		t.Fatal("probe saw no packets")
	}
}
