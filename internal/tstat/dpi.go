package tstat

import (
	"strconv"
	"strings"
)

// NotifyInfo is what the probe extracts from a cleartext notification
// request: the device identifier (host_int) and the namespace list —
// Sec. 2.3.1: "Devices and number of shared folders can be identified in
// network traces by passively watching notification flows."
type NotifyInfo struct {
	Host       uint64
	Namespaces []uint32
}

// ParseNotify dissects a captured notification request. The probe carries
// its own dissector (as Tstat did); the format knowledge mirrors what the
// authors reverse-engineered in their testbed.
func ParseNotify(data []byte) (NotifyInfo, bool) {
	s := string(data)
	const pfx = "GET /subscribe?host_int="
	i := strings.Index(s, pfx)
	if i < 0 {
		return NotifyInfo{}, false
	}
	s = s[i+len(pfx):]
	amp := strings.Index(s, "&ns_map=")
	if amp < 0 {
		return NotifyInfo{}, false
	}
	host, err := strconv.ParseUint(s[:amp], 10, 64)
	if err != nil {
		return NotifyInfo{}, false
	}
	rest := s[amp+len("&ns_map="):]
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return NotifyInfo{}, false
	}
	info := NotifyInfo{Host: host}
	for _, part := range strings.Split(rest[:sp], ",") {
		if part == "" {
			continue
		}
		idStr, _, _ := strings.Cut(part, "_")
		id, err := strconv.ParseUint(idStr, 10, 32)
		if err != nil {
			return NotifyInfo{}, false
		}
		info.Namespaces = append(info.Namespaces, uint32(id))
	}
	return info, true
}
