package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"insidedropbox/internal/traces"
	"insidedropbox/internal/workload"
)

// TestSplitJobsCoverage: every split covers each shard exactly once with
// contiguous, balanced, non-empty ranges — including the degenerate
// jobs > shards and sub-1 inputs.
func TestSplitJobsCoverage(t *testing.T) {
	for _, tc := range []struct{ shards, jobs, wantJobs int }{
		{8, 1, 1}, {8, 2, 2}, {8, 3, 3}, {8, 8, 8},
		{8, 16, 8}, // jobs capped at shards
		{5, 3, 3},  // uneven split
		{1, 4, 1},  // single shard
		{0, 0, 1},  // clamped to 1 shard, 1 job
		{7, -2, 1}, // negative jobs clamps to 1
		{-3, 5, 1}, // negative shards clamps to 1
	} {
		jobs := SplitJobs(tc.shards, tc.jobs)
		if len(jobs) != tc.wantJobs {
			t.Fatalf("SplitJobs(%d, %d) = %d jobs, want %d", tc.shards, tc.jobs, len(jobs), tc.wantJobs)
		}
		shards := tc.shards
		if shards < 1 {
			shards = 1
		}
		next, maxSize, minSize := 0, 0, shards+1
		for i, j := range jobs {
			if j.Job != i {
				t.Fatalf("SplitJobs(%d, %d): job %d labeled %d", tc.shards, tc.jobs, i, j.Job)
			}
			if j.Lo != next || j.Hi <= j.Lo {
				t.Fatalf("SplitJobs(%d, %d): job %d range [%d, %d) not contiguous from %d",
					tc.shards, tc.jobs, i, j.Lo, j.Hi, next)
			}
			if s := j.Shards(); s > maxSize {
				maxSize = s
			} else if s < minSize {
				minSize = s
			}
			next = j.Hi
		}
		if next != shards {
			t.Fatalf("SplitJobs(%d, %d): ranges end at %d, want %d", tc.shards, tc.jobs, next, shards)
		}
		if len(jobs) > 1 && maxSize-minSize > 1 {
			t.Fatalf("SplitJobs(%d, %d): unbalanced split (sizes %d..%d)", tc.shards, tc.jobs, minSize, maxSize)
		}
	}
}

// csvHashSink hashes the CSV serialization of a pooled record stream —
// safe under pooling because nothing is retained past Consume.
type csvHashSink struct {
	w *traces.Writer
	n int
}

func (s *csvHashSink) Consume(r *traces.FlowRecord) {
	if err := s.w.Write(r); err != nil {
		panic(err)
	}
	s.n++
}

// TestRunShardMatchesGenerateShard: the pooled single-shard primitive
// emits the same stream as the unpooled workload.GenerateShard, shard by
// shard, with identical stats.
func TestRunShardMatchesGenerateShard(t *testing.T) {
	vp := Config{}.ScaledVP(workload.Home1(0.02))
	const shards = 4
	for shard := 0; shard < shards; shard++ {
		pooledHash := fnv.New64a()
		sink := &csvHashSink{w: traces.NewWriter(pooledHash)}
		st := RunShard(vp, 7, shard, shards, sink)
		if err := sink.w.Flush(); err != nil {
			t.Fatal(err)
		}

		plainHash := fnv.New64a()
		w := traces.NewWriter(plainHash)
		n := 0
		legacy := workload.GenerateShard(vp, 7, shard, shards, func(r *traces.FlowRecord) {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
			n++
		})
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}

		if got, want := fmt.Sprintf("%016x", pooledHash.Sum64()), fmt.Sprintf("%016x", plainHash.Sum64()); got != want {
			t.Fatalf("shard %d: pooled stream hash %s, unpooled %s", shard, got, want)
		}
		if sink.n != n || !reflect.DeepEqual(st, legacy) {
			t.Fatalf("shard %d: stats differ: pooled %+v (%d recs) vs %+v (%d recs)", shard, st, sink.n, legacy, n)
		}
	}
}

// TestAfterShardHookAbort: an AfterShard error aborts the run at shard
// granularity and surfaces wrapped; a nil-returning hook is invisible to
// the output contract.
func TestAfterShardHookAbort(t *testing.T) {
	vp := workload.Home1(0.02)
	boom := errors.New("checkpoint disk full")

	t.Run("aggregate", func(t *testing.T) {
		var fired atomic.Int32
		fc := Config{Shards: 4, Workers: 2, AfterShard: func(ev ShardEvent) error {
			if fired.Add(1) == 1 {
				return boom
			}
			return nil
		}}
		_, _, err := Summarize(context.Background(), vp, 7, fc)
		if err == nil || !errors.Is(err, boom) || !strings.Contains(err.Error(), "completion hook") {
			t.Fatalf("err = %v, want wrapped %v", err, boom)
		}
	})

	t.Run("stream", func(t *testing.T) {
		fc := Config{Shards: 4, Workers: 2, AfterShard: func(ev ShardEvent) error {
			if ev.Shard == 1 {
				return boom
			}
			return nil
		}}
		_, err := StreamRecords(context.Background(), vp, 7, fc, func(r *traces.FlowRecord) bool { return true })
		if err == nil || !errors.Is(err, boom) {
			t.Fatalf("stream err = %v, want wrapped %v", err, boom)
		}
	})

	t.Run("nil-error hook is invisible", func(t *testing.T) {
		fc := Config{Shards: 4, Workers: 2}
		base, _ := mustSummarize(t, vp, 7, fc)
		var seen atomic.Int32
		fc.AfterShard = func(ShardEvent) error { seen.Add(1); return nil }
		hooked, _ := mustSummarize(t, vp, 7, fc)
		if seen.Load() != 4 {
			t.Fatalf("hook fired %d times, want 4", seen.Load())
		}
		if !reflect.DeepEqual(base.Metrics(), hooked.Metrics()) {
			t.Fatal("a nil-returning AfterShard hook changed the aggregate")
		}
	})
}

// TestSummaryStateRoundTrip: Summary → State → JSON → Summary reproduces
// every metric exactly, and folding restored per-shard states in shard
// order matches the direct aggregation — the contract the campaign merge
// leans on for bit-identical floats.
func TestSummaryStateRoundTrip(t *testing.T) {
	vp := workload.Home1(0.02)
	const shards = 4
	direct, _ := mustSummarize(t, vp, 7, Config{Shards: shards, Workers: 2})

	// Capture each shard's summary independently, as a campaign job would.
	var states []*SummaryState
	for shard := 0; shard < shards; shard++ {
		sum := NewSummary(vp.Days)
		RunShard(Config{}.ScaledVP(vp), 7, shard, shards, sum)
		st := sum.State()
		data, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		var back SummaryState
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		restored, err := back.Summary()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sum.Metrics(), restored.Metrics()) {
			t.Fatalf("shard %d: metrics changed across the JSON round-trip", shard)
		}
		states = append(states, &back)
	}

	// Left-fold in shard order, exactly like the campaign merge.
	folded, err := states[0].Summary()
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range states[1:] {
		s, err := st.Summary()
		if err != nil {
			t.Fatal(err)
		}
		folded.Merge(s)
	}
	got, want := folded.Metrics(), direct.Metrics()
	if !reflect.DeepEqual(got, want) {
		for k, w := range want {
			if g := got[k]; g != w {
				t.Errorf("metric %q: folded %v, direct %v", k, g, w)
			}
		}
		t.Fatal("folded per-shard states do not reproduce the direct aggregate")
	}
}
