package fleet

import (
	"context"
	"math"
	"time"

	"insidedropbox/internal/classify"
	"insidedropbox/internal/dnssim"
	"insidedropbox/internal/traces"
	"insidedropbox/internal/wire"
	"insidedropbox/internal/workload"
)

// Aggregator is a mergeable streaming Sink. Merge folds another aggregator
// of the same concrete type into the receiver; the engine merges in shard
// order, so merged results are bit-identical across worker counts.
type Aggregator interface {
	Sink
	Merge(other Aggregator)
}

// Aggregate runs a fleet generation feeding one aggregator per shard and
// returns the shard-ordered merge. This is the bounded-memory,
// allocation-free path: each shard draws its records from a per-shard
// RecordPool and recycles them the moment Consume returns, so aggregators
// MUST NOT retain a record (or its NotifyNamespaces slice) past Consume —
// copy what you keep. Record contents and aggregates are bit-identical to
// the unpooled path (pinned by TestPooledShardMatchesUnpooled).
//
// Cancelling ctx stops the run at shard granularity (in-flight shards
// finish, nothing new starts) and returns the partial merge with ctx.Err().
func Aggregate(ctx context.Context, vp workload.VPConfig, seed int64, fc Config, newAgg func(shard int) Aggregator) (Aggregator, VPStats, error) {
	fc = fc.normalized()
	vp = fc.apply(vp)

	aggs := make([]Aggregator, fc.Shards)
	for i := range aggs {
		aggs[i] = newAgg(i)
	}
	stats, err := runShards(ctx, fc, vp.Name, func(sh int) workload.ShardStats {
		agg := aggs[sh]
		pool := new(RecordPool)
		st := workload.GenerateShardSink(vp, seed, sh, fc.Shards, workload.ShardSink{
			Emit: func(r *traces.FlowRecord) {
				agg.Consume(r)
				pool.Put(r)
			},
			Alloc: pool.Get,
			Free:  pool.Put,
		})
		pool.flushTelemetry()
		return st
	})
	root := aggs[0]
	for _, a := range aggs[1:] {
		root.Merge(a)
	}
	return root, mergeStats(vp, fc, stats), err
}

// ---------- online histogram / quantile summary ----------

// histDecades spans 1 byte to 10 TB; histPerDecade sets resolution. Bucket
// width is a constant ratio, so quantile error is bounded by ~half a bucket
// (≈9% relative) at O(1) memory, and merging is exact (bucket-wise sums).
const (
	histDecades   = 13
	histPerDecade = 16
	histBuckets   = histDecades * histPerDecade
)

// LogHist is an online log-spaced histogram over positive values. The zero
// value is ready to use. It supports exact merging and approximate
// quantiles — the streaming replacement for sort-the-whole-slice
// percentile scans.
type LogHist struct {
	buckets [histBuckets + 1]uint64 // +1 overflow bucket
	count   uint64
	sum     float64
	min     float64
	max     float64
}

func histBucket(v float64) int {
	if v < 1 {
		return 0
	}
	b := int(math.Log10(v) * histPerDecade)
	if b < 0 {
		b = 0
	}
	if b > histBuckets {
		b = histBuckets
	}
	return b
}

// Observe adds one value. Non-positive values count toward bucket 0.
func (h *LogHist) Observe(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[histBucket(v)]++
}

// Count returns the number of observations.
func (h *LogHist) Count() uint64 { return h.count }

// Sum returns the sum of observations.
func (h *LogHist) Sum() float64 { return h.sum }

// Mean returns the average observation (0 when empty).
func (h *LogHist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min and Max return the observed extremes (0 when empty).
func (h *LogHist) Min() float64 { return h.min }
func (h *LogHist) Max() float64 { return h.max }

// Quantile returns the approximate q-quantile (q in [0,1]): the geometric
// midpoint of the bucket holding the q-th observation, clamped to the
// observed min/max.
func (h *LogHist) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count-1))
	var seen uint64
	for b, n := range h.buckets {
		seen += n
		if n > 0 && seen > rank {
			lo := math.Pow(10, float64(b)/histPerDecade)
			hi := lo * math.Pow(10, 1.0/histPerDecade)
			v := math.Sqrt(lo * hi)
			return math.Min(math.Max(v, h.min), h.max)
		}
	}
	return h.max
}

// MergeHist folds another histogram in (exact).
func (h *LogHist) MergeHist(o *LogHist) {
	if o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// ---------- campaign summary aggregator ----------

// Summary is the standard streaming aggregate of one vantage point: per-day
// volume accumulators, online flow-size histograms, and device / namespace
// / household counters. Memory is O(days + devices), independent of the
// number of flow records.
type Summary struct {
	Days int

	// Flow and byte totals over all providers.
	Flows              int64
	BytesUp, BytesDown int64

	// Per-campaign-day volume accumulators (up+down payload bytes).
	DayVolume        []float64
	DropboxDayVolume []float64

	// Dropbox flow counts and client-storage payload totals.
	DropboxFlows              int64
	StoreBytes, RetrieveBytes int64
	StoreFlows, RetrieveFlows int64
	StoreSizes, RetrieveSizes LogHist // per-flow payload distributions
	ControlFlows, NotifyFlows int64
	StorageServers            map[wire.IP]struct{}

	// Population counters recovered from the notification protocol.
	Devices    map[uint64]struct{}
	Namespaces map[uint32]struct{}
	Households map[wire.IP]struct{}

	// lastNotifyHost/-Client memoize the previous notify record's device:
	// notify flows arrive in per-device bursts (NAT-chopped sessions emit
	// thousands back to back), and a device's namespace list is constant,
	// so repeat records skip the map inserts entirely. Pure memoization —
	// the resulting sets are identical.
	lastNotifyHost   uint64
	lastNotifyClient wire.IP
}

// NewSummary builds a Summary for a campaign of the given length.
func NewSummary(days int) *Summary {
	return &Summary{
		Days:             days,
		DayVolume:        make([]float64, days),
		DropboxDayVolume: make([]float64, days),
		StorageServers:   make(map[wire.IP]struct{}),
		Devices:          make(map[uint64]struct{}),
		Namespaces:       make(map[uint32]struct{}),
		Households:       make(map[wire.IP]struct{}),
	}
}

// Classification is the per-record labeling aggregators key on. Wrappers
// that stack extra aggregates on top of a Summary compute it once with
// ClassifyRecord and feed every layer, instead of re-classifying the
// record on each layer of the streaming hot path.
type Classification struct {
	Dropbox bool
	Notify  bool
	Service dnssim.Service
	// Dir is the store/retrieve tag; meaningful only when Service is
	// dnssim.SvcClientStorage on a non-notify Dropbox flow.
	Dir classify.Direction
}

// Storage reports whether the record is a client-storage flow (the ones
// with a store/retrieve direction).
func (c Classification) Storage() bool {
	return c.Dropbox && !c.Notify && c.Service == dnssim.SvcClientStorage
}

// ClassifyRecord labels one record for aggregation.
func ClassifyRecord(r *traces.FlowRecord) Classification {
	c := Classification{Dropbox: classify.ProviderOf(r) == classify.ProvDropbox}
	if !c.Dropbox {
		return c
	}
	if r.NotifyHost != 0 {
		c.Notify = true
		return c
	}
	c.Service = classify.DropboxService(r)
	if c.Service == dnssim.SvcClientStorage {
		c.Dir = classify.TagStorage(r)
	}
	return c
}

// Consume implements Sink.
func (s *Summary) Consume(r *traces.FlowRecord) {
	s.ConsumeClassified(r, ClassifyRecord(r))
}

// ConsumeClassified folds one record using a pre-computed classification.
func (s *Summary) ConsumeClassified(r *traces.FlowRecord, c Classification) {
	s.Flows++
	s.BytesUp += r.BytesUp
	s.BytesDown += r.BytesDown
	if d := int(r.FirstPacket / (24 * time.Hour)); d >= 0 && d < s.Days {
		s.DayVolume[d] += float64(r.BytesUp + r.BytesDown)
		if c.Dropbox {
			s.DropboxDayVolume[d] += float64(r.BytesUp + r.BytesDown)
		}
	}
	if !c.Dropbox {
		return
	}
	s.DropboxFlows++
	if c.Notify {
		s.NotifyFlows++
		if r.NotifyHost == s.lastNotifyHost && r.Client == s.lastNotifyClient {
			return
		}
		s.lastNotifyHost, s.lastNotifyClient = r.NotifyHost, r.Client
		s.Households[r.Client] = struct{}{}
		s.Devices[r.NotifyHost] = struct{}{}
		for _, ns := range r.NotifyNamespaces {
			s.Namespaces[ns] = struct{}{}
		}
		return
	}
	if c.Service != dnssim.SvcClientStorage {
		s.ControlFlows++
		return
	}
	s.StorageServers[r.Server] = struct{}{}
	switch c.Dir {
	case classify.DirStore:
		p := classify.Payload(r, classify.DirStore)
		s.StoreFlows++
		s.StoreBytes += p
		s.StoreSizes.Observe(float64(p))
	case classify.DirRetrieve:
		p := classify.Payload(r, classify.DirRetrieve)
		s.RetrieveFlows++
		s.RetrieveBytes += p
		s.RetrieveSizes.Observe(float64(p))
	}
}

// Merge implements Aggregator.
func (s *Summary) Merge(other Aggregator) {
	o := other.(*Summary)
	s.Flows += o.Flows
	s.BytesUp += o.BytesUp
	s.BytesDown += o.BytesDown
	for d := 0; d < s.Days && d < o.Days; d++ {
		s.DayVolume[d] += o.DayVolume[d]
		s.DropboxDayVolume[d] += o.DropboxDayVolume[d]
	}
	s.DropboxFlows += o.DropboxFlows
	s.StoreBytes += o.StoreBytes
	s.RetrieveBytes += o.RetrieveBytes
	s.StoreFlows += o.StoreFlows
	s.RetrieveFlows += o.RetrieveFlows
	s.StoreSizes.MergeHist(&o.StoreSizes)
	s.RetrieveSizes.MergeHist(&o.RetrieveSizes)
	s.ControlFlows += o.ControlFlows
	s.NotifyFlows += o.NotifyFlows
	for k := range o.StorageServers {
		s.StorageServers[k] = struct{}{}
	}
	for k := range o.Devices {
		s.Devices[k] = struct{}{}
	}
	for k := range o.Namespaces {
		s.Namespaces[k] = struct{}{}
	}
	for k := range o.Households {
		s.Households[k] = struct{}{}
	}
}

// PeakDay returns the campaign day with the highest total volume.
func (s *Summary) PeakDay() int {
	best, bestV := 0, -1.0
	for d, v := range s.DayVolume {
		if v > bestV {
			best, bestV = d, v
		}
	}
	return best
}

// Metrics flattens the summary into the named-metric form the experiment
// harness consumes. All values are exact except the histogram quantiles.
func (s *Summary) Metrics() map[string]float64 {
	return map[string]float64{
		"flows":           float64(s.Flows),
		"bytes_up":        float64(s.BytesUp),
		"bytes_down":      float64(s.BytesDown),
		"dropbox_flows":   float64(s.DropboxFlows),
		"store_flows":     float64(s.StoreFlows),
		"retrieve_flows":  float64(s.RetrieveFlows),
		"store_bytes":     float64(s.StoreBytes),
		"retrieve_bytes":  float64(s.RetrieveBytes),
		"control_flows":   float64(s.ControlFlows),
		"notify_flows":    float64(s.NotifyFlows),
		"devices":         float64(len(s.Devices)),
		"namespaces":      float64(len(s.Namespaces)),
		"households":      float64(len(s.Households)),
		"storage_servers": float64(len(s.StorageServers)),
		"store_median":    s.StoreSizes.Quantile(0.5),
		"store_p90":       s.StoreSizes.Quantile(0.9),
		"retrieve_median": s.RetrieveSizes.Quantile(0.5),
		"retrieve_p90":    s.RetrieveSizes.Quantile(0.9),
		"peak_day":        float64(s.PeakDay()),
	}
}

// Summarize is the one-call streaming pipeline: generate a vantage point
// through the sharded engine and fold every record into a Summary without
// ever materializing the dataset.
func Summarize(ctx context.Context, vp workload.VPConfig, seed int64, fc Config) (*Summary, VPStats, error) {
	days := vp.Days
	agg, stats, err := Aggregate(ctx, vp, seed, fc, func(int) Aggregator { return NewSummary(days) })
	return agg.(*Summary), stats, err
}
