package fleet

import (
	"fmt"
	"sort"

	"insidedropbox/internal/wire"
)

// SummaryStateSchema versions the serialized Summary form. Bump it when
// the layout changes incompatibly; loaders reject mismatched versions.
const SummaryStateSchema = 1

// HistState is the serializable form of a LogHist. Buckets holds only the
// occupied buckets as (index, count) pairs in ascending index order, so
// the JSON stays small regardless of histBuckets. Count/Sum/Min/Max are
// carried verbatim — JSON float round-trips are exact (shortest-form
// encoding), so a restored histogram merges bit-identically.
type HistState struct {
	Count   uint64      `json:"count"`
	Sum     float64     `json:"sum"`
	Min     float64     `json:"min"`
	Max     float64     `json:"max"`
	Buckets [][2]uint64 `json:"buckets,omitempty"`
}

// State captures the histogram for serialization.
func (h *LogHist) State() HistState {
	st := HistState{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, n := range h.buckets {
		if n > 0 {
			st.Buckets = append(st.Buckets, [2]uint64{uint64(i), n})
		}
	}
	return st
}

// Restore overwrites the histogram from a serialized state, validating
// bucket indices so corrupted state fails loudly instead of panicking.
func (h *LogHist) Restore(st HistState) error {
	*h = LogHist{count: st.Count, sum: st.Sum, min: st.Min, max: st.Max}
	var total uint64
	for _, b := range st.Buckets {
		if b[0] > histBuckets {
			return fmt.Errorf("fleet: histogram state bucket index %d out of range (max %d)", b[0], histBuckets)
		}
		h.buckets[b[0]] += b[1]
		total += b[1]
	}
	if total != st.Count {
		return fmt.Errorf("fleet: histogram state inconsistent: buckets sum to %d, count says %d", total, st.Count)
	}
	return nil
}

// SummaryState is the serializable form of a Summary — the mergeable
// aggregator state campaign jobs persist so a separate process can fold
// per-shard summaries in canonical shard order. Sets are stored as sorted
// slices for deterministic bytes. The notify memoization fields are
// deliberately not carried: they only accelerate future Consume calls,
// and restored summaries are merged, never consumed into (restoring them
// would change nothing — the sets are already complete).
type SummaryState struct {
	Schema int `json:"schema"`
	Days   int `json:"days"`

	Flows     int64 `json:"flows"`
	BytesUp   int64 `json:"bytes_up"`
	BytesDown int64 `json:"bytes_down"`

	DayVolume        []float64 `json:"day_volume"`
	DropboxDayVolume []float64 `json:"dropbox_day_volume"`

	DropboxFlows  int64     `json:"dropbox_flows"`
	StoreBytes    int64     `json:"store_bytes"`
	RetrieveBytes int64     `json:"retrieve_bytes"`
	StoreFlows    int64     `json:"store_flows"`
	RetrieveFlows int64     `json:"retrieve_flows"`
	StoreSizes    HistState `json:"store_sizes"`
	RetrieveSizes HistState `json:"retrieve_sizes"`
	ControlFlows  int64     `json:"control_flows"`
	NotifyFlows   int64     `json:"notify_flows"`

	StorageServers []uint32 `json:"storage_servers,omitempty"`
	Devices        []uint64 `json:"devices,omitempty"`
	Namespaces     []uint32 `json:"namespaces,omitempty"`
	Households     []uint32 `json:"households,omitempty"`
}

// State captures the summary for serialization.
func (s *Summary) State() *SummaryState {
	st := &SummaryState{
		Schema:           SummaryStateSchema,
		Days:             s.Days,
		Flows:            s.Flows,
		BytesUp:          s.BytesUp,
		BytesDown:        s.BytesDown,
		DayVolume:        append([]float64(nil), s.DayVolume...),
		DropboxDayVolume: append([]float64(nil), s.DropboxDayVolume...),
		DropboxFlows:     s.DropboxFlows,
		StoreBytes:       s.StoreBytes,
		RetrieveBytes:    s.RetrieveBytes,
		StoreFlows:       s.StoreFlows,
		RetrieveFlows:    s.RetrieveFlows,
		StoreSizes:       s.StoreSizes.State(),
		RetrieveSizes:    s.RetrieveSizes.State(),
		ControlFlows:     s.ControlFlows,
		NotifyFlows:      s.NotifyFlows,
	}
	for k := range s.StorageServers {
		st.StorageServers = append(st.StorageServers, uint32(k))
	}
	for k := range s.Devices {
		st.Devices = append(st.Devices, k)
	}
	for k := range s.Namespaces {
		st.Namespaces = append(st.Namespaces, k)
	}
	for k := range s.Households {
		st.Households = append(st.Households, uint32(k))
	}
	sort.Slice(st.StorageServers, func(i, j int) bool { return st.StorageServers[i] < st.StorageServers[j] })
	sort.Slice(st.Devices, func(i, j int) bool { return st.Devices[i] < st.Devices[j] })
	sort.Slice(st.Namespaces, func(i, j int) bool { return st.Namespaces[i] < st.Namespaces[j] })
	sort.Slice(st.Households, func(i, j int) bool { return st.Households[i] < st.Households[j] })
	return st
}

// Summary rebuilds the live aggregator. The result is semantically
// identical to the captured one: merging restored per-shard summaries in
// shard order reproduces a single-process run's aggregate bit-for-bit.
func (st *SummaryState) Summary() (*Summary, error) {
	if st.Schema != SummaryStateSchema {
		return nil, fmt.Errorf("fleet: summary state schema %d, this build reads %d", st.Schema, SummaryStateSchema)
	}
	if st.Days < 0 || len(st.DayVolume) != st.Days || len(st.DropboxDayVolume) != st.Days {
		return nil, fmt.Errorf("fleet: summary state day vectors (%d, %d) disagree with days=%d",
			len(st.DayVolume), len(st.DropboxDayVolume), st.Days)
	}
	s := NewSummary(st.Days)
	s.Flows = st.Flows
	s.BytesUp = st.BytesUp
	s.BytesDown = st.BytesDown
	copy(s.DayVolume, st.DayVolume)
	copy(s.DropboxDayVolume, st.DropboxDayVolume)
	s.DropboxFlows = st.DropboxFlows
	s.StoreBytes = st.StoreBytes
	s.RetrieveBytes = st.RetrieveBytes
	s.StoreFlows = st.StoreFlows
	s.RetrieveFlows = st.RetrieveFlows
	if err := s.StoreSizes.Restore(st.StoreSizes); err != nil {
		return nil, fmt.Errorf("store sizes: %w", err)
	}
	if err := s.RetrieveSizes.Restore(st.RetrieveSizes); err != nil {
		return nil, fmt.Errorf("retrieve sizes: %w", err)
	}
	s.ControlFlows = st.ControlFlows
	s.NotifyFlows = st.NotifyFlows
	for _, k := range st.StorageServers {
		s.StorageServers[wire.IP(k)] = struct{}{}
	}
	for _, k := range st.Devices {
		s.Devices[k] = struct{}{}
	}
	for _, k := range st.Namespaces {
		s.Namespaces[k] = struct{}{}
	}
	for _, k := range st.Households {
		s.Households[wire.IP(k)] = struct{}{}
	}
	return s, nil
}
