package fleet

import (
	"insidedropbox/internal/traces"
	"insidedropbox/internal/workload"
)

// streamBuf is the per-shard channel capacity on the ordered streaming
// path: a producing worker runs at most this many records ahead of the
// consumer before blocking.
const streamBuf = 1024

// StreamOrdered runs a sharded generation and delivers every record to emit
// in canonical order — shard 0's records first (in generation order), then
// shard 1's, and so on — while shards execute concurrently on the worker
// pool. emit runs on the calling goroutine.
//
// Memory stays bounded regardless of population size: shards are admitted
// in index order through a window of Workers+1 tokens, so at most
// Workers+1 shards are generating or parked ahead of the consumer, each
// buffering at most streamBuf records before its producer blocks. No shard
// output is ever fully materialized.
func StreamOrdered(vp workload.VPConfig, seed int64, fc Config, emit func(*traces.FlowRecord)) VPStats {
	fc = fc.normalized()
	vp = fc.apply(vp)

	chans := make([]chan *traces.FlowRecord, fc.Shards)
	for i := range chans {
		chans[i] = make(chan *traces.FlowRecord, streamBuf)
	}
	stats := make([]workload.ShardStats, fc.Shards)

	// Admission happens in shard order on the dispatcher, so the shard the
	// consumer is waiting on always holds a token and is running: the
	// window bounds buffering without ever deadlocking.
	window := make(chan struct{}, fc.Workers+1)
	jobs := make(chan int)
	go func() {
		for sh := 0; sh < fc.Shards; sh++ {
			window <- struct{}{}
			jobs <- sh
		}
		close(jobs)
	}()

	done := make(chan struct{})
	for w := 0; w < fc.Workers; w++ {
		go func() {
			for sh := range jobs {
				ch := chans[sh]
				stats[sh] = workload.GenerateShard(vp, seed, sh, fc.Shards, func(r *traces.FlowRecord) {
					ch <- r
				})
				close(ch)
			}
			done <- struct{}{}
		}()
	}

	for sh := 0; sh < fc.Shards; sh++ {
		for r := range chans[sh] {
			emit(r)
		}
		<-window // shard fully drained: admit the next one
	}
	for w := 0; w < fc.Workers; w++ {
		<-done
	}

	return mergeStats(vp, fc, stats)
}
