package fleet

import (
	"context"
	"iter"
	"sync"

	"insidedropbox/internal/traces"
	"insidedropbox/internal/workload"
)

// streamBuf is the per-shard channel capacity on the ordered streaming
// path: a producing worker runs at most this many records ahead of the
// consumer before blocking.
const streamBuf = 1024

// ctxCheckMask amortizes ctx.Err() polling on the consumer loop: the
// context is checked once every ctxCheckMask+1 records (plus once per
// drained shard), keeping cancellation latency far below a shard while
// staying off the per-record hot path.
const ctxCheckMask = 0xff

// StreamRecords runs a sharded generation and delivers every record to
// emit in canonical order — shard 0's records first (in generation order),
// then shard 1's, and so on — while shards execute concurrently on the
// worker pool. emit runs on the calling goroutine; returning false stops
// the stream early (no error: a consumer break is a normal outcome).
//
// Memory stays bounded regardless of population size: shards are admitted
// in index order through a window of Workers+1 tokens, so at most
// Workers+1 shards are generating or parked ahead of the consumer, each
// buffering at most streamBuf records before its producer blocks. No shard
// output is ever fully materialized.
//
// Cancelling ctx (or stopping via emit) halts promptly, bounded by one
// shard per worker: in-flight shards finish generating with their output
// discarded, queued shards never start, and every goroutine exits before
// StreamRecords returns. On cancellation the partial stats are returned
// with ctx.Err().
//
// The returned stats describe generation, not delivery: after an early
// stop they include the shards that finished generating with discarded
// output, so stats.Records can exceed the number of records emit
// received. Count deliveries in the emit callback when that distinction
// matters; on a full run the two are equal.
func StreamRecords(ctx context.Context, vp workload.VPConfig, seed int64, fc Config, emit func(*traces.FlowRecord) bool) (VPStats, error) {
	fc = fc.normalized()
	vp = fc.apply(vp)

	chans := make([]chan *traces.FlowRecord, fc.Shards)
	for i := range chans {
		chans[i] = make(chan *traces.FlowRecord, streamBuf)
	}
	stats := make([]workload.ShardStats, fc.Shards)

	// stop tears the pipeline down: the dispatcher quits admitting shards,
	// and producers blocked on a full channel drop the rest of their
	// shard's records instead of waiting for a consumer that left.
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }

	// Admission happens in shard order on the dispatcher, so the shard the
	// consumer is waiting on always holds a token and is running: the
	// window bounds buffering without ever deadlocking.
	window := make(chan struct{}, fc.Workers+1)
	jobs := make(chan int)
	go func() {
		defer close(jobs)
		for sh := 0; sh < fc.Shards; sh++ {
			select {
			case window <- struct{}{}:
			case <-stop:
				return
			}
			select {
			case jobs <- sh:
			case <-stop:
				return
			}
		}
	}()

	tracker := &shardTracker{fc: fc, vp: vp.Name}
	var wg sync.WaitGroup
	for w := 0; w < fc.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sh := range jobs {
				ch := chans[sh]
				dropping := false
				stalls := 0
				var hookErr error
				stats[sh], hookErr = tracker.run(sh, func() workload.ShardStats {
					return workload.GenerateShard(vp, seed, sh, fc.Shards, func(r *traces.FlowRecord) {
						if dropping {
							return
						}
						// Fast path: buffer space available. The
						// blocking select below is reached only when the
						// producer would actually stall on the consumer
						// (or the stream is being torn down) — that's the
						// backpressure signal the stall counter tracks.
						select {
						case ch <- r:
							return
						default:
						}
						stalls++
						select {
						case ch <- r:
						case <-stop:
							dropping = true
						}
					})
				})
				if stalls > 0 {
					mStreamStalls.Add(uint64(stalls))
				}
				if hookErr != nil {
					// Latch only — teardown stays consumer-driven (the
					// consumer notices the abort at its next check and
					// calls halt), so the dispatcher/window protocol keeps
					// its invariant that every awaited channel gets closed.
					tracker.abort(hookErr)
				}
				close(ch)
			}
		}()
	}
	// finish tears the pipeline down (halt is a no-op on the natural-
	// completion path) and waits for every worker to exit before stats
	// are merged — workers write stats[sh] until then. A latched
	// AfterShard hook error takes precedence over the caller's reason.
	finish := func(err error) (VPStats, error) {
		halt()
		wg.Wait()
		if hookErr := tracker.abortErr(); hookErr != nil {
			err = hookErr
		}
		return mergeStats(vp, fc, stats), err
	}

	var n uint
	for sh := 0; sh < fc.Shards; sh++ {
		if ctx.Err() != nil {
			return finish(ctx.Err())
		}
		if tracker.aborted() {
			return finish(nil) // finish surfaces the latched hook error
		}
		for r := range chans[sh] {
			if n&ctxCheckMask == 0 {
				// Sampled at the ctx-poll cadence so the depth gauge
				// stays off the per-record path.
				mStreamDepth.Set(int64(len(chans[sh])))
				if ctx.Err() != nil {
					return finish(ctx.Err())
				}
				if tracker.aborted() {
					return finish(nil)
				}
			}
			n++
			if !emit(r) {
				return finish(nil)
			}
		}
		<-window // shard fully drained: admit the next one
	}
	return finish(nil)
}

// Records returns the record stream of one vantage point as a Go 1.23+
// iterator: the streaming abstraction CSV/binary export, aggregation and
// user analysis all consume. Records are yielded in canonical shard order
// with bounded buffering; breaking out of the range loop tears the
// generating workers down cleanly. The final pair carries a nil record and
// ctx.Err() if the context was cancelled mid-stream; otherwise err is
// always nil.
//
// Records yielded by the iterator remain valid after the loop advances
// (this path does not pool record storage).
func Records(ctx context.Context, vp workload.VPConfig, seed int64, fc Config) iter.Seq2[*traces.FlowRecord, error] {
	return func(yield func(*traces.FlowRecord, error) bool) {
		_, err := StreamRecords(ctx, vp, seed, fc, func(r *traces.FlowRecord) bool {
			return yield(r, nil)
		})
		if err != nil {
			yield(nil, err)
		}
	}
}

// StreamOrdered delivers every record to emit in canonical shard order.
//
// Deprecated: StreamOrdered is the pre-context callback shape, kept for
// bit-identical compatibility. Use StreamRecords (cancellable, stoppable)
// or the Records iterator.
func StreamOrdered(vp workload.VPConfig, seed int64, fc Config, emit func(*traces.FlowRecord)) VPStats {
	stats, _ := StreamRecords(context.Background(), vp, seed, fc, func(r *traces.FlowRecord) bool {
		emit(r)
		return true
	})
	return stats
}
