package fleet

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"insidedropbox/internal/traces"
	"insidedropbox/internal/workload"
)

// waitGoroutines polls until the goroutine count drops back to base
// (within slack), failing the test if the engine leaked workers.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d, started from %d", runtime.NumGoroutine(), base)
}

// TestAggregateCancelMidCampaign cancels an 8-shard aggregation from inside
// a Consume callback and checks the engine stops at shard granularity,
// surfaces context.Canceled, and leaks no goroutines.
func TestAggregateCancelMidCampaign(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cfg := workload.Home1(0.03)
	fc := Config{Shards: 8, Workers: 2}
	var seen int
	_, _, err := Aggregate(ctx, cfg, 1, fc, func(int) Aggregator {
		return &cancelingAgg{after: 100, cancel: cancel, seen: &seen}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Aggregate after mid-run cancel: err = %v, want context.Canceled", err)
	}
	if seen == 0 {
		t.Fatal("cancel fired before any record was consumed")
	}
	waitGoroutines(t, base)
}

type cancelingAgg struct {
	after  int
	cancel context.CancelFunc
	seen   *int
	n      int
}

func (a *cancelingAgg) Consume(*traces.FlowRecord) {
	a.n++
	*a.seen++
	if a.n == a.after {
		a.cancel()
	}
}

func (a *cancelingAgg) Merge(Aggregator) {}

// TestRunVPCancelBeforeStart: a context cancelled before the run starts
// must stop the pool before any shard generates.
func TestRunVPCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, sinks, err := RunVP(ctx, workload.Home1(0.02), 3, Config{Shards: 4}, func(int) Sink {
		return &countingSink{}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Records != 0 {
		t.Fatalf("pre-cancelled run still generated %d records", stats.Records)
	}
	for _, s := range sinks {
		if s.(*countingSink).n != 0 {
			t.Fatal("pre-cancelled run streamed records to a sink")
		}
	}
}

// TestDatasetCancel pins the materializing path's error contract.
func TestDatasetCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ds, err := Dataset(ctx, workload.Home1(0.02), 3, Config{Shards: 2})
	if !errors.Is(err, context.Canceled) || ds != nil {
		t.Fatalf("Dataset under cancelled ctx: ds=%v err=%v", ds, err)
	}
}

// TestStreamRecordsCancel cancels mid-stream and checks prompt teardown
// with ctx.Err() surfaced.
func TestStreamRecordsCancel(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	n := 0
	_, err := StreamRecords(ctx, workload.Home1(0.03), 5, Config{Shards: 8, Workers: 3},
		func(*traces.FlowRecord) bool {
			n++
			if n == 500 {
				cancel()
			}
			return true
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n < 500 {
		t.Fatalf("stream ended after %d records, before the cancel point", n)
	}
	waitGoroutines(t, base)
}

// TestStreamRecordsEarlyStop: emit returning false is a clean consumer
// break — no error, no goroutine leak.
func TestStreamRecordsEarlyStop(t *testing.T) {
	base := runtime.NumGoroutine()
	n := 0
	_, err := StreamRecords(context.Background(), workload.Home1(0.03), 5, Config{Shards: 6, Workers: 2},
		func(*traces.FlowRecord) bool {
			n++
			return n < 200
		})
	if err != nil {
		t.Fatalf("early stop surfaced error: %v", err)
	}
	if n != 200 {
		t.Fatalf("emit called %d times after stopping at 200", n)
	}
	waitGoroutines(t, base)
}

// TestRecordsIteratorMatchesStreamOrdered pins the iterator against the
// legacy callback path: same records, same canonical order, nil errors.
func TestRecordsIteratorMatchesStreamOrdered(t *testing.T) {
	cfg := workload.Campus2(0.04)
	fc := Config{Shards: 4, Workers: 2}

	var legacy []*traces.FlowRecord
	StreamOrdered(cfg, 3, fc, func(r *traces.FlowRecord) { legacy = append(legacy, r) })

	var got []*traces.FlowRecord
	for r, err := range Records(context.Background(), cfg, 3, fc) {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
	}
	if len(got) != len(legacy) {
		t.Fatalf("iterator yielded %d records, callback path %d", len(got), len(legacy))
	}
	for i := range got {
		if !reflect.DeepEqual(*got[i], *legacy[i]) {
			t.Fatalf("record %d differs between iterator and callback paths", i)
		}
	}
}

// TestRecordsIteratorBreak: breaking the range loop mid-stream must tear
// the pipeline down without yielding an error or leaking goroutines.
func TestRecordsIteratorBreak(t *testing.T) {
	base := runtime.NumGoroutine()
	n := 0
	for _, err := range Records(context.Background(), workload.Home1(0.03), 7, Config{Shards: 8, Workers: 3}) {
		if err != nil {
			t.Fatal(err)
		}
		if n++; n == 100 {
			break
		}
	}
	waitGoroutines(t, base)
}

// TestRecordsIteratorCancelYieldsError: a cancelled ctx must surface as
// the iterator's final (nil, err) pair.
func TestRecordsIteratorCancelYieldsError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var finalErr error
	for r, err := range Records(ctx, workload.Home1(0.02), 7, Config{Shards: 2}) {
		if err != nil {
			finalErr = err
			if r != nil {
				t.Fatal("error pair carried a record")
			}
		}
	}
	if !errors.Is(finalErr, context.Canceled) {
		t.Fatalf("final err = %v, want context.Canceled", finalErr)
	}
}

// TestWriterSinkLatchesError: the RecordWriter adapter stops writing after
// the first failure and preserves it.
func TestWriterSinkLatchesError(t *testing.T) {
	fw := &failingWriter{failAt: 3}
	ws := &WriterSink{W: fw}
	for i := 0; i < 10; i++ {
		ws.Consume(&traces.FlowRecord{})
	}
	if ws.Err == nil {
		t.Fatal("write error not latched")
	}
	if fw.writes != 3 {
		t.Fatalf("writer saw %d writes after failing at 3", fw.writes)
	}
}

type failingWriter struct {
	writes, failAt int
}

func (f *failingWriter) Write(*traces.FlowRecord) error {
	f.writes++
	if f.writes >= f.failAt {
		return errors.New("disk full")
	}
	return nil
}

func (f *failingWriter) Flush() error { return nil }
