package fleet

import (
	"context"
	"hash/fnv"
	"sync"
	"testing"

	"insidedropbox/internal/telemetry"
	"insidedropbox/internal/traces"
	"insidedropbox/internal/workload"
)

// TestObserverShardEvents pins the Config.Observer contract: every shard
// reports exactly once, from concurrent workers, with monotonically
// unique Done counts and the records the shard actually produced.
func TestObserverShardEvents(t *testing.T) {
	const shards = 8
	var (
		mu     sync.Mutex
		events []ShardEvent
	)
	fc := Config{Shards: shards, Workers: 4, Observer: func(ev ShardEvent) {
		mu.Lock()
		defer mu.Unlock()
		events = append(events, ev)
	}}
	_, stats, err := Summarize(context.Background(), workload.Home1(0.02), 9, fc)
	if err != nil {
		t.Fatal(err)
	}

	if len(events) != shards {
		t.Fatalf("observer saw %d events, want %d", len(events), shards)
	}
	seenShard := map[int]bool{}
	seenDone := map[int]bool{}
	var records int
	for _, ev := range events {
		if ev.VP != stats.Cfg.Name {
			t.Fatalf("event VP = %q, want %q", ev.VP, stats.Cfg.Name)
		}
		if ev.Shards != shards || ev.Shard < 0 || ev.Shard >= shards {
			t.Fatalf("event shard %d/%d out of range", ev.Shard, ev.Shards)
		}
		if seenShard[ev.Shard] {
			t.Fatalf("shard %d reported twice", ev.Shard)
		}
		seenShard[ev.Shard] = true
		if ev.Done < 1 || ev.Done > shards || seenDone[ev.Done] {
			t.Fatalf("Done = %d invalid or duplicated", ev.Done)
		}
		seenDone[ev.Done] = true
		records += ev.Records
	}
	if records != stats.Records {
		t.Fatalf("observer records sum %d != stats %d", records, stats.Records)
	}
}

// TestStreamGoldenWithTelemetry pins the telemetry layer's invisibility
// contract (the package doc's promise): the ordered streaming path under
// concurrent workers, with the fleet's counters active and a concurrent
// snapshot reader polling them, still produces the exact golden byte
// stream workload.TestRecordStreamGolden records for the sequential
// path with telemetry unread. A single diverging byte fails the hash.
func TestStreamGoldenWithTelemetry(t *testing.T) {
	const want = 0x1887b88d5f86bad5 // home1-4shard golden (workload/golden_test.go)

	stop := make(chan struct{})
	var poller sync.WaitGroup
	poller.Add(1)
	go func() { // the periodic logger's access pattern, at full speed
		defer poller.Done()
		for {
			select {
			case <-stop:
				return
			default:
				telemetry.Snapshot()
			}
		}
	}()

	h := fnv.New64a()
	w := traces.NewWriter(h)
	fc := Config{Shards: 4, Workers: 4, Observer: func(ShardEvent) {}}
	stats, err := StreamRecords(context.Background(), workload.Home1(0.02), 7, fc,
		func(r *traces.FlowRecord) bool {
			if err := w.Write(r); err != nil {
				t.Error(err)
				return false
			}
			return true
		})
	close(stop)
	poller.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := h.Sum64(); got != want {
		t.Fatalf("streamed hash = %#x, want %#x (telemetry changed the record stream)", got, want)
	}

	// The instrumentation did fire: the fleet counters must have seen
	// every record this stream carried.
	snap := telemetry.Snapshot()
	if snap.Counters["fleet.records"] < uint64(stats.Records) {
		t.Fatalf("fleet.records = %d, want >= %d", snap.Counters["fleet.records"], stats.Records)
	}
	if snap.Timings["fleet.shard_seconds"].Count < 4 {
		t.Fatalf("fleet.shard_seconds count = %d, want >= 4", snap.Timings["fleet.shard_seconds"].Count)
	}
}
