package fleet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"insidedropbox/internal/telemetry"
	"insidedropbox/internal/workload"
)

// The engine's telemetry. Everything here is flushed at shard granularity
// — one histogram observation and a handful of atomic adds per completed
// shard — so the per-record hot path carries no instrumentation beyond
// the plain-int counters that already ride inside RecordPool and the
// streaming producers.
var (
	mShardSeconds = telemetry.NewHist("fleet.shard_seconds")
	mRecords      = telemetry.NewCounter("fleet.records")
	mShardsDone   = telemetry.NewCounter("fleet.shards_done")
	mWorkersBusy  = telemetry.NewGauge("fleet.workers_busy")
	mStreamDepth  = telemetry.NewGauge("fleet.stream_depth")
	mStreamStalls = telemetry.NewCounter("fleet.stream_stalls")
	mPoolHits     = telemetry.NewCounter("fleet.pool_hits")
	mPoolMisses   = telemetry.NewCounter("fleet.pool_misses")
)

// ShardEvent reports one completed generation shard to a Config.Observer.
// Events are observation-only: the engine's output is byte-identical with
// or without an observer installed.
type ShardEvent struct {
	// VP names the vantage point being generated ("home1").
	VP string
	// Shard is this shard's index of Shards total.
	Shard, Shards int
	// Records is the number of flow records this shard emitted.
	Records int
	// Elapsed is the shard's generation wall time.
	Elapsed time.Duration
	// Done counts shards completed so far in this run, including this
	// one. Shards finish out of index order, so Done — not Shard — is
	// the progress measure.
	Done int
}

// shardTracker wraps shard execution with the engine's telemetry: wall
// time, record counts, worker occupancy, and the per-run completion count
// Observer events carry. It also latches the first AfterShard hook error
// so a failed checkpoint aborts the run at shard granularity. One tracker
// serves one run; run is called from the worker goroutines.
type shardTracker struct {
	fc   Config
	vp   string
	done atomic.Int64

	mu  sync.Mutex
	err error
}

// abort latches the first hook error; later errors are dropped.
func (t *shardTracker) abort(err error) {
	t.mu.Lock()
	if t.err == nil {
		t.err = err
	}
	t.mu.Unlock()
}

func (t *shardTracker) aborted() bool { return t.abortErr() != nil }

func (t *shardTracker) abortErr() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

func (t *shardTracker) run(sh int, gen func() workload.ShardStats) (workload.ShardStats, error) {
	mWorkersBusy.Add(1)
	start := time.Now()
	stats := gen()
	elapsed := time.Since(start)
	mWorkersBusy.Add(-1)
	mShardSeconds.Observe(elapsed)
	mRecords.Add(uint64(stats.Records))
	mShardsDone.Inc()
	ev := ShardEvent{
		VP:      t.vp,
		Shard:   sh,
		Shards:  t.fc.Shards,
		Records: stats.Records,
		Elapsed: elapsed,
		Done:    int(t.done.Add(1)),
	}
	if t.fc.Observer != nil {
		t.fc.Observer(ev)
	}
	if t.fc.AfterShard != nil {
		if err := t.fc.AfterShard(ev); err != nil {
			return stats, fmt.Errorf("fleet: shard %d completion hook: %w", sh, err)
		}
	}
	return stats, nil
}
