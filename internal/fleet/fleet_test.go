package fleet

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"

	"insidedropbox/internal/traces"
	"insidedropbox/internal/wire"
	"insidedropbox/internal/workload"
)

// mustDataset / mustSummarize run the ctx-aware engine entry points under
// a background context, failing the test on the (impossible without
// cancellation) error path.
func mustDataset(tb testing.TB, cfg workload.VPConfig, seed int64, fc Config) *workload.Dataset {
	tb.Helper()
	ds, err := Dataset(context.Background(), cfg, seed, fc)
	if err != nil {
		tb.Fatal(err)
	}
	return ds
}

func mustSummarize(tb testing.TB, cfg workload.VPConfig, seed int64, fc Config) (*Summary, VPStats) {
	tb.Helper()
	sum, stats, err := Summarize(context.Background(), cfg, seed, fc)
	if err != nil {
		tb.Fatal(err)
	}
	return sum, stats
}

// TestOneShardMatchesLegacyGenerate pins the regression contract: a 1-shard
// fleet run reproduces the sequential workload.Generate output bit for bit,
// whatever the worker setting.
func TestOneShardMatchesLegacyGenerate(t *testing.T) {
	cfg := workload.Home1(0.03)
	legacy := workload.Generate(cfg, 42)
	fl := mustDataset(t, cfg, 42, Config{Shards: 1, Workers: 4})

	if len(fl.Records) != len(legacy.Records) {
		t.Fatalf("record counts differ: fleet %d vs legacy %d", len(fl.Records), len(legacy.Records))
	}
	for i := range legacy.Records {
		if !reflect.DeepEqual(*fl.Records[i], *legacy.Records[i]) {
			t.Fatalf("record %d differs:\nfleet  %+v\nlegacy %+v", i, *fl.Records[i], *legacy.Records[i])
		}
	}
	if !reflect.DeepEqual(fl.BackgroundByDay, legacy.BackgroundByDay) ||
		!reflect.DeepEqual(fl.YouTubeByDay, legacy.YouTubeByDay) {
		t.Fatal("background arrays differ")
	}
	if fl.DropboxHouseholds != legacy.DropboxHouseholds || fl.DropboxDevices != legacy.DropboxDevices {
		t.Fatalf("ground truth differs: %d/%d vs %d/%d",
			fl.DropboxHouseholds, fl.DropboxDevices, legacy.DropboxHouseholds, legacy.DropboxDevices)
	}
}

// TestWorkerCountInvariance pins the core determinism contract: with the
// shard count fixed, the worker count must not change any output — neither
// the materialized records nor any merged aggregate metric, floats included.
func TestWorkerCountInvariance(t *testing.T) {
	cfg := workload.Home1(0.02)
	const shards = 7

	workers := []int{1, 4, runtime.GOMAXPROCS(0)}
	var baseDS *workload.Dataset
	var baseMetrics map[string]float64
	for _, w := range workers {
		fc := Config{Shards: shards, Workers: w}
		ds := mustDataset(t, cfg, 9, fc)
		sum, stats := mustSummarize(t, cfg, 9, fc)
		if stats.Records != len(ds.Records) {
			t.Fatalf("workers=%d: stats records %d != dataset %d", w, stats.Records, len(ds.Records))
		}
		m := sum.Metrics()
		if baseDS == nil {
			baseDS, baseMetrics = ds, m
			continue
		}
		if len(ds.Records) != len(baseDS.Records) {
			t.Fatalf("workers=%d: %d records, want %d", w, len(ds.Records), len(baseDS.Records))
		}
		for i := range ds.Records {
			if !reflect.DeepEqual(*ds.Records[i], *baseDS.Records[i]) {
				t.Fatalf("workers=%d: record %d differs", w, i)
			}
		}
		if !reflect.DeepEqual(m, baseMetrics) {
			t.Fatalf("workers=%d: aggregate metrics differ:\n%v\nvs\n%v", w, m, baseMetrics)
		}
	}
}

// TestStreamOrderedMatchesDataset checks the bounded-buffer streaming path
// delivers exactly the Dataset record set, in canonical shard order.
func TestStreamOrderedMatchesDataset(t *testing.T) {
	cfg := workload.Campus2(0.05)
	fc := Config{Shards: 5, Workers: 3}

	var streamed []*traces.FlowRecord
	stats := StreamOrdered(cfg, 3, fc, func(r *traces.FlowRecord) {
		streamed = append(streamed, r)
	})
	if stats.Records != len(streamed) {
		t.Fatalf("stats records %d != streamed %d", stats.Records, len(streamed))
	}

	ds := mustDataset(t, cfg, 3, fc)
	if len(ds.Records) != len(streamed) {
		t.Fatalf("streamed %d records, dataset has %d", len(streamed), len(ds.Records))
	}
	workload.SortRecords(streamed)
	for i := range streamed {
		if !reflect.DeepEqual(*streamed[i], *ds.Records[i]) {
			t.Fatalf("record %d differs between streaming and dataset paths", i)
		}
	}
}

// TestShardingChangesSampleNotScale: different shard counts draw different
// population samples (per-shard seeds) but the same population size, so
// headline aggregates stay in the same regime.
func TestShardingChangesSampleNotScale(t *testing.T) {
	cfg := workload.Home1(0.03)
	s1, st1 := mustSummarize(t, cfg, 11, Config{Shards: 1})
	s8, st8 := mustSummarize(t, cfg, 11, Config{Shards: 8})
	if st1.Cfg.TotalIPs != st8.Cfg.TotalIPs {
		t.Fatalf("population size changed with shard count: %d vs %d", st1.Cfg.TotalIPs, st8.Cfg.TotalIPs)
	}
	if s1.Flows == s8.Flows {
		t.Log("1-shard and 8-shard runs drew identical flow counts (possible but unlikely)")
	}
	ratio := float64(s8.Flows) / float64(s1.Flows)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("8-shard sample out of regime: %d vs %d flows", s8.Flows, s1.Flows)
	}
	if st8.Households == 0 || st8.Devices == 0 {
		t.Fatal("sharded run lost ground-truth counters")
	}
}

func TestShardRangePartition(t *testing.T) {
	for _, tc := range []struct{ total, shards int }{
		{0, 1}, {1, 1}, {10, 1}, {10, 3}, {10, 10}, {10, 16}, {1000, 7}, {250, 8},
	} {
		next := 0
		for sh := 0; sh < tc.shards; sh++ {
			lo, hi := workload.ShardRange(tc.total, sh, tc.shards)
			if lo != next {
				t.Fatalf("total=%d shards=%d: shard %d starts at %d, want %d", tc.total, tc.shards, sh, lo, next)
			}
			if hi < lo {
				t.Fatalf("total=%d shards=%d: shard %d inverted range [%d,%d)", tc.total, tc.shards, sh, lo, hi)
			}
			if size := hi - lo; size > tc.total/tc.shards+1 {
				t.Fatalf("total=%d shards=%d: shard %d oversized (%d)", tc.total, tc.shards, sh, size)
			}
			next = hi
		}
		if next != tc.total {
			t.Fatalf("total=%d shards=%d: ranges cover [0,%d), want [0,%d)", tc.total, tc.shards, next, tc.total)
		}
	}
}

func TestShardSeedsDecorrelated(t *testing.T) {
	seen := map[int64]int{}
	for sh := 0; sh < 128; sh++ {
		s := workload.ShardSeed(77, sh)
		if prev, dup := seen[s]; dup {
			t.Fatalf("shards %d and %d share seed %d", prev, sh, s)
		}
		seen[s] = sh
	}
	if workload.ShardSeed(77, 0) != 77 {
		t.Fatal("shard 0 must keep the root seed (legacy compatibility)")
	}
	if workload.ShardSeed(77, 1) == workload.ShardSeed(78, 1) {
		t.Fatal("shard seeds must depend on the campaign seed")
	}
}

func TestDevicesScale(t *testing.T) {
	cfg := workload.Home1(0.02)
	_, stats := mustSummarize(t, cfg, 5, Config{Shards: 4, DevicesScale: 3})
	if want := cfg.TotalIPs * 3; stats.Cfg.TotalIPs != want {
		t.Fatalf("DevicesScale=3: TotalIPs = %d, want %d", stats.Cfg.TotalIPs, want)
	}
	_, unscaled := mustSummarize(t, cfg, 5, Config{Shards: 4})
	if unscaled.Cfg.TotalIPs != cfg.TotalIPs {
		t.Fatalf("default scale changed population: %d vs %d", unscaled.Cfg.TotalIPs, cfg.TotalIPs)
	}
}

// TestSubscriberIPsDistinctAtScale guards the large-population address
// layout: the legacy formula wrapped at 64k subscribers, silently merging
// households exactly where DevicesScale operates.
func TestSubscriberIPsDistinctAtScale(t *testing.T) {
	seen := make(map[wire.IP]int, 200_000)
	for i := 0; i < 200_000; i++ {
		ip := workload.SubscriberIP(57, i)
		if prev, dup := seen[ip]; dup {
			t.Fatalf("subscribers %d and %d share address %v", prev, i, ip)
		}
		seen[ip] = i
	}
	// Legacy layout preserved below the first block boundary.
	if workload.SubscriberIP(57, 12345) != wire.MakeIP(10, 57, 49, 95) {
		t.Fatal("small-index addresses diverged from the legacy layout")
	}
}

// TestShardCapEnforced pins the namespace-block safety bound: the engine
// clamps to workload.MaxShards instead of letting uint32 namespace blocks
// wrap and collide.
func TestShardCapEnforced(t *testing.T) {
	_, stats := mustSummarize(t, workload.Campus1(0.05), 1, Config{Shards: workload.MaxShards * 4})
	if stats.Shards != workload.MaxShards {
		t.Fatalf("shards = %d, want clamped to %d", stats.Shards, workload.MaxShards)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("GenerateShard accepted nshards above MaxShards")
		}
	}()
	workload.GenerateShard(workload.Campus1(0.05), 1, 0, workload.MaxShards+1, func(*traces.FlowRecord) {})
}

func TestLogHistQuantiles(t *testing.T) {
	var h LogHist
	for v := 1.0; v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	med := h.Quantile(0.5)
	if med < 400 || med > 625 {
		t.Fatalf("median of 1..1000 = %g, want within a bucket of 500", med)
	}
	if h.Quantile(0) < 1 || h.Quantile(1) != 1000 {
		t.Fatalf("extremes: q0=%g q1=%g", h.Quantile(0), h.Quantile(1))
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("min/max: %g/%g", h.Min(), h.Max())
	}
	if math.Abs(h.Mean()-500.5) > 1e-9 {
		t.Fatalf("mean = %g", h.Mean())
	}
}

func TestLogHistMergeEquivalence(t *testing.T) {
	var all, a, b LogHist
	for i := 0; i < 5000; i++ {
		v := math.Pow(10, float64(i%11)) * float64(1+i%7)
		all.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.MergeHist(&b)
	if !reflect.DeepEqual(a, all) {
		t.Fatal("merged histogram differs from single-stream histogram")
	}
}

// countingSink verifies the streaming path never materializes: it tracks
// only a running count and the high-water mark of buffered records implied
// by the bounded window (which we can't observe directly, so we just assert
// the stream arrives and the sink kept nothing).
type countingSink struct{ n int }

func (c *countingSink) Consume(*traces.FlowRecord) { c.n++ }

// TestAggregateScalesWithBoundedMemory runs a population roughly 10x the
// dropsim default (-scale 0.05) through the streaming path. The path keeps
// no records by construction; this test pins that it completes and that the
// aggregates carry the expected population growth.
func TestAggregateScalesWithBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("large population")
	}
	cfg := workload.Home1(0.05)
	fc := Config{Shards: 4 * runtime.GOMAXPROCS(0), DevicesScale: 10}
	sum, stats := mustSummarize(t, cfg, 2012, fc)
	if stats.Cfg.TotalIPs < 9000 {
		t.Fatalf("population too small for a scale test: %d IPs", stats.Cfg.TotalIPs)
	}
	if sum.Flows < 100_000 {
		t.Fatalf("suspiciously few flows at 10x scale: %d", sum.Flows)
	}
	if got, want := len(sum.Devices), stats.Devices; got > want {
		t.Fatalf("summary counted %d devices, ground truth only %d", got, want)
	}
	if sum.StoreFlows == 0 || sum.RetrieveFlows == 0 {
		t.Fatal("streaming aggregation lost storage flows")
	}
}

func TestRunVPSinkPerShard(t *testing.T) {
	cfg := workload.Campus1(0.1)
	var made []int
	_, sinks, err := RunVP(context.Background(), cfg, 1, Config{Shards: 6, Workers: 2}, func(sh int) Sink {
		made = append(made, sh)
		return &countingSink{}
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 2, 3, 4, 5}; !reflect.DeepEqual(made, want) {
		t.Fatalf("sinks built as %v, want %v", made, want)
	}
	total := 0
	for _, s := range sinks {
		total += s.(*countingSink).n
	}
	if total == 0 {
		t.Fatal("no records streamed to sinks")
	}
}

// BenchmarkShardedGeneration compares sequential materializing generation
// against sharded streaming aggregation of the same population.
func BenchmarkShardedGeneration(b *testing.B) {
	for _, scale := range []float64{0.05, 0.2} {
		cfg := workload.Home1(scale)
		b.Run(fmt.Sprintf("scale=%.2f/sequential", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ds := workload.Generate(cfg, int64(i))
				if len(ds.Records) == 0 {
					b.Fatal("empty")
				}
			}
		})
		for _, shards := range []int{4, 16} {
			b.Run(fmt.Sprintf("scale=%.2f/shards=%d", scale, shards), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sum, _ := mustSummarize(b, cfg, int64(i), Config{Shards: shards})
					if sum.Flows == 0 {
						b.Fatal("empty")
					}
				}
			})
		}
	}
}

// TestPooledAggregateMatchesUnpooled pins the pooled Aggregate path
// (per-shard RecordPools, records recycled after Consume) against a
// reference built from the plain GenerateShard stream with no pooling:
// every metric, including order-sensitive float accumulators, must match
// exactly.
func TestPooledAggregateMatchesUnpooled(t *testing.T) {
	cfg := workload.Home1(0.05)
	const seed, shards = 7, 4

	got, stats := mustSummarize(t, cfg, seed, Config{Shards: shards, Workers: 2})
	if stats.Records == 0 {
		t.Fatal("no records generated")
	}

	var want *Summary
	for sh := 0; sh < shards; sh++ {
		s := NewSummary(cfg.Days)
		workload.GenerateShard(cfg, seed, sh, shards, s.Consume)
		if want == nil {
			want = s
		} else {
			want.Merge(s)
		}
	}

	gm, wm := got.Metrics(), want.Metrics()
	if !reflect.DeepEqual(gm, wm) {
		t.Fatalf("pooled aggregate metrics diverge:\n got %v\nwant %v", gm, wm)
	}
}
