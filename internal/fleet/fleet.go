// Package fleet is the sharded, streaming campaign engine that scales
// vantage-point simulations from thousands to millions of devices.
//
// The legacy workload generator runs one rng stream over the whole
// population and materializes every flow record in a single slice, which
// caps campaigns at what fits in memory on one core. Fleet instead
// partitions a population deterministically into shards (workload.ShardRange)
// with per-shard seeds (workload.ShardSeed), runs the shards concurrently on
// a bounded worker pool, and streams the generated records into per-shard
// sinks that are merged in shard-index order once all workers finish.
//
// The determinism contract:
//
//   - (seed, shard, nshards) fully determines a shard's record stream —
//     the worker count never changes any output, only wall-clock time;
//   - merges always happen in shard-index order, so even floating-point
//     aggregates are bit-identical across worker counts;
//   - a 1-shard run reproduces the legacy sequential workload.Generate
//     output exactly.
//
// On the streaming path (Aggregate, StreamOrdered) memory stays bounded
// regardless of population size: records are consumed as they are
// generated and never accumulated.
//
// The aggregation path is also allocation-free per record: each shard
// draws its FlowRecords from a per-shard RecordPool and recycles them the
// moment the aggregator's Consume returns. Pooling is invisible in the
// results — pooled and unpooled generation emit bit-identical records —
// but it imposes an ownership rule on aggregators: never retain a record
// (or its NotifyNamespaces slice) past Consume; copy what you keep. The
// rules are spelled out on RecordPool, and PERFORMANCE.md tracks the
// throughput this buys (2.2x records/sec, 12.5x fewer allocs/record on
// the 8-shard campaign scenario).
package fleet

import (
	"context"
	"runtime"
	"sync"

	"insidedropbox/internal/traces"
	"insidedropbox/internal/workload"
)

// Config sizes a sharded fleet run.
type Config struct {
	// Shards is the number of deterministic population partitions. The
	// shard count is part of the experiment definition: shard k draws
	// from an independent stream seeded by workload.ShardSeed(seed, k),
	// so changing Shards changes the generated population sample, while
	// changing Workers never does.
	Shards int

	// Workers bounds how many shards generate concurrently. Zero means
	// GOMAXPROCS. Workers only affects wall-clock time, never results.
	Workers int

	// DevicesScale multiplies the vantage point's subscriber population
	// (VPConfig.TotalIPs) before sharding; zero or negative means 1.0.
	// This is how campaigns grow 10-1000x beyond the paper's populations
	// without touching the calibrated per-VP configs.
	DevicesScale float64

	// Observer, when non-nil, receives one ShardEvent as each shard
	// finishes generating. Shards complete concurrently, so Observer
	// must be safe for concurrent use; it runs on the worker goroutines
	// and should return quickly. Observation only — installing an
	// observer never changes any generated output.
	Observer func(ShardEvent)

	// AfterShard, when non-nil, runs after each shard finishes generating
	// and after the Observer — the checkpoint hook campaign runners use to
	// persist per-shard progress. Like Observer it runs on the worker
	// goroutines and must be safe for concurrent use. Unlike Observer it
	// can fail: a non-nil error aborts the run at shard granularity
	// (in-flight shards finish, nothing new starts) and is returned from
	// the engine entry point. The hook must never change generated output
	// — only whether the run continues.
	AfterShard func(ShardEvent) error
}

func (c Config) normalized() Config {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Shards > workload.MaxShards {
		c.Shards = workload.MaxShards
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers > c.Shards {
		c.Workers = c.Shards
	}
	if c.DevicesScale <= 0 {
		c.DevicesScale = 1
	}
	return c
}

// apply scales the vantage point population per DevicesScale.
func (c Config) apply(vp workload.VPConfig) workload.VPConfig {
	if c.DevicesScale != 1 {
		vp.TotalIPs = int(float64(vp.TotalIPs) * c.DevicesScale)
		if vp.TotalIPs < 1 {
			vp.TotalIPs = 1
		}
	}
	return vp
}

// Sink consumes one shard's record stream. The engine builds one sink per
// shard and never shares one across goroutines, so implementations need no
// locking.
//
// Ownership: on the RunVP path records belong to the sink once Consume is
// called (RecordBuffer keeps them). On the pooled Aggregate path records
// are recycled the moment Consume returns — see RecordPool for the rules.
type Sink interface {
	Consume(*traces.FlowRecord)
}

// RecordPool recycles FlowRecord storage within one generating shard. It
// is not safe for concurrent use: the engine gives each shard its own
// pool, and the generator's Alloc/Free calls plus the sink's Consume all
// run on that shard's worker goroutine.
//
// Ownership rules for pooled streams:
//
//   - a record obtained from Get is zero-valued and owned by the caller
//     until Put;
//   - Put zeroes the record, so the next Get needs no reset — and any
//     pointer kept past Put observes the record's next life. Consumers
//     on a pooled path must copy whatever they keep (scalar fields are
//     copies already; NotifyNamespaces must be copied element-wise, and
//     string fields are immutable so retaining them is safe);
//   - the record's NotifyNamespaces backing array is never owned by the
//     pool: generators point it at device-owned namespace lists, and
//     zeroing only drops the reference.
type RecordPool struct {
	free []*traces.FlowRecord
	// hits/misses count Get outcomes as plain ints (the pool is
	// single-goroutine by contract); flushTelemetry publishes them.
	hits, misses int
}

// Get returns a zero-valued record.
func (p *RecordPool) Get() *traces.FlowRecord {
	if n := len(p.free); n > 0 {
		p.hits++
		r := p.free[n-1]
		p.free = p.free[:n-1]
		return r
	}
	p.misses++
	return new(traces.FlowRecord)
}

// flushTelemetry publishes the pool's accumulated hit/miss counts to the
// process counters and resets the local tallies. Called once per shard on
// the pooled aggregation path.
func (p *RecordPool) flushTelemetry() {
	if p.hits > 0 {
		mPoolHits.Add(uint64(p.hits))
	}
	if p.misses > 0 {
		mPoolMisses.Add(uint64(p.misses))
	}
	p.hits, p.misses = 0, 0
}

// Put zeroes r and makes it available to the next Get.
func (p *RecordPool) Put(r *traces.FlowRecord) {
	*r = traces.FlowRecord{}
	p.free = append(p.free, r)
}

// VPStats is the merged ground truth of one vantage point's fleet run.
type VPStats struct {
	// Cfg is the effective config after DevicesScale.
	Cfg    workload.VPConfig
	Shards int

	// Records counts emitted flow records across all shards.
	Records int
	// Households and Devices are the generated Dropbox ground truth.
	Households, Devices int

	// Population-level per-day background volumes (from shard 0).
	BackgroundByDay, YouTubeByDay []float64

	// Per-cohort ground truth merged across shards, keyed by cohort name
	// (nil unless the vantage point carries a cohort plan).
	CohortDevices, CohortRecords map[string]int
}

// RunVP executes one vantage point across fc.Shards shards on a bounded
// worker pool. newSink is called once per shard, up front, from the calling
// goroutine; each sink then receives exactly its shard's records, from a
// single worker goroutine. Sinks are returned in shard order so callers can
// merge deterministically. RunVP itself blocks until every shard finished.
//
// Cancelling ctx stops the run at shard granularity: shards already
// generating finish (at most one per worker), no further shards start, and
// RunVP returns ctx.Err() with partial stats and partially-filled sinks.
func RunVP(ctx context.Context, vp workload.VPConfig, seed int64, fc Config, newSink func(shard int) Sink) (VPStats, []Sink, error) {
	fc = fc.normalized()
	vp = fc.apply(vp)

	sinks := make([]Sink, fc.Shards)
	for i := range sinks {
		sinks[i] = newSink(i)
	}
	stats, err := runShards(ctx, fc, vp.Name, func(sh int) workload.ShardStats {
		return workload.GenerateShard(vp, seed, sh, fc.Shards, sinks[sh].Consume)
	})
	return mergeStats(vp, fc, stats), sinks, err
}

// runShards executes runShard for every shard index on a pool of
// fc.Workers goroutines (fc must already be normalized) and returns the
// per-shard stats in shard order. When ctx is cancelled or an AfterShard
// hook fails, not-yet-started shards are skipped (their stats stay zero)
// and the triggering error is returned; in-flight shards always run to
// completion so sinks never observe a truncated shard stream.
func runShards(ctx context.Context, fc Config, vpName string, runShard func(sh int) workload.ShardStats) ([]workload.ShardStats, error) {
	stats := make([]workload.ShardStats, fc.Shards)
	tracker := &shardTracker{fc: fc, vp: vpName}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < fc.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sh := range jobs {
				if ctx.Err() != nil || tracker.aborted() {
					continue // drain the queue without generating
				}
				var err error
				stats[sh], err = tracker.run(sh, func() workload.ShardStats { return runShard(sh) })
				if err != nil {
					tracker.abort(err)
				}
			}
		}()
	}
	for sh := 0; sh < fc.Shards; sh++ {
		jobs <- sh
	}
	close(jobs)
	wg.Wait()
	if err := tracker.abortErr(); err != nil {
		return stats, err
	}
	return stats, ctx.Err()
}

// mergeStats folds per-shard stats in shard-index order.
func mergeStats(vp workload.VPConfig, fc Config, stats []workload.ShardStats) VPStats {
	var merged workload.ShardStats
	for _, s := range stats {
		merged.Merge(s)
	}
	return VPStats{
		Cfg:             vp,
		Shards:          fc.Shards,
		Records:         merged.Records,
		Households:      merged.Households,
		Devices:         merged.Devices,
		BackgroundByDay: merged.BackgroundByDay,
		YouTubeByDay:    merged.YouTubeByDay,
		CohortDevices:   merged.CohortDevices,
		CohortRecords:   merged.CohortRecords,
	}
}

// RecordBuffer is a Sink that materializes its shard's records — the
// compatibility path for consumers that need a full workload.Dataset.
type RecordBuffer struct {
	Records []*traces.FlowRecord
}

// Consume appends one record.
func (b *RecordBuffer) Consume(r *traces.FlowRecord) { b.Records = append(b.Records, r) }

// Dataset materializes a sharded run as a legacy workload.Dataset: shard
// buffers are concatenated in shard order and sorted by first-packet time.
// With fc.Shards == 1 the result is bit-identical to workload.Generate
// (the regression test pins this). A cancelled ctx aborts at shard
// granularity and returns a nil dataset with ctx.Err().
func Dataset(ctx context.Context, vp workload.VPConfig, seed int64, fc Config) (*workload.Dataset, error) {
	stats, sinks, err := RunVP(ctx, vp, seed, fc, func(int) Sink { return &RecordBuffer{} })
	if err != nil {
		return nil, err
	}
	var recs []*traces.FlowRecord
	if stats.Records > 0 {
		recs = make([]*traces.FlowRecord, 0, stats.Records)
	}
	for _, s := range sinks {
		recs = append(recs, s.(*RecordBuffer).Records...)
	}
	workload.SortRecords(recs)
	return &workload.Dataset{
		Cfg:               stats.Cfg,
		Records:           recs,
		BackgroundByDay:   stats.BackgroundByDay,
		YouTubeByDay:      stats.YouTubeByDay,
		DropboxHouseholds: stats.Households,
		DropboxDevices:    stats.Devices,
	}, nil
}

// WriterSink adapts a traces.RecordWriter into a Sink: records stream
// straight into the serialization with no intermediate buffering. The
// first write error latches into Err and suppresses all further writes,
// so a sink on a streaming path can be drained safely after a failure.
type WriterSink struct {
	W   traces.RecordWriter
	Err error
}

// Consume implements Sink.
func (s *WriterSink) Consume(r *traces.FlowRecord) {
	if s.Err == nil {
		s.Err = s.W.Write(r)
	}
}
