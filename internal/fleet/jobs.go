package fleet

import (
	"insidedropbox/internal/traces"
	"insidedropbox/internal/workload"
)

// ShardJob is a contiguous shard range assigned to one generation job —
// the unit a process-level campaign runner fans out across cores or
// processes. Lo is inclusive, Hi exclusive.
type ShardJob struct {
	Job    int
	Lo, Hi int
}

// Shards returns the number of shards in the job's range.
func (j ShardJob) Shards() int { return j.Hi - j.Lo }

// SplitJobs partitions the shard index space [0, shards) into up to jobs
// contiguous, balanced ranges using the same arithmetic as
// workload.ShardRange, so every split is deterministic and covers each
// shard exactly once. When jobs exceeds shards the extra jobs are simply
// not created — every returned job owns at least one shard.
func SplitJobs(shards, jobs int) []ShardJob {
	if shards < 1 {
		shards = 1
	}
	if jobs < 1 {
		jobs = 1
	}
	if jobs > shards {
		jobs = shards
	}
	out := make([]ShardJob, jobs)
	for j := range out {
		lo, hi := workload.ShardRange(shards, j, jobs)
		out[j] = ShardJob{Job: j, Lo: lo, Hi: hi}
	}
	return out
}

// RunShard generates exactly one shard of a sharded campaign into sink on
// the calling goroutine, drawing records from a private RecordPool — the
// single-shard primitive checkpointing runners build on. vp must already
// carry any population scaling (see Config.ScaledVP); (seed, shard,
// nshards) fully determine the emitted stream, exactly as on the
// Aggregate path. The pooled ownership rules apply: sink must not retain
// a record (or its NotifyNamespaces slice) past Consume.
func RunShard(vp workload.VPConfig, seed int64, shard, nshards int, sink Sink) workload.ShardStats {
	pool := new(RecordPool)
	st := workload.GenerateShardSink(vp, seed, shard, nshards, workload.ShardSink{
		Emit: func(r *traces.FlowRecord) {
			sink.Consume(r)
			pool.Put(r)
		},
		Alloc: pool.Get,
		Free:  pool.Put,
	})
	pool.flushTelemetry()
	mRecords.Add(uint64(st.Records))
	mShardsDone.Inc()
	return st
}

// ScaledVP applies the config's DevicesScale to a vantage point — the
// same population scaling every engine entry point performs internally,
// exported so external runners that call RunShard directly resolve the
// identical effective population.
func (c Config) ScaledVP(vp workload.VPConfig) workload.VPConfig {
	return c.normalized().apply(vp)
}
