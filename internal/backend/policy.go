package backend

import "fmt"

// AdmissionPolicy decides what happens to a request that cannot start
// service immediately on its routed node.
type AdmissionPolicy string

const (
	// AdmitQueue waits in the node's FIFO queue; when the queue is full
	// the request is dropped.
	AdmitQueue AdmissionPolicy = "queue"
	// AdmitReject never waits: a request that finds no free server slot
	// is dropped on the spot, regardless of queue depth.
	AdmitReject AdmissionPolicy = "reject"
	// AdmitShed queues like AdmitQueue, but a full queue sheds its oldest
	// waiting request to make room for the new one — stale work is
	// sacrificed for fresh work, the classic overload-shedding shape.
	AdmitShed AdmissionPolicy = "shed"
)

func (p AdmissionPolicy) validate() error {
	switch p {
	case AdmitQueue, AdmitReject, AdmitShed:
		return nil
	}
	return fmt.Errorf("backend: unknown admission policy %q (want queue, reject or shed)", p)
}

// RoutingPolicy picks the serving node among a class's pool.
type RoutingPolicy string

const (
	// RouteRoundRobin cycles through the class's nodes in config order.
	RouteRoundRobin RoutingPolicy = "round-robin"
	// RouteLeastLoaded picks the node with the fewest requests in service
	// plus waiting; ties go to the lowest-indexed node.
	RouteLeastLoaded RoutingPolicy = "least-loaded"
	// RouteRegionAffine maps the request's region onto the class's region
	// groups, then picks the least-loaded node inside the group — locality
	// first, balance second.
	RouteRegionAffine RoutingPolicy = "region-affine"
)

func (p RoutingPolicy) validate() error {
	switch p {
	case RouteRoundRobin, RouteLeastLoaded, RouteRegionAffine:
		return nil
	}
	return fmt.Errorf("backend: unknown routing policy %q (want round-robin, least-loaded or region-affine)", p)
}

// router resolves a request to a node index. Node state lives in the
// simulator; the router only holds the static class → node-pool mapping
// plus the round-robin cursors.
type router struct {
	policy RoutingPolicy
	// pools[class] lists node indices of that class, in config order.
	pools [numClasses][]int32
	// regions[class] groups the class's pool by NodeConfig.Region (group
	// order = first appearance in config order), for region-affine.
	regions [numClasses][][]int32
	cursor  [numClasses]int
}

func newRouter(policy RoutingPolicy, nodes []NodeConfig) (*router, error) {
	if err := policy.validate(); err != nil {
		return nil, err
	}
	rt := &router{policy: policy}
	for i, n := range nodes {
		if n.Class >= numClasses {
			return nil, fmt.Errorf("backend: node %q has unknown class %d", n.Name, n.Class)
		}
		rt.pools[n.Class] = append(rt.pools[n.Class], int32(i))
	}
	for c := range rt.pools {
		byRegion := map[uint8]int{}
		for _, idx := range rt.pools[c] {
			reg := nodes[idx].Region
			g, ok := byRegion[reg]
			if !ok {
				g = len(rt.regions[c])
				byRegion[reg] = g
				rt.regions[c] = append(rt.regions[c], nil)
			}
			rt.regions[c][g] = append(rt.regions[c][g], idx)
		}
	}
	return rt, nil
}

// route picks the serving node for rq. load reports a node's current
// occupancy (in service + queued). ok is false when the class has no pool
// (the request is dropped as unroutable).
func (rt *router) route(rq Request, load func(int32) int) (int32, bool) {
	pool := rt.pools[rq.Class]
	if len(pool) == 0 {
		return 0, false
	}
	switch rt.policy {
	case RouteRoundRobin:
		i := rt.cursor[rq.Class] % len(pool)
		rt.cursor[rq.Class]++
		return pool[i], true
	case RouteRegionAffine:
		groups := rt.regions[rq.Class]
		pool = groups[int(rq.Region)%len(groups)]
		fallthrough
	default: // RouteLeastLoaded, and the within-group pick of region-affine
		best, bestLoad := pool[0], load(pool[0])
		for _, idx := range pool[1:] {
			if l := load(idx); l < bestLoad {
				best, bestLoad = idx, l
			}
		}
		return best, true
	}
}
