package backend

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// req is a test-shorthand request constructor.
func req(at time.Duration, class Class, work float64, region uint8) Request {
	return Request{Arrive: at, Class: class, Work: work, Region: region, Key: uint64(at) ^ uint64(work)}
}

// oneNode is a single-node config with the given knobs.
func oneNode(rate float64, conc, depth int, adm AdmissionPolicy) Config {
	return Config{
		Admission: adm,
		Routing:   RouteRoundRobin,
		Nodes: []NodeConfig{
			{Name: "control-0", Class: ClassControl, ServiceRate: rate, Concurrency: conc, QueueDepth: depth},
		},
	}
}

func mustSimulate(t *testing.T, cfg Config, reqs []Request) *Report {
	t.Helper()
	rep, err := Simulate(context.Background(), cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestInfiniteCapacityNullBackend pins the null-backend contract: the
// "infinite" preset serves everything instantly — zero queueing delay,
// zero drops, one arrival and one departure per request.
func TestInfiniteCapacityNullBackend(t *testing.T) {
	reqs := []Request{
		req(0, ClassControl, 1, 0),
		req(0, ClassStorage, 4e6, 1),
		req(time.Second, ClassNotify, 1, 2),
		req(time.Second, ClassStorage, 1e9, 3),
		req(2*time.Second, ClassControl, 1, 0),
	}
	cfg, err := PresetConfig(PresetInfinite, reqs)
	if err != nil {
		t.Fatal(err)
	}
	rep := mustSimulate(t, cfg, reqs)
	if rep.Served != int64(len(reqs)) || rep.Dropped != 0 || rep.Shed != 0 {
		t.Fatalf("served/dropped/shed = %d/%d/%d, want %d/0/0", rep.Served, rep.Dropped, rep.Shed, len(reqs))
	}
	if rep.Events != 2*int64(len(reqs)) {
		t.Fatalf("events = %d, want %d", rep.Events, 2*len(reqs))
	}
	if rep.Delay.Max() != 0 {
		t.Fatalf("max queueing delay = %v ns, want 0", rep.Delay.Max())
	}
	if rep.Horizon != 2*time.Second {
		t.Fatalf("horizon = %v, want 2s", rep.Horizon)
	}
}

// TestSingleServerQueueing works a 1-server, 1-op/sec node through three
// simultaneous arrivals and checks the exact delays, the busy-time
// integral and the utilization it implies.
func TestSingleServerQueueing(t *testing.T) {
	reqs := []Request{
		req(0, ClassControl, 1, 0),
		req(0, ClassControl, 1, 0),
		req(0, ClassControl, 1, 0),
	}
	rep := mustSimulate(t, oneNode(1, 1, 0, AdmitQueue), reqs)
	if rep.Served != 3 || rep.Dropped != 0 {
		t.Fatalf("served/dropped = %d/%d, want 3/0", rep.Served, rep.Dropped)
	}
	// Delays are exactly 0s, 1s, 2s.
	if got := rep.MeanDelay(); got != time.Second {
		t.Fatalf("mean delay = %v, want 1s", got)
	}
	if got := time.Duration(rep.Delay.Max()); got != 2*time.Second {
		t.Fatalf("max delay = %v, want 2s", got)
	}
	n := rep.Nodes[0]
	if n.BusySec != 3.0 {
		t.Fatalf("busy-server-seconds = %v, want 3", n.BusySec)
	}
	if n.Utilization != 1.0 || n.AvgBusy != 1.0 {
		t.Fatalf("utilization/avg-busy = %v/%v, want 1/1", n.Utilization, n.AvgBusy)
	}
	if n.QueueMax != 2 {
		t.Fatalf("queue max = %d, want 2", n.QueueMax)
	}
}

// TestAdmissionPolicies pins the three overload behaviors on a full node.
func TestAdmissionPolicies(t *testing.T) {
	burst := []Request{
		req(0, ClassControl, 1, 0),
		req(0, ClassControl, 1, 0),
		req(0, ClassControl, 1, 0),
	}
	t.Run("reject", func(t *testing.T) {
		// One slot, no waiting: first serves, the other two bounce.
		rep := mustSimulate(t, oneNode(1, 1, 4, AdmitReject), burst)
		if rep.Served != 1 || rep.Dropped != 2 {
			t.Fatalf("served/dropped = %d/%d, want 1/2", rep.Served, rep.Dropped)
		}
	})
	t.Run("queue", func(t *testing.T) {
		// One slot, one waiting slot: third arrival finds the queue full.
		rep := mustSimulate(t, oneNode(1, 1, 1, AdmitQueue), burst)
		if rep.Served != 2 || rep.Dropped != 1 {
			t.Fatalf("served/dropped = %d/%d, want 2/1", rep.Served, rep.Dropped)
		}
	})
	t.Run("shed", func(t *testing.T) {
		// One slot, one waiting slot: the third arrival evicts the second
		// (oldest waiter) and is served in its place at t=1s.
		rep := mustSimulate(t, oneNode(1, 1, 1, AdmitShed), burst)
		if rep.Served != 2 || rep.Shed != 1 || rep.Dropped != 0 {
			t.Fatalf("served/shed/dropped = %d/%d/%d, want 2/1/0", rep.Served, rep.Shed, rep.Dropped)
		}
		if got := time.Duration(rep.Delay.Max()); got != time.Second {
			t.Fatalf("max delay = %v, want 1s (the shedding newcomer waits one service)", got)
		}
	})
}

func twoNodes(rate float64, conc int, rt RoutingPolicy, regions [2]uint8) Config {
	return Config{
		Admission: AdmitQueue,
		Routing:   rt,
		Nodes: []NodeConfig{
			{Name: "control-0", Class: ClassControl, Region: regions[0], ServiceRate: rate, Concurrency: conc},
			{Name: "control-1", Class: ClassControl, Region: regions[1], ServiceRate: rate, Concurrency: conc},
		},
	}
}

// TestRoutingPolicies pins node selection for all three policies.
func TestRoutingPolicies(t *testing.T) {
	t.Run("round-robin", func(t *testing.T) {
		reqs := make([]Request, 4)
		for i := range reqs {
			reqs[i] = req(time.Duration(i), ClassControl, 1, 0)
		}
		rep := mustSimulate(t, twoNodes(0, 0, RouteRoundRobin, [2]uint8{0, 0}), reqs)
		if rep.Nodes[0].Served != 2 || rep.Nodes[1].Served != 2 {
			t.Fatalf("served split = %d/%d, want 2/2", rep.Nodes[0].Served, rep.Nodes[1].Served)
		}
	})
	t.Run("least-loaded", func(t *testing.T) {
		// Three simultaneous arrivals on two 1-slot nodes: ties go to the
		// lowest index, so node 0 takes the first and the third (queued).
		reqs := []Request{
			req(0, ClassControl, 1, 0),
			req(0, ClassControl, 1, 0),
			req(0, ClassControl, 1, 0),
		}
		rep := mustSimulate(t, twoNodes(1, 1, RouteLeastLoaded, [2]uint8{0, 0}), reqs)
		if rep.Nodes[0].Served != 2 || rep.Nodes[1].Served != 1 {
			t.Fatalf("served split = %d/%d, want 2/1", rep.Nodes[0].Served, rep.Nodes[1].Served)
		}
	})
	t.Run("region-affine", func(t *testing.T) {
		reqs := []Request{
			req(0, ClassControl, 1, 0),
			req(1, ClassControl, 1, 1),
			req(2, ClassControl, 1, 0),
			req(3, ClassControl, 1, 3), // region 3 maps onto group 3%2=1
		}
		rep := mustSimulate(t, twoNodes(0, 0, RouteRegionAffine, [2]uint8{0, 1}), reqs)
		if rep.Nodes[0].Served != 2 || rep.Nodes[1].Served != 2 {
			t.Fatalf("served split = %d/%d, want 2/2", rep.Nodes[0].Served, rep.Nodes[1].Served)
		}
	})
}

// TestUnroutableClassDrops pins that a class with no node pool drops its
// requests and counts them as unroutable.
func TestUnroutableClassDrops(t *testing.T) {
	reqs := []Request{req(0, ClassStorage, 100, 0), req(1, ClassControl, 1, 0)}
	rep := mustSimulate(t, oneNode(0, 0, 0, AdmitQueue), reqs)
	if rep.Unroutable != 1 || rep.Dropped != 1 || rep.Served != 1 {
		t.Fatalf("unroutable/dropped/served = %d/%d/%d, want 1/1/1", rep.Unroutable, rep.Dropped, rep.Served)
	}
}

// TestConfigValidation pins the error paths.
func TestConfigValidation(t *testing.T) {
	if _, err := Simulate(context.Background(), Config{}, nil); err == nil {
		t.Fatal("empty config accepted")
	}
	bad := oneNode(1, 1, 0, AdmissionPolicy("lifo"))
	if _, err := Simulate(context.Background(), bad, nil); err == nil {
		t.Fatal("unknown admission policy accepted")
	}
	bad = oneNode(1, 1, 0, AdmitQueue)
	bad.Routing = RoutingPolicy("random")
	if _, err := Simulate(context.Background(), bad, nil); err == nil {
		t.Fatal("unknown routing policy accepted")
	}
	if _, err := PresetConfig("nope", nil); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

// synthReqs draws a seeded synthetic arrival set across all classes.
func synthReqs(seed int64, n int) []Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{
			Arrive: time.Duration(rng.Int63n(int64(10 * time.Second))),
			Class:  Class(rng.Intn(int(numClasses))),
			Work:   float64(1 + rng.Intn(1000)),
			Region: uint8(rng.Intn(8)),
			Key:    rng.Uint64(),
		}
	}
	SortRequests(reqs)
	return reqs
}

// TestSimulateDeterministic pins that the report is a pure function of the
// canonically sorted request multiset: a shuffled copy re-sorted through
// SortRequests simulates to a deeply equal report, as does a plain re-run.
func TestSimulateDeterministic(t *testing.T) {
	reqs := synthReqs(11, 5000)
	// A deliberately tight hand-built deployment so every policy edge
	// (queueing, shedding, ties, region groups) fires during the run.
	cfg := Config{
		Admission: AdmitShed,
		Routing:   RouteRegionAffine,
		Nodes: []NodeConfig{
			{Name: "control-0", Class: ClassControl, Region: 0, ServiceRate: 20, Concurrency: 2, QueueDepth: 16},
			{Name: "control-1", Class: ClassControl, Region: 1, ServiceRate: 20, Concurrency: 2, QueueDepth: 16},
			{Name: "storage-0", Class: ClassStorage, Region: 0, ServiceRate: 2e4, Concurrency: 2, QueueDepth: 16},
			{Name: "storage-1", Class: ClassStorage, Region: 1, ServiceRate: 2e4, Concurrency: 2, QueueDepth: 16},
			{Name: "notify-0", Class: ClassNotify, Region: 0, ServiceRate: 40, Concurrency: 4, QueueDepth: 32},
		},
	}
	base := mustSimulate(t, cfg, reqs)
	if base.Dropped+base.Shed == 0 {
		t.Fatal("tight config dropped nothing — the test is not exercising overload")
	}

	again := mustSimulate(t, cfg, reqs)
	if !reflect.DeepEqual(base, again) {
		t.Fatal("re-running the same simulation produced a different report")
	}

	shuffled := make([]Request, len(reqs))
	copy(shuffled, reqs)
	rand.New(rand.NewSource(99)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	SortRequests(shuffled)
	resorted := mustSimulate(t, cfg, shuffled)
	if !reflect.DeepEqual(base, resorted) {
		t.Fatal("simulating a shuffled-then-resorted request set produced a different report")
	}
}

// TestOfferedRateAndScaleLoad pins the load-measurement helpers.
func TestOfferedRateAndScaleLoad(t *testing.T) {
	reqs := []Request{
		req(0, ClassControl, 1, 0),
		req(5*time.Second, ClassControl, 3, 0),
		req(10*time.Second, ClassStorage, 100, 0),
	}
	rate := OfferedRate(reqs)
	if rate[ClassControl] != 0.4 || rate[ClassStorage] != 10 || rate[ClassNotify] != 0 {
		t.Fatalf("offered rate = %v, want [0.4 10 0]", rate)
	}
	if h := Horizon(reqs); h != 10*time.Second {
		t.Fatalf("horizon = %v, want 10s", h)
	}
	scaled := ScaleLoad(reqs, 2)
	if h := Horizon(scaled); h != 5*time.Second {
		t.Fatalf("scaled horizon = %v, want 5s", h)
	}
	r2 := OfferedRate(scaled)
	if r2[ClassStorage] != 20 {
		t.Fatalf("scaled storage rate = %v, want 20", r2[ClassStorage])
	}
	// The original set is untouched.
	if reqs[2].Arrive != 10*time.Second {
		t.Fatal("ScaleLoad mutated its input")
	}
}

// TestSaturationPoint pins the knee estimate: capacity over offered load,
// minimized across bounded classes, absent for the infinite preset.
func TestSaturationPoint(t *testing.T) {
	reqs := synthReqs(5, 2000)
	prov, err := PresetConfig(PresetProvisioned, reqs)
	if err != nil {
		t.Fatal(err)
	}
	knee, ok := SaturationPoint(prov, reqs)
	if !ok {
		t.Fatal("provisioned preset reported no saturation point")
	}
	if knee < 1.9 {
		t.Fatalf("provisioned knee = %v, want >= 2 (the headroom factor; the one-slot floor can only raise it)", knee)
	}
	inf, err := PresetConfig(PresetInfinite, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := SaturationPoint(inf, reqs); ok {
		t.Fatal("infinite preset reported a saturation point")
	}
}
