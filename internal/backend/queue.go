// Package backend is the discrete-event simulation of the Dropbox server
// side — the capacity model the paper could only observe passively. The
// client fleet (internal/fleet) generates flow records; this package turns
// the Dropbox-bound records into arrival events against N simulated server
// instances (control plane, storage nodes, notification servers), each
// with a configurable service rate, concurrency limit and queue depth,
// behind pluggable admission (queue / reject / shed) and routing
// (round-robin / least-loaded / region-affine) policies.
//
// The simulation is a single global timestamp-ordered event queue with
// deterministic tie-breaking: events at equal timestamps dequeue in push
// order (a monotone sequence number breaks ties), so the same arrival set
// and configuration replay the exact same event interleaving on every run,
// on every host. Arrivals are canonically sorted before simulation, so the
// backend's metrics depend only on the generated request multiset — never
// on fleet worker count (determinism-contract point 14 in EXPERIMENTS.md).
//
// The backend observes, it never participates: client record generation is
// finished before the first server event fires, and an infinite-capacity
// backend (the "infinite" preset) reproduces every golden stream hash
// bit-for-bit while reporting zero queueing delay and zero drops
// (TestStreamGoldenWithBackend).
package backend

import (
	"container/heap"
	"time"
)

// EventKind labels what an event does when it fires.
type EventKind uint8

const (
	// EvArrival is a request reaching the front door of the backend.
	EvArrival EventKind = iota
	// EvDeparture is a server finishing one request's service.
	EvDeparture
	// EvTimeline is a scheduled deployment change firing (Config.Timeline:
	// region outages, capacity rollouts). Req indexes the timeline slice.
	EvTimeline
)

// Event is one entry of the global simulation clock: something happens at
// At. Req indexes the simulation's request slice; Node is the serving node
// for departures (unused for arrivals, which are routed when they fire).
type Event struct {
	At   time.Duration
	Kind EventKind
	Req  int32
	Node int32

	// seq is the push order, assigned by EventQueue.Push. It breaks
	// timestamp ties deterministically: of two events at the same At, the
	// one pushed first fires first.
	seq uint64
}

// EventQueue is a min-heap of events ordered by (At, push sequence). The
// zero value is an empty queue ready to use.
//
// The ordering invariant — Pop yields events in nondecreasing At, with
// equal timestamps in push (FIFO) order — is what makes the simulation
// deterministic, and is pinned by the property tests and
// FuzzEventQueueOrdering.
type EventQueue struct {
	h   eventHeap
	seq uint64
}

// Push schedules one event. The event's seq field is overwritten with the
// next push sequence number; callers never set it.
func (q *EventQueue) Push(e Event) {
	e.seq = q.seq
	q.seq++
	heap.Push(&q.h, e)
}

// Pop removes and returns the earliest event. ok is false on an empty
// queue.
func (q *EventQueue) Pop() (e Event, ok bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	return heap.Pop(&q.h).(Event), true
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// NextAt returns the timestamp of the earliest pending event (ok false
// when empty). The queue is unchanged.
func (q *EventQueue) NextAt() (at time.Duration, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].At, true
}

type eventHeap []Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(Event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
