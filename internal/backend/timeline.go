package backend

import (
	"fmt"
	"math"
	"time"

	"insidedropbox/internal/fleet"
)

// TimelineAction is what a scheduled deployment change does when it fires.
type TimelineAction uint8

const (
	// ActionRegionDown takes every node of a region offline: in-flight
	// requests finish, but nothing new starts and queues freeze.
	ActionRegionDown TimelineAction = iota
	// ActionRegionUp brings a region's offline nodes back and drains
	// their frozen queues into the freed slots.
	ActionRegionUp
	// ActionScaleCapacity multiplies the concurrency of matching
	// bounded nodes by Factor of their configured value (a staged
	// capacity rollout, or a degradation when Factor < 1).
	ActionScaleCapacity
)

// String names the action for reports.
func (a TimelineAction) String() string {
	switch a {
	case ActionRegionDown:
		return "region-down"
	case ActionRegionUp:
		return "region-up"
	case ActionScaleCapacity:
		return "capacity-scale"
	default:
		return fmt.Sprintf("action(%d)", a)
	}
}

// TimelineEvent is one scheduled deployment change. Events ride the same
// global event queue as arrivals and departures, so a timeline's effect on
// the simulation is exactly as deterministic as the arrival replay itself.
type TimelineEvent struct {
	At     time.Duration
	Action TimelineAction

	// Region selects the nodes of ActionRegionDown / ActionRegionUp.
	Region uint8

	// Class selects the nodes of ActionScaleCapacity; AllClasses widens
	// it to every bounded node.
	Class      Class
	AllClasses bool

	// Factor is ActionScaleCapacity's multiplier over the node's
	// configured concurrency (>= applied as ceil, min 1).
	Factor float64
}

func (e TimelineEvent) validate() error {
	if e.At < 0 {
		return fmt.Errorf("backend: timeline event at negative time %v", e.At)
	}
	switch e.Action {
	case ActionRegionDown, ActionRegionUp:
		return nil
	case ActionScaleCapacity:
		if e.Factor <= 0 {
			return fmt.Errorf("backend: capacity-scale at %v needs a positive factor, got %v", e.At, e.Factor)
		}
		return nil
	default:
		return fmt.Errorf("backend: unknown timeline action %d", e.Action)
	}
}

// Window is a named report interval: requests arriving inside [Start, End)
// get their delay and drop outcomes attributed to the window, so a
// timeline's effect is measurable against the surrounding baseline.
type Window struct {
	Name       string
	Start, End time.Duration
}

func (w Window) validate() error {
	if w.Name == "" {
		return fmt.Errorf("backend: report window needs a name")
	}
	if w.End <= w.Start {
		return fmt.Errorf("backend: window %q has end %v <= start %v", w.Name, w.End, w.Start)
	}
	return nil
}

// WindowReport is the observed load response attributed to one window.
type WindowReport struct {
	Window
	Served, Dropped int64
	// Delay is the queueing-delay histogram (ns) of served requests that
	// arrived inside the window.
	Delay fleet.LogHist
}

// applyTimeline fires one timeline event against the node fleet. start is
// Simulate's slot-filling closure; freed capacity drains frozen/waiting
// queues through it immediately, in queue order.
func applyTimeline(te TimelineEvent, nodes []nodeState, start func(n *nodeState, ni int32, req int32, since time.Duration)) {
	drain := func(n *nodeState, ni int32) {
		for n.qlen() > 0 && n.canStart() {
			w := n.dequeue()
			start(n, ni, w.req, w.at)
		}
	}
	switch te.Action {
	case ActionRegionDown:
		for i := range nodes {
			if nodes[i].cfg.Region == te.Region {
				nodes[i].offline = true
			}
		}
	case ActionRegionUp:
		for i := range nodes {
			n := &nodes[i]
			if n.cfg.Region != te.Region || !n.offline {
				continue
			}
			n.offline = false
			drain(n, int32(i))
		}
	case ActionScaleCapacity:
		for i := range nodes {
			n := &nodes[i]
			if n.origConc <= 0 {
				continue // unbounded nodes have nothing to scale
			}
			if !te.AllClasses && n.cfg.Class != te.Class {
				continue
			}
			nc := int(math.Ceil(float64(n.origConc) * te.Factor))
			if nc < 1 {
				nc = 1
			}
			n.cfg.Concurrency = nc
			drain(n, int32(i))
		}
	}
}

// AmplifyWindow models an exogenous arrival surge: requests arriving
// inside [start, end) are replicated so the window's arrival rate is mult
// times the base rate, deterministically — whole copies for the integer
// part, plus one more for the fraction of requests selected by a hash of
// their content key (no RNG, no time-dependence). Replicas keep the
// original's arrival time, class and work but take derived keys, so router
// key-hashing spreads them like distinct requests. The result is a fresh
// canonically sorted slice; the input is not modified.
func AmplifyWindow(reqs []Request, start, end time.Duration, mult float64) []Request {
	out := make([]Request, 0, len(reqs))
	if mult <= 1 || end <= start {
		out = append(out, reqs...)
		return out
	}
	whole := int(mult) // copies including the original
	frac := mult - float64(whole)
	for _, r := range reqs {
		out = append(out, r)
		if r.Arrive < start || r.Arrive >= end {
			continue
		}
		n := whole - 1
		if frac > 0 && float64(fnv64a(r.Key, 0x517cc1b727220a95)&((1<<20)-1))/(1<<20) < frac {
			n++
		}
		for i := 1; i <= n; i++ {
			c := r
			c.Key = fnv64a(r.Key, uint64(i))
			out = append(out, c)
		}
	}
	SortRequests(out)
	return out
}

// offlineLoad is the load a routing policy sees on an offline node: large
// enough that least-loaded routing always prefers any live node, while
// load-blind policies (round-robin, region-affine) still hit the outage —
// the difference between the two is itself a scenario outcome.
const offlineLoad = int(1) << 30
