package backend

import (
	"encoding/binary"
	"testing"
	"time"
)

// FuzzEventQueueOrdering feeds the event queue arbitrary push/pop
// interleavings decoded from the fuzz input and verifies every pop
// against the O(n) reference model: the queue must always yield the
// pending event with the smallest (timestamp, push order). The input is
// consumed three bytes per operation — a pop when the high bit of the
// first byte is set (and events are pending), otherwise a push whose
// 16-bit timestamp is the next two bytes, so dense timestamp collisions
// (the tie-breaking territory) are easy for the fuzzer to reach.
//
// The committed seed corpus lives in testdata/fuzz/FuzzEventQueueOrdering;
// CI runs this target in the fuzz-smoke job.
func FuzzEventQueueOrdering(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x07, 0x00, 0x00, 0x07, 0x80, 0x00, 0x00, 0x00, 0x00, 0x03, 0x80, 0x00, 0x00})
	f.Add([]byte{0x01, 0xff, 0xff, 0x02, 0x00, 0x00, 0x03, 0x12, 0x34, 0x80, 0xaa, 0xbb})
	f.Fuzz(func(t *testing.T, data []byte) {
		var q EventQueue
		var ref []refEv
		var ord int32
		for i := 0; i+3 <= len(data); i += 3 {
			if data[i]&0x80 != 0 && len(ref) > 0 {
				var want refEv
				want, ref = refPop(ref)
				got, ok := q.Pop()
				if !ok {
					t.Fatalf("queue empty with %d events in the model", len(ref)+1)
				}
				if got.At != want.at || got.Req != want.ord {
					t.Fatalf("pop = (at %v, ord %d), want (at %v, ord %d)",
						got.At, got.Req, want.at, want.ord)
				}
			} else {
				at := time.Duration(binary.BigEndian.Uint16(data[i+1 : i+3]))
				q.Push(Event{At: at, Req: ord})
				ref = append(ref, refEv{at: at, ord: ord})
				ord++
			}
		}
		if q.Len() != len(ref) {
			t.Fatalf("Len = %d, model has %d", q.Len(), len(ref))
		}
		drainAndVerify(t, &q, ref, 0)
	})
}
