package backend

import (
	"context"
	"fmt"
	"time"

	"insidedropbox/internal/fleet"
)

// NodeConfig describes one simulated server instance.
type NodeConfig struct {
	// Name labels the node in reports and telemetry ("storage-3").
	Name string
	// Class is the service the node belongs to.
	Class Class
	// Region is the node's locality tag for region-affine routing.
	Region uint8
	// ServiceRate is how fast one busy server slot progresses, in the
	// class's work units per second (bytes/sec for storage, ops/sec for
	// control and notification). Zero or negative means infinitely fast:
	// requests complete the instant they start.
	ServiceRate float64
	// Concurrency bounds how many requests the node serves simultaneously
	// (its server slots). Zero or negative means unbounded.
	Concurrency int
	// QueueDepth bounds how many admitted requests may wait for a slot.
	// Zero or negative means unbounded.
	QueueDepth int
}

// capacity returns the node's aggregate throughput in work units per
// second (0 means infinite).
func (n NodeConfig) capacity() float64 {
	if n.ServiceRate <= 0 {
		return 0
	}
	c := n.Concurrency
	if c <= 0 {
		c = 1
	}
	return n.ServiceRate * float64(c)
}

// Config is one backend deployment: the node fleet plus the policies that
// shape overload behavior.
type Config struct {
	Nodes     []NodeConfig
	Admission AdmissionPolicy
	Routing   RoutingPolicy

	// Timeline schedules deployment changes mid-run (region outages,
	// capacity rollouts). Empty reproduces the static deployment bit for
	// bit — timeline events only enter the event queue when present.
	Timeline []TimelineEvent

	// Windows names report intervals for per-window delay/drop
	// attribution (Report.Windows). Empty leaves the report unchanged.
	Windows []Window
}

func (c Config) validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("backend: config has no nodes")
	}
	if err := c.Admission.validate(); err != nil {
		return err
	}
	for _, te := range c.Timeline {
		if err := te.validate(); err != nil {
			return err
		}
	}
	for _, w := range c.Windows {
		if err := w.validate(); err != nil {
			return err
		}
	}
	return c.Routing.validate()
}

// queued is one waiting request with its enqueue time (for the delay
// histogram when it finally starts).
type queued struct {
	req int32
	at  time.Duration
}

// nodeState is one node's live simulation state.
type nodeState struct {
	cfg NodeConfig

	// origConc is the configured concurrency before any timeline
	// capacity-scale (the factor's fixed basis); offline freezes the node
	// during a region outage.
	origConc int
	offline  bool

	inService int
	queue     []queued
	qhead     int

	// busy integrates busy-server-seconds (∫ inService dt); last is the
	// time of the node's most recent state change.
	busy float64
	last time.Duration

	served, dropped, shed int64
	queueMax              int
	delay                 fleet.LogHist // queueing delay, ns, served requests
}

func (n *nodeState) qlen() int { return len(n.queue) - n.qhead }

func (n *nodeState) load() int { return n.inService + n.qlen() }

func (n *nodeState) canStart() bool {
	return !n.offline && (n.cfg.Concurrency <= 0 || n.inService < n.cfg.Concurrency)
}

// tick advances the busy-time integral to now.
func (n *nodeState) tick(now time.Duration) {
	if n.inService > 0 {
		n.busy += float64(n.inService) * (now - n.last).Seconds()
	}
	n.last = now
}

func (n *nodeState) enqueue(q queued) {
	n.queue = append(n.queue, q)
	if l := n.qlen(); l > n.queueMax {
		n.queueMax = l
	}
}

func (n *nodeState) dequeue() queued {
	q := n.queue[n.qhead]
	n.qhead++
	if n.qhead == len(n.queue) {
		n.queue, n.qhead = n.queue[:0], 0
	} else if n.qhead > 1024 && n.qhead*2 > len(n.queue) {
		n.queue = append(n.queue[:0], n.queue[n.qhead:]...)
		n.qhead = 0
	}
	return q
}

// cancelCheckMask amortizes ctx polling on the event loop: the context is
// checked once every cancelCheckMask+1 events, so cancellation lands at
// event granularity without a lock on every event.
const cancelCheckMask = 0x3f

// Simulate replays an arrival set against a backend configuration and
// returns the observed load response. The simulation is one global
// timestamp-ordered event queue (EventQueue: heap with FIFO tie-breaking);
// arrivals fire in slice order at equal timestamps, so feed it canonically
// sorted requests (CollectArrivals and ScaleLoad return them sorted) for
// run-to-run and worker-count determinism.
//
// Cancelling ctx stops the event loop at event granularity: the partial
// report up to the last processed event is returned with ctx.Err().
// Simulate runs entirely on the calling goroutine — it spawns nothing, so
// cancellation leaks nothing.
func Simulate(ctx context.Context, cfg Config, reqs []Request) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rt, err := newRouter(cfg.Routing, cfg.Nodes)
	if err != nil {
		return nil, err
	}

	nodes := make([]nodeState, len(cfg.Nodes))
	for i, nc := range cfg.Nodes {
		nodes[i].cfg = nc
		nodes[i].origConc = nc.Concurrency
	}
	load := func(i int32) int {
		if nodes[i].offline {
			return offlineLoad
		}
		return nodes[i].load()
	}

	var q EventQueue
	for i, r := range reqs {
		q.Push(Event{At: r.Arrive, Kind: EvArrival, Req: int32(i)})
	}
	// Timeline events are pushed after the arrivals, so at equal
	// timestamps the arrival fires first — a fixed, documented order.
	for i, te := range cfg.Timeline {
		q.Push(Event{At: te.At, Kind: EvTimeline, Req: int32(i)})
	}

	rep := &Report{
		Admission: cfg.Admission,
		Routing:   cfg.Routing,
		Requests:  len(reqs),
	}
	if len(cfg.Windows) > 0 {
		rep.Windows = make([]WindowReport, len(cfg.Windows))
		for i, w := range cfg.Windows {
			rep.Windows[i].Window = w
		}
	}
	// winServe / winDrop attribute a request's outcome to every window
	// containing its arrival time (no-ops without windows).
	winServe := func(arrive, d time.Duration) {
		for i := range rep.Windows {
			w := &rep.Windows[i]
			if arrive >= w.Start && arrive < w.End {
				w.Served++
				w.Delay.Observe(float64(d))
			}
		}
	}
	winDrop := func(arrive time.Duration) {
		for i := range rep.Windows {
			w := &rep.Windows[i]
			if arrive >= w.Start && arrive < w.End {
				w.Dropped++
			}
		}
	}
	var now time.Duration

	// start puts req in service on node n at now, having waited since
	// "since", and schedules its departure.
	start := func(n *nodeState, ni int32, req int32, since time.Duration) {
		n.tick(now)
		n.inService++
		d := now - since
		n.delay.Observe(float64(d))
		rep.Delay.Observe(float64(d))
		rep.DelayByClass[reqs[req].Class].Observe(float64(d))
		winServe(reqs[req].Arrive, d)
		mQueueDelay.Observe(d)
		var svc time.Duration
		if n.cfg.ServiceRate > 0 {
			svc = time.Duration(reqs[req].Work / n.cfg.ServiceRate * float64(time.Second))
		}
		q.Push(Event{At: now + svc, Kind: EvDeparture, Req: req, Node: ni})
	}

	for {
		ev, ok := q.Pop()
		if !ok {
			break
		}
		if rep.Events&cancelCheckMask == 0 && ctx.Err() != nil {
			finalize(rep, nodes, now)
			return rep, ctx.Err()
		}
		rep.Events++
		now = ev.At

		switch ev.Kind {
		case EvArrival:
			rq := reqs[ev.Req]
			ni, routed := rt.route(rq, load)
			if !routed {
				rep.Unroutable++
				rep.Dropped++
				winDrop(rq.Arrive)
				continue
			}
			n := &nodes[ni]
			if n.canStart() && n.qlen() == 0 {
				start(n, ni, ev.Req, now)
				continue
			}
			switch cfg.Admission {
			case AdmitReject:
				n.dropped++
				rep.Dropped++
				winDrop(rq.Arrive)
			case AdmitQueue:
				if n.cfg.QueueDepth > 0 && n.qlen() >= n.cfg.QueueDepth {
					n.dropped++
					rep.Dropped++
					winDrop(rq.Arrive)
					continue
				}
				n.enqueue(queued{req: ev.Req, at: now})
			case AdmitShed:
				if n.cfg.QueueDepth > 0 && n.qlen() >= n.cfg.QueueDepth {
					w := n.dequeue() // oldest waiter is shed for the newcomer
					n.shed++
					rep.Shed++
					winDrop(reqs[w.req].Arrive)
				}
				n.enqueue(queued{req: ev.Req, at: now})
			}
		case EvDeparture:
			n := &nodes[ev.Node]
			n.tick(now)
			n.inService--
			n.served++
			rep.Served++
			if n.qlen() > 0 && n.canStart() {
				w := n.dequeue()
				start(n, ev.Node, w.req, w.at)
			}
		case EvTimeline:
			applyTimeline(cfg.Timeline[ev.Req], nodes, start)
		}
	}
	finalize(rep, nodes, now)
	publish(rep)
	return rep, nil
}

// finalize closes the busy-time integrals at the last event time and
// flattens node state into the report.
func finalize(rep *Report, nodes []nodeState, now time.Duration) {
	rep.Horizon = now
	horizon := now.Seconds()
	rep.Nodes = make([]NodeReport, len(nodes))
	for i := range nodes {
		n := &nodes[i]
		n.tick(now)
		nr := NodeReport{
			NodeConfig: n.cfg,
			Served:     n.served,
			Dropped:    n.dropped,
			Shed:       n.shed,
			BusySec:    n.busy,
			QueueMax:   n.queueMax,
			Delay:      n.delay,
		}
		if horizon > 0 {
			nr.AvgBusy = n.busy / horizon
			if n.cfg.Concurrency > 0 {
				nr.Utilization = nr.AvgBusy / float64(n.cfg.Concurrency)
			}
		}
		rep.Nodes[i] = nr
	}
}

// NodeReport is one node's observed load response.
type NodeReport struct {
	NodeConfig

	Served, Dropped, Shed int64
	// BusySec is the node's busy-server-seconds (∫ in-service dt).
	BusySec float64
	// AvgBusy is the time-averaged number of busy server slots.
	AvgBusy float64
	// Utilization is AvgBusy over Concurrency — the classic utilization
	// fraction. Zero when concurrency is unbounded (use AvgBusy).
	Utilization float64
	// QueueMax is the deepest the node's wait queue ever got.
	QueueMax int
	// Delay is the node's queueing-delay histogram (ns, served requests).
	Delay fleet.LogHist
}

// Report is the outcome of one backend simulation.
type Report struct {
	Admission AdmissionPolicy
	Routing   RoutingPolicy

	// Requests is the arrival count; Events the processed event count.
	Requests int
	Events   int64

	Served, Dropped, Shed int64
	// Unroutable counts arrivals whose class had no node pool (a config
	// hole, included in Dropped).
	Unroutable int64

	// Horizon is the timestamp of the last processed event.
	Horizon time.Duration

	// Delay is the queueing-delay distribution in nanoseconds over all
	// served requests; DelayByClass splits it by service.
	Delay        fleet.LogHist
	DelayByClass [numClasses]fleet.LogHist

	Nodes []NodeReport

	// Windows attributes outcomes to the configured report intervals
	// (Config.Windows), by request arrival time; nil without windows.
	Windows []WindowReport
}

// MeanDelay returns the average queueing delay of served requests.
func (r *Report) MeanDelay() time.Duration { return time.Duration(r.Delay.Mean()) }

// DelayQuantile returns the approximate q-quantile of queueing delay.
func (r *Report) DelayQuantile(q float64) time.Duration {
	return time.Duration(r.Delay.Quantile(q))
}

// DropRate returns the fraction of requests dropped or shed.
func (r *Report) DropRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Dropped+r.Shed) / float64(r.Requests)
}

// Metrics flattens the report into the named-metric form the experiment
// harness consumes: global counts and delay quantiles, plus per-node
// utilization, drop and queue-depth metrics.
func (r *Report) Metrics() map[string]float64 {
	m := map[string]float64{
		"requests":      float64(r.Requests),
		"events":        float64(r.Events),
		"served":        float64(r.Served),
		"dropped":       float64(r.Dropped),
		"shed":          float64(r.Shed),
		"drop_rate":     r.DropRate(),
		"delay_mean_ms": r.Delay.Mean() / 1e6,
		"delay_p50_ms":  r.Delay.Quantile(0.5) / 1e6,
		"delay_p95_ms":  r.Delay.Quantile(0.95) / 1e6,
		"delay_p99_ms":  r.Delay.Quantile(0.99) / 1e6,
	}
	for c := Class(0); c < numClasses; c++ {
		m["delay_p95_ms_"+c.String()] = r.DelayByClass[c].Quantile(0.95) / 1e6
	}
	for _, n := range r.Nodes {
		m["util_"+n.Name] = n.Utilization
		m["busy_"+n.Name] = n.AvgBusy
		m["served_"+n.Name] = float64(n.Served)
		m["dropped_"+n.Name] = float64(n.Dropped + n.Shed)
		m["queue_max_"+n.Name] = float64(n.QueueMax)
	}
	for _, w := range r.Windows {
		m["win_"+w.Name+"_served"] = float64(w.Served)
		m["win_"+w.Name+"_dropped"] = float64(w.Dropped)
		m["win_"+w.Name+"_delay_mean_ms"] = w.Delay.Mean() / 1e6
		m["win_"+w.Name+"_delay_p95_ms"] = w.Delay.Quantile(0.95) / 1e6
	}
	return m
}
