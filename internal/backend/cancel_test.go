package backend

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"insidedropbox/internal/fleet"
	"insidedropbox/internal/workload"
)

// countdownCtx reports itself cancelled after its Err method has been
// consulted n times — a deterministic way to cancel mid-simulation at a
// known event depth. Simulate polls Err on the event loop only, so the
// counter counts event-loop visits.
type countdownCtx struct {
	context.Context
	n int
}

func (c *countdownCtx) Err() error {
	c.n--
	if c.n < 0 {
		return context.Canceled
	}
	return nil
}

// TestBackendCancelBeforeStart pins that an already-cancelled context
// stops the event loop before the first event.
func TestBackendCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := synthReqs(3, 1000)
	cfg, err := PresetConfig(PresetInfinite, reqs)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(ctx, cfg, reqs)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil || rep.Events != 0 {
		t.Fatalf("events processed after pre-cancelled ctx: %+v", rep)
	}
}

// TestBackendCancelMidSimulation cancels at a known event depth and pins
// that the loop stops at event granularity: a partial report, strictly
// between zero and all events, with the cancellation error.
func TestBackendCancelMidSimulation(t *testing.T) {
	reqs := synthReqs(4, 20000)
	cfg, err := PresetConfig(PresetInfinite, reqs)
	if err != nil {
		t.Fatal(err)
	}
	total := 2 * int64(len(reqs)) // one arrival + one departure each

	ctx := &countdownCtx{Context: context.Background(), n: 20}
	rep, err := Simulate(ctx, cfg, reqs)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Events == 0 || rep.Events >= total {
		t.Fatalf("events = %d, want strictly between 0 and %d (a mid-run stop)", rep.Events, total)
	}
	// The cancellation poll runs every cancelCheckMask+1 events, so the
	// stop lands within one poll window of the 20th check.
	if max := int64(21 * (cancelCheckMask + 1)); rep.Events > max {
		t.Fatalf("events = %d, want <= %d (event-granularity cancellation)", rep.Events, max)
	}
	// The partial report is still internally consistent.
	if rep.Served > int64(rep.Requests) {
		t.Fatalf("partial report served %d of %d requests", rep.Served, rep.Requests)
	}
}

// TestBackendCancelCollectArrivals cancels the fleet collection from a
// shard-completion event and pins both the error path and that no worker
// goroutines leak past the return.
func TestBackendCancelCollectArrivals(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Bool
	fc := fleet.Config{
		Shards:  8,
		Workers: 2,
		Observer: func(fleet.ShardEvent) {
			if fired.CompareAndSwap(false, true) {
				cancel()
			}
		},
	}
	_, _, err := CollectArrivals(ctx, workload.Home1(0.02), 7, fc)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// Fleet workers exit before Aggregate returns; give the runtime a
	// moment to retire them, then insist the goroutine count settled.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancellation", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
