package backend

import (
	"fmt"

	"insidedropbox/internal/telemetry"
)

// The backend's process metrics. Counters accumulate across simulations
// (monotonic, like every other subsystem); per-node utilization gauges
// reflect the most recent completed run. All of it is observation:
// publishing never feeds back into the simulation, and an infinite-
// capacity backend leaves golden stream hashes untouched (contract
// point 14).
var (
	mSims       = telemetry.NewCounter("backend.sims")
	mEvents     = telemetry.NewCounter("backend.events")
	mRequests   = telemetry.NewCounter("backend.requests")
	mServed     = telemetry.NewCounter("backend.served")
	mDropped    = telemetry.NewCounter("backend.dropped")
	mShed       = telemetry.NewCounter("backend.shed")
	mQueueDelay = telemetry.NewHist("backend.queue_delay")
)

// publish pushes one completed simulation's tallies into the process
// registry, where manifests pick them up as part of the counter snapshot.
// Per-node metrics register lazily by node name.
func publish(rep *Report) {
	mSims.Inc()
	mEvents.Add(uint64(rep.Events))
	mRequests.Add(uint64(rep.Requests))
	mServed.Add(uint64(rep.Served))
	mDropped.Add(uint64(rep.Dropped))
	mShed.Add(uint64(rep.Shed))
	for _, n := range rep.Nodes {
		prefix := "backend.node." + n.Name
		telemetry.NewCounter(prefix + ".served").Add(uint64(n.Served))
		telemetry.NewCounter(prefix + ".dropped").Add(uint64(n.Dropped + n.Shed))
		telemetry.NewGauge(prefix + ".util_ppm").Set(int64(n.Utilization * 1e6))
		telemetry.NewGauge(prefix + ".busy_milli").Set(int64(n.AvgBusy * 1e3))
	}
	telemetry.SetInfo("backend.policies", fmt.Sprintf("admission=%s routing=%s", rep.Admission, rep.Routing))
}
