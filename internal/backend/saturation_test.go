package backend

import (
	"context"
	"sync"
	"testing"
	"time"

	"insidedropbox/internal/fleet"
	"insidedropbox/internal/workload"
)

// The shared test arrival set, collected once per test binary.
var (
	arrOnce sync.Once
	arr     []Request
	arrErr  error
)

// testArrivals collects the standard small test population's backend
// arrivals once per test binary (the same Home1 2% population the golden
// stream tests pin).
func testArrivals(t *testing.T) []Request {
	t.Helper()
	arrOnce.Do(func() {
		arr, _, arrErr = CollectArrivals(context.Background(), workload.Home1(0.02), 7, fleet.Config{Shards: 2})
	})
	if arrErr != nil {
		t.Fatal(arrErr)
	}
	if len(arr) == 0 {
		t.Fatal("test population produced no backend arrivals")
	}
	return arr
}

// TestSaturationRamp is the saturation analyzer: one fixed backend
// configuration, offered load ramped across two decades, and three
// assertions about the load response:
//
//  1. queueing delay is monotone in offered load (within a small
//     tolerance at the near-zero low end),
//  2. the knee appears past the provisioned service rate — below the
//     configured capacity delays stay near zero, past it they blow up,
//  3. drops are zero below capacity (and nonzero deep into overload,
//     so the assertion is known to have teeth).
func TestSaturationRamp(t *testing.T) {
	base := testArrivals(t)

	// A fixed deployment provisioned at 2x the base offered load with
	// unbounded queues: every request eventually serves, so the delay
	// curve alone carries the saturation signal.
	cfg, err := PresetConfig(PresetProvisioned, base)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfg.Nodes {
		cfg.Nodes[i].QueueDepth = 0 // unbounded
	}
	// The knee is wherever the provisioning landed: at least the 2x
	// headroom factor, higher when the one-slot-per-node floor dominates
	// at this test scale. The ramp is phrased in fractions of it so the
	// test is independent of population size.
	knee, ok := SaturationPoint(cfg, base)
	if !ok {
		t.Fatal("config has no bounded class")
	}
	if knee < 1.9 {
		t.Fatalf("provisioned knee = %.3f, want >= the 2x headroom factor", knee)
	}
	t.Logf("provisioned knee at %.2fx the base offered load", knee)

	fracs := []float64{0.125, 0.25, 0.5, 2, 4, 8}
	mean := make([]float64, len(fracs))
	for i, f := range fracs {
		rep, err := Simulate(context.Background(), cfg, ScaleLoad(base, f*knee))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Served != int64(rep.Requests) {
			t.Fatalf("f=%v: served %d of %d with unbounded queues", f, rep.Served, rep.Requests)
		}
		mean[i] = rep.Delay.Mean() // ns
		t.Logf("load %-5.3gx capacity: mean delay %v  p95 %v", f, time.Duration(mean[i]), rep.DelayQuantile(0.95))
	}

	// (1) Monotone in load: tolerate noise below one millisecond — the
	// sub-capacity regime is near-zero and transient bursts dominate.
	const slack = float64(time.Millisecond)
	for i := 1; i < len(fracs); i++ {
		if mean[i]+slack < mean[i-1] {
			t.Errorf("delay not monotone: f=%v mean %v < f=%v mean %v",
				fracs[i], time.Duration(mean[i]), fracs[i-1], time.Duration(mean[i-1]))
		}
	}

	// (2) The knee is past the provisioned rate: below capacity the mean
	// delay stays small; deep past it the delay is orders of magnitude
	// larger.
	maxBelow := mean[0]
	for i, f := range fracs {
		if f <= 0.5 && mean[i] > maxBelow {
			maxBelow = mean[i]
		}
	}
	if maxBelow > float64(5*time.Second) {
		t.Errorf("mean delay below capacity = %v, want near zero", time.Duration(maxBelow))
	}
	deep := mean[len(mean)-1]
	if deep < 10*maxBelow || deep < float64(time.Second) {
		t.Errorf("no knee: mean delay at 8x capacity is %v vs %v below capacity",
			time.Duration(deep), time.Duration(maxBelow))
	}

	// (3) Zero drops below capacity on a bounded-queue variant of the
	// same deployment; deep overload must drop. The depth is modest (128)
	// so overload reliably fills it even for the low-count bottleneck
	// class at this test scale — the preset's production depths can hold
	// this tiny population outright.
	bounded, err := PresetConfig(PresetProvisioned, base)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bounded.Nodes {
		bounded.Nodes[i].QueueDepth = 128
	}
	for _, f := range []float64{0.125, 0.25, 0.5} {
		rep, err := Simulate(context.Background(), bounded, ScaleLoad(base, f*knee))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Dropped != 0 || rep.Shed != 0 {
			t.Errorf("f=%v (below capacity): dropped %d, shed %d, want 0", f, rep.Dropped, rep.Shed)
		}
	}
	rep, err := Simulate(context.Background(), bounded, ScaleLoad(base, 8*knee))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped == 0 {
		t.Error("8x past capacity: no drops — the bounded queues never filled")
	}
}

// TestSaturationScarcePreset pins the overload preset: past its own knee
// a scarce deployment must shed or drop and run essentially saturated on
// its bounded nodes. (At tiny test scales the one-slot-per-node floor can
// lift the scarce knee above 1x, so the load is placed at twice the knee
// rather than assuming 1x overloads it.)
func TestSaturationScarcePreset(t *testing.T) {
	base := testArrivals(t)
	cfg, err := PresetConfig(PresetScarce, base)
	if err != nil {
		t.Fatal(err)
	}
	knee, ok := SaturationPoint(cfg, base)
	if !ok {
		t.Fatal("scarce preset has no bounded class")
	}
	rep, err := Simulate(context.Background(), cfg, ScaleLoad(base, 2*knee))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped+rep.Shed == 0 {
		t.Fatal("scarce preset at 2x its knee dropped nothing")
	}
	// At least one bounded node runs hot (>50% utilized).
	hot := 0.0
	for _, n := range rep.Nodes {
		if n.Utilization > hot {
			hot = n.Utilization
		}
	}
	if hot < 0.5 {
		t.Fatalf("hottest node utilization = %.3f, want > 0.5 under 2x overload", hot)
	}
}
