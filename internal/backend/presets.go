package backend

import (
	"fmt"
	"math"
	"time"
)

// Preset names, in help order. A preset provisions a deployment relative
// to the measured offered load of the arrival set it will face, so the
// same name stays meaningful from a 2% test population to a million-device
// campaign:
//
//   - "infinite": one infinitely fast, unbounded node per class — the
//     null backend. Zero delay, zero drops, golden streams unchanged
//     (determinism-contract point 14).
//   - "provisioned": a healthy deployment with ~2x headroom per class,
//     bounded concurrency and generous FIFO queues, least-loaded routing.
//   - "scarce": an under-provisioned deployment at ~0.6x the offered
//     load with short queues and shed admission — the overload regime.
const (
	PresetInfinite    = "infinite"
	PresetProvisioned = "provisioned"
	PresetScarce      = "scarce"
)

// Presets lists the preset names in help order.
func Presets() []string {
	return []string{PresetInfinite, PresetProvisioned, PresetScarce}
}

// presetShape sizes one class's pool within a preset. Concurrency is
// provisioned from the offered load, not listed here.
type presetShape struct {
	nodes      int
	regions    int // node i gets Region i % regions
	queueDepth int
}

// slotRate is the fixed per-slot service rate of each class — what one
// server slot can push, independent of how many slots a deployment has: a
// storage slot streams one transfer at 4 MB/s (2012-era per-connection
// server throughput), a control slot turns an operation in 10 ms, a
// notification slot handles a long-poll hit in 2 ms. Presets scale slot
// COUNT to the offered load at these rates, the way real deployments add
// servers rather than faster ones.
var slotRate = [numClasses]float64{
	ClassControl: 100,
	ClassStorage: 4e6,
	ClassNotify:  500,
}

// PresetConfig builds the named preset against an arrival set. Per-class
// slot counts are derived from OfferedRate(reqs): each class gets enough
// slots (at the class's fixed slotRate) for the offered load times the
// preset's headroom factor, floored at one slot per node — so the
// provisioned knee (SaturationPoint) is at least the headroom factor, and
// exactly it once the population is large enough to need every node.
func PresetConfig(name string, reqs []Request) (Config, error) {
	switch name {
	case PresetInfinite:
		return Config{
			Admission: AdmitQueue,
			Routing:   RouteRoundRobin,
			Nodes: []NodeConfig{
				{Name: "control-0", Class: ClassControl},
				{Name: "storage-0", Class: ClassStorage},
				{Name: "notify-0", Class: ClassNotify},
			},
		}, nil
	case PresetProvisioned:
		return provision(reqs, 2.0, AdmitQueue, RouteLeastLoaded, [numClasses]presetShape{
			ClassControl: {nodes: 4, regions: 1, queueDepth: 1024},
			ClassStorage: {nodes: 8, regions: 4, queueDepth: 1024},
			ClassNotify:  {nodes: 2, regions: 1, queueDepth: 4096},
		}), nil
	case PresetScarce:
		return provision(reqs, 0.6, AdmitShed, RouteLeastLoaded, [numClasses]presetShape{
			ClassControl: {nodes: 2, regions: 1, queueDepth: 128},
			ClassStorage: {nodes: 4, regions: 2, queueDepth: 128},
			ClassNotify:  {nodes: 1, regions: 1, queueDepth: 512},
		}), nil
	}
	return Config{}, fmt.Errorf("backend: unknown preset %q (want %v)", name, Presets())
}

func provision(reqs []Request, headroom float64, adm AdmissionPolicy, rt RoutingPolicy, shapes [numClasses]presetShape) Config {
	offered := OfferedRate(reqs)
	cfg := Config{Admission: adm, Routing: rt}
	for c := Class(0); c < numClasses; c++ {
		sh := shapes[c]
		// Slots per node so that nodes x concurrency x slotRate covers
		// headroom x offered, at least one slot per node.
		conc := int(math.Ceil(headroom * offered[c] / (slotRate[c] * float64(sh.nodes))))
		if conc < 1 {
			conc = 1
		}
		for i := 0; i < sh.nodes; i++ {
			cfg.Nodes = append(cfg.Nodes, NodeConfig{
				Name:        fmt.Sprintf("%s-%d", c, i),
				Class:       c,
				Region:      uint8(i % sh.regions),
				ServiceRate: slotRate[c],
				Concurrency: conc,
				QueueDepth:  sh.queueDepth,
			})
		}
	}
	return cfg
}

// Capacity sums a config's aggregate service capacity per class, in work
// units per second. A class containing any infinitely fast node reports
// +Inf via the ok=false convention: bounded is false when the class has
// unlimited capacity.
func (c Config) Capacity() (perClass [numClasses]float64, bounded [numClasses]bool) {
	for i := range bounded {
		bounded[i] = true
	}
	seen := [numClasses]bool{}
	for _, n := range c.Nodes {
		seen[n.Class] = true
		if cap := n.capacity(); cap > 0 {
			perClass[n.Class] += cap
		} else {
			bounded[n.Class] = false
		}
	}
	for i, s := range seen {
		if !s {
			bounded[i] = false
			perClass[i] = 0
		}
	}
	return perClass, bounded
}

// SaturationPoint estimates, for an arrival set and a config, the load
// multiplier at which each bounded class saturates (capacity / offered).
// The smallest bounded ratio is the knee the saturation analysis looks
// for. ok is false when nothing is bounded (an infinite backend never
// saturates).
func SaturationPoint(cfg Config, reqs []Request) (knee float64, ok bool) {
	offered := OfferedRate(reqs)
	capacity, bounded := cfg.Capacity()
	for c := Class(0); c < numClasses; c++ {
		if !bounded[c] || offered[c] <= 0 {
			continue
		}
		r := capacity[c] / offered[c]
		if !ok || r < knee {
			knee, ok = r, true
		}
	}
	return knee, ok
}

// Horizon returns the arrival span of a request set (campaign start to
// last arrival).
func Horizon(reqs []Request) time.Duration {
	var h time.Duration
	for _, r := range reqs {
		if r.Arrive > h {
			h = r.Arrive
		}
	}
	return h
}
