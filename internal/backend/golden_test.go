package backend

import (
	"context"
	"hash/fnv"
	"reflect"
	"testing"

	"insidedropbox/internal/fleet"
	"insidedropbox/internal/traces"
	"insidedropbox/internal/workload"
)

// TestStreamGoldenWithBackend is determinism-contract point 14: attaching
// a backend simulation to a record stream never changes the stream, and an
// infinite-capacity backend is invisible — zero queueing delay, zero
// drops, every request served. The golden hashes are the exact values
// TestRecordStreamGolden (internal/workload) has pinned since the seed:
// the records are serialized to CSV and hashed WHILE being teed into the
// backend collector, so any backend-induced perturbation of the stream
// (there is no mechanism for one — the collector copies what it keeps)
// would show up as a hash mismatch at either shard count.
func TestStreamGoldenWithBackend(t *testing.T) {
	cases := []struct {
		name    string
		cfg     workload.VPConfig
		seed    int64
		nshards int
		want    uint64
	}{
		{"home1-1shard", workload.Home1(0.02), 7, 1, 0xd01117eb3a234b9d},
		{"home1-4shard", workload.Home1(0.02), 7, 4, 0x1887b88d5f86bad5},
		{"home2-abnormal-1shard", workload.Home2(0.02), 9, 1, 0xa59024c1345e9efb},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := fnv.New64a()
			w := traces.NewWriter(h)
			col := &Collector{}
			for sh := 0; sh < tc.nshards; sh++ {
				workload.GenerateShard(tc.cfg, tc.seed, sh, tc.nshards, func(r *traces.FlowRecord) {
					if err := w.Write(r); err != nil {
						t.Fatal(err)
					}
					col.Consume(r)
				})
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			if got := h.Sum64(); got != tc.want {
				t.Fatalf("record stream hash with backend tee = %#x, want %#x", got, tc.want)
			}

			reqs := col.Requests
			SortRequests(reqs)
			cfg, err := PresetConfig(PresetInfinite, reqs)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Simulate(context.Background(), cfg, reqs)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Served != int64(len(reqs)) || rep.Dropped != 0 || rep.Shed != 0 {
				t.Fatalf("infinite backend: served/dropped/shed = %d/%d/%d, want %d/0/0",
					rep.Served, rep.Dropped, rep.Shed, len(reqs))
			}
			if rep.Delay.Max() != 0 {
				t.Fatalf("infinite backend: max queueing delay = %v ns, want 0", rep.Delay.Max())
			}
		})
	}
}

// TestBackendMetricsWorkerInvariant pins the other half of contract point
// 14: backend metrics are a function of (seed, shard count, config) alone
// — the fleet worker count never changes a single reported number. The
// same campaign is collected at workers=1 and workers=8 and simulated
// under a bounded preset; the arrival sets and the full reports must be
// deeply equal.
func TestBackendMetricsWorkerInvariant(t *testing.T) {
	vp, seed := workload.Home1(0.02), int64(7)
	collect := func(workers int) []Request {
		reqs, _, err := CollectArrivals(context.Background(),
			vp, seed, fleet.Config{Shards: 4, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return reqs
	}
	r1, r8 := collect(1), collect(8)
	if !reflect.DeepEqual(r1, r8) {
		t.Fatal("arrival sets differ between workers=1 and workers=8")
	}
	cfg, err := PresetConfig(PresetProvisioned, r1)
	if err != nil {
		t.Fatal(err)
	}
	sim := func(reqs []Request) *Report {
		rep, err := Simulate(context.Background(), cfg, ScaleLoad(reqs, 4))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if !reflect.DeepEqual(sim(r1), sim(r8)) {
		t.Fatal("backend reports differ between workers=1 and workers=8")
	}
}

// TestCollectorPoolingEquivalent pins that the pooled Aggregate path
// (CollectArrivals) derives exactly the requests a plain unpooled tee
// does: the Collector copies everything it keeps, so record recycling is
// invisible.
func TestCollectorPoolingEquivalent(t *testing.T) {
	vp, seed, shards := workload.Home1(0.02), int64(7), 2

	var tee Collector
	for sh := 0; sh < shards; sh++ {
		workload.GenerateShard(vp, seed, sh, shards, tee.Consume)
	}
	SortRequests(tee.Requests)

	pooled, _, err := CollectArrivals(context.Background(), vp, seed, fleet.Config{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tee.Requests, pooled) {
		t.Fatal("pooled collection differs from the unpooled tee")
	}
}
