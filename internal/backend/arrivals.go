package backend

import (
	"context"
	"sort"
	"time"

	"insidedropbox/internal/classify"
	"insidedropbox/internal/fleet"
	"insidedropbox/internal/traces"
	"insidedropbox/internal/workload"
)

// Class is the backend service a request lands on, mirroring the paper's
// server-side split: the control plane (meta/login/api), the storage
// nodes, and the notification servers.
type Class uint8

const (
	ClassControl Class = iota
	ClassStorage
	ClassNotify
	numClasses
)

// String returns the class label used in reports and metric names.
func (c Class) String() string {
	switch c {
	case ClassControl:
		return "control"
	case ClassStorage:
		return "storage"
	case ClassNotify:
		return "notify"
	}
	return "unknown"
}

// Request is one client flow translated into backend work: it arrives at
// Arrive and demands Work service units from one node of its Class.
// Requests are plain values — deriving one from a pooled FlowRecord copies
// everything it keeps, so Collector is safe on the pooled Aggregate path.
type Request struct {
	// Arrive is the flow's first packet, as an offset from campaign start.
	Arrive time.Duration
	// Class selects the server pool.
	Class Class
	// Work is the service demand in the class's units: payload bytes for
	// storage transfers, one operation for control and notification hits.
	Work float64
	// Region is a stable locality tag derived from the client address;
	// the region-affine routing policy keys on it.
	Region uint8
	// Key is a content hash of the originating flow. It makes the
	// canonical arrival order total: two requests with equal timestamps
	// sort by Key, so the simulated interleaving is a function of the
	// request multiset alone, not of shard merge order.
	Key uint64
}

// fnv64a hashes a word sequence (FNV-1a over the byte-expanded words).
func fnv64a(words ...uint64) uint64 {
	const offset, prime = 0xcbf29ce484222325, 0x100000001b3
	h := uint64(offset)
	for _, w := range words {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xff
			h *= prime
		}
	}
	return h
}

// RequestOf derives the backend request of one flow record. Only Dropbox
// flows reach the backend; ok is false for everything else (background
// traffic, YouTube, other providers).
func RequestOf(r *traces.FlowRecord) (Request, bool) {
	c := fleet.ClassifyRecord(r)
	if !c.Dropbox {
		return Request{}, false
	}
	rq := Request{
		Arrive: r.FirstPacket,
		Region: uint8(r.Client >> 16),
		Key: fnv64a(uint64(r.Client)<<32|uint64(r.Server),
			uint64(r.ClientPort)<<16|uint64(r.ServerPort),
			uint64(r.FirstPacket),
			uint64(r.BytesUp)<<1^uint64(r.BytesDown)),
		Work: 1,
	}
	switch {
	case c.Notify:
		rq.Class = ClassNotify
	case c.Storage():
		rq.Class = ClassStorage
		// Service demand of a storage node scales with the transferred
		// payload in the tagged direction, floored at one unit.
		if p := classify.Payload(r, c.Dir); p > 1 {
			rq.Work = float64(p)
		}
	default:
		rq.Class = ClassControl
	}
	return rq, true
}

// SortRequests puts requests into the canonical arrival order: by arrival
// time, then content key, then class and work. The order is total for any
// realistic request set, so simulating a sorted slice is deterministic no
// matter how the slice was assembled (shard concatenation order, worker
// count, a re-run).
func SortRequests(reqs []Request) {
	sort.Slice(reqs, func(i, j int) bool {
		a, b := reqs[i], reqs[j]
		if a.Arrive != b.Arrive {
			return a.Arrive < b.Arrive
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Work < b.Work
	})
}

// Collector is the fleet.Aggregator that turns a campaign's record stream
// into backend arrivals. It retains only Request values (never the pooled
// records), so it is safe on the allocation-free Aggregate path.
type Collector struct {
	Requests []Request
}

// Consume implements fleet.Sink.
func (c *Collector) Consume(r *traces.FlowRecord) {
	if rq, ok := RequestOf(r); ok {
		c.Requests = append(c.Requests, rq)
	}
}

// Merge implements fleet.Aggregator (shard-order concatenation; the
// canonical sort happens once at collection end).
func (c *Collector) Merge(other fleet.Aggregator) {
	c.Requests = append(c.Requests, other.(*Collector).Requests...)
}

// CollectArrivals streams one vantage point through the sharded fleet
// engine and returns its backend arrivals in canonical order. Worker count
// never changes the result (the fleet contract plus the canonical sort);
// shard count is part of the experiment definition, exactly as for every
// other aggregate. Cancelling ctx aborts at fleet-shard granularity.
func CollectArrivals(ctx context.Context, vp workload.VPConfig, seed int64, fc fleet.Config) ([]Request, fleet.VPStats, error) {
	agg, stats, err := fleet.Aggregate(ctx, vp, seed, fc, func(int) fleet.Aggregator { return &Collector{} })
	if err != nil {
		return nil, stats, err
	}
	reqs := agg.(*Collector).Requests
	SortRequests(reqs)
	return reqs, stats, nil
}

// ScaleLoad returns a copy of reqs with arrival times compressed by
// factor m (> 1 means m-times the offered load at the same total work):
// the saturation analysis ramps offered load without changing what each
// request demands.
func ScaleLoad(reqs []Request, m float64) []Request {
	out := make([]Request, len(reqs))
	for i, r := range reqs {
		r.Arrive = time.Duration(float64(r.Arrive) / m)
		out[i] = r
	}
	SortRequests(out)
	return out
}

// OfferedRate measures the per-class offered load of an arrival set in
// work units per second, over the span from campaign start to the last
// arrival. Presets use it to provision service rates relative to demand,
// so configurations stay meaningful at any population scale.
func OfferedRate(reqs []Request) [3]float64 {
	var work [3]float64
	var span time.Duration
	for _, r := range reqs {
		work[r.Class] += r.Work
		if r.Arrive > span {
			span = r.Arrive
		}
	}
	if span <= 0 {
		span = time.Second
	}
	var rate [3]float64
	for c := range rate {
		rate[c] = work[c] / span.Seconds()
	}
	return rate
}
