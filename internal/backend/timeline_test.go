package backend

import (
	"reflect"
	"testing"
	"time"
)

// twoRegions is a two-node control deployment split across regions 0/1,
// least-loaded routing, unbounded queues — the minimal fleet where a
// region outage has somewhere to fail over to.
func twoRegions(rate float64) Config {
	return Config{
		Admission: AdmitQueue,
		Routing:   RouteLeastLoaded,
		Nodes: []NodeConfig{
			{Name: "control-0", Class: ClassControl, Region: 0, ServiceRate: rate, Concurrency: 1},
			{Name: "control-1", Class: ClassControl, Region: 1, ServiceRate: rate, Concurrency: 1},
		},
	}
}

// TestRegionOutageFreezesAndDrains walks a region through down -> up and
// checks the exact semantics: in-flight work finishes, the frozen queue
// starts nothing while down, arrivals during the outage fail over to the
// live region, and region-up drains the frozen waiter with its full wait
// time on the clock.
func TestRegionOutageFreezesAndDrains(t *testing.T) {
	// Four simultaneous arrivals: least-loaded routing alternates them
	// 0,1,0,1 — each node gets one in service (dep 1s) and one waiting.
	reqs := []Request{
		req(0, ClassControl, 1, 0),
		req(0, ClassControl, 1, 0),
		req(0, ClassControl, 1, 0),
		req(0, ClassControl, 1, 0),
		req(2*time.Second, ClassControl, 1, 0), // arrives mid-outage
	}
	cfg := twoRegions(1)
	cfg.Timeline = []TimelineEvent{
		{At: 500 * time.Millisecond, Action: ActionRegionDown, Region: 1},
		{At: 10 * time.Second, Action: ActionRegionUp, Region: 1},
	}
	rep := mustSimulate(t, cfg, reqs)

	if rep.Served != 5 || rep.Dropped != 0 || rep.Shed != 0 {
		t.Fatalf("served/dropped/shed = %d/%d/%d, want 5/0/0", rep.Served, rep.Dropped, rep.Shed)
	}
	// The waiter frozen on control-1 queued at t=0 and only started when
	// the region came back at t=10s.
	if got := time.Duration(rep.Delay.Max()); got != 10*time.Second {
		t.Fatalf("max delay = %v, want the frozen waiter's 10s", got)
	}
	// The mid-outage arrival failed over to the live region 0 node.
	var n0, n1 NodeReport
	for _, n := range rep.Nodes {
		switch n.Name {
		case "control-0":
			n0 = n
		case "control-1":
			n1 = n
		}
	}
	if n0.Served != 3 || n1.Served != 2 {
		t.Fatalf("served split = %d/%d, want 3/2 (failover to the live region)", n0.Served, n1.Served)
	}
	// Horizon: the drained waiter departs at 11s.
	if rep.Horizon != 11*time.Second {
		t.Fatalf("horizon = %v, want 11s", rep.Horizon)
	}
}

// TestCapacityScaleDrainsQueue: a staged capacity rollout mid-run widens
// the node and immediately drains its backlog — delays collapse from the
// moment the event fires.
func TestCapacityScaleDrainsQueue(t *testing.T) {
	burst := []Request{
		req(0, ClassControl, 1, 0),
		req(0, ClassControl, 1, 0),
		req(0, ClassControl, 1, 0),
		req(0, ClassControl, 1, 0),
	}
	base := oneNode(1, 1, 0, AdmitQueue)

	// Without the rollout the four serialize: delays 0,1,2,3s.
	plain := mustSimulate(t, base, burst)
	if got := time.Duration(plain.Delay.Max()); got != 3*time.Second {
		t.Fatalf("baseline max delay = %v, want 3s", got)
	}

	scaled := base
	scaled.Timeline = []TimelineEvent{
		{At: 1500 * time.Millisecond, Action: ActionScaleCapacity, Class: ClassControl, Factor: 3},
	}
	rep := mustSimulate(t, scaled, burst)
	if rep.Served != 4 || rep.Dropped != 0 {
		t.Fatalf("served/dropped = %d/%d, want 4/0", rep.Served, rep.Dropped)
	}
	// At 1.5s requests 3 and 4 are still queued; the rollout starts both
	// immediately, so the worst wait is 1.5s instead of 3s.
	if got := time.Duration(rep.Delay.Max()); got != 1500*time.Millisecond {
		t.Fatalf("max delay after rollout = %v, want 1.5s", got)
	}
	if got := rep.Nodes[0].Concurrency; got != 3 {
		t.Fatalf("reported concurrency = %d, want the scaled 3", got)
	}
}

// TestWindowsDoNotPerturbSimulation: report windows are observation only —
// the same run with and without windows produces the identical report
// modulo the Windows field itself (the golden-preservation half of the
// timeline feature).
func TestWindowsDoNotPerturbSimulation(t *testing.T) {
	reqs := makeArrivals(400)
	cfg := twoRegions(50)

	plain := mustSimulate(t, cfg, reqs)

	windowed := cfg
	windowed.Windows = []Window{{Name: "w", Start: 0, End: time.Hour}}
	rep := mustSimulate(t, windowed, reqs)
	if len(rep.Windows) != 1 {
		t.Fatalf("window report missing: %+v", rep.Windows)
	}
	rep.Windows = nil
	if !reflect.DeepEqual(plain, rep) {
		t.Fatalf("attaching a report window changed the simulation:\nplain: %+v\nwindowed: %+v", plain, rep)
	}
}

// makeArrivals builds a deterministic spread of arrivals for invariance
// tests (no RNG — a fixed affine pattern over time, work and keys).
func makeArrivals(n int) []Request {
	reqs := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		reqs = append(reqs, Request{
			Arrive: time.Duration(i%97) * 100 * time.Millisecond,
			Class:  ClassControl,
			Work:   float64(1 + i%5),
			Region: uint8(i % 3),
			Key:    uint64(i) * 0x9e3779b97f4a7c15,
		})
	}
	SortRequests(reqs)
	return reqs
}

// TestAmplifyWindowDeterministic pins the surge transformation: pure
// (same output on every call), input-preserving, in-window-only, and
// canonically sorted.
func TestAmplifyWindowDeterministic(t *testing.T) {
	reqs := makeArrivals(500)
	orig := append([]Request(nil), reqs...)
	start, end := 2*time.Second, 5*time.Second

	a := AmplifyWindow(reqs, start, end, 2.5)
	b := AmplifyWindow(reqs, start, end, 2.5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("AmplifyWindow is not deterministic")
	}
	if !reflect.DeepEqual(reqs, orig) {
		t.Fatal("AmplifyWindow modified its input")
	}

	inWin, outWin := 0, 0
	for _, r := range reqs {
		if r.Arrive >= start && r.Arrive < end {
			inWin++
		} else {
			outWin++
		}
	}
	aIn, aOut := 0, 0
	for _, r := range a {
		if r.Arrive >= start && r.Arrive < end {
			aIn++
		} else {
			aOut++
		}
	}
	if aOut != outWin {
		t.Fatalf("out-of-window arrivals changed: %d -> %d", outWin, aOut)
	}
	// mult 2.5: every in-window request at least doubles, the hash-selected
	// half gains a third copy — the realized total lands strictly between.
	if aIn < 2*inWin || aIn > 3*inWin {
		t.Fatalf("in-window arrivals %d outside [2x, 3x] of %d", aIn, inWin)
	}
	sorted := append([]Request(nil), a...)
	SortRequests(sorted)
	if !reflect.DeepEqual(a, sorted) {
		t.Fatal("AmplifyWindow output is not canonically sorted")
	}

	// mult <= 1 is the identity (a fresh slice with the same contents).
	same := AmplifyWindow(reqs, start, end, 1)
	if !reflect.DeepEqual(same, reqs) {
		t.Fatal("mult=1 amplification is not the identity")
	}
}
