package backend

import (
	"math/rand"
	"testing"
	"time"
)

// refEv mirrors one pushed event for the reference model: arrival time
// plus push ordinal. The model's expected pop is the entry with the
// smallest (at, ordinal) — exactly the queue's documented contract.
type refEv struct {
	at  time.Duration
	ord int32
}

// refPop removes and returns the model's expected next event (O(n) scan —
// obviously correct, which is the point of a reference model).
func refPop(ref []refEv) (refEv, []refEv) {
	best := 0
	for i, e := range ref[1:] {
		if e.at < ref[best].at || (e.at == ref[best].at && e.ord < ref[best].ord) {
			best = i + 1
		}
	}
	e := ref[best]
	return e, append(ref[:best], ref[best+1:]...)
}

// drainAndVerify pops q dry, checking every pop against the reference
// model and the nondecreasing-timestamp invariant.
func drainAndVerify(t *testing.T, q *EventQueue, ref []refEv, lastAt time.Duration) {
	t.Helper()
	for len(ref) > 0 {
		var want refEv
		want, ref = refPop(ref)
		got, ok := q.Pop()
		if !ok {
			t.Fatalf("queue empty with %d events outstanding", len(ref)+1)
		}
		if got.At < lastAt {
			t.Fatalf("timestamp went backwards: popped %v after %v", got.At, lastAt)
		}
		if got.At != want.at || got.Req != want.ord {
			t.Fatalf("pop = (at %v, ord %d), want (at %v, ord %d)", got.At, got.Req, want.at, want.ord)
		}
		lastAt = got.At
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue not empty after draining the reference model")
	}
}

// TestEventQueueOrdering pins the queue's core contract on deterministic
// shapes: pops come out in nondecreasing timestamp order, and events at
// equal timestamps come out in push (FIFO) order.
func TestEventQueueOrdering(t *testing.T) {
	cases := []struct {
		name string
		ats  []time.Duration
	}{
		{"sorted", []time.Duration{1, 2, 3, 4, 5}},
		{"reverse", []time.Duration{5, 4, 3, 2, 1}},
		{"all-equal", []time.Duration{7, 7, 7, 7, 7, 7}},
		{"plateaus", []time.Duration{3, 1, 3, 1, 3, 1, 2, 2}},
		{"single", []time.Duration{42}},
		{"empty", nil},
		{"duplicate-bursts", []time.Duration{0, 0, 5, 5, 0, 5, 2, 2, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var q EventQueue
			var ref []refEv
			for i, at := range tc.ats {
				q.Push(Event{At: at, Req: int32(i)})
				ref = append(ref, refEv{at: at, ord: int32(i)})
			}
			if q.Len() != len(tc.ats) {
				t.Fatalf("Len = %d, want %d", q.Len(), len(tc.ats))
			}
			drainAndVerify(t, &q, ref, 0)
		})
	}
}

// TestEventQueueRandomizedInterleavings drives the queue with seeded
// random push/pop interleavings — including heavy tie ratios, which is
// where a heap without a sequence tiebreak goes wrong — and checks every
// pop against the reference model.
func TestEventQueueRandomizedInterleavings(t *testing.T) {
	for _, tc := range []struct {
		name    string
		seed    int64
		ops     int
		atRange int64 // arrival times drawn from [0, atRange)
		popFrac float64
	}{
		{"sparse-ties", 1, 2000, 1 << 40, 0.4},
		{"dense-ties", 2, 2000, 8, 0.4},
		{"all-ties", 3, 1000, 1, 0.5},
		{"pop-heavy", 4, 3000, 64, 0.7},
		{"push-heavy", 5, 3000, 64, 0.1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			var q EventQueue
			var ref []refEv
			var ord int32
			lastAt := time.Duration(0)
			for i := 0; i < tc.ops; i++ {
				if len(ref) > 0 && rng.Float64() < tc.popFrac {
					var want refEv
					want, ref = refPop(ref)
					got, ok := q.Pop()
					if !ok {
						t.Fatalf("op %d: queue empty, model has %d", i, len(ref)+1)
					}
					if got.At != want.at || got.Req != want.ord {
						t.Fatalf("op %d: pop = (at %v, ord %d), want (at %v, ord %d)",
							i, got.At, got.Req, want.at, want.ord)
					}
					// The nondecreasing invariant holds between pops with
					// no smaller-timestamped push in between; the model
					// check above subsumes the general case.
					lastAt = got.At
					_ = lastAt
				} else {
					at := time.Duration(rng.Int63n(tc.atRange))
					q.Push(Event{At: at, Req: ord})
					ref = append(ref, refEv{at: at, ord: ord})
					ord++
				}
			}
			drainAndVerify(t, &q, ref, 0)
		})
	}
}

// TestEventQueueNextAt pins the peek accessor.
func TestEventQueueNextAt(t *testing.T) {
	var q EventQueue
	if _, ok := q.NextAt(); ok {
		t.Fatal("NextAt on empty queue reported ok")
	}
	q.Push(Event{At: 30})
	q.Push(Event{At: 10})
	q.Push(Event{At: 20})
	if at, ok := q.NextAt(); !ok || at != 10 {
		t.Fatalf("NextAt = (%v, %v), want (10, true)", at, ok)
	}
	if q.Len() != 3 {
		t.Fatalf("NextAt consumed an event: Len = %d", q.Len())
	}
}
