package dnssim

import (
	"strings"
	"testing"

	"insidedropbox/internal/simrand"
	"insidedropbox/internal/wire"
)

func TestClassifyTable1(t *testing.T) {
	cases := map[string]Service{
		"client-lb.dropbox.com":   SvcClientControl,
		"client7.dropbox.com":     SvcClientControl,
		"notify3.dropbox.com":     SvcNotify,
		"api.dropbox.com":         SvcAPIControl,
		"www.dropbox.com":         SvcWebControl,
		"d.dropbox.com":           SvcSystemLog,
		"dl.dropbox.com":          SvcWebStorage,
		"dl-client42.dropbox.com": SvcClientStorage,
		"dl-debug1.dropbox.com":   SvcSystemLog,
		"dl-web.dropbox.com":      SvcWebStorage,
		"api-content.dropbox.com": SvcAPIStorage,
		"evil.example.com":        SvcUnknown,
		"dropbox.com":             SvcUnknown,
	}
	for fqdn, want := range cases {
		if got := Classify(fqdn); got != want {
			t.Errorf("Classify(%q) = %v, want %v", fqdn, got, want)
		}
	}
}

func TestServiceStrings(t *testing.T) {
	for s := SvcUnknown; s <= SvcSystemLog; s++ {
		if s.String() == "" {
			t.Fatalf("service %d has empty name", s)
		}
	}
	if !SvcClientStorage.IsStorage() || SvcNotify.IsStorage() {
		t.Fatal("IsStorage misclassifies")
	}
}

func TestBuildDefaultLayout(t *testing.T) {
	d := Build(DefaultLayout())
	if len(d.MetaNames) != 11 { // client-lb + client1..10
		t.Fatalf("meta names = %d", len(d.MetaNames))
	}
	if len(d.NotifyNames) != 20 {
		t.Fatalf("notify names = %d", len(d.NotifyNames))
	}
	if len(d.StorageNames) != 520 {
		t.Fatalf("storage names = %d", len(d.StorageNames))
	}
	if got := len(d.Pool("client-lb.dropbox.com")); got != 10 {
		t.Fatalf("client-lb pool = %d IPs", got)
	}
	if got := len(d.Pool("client3.dropbox.com")); got != 1 {
		t.Fatalf("clientX pool = %d IPs", got)
	}
}

func TestStorageIPCoverage(t *testing.T) {
	d := Build(DefaultLayout())
	seen := make(map[wire.IP]bool)
	for _, n := range d.StorageNames {
		for _, ip := range d.Pool(n) {
			seen[ip] = true
		}
	}
	if len(seen) != 640 {
		t.Fatalf("storage names cover %d IPs, want 640", len(seen))
	}
	for ip := range seen {
		if d.DataCenter(ip) != AmazonDC {
			t.Fatalf("storage IP %s not in Amazon DC", ip)
		}
	}
}

func TestDataCenterSplit(t *testing.T) {
	d := Build(DefaultLayout())
	byDC := d.AllIPs()
	if len(byDC[DropboxDC]) < 30 {
		t.Fatalf("dropbox DC has %d IPs", len(byDC[DropboxDC]))
	}
	if len(byDC[AmazonDC]) < 640 {
		t.Fatalf("amazon DC has %d IPs", len(byDC[AmazonDC]))
	}
	for _, n := range d.MetaNames {
		for _, ip := range d.Pool(n) {
			if d.DataCenter(ip) != DropboxDC {
				t.Fatalf("meta IP %s not in Dropbox DC", ip)
			}
		}
	}
}

func TestClassifyAllDirectoryNames(t *testing.T) {
	d := Build(DefaultLayout())
	for _, n := range d.Names() {
		if Classify(n) == SvcUnknown {
			t.Fatalf("directory name %q unclassified", n)
		}
	}
}

func TestResolverRotation(t *testing.T) {
	d := Build(DefaultLayout())
	r := NewResolver(d, simrand.New(1, "t"))
	client := wire.MakeIP(10, 0, 0, 1)
	seen := make(map[wire.IP]int)
	for i := 0; i < 40; i++ {
		ip, ok := r.Resolve(0, client, "client-lb.dropbox.com")
		if !ok {
			t.Fatal("resolution failed")
		}
		seen[ip]++
	}
	if len(seen) != 10 {
		t.Fatalf("rotation reached %d of 10 IPs", len(seen))
	}
	for ip, n := range seen {
		if n != 4 {
			t.Fatalf("uneven rotation: %s hit %d times", ip, n)
		}
	}
}

func TestResolverUnknownName(t *testing.T) {
	d := Build(DefaultLayout())
	r := NewResolver(d, simrand.New(1, "t"))
	if _, ok := r.Resolve(0, 0, "nxdomain.example.com"); ok {
		t.Fatal("unknown name resolved")
	}
}

func TestResolverLog(t *testing.T) {
	d := Build(DefaultLayout())
	r := NewResolver(d, simrand.New(1, "t"))
	var events []Event
	r.Log = func(e Event) { events = append(events, e) }
	client := wire.MakeIP(10, 0, 0, 9)
	ip, _ := r.Resolve(42, client, "dl-client7.dropbox.com")
	if len(events) != 1 {
		t.Fatalf("log got %d events", len(events))
	}
	e := events[0]
	if e.Client != client || e.Server != ip || e.FQDN != "dl-client7.dropbox.com" || e.Time != 42 {
		t.Fatalf("event = %+v", e)
	}
}

func TestStorageNamePattern(t *testing.T) {
	d := Build(DefaultLayout())
	for _, n := range d.StorageNames {
		if !strings.HasPrefix(n, "dl-client") || !strings.HasSuffix(n, ".dropbox.com") {
			t.Fatalf("bad storage name %q", n)
		}
	}
}

func BenchmarkResolve(b *testing.B) {
	d := Build(DefaultLayout())
	r := NewResolver(d, simrand.New(1, "b"))
	client := wire.MakeIP(10, 0, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Resolve(0, client, "dl-client99.dropbox.com")
	}
}
