// Package dnssim models the DNS side of the Dropbox service: the Table 1
// sub-domain layout, the server IP pools behind each name, client-side
// round-robin rotation, and the resolution log a passive probe uses to label
// server addresses with the FQDN the client asked for (the DN-Hunter
// technique of Bermudez et al. that the paper relies on, Sec. 3.1).
package dnssim

import (
	"fmt"
	"strings"

	"insidedropbox/internal/simrand"
	"insidedropbox/internal/simtime"
	"insidedropbox/internal/wire"
)

// Service identifies one functional group of Dropbox servers, following
// Table 1 and the traffic-share grouping of Fig. 4.
type Service int

// Services, ordered as in Fig. 4's legend.
const (
	SvcUnknown       Service = iota
	SvcClientStorage         // dl-clientX (Amazon)
	SvcWebStorage            // dl-web, dl (Amazon)
	SvcAPIStorage            // api-content (Amazon)
	SvcClientControl         // client-lb, clientX (Dropbox)
	SvcNotify                // notifyX (Dropbox)
	SvcWebControl            // www (Dropbox)
	SvcAPIControl            // api (Dropbox)
	SvcSystemLog             // d (Dropbox), dl-debugX (Amazon)
)

func (s Service) String() string {
	switch s {
	case SvcClientStorage:
		return "Client (storage)"
	case SvcWebStorage:
		return "Web (storage)"
	case SvcAPIStorage:
		return "API (storage)"
	case SvcClientControl:
		return "Client (control)"
	case SvcNotify:
		return "Notify (control)"
	case SvcWebControl:
		return "Web (control)"
	case SvcAPIControl:
		return "API (control)"
	case SvcSystemLog:
		return "System log (all)"
	default:
		return "Others"
	}
}

// IsStorage reports whether the service moves file data.
func (s Service) IsStorage() bool {
	return s == SvcClientStorage || s == SvcWebStorage || s == SvcAPIStorage
}

// Classify maps a dropbox.com FQDN to its service group (Table 1).
func Classify(fqdn string) Service {
	name, ok := strings.CutSuffix(fqdn, ".dropbox.com")
	if !ok {
		return SvcUnknown
	}
	// Strip the instance number by hand: this runs once or twice per
	// record on the aggregation hot path, where strings.TrimRight's
	// per-call ASCII-set build is measurable.
	base := name
	for len(base) > 0 {
		if c := base[len(base)-1]; c < '0' || c > '9' {
			break
		}
		base = base[:len(base)-1]
	}
	switch base {
	case "client-lb", "client":
		return SvcClientControl
	case "notify":
		return SvcNotify
	case "api":
		return SvcAPIControl
	case "www":
		return SvcWebControl
	case "d":
		return SvcSystemLog
	case "dl":
		return SvcWebStorage
	case "dl-client":
		return SvcClientStorage
	case "dl-debug":
		return SvcSystemLog
	case "dl-web":
		return SvcWebStorage
	case "api-content":
		return SvcAPIStorage
	default:
		return SvcUnknown
	}
}

// Directory holds the authoritative name -> IP-pool mapping and the
// data-center each address lives in.
type Directory struct {
	pools map[string][]wire.IP
	// dcOf records which data-center an IP belongs to ("dropbox-dc" or
	// "amazon-dc" in the default layout).
	dcOf map[wire.IP]string

	MetaNames    []string // client-lb + clientX
	NotifyNames  []string // notifyX
	StorageNames []string // dl-clientX
}

// Layout sizes the default directory. Values default to the paper's
// observations: 10 meta-data IPs, 20 notification IPs, >500 storage names
// over >600 storage IPs.
type Layout struct {
	MetaIPs      int
	NotifyIPs    int
	StorageNames int
	StorageIPs   int
}

// DefaultLayout matches Sec. 4.2.1.
func DefaultLayout() Layout {
	return Layout{MetaIPs: 10, NotifyIPs: 20, StorageNames: 520, StorageIPs: 640}
}

// Data-center site names used by the default directory.
const (
	DropboxDC = "dropbox-dc"
	AmazonDC  = "amazon-dc"
)

// Build constructs the Table 1 name space. Dropbox-controlled services live
// in 199.47.216.0/22-style space; Amazon services in 184.72.0.0/16-style
// space (the actual 2012 allocations).
func Build(l Layout) *Directory {
	d := &Directory{
		pools: make(map[string][]wire.IP),
		dcOf:  make(map[wire.IP]string),
	}
	dropboxIP := func(i int) wire.IP {
		ip := wire.MakeIP(199, 47, 216+byte(i/256), byte(i%256))
		d.dcOf[ip] = DropboxDC
		return ip
	}
	amazonIP := func(i int) wire.IP {
		ip := wire.MakeIP(184, 72, byte(i/256), byte(i%256))
		d.dcOf[ip] = AmazonDC
		return ip
	}

	// Meta-data: client-lb resolves to the whole pool; clientX to one IP
	// each ("Meta-data servers are addressed in both ways", Sec. 4.2.1).
	metaPool := make([]wire.IP, l.MetaIPs)
	for i := range metaPool {
		metaPool[i] = dropboxIP(i)
	}
	d.pools["client-lb.dropbox.com"] = metaPool
	d.MetaNames = append(d.MetaNames, "client-lb.dropbox.com")
	for i := 0; i < l.MetaIPs; i++ {
		name := fmt.Sprintf("client%d.dropbox.com", i+1)
		d.pools[name] = []wire.IP{metaPool[i]}
		d.MetaNames = append(d.MetaNames, name)
	}

	// Notification: notifyX, one IP each.
	for i := 0; i < l.NotifyIPs; i++ {
		name := fmt.Sprintf("notify%d.dropbox.com", i+1)
		d.pools[name] = []wire.IP{dropboxIP(l.MetaIPs + i)}
		d.NotifyNames = append(d.NotifyNames, name)
	}

	// Other Dropbox-hosted services.
	base := l.MetaIPs + l.NotifyIPs
	d.pools["www.dropbox.com"] = []wire.IP{dropboxIP(base), dropboxIP(base + 1)}
	d.pools["d.dropbox.com"] = []wire.IP{dropboxIP(base + 2)}
	d.pools["api.dropbox.com"] = []wire.IP{dropboxIP(base + 3), dropboxIP(base + 4)}

	// Storage: StorageNames names spread over StorageIPs addresses; each
	// name resolves to a small pool so every address is reachable.
	storageIPs := make([]wire.IP, l.StorageIPs)
	for i := range storageIPs {
		storageIPs[i] = amazonIP(i)
	}
	for i := 0; i < l.StorageNames; i++ {
		name := fmt.Sprintf("dl-client%d.dropbox.com", i+1)
		pool := []wire.IP{storageIPs[i%l.StorageIPs]}
		if second := (i + l.StorageNames) % l.StorageIPs; second != i%l.StorageIPs {
			pool = append(pool, storageIPs[second])
		}
		d.pools[name] = pool
		d.StorageNames = append(d.StorageNames, name)
	}

	// Remaining Amazon-hosted services.
	na := l.StorageIPs
	d.pools["dl.dropbox.com"] = []wire.IP{amazonIP(na), amazonIP(na + 1)}
	d.pools["dl-web.dropbox.com"] = []wire.IP{amazonIP(na + 2), amazonIP(na + 3)}
	d.pools["api-content.dropbox.com"] = []wire.IP{amazonIP(na + 4)}
	d.pools["dl-debug1.dropbox.com"] = []wire.IP{amazonIP(na + 5)}
	return d
}

// Pool returns the addresses behind a name (nil if unknown).
func (d *Directory) Pool(fqdn string) []wire.IP { return d.pools[fqdn] }

// Names returns every FQDN in the directory.
func (d *Directory) Names() []string {
	out := make([]string, 0, len(d.pools))
	for n := range d.pools {
		out = append(out, n)
	}
	return out
}

// DataCenter reports which data-center site an address belongs to.
func (d *Directory) DataCenter(ip wire.IP) string { return d.dcOf[ip] }

// AllIPs returns every address in the directory, grouped by data-center.
func (d *Directory) AllIPs() map[string][]wire.IP {
	out := make(map[string][]wire.IP)
	seen := make(map[wire.IP]bool)
	for _, pool := range d.pools {
		for _, ip := range pool {
			if !seen[ip] {
				seen[ip] = true
				out[d.dcOf[ip]] = append(out[d.dcOf[ip]], ip)
			}
		}
	}
	return out
}

// Event is one DNS resolution visible to the probe.
type Event struct {
	Time   simtime.Time
	Client wire.IP
	FQDN   string
	Server wire.IP
}

// Resolver answers queries with round-robin rotation over each pool and
// reports resolutions to an optional log sink. One resolver serves a whole
// vantage point (clients share the ISP/campus resolver).
type Resolver struct {
	dir *Directory
	rr  map[string]int
	rng *simrand.Source
	// Log receives every resolution; the probe's FQDN labeler subscribes.
	Log func(Event)
}

// NewResolver builds a resolver over the directory.
func NewResolver(dir *Directory, rng *simrand.Source) *Resolver {
	return &Resolver{dir: dir, rr: make(map[string]int), rng: rng.Fork("dns")}
}

// Resolve returns the next address for fqdn, rotating through the pool, and
// logs the resolution. It returns false for names outside the directory.
func (r *Resolver) Resolve(now simtime.Time, client wire.IP, fqdn string) (wire.IP, bool) {
	pool := r.dir.Pool(fqdn)
	if len(pool) == 0 {
		return 0, false
	}
	// Start each name at a random offset so distinct vantage points do not
	// walk pools in lockstep.
	idx, ok := r.rr[fqdn]
	if !ok {
		idx = r.rng.Intn(len(pool))
	}
	r.rr[fqdn] = (idx + 1) % len(pool)
	ip := pool[idx%len(pool)]
	if r.Log != nil {
		r.Log(Event{Time: now, Client: client, FQDN: fqdn, Server: ip})
	}
	return ip, true
}
