package cli

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"insidedropbox/internal/telemetry"
)

// ProfileFlags binds the opt-in observability flag vocabulary shared by
// cmd/experiments, cmd/dropsim and cmd/bench: pprof serving, CPU/heap
// profiles, and periodic telemetry snapshot lines. All default to off —
// the binaries pay nothing unless asked.
type ProfileFlags struct {
	pprofAddr  *string
	cpuProfile *string
	memProfile *string
	interval   *time.Duration
}

// BindProfile registers the observability flags on fs.
func BindProfile(fs *flag.FlagSet) *ProfileFlags {
	return &ProfileFlags{
		pprofAddr:  fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)"),
		cpuProfile: fs.String("cpuprofile", "", "write a CPU profile to this file"),
		memProfile: fs.String("memprofile", "", "write a heap profile to this file on stop"),
		interval:   fs.Duration("telemetry-interval", 0, "print a telemetry snapshot line to stderr at this interval (0 = off)"),
	}
}

// Start activates whichever sinks the parsed flags configured and returns
// an idempotent stop function that flushes and closes them (the CPU
// profile stops, the heap profile writes, the telemetry logger emits its
// final line). Stops also run on Exit, so a failed run still produces its
// profiles.
func (f *ProfileFlags) Start() (stop func(), err error) {
	var stops []func()
	fail := func(err error) (func(), error) {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
		return nil, err
	}
	if *f.cpuProfile != "" {
		cf, err := os.Create(*f.cpuProfile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			return fail(fmt.Errorf("starting CPU profile: %w", err))
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			cf.Close()
		})
	}
	if *f.memProfile != "" {
		path := *f.memProfile
		// Fail on an unwritable path now, not after the whole run.
		mf, err := os.Create(path)
		if err != nil {
			return fail(err)
		}
		stops = append(stops, func() {
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintf(os.Stderr, "heap profile: %v\n", err)
			}
			mf.Close()
		})
	}
	if *f.pprofAddr != "" {
		ln, err := net.Listen("tcp", *f.pprofAddr)
		if err != nil {
			return fail(fmt.Errorf("pprof listener: %w", err))
		}
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/\n", ln.Addr())
		srv := &http.Server{Handler: http.DefaultServeMux}
		go srv.Serve(ln)
		stops = append(stops, func() { srv.Close() })
	}
	if *f.interval > 0 {
		stops = append(stops, telemetry.LogPeriodically(os.Stderr, *f.interval))
	}
	var once sync.Once
	stop = func() {
		once.Do(func() {
			for i := len(stops) - 1; i >= 0; i-- {
				stops[i]()
			}
		})
	}
	registerStop(stop)
	return stop, nil
}

// Profile stops registered for Exit: a run that dies on error still
// flushes its CPU/heap profiles and final telemetry line.
var (
	stopsMu sync.Mutex
	stops   []func()
)

func registerStop(fn func()) {
	stopsMu.Lock()
	defer stopsMu.Unlock()
	stops = append(stops, fn)
}

// runStops executes every registered profile stop, once.
func runStops() {
	stopsMu.Lock()
	fns := stops
	stops = nil
	stopsMu.Unlock()
	for _, fn := range fns {
		fn()
	}
}
