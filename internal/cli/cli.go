// Package cli is the shared command-line surface of the repo's binaries:
// one flag vocabulary bound to the facade's Spec, one vantage-point
// resolver, one progress printer and one signal-aware context, so
// cmd/experiments, cmd/dropsim and cmd/bench parse and behave alike
// instead of growing private flag dialects.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path"
	"strings"
	"syscall"
	"time"

	"insidedropbox"
)

// SignalContext returns a context cancelled by SIGINT/SIGTERM, so a ^C
// tears campaigns down at fleet-shard granularity instead of killing the
// process mid-write. A second signal kills the process immediately
// (signal.NotifyContext semantics).
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// SpecFlags binds the shared campaign flag vocabulary onto a FlagSet and
// resolves it into a Spec. Commands bind it once, parse, then call Spec.
type SpecFlags struct {
	fs         *flag.FlagSet
	seed       *int64
	quick      *bool
	skipPacket *bool
	shards     *int
	workers    *int
	only       *string
	fleetScale *float64
	whatif     *bool
	profiles   *string
	backend    *string
	scenario   *string
	out        *string
	checkpoint *string
	resume     *bool
	jobs       *int
}

// BindSpec registers the shared campaign flags on fs.
func BindSpec(fs *flag.FlagSet) *SpecFlags {
	return &SpecFlags{
		fs:         fs,
		seed:       fs.Int64("seed", 2012, "campaign random seed"),
		quick:      fs.Bool("quick", false, "small populations and packet labs"),
		skipPacket: fs.Bool("skip-packet", false, "skip the packet-level labs (Figs. 1, 9, 10, 19)"),
		shards:     fs.Int("shards", 1, "population shards per vantage point (1 = historical datasets)"),
		workers:    fs.Int("workers", 0, "concurrent shard workers (0 = GOMAXPROCS; never changes results)"),
		only:       fs.String("only", "", "comma-separated experiment IDs or globs (e.g. table3,figure*); empty = default catalogue"),
		fleetScale: fs.Float64("fleet-scale", 0, "also run the streaming fleet lab at this device multiplier (0 = off)"),
		whatif:     fs.Bool("whatif", false, "run the capability what-if lab (Campus 1 under -profiles)"),
		profiles: fs.String("profiles", strings.Join(insidedropbox.CapabilityNames(), ","),
			"comma-separated capability profiles for the what-if lab (first = baseline; setting this opts the lab in)"),
		backend: fs.String("backend", "", "run the backend capacity lab under this preset ("+
			strings.Join(insidedropbox.BackendPresets(), "|")+"; setting this opts the lab in)"),
		scenario:   fs.String("scenario", "", "run the scenario/* experiments under this declarative spec file (setting this opts them in)"),
		out:        fs.String("out", "results", "output directory for rendered results"),
		checkpoint: fs.String("checkpoint", "", "record each experiment's result to this file as it completes, enabling -resume"),
		resume:     fs.Bool("resume", false, "load results already recorded in -checkpoint instead of recomputing them"),
		jobs:       fs.Int("jobs", 0, "alias for -workers: concurrent shard workers (0 = GOMAXPROCS; never changes results)"),
	}
}

// Spec resolves the parsed flags into a Spec (profile parsing errors
// surface here, after flag.Parse).
func (f *SpecFlags) Spec() (insidedropbox.Spec, error) {
	workers := *f.workers
	if workers == 0 {
		workers = *f.jobs
	}
	spec := insidedropbox.Spec{
		Seed:       *f.seed,
		Quick:      *f.quick,
		SkipPacket: *f.skipPacket,
		Fleet:      insidedropbox.FleetConfig{Shards: *f.shards, Workers: workers},
		FleetScale: *f.fleetScale,
		Backend:    *f.backend,
		ResultsDir: *f.out,
		Checkpoint: *f.checkpoint,
		Resume:     *f.resume,
	}
	if *f.resume && *f.checkpoint == "" {
		return spec, errors.New("-resume requires -checkpoint")
	}
	if *f.scenario != "" {
		sp, err := insidedropbox.LoadScenario(*f.scenario)
		if err != nil {
			return spec, err
		}
		spec.Scenario = sp
	}
	if *f.only != "" {
		spec.Experiments = SplitPatterns(*f.only)
		// An explicit selection suppresses the Spec's opt-in defaulting,
		// so flags that ask for a lab must join it here instead of being
		// silently ignored.
		if *f.whatif {
			spec.Experiments = append(spec.Experiments, "whatif")
		}
		if *f.fleetScale > 0 {
			spec.Experiments = append(spec.Experiments, "fleet")
		}
		if *f.backend != "" {
			spec.Experiments = append(spec.Experiments, "backend/*")
		}
		if *f.scenario != "" {
			spec.Experiments = append(spec.Experiments, "scenario/*")
		}
	}
	// Profiles apply when the what-if lab was asked for (-whatif) or when
	// the user explicitly passed -profiles — e.g. alongside `-only whatif`,
	// where the flag would otherwise be silently ignored. (Setting
	// Spec.Profiles also opts the lab into a default selection, so the
	// default -profiles value must not apply unasked.)
	profilesWanted := *f.whatif
	f.fs.Visit(func(fl *flag.Flag) {
		if fl.Name == "profiles" {
			profilesWanted = true
		}
	})
	if profilesWanted {
		profiles, err := insidedropbox.ParseProfiles(*f.profiles)
		if err != nil {
			return spec, err
		}
		spec.Profiles = profiles
	}
	return spec, nil
}

// Exit terminates the process after a run error: exit 130 for an
// interrupted context (so scripts can distinguish ^C from real failures),
// 1 otherwise. Shared by every binary so they behave alike. Profile sinks
// started via ProfileFlags.Start are stopped first, so an interrupted or
// failed run still writes its profiles and final telemetry line.
func Exit(ctx context.Context, what string, err error) {
	runStops()
	if errors.Is(err, ctx.Err()) && ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "%s: interrupted: %v\n", what, err)
		os.Exit(130)
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", what, err)
	os.Exit(1)
}

// SplitPatterns splits a comma-separated pattern list, trimming blanks.
func SplitPatterns(list string) []string {
	var out []string
	for _, p := range strings.Split(list, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Matcher compiles a comma-separated list of glob patterns into a
// predicate. Patterns without glob metacharacters match as substrings
// (the historical -scenarios contract); an empty list matches everything.
func Matcher(list string) func(string) bool {
	patterns := SplitPatterns(list)
	if len(patterns) == 0 {
		return func(string) bool { return true }
	}
	return func(name string) bool {
		for _, p := range patterns {
			if strings.ContainsAny(p, "*?[") {
				if ok, err := path.Match(p, name); err == nil && ok {
					return true
				}
			} else if strings.Contains(name, p) {
				return true
			}
		}
		return false
	}
}

// VantageNames lists the resolvable vantage point names.
func VantageNames() []string {
	return []string{"campus1", "campus1-junjul", "campus2", "home1", "home2"}
}

// VantagePoint resolves a vantage point name and population scale into
// its calibrated config.
func VantagePoint(name string, scale float64) (insidedropbox.VPConfig, error) {
	switch name {
	case "campus1":
		return insidedropbox.Campus1(scale), nil
	case "campus1-junjul":
		return insidedropbox.Campus1JunJul(scale), nil
	case "campus2":
		return insidedropbox.Campus2(scale), nil
	case "home1":
		return insidedropbox.Home1(scale), nil
	case "home2":
		return insidedropbox.Home2(scale), nil
	}
	return insidedropbox.VPConfig{}, fmt.Errorf("unknown vantage point %q (valid: %s)",
		name, strings.Join(VantageNames(), ", "))
}

// Progress returns a Spec progress observer that prints one line per
// experiment to w — start, and completion with wall-clock or failure —
// plus, on multi-shard runs, one line per completed generation shard with
// live throughput and ETA.
func Progress(w io.Writer) func(insidedropbox.Progress) {
	return func(p insidedropbox.Progress) {
		switch {
		case p.ShardEvent():
			if p.Shards < 2 {
				return // single-shard VPs: the experiment lines suffice
			}
			line := fmt.Sprintf("        %s: shard %d/%d, %s records (%s rec/s",
				p.VP, p.ShardsDone, p.Shards, Count(p.Records), Count(int64(p.RecordsPerSec)))
			if p.ETA > 0 {
				line += ", ETA " + p.ETA.Round(time.Second).String()
			}
			fmt.Fprintln(w, line+")")
		case !p.Done:
			fmt.Fprintf(w, "[%2d/%d] %-10s %s ...\n", p.Index, p.Total, p.ID, p.Title)
		case p.Err != nil:
			fmt.Fprintf(w, "[%2d/%d] %-10s FAILED after %v: %v\n",
				p.Index, p.Total, p.ID, p.Elapsed.Round(time.Millisecond), p.Err)
		default:
			fmt.Fprintf(w, "[%2d/%d] %-10s done in %v\n",
				p.Index, p.Total, p.ID, p.Elapsed.Round(time.Millisecond))
		}
	}
}

// Count humanizes a count for progress lines (1234567 -> "1.2M").
func Count(v int64) string {
	switch {
	case v >= 1_000_000_000:
		return fmt.Sprintf("%.1fG", float64(v)/1e9)
	case v >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 10_000:
		return fmt.Sprintf("%.0fK", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}
