package cli

import (
	"flag"
	"testing"
)

func TestBindSpecDefaults(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	flags := BindSpec(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	spec, err := flags.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 2012 || spec.Fleet.Shards != 1 || spec.Quick || spec.SkipPacket {
		t.Fatalf("default spec: %+v", spec)
	}
	if len(spec.Experiments) != 0 || len(spec.Profiles) != 0 {
		t.Fatalf("default spec selects explicitly: %+v", spec)
	}
	if spec.ResultsDir != "results" {
		t.Fatalf("default results dir: %q", spec.ResultsDir)
	}
}

func TestBindSpecFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	flags := BindSpec(fs)
	err := fs.Parse([]string{
		"-seed", "7", "-quick", "-shards", "8", "-workers", "2",
		"-only", "table3, figure*", "-whatif", "-fleet-scale", "2.5",
	})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := flags.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 7 || !spec.Quick || spec.Fleet.Shards != 8 || spec.Fleet.Workers != 2 {
		t.Fatalf("spec: %+v", spec)
	}
	// -whatif and -fleet-scale join the explicit selection (they would
	// otherwise be silently ignored alongside -only).
	want := []string{"table3", "figure*", "whatif", "fleet"}
	if len(spec.Experiments) != len(want) {
		t.Fatalf("patterns: %v, want %v", spec.Experiments, want)
	}
	for i := range want {
		if spec.Experiments[i] != want[i] {
			t.Fatalf("patterns: %v, want %v", spec.Experiments, want)
		}
	}
	if len(spec.Profiles) == 0 {
		t.Fatal("-whatif did not resolve the default profile catalogue")
	}
	if spec.FleetScale != 2.5 {
		t.Fatalf("fleet scale: %g", spec.FleetScale)
	}
}

func TestBindSpecOnlyComposesWithLabFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	flags := BindSpec(fs)
	if err := fs.Parse([]string{"-only", "table3", "-whatif", "-fleet-scale", "10"}); err != nil {
		t.Fatal(err)
	}
	spec, err := flags.Spec()
	if err != nil {
		t.Fatal(err)
	}
	// An explicit -only selection suppresses the Spec's opt-in defaulting,
	// so the lab flags must have joined the patterns explicitly.
	want := []string{"table3", "whatif", "fleet"}
	if len(spec.Experiments) != len(want) {
		t.Fatalf("patterns: %v, want %v", spec.Experiments, want)
	}
	for i := range want {
		if spec.Experiments[i] != want[i] {
			t.Fatalf("patterns: %v, want %v", spec.Experiments, want)
		}
	}
}

func TestBindSpecExplicitProfilesWithoutWhatifFlag(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	flags := BindSpec(fs)
	// -profiles alongside -only whatif must be honored even without the
	// -whatif flag (historically it was silently ignored).
	if err := fs.Parse([]string{"-only", "whatif", "-profiles", "dropbox-1.2.52,no-dedup"}); err != nil {
		t.Fatal(err)
	}
	spec, err := flags.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Profiles) != 2 {
		t.Fatalf("explicit -profiles ignored: %d profiles", len(spec.Profiles))
	}
}

func TestBindSpecBadProfiles(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	flags := BindSpec(fs)
	if err := fs.Parse([]string{"-whatif", "-profiles", "no-such-profile"}); err != nil {
		t.Fatal(err)
	}
	if _, err := flags.Spec(); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestVantagePoint(t *testing.T) {
	for _, name := range VantageNames() {
		cfg, err := VantagePoint(name, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.TotalIPs == 0 {
			t.Fatalf("%s: empty population", name)
		}
	}
	if _, err := VantagePoint("campus9", 1); err == nil {
		t.Fatal("unknown vantage point accepted")
	}
}

func TestMatcher(t *testing.T) {
	m := Matcher("serialize/*,fleet")
	for name, want := range map[string]bool{
		"serialize/csv":      true,
		"serialize/binary":   true,
		"fleet/home1-8shard": true,
		"generate/home1":     false,
	} {
		if m(name) != want {
			t.Errorf("Matcher(%q) = %v, want %v", name, m(name), want)
		}
	}
	all := Matcher("")
	if !all("anything") {
		t.Error("empty matcher must match everything")
	}
}

func TestSplitPatterns(t *testing.T) {
	got := SplitPatterns(" a, ,b ,")
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("SplitPatterns = %v", got)
	}
}
