// Package classify implements the measurement methodology of the paper:
// traffic classification by TLS certificate / DNS name (Sec. 3.1 and
// Table 1), the store-vs-retrieve tagging function f(u) of Appendix A.2,
// chunk-count estimation from PSH flags (Appendix A.3), duration and
// throughput accounting (Appendix A.4), notification-based session and
// device reconstruction (Sec. 2.3.1), and the user-group heuristics of
// Table 5.
package classify

import (
	"sort"
	"strings"
	"time"

	"insidedropbox/internal/dnssim"
	"insidedropbox/internal/traces"
	"insidedropbox/internal/wire"
)

// Provider is a cloud-storage provider (Fig. 2) or competing service.
type Provider int

// Providers under comparison.
const (
	ProvUnknown Provider = iota
	ProvDropbox
	ProvICloud
	ProvSkyDrive
	ProvGoogleDrive
	ProvOtherCloud // SugarSync, Box.com, UbuntuOne, ...
	ProvYouTube
)

func (p Provider) String() string {
	switch p {
	case ProvDropbox:
		return "Dropbox"
	case ProvICloud:
		return "iCloud"
	case ProvSkyDrive:
		return "SkyDrive"
	case ProvGoogleDrive:
		return "Google Drive"
	case ProvOtherCloud:
		return "Others"
	case ProvYouTube:
		return "YouTube"
	default:
		return "Unknown"
	}
}

// Certificate names used to classify flows (the probe extracts these via
// DPI; the workload generator stamps them on synthesized flows).
const (
	CertDropbox     = "*.dropbox.com"
	CertICloud      = "*.icloud.com"
	CertSkyDrive    = "*.livefilestore.com"
	CertGoogleDrive = "drive.google.com"
	CertSugarSync   = "*.sugarsync.com"
	CertBox         = "*.box.com"
	CertUbuntuOne   = "one.ubuntu.com"
	CertYouTube     = "*.youtube.com"
)

// ProviderOf classifies a flow by TLS certificate, SNI, or FQDN. Cleartext
// notification flows carry no TLS name but are identified by their payload
// (a parsed host_int) — which is how Campus 2's devices remain countable
// without DNS visibility.
func ProviderOf(r *traces.FlowRecord) Provider {
	if r.NotifyHost != 0 {
		return ProvDropbox
	}
	for _, name := range []string{r.CertName, r.SNI, r.FQDN} {
		if name == "" {
			continue
		}
		switch {
		case name == CertDropbox || strings.HasSuffix(name, ".dropbox.com"):
			return ProvDropbox
		case name == CertICloud || strings.HasSuffix(name, ".icloud.com"):
			return ProvICloud
		case name == CertSkyDrive || strings.HasSuffix(name, ".livefilestore.com"):
			return ProvSkyDrive
		case name == CertGoogleDrive || strings.HasSuffix(name, "drive.google.com"):
			return ProvGoogleDrive
		case name == CertSugarSync || name == CertBox || name == CertUbuntuOne ||
			strings.HasSuffix(name, ".sugarsync.com") || strings.HasSuffix(name, ".box.com") ||
			strings.HasSuffix(name, "one.ubuntu.com"):
			return ProvOtherCloud
		case name == CertYouTube || strings.HasSuffix(name, ".youtube.com"):
			return ProvYouTube
		}
	}
	return ProvUnknown
}

// DropboxService maps a Dropbox flow to its server group (Fig. 4). The
// FQDN is preferred; without DNS (Campus 2) the SNI substitutes; a bare
// *.dropbox.com certificate on port 80 is the notification service.
func DropboxService(r *traces.FlowRecord) dnssim.Service {
	if svc := dnssim.Classify(r.FQDN); svc != dnssim.SvcUnknown {
		return svc
	}
	if svc := dnssim.Classify(r.SNI); svc != dnssim.SvcUnknown {
		return svc
	}
	if r.ServerPort == 80 && r.NotifyHost != 0 {
		return dnssim.SvcNotify
	}
	return dnssim.SvcUnknown
}

// SSL handshake byte constants of Appendix A.2.
const (
	SSLClientHandshake = 294
	SSLServerHandshake = 4103
)

// F is the store/retrieve boundary of Appendix A.2:
// f(u) = 0.67(u-294) + 4103, u = uploaded bytes.
func F(u float64) float64 { return 0.67*(u-SSLClientHandshake) + SSLServerHandshake }

// Direction tags a storage flow.
type Direction int

// Storage flow directions.
const (
	DirStore Direction = iota
	DirRetrieve
)

func (d Direction) String() string {
	if d == DirStore {
		return "store"
	}
	return "retrieve"
}

// TagStorage labels a storage flow store or retrieve by comparing the
// downloaded bytes against f(uploaded).
func TagStorage(r *traces.FlowRecord) Direction {
	if float64(r.BytesDown) > F(float64(r.BytesUp)) {
		return DirRetrieve
	}
	return DirStore
}

// Payload returns the transferred payload net of typical SSL handshake
// overhead for the tagged direction, floored at zero.
func Payload(r *traces.FlowRecord, d Direction) int64 {
	var v int64
	if d == DirStore {
		v = r.BytesUp - SSLClientHandshake
	} else {
		v = r.BytesDown - SSLServerHandshake
	}
	if v < 0 {
		v = 0
	}
	return v
}

// EstimateChunks recovers the chunk count from PSH flags in the reverse
// direction of the transfer (Appendix A.3): store flows count server PSH
// segments (c = s-3 when the server passively closed, else s-2); retrieve
// flows count client PSH segments (c = (s-2)/2).
func EstimateChunks(r *traces.FlowRecord, d Direction) int {
	var c int
	if d == DirStore {
		s := r.PSHDown
		if r.ServerClosed {
			c = s - 3
		} else {
			c = s - 2
		}
	} else {
		c = (r.PSHUp - 2) / 2
	}
	if c < 1 {
		c = 1
	}
	if c > 100 {
		c = 100
	}
	return c
}

// TransferDuration computes ∆t as in Appendix A.4: from the first SYN to
// the last payload packet in the transfer direction; retrieve flows whose
// server kept talking 60 s past the client (idle-close alert) are
// compensated.
func TransferDuration(r *traces.FlowRecord, d Direction) time.Duration {
	var end time.Duration
	if d == DirStore {
		end = r.LastPayloadUp
	} else {
		end = r.LastPayloadDown
		if r.LastPayloadDown-r.LastPayloadUp > 60*time.Second {
			end -= 60 * time.Second
		}
	}
	dur := end - r.FirstPacket
	if dur <= 0 {
		dur = time.Millisecond
	}
	return dur
}

// Throughput returns payload bits per second for the tagged direction.
func Throughput(r *traces.FlowRecord, d Direction) float64 {
	payload := Payload(r, d)
	dur := TransferDuration(r, d).Seconds()
	if dur <= 0 {
		return 0
	}
	return float64(payload) * 8 / dur
}

// Session is one reconstructed device session (chained notification flows).
type Session struct {
	Host       uint64
	Client     wire.IP
	Start, End time.Duration
	Namespaces int // last observed namespace count
}

// Duration returns the session length.
func (s Session) Duration() time.Duration { return s.End - s.Start }

// Sessions reconstructs device sessions from notification flows: flows of
// the same host_int chained with gaps below maxGap merge into one session
// (notification connections are immediately re-established after network
// equipment kills them, Sec. 5.5).
func Sessions(records []*traces.FlowRecord, maxGap time.Duration) []Session {
	byHost := make(map[uint64][]*traces.FlowRecord)
	for _, r := range records {
		if r.NotifyHost != 0 {
			byHost[r.NotifyHost] = append(byHost[r.NotifyHost], r)
		}
	}
	var out []Session
	for host, flows := range byHost {
		sort.Slice(flows, func(i, j int) bool { return flows[i].FirstPacket < flows[j].FirstPacket })
		cur := Session{Host: host, Client: flows[0].Client,
			Start: flows[0].FirstPacket, End: flows[0].LastPacket,
			Namespaces: len(flows[0].NotifyNamespaces)}
		for _, f := range flows[1:] {
			if f.FirstPacket-cur.End <= maxGap {
				if f.LastPacket > cur.End {
					cur.End = f.LastPacket
				}
				if n := len(f.NotifyNamespaces); n > 0 {
					cur.Namespaces = n
				}
			} else {
				out = append(out, cur)
				cur = Session{Host: host, Client: f.Client,
					Start: f.FirstPacket, End: f.LastPacket,
					Namespaces: len(f.NotifyNamespaces)}
			}
		}
		out = append(out, cur)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// DevicesPerIP counts distinct host_ints seen behind each client address
// (Fig. 12: devices per household).
func DevicesPerIP(records []*traces.FlowRecord) map[wire.IP]int {
	seen := make(map[wire.IP]map[uint64]struct{})
	for _, r := range records {
		if r.NotifyHost == 0 {
			continue
		}
		set := seen[r.Client]
		if set == nil {
			set = make(map[uint64]struct{})
			seen[r.Client] = set
		}
		set[r.NotifyHost] = struct{}{}
	}
	out := make(map[wire.IP]int, len(seen))
	for ip, set := range seen {
		out[ip] = len(set)
	}
	return out
}

// NamespacesPerDevice returns the last observed namespace count per device
// (Fig. 13 uses the final observation since counts trend upward).
func NamespacesPerDevice(records []*traces.FlowRecord) map[uint64]int {
	last := make(map[uint64]time.Duration)
	out := make(map[uint64]int)
	for _, r := range records {
		if r.NotifyHost == 0 || len(r.NotifyNamespaces) == 0 {
			continue
		}
		if r.LastPacket >= last[r.NotifyHost] {
			last[r.NotifyHost] = r.LastPacket
			out[r.NotifyHost] = len(r.NotifyNamespaces)
		}
	}
	return out
}

// UserGroup is the Table 5 behaviour class of a household.
type UserGroup int

// User groups.
const (
	GroupOccasional UserGroup = iota
	GroupUploadOnly
	GroupDownloadOnly
	GroupHeavy
)

func (g UserGroup) String() string {
	switch g {
	case GroupOccasional:
		return "Occasional"
	case GroupUploadOnly:
		return "Upload-only"
	case GroupDownloadOnly:
		return "Download-only"
	default:
		return "Heavy"
	}
}

// GroupOf applies the Table 5 heuristics to a household's total store and
// retrieve volumes: under 10 kB both ways is occasional; more than three
// orders of magnitude of imbalance is upload- or download-only; the rest
// are heavy.
func GroupOf(storeBytes, retrieveBytes int64) UserGroup {
	const small = 10 * 1000
	if storeBytes < small && retrieveBytes < small {
		return GroupOccasional
	}
	s := float64(storeBytes)
	r := float64(retrieveBytes)
	if s < 1 {
		s = 1
	}
	if r < 1 {
		r = 1
	}
	switch {
	case s/r >= 1000:
		return GroupUploadOnly
	case r/s >= 1000:
		return GroupDownloadOnly
	default:
		return GroupHeavy
	}
}
