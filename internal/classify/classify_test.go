package classify

import (
	"testing"
	"time"

	"insidedropbox/internal/dnssim"
	"insidedropbox/internal/traces"
	"insidedropbox/internal/wire"
)

func TestProviderOf(t *testing.T) {
	cases := []struct {
		cert, sni, fqdn string
		want            Provider
	}{
		{CertDropbox, "", "", ProvDropbox},
		{"", "dl-client7.dropbox.com", "", ProvDropbox},
		{CertICloud, "", "", ProvICloud},
		{CertSkyDrive, "", "", ProvSkyDrive},
		{CertGoogleDrive, "", "", ProvGoogleDrive},
		{CertSugarSync, "", "", ProvOtherCloud},
		{CertBox, "", "", ProvOtherCloud},
		{CertYouTube, "", "", ProvYouTube},
		{"", "", "", ProvUnknown},
		{"*.example.com", "", "", ProvUnknown},
	}
	for _, c := range cases {
		r := &traces.FlowRecord{CertName: c.cert, SNI: c.sni, FQDN: c.fqdn}
		if got := ProviderOf(r); got != c.want {
			t.Errorf("ProviderOf(%q,%q,%q) = %v, want %v", c.cert, c.sni, c.fqdn, got, c.want)
		}
	}
}

func TestDropboxServiceFallbacks(t *testing.T) {
	r := &traces.FlowRecord{FQDN: "dl-client3.dropbox.com"}
	if got := DropboxService(r); got != dnssim.SvcClientStorage {
		t.Fatalf("by FQDN = %v", got)
	}
	// No DNS (Campus 2): SNI substitutes.
	r = &traces.FlowRecord{SNI: "client-lb.dropbox.com"}
	if got := DropboxService(r); got != dnssim.SvcClientControl {
		t.Fatalf("by SNI = %v", got)
	}
	// Cleartext notify flow: port 80 + extracted host_int.
	r = &traces.FlowRecord{ServerPort: 80, NotifyHost: 42}
	if got := DropboxService(r); got != dnssim.SvcNotify {
		t.Fatalf("notify = %v", got)
	}
}

func TestFBoundary(t *testing.T) {
	// At u=294 (pure client handshake), f = 4103: a flow downloading more
	// than the server handshake is a retrieve.
	if F(294) != 4103 {
		t.Fatalf("F(294) = %f", F(294))
	}
	store := &traces.FlowRecord{BytesUp: 1_000_000, BytesDown: 6_000}
	if TagStorage(store) != DirStore {
		t.Fatal("upload-heavy flow tagged retrieve")
	}
	retr := &traces.FlowRecord{BytesUp: 2_000, BytesDown: 1_000_000}
	if TagStorage(retr) != DirRetrieve {
		t.Fatal("download-heavy flow tagged store")
	}
}

func TestPayloadSubtractsHandshake(t *testing.T) {
	r := &traces.FlowRecord{BytesUp: 10_294, BytesDown: 14_103}
	if got := Payload(r, DirStore); got != 10_000 {
		t.Fatalf("store payload = %d", got)
	}
	if got := Payload(r, DirRetrieve); got != 10_000 {
		t.Fatalf("retrieve payload = %d", got)
	}
	tiny := &traces.FlowRecord{BytesUp: 100, BytesDown: 100}
	if Payload(tiny, DirStore) != 0 || Payload(tiny, DirRetrieve) != 0 {
		t.Fatal("payload must floor at zero")
	}
}

func TestEstimateChunks(t *testing.T) {
	// Store flow, server passively closed: c = s - 3.
	r := &traces.FlowRecord{PSHDown: 8, ServerClosed: true}
	if got := EstimateChunks(r, DirStore); got != 5 {
		t.Fatalf("store chunks = %d, want 5", got)
	}
	// Client closed first: c = s - 2.
	r = &traces.FlowRecord{PSHDown: 8}
	if got := EstimateChunks(r, DirStore); got != 6 {
		t.Fatalf("store chunks = %d, want 6", got)
	}
	// Retrieve: c = (s-2)/2.
	r = &traces.FlowRecord{PSHUp: 12}
	if got := EstimateChunks(r, DirRetrieve); got != 5 {
		t.Fatalf("retrieve chunks = %d, want 5", got)
	}
	// Clamping.
	if EstimateChunks(&traces.FlowRecord{PSHDown: 1}, DirStore) != 1 {
		t.Fatal("clamp low")
	}
	if EstimateChunks(&traces.FlowRecord{PSHDown: 300, ServerClosed: true}, DirStore) != 100 {
		t.Fatal("clamp high")
	}
}

func TestTransferDuration(t *testing.T) {
	r := &traces.FlowRecord{
		FirstPacket:     time.Second,
		LastPayloadUp:   11 * time.Second,
		LastPayloadDown: 9 * time.Second,
		LastPacket:      80 * time.Second,
	}
	if got := TransferDuration(r, DirStore); got != 10*time.Second {
		t.Fatalf("store duration = %v", got)
	}
	// Retrieve with the 60s idle-close compensation.
	r = &traces.FlowRecord{
		FirstPacket:     time.Second,
		LastPayloadUp:   3 * time.Second,
		LastPayloadDown: 70 * time.Second, // server alert 67s after client
	}
	if got := TransferDuration(r, DirRetrieve); got != 9*time.Second {
		t.Fatalf("retrieve duration = %v", got)
	}
	// No compensation under 60s.
	r.LastPayloadDown = 40 * time.Second
	if got := TransferDuration(r, DirRetrieve); got != 39*time.Second {
		t.Fatalf("retrieve duration = %v", got)
	}
}

func TestThroughput(t *testing.T) {
	r := &traces.FlowRecord{
		BytesUp:       1_000_294,
		FirstPacket:   0,
		LastPayloadUp: 8 * time.Second,
	}
	got := Throughput(r, DirStore)
	if got < 0.99e6 || got > 1.01e6 {
		t.Fatalf("throughput = %f, want 1 Mbit/s", got)
	}
}

func TestSessionsMergeChainedFlows(t *testing.T) {
	ip := wire.MakeIP(10, 0, 0, 1)
	recs := []*traces.FlowRecord{
		{NotifyHost: 1, Client: ip, FirstPacket: 0, LastPacket: 10 * time.Minute,
			NotifyNamespaces: []uint32{1}},
		// NAT killed the connection; re-established 30s later.
		{NotifyHost: 1, Client: ip, FirstPacket: 10*time.Minute + 30*time.Second,
			LastPacket: 30 * time.Minute, NotifyNamespaces: []uint32{1, 2}},
		// A separate session hours later.
		{NotifyHost: 1, Client: ip, FirstPacket: 5 * time.Hour, LastPacket: 6 * time.Hour,
			NotifyNamespaces: []uint32{1, 2}},
		// Another device.
		{NotifyHost: 2, Client: ip, FirstPacket: time.Hour, LastPacket: 2 * time.Hour,
			NotifyNamespaces: []uint32{7}},
	}
	sessions := Sessions(recs, 5*time.Minute)
	if len(sessions) != 3 {
		t.Fatalf("sessions = %d, want 3", len(sessions))
	}
	if sessions[0].Duration() != 30*time.Minute {
		t.Fatalf("merged session duration = %v", sessions[0].Duration())
	}
	if sessions[0].Namespaces != 2 {
		t.Fatalf("merged session namespaces = %d", sessions[0].Namespaces)
	}
}

func TestDevicesPerIP(t *testing.T) {
	ip1 := wire.MakeIP(10, 0, 0, 1)
	ip2 := wire.MakeIP(10, 0, 0, 2)
	recs := []*traces.FlowRecord{
		{NotifyHost: 1, Client: ip1},
		{NotifyHost: 1, Client: ip1},
		{NotifyHost: 2, Client: ip1},
		{NotifyHost: 3, Client: ip2},
		{NotifyHost: 0, Client: ip2}, // not a notify flow
	}
	got := DevicesPerIP(recs)
	if got[ip1] != 2 || got[ip2] != 1 {
		t.Fatalf("devices = %v", got)
	}
}

func TestNamespacesPerDeviceUsesLast(t *testing.T) {
	recs := []*traces.FlowRecord{
		{NotifyHost: 1, LastPacket: time.Hour, NotifyNamespaces: []uint32{1}},
		{NotifyHost: 1, LastPacket: 2 * time.Hour, NotifyNamespaces: []uint32{1, 2, 3}},
	}
	got := NamespacesPerDevice(recs)
	if got[1] != 3 {
		t.Fatalf("namespaces = %d, want last observation 3", got[1])
	}
}

func TestGroupOf(t *testing.T) {
	cases := []struct {
		store, retr int64
		want        UserGroup
	}{
		{0, 0, GroupOccasional},
		{5_000, 9_000, GroupOccasional},
		{1e9, 1e6, GroupUploadOnly},
		{1e6, 1e9, GroupDownloadOnly},
		{1e9, 0, GroupUploadOnly},
		{0, 1e9, GroupDownloadOnly},
		{1e8, 1e8, GroupHeavy},
		{50_000, 20_000, GroupHeavy},
	}
	for _, c := range cases {
		if got := GroupOf(c.store, c.retr); got != c.want {
			t.Errorf("GroupOf(%d,%d) = %v, want %v", c.store, c.retr, got, c.want)
		}
	}
}

func TestGroupStrings(t *testing.T) {
	for g := GroupOccasional; g <= GroupHeavy; g++ {
		if g.String() == "" {
			t.Fatal("empty group name")
		}
	}
	if DirStore.String() != "store" || DirRetrieve.String() != "retrieve" {
		t.Fatal("direction names")
	}
	for p := ProvUnknown; p <= ProvYouTube; p++ {
		if p.String() == "" {
			t.Fatal("empty provider name")
		}
	}
}
