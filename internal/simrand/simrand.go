// Package simrand provides the seeded random sources and statistical
// distributions used by the workload generators and the network emulator.
//
// All randomness in a simulation flows from a single root seed so that every
// experiment is reproducible. Independent subsystems derive child sources via
// Fork, which hashes the parent stream's name, keeping streams decorrelated
// without global coordination.
package simrand

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Source is a deterministic random stream. It wraps math/rand with the
// distribution helpers the simulator needs.
type Source struct {
	rng  *rand.Rand
	name string
}

// New returns a source seeded by seed, with a name used in diagnostics and
// when deriving child streams.
func New(seed int64, name string) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed)), name: name}
}

// Fork derives an independent child stream. The child seed mixes the parent
// stream deterministically with the child name, so two children with
// different names never share a sequence.
func (s *Source) Fork(name string) *Source {
	h := fnv64(s.name + "/" + name)
	seed := int64(h) ^ s.rng.Int63()
	return New(seed, s.name+"/"+name)
}

// DeriveSeed mixes a root seed with a stream name into an independent child
// seed, for subsystems (such as fleet shards) that need decorrelated
// deterministic streams without threading a shared Source through. The
// finalizer is splitmix64's, so nearby seeds and names land far apart.
func DeriveSeed(seed int64, name string) int64 {
	z := uint64(seed) + fnv64(name)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// fnv64 is the FNV-1a hash, inlined to avoid pulling hash/fnv allocations
// into hot paths.
func fnv64(str string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(str); i++ {
		h ^= uint64(str[i])
		h *= prime
	}
	return h
}

// Name returns the stream name.
func (s *Source) Name() string { return s.name }

// Float64 returns a uniform value in [0,1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform int in [0,n). n must be positive.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Int63n returns a uniform int64 in [0,n).
func (s *Source) Int63n(n int64) int64 { return s.rng.Int63n(n) }

// Uint64 returns a uniform 64-bit value.
func (s *Source) Uint64() uint64 { return s.rng.Uint64() }

// Perm returns a random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.rng.Float64() < p }

// Uniform returns a uniform value in [lo,hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// Normal returns a normally distributed value.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.rng.NormFloat64()
}

// LogNormal returns exp(N(mu, sigma)). mu and sigma are the parameters of
// the underlying normal, i.e. the median is exp(mu).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// LogNormalMedian parameterizes a lognormal by its median and sigma, the
// form most convenient when calibrating against published medians.
func (s *Source) LogNormalMedian(median, sigma float64) float64 {
	return s.LogNormal(math.Log(median), sigma)
}

// Exponential returns an exponentially distributed value with the given mean.
func (s *Source) Exponential(mean float64) float64 {
	return s.rng.ExpFloat64() * mean
}

// Pareto returns a Pareto(xm, alpha) value: heavy-tailed with minimum xm.
func (s *Source) Pareto(xm, alpha float64) float64 {
	u := s.rng.Float64()
	for u == 0 {
		u = s.rng.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// BoundedPareto returns a Pareto(xm, alpha) value truncated to [xm, cap] by
// resampling via inverse transform on the truncated CDF.
func (s *Source) BoundedPareto(xm, alpha, cap float64) float64 {
	if cap <= xm {
		return xm
	}
	u := s.rng.Float64()
	la := math.Pow(xm, alpha)
	ha := math.Pow(cap, alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	return math.Min(math.Max(x, xm), cap)
}

// Geometric returns the number of failures before the first success for a
// Bernoulli(p) process; mean (1-p)/p.
func (s *Source) Geometric(p float64) int {
	if p <= 0 {
		panic("simrand: geometric p must be positive")
	}
	if p >= 1 {
		return 0
	}
	u := s.rng.Float64()
	for u == 0 {
		u = s.rng.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and normal approximation for large ones.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		v := s.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf draws from a Zipf distribution over [0,n) with exponent alpha >= 1.
type Zipf struct {
	cdf []float64
	src *Source
}

// NewZipf precomputes the CDF table for n ranks with the given exponent.
func NewZipf(src *Source, n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("simrand: zipf n must be positive")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, src: src}
}

// Draw returns a rank in [0,n), rank 0 being the most popular.
func (z *Zipf) Draw() int {
	u := z.src.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// WeightedChoice selects among options with the given weights.
type WeightedChoice struct {
	cum []float64
	src *Source
}

// NewWeightedChoice builds a sampler over len(weights) options. Weights must
// be non-negative with a positive sum.
func NewWeightedChoice(src *Source, weights []float64) *WeightedChoice {
	cum := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("simrand: negative weight %f at %d", w, i))
		}
		sum += w
		cum[i] = sum
	}
	if sum <= 0 {
		panic("simrand: weights sum to zero")
	}
	for i := range cum {
		cum[i] /= sum
	}
	return &WeightedChoice{cum: cum, src: src}
}

// Draw returns the index of the chosen option.
func (w *WeightedChoice) Draw() int {
	u := w.src.Float64()
	return sort.SearchFloat64s(w.cum, u)
}

// Mixture draws from one of several samplers according to weights — the
// generic tool for the multi-modal size distributions in the paper.
type Mixture struct {
	choice *WeightedChoice
	parts  []func() float64
}

// NewMixture pairs weights with component samplers.
func NewMixture(src *Source, weights []float64, parts ...func() float64) *Mixture {
	if len(weights) != len(parts) {
		panic("simrand: mixture weights/parts length mismatch")
	}
	return &Mixture{choice: NewWeightedChoice(src, weights), parts: parts}
}

// Draw samples a component then a value from it.
func (m *Mixture) Draw() float64 { return m.parts[m.choice.Draw()]() }
