package simrand

import (
	"math"
	"time"
)

// DiurnalProfile is a 24-slot intensity profile (one slot per hour of day)
// used to modulate arrival processes. Values are relative intensities; the
// profile is normalized so the slots sum to 1.
type DiurnalProfile [24]float64

// Normalize scales the profile so its slots sum to 1. A zero profile becomes
// uniform.
func (p DiurnalProfile) Normalize() DiurnalProfile {
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if sum <= 0 {
		for i := range p {
			p[i] = 1.0 / 24
		}
		return p
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// At returns the normalized intensity for the hour-of-day containing t,
// where t is an offset from local midnight of day 0.
func (p DiurnalProfile) At(t time.Duration) float64 {
	h := int(t/time.Hour) % 24
	if h < 0 {
		h += 24
	}
	return p[h]
}

// Peak returns the index of the busiest hour.
func (p DiurnalProfile) Peak() int {
	best := 0
	for i, v := range p {
		if v > p[best] {
			best = i
		}
	}
	return best
}

// OfficeHours returns a profile concentrated in 8h-19h with a lunch dip,
// modeling the wired-workstation population of Campus 1.
func OfficeHours() DiurnalProfile {
	var p DiurnalProfile
	for h := 0; h < 24; h++ {
		switch {
		case h >= 9 && h <= 12:
			p[h] = 1.0
		case h == 13:
			p[h] = 0.7 // lunch dip
		case h >= 14 && h <= 17:
			p[h] = 0.95
		case h == 8 || h == 18:
			p[h] = 0.5
		case h == 7 || h == 19:
			p[h] = 0.15
		case h >= 20 && h <= 22:
			p[h] = 0.05
		default:
			p[h] = 0.01
		}
	}
	return p.Normalize()
}

// CampusRoaming returns a flatter daytime profile modeling the wireless and
// student-house population of Campus 2 (transit through access points all
// day, activity stretching into the night).
func CampusRoaming() DiurnalProfile {
	var p DiurnalProfile
	for h := 0; h < 24; h++ {
		switch {
		case h >= 9 && h <= 18:
			p[h] = 0.9
		case h >= 19 && h <= 23:
			p[h] = 0.55
		case h == 8:
			p[h] = 0.45
		case h == 7:
			p[h] = 0.2
		case h == 0 || h == 1:
			p[h] = 0.2
		default:
			p[h] = 0.05
		}
	}
	return p.Normalize()
}

// HomeEvenings returns the residential profile: a small morning bump, low
// daytime activity, and a strong evening peak, as in the Home 1/2 curves of
// Fig. 15.
func HomeEvenings() DiurnalProfile {
	var p DiurnalProfile
	for h := 0; h < 24; h++ {
		switch {
		case h >= 7 && h <= 9:
			p[h] = 0.55 // morning bump before work
		case h >= 10 && h <= 16:
			p[h] = 0.3
		case h >= 17 && h <= 19:
			p[h] = 0.7
		case h >= 20 && h <= 22:
			p[h] = 1.0 // evening peak
		case h == 23:
			p[h] = 0.6
		case h == 0:
			p[h] = 0.3
		default:
			p[h] = 0.08
		}
	}
	return p.Normalize()
}

// SampleHour draws an hour-of-day according to the profile.
func (p DiurnalProfile) SampleHour(src *Source) int {
	u := src.Float64()
	cum := 0.0
	for h, v := range p {
		cum += v
		if u < cum {
			return h
		}
	}
	return 23
}

// SampleTimeOfDay draws an instant within the day: the hour from the profile
// and a uniform offset within that hour.
func (p DiurnalProfile) SampleTimeOfDay(src *Source) time.Duration {
	h := p.SampleHour(src)
	return time.Duration(h)*time.Hour + time.Duration(src.Float64()*float64(time.Hour))
}

// WeekdayFactor modulates intensity by day-of-week (0 = Monday). Campus
// traffic nearly vanishes on weekends; home traffic does not.
type WeekdayFactor [7]float64

// CampusWeek returns the strong weekday seasonality of campus networks.
func CampusWeek() WeekdayFactor { return WeekdayFactor{1, 1, 1, 0.97, 0.9, 0.18, 0.12} }

// HomeWeek returns the nearly flat weekly profile of home networks.
func HomeWeek() WeekdayFactor { return WeekdayFactor{1, 0.98, 0.97, 0.98, 1, 0.95, 0.9} }

// At returns the factor for the day containing t (day 0 = Monday).
func (w WeekdayFactor) At(t time.Duration) float64 {
	d := int(t/(24*time.Hour)) % 7
	if d < 0 {
		d += 7
	}
	return w[d]
}

// HolidayCalendar marks whole days (by index from the campaign start) as
// holidays with a damping factor, reproducing the April/May holiday dips
// visible in Figs. 3 and 14.
type HolidayCalendar struct {
	factor map[int]float64
}

// NewHolidayCalendar returns an empty calendar.
func NewHolidayCalendar() *HolidayCalendar {
	return &HolidayCalendar{factor: make(map[int]float64)}
}

// Mark sets the damping factor for a day index (0-based from campaign start).
func (h *HolidayCalendar) Mark(day int, factor float64) { h.factor[day] = factor }

// MarkRange marks [from,to] inclusive.
func (h *HolidayCalendar) MarkRange(from, to int, factor float64) {
	for d := from; d <= to; d++ {
		h.Mark(d, factor)
	}
}

// At returns the factor for the day containing t (1.0 when unmarked).
func (h *HolidayCalendar) At(t time.Duration) float64 {
	if h == nil {
		return 1
	}
	d := int(t / (24 * time.Hour))
	if f, ok := h.factor[d]; ok {
		return f
	}
	return 1
}

// ThinnedPoissonProcess generates event times on [0, horizon) for a
// non-homogeneous Poisson process whose rate is baseRate/day modulated by the
// diurnal profile, weekday factors and holiday calendar. It uses thinning
// against the profile's peak intensity.
func ThinnedPoissonProcess(src *Source, horizon time.Duration, perDay float64,
	prof DiurnalProfile, week WeekdayFactor, holidays *HolidayCalendar) []time.Duration {

	peak := 0.0
	for _, v := range prof {
		if v > peak {
			peak = v
		}
	}
	if peak <= 0 || perDay <= 0 {
		return nil
	}
	// Hourly peak rate: events/day * peak share-per-hour.
	peakPerHour := perDay * peak
	var out []time.Duration
	t := time.Duration(0)
	for t < horizon {
		// Exponential gap at the peak rate.
		gap := time.Duration(src.Exponential(1.0/peakPerHour) * float64(time.Hour))
		if gap <= 0 {
			gap = time.Nanosecond
		}
		t += gap
		if t >= horizon {
			break
		}
		accept := prof.At(t) / peak * week.At(t) * holidays.At(t)
		if src.Float64() < accept {
			out = append(out, t)
		}
	}
	return out
}

// Jitter returns d scaled by a uniform factor in [1-f, 1+f].
func (s *Source) Jitter(d time.Duration, f float64) time.Duration {
	if f <= 0 {
		return d
	}
	scale := 1 + s.Uniform(-f, f)
	v := float64(d) * scale
	if v < 0 {
		v = 0
	}
	return time.Duration(math.Round(v))
}
