package simrand

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDeterminism(t *testing.T) {
	a := New(42, "root")
	b := New(42, "root")
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	root := New(7, "root")
	a := root.Fork("a")
	b := root.Fork("b")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("forked streams look correlated: %d identical draws", same)
	}
}

func TestForkDeterministic(t *testing.T) {
	a := New(7, "root").Fork("child")
	b := New(7, "root").Fork("child")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("fork is not reproducible")
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	src := New(1, "t")
	const n = 20000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = src.LogNormalMedian(1000, 1.5)
	}
	// Median of samples should be near 1000.
	count := 0
	for _, v := range vals {
		if v < 1000 {
			count++
		}
	}
	frac := float64(count) / n
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("median check failed: %.3f of samples below the median", frac)
	}
}

func TestBoundedParetoRange(t *testing.T) {
	src := New(2, "t")
	for i := 0; i < 5000; i++ {
		v := src.BoundedPareto(100, 1.2, 1e6)
		if v < 100 || v > 1e6 {
			t.Fatalf("bounded pareto out of range: %f", v)
		}
	}
}

func TestBoundedParetoProperty(t *testing.T) {
	src := New(3, "t")
	f := func(seed uint32) bool {
		xm := 1 + float64(seed%1000)
		cap := xm * (2 + float64(seed%17))
		v := src.BoundedPareto(xm, 1.1, cap)
		return v >= xm && v <= cap
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricMean(t *testing.T) {
	src := New(4, "t")
	p := 0.25
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += float64(src.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p // = 3
	if math.Abs(mean-want) > 0.15 {
		t.Fatalf("geometric mean = %.3f, want ≈ %.3f", mean, want)
	}
}

func TestPoissonMean(t *testing.T) {
	src := New(5, "t")
	for _, mean := range []float64{0.5, 3, 20, 100} {
		sum := 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(src.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > mean*0.05+0.1 {
			t.Fatalf("poisson(%.1f) sample mean = %.3f", mean, got)
		}
	}
}

func TestZipfRankZeroMostPopular(t *testing.T) {
	src := New(6, "t")
	z := NewZipf(src, 100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[10] || counts[0] <= counts[50] {
		t.Fatalf("rank 0 not most popular: %d vs %d vs %d", counts[0], counts[10], counts[50])
	}
}

func TestWeightedChoice(t *testing.T) {
	src := New(7, "t")
	w := NewWeightedChoice(src, []float64{0.1, 0.0, 0.9})
	counts := make([]int, 3)
	for i := 0; i < 10000; i++ {
		counts[w.Draw()]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight option drawn %d times", counts[1])
	}
	if counts[2] < counts[0] {
		t.Fatalf("weights not respected: %v", counts)
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	src := New(8, "t")
	for _, weights := range [][]float64{{}, {0, 0}, {-1, 2}} {
		func() {
			defer func() { recover() }()
			NewWeightedChoice(src, weights)
			t.Fatalf("weights %v should panic", weights)
		}()
	}
}

func TestMixture(t *testing.T) {
	src := New(9, "t")
	m := NewMixture(src, []float64{0.5, 0.5},
		func() float64 { return 1 },
		func() float64 { return 100 },
	)
	lo, hi := 0, 0
	for i := 0; i < 1000; i++ {
		if m.Draw() == 1 {
			lo++
		} else {
			hi++
		}
	}
	if lo < 400 || hi < 400 {
		t.Fatalf("mixture unbalanced: %d/%d", lo, hi)
	}
}

func TestDiurnalNormalize(t *testing.T) {
	p := OfficeHours()
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("profile sums to %f", sum)
	}
	var zero DiurnalProfile
	u := zero.Normalize()
	if math.Abs(u[0]-1.0/24) > 1e-12 {
		t.Fatal("zero profile should normalize to uniform")
	}
}

func TestDiurnalShapes(t *testing.T) {
	office := OfficeHours()
	if pk := office.Peak(); pk < 9 || pk > 17 {
		t.Fatalf("office peak at hour %d", pk)
	}
	home := HomeEvenings()
	if pk := home.Peak(); pk < 19 || pk > 23 {
		t.Fatalf("home peak at hour %d", pk)
	}
	if office.At(3*time.Hour) > office.At(10*time.Hour) {
		t.Fatal("office 3am busier than 10am")
	}
}

func TestSampleHourFollowsProfile(t *testing.T) {
	src := New(10, "t")
	p := HomeEvenings()
	counts := make([]int, 24)
	for i := 0; i < 20000; i++ {
		counts[p.SampleHour(src)]++
	}
	if counts[21] < counts[4] {
		t.Fatalf("9pm (%d) should outdraw 4am (%d) at home", counts[21], counts[4])
	}
}

func TestWeekdayFactor(t *testing.T) {
	w := CampusWeek()
	sat := w.At(5 * 24 * time.Hour)
	mon := w.At(0)
	if sat >= mon {
		t.Fatalf("campus saturday factor %f >= monday %f", sat, mon)
	}
}

func TestHolidayCalendar(t *testing.T) {
	h := NewHolidayCalendar()
	h.MarkRange(3, 4, 0.2)
	if h.At(2*24*time.Hour) != 1 {
		t.Fatal("unmarked day should be 1")
	}
	if h.At(3*24*time.Hour+5*time.Hour) != 0.2 {
		t.Fatal("marked day factor wrong")
	}
	var nilCal *HolidayCalendar
	if nilCal.At(0) != 1 {
		t.Fatal("nil calendar should be neutral")
	}
}

func TestThinnedPoissonProcess(t *testing.T) {
	src := New(11, "t")
	horizon := 14 * 24 * time.Hour
	events := ThinnedPoissonProcess(src, horizon, 24, CampusRoaming(), CampusWeek(), nil)
	if len(events) == 0 {
		t.Fatal("no events generated")
	}
	for i := 1; i < len(events); i++ {
		if events[i] < events[i-1] {
			t.Fatal("events out of order")
		}
		if events[i] >= horizon {
			t.Fatal("event beyond horizon")
		}
	}
	// Weekdays should see far more events than weekends on campus.
	weekday, weekend := 0, 0
	for _, e := range events {
		d := int(e/(24*time.Hour)) % 7
		if d >= 5 {
			weekend++
		} else {
			weekday++
		}
	}
	if weekend*3 > weekday {
		t.Fatalf("campus weekend events (%d) not suppressed vs weekdays (%d)", weekend, weekday)
	}
}

func TestJitter(t *testing.T) {
	src := New(12, "t")
	base := time.Second
	for i := 0; i < 1000; i++ {
		v := src.Jitter(base, 0.1)
		if v < 900*time.Millisecond || v > 1100*time.Millisecond {
			t.Fatalf("jitter out of bounds: %v", v)
		}
	}
	if src.Jitter(base, 0) != base {
		t.Fatal("zero jitter should be identity")
	}
}

func BenchmarkLogNormal(b *testing.B) {
	src := New(1, "b")
	for i := 0; i < b.N; i++ {
		_ = src.LogNormalMedian(1000, 2)
	}
}

func BenchmarkThinnedPoisson(b *testing.B) {
	src := New(1, "b")
	prof := HomeEvenings()
	week := HomeWeek()
	for i := 0; i < b.N; i++ {
		_ = ThinnedPoissonProcess(src, 24*time.Hour, 50, prof, week, nil)
	}
}
