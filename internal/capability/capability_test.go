package capability

import (
	"strings"
	"testing"

	"insidedropbox/internal/chunker"
)

func TestPresetCatalogue(t *testing.T) {
	ps := Presets()
	if len(ps) < 5 {
		t.Fatalf("presets = %d, want at least 5", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if p.Name == "" {
			t.Fatalf("preset with empty name: %+v", p)
		}
		if seen[p.Name] {
			t.Fatalf("duplicate preset name %q", p.Name)
		}
		seen[p.Name] = true
	}
	// The two historical clients lead the catalogue.
	if ps[0].Name != "dropbox-1.2.52" || ps[1].Name != "dropbox-1.4.0" {
		t.Fatalf("catalogue order = %q, %q", ps[0].Name, ps[1].Name)
	}
}

func TestDropboxPresetKnobs(t *testing.T) {
	old := DropboxV1252()
	if old.Bundling || old.CommitPipelining || !old.Dedup || !old.DeltaEncoding || !old.Compression {
		t.Fatalf("1.2.52 knobs wrong: %+v", old)
	}
	if old.ChunkLimit() != chunker.MaxChunkSize || old.IW() != 2 {
		t.Fatalf("1.2.52 defaults: chunk=%d iw=%d", old.ChunkLimit(), old.IW())
	}
	neu := DropboxV140()
	if !neu.Bundling || neu.BundleTarget() != DefaultBundleTarget || neu.IW() != 3 {
		t.Fatalf("1.4.0 knobs wrong: %+v", neu)
	}
	// 1.4.0 differs from 1.2.52 only in bundling and server tuning.
	if neu.Dedup != old.Dedup || neu.DeltaEncoding != old.DeltaEncoding ||
		neu.Compression != old.Compression || neu.ChunkLimit() != old.ChunkLimit() {
		t.Fatalf("1.4.0 drifted from 1.2.52 base: %+v vs %+v", neu, old)
	}
}

func TestZeroFieldFallbacks(t *testing.T) {
	var p Profile
	if p.ChunkLimit() != chunker.MaxChunkSize {
		t.Fatalf("zero chunk limit = %d", p.ChunkLimit())
	}
	if p.BundleTarget() != DefaultBundleTarget {
		t.Fatalf("zero bundle target = %d", p.BundleTarget())
	}
	if p.IW() != DefaultServerIW {
		t.Fatalf("zero IW = %d", p.IW())
	}
}

func TestByNameAndAliases(t *testing.T) {
	for _, name := range Names() {
		if _, ok := ByName(name); !ok {
			t.Fatalf("preset %q not resolvable by its own name", name)
		}
	}
	cases := map[string]string{
		"1.2.52":          "dropbox-1.2.52",
		"v1.4.0":          "dropbox-1.4.0",
		"Dropbox-1.4.0":   "dropbox-1.4.0",
		"dropbox_v1_2_52": "dropbox-1.2.52",
		"NoDedup":         "no-dedup",
	}
	for alias, want := range cases {
		p, ok := ByName(alias)
		if !ok || p.Name != want {
			t.Fatalf("ByName(%q) = %q, %v; want %q", alias, p.Name, ok, want)
		}
	}
	if _, ok := ByName("dropbox-9.9"); ok {
		t.Fatal("unknown profile resolved")
	}
}

func TestParseList(t *testing.T) {
	ps, err := Parse("dropbox-1.2.52, 1.4.0,no-dedup")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 || ps[1].Name != "dropbox-1.4.0" || ps[2].Name != "no-dedup" {
		t.Fatalf("parsed = %v", ps)
	}
	if _, err := Parse("dropbox-1.2.52,bogus"); err == nil {
		t.Fatal("bogus profile accepted")
	} else if !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("error does not name the bad profile: %v", err)
	}
	for _, empty := range []string{"", " ", ",,"} {
		if _, err := Parse(empty); err == nil {
			t.Fatalf("empty profile list %q accepted", empty)
		}
	}
}

func TestKeyCoversEveryKnob(t *testing.T) {
	k := BigChunks16MB().Key()
	for _, want := range []string{"big-chunks-16mb", "chunk=16777216", "bundle=true",
		"dedup=true", "delta=true", "compress=true", "pipeline=false", "iw=3"} {
		if !strings.Contains(k, want) {
			t.Fatalf("key %q missing %q", k, want)
		}
	}
}
