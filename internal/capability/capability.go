// Package capability defines pluggable client capability profiles: the
// knobs that distinguish one generation of the Dropbox sync client from
// another (or from a hypothetical client that never shipped).
//
// The paper's Sec. 6 shows that a single capability change — the v1.4.0
// chunk bundling — reshaped storage traffic fleet-wide. Historically this
// repository modelled that as a binary dropbox.Version switch hardwired
// into the client and flow-model data planes, which could only replay the
// two clients the paper observed. A Profile generalizes the switch into an
// explicit capability vector (chunk size limit, bundling batch size,
// deduplication, delta encoding, compression, commit pipelining, server
// initial window), so campaigns can ask counterfactual questions: what
// would the probe have seen if Dropbox had shipped 16 MB chunks, or
// disabled deduplication, or fully pipelined the storage protocol?
//
// Two presets — DropboxV1252 and DropboxV140 — reproduce the historical
// Version-based behaviour bit for bit (pinned by regression tests); the
// remaining presets are the hypothetical laboratory. experiments.RunWhatIf
// runs the same fleet population under several profiles and tabulates the
// deltas versus a baseline.
//
// Determinism contract extension: the profile is part of the
// reproducibility key. (seed, population config, shard count, profile)
// fully determines every generated record; profiles that alter operation
// structure (bundling, dedup duplicates) consume the generator's random
// stream differently and therefore draw a different — equally calibrated —
// sample, exactly as the paper's own before/after datasets do.
package capability

import (
	"fmt"
	"sort"
	"strings"

	"insidedropbox/internal/chunker"
)

// DefaultBundleTarget is how many bytes the 1.4.0 client packs into one
// store_batch / retrieve_batch operation (Sec. 2.3.2).
const DefaultBundleTarget = 4 << 20

// DefaultServerIW is the storage servers' initial congestion window before
// the 1.4.0 deployment tuned it (Appendix A.4).
const DefaultServerIW = 2

// DedupHitFrac is the fraction of transferred chunks that server-side
// deduplication spares the wire in the calibrated populations. Turning
// Dedup off re-materializes those chunks as duplicate transfers. The value
// follows the ~17% cross-user redundancy reported for personal-cloud
// corpora in follow-up benchmarking of the same services.
const DedupHitFrac = 0.17

// NoDeltaInflate multiplies an *edited* file's transfer size when delta
// encoding is disabled: instead of shipping an rsync-style delta
// (Sec. 2.1), the client re-transfers the whole modified file. Only the
// workload's edited-file draws inflate — new files and the archive tail
// were never delta-encoded and are unaffected. The factor matches the
// repository's delta-encoding example, where librsync-style deltas of
// edited documents run at roughly a quarter of the file size.
const NoDeltaInflate = 4

// Profile is one client capability vector. The zero value is not a valid
// profile; start from a preset (or DropboxV1252 for the paper's base
// client) and override fields. Fields with a 0 value fall back to the
// protocol defaults via the accessor methods, so partially-specified
// profiles stay well-formed.
type Profile struct {
	// Name identifies the profile in tables, CLI flags and metric keys.
	Name string

	// ChunkSizeLimit caps chunk size in bytes (Sec. 2.1: 4 MB). Synthetic
	// and real content alike split at this boundary; raising it trades
	// per-chunk acknowledgment overhead for coarser deduplication.
	// Zero means chunker.MaxChunkSize.
	ChunkSizeLimit int

	// Bundling enables store_batch/retrieve_batch: small chunks coalesce
	// into single storage operations (the v1.4.0 deployment, Sec. 6).
	Bundling bool

	// BundleTargetBytes is how much one bundle packs before it is cut.
	// Zero means DefaultBundleTarget. Only meaningful with Bundling.
	BundleTargetBytes int

	// Dedup enables server-side deduplication: commit_batch answers with
	// need_blocks and only missing chunks cross the wire (Sec. 2.1).
	// Disabling it re-transfers the chunks dedup would have spared.
	Dedup bool

	// DeltaEncoding enables rsync-style delta transfers of changed files
	// (Sec. 2.1). Disabling it re-uploads whole files on every change.
	DeltaEncoding bool

	// Compression enables per-chunk compression before transmission
	// (Sec. 2.1). Disabling it ships chunks at their raw size.
	Compression bool

	// CommitPipelining removes the sequential acknowledgment bottleneck of
	// Sec. 4.4.2: the client issues the next storage operation without
	// waiting for the previous OK, so operations stream back to back and
	// per-operation round trips overlap with data transfer.
	CommitPipelining bool

	// ServerIW is the storage servers' initial congestion window in
	// segments, tuned jointly with client releases (2 before 1.4.0,
	// 3 after). Zero means DefaultServerIW.
	ServerIW int
}

// ChunkLimit returns the effective chunk size limit.
func (p Profile) ChunkLimit() int {
	if p.ChunkSizeLimit <= 0 {
		return chunker.MaxChunkSize
	}
	return p.ChunkSizeLimit
}

// BundleTarget returns the effective bundle byte target.
func (p Profile) BundleTarget() int {
	if p.BundleTargetBytes <= 0 {
		return DefaultBundleTarget
	}
	return p.BundleTargetBytes
}

// IW returns the effective server initial window.
func (p Profile) IW() int {
	if p.ServerIW <= 0 {
		return DefaultServerIW
	}
	return p.ServerIW
}

// String returns the profile name.
func (p Profile) String() string { return p.Name }

// Key renders the full capability vector as a stable one-line string — the
// profile component of the reproducibility key recorded next to seeds and
// shard counts in experiment catalogues.
func (p Profile) Key() string {
	return fmt.Sprintf("%s{chunk=%d bundle=%v/%d dedup=%v delta=%v compress=%v pipeline=%v iw=%d}",
		p.Name, p.ChunkLimit(), p.Bundling, p.BundleTarget(),
		p.Dedup, p.DeltaEncoding, p.Compression, p.CommitPipelining, p.IW())
}

// DropboxV1252 is client 1.2.52 (the Mar/Apr datasets): one chunk per
// sequentially-acknowledged storage operation, 4 MB chunks, dedup, delta
// encoding and compression on, server IW 2. Reproduces the legacy
// dropbox.V1252 data plane bit for bit.
func DropboxV1252() Profile {
	return Profile{
		Name:           "dropbox-1.2.52",
		ChunkSizeLimit: chunker.MaxChunkSize,
		Dedup:          true,
		DeltaEncoding:  true,
		Compression:    true,
		ServerIW:       2,
	}
}

// DropboxV140 is client 1.4.0 (the Jun/Jul datasets): DropboxV1252 plus
// chunk bundling and the jointly-deployed server IW raise. Reproduces the
// legacy dropbox.V140 data plane bit for bit.
func DropboxV140() Profile {
	p := DropboxV1252()
	p.Name = "dropbox-1.4.0"
	p.Bundling = true
	p.BundleTargetBytes = DefaultBundleTarget
	p.ServerIW = 3
	return p
}

// NoDedup is the 1.4.0 client with server-side deduplication disabled:
// every chunk crosses the wire, including the ~17% dedup used to spare.
func NoDedup() Profile {
	p := DropboxV140()
	p.Name = "no-dedup"
	p.Dedup = false
	return p
}

// NoDelta is the 1.4.0 client without delta encoding: changed files
// re-upload whole instead of shipping rsync-style deltas.
func NoDelta() Profile {
	p := DropboxV140()
	p.Name = "no-delta"
	p.DeltaEncoding = false
	return p
}

// BigChunks16MB is the 1.4.0 client with the chunk limit raised to 16 MB
// and the bundle target raised to match: large transfers need a quarter of
// the operations, at the cost of coarser dedup and retransmission units.
func BigChunks16MB() Profile {
	p := DropboxV140()
	p.Name = "big-chunks-16mb"
	p.ChunkSizeLimit = 16 << 20
	p.BundleTargetBytes = 16 << 20
	return p
}

// FullPipeline is the 1.4.0 client with commit pipelining: storage
// operations no longer wait for per-operation acknowledgments, removing
// the duration floor of Sec. 4.4.2.
func FullPipeline() Profile {
	p := DropboxV140()
	p.Name = "full-pipeline"
	p.CommitPipelining = true
	return p
}

// Presets returns the shipped profile catalogue in canonical order: the
// two historical Dropbox clients first, then the hypothetical profiles.
func Presets() []Profile {
	return []Profile{
		DropboxV1252(),
		DropboxV140(),
		NoDedup(),
		NoDelta(),
		BigChunks16MB(),
		FullPipeline(),
	}
}

// Names returns the preset names in catalogue order.
func Names() []string {
	ps := Presets()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// aliases maps alternate spellings to preset names, so CLI flags accept
// the paper's version numbers directly.
var aliases = map[string]string{
	"1.2.52":          "dropbox-1.2.52",
	"v1.2.52":         "dropbox-1.2.52",
	"dropbox_v1_2_52": "dropbox-1.2.52",
	"1.4.0":           "dropbox-1.4.0",
	"v1.4.0":          "dropbox-1.4.0",
	"dropbox_v1_4_0":  "dropbox-1.4.0",
	"nodedup":         "no-dedup",
	"nodelta":         "no-delta",
	"bigchunks16mb":   "big-chunks-16mb",
	"fullpipeline":    "full-pipeline",
}

// ByName resolves a preset by name (case-insensitive; version-number
// aliases like "1.4.0" are accepted).
func ByName(name string) (Profile, bool) {
	key := strings.ToLower(strings.TrimSpace(name))
	if canon, ok := aliases[key]; ok {
		key = canon
	}
	for _, p := range Presets() {
		if p.Name == key {
			return p, true
		}
	}
	return Profile{}, false
}

// Parse resolves a comma-separated list of preset names, preserving order
// and rejecting unknown names with the valid catalogue in the error.
func Parse(list string) ([]Profile, error) {
	var out []Profile
	for _, tok := range strings.Split(list, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		p, ok := ByName(tok)
		if !ok {
			valid := Names()
			sort.Strings(valid)
			return nil, fmt.Errorf("unknown capability profile %q (valid: %s)",
				tok, strings.Join(valid, ", "))
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no capability profiles given (valid: %s)",
			strings.Join(Names(), ", "))
	}
	return out, nil
}
