package experiments

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"insidedropbox/internal/fleet"
)

// sharedCampaign builds one small campaign for all tests in this package.
var (
	campOnce sync.Once
	camp     *Campaign
)

func testCampaign(t *testing.T) *Campaign {
	t.Helper()
	campOnce.Do(func() {
		camp = RunCampaign(2012, SmallScale())
	})
	return camp
}

func metricIn(t *testing.T, r *Result, key string, lo, hi float64) {
	t.Helper()
	v, ok := r.Metrics[key]
	if !ok {
		t.Fatalf("%s: metric %q missing (have %v)", r.ID, key, keys(r.Metrics))
	}
	if v < lo || v > hi {
		t.Errorf("%s: metric %s = %.4g, want in [%g, %g]", r.ID, key, v, lo, hi)
	}
}

func keys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestAllResultsRender(t *testing.T) {
	c := testCampaign(t)
	results := All(c)
	if len(results) < 20 {
		t.Fatalf("only %d experiments", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		if r.Text == "" {
			t.Errorf("%s: empty text", r.ID)
		}
		if seen[r.ID] {
			t.Errorf("duplicate id %s", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestTable1(t *testing.T) {
	r := Table1()
	if !strings.Contains(r.Text, "dl-clientX") || !strings.Contains(r.Text, "Meta-data") {
		t.Fatalf("table 1 incomplete:\n%s", r.Text)
	}
	metricIn(t, r, "storage_names", 500, 600)
}

func TestTable2Volumes(t *testing.T) {
	c := testCampaign(t)
	r := Table2(c)
	// Every vantage point must carry volume; home nets more than campus1.
	for _, vp := range []string{"campus1", "campus2", "home1", "home2"} {
		metricIn(t, r, "gb_"+vp, 0.5, 1e9)
	}
	if r.Metrics["gb_home1"] <= r.Metrics["gb_campus1"] {
		t.Errorf("home1 volume (%.1f GB) should exceed campus1 (%.1f GB)",
			r.Metrics["gb_home1"], r.Metrics["gb_campus1"])
	}
}

func TestTable3DropboxTraffic(t *testing.T) {
	c := testCampaign(t)
	r := Table3(c)
	metricIn(t, r, "devices_total", 50, 1e7)
	metricIn(t, r, "flows_total", 1000, 1e9)
	// Every vantage point contributes flows and volume. (The paper's
	// campus2 > campus1 ordering is population-driven and holds at the
	// default scale, not at this test's tiny scale.)
	for _, vp := range []string{"campus1", "campus2", "home1", "home2"} {
		metricIn(t, r, "gb_"+vp, 0.01, 1e9)
	}
}

func TestTable5Groups(t *testing.T) {
	c := testCampaign(t)
	r := Table5(c)
	metricIn(t, r, "home1_Occasional_addr", 0.12, 0.50)
	metricIn(t, r, "home1_Heavy_addr", 0.20, 0.60)
	metricIn(t, r, "home1_Upload-only_addr", 0.005, 0.20)
	metricIn(t, r, "home1_Download-only_addr", 0.10, 0.45)
	// Heavy group runs more devices and owns most sessions.
	if r.Metrics["home1_Heavy_devices"] <= r.Metrics["home1_Occasional_devices"] {
		t.Errorf("heavy households should have more devices than occasional")
	}
	if r.Metrics["home1_Heavy_sess"] <= r.Metrics["home1_Occasional_sess"] {
		t.Errorf("heavy households should own more sessions")
	}
}

func TestFigure2Popularity(t *testing.T) {
	c := testCampaign(t)
	r := Figure2(c)
	if r.Metrics["vol_Dropbox"] <= r.Metrics["vol_iCloud"] {
		t.Errorf("Dropbox volume (%.2g) must dominate iCloud (%.2g)",
			r.Metrics["vol_Dropbox"], r.Metrics["vol_iCloud"])
	}
	if r.Metrics["avg_ips_iCloud"] <= r.Metrics["avg_ips_Dropbox"] {
		t.Errorf("iCloud should lead in installations")
	}
	metricIn(t, r, "gdrive_first_day", 31, 40)
}

func TestFigure3Share(t *testing.T) {
	c := testCampaign(t)
	r := Figure3(c)
	metricIn(t, r, "dropbox_share", 0.01, 0.12)
	metricIn(t, r, "ratio", 0.1, 0.8) // Dropbox ≈ 1/3 of YouTube
}

func TestFigure4Breakdown(t *testing.T) {
	c := testCampaign(t)
	r := Figure4(c)
	for _, vp := range []string{"campus1", "campus2", "home1", "home2"} {
		metricIn(t, r, "bytes_"+vp+"_Client (storage)", 0.5, 1.0)
		// Control flows dominate counts (>60% even before notify).
		ctrl := r.Metrics["flows_"+vp+"_Client (control)"] + r.Metrics["flows_"+vp+"_Notify (control)"]
		if ctrl < 0.5 {
			t.Errorf("%s: control+notify flow share = %.2f, want > 0.5", vp, ctrl)
		}
	}
}

func TestFigure5Servers(t *testing.T) {
	c := testCampaign(t)
	r := Figure5(c)
	for _, vp := range []string{"campus1", "campus2", "home1", "home2"} {
		metricIn(t, r, "avg_servers_"+vp, 1, 640)
	}
}

func TestFigure6RTT(t *testing.T) {
	c := testCampaign(t)
	r := Figure6(c)
	for _, vp := range []string{"campus1", "campus2", "home1", "home2"} {
		metricIn(t, r, "storage_median_"+vp, 80, 125)
		metricIn(t, r, "control_median_"+vp, 140, 225)
	}
	// Ordering: campus1 closest, home2 farthest (Fig. 6).
	if r.Metrics["storage_median_campus1"] >= r.Metrics["storage_median_home2"] {
		t.Errorf("campus1 storage RTT should undercut home2")
	}
}

func TestFigure7FlowSizes(t *testing.T) {
	c := testCampaign(t)
	r := Figure7(c)
	metricIn(t, r, "store_le100k_home1", 0.35, 0.9)
	metricIn(t, r, "store_max_home1", 1e6, 4.5e8)
	// Retrieve flows skew larger than store flows (Sec. 4.3.1).
	if r.Metrics["retr_le100k_campus1"] >= r.Metrics["store_le100k_campus1"] {
		t.Errorf("retrieves should be larger than stores: %.2f vs %.2f",
			r.Metrics["retr_le100k_campus1"], r.Metrics["store_le100k_campus1"])
	}
	// Home 2's store CDF is biased by the abnormal uploader.
	if r.Metrics["store_le100k_home2"] >= r.Metrics["store_le100k_home1"] {
		t.Errorf("home2 store CDF should be dragged toward 4MB by the anomaly")
	}
}

func TestFigure8Chunks(t *testing.T) {
	c := testCampaign(t)
	r := Figure8(c)
	metricIn(t, r, "store_le10_home1", 0.6, 1.0)
	metricIn(t, r, "store_le10_campus1", 0.6, 1.0)
}

func TestFigure11Ratios(t *testing.T) {
	c := testCampaign(t)
	r := Figure11(c)
	metricIn(t, r, "dl_ul_ratio_home1", 0.9, 3.0)
	// Home 2's massive uploaders push its ratio below home 1's.
	if r.Metrics["dl_ul_ratio_home2"] >= r.Metrics["dl_ul_ratio_home1"] {
		t.Errorf("home2 ratio (%.2f) should undercut home1 (%.2f)",
			r.Metrics["dl_ul_ratio_home2"], r.Metrics["dl_ul_ratio_home1"])
	}
}

func TestFigure12Devices(t *testing.T) {
	c := testCampaign(t)
	r := Figure12(c)
	metricIn(t, r, "frac1_home1", 0.40, 0.78)
	metricIn(t, r, "frac_ge2_home1", 0.2, 0.6)
}

func TestFigure13Namespaces(t *testing.T) {
	c := testCampaign(t)
	r := Figure13(c)
	metricIn(t, r, "frac1_home1", 0.15, 0.45)
	metricIn(t, r, "frac1_campus1", 0.04, 0.30)
	if r.Metrics["frac_ge5_campus1"] <= r.Metrics["frac_ge5_home1"] {
		t.Errorf("campus users share more folders than home users")
	}
}

func TestFigure14DailyStartups(t *testing.T) {
	c := testCampaign(t)
	r := Figure14(c)
	metricIn(t, r, "avg_frac_home1", 0.1, 0.7)
}

func TestFigure15Diurnal(t *testing.T) {
	c := testCampaign(t)
	r := Figure15(c)
	// Campus 1 start-ups peak during office hours; homes in the evening.
	metricIn(t, r, "startup_peak_hour_campus1", 8, 18)
	metricIn(t, r, "startup_peak_hour_home1", 17, 23)
}

func TestFigure16Sessions(t *testing.T) {
	c := testCampaign(t)
	r := Figure16(c)
	// Homes show the sub-minute NAT mass; campus1 much less.
	if r.Metrics["sub_minute_home1"] <= r.Metrics["sub_minute_campus1"] {
		t.Errorf("home1 sub-minute share (%.3f) should exceed campus1 (%.3f)",
			r.Metrics["sub_minute_home1"], r.Metrics["sub_minute_campus1"])
	}
	// Campus 1 sessions run longer.
	if r.Metrics["median_s_campus1"] <= r.Metrics["median_s_home1"] {
		t.Errorf("campus1 median session should exceed home1")
	}
}

func TestFigure17Web(t *testing.T) {
	c := testCampaign(t)
	r := Figure17(c)
	metricIn(t, r, "up_le10k_home1", 0.8, 1.0)
	metricIn(t, r, "down_le10M_home1", 0.9, 1.0)
}

func TestFigure18DirectLinks(t *testing.T) {
	c := testCampaign(t)
	r := Figure18(c)
	metricIn(t, r, "gt10M_home1", 0.0, 0.15)
	if strings.Contains(r.Text, "campus2") {
		t.Error("campus2 must be omitted from Fig 18 (no FQDN)")
	}
}

func TestFigure20Separation(t *testing.T) {
	c := testCampaign(t)
	r := Figure20(c)
	if r.Metrics["store_flows"] == 0 || r.Metrics["retrieve_flows"] == 0 {
		t.Fatalf("both directions required: %+v", r.Metrics)
	}
}

func TestFigure21Proportions(t *testing.T) {
	c := testCampaign(t)
	r := Figure21(c)
	metricIn(t, r, "store_median_home1", 300, 330)
	metricIn(t, r, "retr_median_home1", 350, 440)
}

func TestTable4Bundling(t *testing.T) {
	r := Table4(77, 0.4)
	// Bundling raises throughput (the paper: +65% retrieve average) and
	// median flow sizes grow.
	if r.Metrics["after_avg_tp_store"] <= r.Metrics["before_avg_tp_store"] {
		t.Errorf("store avg throughput should improve: %.0f -> %.0f",
			r.Metrics["before_avg_tp_store"], r.Metrics["after_avg_tp_store"])
	}
	if r.Metrics["after_median_tp_retrieve"] <= r.Metrics["before_median_tp_retrieve"]*1.15 {
		t.Errorf("retrieve median throughput should improve substantially: %.0f -> %.0f",
			r.Metrics["before_median_tp_retrieve"], r.Metrics["after_median_tp_retrieve"])
	}
	// Flow sizes must at least not shrink (the paper saw them grow; our
	// conn-reuse model reproduces the direction weakly, see EXPERIMENTS.md).
	if r.Metrics["after_median_size_store"] < r.Metrics["before_median_size_store"]*0.8 {
		t.Errorf("median store flow size regressed: %.0f -> %.0f",
			r.Metrics["before_median_size_store"], r.Metrics["after_median_size_store"])
	}
}

func TestPacketLabsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("packet lab is slow")
	}
	store := QuickPacketLab(false)
	retr := QuickPacketLab(true)
	fig9, fig10, err := RunPacketLabs(context.Background(), store, retr)
	if err != nil {
		t.Fatal(err)
	}
	if fig9.Metrics["n_store"] < 10 || fig9.Metrics["n_retrieve"] < 10 {
		t.Fatalf("too few lab flows: %+v", fig9.Metrics)
	}
	// Throughput is low on average (the paper: 462/797 kbit/s) and bounded
	// by θ.
	metricIn(t, fig9, "avg_tp_store", 2e4, 4e6)
	metricIn(t, fig9, "above_theta_frac_store", 0, 0.35)
	// Max observed stays near the 10 Mbit/s server ceiling.
	if fig9.Metrics["max_tp_retrieve"] > 13e6 {
		t.Errorf("max retrieve throughput %.0f exceeds the server ceiling",
			fig9.Metrics["max_tp_retrieve"])
	}
	// Fig 10: many-chunk flows have a duration floor above single-chunk.
	if d1, ok := fig10.Metrics["min_dur_store_1"]; ok {
		if d50, ok := fig10.Metrics["min_dur_store_6-50"]; ok && d50 <= d1 {
			t.Errorf("6-50 chunk flows (min %.2fs) should outlast 1-chunk (min %.2fs)", d50, d1)
		}
	}
}

func TestTestbedDissection(t *testing.T) {
	tb, err := RunTestbed(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if tb.Figure1.Metrics[strings.Join([]string{"has", string(rune('0' + i))}, "_")] != 1 {
			t.Errorf("figure 1 missing protocol message %d:\n%s", i, tb.Figure1.Text)
		}
	}
	if tb.Figure19.Metrics["captured_packets"] < 50 {
		t.Fatalf("testbed captured %v packets", tb.Figure19.Metrics["captured_packets"])
	}
	if !strings.Contains(tb.Figure19.Text, "Handshake") {
		t.Errorf("fig 19 should annotate TLS handshake packets:\n%s", tb.Figure19.Text)
	}
}

func TestFleetCampaignStreaming(t *testing.T) {
	sc := ScaleConfig{Campus1: 0.2, Campus2: 0.04, Home1: 0.01, Home2: 0.01}

	// The streaming report with one shard must describe exactly the
	// datasets the materializing path builds.
	rep := RunFleetCampaign(5, sc, fleet.Config{Shards: 1})
	camp := RunCampaign(5, sc)
	if len(rep.VPs) != len(camp.Datasets) {
		t.Fatalf("fleet report has %d VPs, campaign %d", len(rep.VPs), len(camp.Datasets))
	}
	for i, vp := range rep.VPs {
		ds := camp.Datasets[i]
		if vp.Stats.Cfg.Name != ds.Cfg.Name {
			t.Fatalf("VP %d order mismatch: %s vs %s", i, vp.Stats.Cfg.Name, ds.Cfg.Name)
		}
		if int(vp.Summary.Flows) != len(ds.Records) {
			t.Errorf("%s: streamed %d flows, materialized %d", ds.Cfg.Name, vp.Summary.Flows, len(ds.Records))
		}
		if vp.Stats.Devices != ds.DropboxDevices || vp.Stats.Households != ds.DropboxHouseholds {
			t.Errorf("%s: ground truth differs: %d/%d vs %d/%d", ds.Cfg.Name,
				vp.Stats.Devices, vp.Stats.Households, ds.DropboxDevices, ds.DropboxHouseholds)
		}
		if len(vp.Summary.Devices) > vp.Stats.Devices {
			t.Errorf("%s: counted %d devices, ground truth %d", ds.Cfg.Name,
				len(vp.Summary.Devices), vp.Stats.Devices)
		}
	}

	// Sharded streaming renders a complete result.
	res := RunFleetCampaign(5, sc, fleet.Config{Shards: 6}).Result()
	if res.ID != "fleet" || res.Text == "" {
		t.Fatalf("incomplete fleet result: %+v", res.ID)
	}
	if res.Metrics["flows_total"] < 1000 {
		t.Errorf("fleet flows_total = %.0f", res.Metrics["flows_total"])
	}
	for _, vp := range []string{"campus1", "campus2", "home1", "home2"} {
		if res.Metrics["devices_"+vp] <= 0 {
			t.Errorf("no devices counted for %s", vp)
		}
	}
}

func TestShardedCampaignMatchesRunCampaign(t *testing.T) {
	sc := ScaleConfig{Campus1: 0.15, Campus2: 0.03, Home1: 0.01, Home2: 0.01}
	a := RunCampaign(7, sc)
	b := RunShardedCampaign(7, sc, fleet.Config{Shards: 1, Workers: 2})
	for i := range a.Datasets {
		if len(a.Datasets[i].Records) != len(b.Datasets[i].Records) {
			t.Fatalf("%s: %d vs %d records", a.Datasets[i].Cfg.Name,
				len(a.Datasets[i].Records), len(b.Datasets[i].Records))
		}
	}
}

func TestDeterministicCampaign(t *testing.T) {
	a := RunCampaign(5, ScaleConfig{Campus1: 0.2, Campus2: 0.04, Home1: 0.01, Home2: 0.01})
	b := RunCampaign(5, ScaleConfig{Campus1: 0.2, Campus2: 0.04, Home1: 0.01, Home2: 0.01})
	for i := range a.Datasets {
		if len(a.Datasets[i].Records) != len(b.Datasets[i].Records) {
			t.Fatalf("campaign not deterministic for %s", a.Datasets[i].Cfg.Name)
		}
	}
}

var _ = time.Second
