package experiments

import (
	"context"
	"fmt"
	"sync"

	"insidedropbox/internal/analysis"
	"insidedropbox/internal/fleet"
	"insidedropbox/internal/workload"
)

// FleetVP is one vantage point's streaming outcome: merged aggregates plus
// generation ground truth, with no flow records retained.
type FleetVP struct {
	Stats   fleet.VPStats
	Summary *fleet.Summary
}

// FleetReport is the streaming counterpart of a materialized Campaign: the
// four vantage points reduced to bounded-memory aggregates. It is what a
// campaign looks like at populations too large to hold as Records slices.
type FleetReport struct {
	Seed   int64
	Config fleet.Config
	VPs    []*FleetVP // campus1, campus2, home1, home2 order
}

// ByName returns a vantage point's streaming outcome (nil if absent).
func (r *FleetReport) ByName(name string) *FleetVP {
	for _, vp := range r.VPs {
		if vp.Stats.Cfg.Name == name {
			return vp
		}
	}
	return nil
}

// RunFleet streams all four vantage points through the sharded engine
// with per-shard Summary aggregators. Unlike the materializing campaign
// constructors, nothing is accumulated: memory stays bounded while
// DevicesScale grows the population 10-1000x. Per-VP seeds match the
// materializing path, so a FleetReport with fc.Shards == 1 describes
// exactly the datasets NewCampaign would build.
//
// Cancelling ctx aborts every vantage point at fleet-shard granularity
// and returns ctx.Err() with a nil report.
func RunFleet(ctx context.Context, seed int64, sc ScaleConfig, fc fleet.Config) (*FleetReport, error) {
	cfgs := vpConfigs(sc)
	report := &FleetReport{Seed: seed, Config: fc, VPs: make([]*FleetVP, len(cfgs))}
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(i int, cfg workload.VPConfig) {
			defer wg.Done()
			var sum *fleet.Summary
			var stats fleet.VPStats
			sum, stats, errs[i] = fleet.Summarize(ctx, cfg, seed+int64(i)+1, fc)
			report.VPs[i] = &FleetVP{Stats: stats, Summary: sum}
		}(i, cfg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return report, nil
}

// RunFleetCampaign streams all four vantage points with bounded memory.
//
// Deprecated: use RunFleet (cancellable, error-returning).
func RunFleetCampaign(seed int64, sc ScaleConfig, fc fleet.Config) *FleetReport {
	report, _ := RunFleet(context.Background(), seed, sc, fc)
	return report
}

// Result renders the report as a standard experiment result ("fleet"),
// one row per vantage point, with the streaming aggregates as metrics.
func (r *FleetReport) Result() *Result {
	workers := "auto"
	if r.Config.Workers > 0 {
		workers = fmt.Sprintf("%d", r.Config.Workers)
	}
	res := newResult("fleet", fmt.Sprintf(
		"Fleet campaign: %d shards x %s workers, device scale %.4gx",
		max(r.Config.Shards, 1), workers, effScale(r.Config.DevicesScale)))
	tb := analysis.NewTable(res.Title,
		"VP", "IPs", "devices", "flows", "GB total", "GB store", "GB retr", "store med kB", "retr med kB")
	totalFlows, totalDevices := 0.0, 0.0
	for _, vp := range r.VPs {
		s, st := vp.Summary, vp.Stats
		name := st.Cfg.Name
		tb.AddRow(name,
			float64(st.Cfg.TotalIPs), float64(len(s.Devices)), float64(s.Flows),
			float64(s.BytesUp+s.BytesDown)/1e9,
			float64(s.StoreBytes)/1e9, float64(s.RetrieveBytes)/1e9,
			s.StoreSizes.Quantile(0.5)/1e3, s.RetrieveSizes.Quantile(0.5)/1e3)
		for k, v := range s.Metrics() {
			res.Metrics[k+"_"+name] = v
		}
		res.Metrics["ips_"+name] = float64(st.Cfg.TotalIPs)
		res.Metrics["gt_devices_"+name] = float64(st.Devices)
		res.Metrics["gt_households_"+name] = float64(st.Households)
		totalFlows += float64(s.Flows)
		totalDevices += float64(len(s.Devices))
	}
	res.Metrics["flows_total"] = totalFlows
	res.Metrics["devices_total"] = totalDevices
	res.addText(tb.String())
	return res
}

func effScale(v float64) float64 {
	if v <= 0 {
		return 1
	}
	return v
}
