package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"insidedropbox/internal/analysis"
	"insidedropbox/internal/backend"
	"insidedropbox/internal/scenario"
	"insidedropbox/internal/telemetry"
)

// Scenario stream memoization telemetry, mirroring the campaign and
// arrival counters: builds=1 per Session however many scenario
// experiments run.
var (
	mScenarioHits   = telemetry.NewCounter("session.scenario_hits")
	mScenarioBuilds = telemetry.NewCounter("session.scenario_builds")
)

// ScenarioStream compiles the session's scenario spec and streams its
// population once, memoizing the result for every scenario experiment in
// the selection. The compiled seed honors the spec's base.seed override;
// Fleet.Workers carries over from the session (it never changes results).
// Failed runs are not memoized.
func (s *Session) ScenarioStream(ctx context.Context) (*scenario.Compiled, *scenario.StreamResult, error) {
	if s.Scenario == nil {
		return nil, nil, fmt.Errorf("experiments: scenario/* experiments need a scenario spec (-scenario)")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.scStream != nil {
		mScenarioHits.Inc()
		return s.scComp, s.scStream, nil
	}
	mScenarioBuilds.Inc()
	comp, err := scenario.Compile(s.Scenario, s.Seed)
	if err != nil {
		return nil, nil, err
	}
	stream, err := scenario.CollectStream(ctx, comp, s.Fleet.Workers)
	if err != nil {
		return nil, nil, err
	}
	s.scComp, s.scStream = comp, stream
	return comp, stream, nil
}

// registerScenario appends the opt-in scenario experiments; the registry
// init calls it last so they land after the backend family.
func registerScenario() {
	register(Experiment{
		ID: "scenario/cohorts", Title: "Scenario: cohort mix ground truth and stream fingerprint",
		Needs: Needs{OptIn: true},
		Run:   runScenarioCohorts,
	})
	register(Experiment{
		ID: "scenario/flash-crowd", Title: "Scenario: time-varying backend load response under the spec timeline",
		Needs: Needs{OptIn: true},
		Run:   runScenarioFlashCrowd,
	})
}

// scenarioMeta attaches the reproducibility contract of a scenario result:
// (spec, seed, shards) fully determine both the stream hash and every
// simulated outcome, so two runs disagreeing on any of these metrics are
// running different experiments.
func scenarioMeta(res *Result, comp *scenario.Compiled, stream *scenario.StreamResult) {
	res.AddMeta("scenario", comp.Spec.Name)
	res.AddMeta("seed", fmt.Sprintf("%d", comp.Seed))
	res.AddMeta("shards", fmt.Sprintf("%d", comp.Fleet.Shards))
	res.AddMeta("stream_hash", fmt.Sprintf("%#016x", stream.StreamHash))
}

// runScenarioCohorts reports the generated ground truth of the spec's
// cohort mix: devices and records per cohort against the spec weights,
// plus the campaign stream fingerprint.
func runScenarioCohorts(ctx context.Context, s *Session) (*Result, error) {
	comp, stream, err := s.ScenarioStream(ctx)
	if err != nil {
		return nil, err
	}
	st := stream.Stats

	res := newResult("scenario/cohorts",
		fmt.Sprintf("Scenario %q: %d devices, %d records across %d cohorts",
			comp.Spec.Name, st.Devices, st.Records, len(comp.Spec.Cohorts)))

	if len(comp.Spec.Cohorts) == 0 {
		res.addText("single-population spec (no cohorts section): the stream is the\nlegacy calibrated population, bit for bit.\n")
	} else {
		tb := analysis.NewTable("Cohort ground truth", "cohort", "weight", "devices", "device share", "records")
		names := make([]string, 0, len(st.CohortDevices))
		for n := range st.CohortDevices {
			names = append(names, n)
		}
		sort.Strings(names)
		weights := make(map[string]float64, len(comp.Spec.Cohorts))
		for _, c := range comp.Spec.Cohorts {
			weights[c.Name] = c.Weight
		}
		for _, n := range names {
			dev := st.CohortDevices[n]
			share := 0.0
			if st.Devices > 0 {
				share = float64(dev) / float64(st.Devices)
			}
			tb.AddRow(n, fmt.Sprintf("%.2f", weights[n]), dev,
				fmt.Sprintf("%.1f%%", 100*share), st.CohortRecords[n])
			res.Metrics["cohort_"+n+"_devices"] = float64(dev)
			res.Metrics["cohort_"+n+"_records"] = float64(st.CohortRecords[n])
			res.Metrics["cohort_"+n+"_device_share"] = share
		}
		res.addText(tb.String())
		res.addText("\ndevice share converges on the spec weights as the population grows;\n" +
			"records vary with each cohort's behavior (a CI bot emits far more\n" +
			"flows per device than a photo hoarder). Household-level web and\n" +
			"direct-link flows stay unattributed, so record counts sum below the\n" +
			"campaign total.\n")
	}
	res.Metrics["devices"] = float64(st.Devices)
	res.Metrics["records"] = float64(st.Records)
	res.Metrics["backend_requests"] = float64(len(stream.Requests))
	scenarioMeta(res, comp, stream)
	return res, nil
}

// runScenarioFlashCrowd replays the scenario's arrival set against its
// backend section: capacity is provisioned from the BASE load, surges
// amplify the arrivals, timeline events (outages, rollouts) fire on the
// event queue, and every timeline entry's report window is compared
// against the run-wide baseline — the time-varying load response the
// paper could only observe from outside.
func runScenarioFlashCrowd(ctx context.Context, s *Session) (*Result, error) {
	comp, stream, err := s.ScenarioStream(ctx)
	if err != nil {
		return nil, err
	}
	if comp.Backend == nil {
		return nil, fmt.Errorf("scenario/flash-crowd: spec %q has no backend section", comp.Spec.Name)
	}

	cfg, err := comp.Backend.Config(stream.Requests)
	if err != nil {
		return nil, err
	}
	load := comp.Backend.ApplySurges(stream.Requests)
	rep, err := backend.Simulate(ctx, cfg, load)
	if err != nil {
		return nil, err
	}

	res := newResult("scenario/flash-crowd",
		fmt.Sprintf("Scenario %q: %d arrivals (%d after surges) under the %q preset",
			comp.Spec.Name, len(stream.Requests), len(load), comp.Backend.Preset))

	overallP95 := rep.DelayQuantile(0.95)
	res.addText(fmt.Sprintf(
		"%d served / %d dropped / %d shed; run-wide delay mean %v, p95 %v\n",
		rep.Served, rep.Dropped, rep.Shed,
		rep.MeanDelay().Round(time.Microsecond), overallP95.Round(time.Microsecond)))

	if len(rep.Windows) > 0 {
		tb := analysis.NewTable("Timeline windows vs. run-wide baseline",
			"window", "interval", "served", "dropped", "mean delay", "p95", "p95 vs overall")
		for _, w := range rep.Windows {
			p95 := time.Duration(w.Delay.Quantile(0.95))
			rel := "-"
			if overallP95 > 0 {
				rel = fmt.Sprintf("%.2fx", float64(p95)/float64(overallP95))
			}
			tb.AddRow(w.Name,
				fmt.Sprintf("d%.1f-d%.1f", w.Start.Hours()/24, w.End.Hours()/24),
				w.Served, w.Dropped,
				time.Duration(w.Delay.Mean()).Round(time.Microsecond).String(),
				p95.Round(time.Microsecond).String(), rel)
		}
		res.addText(tb.String())
		res.addText("\nunder a scarce preset the surge window shows the queueing knee (delays\n" +
			"far above the run-wide baseline, any loss concentrated in-window); an\n" +
			"infinite deployment absorbs the same surge with zero delay — capacity,\n" +
			"not the flash crowd, makes the event visible.\n")
	}

	res.Metrics["requests_base"] = float64(len(stream.Requests))
	res.Metrics["requests_load"] = float64(len(load))
	for k, v := range rep.Metrics() {
		res.Metrics[k] = v
	}
	scenarioMeta(res, comp, stream)
	return res, nil
}
