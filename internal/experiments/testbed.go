package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"insidedropbox/internal/chunker"
	"insidedropbox/internal/dnssim"
	"insidedropbox/internal/dropbox"
	"insidedropbox/internal/netem"
	"insidedropbox/internal/simrand"
	"insidedropbox/internal/simtime"
	"insidedropbox/internal/tcpsim"
	"insidedropbox/internal/tlssim"
	"insidedropbox/internal/wire"
)

// TestbedResult is what the decrypting-proxy-equivalent testbed produces:
// the protocol message sequence (Fig. 1) and annotated packet-level traces
// of one store and one retrieve flow (Fig. 19).
type TestbedResult struct {
	Figure1  *Result
	Figure19 *Result
}

// packetEvent is one captured frame with its annotation.
type packetEvent struct {
	at    simtime.Time
	out   bool
	flags wire.TCPFlags
	size  int
	note  string
	port  uint16
	srv   wire.IP
}

// packetTap records frames for the Fig. 19 diagrams.
type packetTap struct {
	events []packetEvent
}

func (p *packetTap) Capture(now simtime.Time, f *wire.Frame, dir netem.TapDir) {
	note := ""
	if len(f.Payload) >= wire.RecordHeaderLen {
		if rec, _, err := wire.ParseRecord(f.Payload); err == nil || rec.Type != 0 {
			note = rec.Type.String()
		}
	}
	var srv wire.IP
	var port uint16
	if dir == netem.TapOutbound {
		srv, port = f.IP.Dst, f.TCP.DstPort
	} else {
		srv, port = f.IP.Src, f.TCP.SrcPort
	}
	p.events = append(p.events, packetEvent{
		at: now, out: dir == netem.TapOutbound, flags: f.TCP.Flags,
		size: f.PayloadLen, note: note, port: port, srv: srv,
	})
}

// RunTestbed stands up the full service, runs one upload and one download
// through real clients, and renders the protocol dissection. Cancelling
// ctx stops the simulation at its next bounded slice and returns ctx.Err().
func RunTestbed(ctx context.Context, seed int64) (*TestbedResult, error) {
	sched := simtime.NewScheduler()
	rng := simrand.New(seed, "testbed")
	net := netem.New(sched, rng)
	net.SetCoreDelay("lab", dnssim.AmazonDC, 45*time.Millisecond)
	net.SetCoreDelay("lab", dnssim.DropboxDC, 85*time.Millisecond)
	dir := dnssim.Build(dnssim.Layout{MetaIPs: 2, NotifyIPs: 2, StorageNames: 8, StorageIPs: 8})
	svc := dropbox.NewService(dropbox.ServiceConfig{
		Sched: sched, Net: net, Rng: rng, Dir: dir, ServerTCP: tcpsim.DefaultConfig(),
	})
	resolver := dnssim.NewResolver(dir, rng)
	tap := &packetTap{}
	net.AttachTap("lab", tap)

	var msgLog []string
	svc.Trace = func(d, server string, meta any) {
		msgLog = append(msgLog, fmt.Sprintf("%-9s %-8s %-24s %T",
			sched.Now(), server, msgName(meta), meta))
	}

	mkDev := func(ip wire.IP, acct dropbox.AccountID) *dropbox.Device {
		host := net.AddHost(ip, "lab", netem.WiredWorkstation())
		stack := tcpsim.NewStack(host, sched, rng, tcpsim.DefaultConfig())
		dev, err := dropbox.NewDevice(dropbox.ClientConfig{
			Sched: sched, Rng: rng, Service: svc, Resolver: resolver,
			Stack: stack, Version: dropbox.V1252, Handshake: tlssim.DefaultHandshake(),
		}, acct)
		if err != nil {
			panic(err)
		}
		return dev
	}
	acct := svc.Meta.CreateAccount()
	up := mkDev(wire.MakeIP(10, 10, 0, 1), acct.ID)
	down := mkDev(wire.MakeIP(10, 10, 0, 2), acct.ID)
	up.Start()
	down.Start()

	var refs []chunker.Ref
	for i := 0; i < 3; i++ {
		f := chunker.SyntheticFile{Seed: uint64(i) + 100, Size: 300_000}
		refs = append(refs, f.Refs()...)
	}
	sched.After(3*time.Second, func() {
		up.Upload(acct.Root, refs, func(r chunker.Ref) int { return r.Size }, nil)
	})
	// Drive the session in bounded slices so a cancelled ctx stops the
	// dissection between slices instead of running the full six minutes.
	const horizon = 6 * time.Minute
	for at := 30 * time.Second; at <= horizon; at += 30 * time.Second {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sched.RunUntil(simtime.Time(at))
	}

	// ---- Fig. 1: message sequence ----
	fig1 := newResult("figure1", "Figure 1: The Dropbox protocol (testbed dissection)")
	var b strings.Builder
	b.WriteString("time      server   message                  type\n")
	b.WriteString(strings.Repeat("-", 70) + "\n")
	max := len(msgLog)
	if max > 40 {
		max = 40
	}
	for _, line := range msgLog[:max] {
		b.WriteString(line + "\n")
	}
	fig1.addText(b.String())
	fig1.Metrics["messages"] = float64(len(msgLog))
	seq := strings.Join(msgLog, "\n")
	for i, want := range []string{"MsgRegisterHost", "MsgList", "MsgCommitBatch", "MsgStore", "MsgCloseChangeset"} {
		if strings.Contains(seq, want) {
			fig1.Metrics[fmt.Sprintf("has_%d", i)] = 1
		}
	}

	// ---- Fig. 19: packet diagrams ----
	fig19 := newResult("figure19", "Figure 19: Typical flows in storage operations (packet traces)")
	fig19.addText(renderFlowTrace("(a) store flow", tap.events, wire.MakeIP(10, 10, 0, 1)))
	fig19.addText(renderFlowTrace("(b) retrieve flow", tap.events, wire.MakeIP(10, 10, 0, 2)))
	fig19.Metrics["captured_packets"] = float64(len(tap.events))
	return &TestbedResult{Figure1: fig1, Figure19: fig19}, nil
}

func msgName(meta any) string {
	name := fmt.Sprintf("%T", meta)
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// renderFlowTrace prints the packet sequence of the client's storage flow.
func renderFlowTrace(title string, events []packetEvent, client wire.IP) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	b.WriteString("time        dir  flags        len   note\n")
	b.WriteString(strings.Repeat("-", 60) + "\n")
	// Pick the flow to an Amazon storage address (184.72/16, port 443)
	// involving this client side: the tap records only server-side info,
	// so match on the storage server address range and time-cluster.
	count := 0
	var first simtime.Time
	seen := false
	for _, e := range events {
		if e.port != 443 || (uint32(e.srv)>>16) != (184<<8|72) {
			continue
		}
		if !seen {
			first = e.at
			seen = true
		}
		if e.at.Sub(first) > 90*time.Second && count > 10 {
			break
		}
		dir := "<-"
		if e.out {
			dir = "->"
		}
		note := e.note
		if e.size == 0 {
			note = "(ack)"
		}
		fmt.Fprintf(&b, "%-11s %s   %-12s %-5d %s\n", e.at, dir, e.flags, e.size, note)
		count++
		if count >= 28 {
			fmt.Fprintf(&b, "... (%s)\n", "remaining packets elided")
			break
		}
	}
	if count == 0 {
		b.WriteString("(no storage flow captured)\n")
	}
	b.WriteString("\n")
	return b.String()
}
