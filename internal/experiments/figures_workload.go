package experiments

import (
	"fmt"
	"time"

	"insidedropbox/internal/analysis"
	"insidedropbox/internal/classify"
	"insidedropbox/internal/dnssim"
	"insidedropbox/internal/workload"
)

// Figure11 reproduces the per-household store/retrieve volume scatter for
// the home networks, marked by device count.
func Figure11(c *Campaign) *Result {
	res := newResult("figure11", "Figure 11: Data volume stored and retrieved per household")
	for _, name := range []string{"home1", "home2"} {
		ds := c.ByName(name)
		store, retr := householdVolumes(ds)
		devs := classify.DevicesPerIP(ds.Records)
		plot := analysis.NewPlot(fmt.Sprintf("%s — %s", res.Title, name),
			"retrieve (bytes)", "store (bytes)")
		plot.LogX, plot.LogY = true, true
		groups := map[string][2][]float64{}
		var totalStore, totalRetr float64
		for ip := range dropboxClients(ds) {
			s, r := float64(store[ip]), float64(retr[ip])
			totalStore += s
			totalRetr += r
			// Points at <1kB sit on the axes in the paper; clamp for log.
			if s < 1e3 {
				s = 1e3
			}
			if r < 1e3 {
				r = 1e3
			}
			key := "1 dev"
			switch d := devs[ip]; {
			case d >= 4:
				key = ">3 dev"
			case d >= 2:
				key = "2-3 dev"
			}
			g := groups[key]
			g[0] = append(g[0], r)
			g[1] = append(g[1], s)
			groups[key] = g
		}
		for _, key := range []string{"1 dev", "2-3 dev", ">3 dev"} {
			g := groups[key]
			if len(g[0]) > 0 {
				plot.AddSeries(key, g[0], g[1])
			}
		}
		res.addText(plot.String())
		ratio := totalRetr / totalStore
		res.Metrics["dl_ul_ratio_"+name] = ratio
		res.addText(fmt.Sprintf("%s download/upload ratio = %.2f (paper: home1 1.4, home2 0.9)\n\n", name, ratio))
	}
	return res
}

// Figure12 reproduces the devices-per-household distribution.
func Figure12(c *Campaign) *Result {
	res := newResult("figure12", "Figure 12: Devices per household (Dropbox client)")
	tb := analysis.NewTable(res.Title, "devices", "home1", "home2")
	counters := map[string]*analysis.Counter{}
	for _, name := range []string{"home1", "home2"} {
		ds := c.ByName(name)
		cnt := analysis.NewCounter()
		for _, n := range classify.DevicesPerIP(ds.Records) {
			cnt.Add(n)
		}
		counters[name] = cnt
	}
	for _, n := range []int{1, 2, 3, 4} {
		tb.AddRow(fmt.Sprintf("%d", n),
			counters["home1"].Fraction(n), counters["home2"].Fraction(n))
	}
	tb.AddRow(">4", counters["home1"].FractionAtLeast(5), counters["home2"].FractionAtLeast(5))
	for name, cnt := range counters {
		res.Metrics["frac1_"+name] = cnt.Fraction(1)
		res.Metrics["frac_ge2_"+name] = cnt.FractionAtLeast(2)
	}
	res.addText(tb.String())
	res.addText("\n≈60% of households run a single device; ≈30% have more than one\n" +
		"linked device (Sec. 5.2).\n")
	return res
}

// Figure13 reproduces the namespaces-per-device CDF for Campus 1 and
// Home 1 (the vantage points exposing namespace lists).
func Figure13(c *Campaign) *Result {
	res := newResult("figure13", "Figure 13: Number of namespaces per device")
	plot := analysis.NewPlot(res.Title, "namespaces", "CDF")
	for _, name := range []string{"campus1", "home1"} {
		ds := c.ByName(name)
		var xs []float64
		for _, n := range classify.NamespacesPerDevice(ds.Records) {
			xs = append(xs, float64(n))
		}
		if len(xs) == 0 {
			continue
		}
		e := analysis.NewECDF(xs)
		plot.AddECDF(name, e)
		res.Metrics["frac1_"+name] = e.At(1)
		res.Metrics["frac_ge5_"+name] = 1 - e.At(4)
	}
	res.addText(plot.String())
	res.addText(fmt.Sprintf("\nusers with only the root namespace: campus1 %.0f%%, home1 %.0f%% (paper: 13%%, 28%%)\n"+
		"users with >=5 namespaces: campus1 %.0f%%, home1 %.0f%% (paper: 50%%, 23%%)\n",
		100*res.Metrics["frac1_campus1"], 100*res.Metrics["frac1_home1"],
		100*res.Metrics["frac_ge5_campus1"], 100*res.Metrics["frac_ge5_home1"]))
	return res
}

// Figure14 reproduces the fraction of devices starting a session per day.
func Figure14(c *Campaign) *Result {
	res := newResult("figure14", "Figure 14: Distinct device start-ups per day")
	plot := analysis.NewPlot(res.Title, "day", "fraction of devices")
	c.perVP(func(ds *workload.Dataset) {
		sessions := sessionsOf(ds)
		devices := make(map[uint64]bool)
		perDay := make([]map[uint64]bool, ds.Cfg.Days)
		for i := range perDay {
			perDay[i] = make(map[uint64]bool)
		}
		for _, s := range sessions {
			devices[s.Host] = true
			d := int(s.Start / (24 * time.Hour))
			if d >= 0 && d < len(perDay) {
				perDay[d][s.Host] = true
			}
		}
		if len(devices) == 0 {
			return
		}
		xs := make([]float64, ds.Cfg.Days)
		ys := make([]float64, ds.Cfg.Days)
		sum := 0.0
		for d := 0; d < ds.Cfg.Days; d++ {
			xs[d] = float64(d)
			ys[d] = float64(len(perDay[d])) / float64(len(devices))
			sum += ys[d]
		}
		plot.AddSeries(ds.Cfg.Name, xs, ys)
		res.Metrics["avg_frac_"+ds.Cfg.Name] = sum / float64(ds.Cfg.Days)
	})
	res.addText(plot.String())
	res.addText("Home networks hover near a constant fraction daily; campuses show\n" +
		"strong weekly seasonality (Sec. 5.4).\n")
	return res
}

// Figure15 reproduces the hourly usage profiles on weekdays: session
// start-ups, active devices, retrieve and store volumes.
func Figure15(c *Campaign) *Result {
	res := newResult("figure15", "Figure 15: Daily usage of Dropbox on weekdays")
	panels := []struct {
		title string
		fill  func(ds *workload.Dataset, prof *analysis.HourOfDayProfile)
	}{
		{"(a) session start-ups", func(ds *workload.Dataset, prof *analysis.HourOfDayProfile) {
			for _, s := range sessionsOf(ds) {
				prof.Add(s.Start, 1, true)
			}
		}},
		{"(b) active devices", func(ds *workload.Dataset, prof *analysis.HourOfDayProfile) {
			for _, s := range sessionsOf(ds) {
				for t := s.Start; t < s.End; t += time.Hour {
					prof.Add(t, 1, true)
				}
			}
		}},
		{"(c) retrieve bytes", func(ds *workload.Dataset, prof *analysis.HourOfDayProfile) {
			for _, r := range clientStorageRecords(ds) {
				if classify.TagStorage(r) == classify.DirRetrieve {
					prof.Add(r.FirstPacket, float64(classify.Payload(r, classify.DirRetrieve)), true)
				}
			}
		}},
		{"(d) store bytes", func(ds *workload.Dataset, prof *analysis.HourOfDayProfile) {
			for _, r := range clientStorageRecords(ds) {
				if classify.TagStorage(r) == classify.DirStore {
					prof.Add(r.FirstPacket, float64(classify.Payload(r, classify.DirStore)), true)
				}
			}
		}},
	}
	for pi, panel := range panels {
		plot := analysis.NewPlot(fmt.Sprintf("%s %s", res.Title, panel.title), "hour", "fraction")
		c.perVP(func(ds *workload.Dataset) {
			var prof analysis.HourOfDayProfile
			panel.fill(ds, &prof)
			fr := prof.Fractions()
			xs := make([]float64, 24)
			ys := make([]float64, 24)
			peak := 0
			for h := 0; h < 24; h++ {
				xs[h] = float64(h)
				ys[h] = fr[h]
				if fr[h] > fr[peak] {
					peak = h
				}
			}
			plot.AddSeries(ds.Cfg.Name, xs, ys)
			if pi == 0 {
				res.Metrics["startup_peak_hour_"+ds.Cfg.Name] = float64(peak)
			}
		})
		res.addText(plot.String())
		res.addText("")
	}
	return res
}

// Figure16 reproduces the session-duration CDFs (durations of notification
// flows, as the paper measures them).
func Figure16(c *Campaign) *Result {
	res := newResult("figure16", "Figure 16: Distribution of session durations")
	plot := analysis.NewPlot(res.Title, "seconds", "CDF")
	plot.LogX = true
	c.perVP(func(ds *workload.Dataset) {
		var xs []float64
		for _, r := range dropboxRecords(ds) {
			if r.NotifyHost == 0 {
				continue
			}
			sec := r.Duration().Seconds()
			if sec > 0 {
				xs = append(xs, sec)
			}
		}
		if len(xs) == 0 {
			return
		}
		e := analysis.NewECDF(xs)
		plot.AddECDF(ds.Cfg.Name, e)
		res.Metrics["sub_minute_"+ds.Cfg.Name] = e.At(60)
		res.Metrics["le_4h_"+ds.Cfg.Name] = e.At(4 * 3600)
		res.Metrics["median_s_"+ds.Cfg.Name] = e.Median()
	})
	res.addText(plot.String())
	res.addText("Home networks show a sub-minute mass (NAT/firewall-killed notification\n" +
		"connections); Campus 1 skews long (8-hour workstations); tails reflect\n" +
		"always-on devices (Sec. 5.5).\n")
	return res
}

// Figure17 reproduces the main Web interface storage flow sizes.
func Figure17(c *Campaign) *Result {
	res := newResult("figure17", "Figure 17: Storage via the main Web interface")
	up := analysis.NewPlot(res.Title+" — upload", "bytes", "CDF")
	down := analysis.NewPlot(res.Title+" — download", "bytes", "CDF")
	up.LogX, down.LogX = true, true
	c.perVP(func(ds *workload.Dataset) {
		var us, dl []float64
		for _, r := range dropboxRecords(ds) {
			if classify.DropboxService(r) != dnssim.SvcWebStorage || r.ServerPort != 443 {
				continue
			}
			if r.SNI != "dl-web.dropbox.com" && r.FQDN != "dl-web.dropbox.com" {
				continue
			}
			us = append(us, float64(r.BytesUp))
			dl = append(dl, float64(r.BytesDown))
		}
		if len(us) == 0 {
			return
		}
		eu, ed := analysis.NewECDF(us), analysis.NewECDF(dl)
		up.AddECDF(ds.Cfg.Name, eu)
		down.AddECDF(ds.Cfg.Name, ed)
		res.Metrics["up_le10k_"+ds.Cfg.Name] = eu.At(10e3)
		res.Metrics["down_le10M_"+ds.Cfg.Name] = ed.At(10e6)
	})
	res.addText(up.String())
	res.addText("")
	res.addText(down.String())
	res.addText("Uploads through the Web interface are negligible (>95% of flows under\n" +
		"10 kB); downloads stay small (Sec. 6).\n")
	return res
}

// Figure18 reproduces direct-link download sizes (Campus 2 lacks FQDNs and
// is omitted, as in the paper).
func Figure18(c *Campaign) *Result {
	res := newResult("figure18", "Figure 18: Size of direct link downloads")
	plot := analysis.NewPlot(res.Title, "bytes", "CDF")
	plot.LogX = true
	c.perVP(func(ds *workload.Dataset) {
		if !ds.Cfg.HasDNS {
			return // Campus 2 not depicted: no FQDN visibility
		}
		var xs []float64
		for _, r := range ds.Records {
			if r.FQDN == "dl.dropbox.com" {
				xs = append(xs, float64(r.BytesDown))
			}
		}
		if len(xs) == 0 {
			return
		}
		e := analysis.NewECDF(xs)
		plot.AddECDF(ds.Cfg.Name, e)
		res.Metrics["gt10M_"+ds.Cfg.Name] = 1 - e.At(10e6)
	})
	res.addText(plot.String())
	res.addText("Only a small share of direct-link downloads exceeds 10 MB — link\n" +
		"sharing is not movie/archive distribution (Sec. 6).\n")
	return res
}

// Figure20 reproduces the store/retrieve byte scatter with the f(u)
// separation function (Campus 1, Appendix A.2).
func Figure20(c *Campaign) *Result {
	res := newResult("figure20", "Figure 20: Bytes exchanged in storage flows (Campus 1) with f(u)")
	ds := c.ByName("campus1")
	plot := analysis.NewPlot(res.Title, "upload (bytes)", "download (bytes)")
	plot.LogX, plot.LogY = true, true
	var storeX, storeY, retrX, retrY []float64
	misclass := 0
	n := 0
	for _, r := range clientStorageRecords(ds) {
		u := float64(r.BytesUp)
		d := float64(r.BytesDown)
		if u <= 0 || d <= 0 {
			continue
		}
		n++
		dir := classify.TagStorage(r)
		// Ground truth via PSH structure: retrieve flows carry paired PSH
		// requests; compare against the byte-based tag.
		truthRetr := r.PSHUp >= 2+2 && r.PSHUp%2 == 0 && d > u
		if dir == classify.DirRetrieve {
			retrX = append(retrX, u)
			retrY = append(retrY, d)
			if !truthRetr && d < classify.F(u) {
				misclass++
			}
		} else {
			storeX = append(storeX, u)
			storeY = append(storeY, d)
		}
	}
	plot.AddSeries("store", storeX, storeY)
	plot.AddSeries("retrieve", retrX, retrY)
	// The f(u) boundary.
	var fx, fy []float64
	for u := 300.0; u < 1e9; u *= 1.6 {
		fx = append(fx, u)
		fy = append(fy, classify.F(u))
	}
	plot.AddSeries("f(u)", fx, fy)
	res.addText(plot.String())
	res.Metrics["flows"] = float64(n)
	res.Metrics["store_flows"] = float64(len(storeX))
	res.Metrics["retrieve_flows"] = float64(len(retrX))
	res.addText("Store flows hug the x-axis (uploads with tiny acks), retrieves the\n" +
		"y-axis; f(u) separates the two groups (Appendix A.2).\n")
	return res
}

// Figure21 reproduces the payload-per-chunk proportion CDFs that validate
// the chunk estimator.
func Figure21(c *Campaign) *Result {
	res := newResult("figure21", "Figure 21: Payload per estimated chunk (reverse direction)")
	ps := analysis.NewPlot(res.Title+" — store", "bytes/chunk", "CDF")
	pr := analysis.NewPlot(res.Title+" — retrieve", "bytes/chunk", "CDF")
	c.perVP(func(ds *workload.Dataset) {
		var st, rt []float64
		for _, r := range clientStorageRecords(ds) {
			d := classify.TagStorage(r)
			chunks := classify.EstimateChunks(r, d)
			if chunks < 1 {
				continue
			}
			if d == classify.DirStore {
				// Reverse direction of a store is the server's: payload
				// minus handshake divided by chunks ≈ 309 bytes.
				v := float64(r.BytesDown-classify.SSLServerHandshake) / float64(chunks)
				if v > 0 && v < 600 {
					st = append(st, v)
				}
			} else {
				v := float64(r.BytesUp-classify.SSLClientHandshake) / float64(chunks)
				if v > 0 && v < 600 {
					rt = append(rt, v)
				}
			}
		}
		if len(st) > 0 {
			e := analysis.NewECDF(st)
			ps.AddECDF(ds.Cfg.Name, e)
			res.Metrics["store_median_"+ds.Cfg.Name] = e.Median()
		}
		if len(rt) > 0 {
			e := analysis.NewECDF(rt)
			pr.AddECDF(ds.Cfg.Name, e)
			res.Metrics["retr_median_"+ds.Cfg.Name] = e.Median()
		}
	})
	ps.SetBounds(0, 600, 0, 1)
	pr.SetBounds(0, 600, 0, 1)
	res.addText(ps.String())
	res.addText("")
	res.addText(pr.String())
	res.addText("Store flows concentrate near 309 bytes per chunk (the HTTP OK);\n" +
		"retrieve requests fall in 362-426 bytes (Appendix A.3).\n")
	return res
}
