package experiments

import "insidedropbox/internal/telemetry"

// Session memoization telemetry: hits are experiments that reused a shared
// artifact, builds the times the artifact was actually generated. A
// campaign run over many experiments should show builds=1 per artifact.
var (
	mCampaignHits   = telemetry.NewCounter("session.campaign_hits")
	mCampaignBuilds = telemetry.NewCounter("session.campaign_builds")
	mPacketHits     = telemetry.NewCounter("session.packet_hits")
	mPacketBuilds   = telemetry.NewCounter("session.packet_builds")
	mTestbedHits    = telemetry.NewCounter("session.testbed_hits")
	mTestbedBuilds  = telemetry.NewCounter("session.testbed_builds")
)
