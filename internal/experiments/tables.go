package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"insidedropbox/internal/analysis"
	"insidedropbox/internal/classify"
	"insidedropbox/internal/dnssim"
	"insidedropbox/internal/fleet"
	"insidedropbox/internal/workload"
)

// Table1 reproduces the service domain-name map (static: it documents the
// simulated DNS layout and verifies classification coverage).
func Table1() *Result {
	res := newResult("table1", "Table 1: Domain names used by different Dropbox services")
	tb := analysis.NewTable(res.Title, "sub-domain", "data-center", "description")
	rows := []struct{ name, dc, desc string }{
		{"client-lb/clientX", "Dropbox", "Meta-data"},
		{"notifyX", "Dropbox", "Notifications"},
		{"api", "Dropbox", "API control"},
		{"www", "Dropbox", "Web servers"},
		{"d", "Dropbox", "Event logs"},
		{"dl", "Amazon", "Direct links"},
		{"dl-clientX", "Amazon", "Client storage"},
		{"dl-debugX", "Amazon", "Back-traces"},
		{"dl-web", "Amazon", "Web storage"},
		{"api-content", "Amazon", "API Storage"},
	}
	for _, r := range rows {
		tb.AddRow(r.name, r.dc, r.desc)
	}
	res.addText(tb.String())
	dir := dnssim.Build(dnssim.DefaultLayout())
	res.Metrics["names"] = float64(len(dir.Names()))
	res.Metrics["storage_names"] = float64(len(dir.StorageNames))
	return res
}

// Table2 reproduces the datasets overview: per vantage point, access type,
// distinct client addresses and total volume.
func Table2(c *Campaign) *Result {
	res := newResult("table2", "Table 2: Datasets overview")
	tb := analysis.NewTable(res.Title, "name", "type", "IP addrs", "vol (GB)", "scale")
	types := map[string]string{
		"campus1": "Wired", "campus2": "Wired/Wireless",
		"home1": "FTTH/ADSL", "home2": "ADSL",
	}
	c.perVP(func(ds *workload.Dataset) {
		vol := ds.TotalVolume()
		tb.AddRow(ds.Cfg.Name, types[ds.Cfg.Name], ds.Cfg.TotalIPs, fmtGB(vol),
			fmt.Sprintf("%.2f", ds.Cfg.Scale))
		res.Metrics["ips_"+ds.Cfg.Name] = float64(ds.Cfg.TotalIPs)
		res.Metrics["gb_"+ds.Cfg.Name] = vol / 1e9
	})
	res.addText(tb.String())
	return res
}

// Table3 reproduces total Dropbox traffic: flows, volume and devices per
// vantage point.
func Table3(c *Campaign) *Result {
	res := newResult("table3", "Table 3: Total Dropbox traffic in the datasets")
	tb := analysis.NewTable(res.Title, "name", "flows", "vol (GB)", "devices")
	var totFlows, totDev int
	var totVol float64
	c.perVP(func(ds *workload.Dataset) {
		recs := dropboxRecords(ds)
		vol := 0.0
		devices := make(map[uint64]bool)
		for _, r := range recs {
			vol += float64(r.BytesUp + r.BytesDown)
			if r.NotifyHost != 0 {
				devices[r.NotifyHost] = true
			}
		}
		tb.AddRow(ds.Cfg.Name, len(recs), fmtGB(vol), len(devices))
		res.Metrics["flows_"+ds.Cfg.Name] = float64(len(recs))
		res.Metrics["gb_"+ds.Cfg.Name] = vol / 1e9
		res.Metrics["devices_"+ds.Cfg.Name] = float64(len(devices))
		totFlows += len(recs)
		totVol += vol
		totDev += len(devices)
	})
	tb.AddRow("total", totFlows, fmtGB(totVol), totDev)
	res.Metrics["flows_total"] = float64(totFlows)
	res.Metrics["gb_total"] = totVol / 1e9
	res.Metrics["devices_total"] = float64(totDev)
	res.addText(tb.String())
	return res
}

// Table4Context compares Campus 1 before (Mar/Apr, client 1.2.52, server
// IW 2) and after (Jun/Jul, client 1.4.0, bundling + tuned IW) — the
// paper's quantification of the bundling deployment. Cancelling ctx aborts
// both campaigns at fleet-shard granularity.
func Table4Context(ctx context.Context, seed int64, scale float64) (*Result, error) {
	res := newResult("table4", "Table 4: Campus 1 before and after the bundling deployment")
	// Both campaigns route through the fleet engine with one shard, so the
	// records match the historical sequential generator while the two
	// populations generate concurrently.
	var before, after *workload.Dataset
	var errB, errA error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		before, errB = fleet.Dataset(ctx, workload.Campus1(scale), seed+10, fleet.Config{Shards: 1})
	}()
	go func() {
		defer wg.Done()
		after, errA = fleet.Dataset(ctx, workload.Campus1JunJul(scale), seed+11, fleet.Config{Shards: 1})
	}()
	wg.Wait()
	if errB != nil {
		return nil, errB
	}
	if errA != nil {
		return nil, errA
	}

	type stats struct {
		medSize, avgSize, medTp, avgTp map[classify.Direction]float64
	}
	collect := func(ds *workload.Dataset) stats {
		sizes := map[classify.Direction][]float64{}
		tps := map[classify.Direction][]float64{}
		for _, r := range clientStorageRecords(ds) {
			d := classify.TagStorage(r)
			p := classify.Payload(r, d)
			if p <= 0 {
				continue
			}
			sizes[d] = append(sizes[d], float64(p))
			tps[d] = append(tps[d], classify.Throughput(r, d))
		}
		s := stats{
			medSize: map[classify.Direction]float64{}, avgSize: map[classify.Direction]float64{},
			medTp: map[classify.Direction]float64{}, avgTp: map[classify.Direction]float64{},
		}
		for _, d := range []classify.Direction{classify.DirStore, classify.DirRetrieve} {
			s.medSize[d] = analysis.Median(sizes[d])
			s.avgSize[d] = analysis.Mean(sizes[d])
			s.medTp[d] = analysis.Median(tps[d]) / 1e3
			s.avgTp[d] = analysis.Mean(tps[d]) / 1e3
		}
		return s
	}
	b, a := collect(before), collect(after)
	tb := analysis.NewTable(res.Title, "metric", "Mar/Apr median", "Mar/Apr avg", "Jun/Jul median", "Jun/Jul avg")
	for _, d := range []classify.Direction{classify.DirStore, classify.DirRetrieve} {
		tb.AddRow("flow size "+d.String()+" (kB)",
			b.medSize[d]/1e3, b.avgSize[d]/1e3, a.medSize[d]/1e3, a.avgSize[d]/1e3)
		tb.AddRow("throughput "+d.String()+" (kbit/s)",
			b.medTp[d], b.avgTp[d], a.medTp[d], a.avgTp[d])
		key := d.String()
		res.Metrics["before_median_size_"+key] = b.medSize[d]
		res.Metrics["after_median_size_"+key] = a.medSize[d]
		res.Metrics["before_avg_tp_"+key] = b.avgTp[d] * 1e3
		res.Metrics["after_avg_tp_"+key] = a.avgTp[d] * 1e3
		res.Metrics["before_median_tp_"+key] = b.medTp[d] * 1e3
		res.Metrics["after_median_tp_"+key] = a.medTp[d] * 1e3
	}
	res.addText(tb.String())
	res.addText(fmt.Sprintf("\nretrieve avg throughput improvement: %.0f%% (paper: ≈65%%)\n",
		100*(res.Metrics["after_avg_tp_retrieve"]/res.Metrics["before_avg_tp_retrieve"]-1)))
	return res, nil
}

// Table4 regenerates the bundling before/after comparison.
//
// Deprecated: use Table4Context (cancellable, error-returning).
func Table4(seed int64, scale float64) *Result {
	res, _ := Table4Context(context.Background(), seed, scale)
	return res
}

// Table5 reproduces the user-group characterization of the home networks.
func Table5(c *Campaign) *Result {
	res := newResult("table5", "Table 5: User groups in Home 1 and Home 2")
	for _, name := range []string{"home1", "home2"} {
		ds := c.ByName(name)
		if ds == nil {
			continue
		}
		store, retr := householdVolumes(ds)
		clients := dropboxClients(ds)
		sessions := sessionsOf(ds)

		sessByIP := make(map[string]int)
		daysByIP := make(map[string]map[int]bool)
		for _, s := range sessions {
			ip := s.Client.String()
			sessByIP[ip]++
			if daysByIP[ip] == nil {
				daysByIP[ip] = make(map[int]bool)
			}
			for d := int(s.Start / (24 * time.Hour)); d <= int(s.End/(24*time.Hour)); d++ {
				daysByIP[ip][d] = true
			}
		}
		devs := classify.DevicesPerIP(ds.Records)

		type agg struct {
			addr, sess    int
			retr, store   float64
			days, devices float64
		}
		groups := map[classify.UserGroup]*agg{}
		for g := classify.GroupOccasional; g <= classify.GroupHeavy; g++ {
			groups[g] = &agg{}
		}
		totalAddr, totalSess := 0, 0
		for ip := range clients {
			g := classify.GroupOf(store[ip], retr[ip])
			a := groups[g]
			a.addr++
			a.sess += sessByIP[ip.String()]
			a.retr += float64(retr[ip])
			a.store += float64(store[ip])
			a.days += float64(len(daysByIP[ip.String()]))
			a.devices += float64(devs[ip])
			totalAddr++
			totalSess += sessByIP[ip.String()]
		}
		tb := analysis.NewTable(fmt.Sprintf("%s — %s", res.Title, name),
			"group", "addr frac", "sess frac", "retr (GB)", "store (GB)", "avg days", "avg devices")
		for g := classify.GroupOccasional; g <= classify.GroupHeavy; g++ {
			a := groups[g]
			if totalAddr == 0 {
				continue
			}
			addrFrac := float64(a.addr) / float64(totalAddr)
			sessFrac := 0.0
			if totalSess > 0 {
				sessFrac = float64(a.sess) / float64(totalSess)
			}
			avgDays, avgDev := 0.0, 0.0
			if a.addr > 0 {
				avgDays = a.days / float64(a.addr)
				avgDev = a.devices / float64(a.addr)
			}
			tb.AddRow(g.String(), addrFrac, sessFrac, fmtGB(a.retr), fmtGB(a.store), avgDays, avgDev)
			key := fmt.Sprintf("%s_%s", name, g.String())
			res.Metrics[key+"_addr"] = addrFrac
			res.Metrics[key+"_sess"] = sessFrac
			res.Metrics[key+"_devices"] = avgDev
		}
		res.addText(tb.String())
		res.addText("")
	}
	return res
}
