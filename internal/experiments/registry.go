package experiments

import (
	"context"
	"fmt"
	"path"
	"sync"
	"time"

	"insidedropbox/internal/backend"
	"insidedropbox/internal/capability"
	"insidedropbox/internal/fleet"
	"insidedropbox/internal/scenario"
	"insidedropbox/internal/traces"
	"insidedropbox/internal/workload"
)

// Needs declares which shared Session inputs an experiment consumes. The
// orchestration uses it to explain cost (packet labs run the full protocol
// stack) and to decide which experiments belong in a default selection.
type Needs struct {
	// Campaign: the experiment consumes the materialized four-vantage-point
	// campaign (built once per Session and shared).
	Campaign bool
	// Packet: the experiment drives the packet-level protocol stack (the
	// performance labs and the testbed dissection) — the slow experiments
	// a Spec can skip wholesale.
	Packet bool
	// OptIn: the experiment needs configuration beyond the campaign (the
	// fleet and what-if labs), so default selections exclude it unless the
	// Spec opts in or a pattern names it explicitly.
	OptIn bool
}

// Experiment is one registered table, figure or lab of the catalogue:
// everything cmd/experiments can regenerate, addressable by ID.
type Experiment struct {
	// ID is the unique selection key: "table4", "figure9", "whatif", ...
	ID string
	// Title is the catalogue label (the rendered Result carries the same
	// title, possibly with run parameters appended).
	Title string
	// Needs declares the Session inputs the experiment consumes.
	Needs Needs
	// Run executes the experiment against a Session. Shared inputs (the
	// campaign, the packet labs, the testbed) are built lazily on first
	// use and memoized, so running "figure9,figure10" pays for one lab.
	Run func(ctx context.Context, s *Session) (*Result, error)
}

// registry holds the catalogue in presentation order (tables first, then
// figures in paper order, then the beyond-the-paper labs).
var registry []Experiment

// registryIDs guards against duplicate registration.
var registryIDs = map[string]int{}

func register(e Experiment) {
	if _, dup := registryIDs[e.ID]; dup {
		panic("experiments: duplicate experiment id " + e.ID)
	}
	registryIDs[e.ID] = len(registry)
	registry = append(registry, e)
}

// Experiments returns the full catalogue in presentation order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID resolves one experiment by its exact ID.
func ByID(id string) (Experiment, bool) {
	i, ok := registryIDs[id]
	if !ok {
		return Experiment{}, false
	}
	return registry[i], true
}

// Select resolves glob-style patterns ("table4", "figure*", "figure1?")
// against the catalogue, returning matches in catalogue order with
// duplicates removed. With no patterns it returns the default selection:
// every experiment that is not opt-in. A pattern that matches nothing is
// an error, so typos fail instead of silently shrinking a run.
func Select(patterns ...string) ([]Experiment, error) {
	if len(patterns) == 0 {
		var out []Experiment
		for _, e := range registry {
			if !e.Needs.OptIn {
				out = append(out, e)
			}
		}
		return out, nil
	}
	picked := make([]bool, len(registry))
	for _, pat := range patterns {
		found := false
		for i, e := range registry {
			ok, err := path.Match(pat, e.ID)
			if err != nil {
				return nil, fmt.Errorf("experiments: bad pattern %q: %w", pat, err)
			}
			if ok {
				picked[i] = true
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("experiments: no experiment matches %q (see Experiments() for the catalogue)", pat)
		}
	}
	var out []Experiment
	for i, e := range registry {
		if picked[i] {
			out = append(out, e)
		}
	}
	return out, nil
}

// Session carries one run's inputs and memoizes the expensive shared
// artifacts — the materialized campaign, the packet-lab record sets and
// the testbed dissection — so any selection of experiments pays for each
// input once. Only successful builds memoize: a build aborted by a
// cancelled context is retried on the next call, so a Session survives an
// interrupted run and is safe to reuse across sequential (or concurrent)
// Run calls.
type Session struct {
	// Seed is the campaign seed (per-VP seeds derive from it exactly as
	// the historical entry points did).
	Seed int64
	// Scale is the per-VP population scaling. Scale.Campus1 also sizes the
	// Table 4 before/after populations and the what-if population, exactly
	// as the historical CLI did.
	Scale ScaleConfig
	// Fleet sizes the sharded engine for campaign generation and the
	// opt-in labs (DevicesScale applies only to the fleet lab; see
	// FleetScale).
	Fleet fleet.Config
	// Quick selects the small packet-lab configurations.
	Quick bool
	// FleetScale is the device multiplier of the opt-in "fleet" lab
	// (<= 0 means 1x).
	FleetScale float64
	// Profiles are the capability profiles of the opt-in "whatif" lab
	// (nil means the full preset catalogue).
	Profiles []capability.Profile
	// Backend is the capacity preset of the opt-in "backend/*" lab
	// (empty means the provisioned deployment; see backend.Presets).
	Backend string
	// Scenario is the loaded declarative scenario of the opt-in
	// "scenario/*" experiments (nil disables them). The spec's base
	// section wins over Seed and Fleet.Shards for the scenario stream;
	// Fleet.Workers still only affects wall-clock time.
	Scenario *scenario.Spec

	mu        sync.Mutex
	camp      *Campaign
	packStore []*traces.FlowRecord
	packRetr  []*traces.FlowRecord
	packCfg   PacketLabConfig
	packDone  bool
	tb        *TestbedResult
	beReqs    []backend.Request
	scComp    *scenario.Compiled
	scStream  *scenario.StreamResult
}

// Campaign returns the session's materialized four-vantage-point campaign,
// generating it on first use. Failed builds are not memoized.
func (s *Session) Campaign(ctx context.Context) (*Campaign, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.camp != nil {
		mCampaignHits.Inc()
		return s.camp, nil
	}
	mCampaignBuilds.Inc()
	camp, err := NewCampaign(ctx, s.Seed, s.Scale, s.Fleet)
	if err != nil {
		return nil, err
	}
	s.camp = camp
	return camp, nil
}

// PacketRecords returns the storage-flow records of both packet labs
// (store and retrieve), running the labs on first use. The returned lab
// config carries the path parameters (RTT, server IW) Figure 9 annotates.
// Failed runs are not memoized.
func (s *Session) PacketRecords(ctx context.Context) (store, retr []*traces.FlowRecord, cfg PacketLabConfig, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.packDone {
		mPacketHits.Inc()
		return s.packStore, s.packRetr, s.packCfg, nil
	}
	mPacketBuilds.Inc()
	storeCfg, retrCfg := DefaultPacketLab(false), DefaultPacketLab(true)
	if s.Quick {
		storeCfg, retrCfg = QuickPacketLab(false), QuickPacketLab(true)
	}
	storeRecs, err := RunPacketLab(ctx, storeCfg)
	if err != nil {
		return nil, nil, storeCfg, err
	}
	retrRecs, err := RunPacketLab(ctx, retrCfg)
	if err != nil {
		return nil, nil, storeCfg, err
	}
	s.packStore, s.packRetr, s.packCfg, s.packDone = storeRecs, retrRecs, storeCfg, true
	return storeRecs, retrRecs, storeCfg, nil
}

// Testbed returns the protocol dissection (Figs. 1 and 19), running the
// testbed on first use. Failed runs are not memoized.
func (s *Session) Testbed(ctx context.Context) (*TestbedResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tb != nil {
		mTestbedHits.Inc()
		return s.tb, nil
	}
	mTestbedBuilds.Inc()
	tb, err := RunTestbed(ctx, s.Seed)
	if err != nil {
		return nil, err
	}
	s.tb = tb
	return tb, nil
}

// campus1Scale is the Campus 1 population fraction shared by the Table 4
// and what-if experiments (the historical drivers sized both from the
// campaign's Campus 1 scale).
func (s *Session) campus1Scale() float64 {
	if s.Scale.Campus1 > 0 {
		return s.Scale.Campus1
	}
	return 1.0
}

// regCampaign registers a driver that consumes the shared campaign.
func regCampaign(id, title string, fn func(*Campaign) *Result) {
	register(Experiment{
		ID: id, Title: title, Needs: Needs{Campaign: true},
		Run: func(ctx context.Context, s *Session) (*Result, error) {
			c, err := s.Campaign(ctx)
			if err != nil {
				return nil, err
			}
			return fn(c), nil
		},
	})
}

func init() {
	register(Experiment{
		ID: "table1", Title: "Table 1: Domain names used by different Dropbox services",
		Run: func(ctx context.Context, s *Session) (*Result, error) { return Table1(), nil },
	})
	regCampaign("table2", "Table 2: Datasets overview", Table2)
	regCampaign("table3", "Table 3: Total Dropbox traffic in the datasets", Table3)
	register(Experiment{
		ID: "table4", Title: "Table 4: Campus 1 before and after the bundling deployment",
		Run: func(ctx context.Context, s *Session) (*Result, error) {
			return Table4Context(ctx, s.Seed, s.campus1Scale())
		},
	})
	regCampaign("table5", "Table 5: User groups in Home 1 and Home 2", Table5)

	register(Experiment{
		ID: "figure1", Title: "Figure 1: The Dropbox protocol (testbed dissection)",
		Needs: Needs{Packet: true},
		Run: func(ctx context.Context, s *Session) (*Result, error) {
			tb, err := s.Testbed(ctx)
			if err != nil {
				return nil, err
			}
			return tb.Figure1, nil
		},
	})
	regCampaign("figure2", "Figure 2: Popularity of cloud storage in Home 1", Figure2)
	regCampaign("figure3", "Figure 3: YouTube and Dropbox share in Campus 2", Figure3)
	regCampaign("figure4", "Figure 4: Traffic share of Dropbox servers", Figure4)
	regCampaign("figure5", "Figure 5: Number of contacted storage servers", Figure5)
	regCampaign("figure6", "Figure 6: Minimum RTT of storage and control flows", Figure6)
	regCampaign("figure7", "Figure 7: TCP flow sizes of file storage (Dropbox client)", Figure7)
	regCampaign("figure8", "Figure 8: Estimated number of chunks per storage flow", Figure8)
	register(Experiment{
		ID: "figure9", Title: "Figure 9: Throughput of storage flows (packet-level lab)",
		Needs: Needs{Packet: true},
		Run: func(ctx context.Context, s *Session) (*Result, error) {
			store, retr, cfg, err := s.PacketRecords(ctx)
			if err != nil {
				return nil, err
			}
			rtt := 2*cfg.CoreDelay + time.Millisecond
			return Figure9(store, retr, rtt, cfg.ServerIW), nil
		},
	})
	register(Experiment{
		ID: "figure10", Title: "Figure 10: Minimum duration of flows by chunk group",
		Needs: Needs{Packet: true},
		Run: func(ctx context.Context, s *Session) (*Result, error) {
			store, retr, _, err := s.PacketRecords(ctx)
			if err != nil {
				return nil, err
			}
			return Figure10(store, retr), nil
		},
	})
	regCampaign("figure11", "Figure 11: Data volume stored and retrieved per household", Figure11)
	regCampaign("figure12", "Figure 12: Devices per household (Dropbox client)", Figure12)
	regCampaign("figure13", "Figure 13: Number of namespaces per device", Figure13)
	regCampaign("figure14", "Figure 14: Distinct device start-ups per day", Figure14)
	regCampaign("figure15", "Figure 15: Daily usage of Dropbox on weekdays", Figure15)
	regCampaign("figure16", "Figure 16: Distribution of session durations", Figure16)
	regCampaign("figure17", "Figure 17: Storage via the main Web interface", Figure17)
	regCampaign("figure18", "Figure 18: Size of direct link downloads", Figure18)
	register(Experiment{
		ID: "figure19", Title: "Figure 19: Typical flows in storage operations (packet traces)",
		Needs: Needs{Packet: true},
		Run: func(ctx context.Context, s *Session) (*Result, error) {
			tb, err := s.Testbed(ctx)
			if err != nil {
				return nil, err
			}
			return tb.Figure19, nil
		},
	})
	regCampaign("figure20", "Figure 20: Bytes exchanged in storage flows (Campus 1) with f(u)", Figure20)
	regCampaign("figure21", "Figure 21: Payload per estimated chunk (reverse direction)", Figure21)

	register(Experiment{
		ID: "fleet", Title: "Fleet campaign: streaming aggregates at device scale",
		Needs: Needs{OptIn: true},
		Run: func(ctx context.Context, s *Session) (*Result, error) {
			fc := s.Fleet
			fc.DevicesScale = s.FleetScale
			rep, err := RunFleet(ctx, s.Seed, s.Scale, fc)
			if err != nil {
				return nil, err
			}
			return rep.Result(), nil
		},
	})
	register(Experiment{
		ID: "whatif", Title: "What-if: one population under multiple capability profiles",
		Needs: Needs{OptIn: true},
		Run: func(ctx context.Context, s *Session) (*Result, error) {
			profiles := s.Profiles
			if len(profiles) == 0 {
				profiles = capability.Presets()
			}
			rep, err := WhatIfConfig{
				Seed:     s.Seed,
				VP:       workload.Campus1(s.campus1Scale()),
				Fleet:    s.Fleet,
				Profiles: profiles,
			}.Run(ctx)
			if err != nil {
				return nil, err
			}
			return rep.Result(), nil
		},
	})

	registerBackend()
	registerScenario()
}
