// Package experiments contains one driver per table and figure of the
// paper, plus the campaign engines that feed them. Each driver consumes a
// Campaign (the four vantage-point datasets) or runs a dedicated
// packet-level lab, and produces a Result holding the rendered text
// (tables / ASCII figures) plus named metrics that the benchmark harness
// and EXPERIMENTS.md assertions consume.
//
// Three campaign engines coexist:
//
//   - RunCampaign / RunShardedCampaign materialize the four vantage-point
//     datasets (through the sharded fleet engine; 1 shard per VP
//     reproduces the historical sequential generator bit for bit);
//   - RunFleetCampaign streams populations too large to materialize into
//     bounded-memory fleet.Summary aggregates;
//   - RunWhatIf replays one population under several client capability
//     profiles (internal/capability) and tabulates storage volume, flow,
//     operation and sync-latency deltas against a baseline profile — the
//     generalization of the paper's Sec. 6 bundling analysis.
//
// See EXPERIMENTS.md at the repository root for the full catalogue, the
// determinism contract, and how each driver maps to the paper.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"insidedropbox/internal/analysis"
	"insidedropbox/internal/classify"
	"insidedropbox/internal/dnssim"
	"insidedropbox/internal/fleet"
	"insidedropbox/internal/traces"
	"insidedropbox/internal/wire"
	"insidedropbox/internal/workload"
)

// Result is one regenerated table or figure.
type Result struct {
	ID      string // "table2", "figure9", ...
	Title   string
	Text    string
	Metrics map[string]float64

	// Meta is ordered provenance metadata (seed, scale, shards, ...)
	// attached by the Run orchestration. Renderers honor insertion order;
	// legacy drivers leave it nil, keeping their output byte-identical.
	Meta []MetaEntry
}

// MetaEntry is one ordered provenance key/value pair on a Result.
type MetaEntry struct {
	Key, Value string
}

// AddMeta appends one provenance entry, preserving insertion order.
func (r *Result) AddMeta(key, value string) {
	r.Meta = append(r.Meta, MetaEntry{Key: key, Value: value})
}

func newResult(id, title string) *Result {
	return &Result{ID: id, Title: title, Metrics: make(map[string]float64)}
}

func (r *Result) addText(s string) {
	if r.Text != "" && !strings.HasSuffix(r.Text, "\n") {
		r.Text += "\n"
	}
	r.Text += s
}

// Campaign bundles the four vantage-point datasets of the study.
type Campaign struct {
	Seed     int64
	Datasets []*workload.Dataset // campus1, campus2, home1, home2 order
}

// ByName returns a dataset by vantage point name (nil if absent).
func (c *Campaign) ByName(name string) *workload.Dataset {
	for _, ds := range c.Datasets {
		if ds.Cfg.Name == name {
			return ds
		}
	}
	return nil
}

// ScaleConfig sets per-VP population scaling (fraction of the paper's
// population; the runtime and memory budget of a laptop run).
type ScaleConfig struct {
	Campus1, Campus2, Home1, Home2 float64
}

// DefaultScale keeps a full campaign around a few hundred thousand flows.
func DefaultScale() ScaleConfig {
	return ScaleConfig{Campus1: 1.0, Campus2: 0.25, Home1: 0.08, Home2: 0.08}
}

// SmallScale is used by unit tests and quick benchmarks.
func SmallScale() ScaleConfig {
	return ScaleConfig{Campus1: 0.4, Campus2: 0.08, Home1: 0.03, Home2: 0.03}
}

// vpConfigs returns the four vantage point configs in campaign order with
// their per-VP seed offsets (stable since the first release, so campaign
// results are reproducible across engine versions).
func vpConfigs(sc ScaleConfig) []workload.VPConfig {
	return []workload.VPConfig{
		workload.Campus1(sc.Campus1),
		workload.Campus2(sc.Campus2),
		workload.Home1(sc.Home1),
		workload.Home2(sc.Home2),
	}
}

// NewCampaign materializes a campaign through the fleet engine: each
// vantage point's population is split into fc.Shards deterministic shards
// generated on fc.Workers workers, and the four vantage points run
// concurrently. fc.Shards == 1 reproduces the historical sequential
// generator output exactly; higher shard counts trade sample identity for
// multi-core wall-clock speed at identical population sizes.
//
// Cancelling ctx aborts generation at fleet-shard granularity and returns
// ctx.Err() with a nil campaign.
func NewCampaign(ctx context.Context, seed int64, sc ScaleConfig, fc fleet.Config) (*Campaign, error) {
	cfgs := vpConfigs(sc)
	datasets := make([]*workload.Dataset, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(i int, cfg workload.VPConfig) {
			defer wg.Done()
			datasets[i], errs[i] = fleet.Dataset(ctx, cfg, seed+int64(i)+1, fc)
		}(i, cfg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Campaign{Seed: seed, Datasets: datasets}, nil
}

// RunCampaign generates all four vantage points.
//
// Deprecated: RunCampaign is the pre-context entry point, kept bit-
// identical. Use NewCampaign (cancellable, error-returning).
func RunCampaign(seed int64, sc ScaleConfig) *Campaign {
	return RunShardedCampaign(seed, sc, fleet.Config{Shards: 1})
}

// RunShardedCampaign materializes a campaign through the fleet engine.
//
// Deprecated: use NewCampaign.
func RunShardedCampaign(seed int64, sc ScaleConfig, fc fleet.Config) *Campaign {
	c, _ := NewCampaign(context.Background(), seed, sc, fc)
	return c
}

// ---------- shared helpers ----------

// dropboxRecords filters a dataset to Dropbox flows.
func dropboxRecords(ds *workload.Dataset) []*traces.FlowRecord {
	var out []*traces.FlowRecord
	for _, r := range ds.Records {
		if classify.ProviderOf(r) == classify.ProvDropbox {
			out = append(out, r)
		}
	}
	return out
}

// clientStorageRecords filters to client storage (dl-clientX) flows.
func clientStorageRecords(ds *workload.Dataset) []*traces.FlowRecord {
	var out []*traces.FlowRecord
	for _, r := range ds.Records {
		if classify.ProviderOf(r) != classify.ProvDropbox {
			continue
		}
		if classify.DropboxService(r) == dnssim.SvcClientStorage {
			out = append(out, r)
		}
	}
	return out
}

// householdVolumes accumulates per-IP store/retrieve payload volumes of
// client storage flows.
func householdVolumes(ds *workload.Dataset) (store, retr map[wire.IP]int64) {
	store = make(map[wire.IP]int64)
	retr = make(map[wire.IP]int64)
	for _, r := range clientStorageRecords(ds) {
		switch classify.TagStorage(r) {
		case classify.DirStore:
			store[r.Client] += classify.Payload(r, classify.DirStore)
		case classify.DirRetrieve:
			retr[r.Client] += classify.Payload(r, classify.DirRetrieve)
		}
	}
	return store, retr
}

// dropboxClients returns the set of IPs with a Dropbox client (seen on the
// notification protocol).
func dropboxClients(ds *workload.Dataset) map[wire.IP]bool {
	out := make(map[wire.IP]bool)
	for _, r := range ds.Records {
		if r.NotifyHost != 0 {
			out[r.Client] = true
		}
	}
	return out
}

// sessionsOf reconstructs device sessions from notification flows.
func sessionsOf(ds *workload.Dataset) []classify.Session {
	return classify.Sessions(dropboxRecords(ds), 5*time.Minute)
}

// perVP runs fn over every dataset in campaign order.
func (c *Campaign) perVP(fn func(ds *workload.Dataset)) {
	for _, ds := range c.Datasets {
		fn(ds)
	}
}

// fmtGB renders bytes as gigabytes with two decimals.
func fmtGB(v float64) string { return fmt.Sprintf("%.2f", v/1e9) }

// sortedIPs returns map keys in stable order.
func sortedIPs[V any](m map[wire.IP]V) []wire.IP {
	keys := make([]wire.IP, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// All runs every campaign-level experiment (packet-level labs excluded;
// see RunPacketLabs) and returns results in paper order.
func All(c *Campaign) []*Result {
	return []*Result{
		Table1(),
		Table2(c),
		Table3(c),
		Table5(c),
		Figure2(c),
		Figure3(c),
		Figure4(c),
		Figure5(c),
		Figure6(c),
		Figure7(c),
		Figure8(c),
		Figure11(c),
		Figure12(c),
		Figure13(c),
		Figure14(c),
		Figure15(c),
		Figure16(c),
		Figure17(c),
		Figure18(c),
		Figure20(c),
		Figure21(c),
	}
}

// suppress unused warnings for helpers exercised across files.
var _ = analysis.Mean
