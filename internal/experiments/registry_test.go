package experiments

import (
	"context"
	"errors"
	"testing"

	"insidedropbox/internal/capability"
	"insidedropbox/internal/fleet"
)

// TestRegistryCatalogueComplete pins the catalogue contract: every table,
// figure and lab of the paper is registered exactly once under its ID.
func TestRegistryCatalogueComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "table4", "table5",
		"figure1", "figure2", "figure3", "figure4", "figure5", "figure6",
		"figure7", "figure8", "figure9", "figure10", "figure11", "figure12",
		"figure13", "figure14", "figure15", "figure16", "figure17",
		"figure18", "figure19", "figure20", "figure21",
		"fleet", "whatif",
		"backend/baseline", "backend/saturation", "backend/policies",
		"scenario/cohorts", "scenario/flash-crowd",
	}
	cat := Experiments()
	seen := map[string]bool{}
	for _, e := range cat {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete (title %q, run nil=%v)", e.ID, e.Title, e.Run == nil)
		}
	}
	for _, id := range want {
		if !seen[id] {
			t.Errorf("catalogue missing %q", id)
		}
	}
	if len(cat) != len(want) {
		t.Errorf("catalogue has %d experiments, want %d", len(cat), len(want))
	}
}

func TestRegistryByID(t *testing.T) {
	e, ok := ByID("figure9")
	if !ok || e.ID != "figure9" || !e.Needs.Packet {
		t.Fatalf("ByID(figure9) = %+v, %v", e, ok)
	}
	if _, ok := ByID("figure99"); ok {
		t.Fatal("ByID accepted an unknown id")
	}
}

func TestSelectDefaultsAndGlobs(t *testing.T) {
	// Default selection: everything except the opt-in labs.
	def, err := Select()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range def {
		if e.Needs.OptIn {
			t.Errorf("default selection includes opt-in %q", e.ID)
		}
	}
	if len(def) != len(Experiments())-7 {
		t.Errorf("default selection has %d entries, want all but fleet+whatif+backend/*+scenario/* (%d)",
			len(def), len(Experiments())-7)
	}

	// Globs match in catalogue order, opt-ins included when named.
	sel, err := Select("table*", "whatif")
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(sel))
	for i, e := range sel {
		ids[i] = e.ID
	}
	wantIDs := []string{"table1", "table2", "table3", "table4", "table5", "whatif"}
	if len(ids) != len(wantIDs) {
		t.Fatalf("Select(table*, whatif) = %v, want %v", ids, wantIDs)
	}
	for i := range ids {
		if ids[i] != wantIDs[i] {
			t.Fatalf("Select(table*, whatif) = %v, want %v", ids, wantIDs)
		}
	}

	// Overlapping patterns don't duplicate.
	sel, err = Select("table4", "table*")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 5 {
		t.Fatalf("overlapping patterns duplicated entries: %d", len(sel))
	}

	// Unknown patterns are an error, not a silent no-op.
	if _, err := Select("table9"); err == nil {
		t.Fatal("Select accepted a pattern matching nothing")
	}
}

// TestSessionSharesCampaign pins the memoization contract: every
// campaign-consuming experiment in a session sees the same materialized
// campaign.
func TestSessionSharesCampaign(t *testing.T) {
	s := &Session{Seed: 2012, Scale: ScaleConfig{Campus1: 0.1, Campus2: 0.02, Home1: 0.01, Home2: 0.01},
		Fleet: fleet.Config{Shards: 1}}
	ctx := context.Background()
	c1, err := s.Campaign(ctx)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Campaign(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("session rebuilt the campaign")
	}

	e, _ := ByID("table2")
	r, err := e.Run(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "table2" || r.Text == "" {
		t.Fatalf("registry run produced incomplete result %+v", r.ID)
	}
}

// TestSessionRetriesAfterCancelledBuild: a session whose shared input
// build was aborted by a cancelled context must retry (not latch the
// error) on the next call.
func TestSessionRetriesAfterCancelledBuild(t *testing.T) {
	s := &Session{Seed: 1, Scale: ScaleConfig{Campus1: 0.1, Campus2: 0.02, Home1: 0.01, Home2: 0.01}}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Campaign(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled build: err = %v", err)
	}
	c, err := s.Campaign(context.Background())
	if err != nil || c == nil {
		t.Fatalf("session latched the cancelled build: campaign=%v err=%v", c, err)
	}
}

// TestCancelNewCampaign: a cancelled context aborts campaign
// materialization with ctx.Err().
func TestCancelNewCampaign(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c, err := NewCampaign(ctx, 1, SmallScale(), fleet.Config{Shards: 4})
	if !errors.Is(err, context.Canceled) || c != nil {
		t.Fatalf("NewCampaign under cancelled ctx: campaign=%v err=%v", c, err)
	}
}

// TestCancelPacketLab: the packet lab must notice cancellation at its
// simulation-slice boundaries and return ctx.Err() promptly.
func TestCancelPacketLab(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	recs, err := RunPacketLab(ctx, QuickPacketLab(false))
	if !errors.Is(err, context.Canceled) || recs != nil {
		t.Fatalf("RunPacketLab under cancelled ctx: recs=%d err=%v", len(recs), err)
	}
}

// TestCancelTestbed: same contract for the protocol dissection.
func TestCancelTestbed(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tb, err := RunTestbed(ctx, 7)
	if !errors.Is(err, context.Canceled) || tb != nil {
		t.Fatalf("RunTestbed under cancelled ctx: tb=%v err=%v", tb, err)
	}
}

// TestCancelWhatIf: profile replays abort at fleet-shard granularity.
func TestCancelWhatIf(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := WhatIfConfig{
		Seed: 1, VP: whatIfVP(0.1), Fleet: fleet.Config{Shards: 2},
		Profiles: []capability.Profile{capability.DropboxV1252()},
	}.Run(ctx)
	if !errors.Is(err, context.Canceled) || rep != nil {
		t.Fatalf("what-if under cancelled ctx: rep=%v err=%v", rep, err)
	}
}

// TestCancelRunFleet: the streaming campaign surfaces ctx.Err().
func TestCancelRunFleet(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunFleet(ctx, 1, SmallScale(), fleet.Config{Shards: 2})
	if !errors.Is(err, context.Canceled) || rep != nil {
		t.Fatalf("RunFleet under cancelled ctx: rep=%v err=%v", rep, err)
	}
}

// TestResultMeta: ordered metadata renders in insertion order and legacy
// results carry none.
func TestResultMeta(t *testing.T) {
	r := newResult("x", "X")
	if len(r.Meta) != 0 {
		t.Fatal("fresh result carries metadata")
	}
	r.AddMeta("seed", "2012")
	r.AddMeta("shards", "8")
	if r.Meta[0].Key != "seed" || r.Meta[1].Key != "shards" {
		t.Fatalf("metadata order not preserved: %+v", r.Meta)
	}
}
