package experiments

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"insidedropbox/internal/capability"
	"insidedropbox/internal/fleet"
	"insidedropbox/internal/workload"
)

// whatIfVP is a fast test population: Campus 1 trimmed to a week.
func whatIfVP(scale float64) workload.VPConfig {
	cfg := workload.Campus1(scale)
	cfg.Days = 7
	return cfg
}

// TestWhatIfPresetMatchesLegacyFleetRun pins the acceptance criterion: a
// what-if run under the dropbox-1.2.52 preset is bit-identical to the
// legacy Version-based fleet campaign of the same population — same flows,
// same bytes, same streaming aggregates.
func TestWhatIfPresetMatchesLegacyFleetRun(t *testing.T) {
	vp := whatIfVP(0.2)
	fc := fleet.Config{Shards: 2}

	legacySum, legacyStats, err := fleet.Summarize(context.Background(), vp, 2012, fc)
	if err != nil {
		t.Fatal(err)
	}

	rep := RunWhatIf(WhatIfConfig{
		Seed: 2012, VP: vp, Fleet: fc,
		Profiles: []capability.Profile{capability.DropboxV1252()},
	})
	run := rep.ByProfile("dropbox-1.2.52")
	if run == nil {
		t.Fatal("baseline run missing from report")
	}
	if !reflect.DeepEqual(run.Agg.Summary, legacySum) {
		t.Fatalf("preset summary diverged from legacy fleet summary:\npreset %+v\nlegacy %+v",
			run.Agg.Summary.Metrics(), legacySum.Metrics())
	}
	if run.Stats.Records != legacyStats.Records || run.Stats.Devices != legacyStats.Devices {
		t.Fatalf("ground truth diverged: %+v vs %+v", run.Stats, legacyStats)
	}
}

// TestWhatIfWorkerInvariance pins determinism across worker counts for a
// profile whose branches draw extra randomness: results depend on (seed,
// population, shards, profile), never on scheduling.
func TestWhatIfWorkerInvariance(t *testing.T) {
	vp := whatIfVP(0.15)
	profiles := []capability.Profile{capability.DropboxV140(), capability.NoDedup()}
	run := func(workers int) *Result {
		return RunWhatIf(WhatIfConfig{
			Seed: 5, VP: vp,
			Fleet:    fleet.Config{Shards: 4, Workers: workers},
			Profiles: profiles,
		}).Result()
	}
	one, four := run(1), run(4)
	if one.Text != four.Text {
		t.Fatalf("what-if table changed with worker count:\n%s\nvs\n%s", one.Text, four.Text)
	}
	if !reflect.DeepEqual(one.Metrics, four.Metrics) {
		t.Fatalf("what-if metrics changed with worker count:\n%v\nvs\n%v", one.Metrics, four.Metrics)
	}
}

// TestWhatIfTableGolden is the reproducibility golden: the rendered table
// is byte-identical across runs, covers every requested profile with
// absolute metrics, and reports baseline-relative deltas.
func TestWhatIfTableGolden(t *testing.T) {
	cfg := WhatIfConfig{
		Seed: 99, VP: whatIfVP(0.2),
		Fleet: fleet.Config{Shards: 2},
		Profiles: []capability.Profile{
			capability.DropboxV1252(),
			capability.DropboxV140(),
			capability.NoDedup(),
			capability.FullPipeline(),
		},
	}
	res := RunWhatIf(cfg).Result()
	again := RunWhatIf(cfg).Result()
	if res.Text != again.Text {
		t.Fatal("what-if table not reproducible across runs")
	}
	for _, p := range cfg.Profiles {
		if !strings.Contains(res.Text, p.Name) {
			t.Fatalf("table missing profile %q:\n%s", p.Name, res.Text)
		}
		for _, metric := range []string{"store_gb_", "retrieve_gb_", "storage_flows_", "ops_", "store_med_ms_"} {
			if _, ok := res.Metrics[metric+p.Name]; !ok {
				t.Fatalf("metric %s%s missing", metric, p.Name)
			}
		}
		if res.Metrics["storage_flows_"+p.Name] <= 0 {
			t.Fatalf("profile %s generated no storage flows", p.Name)
		}
	}
	if !strings.Contains(res.Text, "Deltas versus baseline dropbox-1.2.52") {
		t.Fatalf("delta table missing:\n%s", res.Text)
	}
	if !strings.Contains(res.Text, "Reproducibility keys:") {
		t.Fatal("reproducibility keys missing")
	}

	// Directional physics on the same seed: the bundling client must need
	// fewer storage operations than the per-chunk client (Sec. 6 — the
	// saving concentrates in multi-chunk transfers, so small populations
	// see a modest but strictly positive reduction), and disabling dedup
	// must move more bytes than the same client with dedup.
	if res.Metrics["ops_dropbox-1.4.0"] >= res.Metrics["ops_dropbox-1.2.52"] {
		t.Fatalf("bundling did not reduce ops: %v vs %v",
			res.Metrics["ops_dropbox-1.4.0"], res.Metrics["ops_dropbox-1.2.52"])
	}
	if res.Metrics["store_gb_no-dedup"] <= res.Metrics["store_gb_dropbox-1.4.0"] {
		t.Fatalf("no-dedup store volume %v not above 1.4.0 %v",
			res.Metrics["store_gb_no-dedup"], res.Metrics["store_gb_dropbox-1.4.0"])
	}
}
