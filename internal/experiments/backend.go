package experiments

import (
	"context"
	"fmt"
	"time"

	"insidedropbox/internal/analysis"
	"insidedropbox/internal/backend"
	"insidedropbox/internal/telemetry"
	"insidedropbox/internal/workload"
)

// Backend arrival-set memoization telemetry, mirroring the campaign and
// packet-lab counters: builds=1 per Session however many backend
// experiments run.
var (
	mArrivalHits   = telemetry.NewCounter("session.arrival_hits")
	mArrivalBuilds = telemetry.NewCounter("session.arrival_builds")
)

// home1Scale is the Home 1 population fraction the backend lab feeds on
// (the household vantage point carries the full service mix: storage,
// control and notification traffic).
func (s *Session) home1Scale() float64 {
	if s.Scale.Home1 > 0 {
		return s.Scale.Home1
	}
	return 1.0
}

// backendPreset resolves the Session's backend capacity preset (empty
// means the healthy provisioned deployment).
func (s *Session) backendPreset() string {
	if s.Backend != "" {
		return s.Backend
	}
	return backend.PresetProvisioned
}

// Arrivals returns the session's backend arrival set — the Home 1
// population streamed through the sharded fleet engine and reduced to
// server-side requests in canonical order — collecting it on first use so
// any selection of backend experiments pays for one collection. The seed
// derives as Seed+3, exactly the campaign's Home 1 offset, so the
// arrivals correspond to the campaign dataset the other experiments see.
// Failed collections are not memoized.
func (s *Session) Arrivals(ctx context.Context) ([]backend.Request, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.beReqs != nil {
		mArrivalHits.Inc()
		return s.beReqs, nil
	}
	mArrivalBuilds.Inc()
	reqs, _, err := backend.CollectArrivals(ctx, workload.Home1(s.home1Scale()), s.Seed+3, s.Fleet)
	if err != nil {
		return nil, err
	}
	s.beReqs = reqs
	return reqs, nil
}

// registerBackend appends the opt-in backend capacity lab to the
// catalogue; the registry init calls it last so the backend family lands
// after the fleet and what-if labs in presentation order.
func registerBackend() {
	register(Experiment{
		ID: "backend/baseline", Title: "Backend: server-side load response under a capacity preset",
		Needs: Needs{OptIn: true},
		Run:   runBackendBaseline,
	})
	register(Experiment{
		ID: "backend/saturation", Title: "Backend: saturation ramp across the provisioned knee",
		Needs: Needs{OptIn: true},
		Run:   runBackendSaturation,
	})
	register(Experiment{
		ID: "backend/policies", Title: "Backend: admission and routing policies under overload",
		Needs: Needs{OptIn: true},
		Run:   runBackendPolicies,
	})
}

// runBackendBaseline replays the session's arrival set against its
// configured preset and reports the full load response: per-node
// utilization and queue depths, drop counts and the queueing-delay
// distribution.
func runBackendBaseline(ctx context.Context, s *Session) (*Result, error) {
	reqs, err := s.Arrivals(ctx)
	if err != nil {
		return nil, err
	}
	preset := s.backendPreset()
	cfg, err := backend.PresetConfig(preset, reqs)
	if err != nil {
		return nil, err
	}
	rep, err := backend.Simulate(ctx, cfg, reqs)
	if err != nil {
		return nil, err
	}

	res := newResult("backend/baseline",
		fmt.Sprintf("Backend baseline: %d requests under the %q preset", rep.Requests, preset))
	tb := analysis.NewTable("Per-node load response",
		"node", "served", "dropped", "shed", "util", "queue max", "p95 delay")
	for _, n := range rep.Nodes {
		util := "-"
		if n.Concurrency > 0 {
			util = fmt.Sprintf("%.1f%%", 100*n.Utilization)
		}
		tb.AddRow(n.Name, n.Served, n.Dropped, n.Shed, util, n.QueueMax,
			time.Duration(n.Delay.Quantile(0.95)).Round(time.Microsecond).String())
	}
	res.addText(tb.String())
	res.addText(fmt.Sprintf(
		"\n%d served / %d dropped / %d shed of %d requests (%s / %s admission-routing)\n"+
			"queueing delay mean %v, p95 %v, p99 %v over a %v horizon\n",
		rep.Served, rep.Dropped, rep.Shed, rep.Requests, rep.Admission, rep.Routing,
		rep.MeanDelay().Round(time.Microsecond),
		rep.DelayQuantile(0.95).Round(time.Microsecond),
		rep.DelayQuantile(0.99).Round(time.Microsecond),
		rep.Horizon.Round(time.Second)))
	for k, v := range rep.Metrics() {
		res.Metrics[k] = v
	}
	return res, nil
}

// runBackendSaturation is the saturation analyzer as an experiment: the
// provisioned deployment held fixed while offered load ramps through its
// knee, reporting the delay and drop response at each point.
func runBackendSaturation(ctx context.Context, s *Session) (*Result, error) {
	reqs, err := s.Arrivals(ctx)
	if err != nil {
		return nil, err
	}
	cfg, err := backend.PresetConfig(backend.PresetProvisioned, reqs)
	if err != nil {
		return nil, err
	}
	knee, ok := backend.SaturationPoint(cfg, reqs)
	if !ok {
		return nil, fmt.Errorf("backend/saturation: provisioned preset has no bounded class")
	}

	res := newResult("backend/saturation",
		fmt.Sprintf("Backend saturation ramp (knee at %.2fx the base offered load)", knee))
	res.Metrics["knee_multiplier"] = knee
	tb := analysis.NewTable("Offered load vs. delay and drops",
		"load/capacity", "served", "dropped+shed", "mean delay", "p95", "p99")
	for _, f := range []float64{0.25, 0.5, 1, 2, 4} {
		rep, err := backend.Simulate(ctx, cfg, backend.ScaleLoad(reqs, f*knee))
		if err != nil {
			return nil, err
		}
		tb.AddRow(fmt.Sprintf("%.2fx", f), rep.Served, rep.Dropped+rep.Shed,
			rep.MeanDelay().Round(time.Microsecond).String(),
			rep.DelayQuantile(0.95).Round(time.Microsecond).String(),
			rep.DelayQuantile(0.99).Round(time.Microsecond).String())
		suffix := fmt.Sprintf("_x%g", f)
		res.Metrics["delay_mean_ms"+suffix] = rep.Delay.Mean() / 1e6
		res.Metrics["delay_p95_ms"+suffix] = rep.Delay.Quantile(0.95) / 1e6
		res.Metrics["drop_rate"+suffix] = rep.DropRate()
	}
	res.addText(tb.String())
	res.addText("\nload/capacity is the offered load relative to the deployment's aggregate\n" +
		"service capacity: below 1x delays stay near zero, past it queues grow without\n" +
		"bound and the bounded queues start dropping.\n")
	return res, nil
}

// runBackendPolicies compares every admission x routing policy pair on the
// same under-provisioned deployment at twice its knee — the regime where
// overload policy actually matters.
func runBackendPolicies(ctx context.Context, s *Session) (*Result, error) {
	reqs, err := s.Arrivals(ctx)
	if err != nil {
		return nil, err
	}
	cfg, err := backend.PresetConfig(backend.PresetScarce, reqs)
	if err != nil {
		return nil, err
	}
	knee, ok := backend.SaturationPoint(cfg, reqs)
	if !ok {
		return nil, fmt.Errorf("backend/policies: scarce preset has no bounded class")
	}
	load := backend.ScaleLoad(reqs, 2*knee)

	res := newResult("backend/policies",
		fmt.Sprintf("Backend policies at 2x the scarce knee (%d requests)", len(load)))
	tb := analysis.NewTable("Admission x routing under overload",
		"admission", "routing", "served", "dropped", "shed", "mean delay", "p95")
	for _, adm := range []backend.AdmissionPolicy{backend.AdmitQueue, backend.AdmitReject, backend.AdmitShed} {
		for _, rt := range []backend.RoutingPolicy{backend.RouteRoundRobin, backend.RouteLeastLoaded, backend.RouteRegionAffine} {
			c := cfg
			c.Admission, c.Routing = adm, rt
			rep, err := backend.Simulate(ctx, c, load)
			if err != nil {
				return nil, err
			}
			tb.AddRow(string(adm), string(rt), rep.Served, rep.Dropped, rep.Shed,
				rep.MeanDelay().Round(time.Microsecond).String(),
				rep.DelayQuantile(0.95).Round(time.Microsecond).String())
			key := string(adm) + "_" + string(rt)
			res.Metrics["served_"+key] = float64(rep.Served)
			res.Metrics["drop_rate_"+key] = rep.DropRate()
			res.Metrics["delay_p95_ms_"+key] = rep.Delay.Quantile(0.95) / 1e6
		}
	}
	res.addText(tb.String())
	res.addText("\nqueue admission maximizes served requests at the cost of stale waiting;\n" +
		"reject bounds delay by refusing on arrival; shed drops the oldest waiter\n" +
		"for the newest — the freshness-first overload shape.\n")
	return res, nil
}
