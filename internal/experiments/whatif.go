package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"insidedropbox/internal/analysis"
	"insidedropbox/internal/capability"
	"insidedropbox/internal/classify"
	"insidedropbox/internal/fleet"
	"insidedropbox/internal/traces"
	"insidedropbox/internal/workload"
)

// WhatIfConfig drives a capability what-if campaign: the same sharded
// fleet population generated once per capability profile, each run reduced
// to streaming aggregates and compared against the first profile (the
// baseline). It generalizes the paper's Sec. 6 bundling analysis — which
// compared exactly two client capabilities across two captures — to any
// point in the capability space.
type WhatIfConfig struct {
	// Seed is the campaign seed, shared by every profile run so the
	// populations draw from the same stream. Profiles that change
	// operation structure resample parts of it; see the determinism notes
	// in the capability package.
	Seed int64
	// VP is the vantage-point population to replay under each profile.
	VP workload.VPConfig
	// Fleet sizes the sharded engine for every run.
	Fleet fleet.Config
	// Profiles are the capability profiles to compare. Profiles[0] is the
	// baseline the delta columns reference.
	Profiles []capability.Profile
}

// WhatIfAgg is the streaming aggregate of one profile run: the standard
// fleet Summary plus the what-if comparison extras — storage operation
// counts estimated from PSH flags with the paper's Appendix A.3 estimator
// (classify.EstimateChunks, which counts one data message per operation
// and clamps at the 100-per-batch protocol bound) and sync-latency
// distributions (per-flow transfer durations in milliseconds).
type WhatIfAgg struct {
	Summary *fleet.Summary

	// StoreOps / RetrieveOps estimate storage operations from PSH flags.
	StoreOps, RetrieveOps int64

	// StoreLatency / RetrieveLatency hold per-flow transfer durations in
	// milliseconds — the client-visible sync latency of each flow.
	StoreLatency, RetrieveLatency fleet.LogHist
}

// NewWhatIfAgg builds the aggregator for a campaign of the given length.
func NewWhatIfAgg(days int) *WhatIfAgg {
	return &WhatIfAgg{Summary: fleet.NewSummary(days)}
}

// Consume implements fleet.Sink. Records are classified once and the
// result shared with the embedded Summary; operations come from the
// paper's own PSH-based estimator (Appendix A.3).
func (a *WhatIfAgg) Consume(r *traces.FlowRecord) {
	c := fleet.ClassifyRecord(r)
	a.Summary.ConsumeClassified(r, c)
	if !c.Storage() {
		return
	}
	switch c.Dir {
	case classify.DirStore:
		a.StoreOps += int64(classify.EstimateChunks(r, c.Dir))
		a.StoreLatency.Observe(classify.TransferDuration(r, c.Dir).Seconds() * 1e3)
	case classify.DirRetrieve:
		a.RetrieveOps += int64(classify.EstimateChunks(r, c.Dir))
		a.RetrieveLatency.Observe(classify.TransferDuration(r, c.Dir).Seconds() * 1e3)
	}
}

// Merge implements fleet.Aggregator.
func (a *WhatIfAgg) Merge(other fleet.Aggregator) {
	o := other.(*WhatIfAgg)
	a.Summary.Merge(o.Summary)
	a.StoreOps += o.StoreOps
	a.RetrieveOps += o.RetrieveOps
	a.StoreLatency.MergeHist(&o.StoreLatency)
	a.RetrieveLatency.MergeHist(&o.RetrieveLatency)
}

// WhatIfRun is one profile's outcome.
type WhatIfRun struct {
	Profile capability.Profile
	Stats   fleet.VPStats
	Agg     *WhatIfAgg
}

// WhatIfReport is the full what-if campaign outcome: one run per profile,
// baseline first.
type WhatIfReport struct {
	Config WhatIfConfig
	Runs   []*WhatIfRun
}

// ByProfile returns a profile's run by name (nil if absent).
func (r *WhatIfReport) ByProfile(name string) *WhatIfRun {
	for _, run := range r.Runs {
		if run.Profile.Name == name {
			return run
		}
	}
	return nil
}

// Run executes the what-if campaign: every profile replays the same
// vantage-point population through the sharded fleet engine concurrently,
// aggregated with bounded memory. Determinism: each (seed, population,
// shards, profile) run is bit-reproducible regardless of worker count or
// how many profiles run alongside it, and the two Dropbox presets
// reproduce the legacy Version-based campaign output exactly.
//
// Cancelling ctx aborts every profile run at fleet-shard granularity and
// returns ctx.Err() with a nil report.
func (cfg WhatIfConfig) Run(ctx context.Context) (*WhatIfReport, error) {
	fc := cfg.Fleet
	if fc.Workers == 0 && len(cfg.Profiles) > 1 {
		// Profile runs are themselves parallel; divide the default worker
		// budget across them instead of oversubscribing the CPU N-fold.
		// Worker counts never change results, only wall-clock time.
		fc.Workers = max(1, runtime.GOMAXPROCS(0)/len(cfg.Profiles))
	}
	report := &WhatIfReport{Config: cfg, Runs: make([]*WhatIfRun, len(cfg.Profiles))}
	errs := make([]error, len(cfg.Profiles))
	var wg sync.WaitGroup
	for i := range cfg.Profiles {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prof := cfg.Profiles[i]
			vp := cfg.VP
			vp.Caps = &prof
			days := vp.Days
			var agg fleet.Aggregator
			var stats fleet.VPStats
			agg, stats, errs[i] = fleet.Aggregate(ctx, vp, cfg.Seed, fc,
				func(int) fleet.Aggregator { return NewWhatIfAgg(days) })
			report.Runs[i] = &WhatIfRun{Profile: prof, Stats: stats, Agg: agg.(*WhatIfAgg)}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return report, nil
}

// RunWhatIf executes a what-if campaign.
//
// Deprecated: use WhatIfConfig.Run (cancellable, error-returning).
func RunWhatIf(cfg WhatIfConfig) *WhatIfReport {
	report, _ := cfg.Run(context.Background())
	return report
}

// pctDelta renders a percentage change versus a baseline value.
func pctDelta(v, base float64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(v/base-1))
}

// Result renders the report as a standard experiment result ("whatif"):
// one row per profile with absolute storage traffic aggregates, followed
// by a delta table against the baseline profile. Metrics carry every
// absolute value keyed by profile name, so golden tests and EXPERIMENTS.md
// assertions can pin them.
func (r *WhatIfReport) Result() *Result {
	res := newResult("whatif", fmt.Sprintf(
		"What-if: %s under %d capability profiles (baseline %s, %d shards, seed %d)",
		r.Config.VP.Name, len(r.Runs), r.baselineName(), max(r.Config.Fleet.Shards, 1), r.Config.Seed))

	abs := analysis.NewTable(res.Title,
		"profile", "store GB", "retr GB", "flows", "ops", "store med ms", "retr med ms")
	for _, run := range r.Runs {
		a := run.Agg
		abs.AddRow(run.Profile.Name,
			float64(a.Summary.StoreBytes)/1e9, float64(a.Summary.RetrieveBytes)/1e9,
			float64(a.Summary.StoreFlows+a.Summary.RetrieveFlows),
			float64(a.StoreOps+a.RetrieveOps),
			a.StoreLatency.Quantile(0.5), a.RetrieveLatency.Quantile(0.5))
		name := run.Profile.Name
		res.Metrics["store_gb_"+name] = float64(a.Summary.StoreBytes) / 1e9
		res.Metrics["retrieve_gb_"+name] = float64(a.Summary.RetrieveBytes) / 1e9
		res.Metrics["storage_flows_"+name] = float64(a.Summary.StoreFlows + a.Summary.RetrieveFlows)
		res.Metrics["ops_"+name] = float64(a.StoreOps + a.RetrieveOps)
		res.Metrics["store_med_ms_"+name] = a.StoreLatency.Quantile(0.5)
		res.Metrics["retrieve_med_ms_"+name] = a.RetrieveLatency.Quantile(0.5)
		res.Metrics["sync_p90_ms_"+name] = a.StoreLatency.Quantile(0.9)
		res.Metrics["devices_"+name] = float64(run.Stats.Devices)
	}
	res.addText(abs.String())

	if len(r.Runs) > 1 {
		base := r.Runs[0].Agg
		baseVol := float64(base.Summary.StoreBytes + base.Summary.RetrieveBytes)
		delta := analysis.NewTable(
			fmt.Sprintf("Deltas versus baseline %s", r.baselineName()),
			"profile", "Δ volume", "Δ flows", "Δ ops", "Δ store lat", "Δ retr lat")
		for _, run := range r.Runs[1:] {
			a := run.Agg
			delta.AddRow(run.Profile.Name,
				pctDelta(float64(a.Summary.StoreBytes+a.Summary.RetrieveBytes), baseVol),
				pctDelta(float64(a.Summary.StoreFlows+a.Summary.RetrieveFlows),
					float64(base.Summary.StoreFlows+base.Summary.RetrieveFlows)),
				pctDelta(float64(a.StoreOps+a.RetrieveOps), float64(base.StoreOps+base.RetrieveOps)),
				pctDelta(a.StoreLatency.Quantile(0.5), base.StoreLatency.Quantile(0.5)),
				pctDelta(a.RetrieveLatency.Quantile(0.5), base.RetrieveLatency.Quantile(0.5)))
		}
		res.addText("")
		res.addText(delta.String())
	}

	res.addText("\nReproducibility keys:\n")
	for _, run := range r.Runs {
		res.addText("  " + run.Profile.Key() + "\n")
	}
	return res
}

func (r *WhatIfReport) baselineName() string {
	if len(r.Runs) > 0 {
		return r.Runs[0].Profile.Name
	}
	if len(r.Config.Profiles) > 0 {
		return r.Config.Profiles[0].Name
	}
	return "none"
}
