package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"insidedropbox/internal/analysis"
	"insidedropbox/internal/chunker"
	"insidedropbox/internal/classify"
	"insidedropbox/internal/dnssim"
	"insidedropbox/internal/dropbox"
	"insidedropbox/internal/flowmodel"
	"insidedropbox/internal/netem"
	"insidedropbox/internal/simrand"
	"insidedropbox/internal/simtime"
	"insidedropbox/internal/tcpsim"
	"insidedropbox/internal/tlssim"
	"insidedropbox/internal/traces"
	"insidedropbox/internal/tstat"
	"insidedropbox/internal/wire"
)

// PacketLabConfig drives the packet-level storage-performance experiment
// behind Figs. 9 and 10: stratified flow sizes pushed through the real
// protocol over the real simulated TCP path, measured by the real probe.
type PacketLabConfig struct {
	Seed int64
	// FlowsPerSlot flows are generated in each logarithmic size slot.
	FlowsPerSlot int
	// MinBytes/MaxBytes bound the stratified payload sizes.
	MinBytes, MaxBytes int64
	// Slots is the number of logarithmic size slots.
	Slots int
	// ServerIW is the storage servers' initial window (2 = pre-1.4.0).
	ServerIW int
	// Version selects per-chunk or bundled operations.
	Version dropbox.Version
	// Retrieve generates download flows instead of uploads.
	Retrieve bool
	// RTT is the one-way probe->storage core delay (default 45 ms,
	// approximating Campus 2's ≈95 ms round trip).
	CoreDelay time.Duration
	// Access is the client access profile (default campus wireless).
	Access netem.AccessProfile
}

// DefaultPacketLab sizes the lab for the full Fig. 9 regeneration.
func DefaultPacketLab(retrieve bool) PacketLabConfig {
	return PacketLabConfig{
		Seed: 99, FlowsPerSlot: 12, Slots: 16,
		MinBytes: 1 << 10, MaxBytes: 64 << 20,
		ServerIW: 2, Version: dropbox.V1252, Retrieve: retrieve,
		CoreDelay: 45 * time.Millisecond,
		Access:    netem.CampusWireless(),
	}
}

// QuickPacketLab is a small variant for tests and -short benchmarks.
func QuickPacketLab(retrieve bool) PacketLabConfig {
	cfg := DefaultPacketLab(retrieve)
	cfg.FlowsPerSlot = 3
	cfg.Slots = 8
	cfg.MaxBytes = 4 << 20
	return cfg
}

// RunPacketLab executes the lab and returns the probe's flow records for
// storage flows, annotated with the lab's path RTT. Cancelling ctx stops
// the simulation at its next bounded slice (a few minutes of virtual
// time, milliseconds of wall clock) and returns ctx.Err().
func RunPacketLab(ctx context.Context, cfg PacketLabConfig) ([]*traces.FlowRecord, error) {
	sched := simtime.NewScheduler()
	rng := simrand.New(cfg.Seed, "packetlab")
	net := netem.New(sched, rng)
	net.SetCoreDelay("lab", dnssim.AmazonDC, cfg.CoreDelay)
	net.SetCoreDelay("lab", dnssim.DropboxDC, cfg.CoreDelay+40*time.Millisecond)
	dir := dnssim.Build(dnssim.Layout{MetaIPs: 2, NotifyIPs: 2, StorageNames: 64, StorageIPs: 64})
	scfg := tcpsim.DefaultConfig()
	scfg.InitialWindow = cfg.ServerIW
	svc := dropbox.NewService(dropbox.ServiceConfig{
		Sched: sched, Net: net, Rng: rng, Dir: dir, ServerTCP: scfg,
	})
	resolver := dnssim.NewResolver(dir, rng)
	probe := tstat.New(sched, tstat.DefaultConfig("packetlab"))
	var recs []*traces.FlowRecord
	probe.OnRecord = func(r *traces.FlowRecord) { recs = append(recs, r) }
	resolver.Log = probe.ObserveDNS
	net.AttachTap("lab", probe)

	// A small pool of lab clients, each running its flows sequentially.
	const clients = 6
	type labClient struct {
		stack *tcpsim.Stack
		rng   *simrand.Source
	}
	var lcs []*labClient
	for i := 0; i < clients; i++ {
		ip := wire.MakeIP(10, 10, 0, byte(i+1))
		host := net.AddHost(ip, "lab", cfg.Access)
		lcs = append(lcs, &labClient{
			stack: tcpsim.NewStack(host, sched, rng, tcpsim.DefaultConfig()),
			rng:   rng.Fork(fmt.Sprintf("lab%d", i)),
		})
	}

	// Stratified flow specs.
	type spec struct {
		chunks []chunker.Ref
		wires  []int
	}
	var specs []spec
	bins := analysis.LogBins{Lo: float64(cfg.MinBytes), Hi: float64(cfg.MaxBytes), N: cfg.Slots}
	seedCtr := uint64(1)
	for slot := 0; slot < cfg.Slots; slot++ {
		for f := 0; f < cfg.FlowsPerSlot; f++ {
			size := int64(bins.Center(slot) * rng.Uniform(0.7, 1.4))
			if size < cfg.MinBytes {
				size = cfg.MinBytes
			}
			// Chunk-count category as in Fig. 9's legend.
			minChunks := int((size + chunker.MaxChunkSize - 1) / chunker.MaxChunkSize)
			want := []int{1, 2 + rng.Intn(4), 6 + rng.Intn(45), 51 + rng.Intn(50)}[f%4]
			if want < minChunks {
				want = minChunks
			}
			if int64(want) > size {
				want = int(size)
			}
			if want > 100 {
				want = 100
			}
			per := size / int64(want)
			var refs []chunker.Ref
			var wires []int
			for i := 0; i < want; i++ {
				sz := per
				if i == want-1 {
					sz = size - per*int64(want-1)
				}
				if sz < 1 {
					sz = 1
				}
				sf := chunker.SyntheticFile{Seed: seedCtr, Size: sz}
				seedCtr++
				for _, r := range sf.Refs() {
					refs = append(refs, r)
					wires = append(wires, r.Size)
				}
			}
			specs = append(specs, spec{chunks: refs, wires: wires})
		}
	}
	rng.Shuffle(len(specs), func(i, j int) { specs[i], specs[j] = specs[j], specs[i] })

	// For retrieve labs, stage content server-side.
	if cfg.Retrieve {
		for _, sp := range specs {
			for i, r := range sp.chunks {
				svc.SeedChunk(r, sp.wires[i])
			}
		}
	}

	// Each lab client drains its share of specs sequentially over raw
	// storage connections, mimicking the client's op sequence.
	remaining := len(specs)
	var runSpec func(lc *labClient, queue []spec)
	runSpec = func(lc *labClient, queue []spec) {
		if len(queue) == 0 {
			return
		}
		sp := queue[0]
		rest := queue[1:]
		specDone := false
		finish := func() {
			if specDone {
				return
			}
			specDone = true
			remaining--
			runSpec(lc, rest)
		}
		name := dir.StorageNames[lc.rng.Intn(len(dir.StorageNames))]
		ip, _ := resolver.Resolve(sched.Now(), lc.stack.Host.IP, name)
		conn := lc.stack.Dial(ip, 443)
		sess := tlssim.NewClient(conn, name, tlssim.DefaultHandshake())
		svc.RegisterPending(conn.LocalEndpoint(), sess)
		idx := 0
		reaction := func() time.Duration {
			return time.Duration(lc.rng.LogNormalMedian(float64(70*time.Millisecond), 0.5))
		}
		issue := func() {
			if cfg.Retrieve {
				req := dropbox.RetrieveClientOverheadMin + lc.rng.Intn(64)
				sess.SendParts(dropbox.MsgRetrieve{Hash: sp.chunks[idx].Hash}, req, 2)
			} else {
				w := sp.wires[idx]
				sess.Send(dropbox.MsgStore{Ref: sp.chunks[idx], WireSize: w},
					dropbox.StoreClientOverhead+w)
			}
		}
		sess.OnEstablished = func() { issue() }
		sess.OnMessage = func(meta any, size int) {
			idx++
			if idx < len(sp.chunks) {
				sched.After(reaction(), issue)
				return
			}
			// Flow done: abort after a short linger (the probe sees the
			// RST; the 60 s server alert path is exercised elsewhere).
			sched.After(time.Duration(lc.rng.Uniform(0.2, 2))*time.Second, func() {
				sess.Abort()
				sched.After(5*time.Second, finish)
			})
		}
		sess.OnReset = func() { finish() }
		sess.OnPeerClose = func() {
			sess.Abort()
			finish()
		}
	}
	per := (len(specs) + clients - 1) / clients
	for i, lc := range lcs {
		lo := i * per
		hi := lo + per
		if lo >= len(specs) {
			break
		}
		if hi > len(specs) {
			hi = len(specs)
		}
		queue := specs[lo:hi]
		lc := lc
		sched.After(time.Duration(i)*200*time.Millisecond, func() { runSpec(lc, queue) })
	}
	// The probe's sweep ticker keeps the scheduler populated forever, so
	// drive the simulation in bounded slices until all specs complete; the
	// slice boundaries double as the cancellation points.
	const labCap = 24 * time.Hour
	for remaining > 0 && sched.Now() < simtime.Time(labCap) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sched.RunFor(5 * time.Minute)
	}
	sched.RunFor(2 * time.Minute) // let trailing teardowns settle
	probe.FlushAll()

	var storage []*traces.FlowRecord
	for _, r := range recs {
		if classify.DropboxService(r) == dnssim.SvcClientStorage && r.BytesUp+r.BytesDown > 5000 {
			storage = append(storage, r)
		}
	}
	return storage, nil
}

// chunkGroup labels a flow by its estimated chunk count, as Fig. 9 does.
func chunkGroup(chunks int) string {
	switch {
	case chunks <= 1:
		return "1"
	case chunks <= 5:
		return "2-5"
	case chunks <= 50:
		return "6-50"
	default:
		return "51-100"
	}
}

// Figure9 reproduces the storage throughput scatter with the θ bound.
func Figure9(storeRecs, retrRecs []*traces.FlowRecord, rtt time.Duration, iw int) *Result {
	res := newResult("figure9", "Figure 9: Throughput of storage flows (packet-level lab)")
	panels := []struct {
		name string
		dir  classify.Direction
		recs []*traces.FlowRecord
	}{
		{"(a) store", classify.DirStore, storeRecs},
		{"(b) retrieve", classify.DirRetrieve, retrRecs},
	}
	for _, panel := range panels {
		plot := analysis.NewPlot(fmt.Sprintf("%s %s", res.Title, panel.name),
			"payload (bytes)", "throughput (bit/s)")
		plot.LogX, plot.LogY = true, true
		byGroup := map[string][2][]float64{}
		var all []float64
		var aboveTheta, n int
		for _, r := range panel.recs {
			if classify.TagStorage(r) != panel.dir {
				continue
			}
			payload := classify.Payload(r, panel.dir)
			if payload <= 0 {
				continue
			}
			tp := classify.Throughput(r, panel.dir)
			if tp <= 0 {
				continue
			}
			chunks := classify.EstimateChunks(r, panel.dir)
			g := chunkGroup(chunks)
			e := byGroup[g]
			e[0] = append(e[0], float64(payload))
			e[1] = append(e[1], tp)
			byGroup[g] = e
			all = append(all, tp)
			n++
			if tp > flowmodel.Theta(payload, rtt, iw)*1.2 {
				aboveTheta++
			}
		}
		for _, g := range []string{"1", "2-5", "6-50", "51-100"} {
			e := byGroup[g]
			if len(e[0]) > 0 {
				plot.AddSeries(g+" chunks", e[0], e[1])
			}
		}
		// θ bound curve.
		var tx, ty []float64
		for b := 256.0; b < 1e9; b *= 2 {
			tx = append(tx, b)
			ty = append(ty, flowmodel.Theta(int64(b), rtt, iw))
		}
		plot.AddSeries("theta", tx, ty)
		res.addText(plot.String())
		key := panel.dir.String()
		res.Metrics["avg_tp_"+key] = analysis.Mean(all)
		res.Metrics["max_tp_"+key] = analysis.NewECDF(all).Max()
		res.Metrics["n_"+key] = float64(n)
		if n > 0 {
			res.Metrics["above_theta_frac_"+key] = float64(aboveTheta) / float64(n)
		}
		res.addText(fmt.Sprintf("avg throughput (%s) = %s; max = %s; flows above 1.2·θ: %.1f%%\n\n",
			key, analysis.HumanRate(res.Metrics["avg_tp_"+key]),
			analysis.HumanRate(res.Metrics["max_tp_"+key]),
			100*res.Metrics["above_theta_frac_"+key]))
	}
	return res
}

// Figure10 reproduces the minimum flow duration per size slot and chunk
// group: flows with many chunks never finish fast, regardless of size.
func Figure10(storeRecs, retrRecs []*traces.FlowRecord) *Result {
	res := newResult("figure10", "Figure 10: Minimum duration of flows by chunk group")
	panels := []struct {
		name string
		dir  classify.Direction
		recs []*traces.FlowRecord
	}{
		{"store", classify.DirStore, storeRecs},
		{"retrieve", classify.DirRetrieve, retrRecs},
	}
	for _, panel := range panels {
		plot := analysis.NewPlot(fmt.Sprintf("%s — %s", res.Title, panel.name),
			"payload (bytes)", "min duration (s)")
		plot.LogX, plot.LogY = true, true
		bins := analysis.LogBins{Lo: 1e3, Hi: 1e9, N: 24}
		type key struct {
			group string
			slot  int
		}
		best := map[key]float64{}
		for _, r := range panel.recs {
			if classify.TagStorage(r) != panel.dir {
				continue
			}
			payload := float64(classify.Payload(r, panel.dir))
			slot := bins.Index(payload)
			if slot < 0 {
				continue
			}
			dur := classify.TransferDuration(r, panel.dir).Seconds()
			g := chunkGroup(classify.EstimateChunks(r, panel.dir))
			k := key{g, slot}
			if cur, ok := best[k]; !ok || dur < cur {
				best[k] = dur
			}
		}
		groupMin := map[string]float64{}
		for _, g := range []string{"1", "2-5", "6-50", "51-100"} {
			var xs, ys []float64
			minDur := math.Inf(1)
			for slot := 0; slot < bins.N; slot++ {
				if d, ok := best[key{g, slot}]; ok {
					xs = append(xs, bins.Center(slot))
					ys = append(ys, d)
					if d < minDur {
						minDur = d
					}
				}
			}
			if len(xs) > 0 {
				plot.AddSeries(g+" chunks", xs, ys)
				groupMin[g] = minDur
			}
		}
		res.addText(plot.String())
		for g, d := range groupMin {
			res.Metrics[fmt.Sprintf("min_dur_%s_%s", panel.dir.String(), g)] = d
		}
	}
	res.addText("Flows with many chunks have a duration floor set by sequential\n" +
		"acknowledgments (≈1 RTT + reaction time per chunk), regardless of size\n" +
		"(Sec. 4.4.2).\n")
	return res
}

// RunPacketLabs executes both labs and renders Figs. 9 and 10.
func RunPacketLabs(ctx context.Context, store, retr PacketLabConfig) (fig9, fig10 *Result, err error) {
	storeRecs, err := RunPacketLab(ctx, store)
	if err != nil {
		return nil, nil, err
	}
	retrRecs, err := RunPacketLab(ctx, retr)
	if err != nil {
		return nil, nil, err
	}
	rtt := 2*store.CoreDelay + time.Millisecond
	fig9 = Figure9(storeRecs, retrRecs, rtt, store.ServerIW)
	fig10 = Figure10(storeRecs, retrRecs)
	return fig9, fig10, nil
}
