package experiments

import (
	"fmt"
	"time"

	"insidedropbox/internal/analysis"
	"insidedropbox/internal/classify"
	"insidedropbox/internal/dnssim"
	"insidedropbox/internal/traces"
	"insidedropbox/internal/wire"
	"insidedropbox/internal/workload"
)

// Figure2 reproduces the popularity comparison in Home 1: distinct client
// addresses per day and data volume per day for each provider.
func Figure2(c *Campaign) *Result {
	res := newResult("figure2", "Figure 2: Popularity of cloud storage in Home 1")
	ds := c.ByName("home1")
	days := ds.Cfg.Days

	providers := []classify.Provider{classify.ProvICloud, classify.ProvDropbox,
		classify.ProvSkyDrive, classify.ProvGoogleDrive, classify.ProvOtherCloud}
	ipsPerDay := make(map[classify.Provider][]map[wire.IP]bool)
	volPerDay := make(map[classify.Provider][]float64)
	for _, p := range providers {
		ipsPerDay[p] = make([]map[wire.IP]bool, days)
		volPerDay[p] = make([]float64, days)
		for d := range ipsPerDay[p] {
			ipsPerDay[p][d] = make(map[wire.IP]bool)
		}
	}
	for _, r := range ds.Records {
		p := classify.ProviderOf(r)
		if _, ok := ipsPerDay[p]; !ok {
			continue
		}
		d := workload.DayOfRecord(r)
		if d < 0 || d >= days {
			continue
		}
		ipsPerDay[p][d][r.Client] = true
		volPerDay[p][d] += float64(r.BytesUp + r.BytesDown)
	}

	// Panel (a): addresses per day.
	plotA := analysis.NewPlot(res.Title+" (a) IP addresses", "day", "# addrs")
	for _, p := range providers {
		xs := make([]float64, days)
		ys := make([]float64, days)
		for d := 0; d < days; d++ {
			xs[d] = float64(d)
			ys[d] = float64(len(ipsPerDay[p][d]))
		}
		plotA.AddSeries(p.String(), xs, ys)
	}
	res.addText(plotA.String())

	// Panel (b): volume per day (log y).
	plotB := analysis.NewPlot(res.Title+" (b) Data volume", "day", "bytes/day")
	plotB.LogY = true
	for _, p := range providers {
		xs := make([]float64, 0, days)
		ys := make([]float64, 0, days)
		for d := 0; d < days; d++ {
			if volPerDay[p][d] > 0 {
				xs = append(xs, float64(d))
				ys = append(ys, volPerDay[p][d])
			}
		}
		plotB.AddSeries(p.String(), xs, ys)
	}
	res.addText(plotB.String())

	// Headline metrics: average active addresses and the volume ordering.
	for _, p := range providers {
		sumIPs, sumVol := 0.0, 0.0
		active := 0
		for d := 0; d < days; d++ {
			if len(ipsPerDay[p][d]) > 0 {
				sumIPs += float64(len(ipsPerDay[p][d]))
				sumVol += volPerDay[p][d]
				active++
			}
		}
		if active > 0 {
			res.Metrics["avg_ips_"+p.String()] = sumIPs / float64(active)
		}
		res.Metrics["vol_"+p.String()] = sumVol
	}
	res.Metrics["gdrive_first_day"] = firstActiveDay(volPerDay[classify.ProvGoogleDrive])
	res.addText(fmt.Sprintf("iCloud households lead in count; Dropbox dominates volume "+
		"(Dropbox %.1fx iCloud by bytes). Google Drive appears on day %.0f (launch).\n",
		res.Metrics["vol_Dropbox"]/res.Metrics["vol_iCloud"], res.Metrics["gdrive_first_day"]))
	return res
}

func firstActiveDay(vols []float64) float64 {
	for d, v := range vols {
		if v > 0 {
			return float64(d)
		}
	}
	return -1
}

// Figure3 reproduces the Dropbox vs YouTube share of total traffic in
// Campus 2.
func Figure3(c *Campaign) *Result {
	res := newResult("figure3", "Figure 3: YouTube and Dropbox share in Campus 2")
	ds := c.ByName("campus2")
	days := ds.Cfg.Days
	dbx := make([]float64, days)
	var cloudOther = make([]float64, days)
	for _, r := range ds.Records {
		d := workload.DayOfRecord(r)
		if d < 0 || d >= days {
			continue
		}
		v := float64(r.BytesUp + r.BytesDown)
		if classify.ProviderOf(r) == classify.ProvDropbox {
			dbx[d] += v
		} else {
			cloudOther[d] += v
		}
	}
	plot := analysis.NewPlot(res.Title, "day", "share of total volume")
	xs := make([]float64, days)
	ySh := make([]float64, days)
	yYt := make([]float64, days)
	var dbxShareSum, ytShareSum float64
	n := 0
	for d := 0; d < days; d++ {
		total := dbx[d] + cloudOther[d] + ds.BackgroundByDay[d] + ds.YouTubeByDay[d]
		xs[d] = float64(d)
		if total > 0 {
			ySh[d] = dbx[d] / total
			yYt[d] = ds.YouTubeByDay[d] / total
			dbxShareSum += ySh[d]
			ytShareSum += yYt[d]
			n++
		}
	}
	plot.AddSeries("YouTube", xs, yYt)
	plot.AddSeries("Dropbox", xs, ySh)
	res.addText(plot.String())
	res.Metrics["dropbox_share"] = dbxShareSum / float64(n)
	res.Metrics["youtube_share"] = ytShareSum / float64(n)
	res.Metrics["ratio"] = res.Metrics["dropbox_share"] / res.Metrics["youtube_share"]
	res.addText(fmt.Sprintf("mean shares: Dropbox %.1f%%, YouTube %.1f%% — Dropbox ≈ %.2f of YouTube (paper: ≈1/3)\n",
		100*res.Metrics["dropbox_share"], 100*res.Metrics["youtube_share"], res.Metrics["ratio"]))
	return res
}

// Figure4 reproduces the traffic share per Dropbox server group, in bytes
// and in flows, for every vantage point.
func Figure4(c *Campaign) *Result {
	res := newResult("figure4", "Figure 4: Traffic share of Dropbox servers")
	order := []dnssim.Service{dnssim.SvcClientStorage, dnssim.SvcWebStorage,
		dnssim.SvcAPIStorage, dnssim.SvcClientControl, dnssim.SvcNotify,
		dnssim.SvcWebControl, dnssim.SvcAPIControl, dnssim.SvcSystemLog, dnssim.SvcUnknown}
	tbB := analysis.NewTable(res.Title+" — fraction of bytes", append([]string{"service"}, vpNames(c)...)...)
	tbF := analysis.NewTable(res.Title+" — fraction of flows", append([]string{"service"}, vpNames(c)...)...)
	byVP := map[string]map[dnssim.Service][2]float64{}
	c.perVP(func(ds *workload.Dataset) {
		agg := make(map[dnssim.Service][2]float64)
		var totB, totF float64
		for _, r := range dropboxRecords(ds) {
			svc := classify.DropboxService(r)
			v := agg[svc]
			v[0] += float64(r.BytesUp + r.BytesDown)
			v[1]++
			agg[svc] = v
			totB += float64(r.BytesUp + r.BytesDown)
			totF++
		}
		norm := make(map[dnssim.Service][2]float64)
		for svc, v := range agg {
			norm[svc] = [2]float64{v[0] / totB, v[1] / totF}
		}
		byVP[ds.Cfg.Name] = norm
	})
	for _, svc := range order {
		rowB := []any{svc.String()}
		rowF := []any{svc.String()}
		for _, name := range vpNames(c) {
			v := byVP[name][svc]
			rowB = append(rowB, v[0])
			rowF = append(rowF, v[1])
			res.Metrics[fmt.Sprintf("bytes_%s_%s", name, svc.String())] = v[0]
			res.Metrics[fmt.Sprintf("flows_%s_%s", name, svc.String())] = v[1]
		}
		tbB.AddRow(rowB...)
		tbF.AddRow(rowF...)
	}
	res.addText(tbB.String())
	res.addText("")
	res.addText(tbF.String())
	return res
}

func vpNames(c *Campaign) []string {
	out := make([]string, len(c.Datasets))
	for i, ds := range c.Datasets {
		out[i] = ds.Cfg.Name
	}
	return out
}

// Figure5 reproduces the number of distinct storage server addresses
// contacted per day at each vantage point.
func Figure5(c *Campaign) *Result {
	res := newResult("figure5", "Figure 5: Number of contacted storage servers")
	plot := analysis.NewPlot(res.Title, "day", "server IP addrs")
	c.perVP(func(ds *workload.Dataset) {
		days := ds.Cfg.Days
		perDay := make([]map[wire.IP]bool, days)
		for i := range perDay {
			perDay[i] = make(map[wire.IP]bool)
		}
		for _, r := range clientStorageRecords(ds) {
			d := workload.DayOfRecord(r)
			if d >= 0 && d < days {
				perDay[d][r.Server] = true
			}
		}
		xs := make([]float64, days)
		ys := make([]float64, days)
		sum := 0.0
		for d := 0; d < days; d++ {
			xs[d] = float64(d)
			ys[d] = float64(len(perDay[d]))
			sum += ys[d]
		}
		plot.AddSeries(ds.Cfg.Name, xs, ys)
		res.Metrics["avg_servers_"+ds.Cfg.Name] = sum / float64(days)
	})
	res.addText(plot.String())
	res.addText("Busier vantage points contact more of the ~640-address pool daily\n" +
		"(population scaling lowers absolute counts versus the paper).\n")
	return res
}

// Figure6 reproduces the minimum-RTT CDFs toward storage and control
// data-centers.
func Figure6(c *Campaign) *Result {
	res := newResult("figure6", "Figure 6: Minimum RTT of storage and control flows")
	storage := analysis.NewPlot(res.Title+" — storage", "ms", "CDF")
	control := analysis.NewPlot(res.Title+" — control", "ms", "CDF")
	c.perVP(func(ds *workload.Dataset) {
		var st, ct []float64
		for _, r := range dropboxRecords(ds) {
			if r.RTTSamples < 10 || r.MinRTT <= 0 {
				continue // the paper uses flows with >= 10 samples
			}
			ms := float64(r.MinRTT) / float64(time.Millisecond)
			switch classify.DropboxService(r) {
			case dnssim.SvcClientStorage:
				st = append(st, ms)
			case dnssim.SvcClientControl:
				ct = append(ct, ms)
			}
		}
		if len(st) > 0 {
			storage.AddECDF(ds.Cfg.Name, analysis.NewECDF(st))
			res.Metrics["storage_median_"+ds.Cfg.Name] = analysis.Median(st)
		}
		if len(ct) > 0 {
			control.AddECDF(ds.Cfg.Name, analysis.NewECDF(ct))
			res.Metrics["control_median_"+ds.Cfg.Name] = analysis.Median(ct)
		}
	})
	res.addText(storage.String())
	res.addText("")
	res.addText(control.String())
	res.addText("Storage RTTs sit in the 80-120 ms band, control in 140-220 ms —\n" +
		"two distinct centralized U.S. data-centers (Sec. 4.2.2).\n")
	return res
}

// recordsForSizeCDF collects per-direction storage payload sizes.
func sizesByDirection(ds *workload.Dataset) (store, retr []float64) {
	for _, r := range clientStorageRecords(ds) {
		d := classify.TagStorage(r)
		// The paper plots TCP flow sizes including SSL overhead; we use
		// raw flow bytes in the transfer direction.
		var v float64
		if d == classify.DirStore {
			v = float64(r.BytesUp)
			store = append(store, v)
		} else {
			v = float64(r.BytesDown)
			retr = append(retr, v)
		}
	}
	return store, retr
}

// Figure7 reproduces the storage flow-size CDFs.
func Figure7(c *Campaign) *Result {
	res := newResult("figure7", "Figure 7: TCP flow sizes of file storage (Dropbox client)")
	ps := analysis.NewPlot(res.Title+" — store", "flow size (bytes)", "CDF")
	pr := analysis.NewPlot(res.Title+" — retrieve", "flow size (bytes)", "CDF")
	ps.LogX, pr.LogX = true, true
	c.perVP(func(ds *workload.Dataset) {
		st, rt := sizesByDirection(ds)
		if len(st) > 0 {
			ps.AddECDF(ds.Cfg.Name, analysis.NewECDF(st))
			e := analysis.NewECDF(st)
			res.Metrics["store_le10k_"+ds.Cfg.Name] = e.At(10e3)
			res.Metrics["store_le100k_"+ds.Cfg.Name] = e.At(100e3)
			res.Metrics["store_max_"+ds.Cfg.Name] = e.Max()
		}
		if len(rt) > 0 {
			pr.AddECDF(ds.Cfg.Name, analysis.NewECDF(rt))
			e := analysis.NewECDF(rt)
			res.Metrics["retr_le100k_"+ds.Cfg.Name] = e.At(100e3)
		}
	})
	res.addText(ps.String())
	res.addText("")
	res.addText(pr.String())
	return res
}

// Figure8 reproduces the estimated chunks-per-flow CDFs.
func Figure8(c *Campaign) *Result {
	res := newResult("figure8", "Figure 8: Estimated number of chunks per storage flow")
	ps := analysis.NewPlot(res.Title+" — store", "chunks", "CDF")
	pr := analysis.NewPlot(res.Title+" — retrieve", "chunks", "CDF")
	ps.LogX, pr.LogX = true, true
	c.perVP(func(ds *workload.Dataset) {
		var st, rt []float64
		for _, r := range clientStorageRecords(ds) {
			d := classify.TagStorage(r)
			chunks := float64(classify.EstimateChunks(r, d))
			if d == classify.DirStore {
				st = append(st, chunks)
			} else {
				rt = append(rt, chunks)
			}
		}
		if len(st) > 0 {
			ps.AddECDF(ds.Cfg.Name, analysis.NewECDF(st))
			res.Metrics["store_le10_"+ds.Cfg.Name] = analysis.NewECDF(st).At(10)
		}
		if len(rt) > 0 {
			pr.AddECDF(ds.Cfg.Name, analysis.NewECDF(rt))
			res.Metrics["retr_le10_"+ds.Cfg.Name] = analysis.NewECDF(rt).At(10)
		}
	})
	res.addText(ps.String())
	res.addText("")
	res.addText(pr.String())
	res.addText("Most flows carry few chunks; a second mass at 100 reflects the\n" +
		"batch limit (Sec. 2.3.2).\n")
	return res
}

var _ = traces.FlowRecord{}
