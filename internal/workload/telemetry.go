package workload

import "insidedropbox/internal/telemetry"

// Generation ground-truth telemetry, published once per completed shard —
// the per-subscriber and per-record paths accumulate into the shard's
// plain ShardStats fields and never touch an atomic.
var (
	mShards     = telemetry.NewCounter("workload.shards")
	mRecords    = telemetry.NewCounter("workload.records")
	mHouseholds = telemetry.NewCounter("workload.households")
	mDevices    = telemetry.NewCounter("workload.devices")
	mSyncEvents = telemetry.NewCounter("workload.sync_events")
)

// flushTelemetry publishes one completed shard's ground-truth counters.
// Per-cohort counters are registered lazily by name — the registry is
// lookup-or-create, and this runs once per shard, not on the record path.
func (s *ShardStats) flushTelemetry() {
	mShards.Inc()
	mRecords.Add(uint64(s.Records))
	mHouseholds.Add(uint64(s.Households))
	mDevices.Add(uint64(s.Devices))
	mSyncEvents.Add(uint64(s.SyncEvents))
	for name, n := range s.CohortDevices {
		telemetry.NewCounter("scenario.cohort." + name + ".devices").Add(uint64(n))
	}
	for name, n := range s.CohortRecords {
		telemetry.NewCounter("scenario.cohort." + name + ".records").Add(uint64(n))
	}
}
