// Package workload generates the synthetic populations that stand in for
// the four vantage points of the paper (Table 2): households and campus
// hosts, their devices, user-behaviour groups, diurnal session processes,
// file-synchronization events, web/API usage, and the competing cloud
// providers — everything needed to regenerate the campaign-scale tables and
// figures at flow level through the calibrated flowmodel.
//
// Parameter values are calibrated against the paper's published numbers;
// each field's comment cites the source.
//
// Client capabilities are pluggable: each vantage point carries the
// Version the paper observed there, and VPConfig.Caps swaps in an
// arbitrary capability.Profile for counterfactual campaigns. The Dropbox
// presets regenerate the calibrated populations bit for bit (pinned by
// TestPresetCapsMatchLegacyVersionPaths).
package workload

import (
	"time"

	"insidedropbox/internal/capability"
	"insidedropbox/internal/dropbox"
	"insidedropbox/internal/simrand"
)

// AccessKind is the access technology of a subscriber line.
type AccessKind int

// Access technologies of Table 2.
const (
	AccessWired AccessKind = iota
	AccessWireless
	AccessADSL
	AccessFTTH
)

// rates returns (up, down) bottleneck rates in bytes/second.
func (a AccessKind) rates() (up, down float64) {
	switch a {
	case AccessWired:
		return 12.5e6, 12.5e6
	case AccessWireless:
		return 2.5e6, 2.5e6
	case AccessADSL:
		return 128e3, 1e6
	default: // FTTH
		return 1.25e6, 1.25e6
	}
}

// GroupMix is the household behaviour mixture (Table 5).
type GroupMix struct {
	Occasional, UploadOnly, DownloadOnly, Heavy float64
}

// VPConfig describes one vantage point population.
type VPConfig struct {
	Name string
	// Days is the capture length (42 in the paper).
	Days int
	// TotalIPs is the (scaled) number of client addresses in the network.
	TotalIPs int
	// Scale notes the downscaling factor versus the paper's population,
	// for reporting extrapolated totals.
	Scale float64

	// Penetration of each provider as a fraction of TotalIPs (Fig. 2:
	// iCloud 11.1%, Dropbox 6.9%, SkyDrive 1.7% in Home 1).
	DropboxFrac, ICloudFrac, SkyDriveFrac, GDriveFrac, OtherCloudFrac float64

	// Access technology mixture.
	Access []AccessKind

	// RTTs from the probe to the two data-centers (Fig. 6 x-ranges).
	StorageRTT, ControlRTT time.Duration
	// ControlRTTSteps adds per-household route-change offsets (the <10 ms
	// steps of Campus 1 / Home 2 in Fig. 6).
	ControlRTTSteps bool

	// HasDNS disables FQDN labeling when false (Campus 2, Sec. 3.2).
	HasDNS bool

	// Diurnal/weekly shape (Fig. 15) and behaviour mixture (Table 5).
	Diurnal  simrand.DiurnalProfile
	Week     simrand.WeekdayFactor
	Holidays *simrand.HolidayCalendar
	Groups   GroupMix

	// SessionsPerDay is the per-device mean of new sessions (Fig. 14:
	// ~40% of home devices start a session daily).
	SessionsPerDay float64

	// P1Namespace is the fraction of devices with only the root namespace
	// (Fig. 13: 13% Campus 1, 28% Home 1); NamespaceLambda sets the tail.
	P1Namespace     float64
	NamespaceLambda float64

	// NATChoppedFrac is the per-session probability that network equipment
	// kills notification connections within a minute (Sec. 5.5); a quarter
	// of it applies device-permanently.
	NATChoppedFrac float64

	// WorkstationLike marks populations dominated by single always-used
	// machines (Campus 1): one device per IP, office-hour sessions.
	WorkstationLike bool

	// Version/IW of the observed client population and server tuning.
	Version  dropbox.Version
	ServerIW int

	// Caps, when set, replaces the Version-derived client capabilities
	// with an arbitrary profile — the what-if hook. The profile's server
	// initial window then also overrides ServerIW (client releases and
	// server tuning deployed jointly, Table 4). Nil reproduces the
	// historical Version behaviour bit for bit.
	Caps *capability.Profile

	// Cohorts, when set, splits the Dropbox population into weighted
	// behavioral cohorts (see CohortPlan): each device is deterministically
	// assigned by its host ID and generated under its cohort's overrides.
	// Nil reproduces the single-population stream bit for bit.
	Cohorts *CohortPlan

	// AbnormalUploader plants the Home 2 device that submitted single
	// 4 MB chunks in consecutive TCP connections for days (Sec. 4.3.1).
	AbnormalUploader bool

	// OutageDays lists whole days with probe outages (Fig. 2: Apr 21).
	OutageDays []int

	// DailyBackgroundGB is the non-cloud traffic volume per day (sets the
	// denominators of Table 2 and Fig. 3); YouTubeShare carves YouTube out
	// of it (Campus 2: Dropbox ≈ one third of YouTube, 4% of total).
	DailyBackgroundGB float64
	YouTubeShare      float64
}

// EffectiveCaps resolves a vantage point's client capability profile:
// the explicit Caps override when set, else the profile of the calibrated
// Version switch.
func EffectiveCaps(cfg VPConfig) capability.Profile {
	if cfg.Caps != nil {
		return *cfg.Caps
	}
	return cfg.Version.Profile()
}

// campaignStart aligns day 0 with Saturday March 24, 2012 (the capture
// start): day-of-week index 5 relative to a Monday-based week.
const campaignStartWeekday = 5

// holidays2012 marks the Easter (Apr 8-9 = days 15,16), the Italian
// Liberation day + May 1 window (Apr 25 = day 32, May 1 = day 38) visible
// in Figs. 3 and 14.
func holidays2012() *simrand.HolidayCalendar {
	h := simrand.NewHolidayCalendar()
	h.MarkRange(15, 16, 0.45)
	h.Mark(32, 0.5)
	h.Mark(38, 0.5)
	return h
}

// Campus1 models the wired research/administrative department (400 IPs).
func Campus1(scalePct float64) VPConfig {
	return VPConfig{
		Name: "campus1", Days: 42,
		TotalIPs: scaled(400, scalePct), Scale: scalePct,
		DropboxFrac: 0.45, ICloudFrac: 0.20, SkyDriveFrac: 0.02,
		GDriveFrac: 0.02, OtherCloudFrac: 0.02,
		Access:     []AccessKind{AccessWired},
		StorageRTT: 88 * time.Millisecond, ControlRTT: 152 * time.Millisecond,
		ControlRTTSteps: true,
		HasDNS:          true,
		Diurnal:         simrand.OfficeHours(), Week: simrand.CampusWeek(),
		Holidays:        holidays2012(),
		Groups:          GroupMix{Occasional: 0.22, UploadOnly: 0.06, DownloadOnly: 0.27, Heavy: 0.45},
		SessionsPerDay:  0.9,
		P1Namespace:     0.13,
		NamespaceLambda: 3.3,
		WorkstationLike: true,
		Version:         dropbox.V1252, ServerIW: 2,
		DailyBackgroundGB: 65, YouTubeShare: 0.10,
	}
}

// Campus1JunJul is the second Campus 1 dataset (Table 4): same population,
// Dropbox 1.4.0 deployed and server initial window raised.
func Campus1JunJul(scalePct float64) VPConfig {
	cfg := Campus1(scalePct)
	cfg.Name = "campus1-junjul"
	cfg.Version = dropbox.V140
	cfg.ServerIW = 3
	return cfg
}

// Campus2 models the whole-campus border (wireless APs + student houses,
// 2528 IPs), with no DNS visibility.
func Campus2(scalePct float64) VPConfig {
	return VPConfig{
		Name: "campus2", Days: 42,
		TotalIPs: scaled(2528, scalePct), Scale: scalePct,
		DropboxFrac: 0.28, ICloudFrac: 0.18, SkyDriveFrac: 0.02,
		GDriveFrac: 0.02, OtherCloudFrac: 0.02,
		Access:     []AccessKind{AccessWireless, AccessWireless, AccessWired},
		StorageRTT: 96 * time.Millisecond, ControlRTT: 168 * time.Millisecond,
		HasDNS:  false,
		Diurnal: simrand.CampusRoaming(), Week: simrand.CampusWeek(),
		Holidays:        holidays2012(),
		Groups:          GroupMix{Occasional: 0.26, UploadOnly: 0.06, DownloadOnly: 0.28, Heavy: 0.40},
		SessionsPerDay:  1.3,
		P1Namespace:     0.16,
		NamespaceLambda: 3.0,
		NATChoppedFrac:  0.002,
		Version:         dropbox.V1252, ServerIW: 2,
		DailyBackgroundGB: 440, YouTubeShare: 0.125,
	}
}

// Home1 models the FTTH/ADSL POP (18785 IPs) with static addressing.
func Home1(scalePct float64) VPConfig {
	return VPConfig{
		Name: "home1", Days: 42,
		TotalIPs: scaled(18785, scalePct), Scale: scalePct,
		DropboxFrac: 0.069, ICloudFrac: 0.111, SkyDriveFrac: 0.017,
		GDriveFrac: 0.012, OtherCloudFrac: 0.01,
		Access:     []AccessKind{AccessADSL, AccessADSL, AccessFTTH},
		StorageRTT: 100 * time.Millisecond, ControlRTT: 180 * time.Millisecond,
		HasDNS:  true,
		Diurnal: simrand.HomeEvenings(), Week: simrand.HomeWeek(),
		Holidays:        holidays2012(),
		Groups:          GroupMix{Occasional: 0.31, UploadOnly: 0.06, DownloadOnly: 0.26, Heavy: 0.37},
		SessionsPerDay:  0.6,
		P1Namespace:     0.28,
		NamespaceLambda: 2.2,
		NATChoppedFrac:  0.006,
		Version:         dropbox.V1252, ServerIW: 2,
		OutageDays:        []int{28}, // April 21 probe outage
		DailyBackgroundGB: 3700, YouTubeShare: 0.11,
	}
}

// Home2 models the ADSL POP (13723 IPs), including the abnormal uploader.
func Home2(scalePct float64) VPConfig {
	return VPConfig{
		Name: "home2", Days: 42,
		TotalIPs: scaled(13723, scalePct), Scale: scalePct,
		DropboxFrac: 0.062, ICloudFrac: 0.10, SkyDriveFrac: 0.015,
		GDriveFrac: 0.012, OtherCloudFrac: 0.01,
		Access:     []AccessKind{AccessADSL},
		StorageRTT: 108 * time.Millisecond, ControlRTT: 200 * time.Millisecond,
		ControlRTTSteps: true,
		HasDNS:          true,
		Diurnal:         simrand.HomeEvenings(), Week: simrand.HomeWeek(),
		Holidays:        holidays2012(),
		Groups:          GroupMix{Occasional: 0.32, UploadOnly: 0.07, DownloadOnly: 0.28, Heavy: 0.33},
		SessionsPerDay:  0.6,
		P1Namespace:     0.30,
		NamespaceLambda: 2.0,
		NATChoppedFrac:  0.007,
		Version:         dropbox.V1252, ServerIW: 2,
		AbnormalUploader:  true,
		DailyBackgroundGB: 5800, YouTubeShare: 0.11,
	}
}

func scaled(n int, pct float64) int {
	v := int(float64(n) * pct)
	if v < 8 {
		v = 8
	}
	return v
}
