package workload

import (
	"sort"
	"time"

	"insidedropbox/internal/capability"
	"insidedropbox/internal/simrand"
)

// FlashWindow is a bounded burst of activity: inside [Start, End) the
// cohort's session arrivals and synchronization event rates are multiplied
// by RateMult (1 = no effect).
type FlashWindow struct {
	Start, End time.Duration
	RateMult   float64
}

// Cohort is one behavioral slice of a vantage point population. Every
// override field is relative to the vantage point's calibrated baseline; a
// zero multiplier means "inherit" (treated as 1), nil profile/temporal
// fields inherit the VP's. A device owned by a cohort draws its sessions,
// sync events, file sizes and client capabilities through these overrides.
type Cohort struct {
	Name   string
	Weight float64

	// Caps, when set, swaps the client capability profile for the
	// cohort's devices (the per-cohort what-if hook).
	Caps *capability.Profile

	// Behavioral multipliers over the VP baseline (0 inherits = 1).
	FileSizeMult        float64 // sync-event file/delta sizes
	EditRateMult        float64 // store/retrieve events per online hour
	SessionRateMult     float64 // new sessions per day
	SessionLenMult      float64 // session duration
	NamespaceLambdaMult float64 // shared-namespace tail

	// AlwaysOn pins every device of the cohort online for the whole
	// campaign (CI bots, servers).
	AlwaysOn bool

	// NATChopFrac adds to the VP's per-session notification-chopping
	// probability (mobile/intermittent connectivity).
	NATChopFrac float64

	// Temporal pattern overrides (nil inherits the VP's).
	Diurnal *simrand.DiurnalProfile
	Week    *simrand.WeekdayFactor

	// Flash lists bounded high-activity windows.
	Flash []FlashWindow
}

func orOne(v float64) float64 {
	if v <= 0 {
		return 1
	}
	return v
}

func (c *Cohort) fileSizeMult() float64        { return orOne(c.FileSizeMult) }
func (c *Cohort) editRateMult() float64        { return orOne(c.EditRateMult) }
func (c *Cohort) sessionRateMult() float64     { return orOne(c.SessionRateMult) }
func (c *Cohort) sessionLenMult() float64      { return orOne(c.SessionLenMult) }
func (c *Cohort) namespaceLambdaMult() float64 { return orOne(c.NamespaceLambdaMult) }

// flashMult returns the largest flash-window multiplier active at an
// instant (1 outside every window).
func (c *Cohort) flashMult(at time.Duration) float64 {
	m := 1.0
	for _, fw := range c.Flash {
		if at >= fw.Start && at < fw.End && fw.RateMult > m {
			m = fw.RateMult
		}
	}
	return m
}

// CohortPlan assigns devices to cohorts. Assignment hashes the device's
// stable host ID against a salt derived from the campaign seed — never the
// generator's random stream — so it is a pure function of (seed, device)
// and identical across any shard or worker count. A nil plan is the legacy
// single-population path.
type CohortPlan struct {
	cohorts []Cohort
	cum     []float64 // cumulative weights normalized to [0,1]
	salt    uint64
}

// NewCohortPlan builds a plan from a weighted cohort list. Weights are
// normalized; cohorts with non-positive weight are rejected by returning
// nil (validation happens in the scenario loader — this is the last line
// of defense).
func NewCohortPlan(salt uint64, cohorts []Cohort) *CohortPlan {
	if len(cohorts) == 0 {
		return nil
	}
	total := 0.0
	for _, c := range cohorts {
		if c.Weight <= 0 {
			return nil
		}
		total += c.Weight
	}
	p := &CohortPlan{
		cohorts: append([]Cohort(nil), cohorts...),
		cum:     make([]float64, len(cohorts)),
		salt:    salt,
	}
	acc := 0.0
	for i, c := range cohorts {
		acc += c.Weight / total
		p.cum[i] = acc
	}
	p.cum[len(p.cum)-1] = 1 // absorb float rounding
	return p
}

// Cohorts returns the plan's cohort list (callers must not mutate it).
func (p *CohortPlan) Cohorts() []Cohort { return p.cohorts }

// cohortHashOffset/cohortHashPrime are FNV-1a constants; the assignment
// hash must stay frozen — changing it reshuffles every cohort population.
const (
	cohortHashOffset = 14695981039346656037
	cohortHashPrime  = 1099511628211
)

// Assign maps a device host ID to its cohort. The pick is a 53-bit uniform
// draw from FNV-1a(salt, host) against the cumulative weights.
func (p *CohortPlan) Assign(host uint64) *Cohort {
	h := uint64(cohortHashOffset)
	for _, w := range [2]uint64{p.salt, host} {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xff
			h *= cohortHashPrime
		}
	}
	u := float64(h>>11) / (1 << 53)
	i := sort.SearchFloat64s(p.cum, u)
	if i >= len(p.cohorts) {
		i = len(p.cohorts) - 1
	}
	return &p.cohorts[i]
}
