package workload

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"insidedropbox/internal/telemetry"
	"insidedropbox/internal/traces"
)

func testPlan(salt uint64) *CohortPlan {
	return NewCohortPlan(salt, []Cohort{
		{Name: "a", Weight: 0.5},
		{Name: "b", Weight: 0.3},
		{Name: "c", Weight: 0.2},
	})
}

// TestCohortPlanRejectsBadInput: the plan is the last line of defense
// behind the scenario validator — empty lists and non-positive weights
// yield a nil (legacy) plan, never a bad one.
func TestCohortPlanRejectsBadInput(t *testing.T) {
	if NewCohortPlan(1, nil) != nil {
		t.Error("empty cohort list built a plan")
	}
	if NewCohortPlan(1, []Cohort{{Name: "a", Weight: 0}}) != nil {
		t.Error("zero weight built a plan")
	}
	if NewCohortPlan(1, []Cohort{{Name: "a", Weight: 1}, {Name: "b", Weight: -2}}) != nil {
		t.Error("negative weight built a plan")
	}
}

// TestCohortAssignDeterministic: assignment is a pure function of
// (salt, host) — repeated calls agree, and a different salt reshuffles
// at least some hosts (it is an input, not decoration).
func TestCohortAssignDeterministic(t *testing.T) {
	p := testPlan(7)
	q := testPlan(8)
	moved := 0
	for host := uint64(0); host < 1000; host++ {
		first := p.Assign(host)
		if again := p.Assign(host); again != first {
			t.Fatalf("host %d moved cohort between calls: %s -> %s", host, first.Name, again.Name)
		}
		if q.Assign(host).Name != first.Name {
			moved++
		}
	}
	if moved == 0 {
		t.Error("changing the salt moved no host at all")
	}
}

// TestCohortAssignDistribution: over many hosts the realized shares
// converge on the normalized weights (the 53-bit uniform draw is sound).
func TestCohortAssignDistribution(t *testing.T) {
	p := testPlan(42)
	const n = 50000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		// Spread hosts over the ID space the generator uses (dense small
		// integers hash fine too, but mix both regimes).
		host := uint64(i) * 0x9e3779b97f4a7c15
		counts[p.Assign(host).Name]++
	}
	want := map[string]float64{"a": 0.5, "b": 0.3, "c": 0.2}
	for name, w := range want {
		got := float64(counts[name]) / n
		if math.Abs(got-w) > 0.01 {
			t.Errorf("cohort %s share %.3f, want %.2f±0.01", name, got, w)
		}
	}
}

// TestCohortStatsReproducible: determinism-contract point 15 at the
// generator level — regenerating the same (cfg, seed, shard, nshards)
// reproduces the identical per-cohort ground truth (assignment draws
// nothing from the shard RNG), every shard's cohort devices sum to its
// device total, and merging shard stats sums the cohort maps exactly.
// (Different shard counts draw different populations by design — the
// per-shard-count goldens pin that — so cross-shard-count totals are not
// comparable; what is invariant is each device's assignment given its
// host ID, pinned by TestCohortAssignDeterministic.)
func TestCohortStatsReproducible(t *testing.T) {
	cfg := Home1(0.02)
	cfg.Cohorts = testPlan(99)
	seed := int64(7)
	const nshards = 4

	var total ShardStats
	for sh := 0; sh < nshards; sh++ {
		st := GenerateShard(cfg, seed, sh, nshards, func(*traces.FlowRecord) {})
		again := GenerateShard(cfg, seed, sh, nshards, func(*traces.FlowRecord) {})
		if !reflect.DeepEqual(st, again) {
			t.Fatalf("shard %d stats not reproducible:\n%+v\n%+v", sh, st, again)
		}
		var devSum int
		for _, n := range st.CohortDevices {
			devSum += n
		}
		if devSum != st.Devices {
			t.Fatalf("shard %d cohort devices sum to %d, shard generated %d", sh, devSum, st.Devices)
		}
		total.Merge(st)
	}
	var devSum int
	for _, n := range total.CohortDevices {
		devSum += n
	}
	if devSum != total.Devices {
		t.Fatalf("merged cohort devices sum to %d, fleet generated %d", devSum, total.Devices)
	}
}

// TestCohortBehaviorShowsInStream: a cohort overlay actually changes the
// generated stream (an always-on 6x-edit-rate population produces more
// records than the baseline), while a nil plan reproduces the baseline —
// the invisibility half is pinned bit-for-bit by TestRecordStreamGolden.
func TestCohortBehaviorShowsInStream(t *testing.T) {
	base := Home1(0.02)
	records := func(cfg VPConfig) int {
		st := GenerateShard(cfg, 7, 0, 1, func(*traces.FlowRecord) {})
		return st.Records
	}
	baseline := records(base)

	hot := base
	hot.Cohorts = NewCohortPlan(1, []Cohort{{Name: "bots", Weight: 1, AlwaysOn: true, EditRateMult: 6}})
	boosted := records(hot)
	if boosted <= baseline {
		t.Fatalf("always-on 6x cohort generated %d records, baseline %d — overrides are not reaching the generator", boosted, baseline)
	}
}

// TestCohortTelemetryInvisibleWithoutPlan: a plan-less run must not move
// any scenario.cohort.* counter — the per-cohort telemetry rides on the
// cohort maps, which stay nil on the legacy path.
func TestCohortTelemetryInvisibleWithoutPlan(t *testing.T) {
	before := telemetry.Snapshot().Counters
	GenerateShard(Home1(0.02), 7, 0, 1, func(*traces.FlowRecord) {})
	for name, v := range telemetry.Snapshot().Counters {
		if strings.HasPrefix(name, "scenario.cohort.") && v != before[name] {
			t.Errorf("plan-less generation moved %s: %d -> %d", name, before[name], v)
		}
	}
}
