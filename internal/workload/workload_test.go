package workload

import (
	"testing"
	"time"

	"insidedropbox/internal/analysis"
	"insidedropbox/internal/classify"
	"insidedropbox/internal/traces"
	"insidedropbox/internal/wire"
)

func home1Small(t *testing.T) *Dataset {
	t.Helper()
	cfg := Home1(0.08) // ~1500 IPs
	return Generate(cfg, 42)
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Campus1(0.3)
	a := Generate(cfg, 7)
	b := Generate(cfg, 7)
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	if a.Records[0].BytesUp != b.Records[0].BytesUp {
		t.Fatal("same seed produced different records")
	}
	c := Generate(cfg, 8)
	if len(c.Records) == len(a.Records) {
		t.Log("different seeds produced equal counts (possible but unlikely)")
	}
}

func TestRecordsWithinHorizonAndSorted(t *testing.T) {
	ds := home1Small(t)
	horizon := ds.Horizon()
	prev := time.Duration(-1)
	for _, r := range ds.Records {
		if r.FirstPacket < prev {
			t.Fatal("records not sorted by start time")
		}
		prev = r.FirstPacket
		if r.FirstPacket < 0 || r.FirstPacket >= horizon {
			t.Fatalf("record starts outside horizon: %v", r.FirstPacket)
		}
	}
	if len(ds.Records) < 1000 {
		t.Fatalf("suspiciously few records: %d", len(ds.Records))
	}
}

func TestDropboxPenetration(t *testing.T) {
	ds := home1Small(t)
	frac := float64(ds.DropboxHouseholds) / float64(ds.Cfg.TotalIPs)
	if frac < 0.045 || frac > 0.095 {
		t.Fatalf("dropbox penetration = %.3f, want ≈ 0.069", frac)
	}
}

func TestOutageDayEmpty(t *testing.T) {
	ds := home1Small(t)
	for _, r := range ds.Records {
		if DayOfRecord(r) == 28 {
			t.Fatalf("record on outage day: %v", r.FirstPacket)
		}
	}
	if ds.BackgroundByDay[28] != 0 || ds.YouTubeByDay[28] != 0 {
		t.Fatal("background volume on outage day")
	}
}

func TestGoogleDriveLaunch(t *testing.T) {
	ds := home1Small(t)
	for _, r := range ds.Records {
		if classify.ProviderOf(r) == classify.ProvGoogleDrive && DayOfRecord(r) < 31 {
			t.Fatalf("Google Drive flow before launch day: day %d", DayOfRecord(r))
		}
	}
}

func TestStorageFlowCap(t *testing.T) {
	ds := home1Small(t)
	maxBytes := int64(0)
	for _, r := range ds.Records {
		if classify.ProviderOf(r) != classify.ProvDropbox {
			continue
		}
		if classify.DropboxService(r).IsStorage() && r.ServerPort == 443 {
			if v := r.BytesUp + r.BytesDown; v > maxBytes {
				maxBytes = v
			}
		}
	}
	// 100 chunks x 4 MB plus overheads: nothing should exceed ~420 MB.
	if maxBytes > 440e6 {
		t.Fatalf("storage flow of %d bytes exceeds the batch cap", maxBytes)
	}
	if maxBytes < 10e6 {
		t.Fatalf("no large storage flows at all (max %d)", maxBytes)
	}
}

func TestGroupRecovery(t *testing.T) {
	// The probe-side Table 5 heuristics should recover a group mixture
	// close to the configured one.
	ds := home1Small(t)
	store := make(map[wire.IP]int64)
	retr := make(map[wire.IP]int64)
	hasClient := make(map[wire.IP]bool)
	for _, r := range ds.Records {
		if classify.ProviderOf(r) != classify.ProvDropbox {
			continue
		}
		if r.NotifyHost != 0 {
			hasClient[r.Client] = true
		}
		if svc := classify.DropboxService(r); svc.String() == "Client (storage)" {
			switch classify.TagStorage(r) {
			case classify.DirStore:
				store[r.Client] += classify.Payload(r, classify.DirStore)
			case classify.DirRetrieve:
				retr[r.Client] += classify.Payload(r, classify.DirRetrieve)
			}
		}
	}
	counts := map[classify.UserGroup]int{}
	total := 0
	for ip := range hasClient {
		counts[classify.GroupOf(store[ip], retr[ip])]++
		total++
	}
	if total < 50 {
		t.Fatalf("too few classified households: %d", total)
	}
	occ := float64(counts[classify.GroupOccasional]) / float64(total)
	heavy := float64(counts[classify.GroupHeavy]) / float64(total)
	if occ < 0.15 || occ > 0.50 {
		t.Fatalf("occasional fraction = %.2f, config wants ≈ 0.31", occ)
	}
	if heavy < 0.20 || heavy > 0.55 {
		t.Fatalf("heavy fraction = %.2f, config wants ≈ 0.37", heavy)
	}
}

func TestDevicesPerHouseholdShape(t *testing.T) {
	ds := home1Small(t)
	perIP := classify.DevicesPerIP(ds.Records)
	c := analysis.NewCounter()
	for _, n := range perIP {
		c.Add(n)
	}
	if c.Total() < 50 {
		t.Fatalf("too few households: %d", c.Total())
	}
	if f := c.Fraction(1); f < 0.45 || f > 0.75 {
		t.Fatalf("single-device fraction = %.2f, Fig. 12 wants ≈ 0.6", f)
	}
}

func TestNamespaceShape(t *testing.T) {
	ds := home1Small(t)
	perDev := classify.NamespacesPerDevice(ds.Records)
	c := analysis.NewCounter()
	for _, n := range perDev {
		c.Add(n)
	}
	if f := c.Fraction(1); f < 0.18 || f > 0.40 {
		t.Fatalf("1-namespace fraction = %.2f, Fig. 13 wants ≈ 0.28 in homes", f)
	}
	// Campus should skew higher.
	campus := Generate(Campus1(1.0), 9)
	cc := analysis.NewCounter()
	for _, n := range classify.NamespacesPerDevice(campus.Records) {
		cc.Add(n)
	}
	if cc.FractionAtLeast(5) <= c.FractionAtLeast(5) {
		t.Fatalf("campus >=5-namespace share (%.2f) should exceed home (%.2f)",
			cc.FractionAtLeast(5), c.FractionAtLeast(5))
	}
}

func TestNotifySessionsChopped(t *testing.T) {
	cfg := Home1(0.02)
	cfg.NATChoppedFrac = 1.0 // force every session behind a NAT killer
	ds := Generate(cfg, 5)
	short := 0
	totalNotify := 0
	for _, r := range ds.Records {
		if r.NotifyHost != 0 {
			totalNotify++
			if r.Duration() < time.Minute {
				short++
			}
		}
	}
	if totalNotify == 0 {
		t.Fatal("no notify flows")
	}
	// Chopped connections live 15-75 s, so roughly three quarters fall
	// under the minute.
	if frac := float64(short) / float64(totalNotify); frac < 0.6 {
		t.Fatalf("chopped sessions: only %.2f of notify flows under a minute", frac)
	}
}

func TestCampus2NoDNS(t *testing.T) {
	ds := Generate(Campus2(0.15), 3)
	for _, r := range ds.Records {
		if r.FQDN != "" {
			t.Fatalf("Campus 2 record carries FQDN %q", r.FQDN)
		}
	}
	// Classification must still work via SNI/cert.
	dropboxFlows := 0
	for _, r := range ds.Records {
		if classify.ProviderOf(r) == classify.ProvDropbox {
			dropboxFlows++
		}
	}
	if dropboxFlows == 0 {
		t.Fatal("no Dropbox flows classified without DNS")
	}
}

func TestAbnormalUploaderPresence(t *testing.T) {
	ds := Generate(Home2(0.06), 11)
	// The anomaly shows as a pile of single-chunk ~4 MB store flows.
	fourMB := 0
	for _, r := range ds.Records {
		if r.ServerPort != 443 || classify.ProviderOf(r) != classify.ProvDropbox {
			continue
		}
		if classify.TagStorage(r) == classify.DirStore {
			p := classify.Payload(r, classify.DirStore)
			if p > 4<<20 && p < 4<<20+700_000 {
				fourMB++
			}
		}
	}
	if fourMB < 50 {
		t.Fatalf("abnormal uploader produced only %d single-chunk 4MB flows", fourMB)
	}
}

func TestControlFlowsDominateFlowCount(t *testing.T) {
	ds := home1Small(t)
	control, storage, all := 0, 0, 0
	for _, r := range ds.Records {
		if classify.ProviderOf(r) != classify.ProvDropbox {
			continue
		}
		all++
		svc := classify.DropboxService(r)
		if svc.IsStorage() {
			storage++
		} else {
			control++
		}
	}
	if all == 0 {
		t.Fatal("no dropbox flows")
	}
	frac := float64(control) / float64(all)
	if frac < 0.6 {
		t.Fatalf("control flows = %.2f of Dropbox flows; Fig. 4 wants > 0.8", frac)
	}
}

func TestDatasetVolumeDenominators(t *testing.T) {
	ds := Generate(Campus2(0.15), 13)
	var recVol float64
	for _, r := range ds.Records {
		recVol += float64(r.BytesUp + r.BytesDown)
	}
	if ds.TotalVolume() <= recVol {
		t.Fatal("total volume must include background")
	}
	if len(ds.BackgroundByDay) != ds.Cfg.Days {
		t.Fatal("background bins wrong length")
	}
}

func traceRecordsVP(ds *Dataset) string {
	if len(ds.Records) == 0 {
		return ""
	}
	return ds.Records[0].VP
}

func TestVPStamped(t *testing.T) {
	ds := Generate(Campus1(0.5), 17)
	if traceRecordsVP(ds) != "campus1" {
		t.Fatalf("vp = %q", traceRecordsVP(ds))
	}
	var _ *traces.FlowRecord = ds.Records[0]
}

func BenchmarkGenerateCampus1(b *testing.B) {
	cfg := Campus1(0.5)
	for i := 0; i < b.N; i++ {
		ds := Generate(cfg, int64(i))
		if len(ds.Records) == 0 {
			b.Fatal("empty dataset")
		}
	}
}
