package workload

import (
	"hash/fnv"
	"testing"

	"insidedropbox/internal/capability"
	"insidedropbox/internal/traces"
)

// streamHash serializes a (cfg, seed, shards) record stream as
// non-anonymized CSV — every field, full precision where CSV carries it —
// and returns the FNV-1a hash of the bytes. Multi-shard streams hash
// shards in index order (the canonical fleet order).
func streamHash(t *testing.T, cfg VPConfig, seed int64, nshards int) uint64 {
	t.Helper()
	h := fnv.New64a()
	w := traces.NewWriter(h)
	for sh := 0; sh < nshards; sh++ {
		GenerateShard(cfg, seed, sh, nshards, func(r *traces.FlowRecord) {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return h.Sum64()
}

// TestRecordStreamGolden pins the generated record streams bit for bit.
// These hashes were recorded before the hot-path optimization pass
// (string interning, record pooling, event-slice rewrite, chunk-size
// iteration): any optimization that changes a single byte of any record
// stream fails here. Update a hash only for a deliberate,
// documented model change — never for a performance change
// (PERFORMANCE.md: optimizations must not change golden outputs).
func TestRecordStreamGolden(t *testing.T) {
	bigChunks, ok := capability.ByName("big-chunks-16mb")
	if !ok {
		t.Fatal("big-chunks-16mb preset missing")
	}
	withCaps := func(cfg VPConfig, p capability.Profile) VPConfig {
		cfg.Caps = &p
		return cfg
	}
	cases := []struct {
		name    string
		cfg     VPConfig
		seed    int64
		nshards int
		want    uint64
	}{
		{"home1-1shard", Home1(0.02), 7, 1, 0xd01117eb3a234b9d},
		{"home1-4shard", Home1(0.02), 7, 4, 0x1887b88d5f86bad5},
		{"home2-abnormal-1shard", Home2(0.02), 9, 1, 0xa59024c1345e9efb},
		{"campus1-1shard", Campus1(0.1), 7, 1, 0x6e788bc7931c6666},
		{"campus1-bigchunks-1shard", withCaps(Campus1(0.1), bigChunks), 7, 1, 0x5ffb4eb3ba85ad2b},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := streamHash(t, tc.cfg, tc.seed, tc.nshards)
			if got != tc.want {
				t.Fatalf("record stream hash = %#x, want %#x (a hot-path change altered generated records)", got, tc.want)
			}
		})
	}
}
