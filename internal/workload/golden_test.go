package workload

import (
	"bytes"
	"hash/fnv"
	"io"
	"testing"

	"insidedropbox/internal/capability"
	"insidedropbox/internal/traces"
)

// streamHash serializes a (cfg, seed, shards) record stream as
// non-anonymized CSV — every field, full precision where CSV carries it —
// and returns the FNV-1a hash of the bytes. Multi-shard streams hash
// shards in index order (the canonical fleet order).
func streamHash(t *testing.T, cfg VPConfig, seed int64, nshards int) uint64 {
	t.Helper()
	h := fnv.New64a()
	w := traces.NewWriter(h)
	for sh := 0; sh < nshards; sh++ {
		GenerateShard(cfg, seed, sh, nshards, func(r *traces.FlowRecord) {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return h.Sum64()
}

// TestRecordStreamGolden pins the generated record streams bit for bit.
// These hashes were recorded before the hot-path optimization pass
// (string interning, record pooling, event-slice rewrite, chunk-size
// iteration): any optimization that changes a single byte of any record
// stream fails here. Update a hash only for a deliberate,
// documented model change — never for a performance change
// (PERFORMANCE.md: optimizations must not change golden outputs).
func TestRecordStreamGolden(t *testing.T) {
	bigChunks, ok := capability.ByName("big-chunks-16mb")
	if !ok {
		t.Fatal("big-chunks-16mb preset missing")
	}
	withCaps := func(cfg VPConfig, p capability.Profile) VPConfig {
		cfg.Caps = &p
		return cfg
	}
	cases := []struct {
		name    string
		cfg     VPConfig
		seed    int64
		nshards int
		want    uint64
	}{
		{"home1-1shard", Home1(0.02), 7, 1, 0xd01117eb3a234b9d},
		{"home1-4shard", Home1(0.02), 7, 4, 0x1887b88d5f86bad5},
		{"home2-abnormal-1shard", Home2(0.02), 9, 1, 0xa59024c1345e9efb},
		{"campus1-1shard", Campus1(0.1), 7, 1, 0x6e788bc7931c6666},
		{"campus1-bigchunks-1shard", withCaps(Campus1(0.1), bigChunks), 7, 1, 0x5ffb4eb3ba85ad2b},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := streamHash(t, tc.cfg, tc.seed, tc.nshards)
			if got != tc.want {
				t.Fatalf("record stream hash = %#x, want %#x (a hot-path change altered generated records)", got, tc.want)
			}
		})
	}
}

// binaryStreamBytes serializes a (cfg, seed, shards) record stream
// through w (a factory so each call gets a fresh writer over its own
// buffer) and returns the bytes.
func binaryStreamBytes(t *testing.T, cfg VPConfig, seed int64, nshards int, w traces.RecordWriter) {
	t.Helper()
	for sh := 0; sh < nshards; sh++ {
		GenerateShard(cfg, seed, sh, nshards, func(r *traces.FlowRecord) {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestRecordStreamGoldenCodecs extends the golden contract across the
// serialization stack: the parallel binary writer must emit the same
// bytes at workers=1 and workers=8 (the determinism contract — worker
// count never changes output), both must match the sequential writer,
// and the flate archival tier must be equally worker-independent. The
// CSV golden hashes above transitively pin record content; these pin the
// binary/archival framing on real generated streams.
func TestRecordStreamGoldenCodecs(t *testing.T) {
	cfg, seed, nshards := Home1(0.02), int64(7), 4

	var seq bytes.Buffer
	sw := traces.NewBinaryWriter(&seq)
	binaryStreamBytes(t, cfg, seed, nshards, sw)

	for _, workers := range []int{1, 8} {
		var par bytes.Buffer
		pw := traces.NewParallelBinaryWriter(&par, workers)
		binaryStreamBytes(t, cfg, seed, nshards, pw)
		if !bytes.Equal(par.Bytes(), seq.Bytes()) {
			t.Fatalf("parallel binary (workers=%d) differs from sequential writer", workers)
		}
	}

	var flate1 bytes.Buffer
	fw1 := traces.NewFlateWriter(&flate1, 1)
	binaryStreamBytes(t, cfg, seed, nshards, fw1)
	var flate8 bytes.Buffer
	fw8 := traces.NewFlateWriter(&flate8, 8)
	binaryStreamBytes(t, cfg, seed, nshards, fw8)
	if !bytes.Equal(flate1.Bytes(), flate8.Bytes()) {
		t.Fatal("flate stream differs between workers=1 and workers=8")
	}

	// The archival tier re-streams to the identical record sequence: CSV
	// re-serialization of the decoded records reproduces the golden hash.
	fr := traces.NewFlateReader(bytes.NewReader(flate1.Bytes()))
	h := fnv.New64a()
	cw := traces.NewWriter(h)
	for {
		rec, err := fr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := cw.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	const want = 0x1887b88d5f86bad5 // home1-4shard golden hash above
	if got := h.Sum64(); got != want {
		t.Fatalf("flate round-trip CSV hash = %#x, want %#x", got, want)
	}
}
