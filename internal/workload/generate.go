package workload

import (
	"sort"
	"strconv"
	"time"

	"insidedropbox/internal/capability"
	"insidedropbox/internal/chunker"
	"insidedropbox/internal/classify"
	"insidedropbox/internal/dropbox"
	"insidedropbox/internal/flowmodel"
	"insidedropbox/internal/simrand"
	"insidedropbox/internal/tlssim"
	"insidedropbox/internal/traces"
	"insidedropbox/internal/wire"
)

// Interned hostname tables: the record hot path stamps one of ~520 storage
// SNIs and 20 notify FQDNs onto nearly every flow, so formatting them per
// record (the old fmt.Sprintf path) dominated the allocation profile.
// They are built once at package init and shared by all shards.
var (
	storageSNIs = func() [520]string {
		var s [520]string
		for i := range s {
			s[i] = "dl-client" + strconv.Itoa(i+1) + ".dropbox.com"
		}
		return s
	}()
	notifyFQDNs = func() [20]string {
		var s [20]string
		for i := range s {
			s[i] = "notify" + strconv.Itoa(i+1) + ".dropbox.com"
		}
		return s
	}()
)

// Dataset is the flow-level outcome of one vantage point campaign: the
// records the probe would have exported plus the aggregate denominators the
// popularity figures need.
type Dataset struct {
	Cfg     VPConfig
	Records []*traces.FlowRecord

	// BackgroundByDay is non-cloud traffic volume per day in bytes
	// (denominator of Table 2 and Fig. 3); YouTubeByDay carves out YouTube.
	BackgroundByDay []float64
	YouTubeByDay    []float64

	// Ground truth for validating probe-side inference.
	DropboxHouseholds int
	DropboxDevices    int
}

// Horizon returns the campaign length.
func (d *Dataset) Horizon() time.Duration {
	return time.Duration(d.Cfg.Days) * 24 * time.Hour
}

// TotalVolume sums payload bytes over all records plus background.
func (d *Dataset) TotalVolume() float64 {
	total := 0.0
	for _, r := range d.Records {
		total += float64(r.BytesUp + r.BytesDown)
	}
	for _, v := range d.BackgroundByDay {
		total += v
	}
	return total
}

// session is one device-online interval.
type session struct {
	start, end time.Duration
}

// device is a generated Dropbox client installation.
type device struct {
	host       uint64
	namespaces []uint32
	natChopped bool
	sessions   []session
	access     AccessKind
	// cohort is the device's behavioral cohort (nil without a plan).
	cohort *Cohort
	// events accumulates the device's pending synchronization events while
	// a household is generated, then is sorted and drained in time order
	// (the former map[*device][]syncEvent, flattened onto the device).
	events []syncEvent
}

// household is one subscriber line.
type household struct {
	ip      wire.IP
	access  AccessKind
	group   classify.UserGroup
	devices []*device
}

// generator carries the run state of one shard.
type generator struct {
	cfg     VPConfig
	caps    capability.Profile // capability profile of the current device
	rng     *simrand.Source
	emit    func(*traces.FlowRecord)
	alloc   func() *traces.FlowRecord
	free    func(*traces.FlowRecord)
	stats   ShardStats
	outage  []bool // per-day probe outage, nil when none configured
	horizon time.Duration

	// Cohort state: plan is cfg.Cohorts, cohort tracks the device being
	// generated (nil between devices and on the legacy path), baseCaps is
	// the VP-level profile restored when a cohort carries no override, and
	// cohortCaps marks that caps came from a cohort (params() then honors
	// the profile's server IW, as an explicit VP profile does).
	plan       *CohortPlan
	cohort     *Cohort
	baseCaps   capability.Profile
	cohortCaps bool

	nextHost uint64
	nextNS   uint32

	storagePool int // number of storage server IPs

	// Per-shard scratch reused across flows (never escapes a call).
	synth flowmodel.Synth
	wires []int

	// filesArena is a rolling slab backing the per-event changed-file
	// lists: lists are carved off sequentially and the slab is replaced —
	// never rewound — when full, so live lists are never reused and dead
	// ones are reclaimed with their slab (see allocFiles).
	filesArena []int64
	filesOff   int
}

// newRecord returns a zero-valued record from the sink's allocator (a
// fresh allocation when the sink supplies none).
func (g *generator) newRecord() *traces.FlowRecord { return g.alloc() }

// ShardStats is the non-record outcome of one shard's generation: the ground
// truth counters plus (on shard 0 only) the population-level background
// volume arrays. Record streams flow through the emit callback instead.
type ShardStats struct {
	Shard   int
	Records int // records emitted (after outage filtering)

	// Ground truth for validating probe-side inference.
	Households, Devices int

	// SyncEvents counts the synthesized device sync events (store and
	// retrieve batches) that drove storage-flow generation.
	SyncEvents int

	// Background arrays describe the whole vantage point population, so
	// only shard 0 produces them (nil on every other shard).
	BackgroundByDay []float64
	YouTubeByDay    []float64

	// Per-cohort ground truth, keyed by cohort name (nil without a
	// cohort plan). CohortRecords attributes device-level flows only;
	// household-level web/API/provider traffic stays unattributed, so the
	// values sum to at most Records.
	CohortDevices map[string]int
	CohortRecords map[string]int
}

func (s *ShardStats) addCohortDevice(name string) {
	if s.CohortDevices == nil {
		s.CohortDevices = make(map[string]int)
	}
	s.CohortDevices[name]++
}

func (s *ShardStats) addCohortRecord(name string) {
	if s.CohortRecords == nil {
		s.CohortRecords = make(map[string]int)
	}
	s.CohortRecords[name]++
}

// Merge folds another shard's stats in. Call in shard-index order so merged
// results are independent of worker scheduling.
func (s *ShardStats) Merge(o ShardStats) {
	s.Records += o.Records
	s.Households += o.Households
	s.Devices += o.Devices
	s.SyncEvents += o.SyncEvents
	if o.BackgroundByDay != nil {
		s.BackgroundByDay = o.BackgroundByDay
		s.YouTubeByDay = o.YouTubeByDay
	}
	if o.CohortDevices != nil && s.CohortDevices == nil {
		s.CohortDevices = make(map[string]int)
	}
	for k, v := range o.CohortDevices {
		s.CohortDevices[k] += v
	}
	if o.CohortRecords != nil && s.CohortRecords == nil {
		s.CohortRecords = make(map[string]int)
	}
	for k, v := range o.CohortRecords {
		s.CohortRecords[k] += v
	}
}

// ShardSeed derives the deterministic seed of one shard from the campaign
// seed. Shard 0 keeps the root seed unchanged so a 1-shard run reproduces
// the legacy sequential Generate stream bit for bit.
func ShardSeed(seed int64, shard int) int64 {
	if shard == 0 {
		return seed
	}
	var buf [32]byte
	label := append(buf[:0], "workload/shard/"...)
	label = strconv.AppendInt(label, int64(shard), 10)
	return simrand.DeriveSeed(seed, string(label))
}

// ShardRange returns the half-open subscriber-index range [lo,hi) owned by
// shard of nshards over a population of total IPs. Ranges are contiguous,
// disjoint, cover [0,total), and differ in size by at most one.
func ShardRange(total, shard, nshards int) (lo, hi int) {
	base, rem := total/nshards, total%nshards
	lo = shard * base
	if shard < rem {
		lo += shard
	} else {
		lo += rem
	}
	hi = lo + base
	if shard < rem {
		hi++
	}
	return lo, hi
}

// hostStride / nsStride carve the device and namespace ID spaces into
// per-shard blocks so IDs never collide across concurrently generated
// shards. Shard 0 starts at 1, matching the legacy sequential generator.
// MaxShards bounds the shard count so the uint32 namespace blocks stay
// disjoint (1024 blocks of 4M namespaces each).
const (
	hostStride = uint64(1) << 40
	nsStride   = uint32(1) << 22
	MaxShards  = 1 << 10
)

// Generate produces the dataset for a vantage point: the legacy sequential
// entry point, now a 1-shard run of the shard-callable core.
func Generate(cfg VPConfig, seed int64) *Dataset {
	ds := &Dataset{Cfg: cfg}
	stats := GenerateShard(cfg, seed, 0, 1, func(r *traces.FlowRecord) {
		ds.Records = append(ds.Records, r)
	})
	ds.BackgroundByDay = stats.BackgroundByDay
	ds.YouTubeByDay = stats.YouTubeByDay
	ds.DropboxHouseholds = stats.Households
	ds.DropboxDevices = stats.Devices
	SortRecords(ds.Records)
	return ds
}

// SortRecords orders records by first-packet time, the probe export order.
func SortRecords(rs []*traces.FlowRecord) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].FirstPacket < rs[j].FirstPacket })
}

// ShardSink is where one generating shard delivers its records. Emit is
// required. Alloc and Free are optional record-storage hooks for pooled
// generation: when set, every record the shard produces comes from Alloc
// (which must return zero-valued records), and records that die without
// being emitted — probe-outage drops and flow-fold scratch — go back
// through Free. A sink that recycles emitted records after Emit returns
// (fleet.Aggregate does) makes shard generation allocation-free per
// record; sinks that retain emitted records must leave Alloc nil or never
// recycle them. Emit, Alloc and Free are always called from the same
// goroutine, in generation order.
type ShardSink struct {
	Emit  func(*traces.FlowRecord)
	Alloc func() *traces.FlowRecord
	Free  func(*traces.FlowRecord)
}

// GenerateShard generates one shard of a vantage point population,
// streaming records through emit in generation order (no global sort, no
// accumulation). The population is partitioned by ShardRange; each shard
// draws from an independent stream seeded by ShardSeed, so the output of a
// (seed, shard, nshards) triple is a pure function — identical no matter
// how many shards run concurrently. Probe-outage days are filtered at emit
// time, which keeps the surviving stream identical to the legacy
// generate-then-filter order.
func GenerateShard(cfg VPConfig, seed int64, shard, nshards int, emit func(*traces.FlowRecord)) ShardStats {
	return GenerateShardSink(cfg, seed, shard, nshards, ShardSink{Emit: emit})
}

// GenerateShardSink is GenerateShard with record-storage hooks; records
// and stats are bit-identical whether or not the hooks are set (pinned by
// TestPooledShardMatchesUnpooled).
func GenerateShardSink(cfg VPConfig, seed int64, shard, nshards int, sink ShardSink) ShardStats {
	if nshards < 1 {
		nshards = 1
	}
	if nshards > MaxShards {
		panic("workload: " + strconv.Itoa(nshards) + " shards exceeds MaxShards (" + strconv.Itoa(MaxShards) + ")")
	}
	if shard < 0 || shard >= nshards {
		panic("workload: shard " + strconv.Itoa(shard) + " out of range [0," + strconv.Itoa(nshards) + ")")
	}
	var label []byte
	label = append(label, "workload/"...)
	label = append(label, cfg.Name...)
	label = append(label, '/')
	label = strconv.AppendInt(label, int64(shard), 10)
	label = append(label, '.')
	label = strconv.AppendInt(label, int64(nshards), 10)
	g := &generator{
		cfg:         cfg,
		caps:        EffectiveCaps(cfg),
		baseCaps:    EffectiveCaps(cfg),
		plan:        cfg.Cohorts,
		rng:         simrand.New(ShardSeed(seed, shard), string(label)),
		emit:        sink.Emit,
		alloc:       sink.Alloc,
		free:        sink.Free,
		horizon:     time.Duration(cfg.Days) * 24 * time.Hour,
		nextHost:    1 + uint64(shard)*hostStride,
		nextNS:      1 + uint32(shard)*nsStride,
		storagePool: 640,
	}
	if g.alloc == nil {
		g.alloc = func() *traces.FlowRecord { return new(traces.FlowRecord) }
	}
	if g.free == nil {
		g.free = func(*traces.FlowRecord) {}
	}
	g.stats.Shard = shard
	if len(cfg.OutageDays) > 0 {
		days := cfg.Days
		for _, d := range cfg.OutageDays {
			if d >= days {
				days = d + 1
			}
		}
		g.outage = make([]bool, days)
		for _, d := range cfg.OutageDays {
			g.outage[d] = true
		}
	}
	if shard == 0 {
		g.stats.BackgroundByDay = make([]float64, cfg.Days)
		g.stats.YouTubeByDay = make([]float64, cfg.Days)
		g.background()
	}
	// All shards must share one IP-plane base, or large sharded populations
	// alias client addresses across shards (two shards' 62500-subscriber
	// blocks landing on the same second octet, silently merging
	// households). The shard-local draw is kept so the 1-shard stream
	// stays bit-compatible with the legacy sequential generator;
	// multi-shard runs derive the shared base from the campaign seed.
	ipBase := g.rng.Intn(200)
	if nshards > 1 {
		ipBase = int(uint64(simrand.DeriveSeed(seed, "workload/ipbase")) % 200)
	}
	lo, hi := ShardRange(cfg.TotalIPs, shard, nshards)
	for i := lo; i < hi; i++ {
		g.subscriber(SubscriberIP(ipBase, i))
	}
	g.stats.flushTelemetry()
	return g.stats
}

// SubscriberIP maps a subscriber index to a stable 10/8 client address.
// Indices below 62500 keep the legacy 10.base.i/250.i%250 layout; above
// that, whole blocks roll into the second octet instead of silently
// wrapping the third, so a vantage point can hold ~16M distinct addresses
// — the regime DevicesScale targets — before 10/8 itself runs out.
func SubscriberIP(ipBase, i int) wire.IP {
	block, rem := i/62500, i%62500
	return wire.MakeIP(10, byte((ipBase+block)%256), byte(rem/250), byte(rem%250))
}

// isOutage reports whether a campaign day is a probe outage.
func (g *generator) isOutage(day int) bool {
	return day >= 0 && day < len(g.outage) && g.outage[day]
}

// record streams one finished flow record out of the shard, dropping
// probe-outage days (the streaming equivalent of the legacy applyOutages
// pass: the filter is per-record, so filtering at emit time preserves both
// the surviving set and its order). Dropped records go back to the sink's
// Free hook — they were never emitted.
func (g *generator) record(r *traces.FlowRecord) {
	if g.isOutage(int(r.FirstPacket / (24 * time.Hour))) {
		g.free(r)
		return
	}
	g.stats.Records++
	if c := g.cohort; c != nil {
		g.stats.addCohortRecord(c.Name)
	}
	g.emit(r)
}

// background fills the per-day non-cloud and YouTube volumes, modulated by
// week/holiday factors. DailyBackgroundGB describes the paper's full
// population, so it scales down with the simulated one to keep traffic
// shares (Fig. 3, Table 2) comparable.
func (g *generator) background() {
	scale := g.cfg.Scale
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	for d := 0; d < g.cfg.Days; d++ {
		t := time.Duration(d) * 24 * time.Hour
		day := (d + campaignStartWeekday) % 7
		factor := [7]float64(g.cfg.Week)[day] * g.cfg.Holidays.At(t)
		vol := g.cfg.DailyBackgroundGB * 1e9 * scale * factor * g.rng.Uniform(0.92, 1.08)
		yt := vol * g.cfg.YouTubeShare * g.rng.Uniform(0.85, 1.15)
		if g.isOutage(d) {
			// Probe outage: the day records no volume at all.
			vol, yt = 0, 0
		}
		g.stats.BackgroundByDay[d] = vol - yt
		g.stats.YouTubeByDay[d] = yt
	}
}

// weekShifted folds the campaign start weekday into a weekly profile.
func weekShifted(w simrand.WeekdayFactor) simrand.WeekdayFactor {
	var out simrand.WeekdayFactor
	for i := 0; i < 7; i++ {
		out[i] = [7]float64(w)[(i+campaignStartWeekday)%7]
	}
	return out
}

// weekAdjusted is the configured weekly profile in campaign time.
func (g *generator) weekAdjusted() simrand.WeekdayFactor {
	return weekShifted(g.cfg.Week)
}

// subscriber generates all traffic of one IP address.
func (g *generator) subscriber(ip wire.IP) {
	access := g.cfg.Access[g.rng.Intn(len(g.cfg.Access))]
	if g.rng.Bool(g.cfg.DropboxFrac) {
		hh := g.makeDropboxHousehold(ip, access)
		g.dropboxTraffic(hh)
	}
	// Competing providers move an order of magnitude less data than
	// Dropbox despite comparable-or-higher installation counts (Fig. 2b:
	// iCloud cannot sync arbitrary files).
	if g.rng.Bool(g.cfg.ICloudFrac) {
		g.providerTraffic(ip, classify.CertICloud, 0, 2.0e6, 4)
	}
	if g.rng.Bool(g.cfg.SkyDriveFrac) {
		g.providerTraffic(ip, classify.CertSkyDrive, 0, 1.6e6, 3)
	}
	if g.rng.Bool(g.cfg.GDriveFrac) {
		g.providerTraffic(ip, classify.CertGoogleDrive, 31, 2.5e6, 3) // launch Apr 24
	}
	if g.rng.Bool(g.cfg.OtherCloudFrac) {
		certs := []string{classify.CertSugarSync, classify.CertBox, classify.CertUbuntuOne}
		g.providerTraffic(ip, certs[g.rng.Intn(len(certs))], 0, 1.0e6, 2)
	}
	// Some non-client users fetch public direct links (Sec. 6).
	if g.rng.Bool(0.02) {
		g.directLinkDownloads(ip, 2)
	}
}

// ---------- Dropbox population ----------

func (g *generator) makeDropboxHousehold(ip wire.IP, access AccessKind) *household {
	hh := &household{ip: ip, access: access, group: g.pickGroup()}
	n := g.deviceCount(hh.group)
	// Household namespace pool: the root plus shared folders; devices of
	// the same account overlap in their namespace lists (Sec. 2.3.1).
	rootNS := g.allocNS()
	poolSize := 1 + g.rng.Intn(6)
	pool := make([]uint32, poolSize)
	for i := range pool {
		pool[i] = g.allocNS()
	}
	for i := 0; i < n; i++ {
		d := &device{host: g.nextHost, access: access}
		g.nextHost++
		if g.plan != nil {
			d.cohort = g.plan.Assign(d.host)
			g.setCohort(d.cohort)
			g.stats.addCohortDevice(d.cohort.Name)
		}
		d.namespaces = g.deviceNamespaces(rootNS, pool)
		// A few devices sit permanently behind connection-killing
		// equipment; most chopping is decided per session.
		d.natChopped = g.rng.Bool(g.chopFrac() / 4)
		d.sessions = g.deviceSessions(hh.group)
		hh.devices = append(hh.devices, d)
	}
	if g.plan != nil {
		g.setCohort(nil)
	}
	g.stats.Households++
	g.stats.Devices += n
	return hh
}

// setCohort switches the generator's behavioral context to a device's
// cohort: the capability profile swaps to the cohort's override (restored
// to the VP baseline on nil), and the multiplier hooks below start reading
// the cohort. Never called on the legacy nil-plan path, which therefore
// stays bit-identical.
func (g *generator) setCohort(c *Cohort) {
	g.cohort = c
	if c != nil && c.Caps != nil {
		g.caps = *c.Caps
		g.cohortCaps = true
	} else {
		g.caps = g.baseCaps
		g.cohortCaps = false
	}
}

// chopFrac is the effective per-session notification-chopping probability:
// the VP baseline plus the current cohort's intermittent-connectivity add-on.
func (g *generator) chopFrac() float64 {
	f := g.cfg.NATChoppedFrac
	if c := g.cohort; c != nil {
		f += c.NATChopFrac
		if f > 1 {
			f = 1
		}
	}
	return f
}

func (g *generator) pickGroup() classify.UserGroup {
	m := g.cfg.Groups
	u := g.rng.Float64()
	switch {
	case u < m.Occasional:
		return classify.GroupOccasional
	case u < m.Occasional+m.UploadOnly:
		return classify.GroupUploadOnly
	case u < m.Occasional+m.UploadOnly+m.DownloadOnly:
		return classify.GroupDownloadOnly
	default:
		return classify.GroupHeavy
	}
}

// deviceCount follows Fig. 12 (≈60% single-device households; heavy users
// average >2, Table 5).
func (g *generator) deviceCount(group classify.UserGroup) int {
	if g.cfg.WorkstationLike {
		if g.rng.Bool(0.85) {
			return 1
		}
		return 2
	}
	var weights []float64
	if group == classify.GroupHeavy {
		weights = []float64{0.32, 0.38, 0.17, 0.08, 0.05}
	} else {
		weights = []float64{0.72, 0.18, 0.06, 0.03, 0.01}
	}
	w := simrand.NewWeightedChoice(g.rng, weights)
	n := w.Draw() + 1
	if n == 5 {
		n += g.rng.Intn(4) // the >4 tail
	}
	return n
}

// deviceNamespaces sizes the list per Fig. 13 and draws shares from the
// household pool (plus extras for cross-household shares).
func (g *generator) deviceNamespaces(root uint32, pool []uint32) []uint32 {
	out := []uint32{root}
	if g.rng.Bool(g.cfg.P1Namespace) {
		return out
	}
	lambda := g.cfg.NamespaceLambda
	if c := g.cohort; c != nil {
		lambda *= c.namespaceLambdaMult()
	}
	n := 1 + g.rng.Poisson(lambda)
	for i := 0; i < n; i++ {
		if i < len(pool) && g.rng.Bool(0.6) {
			out = append(out, pool[i])
		} else {
			out = append(out, g.allocNS()) // share with someone elsewhere
		}
	}
	return out
}

func (g *generator) allocNS() uint32 {
	v := g.nextNS
	g.nextNS++
	return v
}

// deviceSessions draws the session process for one device over the horizon.
func (g *generator) deviceSessions(group classify.UserGroup) []session {
	c := g.cohort
	if c != nil && c.AlwaysOn {
		return []session{{0, g.horizon}}
	}
	// A slice of devices never goes offline (the Fig. 16 tail).
	alwaysOn := 0.08
	if g.cfg.WorkstationLike {
		alwaysOn = 0.13
	}
	if group == classify.GroupOccasional {
		alwaysOn /= 2
	}
	if g.rng.Bool(alwaysOn) {
		return []session{{0, g.horizon}}
	}
	rate := g.cfg.SessionsPerDay
	if group == classify.GroupOccasional {
		rate *= 0.45
	}
	diurnal, week := g.cfg.Diurnal, g.weekAdjusted()
	if c != nil {
		rate *= c.sessionRateMult()
		if c.Diurnal != nil {
			diurnal = *c.Diurnal
		}
		if c.Week != nil {
			week = weekShifted(*c.Week)
		}
	}
	starts := simrand.ThinnedPoissonProcess(g.rng, g.horizon, rate,
		diurnal, week, g.cfg.Holidays)
	if c != nil && len(c.Flash) > 0 {
		starts = g.flashStarts(starts, c, rate)
	}
	var out []session
	for _, s := range starts {
		dur := g.sessionDuration()
		if c != nil {
			dur = time.Duration(float64(dur) * c.sessionLenMult())
		}
		end := s + dur
		if end > g.horizon {
			end = g.horizon
		}
		if len(out) > 0 && s <= out[len(out)-1].end {
			// Overlapping start while already online: extend.
			if end > out[len(out)-1].end {
				out[len(out)-1].end = end
			}
			continue
		}
		out = append(out, session{s, end})
	}
	return out
}

// flashStarts adds the extra session arrivals of a cohort's flash windows:
// a homogeneous Poisson excess of rate*(mult-1) per day, uniform inside the
// window, merged into the base process in time order.
func (g *generator) flashStarts(starts []time.Duration, c *Cohort, rate float64) []time.Duration {
	for _, fw := range c.Flash {
		lo, hi := fw.Start, fw.End
		if hi > g.horizon {
			hi = g.horizon
		}
		if hi <= lo || fw.RateMult <= 1 {
			continue
		}
		days := (hi - lo).Hours() / 24
		n := g.rng.Poisson(rate * (fw.RateMult - 1) * days)
		for i := 0; i < n; i++ {
			starts = append(starts, lo+time.Duration(g.rng.Float64()*float64(hi-lo)))
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return starts
}

// sessionDuration follows the Fig. 16 mixtures.
func (g *generator) sessionDuration() time.Duration {
	if g.cfg.WorkstationLike {
		// Office routine: most sessions span the working day.
		u := g.rng.Float64()
		switch {
		case u < 0.55:
			return time.Duration(g.rng.LogNormalMedian(float64(7*time.Hour), 0.35))
		case u < 0.80:
			return time.Duration(g.rng.LogNormalMedian(float64(2*time.Hour), 0.8))
		default:
			return time.Duration(g.rng.LogNormalMedian(float64(15*time.Minute), 1.0))
		}
	}
	u := g.rng.Float64()
	switch {
	case u < 0.45:
		return time.Duration(g.rng.LogNormalMedian(float64(35*time.Minute), 1.1))
	case u < 0.85:
		return time.Duration(g.rng.LogNormalMedian(float64(2*time.Hour), 0.9))
	default:
		return time.Duration(g.rng.LogNormalMedian(float64(6*time.Hour), 0.7))
	}
}

// ---------- Dropbox traffic synthesis ----------

// eventRates returns (uploads, downloads) per online hour by group.
func eventRates(group classify.UserGroup) (up, down float64) {
	switch group {
	case classify.GroupOccasional:
		return 0.004, 0.004
	case classify.GroupUploadOnly:
		return 0.33, 0.002
	case classify.GroupDownloadOnly:
		return 0.002, 0.30
	default: // heavy
		return 0.38, 0.30
	}
}

func (g *generator) dropboxTraffic(hh *household) {
	// The Home 2 anomaly (Sec. 4.3.1): the first generated device streams
	// single 4 MB chunks in consecutive TCP connections for days, biasing
	// the store CDF (Fig. 7) and the upload totals (Fig. 11b).
	if g.cfg.AbnormalUploader && len(hh.devices) > 0 && hh.devices[0].host == 1 {
		dev := hh.devices[0]
		start := 5 * 24 * time.Hour
		end := 19 * 24 * time.Hour
		dev.sessions = []session{{start, end}}
		for at := start; at < end; at += time.Duration(g.rng.Uniform(500, 900) * float64(time.Second)) {
			g.oneStorageFlow(hh, dev, at, classify.DirStore, []int{4 << 20})
			g.controlFlow(hh, at, 2, 1) // each chunk is its own transaction
		}
	}
	// Collect synchronization events per device first (uploads, downloads,
	// start-up syncs, cross-device propagation), then synthesize flows in
	// time order so consecutive batches can reuse storage connections
	// within the 60 s idle window — the flow-inflating behaviour the paper
	// observes in Sec. 4.4.2. Events accumulate on the devices themselves
	// (sorted slices, not a per-household map): append order is identical
	// to the former map-of-slices build, so the sorted drain order — and
	// with it the record stream — is unchanged.
	for _, dev := range hh.devices {
		if g.plan != nil {
			g.setCohort(dev.cohort)
		}
		for _, s := range dev.sessions {
			g.notifyFlows(hh, dev, s)
			g.controlFlow(hh, s.start, 3, 2) // register + first list
			g.systemLogFlow(hh, s.start)
			g.sessionEvents(hh, dev, s)
		}
	}
	for _, dev := range hh.devices {
		if g.plan != nil {
			g.setCohort(dev.cohort)
		}
		evs := dev.events
		g.stats.SyncEvents += len(evs)
		// sort.Sort over the typed slice runs the same pdqsort as
		// sort.Slice — identical permutation, no reflection-based swapper.
		sort.Sort(eventsByTime(evs))
		var mergers [2]*mergeState // store, retrieve
		for _, ev := range evs {
			g.storageFlows(hh, dev, ev.at, ev.dir, ev.files, &mergers)
		}
		g.closeMerger(mergers[0])
		g.closeMerger(mergers[1])
	}
	// Web interface / direct-link / API usage rides on the household (no
	// cohort attribution — it is account-level, not device-level).
	if g.plan != nil {
		g.setCohort(nil)
	}
	if g.rng.Bool(0.25) {
		g.webInterface(hh.ip, 1+g.rng.Intn(3))
	}
	if g.rng.Bool(0.5) {
		g.directLinkDownloads(hh.ip, 1+g.rng.Intn(4))
	}
	if g.rng.Bool(0.15) {
		g.apiFlows(hh.ip, 1+g.rng.Intn(3))
	}
}

// syncEvent is one pending synchronization: a set of changed files to move
// in one direction at one instant. Each file chunks independently (a chunk
// never spans files), so multi-file events produce the multi-chunk flows
// whose sequential acknowledgments the paper measures.
type syncEvent struct {
	at    time.Duration
	dir   classify.Direction
	files []int64
}

// eventsByTime orders sync events by instant.
type eventsByTime []syncEvent

func (e eventsByTime) Len() int           { return len(e) }
func (e eventsByTime) Less(i, j int) bool { return e[i].at < e[j].at }
func (e eventsByTime) Swap(i, j int)      { e[i], e[j] = e[j], e[i] }

// filesArenaSize sizes the changed-file slab: ~1700 average events per
// slab allocation.
const filesArenaSize = 4096

// allocFiles carves an n-element list from the rolling slab (capacity
// capped so appends can never bleed into a neighbouring list); outsized
// requests get their own allocation.
func (g *generator) allocFiles(n int) []int64 {
	if g.filesOff+n > len(g.filesArena) {
		if n > filesArenaSize/4 {
			return make([]int64, n)
		}
		g.filesArena = make([]int64, filesArenaSize)
		g.filesOff = 0
	}
	out := g.filesArena[g.filesOff : g.filesOff+n : g.filesOff+n]
	g.filesOff += n
	return out
}

// eventFiles draws the changed-file set of one synchronization event: one
// or a few files, mostly small deltas (the paper's median store flow is
// ~16 kB and >40% of flows carry 2+ chunks).
func (g *generator) eventFiles() []int64 {
	n := 1 + g.rng.Poisson(1.4)
	out := g.allocFiles(n)
	for i := range out {
		out[i] = g.fileSize()
	}
	return out
}

// sessionEvents generates the synchronization events of one session onto
// the devices' event slices.
func (g *generator) sessionEvents(hh *household, dev *device, s session) {
	hours := (s.end - s.start).Hours()
	if hours <= 0 {
		return
	}
	upRate, downRate := eventRates(hh.group)
	if c := g.cohort; c != nil {
		m := c.editRateMult() * c.flashMult(s.start)
		upRate *= m
		downRate *= m
	}
	// First synchronization at start-up is download-dominated (Sec. 5.4)
	// and accumulates every update produced while offline, so it skews
	// larger than individual store events (Fig. 7).
	if hh.group == classify.GroupHeavy || hh.group == classify.GroupDownloadOnly {
		if g.rng.Bool(0.55) {
			var files []int64
			for i := 0; i < 1+g.rng.Poisson(1.6); i++ {
				files = append(files, g.eventFiles()...)
			}
			dev.events = append(dev.events, syncEvent{s.start + g.startupDelay(), classify.DirRetrieve, files})
		}
	}
	nUp := g.rng.Poisson(upRate * hours)
	for i := 0; i < nUp; i++ {
		at := s.start + time.Duration(g.rng.Float64()*float64(s.end-s.start))
		files := g.eventFiles()
		dev.events = append(dev.events, syncEvent{at, classify.DirStore, files})
		// Cross-device sync: other online devices of the household pull
		// the content from the cloud (unless LAN sync takes it).
		for _, peer := range hh.devices {
			if peer == dev || !online(peer, at) {
				continue
			}
			if g.rng.Bool(0.5) { // LAN sync handles the rest invisibly
				continue
			}
			delay := time.Duration(g.rng.Uniform(5, 90) * float64(time.Second))
			peer.events = append(peer.events, syncEvent{at + delay, classify.DirRetrieve, files})
		}
	}
	nDown := g.rng.Poisson(downRate * hours)
	for i := 0; i < nDown; i++ {
		at := s.start + time.Duration(g.rng.Float64()*float64(s.end-s.start))
		dev.events = append(dev.events, syncEvent{at, classify.DirRetrieve, g.eventFiles()})
	}
}

func (g *generator) startupDelay() time.Duration {
	return time.Duration(g.rng.Uniform(2, 20) * float64(time.Second))
}

func online(d *device, at time.Duration) bool {
	for _, s := range d.sessions {
		if at >= s.start && at < s.end {
			return true
		}
	}
	return false
}

// fileSize draws a synchronization event's byte size: mostly small deltas,
// a heavy tail of archives (Fig. 7's shape after chunking/batching). The
// two small branches are transfers of *edited* files, shrunk by delta
// encoding; when the capability profile disables it, those — and only
// those — re-transfer the whole file (the archive tail was never
// delta-encoded, so it is unaffected by the knob).
func (g *generator) fileSize() int64 {
	u := g.rng.Float64()
	var v float64
	editDelta := false
	switch {
	case u < 0.60:
		v = g.rng.LogNormalMedian(9e3, 1.3) // deltas of constantly-edited files
		editDelta = true
	case u < 0.85:
		v = g.rng.LogNormalMedian(120e3, 1.1) // modified documents and media
		editDelta = true
	case u < 0.97:
		v = g.rng.LogNormalMedian(2e6, 1.0)
	default:
		v = g.rng.LogNormalMedian(40e6, 0.8)
	}
	if editDelta && !g.caps.DeltaEncoding {
		v *= capability.NoDeltaInflate
	}
	if c := g.cohort; c != nil {
		v *= c.fileSizeMult()
	}
	if v < 100 {
		v = 100
	}
	if v > 2e9 {
		v = 2e9
	}
	return int64(v)
}

// mergeState tracks a storage connection left open after its last batch:
// follow-on batches within the 60 s idle window reuse it, folding into the
// same flow record. The record is emitted only when the connection closes,
// so nothing downstream ever observes a flow that is still being folded —
// the invariant the streaming engine depends on.
type mergeState struct {
	rec *traces.FlowRecord
	dir classify.Direction
	end time.Duration // end of the last data transfer
}

// closeMerger finalizes an open storage flow with the server's idle close
// (alert + FIN answered by a client RST, Fig. 19) and emits it.
func (g *generator) closeMerger(m *mergeState) {
	if m == nil || m.rec == nil {
		return
	}
	r := m.rec
	r.BytesDown += int64(wire.RecordHeaderLen + 2)
	r.PSHDown++
	r.PktsDown++
	r.ServerClosed = true
	r.SawRST = true
	r.LastPayloadDown = m.end + 60*time.Second
	if r.LastPayloadDown > r.LastPacket {
		r.LastPacket = r.LastPayloadDown
	}
	m.rec = nil
	g.record(r)
}

// foldFlow appends a follow-on batch (synthesized as its own flow) onto an
// open connection's record, removing the duplicate TLS handshake.
func foldFlow(dst, src *traces.FlowRecord) {
	hs := tlssim.DefaultHandshake()
	dst.BytesUp += src.BytesUp - int64(hs.ClientBytes())
	dst.BytesDown += src.BytesDown - int64(hs.ServerBytes())
	dst.PSHUp += src.PSHUp - 2
	dst.PSHDown += src.PSHDown - 2
	dst.PktsUp += src.PktsUp - 2
	dst.PktsDown += src.PktsDown - 2
	dst.RTTSamples += src.RTTSamples
	dst.LastPayloadUp = src.LastPayloadUp
	dst.LastPayloadDown = src.LastPayloadDown
	dst.LastPacket = src.LastPacket
}

// storageFlows chunks a synchronization event per the capability profile
// (chunk size limit, delta encoding, compression, dedup), splits into
// <=100-chunk batches (Sec. 2.3.2 caps flows near 400 MB this way) and
// emits flows, reusing open connections within the idle window.
func (g *generator) storageFlows(hh *household, dev *device, at time.Duration,
	dir classify.Direction, files []int64, mergers *[2]*mergeState) {

	chunkLimit := g.caps.ChunkLimit()
	// Server-side dedup (need_blocks) spares upload traffic only; the
	// download path never benefited from it, so disabling it inflates
	// store events alone — matching the packet-level client, whose Dedup
	// branch sits in the upload path.
	dedupOff := !g.caps.Dedup && dir == classify.DirStore
	wires := g.wires[:0]
	for _, size := range files {
		// The compression ratio is always drawn, so profiles that disable
		// compression keep the random stream aligned with the presets.
		ratio := g.rng.Uniform(0.55, 1.0)
		if !g.caps.Compression {
			ratio = 1.0
		}
		// The flow path needs chunk sizes only; the content-identity seed
		// is still drawn so the random stream stays aligned with the
		// ref-materializing path the packet-level client uses.
		_ = g.rng.Uint64()
		nChunks, lastSize := chunker.ChunkSpanLimit(size, chunkLimit)
		for ci := 0; ci < nChunks; ci++ {
			cs := chunkLimit
			if ci == nChunks-1 {
				cs = lastSize
			}
			w := int(float64(cs) * ratio)
			if w < 1 {
				w = 1
			}
			wires = append(wires, w)
			if dedupOff && g.rng.Bool(capability.DedupHitFrac) {
				// Without server-side dedup, the chunks need_blocks used to
				// spare the wire transfer too: re-materialize them as
				// duplicate per-chunk traffic.
				wires = append(wires, w)
			}
		}
	}
	g.wires = wires // keep the grown scratch for the next event
	slot := 0
	if dir == classify.DirRetrieve {
		slot = 1
	}
	for len(wires) > 0 {
		n := len(wires)
		if n > dropbox.MaxChunksPerBatch {
			n = dropbox.MaxChunksPerBatch
		}
		m := (*mergers)[slot]
		reuse := m != nil && m.rec != nil && at > m.end && at-m.end < 55*time.Second
		if reuse {
			src := g.synthStorage(dev, m.end+maxDur(at-m.end, time.Second), dir, wires[:n], false)
			if src != nil {
				foldFlow(m.rec, src)
				m.end = src.FirstPacket + classify.TransferDuration(src, dir)
				g.free(src) // fold scratch: never emitted
			}
		} else {
			g.closeMerger(m)
			rec := g.synthStorage(dev, at, dir, wires[:n], false)
			if rec != nil {
				// Stamp now, emit at close: the open connection keeps
				// folding follow-on batches into this record.
				g.stampStorage(hh, rec)
				(*mergers)[slot] = &mergeState{
					rec: rec, dir: dir,
					end: rec.FirstPacket + classify.TransferDuration(rec, dir),
				}
			}
		}
		g.controlFlow(hh, at, 2, 1) // commit_batch/need_blocks + close
		if m = (*mergers)[slot]; m != nil && m.rec != nil {
			at = m.end + time.Duration(g.rng.Uniform(0.3, 2)*float64(time.Second))
		} else {
			at += time.Duration(g.rng.Uniform(1, 5) * float64(time.Second))
		}
		wires = wires[n:]
	}
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// params builds flowmodel parameters for a household path.
func (g *generator) params(access AccessKind, dir classify.Direction) flowmodel.Params {
	up, down := access.rates()
	bw := up
	if dir == classify.DirRetrieve {
		bw = down
	}
	if bw > 1.25e6 {
		bw = 1.25e6 // per-server ceiling (Sec. 4.4)
	}
	iw := g.cfg.ServerIW
	if g.cfg.Caps != nil || g.cohortCaps {
		// Explicit profiles carry their own server tuning (client releases
		// and IW raises deployed jointly, Table 4).
		iw = g.caps.IW()
	}
	return flowmodel.Params{
		RTT:       g.rng.Jitter(g.cfg.StorageRTT, 0.04),
		Bandwidth: bw,
		IW:        iw,
		// The 2012 Python client hashed/compressed slowly and loaded
		// storage front-ends added server reaction time; Fig. 10
		// attributes most long-flow duration to these (100-chunk flows
		// always exceed 30 s).
		ClientReaction: 160 * time.Millisecond,
		ServerReaction: 90 * time.Millisecond,
		Version:        g.cfg.Version,
		Caps:           &g.caps,
	}
}

// synthStorage builds a storage flow record without registering it.
func (g *generator) synthStorage(dev *device, at time.Duration, dir classify.Direction,
	wires []int, serverCloses bool) *traces.FlowRecord {
	if at >= g.horizon {
		return nil
	}
	p := g.params(dev.access, dir)
	return g.synth.SynthesizeInto(g.newRecord(), g.rng, p, flowmodel.StorageFlowSpec{
		Dir: dir, ChunkWires: wires, Start: at,
		ServerClosesIdle: serverCloses,
	})
}

// stampStorage fills a storage record's addressing and DPI labels without
// emitting it (open connections keep mutating the record until closed).
func (g *generator) stampStorage(hh *household, rec *traces.FlowRecord) {
	server := g.rng.Intn(g.storagePool)
	g.stamp(rec, hh.ip, storageServerIP(server), 443)
	rec.SNI = storageSNIs[server%len(storageSNIs)]
	if g.cfg.HasDNS {
		rec.FQDN = rec.SNI
	} else {
		rec.FQDN = ""
	}
}

// oneStorageFlow emits a standalone (non-reused) storage flow.
func (g *generator) oneStorageFlow(hh *household, dev *device, at time.Duration,
	dir classify.Direction, wires []int) {
	rec := g.synthStorage(dev, at, dir, wires, g.rng.Bool(0.85))
	if rec != nil {
		g.stampStorage(hh, rec)
		g.record(rec)
	}
}

func storageServerIP(i int) wire.IP {
	return wire.MakeIP(184, 72, byte(i/256), byte(i%256))
}

// stamp fills the addressing fields common to all synthesized records.
func (g *generator) stamp(rec *traces.FlowRecord, client, server wire.IP, port uint16) {
	rec.VP = g.cfg.Name
	rec.Client = client
	rec.Server = server
	rec.ClientPort = uint16(30000 + g.rng.Intn(30000))
	rec.ServerPort = port
	rec.SawSYN = true
}

// ---------- control / notify / log flows ----------

// controlFlow emits a short TLS exchange with the meta-data servers.
func (g *generator) controlFlow(hh *household, at time.Duration, reqs, extra int) {
	if at >= g.horizon {
		return
	}
	rtt := g.rng.Jitter(g.cfg.ControlRTT, 0.02)
	if g.cfg.ControlRTTSteps {
		rtt += time.Duration(g.rng.Intn(3)) * 3 * time.Millisecond
	}
	hs := tlssim.DefaultHandshake()
	up := int64(hs.ClientBytes())
	down := int64(hs.ServerBytes())
	for i := 0; i < reqs; i++ {
		up += int64(tlssim.MessageWireSize(200 + g.rng.Intn(1200)))
		down += int64(tlssim.MessageWireSize(150 + g.rng.Intn(900)))
	}
	dur := time.Duration(2+reqs) * rtt
	rec := g.newRecord()
	rec.FirstPacket, rec.LastPacket = at, at+dur
	rec.LastPayloadUp, rec.LastPayloadDown = at+dur-rtt/2, at+dur
	rec.BytesUp, rec.BytesDown = up, down
	rec.PktsUp, rec.PktsDown = int(up/wire.MSS)+reqs+2, int(down/wire.MSS)+reqs+2
	rec.PSHUp, rec.PSHDown = 2+reqs, 2+reqs
	// Meta-data exchanges span several segments each way; the probe
	// collects a sample per acknowledged segment, comfortably past the
	// >=10 filter of Fig. 6 on multi-request connections.
	rec.MinRTT, rec.RTTSamples = rtt, 10+reqs+extra
	rec.SNI, rec.CertName = "client-lb.dropbox.com", "*.dropbox.com"
	rec.SawFIN = true
	server := g.rng.Intn(10)
	g.stamp(rec, hh.ip, wire.MakeIP(199, 47, 216, byte(server)), 443)
	if g.cfg.HasDNS {
		rec.FQDN = "client-lb.dropbox.com"
	}
	g.record(rec)
}

// oneNotifyFlow emits a single long-poll connection spanning [start, end).
func (g *generator) oneNotifyFlow(hh *household, dev *device, start, end time.Duration) {
	polls := int((end - start) / time.Minute)
	if polls < 1 {
		polls = 1
	}
	req := int64(90 + 12*len(dev.namespaces))
	rec := g.newRecord()
	rec.FirstPacket, rec.LastPacket = start, end
	rec.LastPayloadUp, rec.LastPayloadDown = end, end
	rec.BytesUp, rec.BytesDown = int64(polls)*req, int64(polls)*70
	rec.PktsUp, rec.PktsDown = polls+2, polls+2
	rec.PSHUp, rec.PSHDown = polls, polls
	rec.MinRTT, rec.RTTSamples = g.rng.Jitter(g.cfg.ControlRTT, 0.02), polls
	rec.NotifyHost, rec.NotifyNamespaces = dev.host, dev.namespaces
	rec.SawRST = true
	server := g.rng.Intn(20)
	g.stamp(rec, hh.ip, wire.MakeIP(199, 47, 217, byte(server)), 80)
	if g.cfg.HasDNS {
		rec.FQDN = notifyFQDNs[server%len(notifyFQDNs)]
	}
	g.record(rec)
}

// notifyFlows emits the long-poll connection(s) covering a session.
func (g *generator) notifyFlows(hh *household, dev *device, s session) {
	// Some sessions run behind network equipment that kills idle
	// connections within a minute; the client re-establishes immediately,
	// producing the sub-minute mass of Fig. 16. Chopping is decided per
	// session: "most of those flows are from some few devices" — but a
	// device's environment varies (Sec. 5.5).
	chopped := dev.natChopped || g.rng.Bool(g.chopFrac())
	if !chopped {
		g.oneNotifyFlow(hh, dev, s.start, s.end)
		return
	}
	for t := s.start; t < s.end; {
		life := time.Duration(g.rng.Uniform(15, 75) * float64(time.Second))
		end := t + life
		if end > s.end {
			end = s.end
		}
		g.oneNotifyFlow(hh, dev, t, end)
		t = end + time.Duration(g.rng.Uniform(0.5, 3)*float64(time.Second))
	}
}

func (g *generator) systemLogFlow(hh *household, at time.Duration) {
	if at >= g.horizon || !g.rng.Bool(0.6) {
		return
	}
	rec := g.newRecord()
	rec.FirstPacket, rec.LastPacket = at, at+2*time.Second
	rec.LastPayloadUp, rec.LastPayloadDown = at+2*time.Second, at+2*time.Second
	rec.BytesUp, rec.BytesDown = int64(294+500+g.rng.Intn(2000)), 4103+400
	rec.PktsUp, rec.PktsDown, rec.PSHUp, rec.PSHDown = 4, 5, 3, 3
	rec.SNI, rec.CertName, rec.SawFIN = "d.dropbox.com", "*.dropbox.com", true
	g.stamp(rec, hh.ip, wire.MakeIP(199, 47, 216, 12), 443)
	if g.cfg.HasDNS {
		rec.FQDN = "d.dropbox.com"
	}
	g.record(rec)
}

// ---------- web / API / other-provider flows ----------

// webInterface emits main-Web-interface browsing: parallel SSL connections
// fetching thumbnails and small files (Fig. 17).
func (g *generator) webInterface(ip wire.IP, visits int) {
	for v := 0; v < visits; v++ {
		at := g.randomInstant()
		conns := 2 + g.rng.Intn(6)
		for c := 0; c < conns; c++ {
			down := int64(4103 + int(g.rng.LogNormalMedian(3e3, 1.8)))
			if g.rng.Bool(0.05) { // occasional real file download <10MB
				down = 4103 + int64(g.rng.LogNormalMedian(400e3, 1.4))
			}
			up := int64(294 + 300 + g.rng.Intn(1500))
			if g.rng.Bool(0.03) { // rare upload through the Web form
				up += int64(g.rng.LogNormalMedian(30e3, 1.3))
			}
			rec := g.newRecord()
			rec.FirstPacket, rec.LastPacket = at, at+4*time.Second
			rec.LastPayloadUp, rec.LastPayloadDown = at+time.Second, at+3*time.Second
			rec.BytesUp, rec.BytesDown = up, down
			rec.PktsUp, rec.PktsDown = int(up/wire.MSS)+3, int(down/wire.MSS)+3
			rec.PSHUp, rec.PSHDown = 3, 4
			rec.SNI, rec.CertName, rec.SawFIN = "dl-web.dropbox.com", "*.dropbox.com", true
			g.stamp(rec, ip, wire.MakeIP(184, 72, 3, 2), 443)
			if g.cfg.HasDNS {
				rec.FQDN = "dl-web.dropbox.com"
			}
			g.record(rec)
		}
	}
}

// directLinkDownloads emits dl.dropbox.com public-link fetches (Fig. 18):
// no SSL floor (many are plain HTTP), sizes rarely above 10 MB.
func (g *generator) directLinkDownloads(ip wire.IP, n int) {
	for i := 0; i < n; i++ {
		at := g.randomInstant()
		size := int64(g.rng.LogNormalMedian(120e3, 2.0))
		if size > 200e6 {
			size = 200e6
		}
		https := g.rng.Bool(0.2)
		var port uint16 = 80
		down := size
		up := int64(250 + g.rng.Intn(400))
		cert := ""
		if https {
			port = 443
			down += 4103
			up += 294
			cert = "*.dropbox.com"
		}
		rec := g.newRecord()
		rec.FirstPacket, rec.LastPacket = at, at+8*time.Second
		rec.LastPayloadUp, rec.LastPayloadDown = at+time.Second, at+8*time.Second
		rec.BytesUp, rec.BytesDown = up, down
		rec.PktsUp, rec.PktsDown = 4, int(down/wire.MSS)+3
		rec.PSHUp, rec.PSHDown = 2, 3
		rec.CertName, rec.SawFIN = cert, true
		g.stamp(rec, ip, wire.MakeIP(184, 72, 3, 0), port)
		if g.cfg.HasDNS {
			rec.FQDN = "dl.dropbox.com"
		}
		g.record(rec)
	}
}

// apiFlows emits mobile/API traffic against api-content (up to 4% of the
// volume in home networks, Fig. 4).
func (g *generator) apiFlows(ip wire.IP, n int) {
	for i := 0; i < n; i++ {
		at := g.randomInstant()
		down := int64(4103 + int(g.rng.LogNormalMedian(250e3, 1.6)))
		up := int64(294 + 500 + g.rng.Intn(2000))
		rec := g.newRecord()
		rec.FirstPacket, rec.LastPacket = at, at+5*time.Second
		rec.LastPayloadUp, rec.LastPayloadDown = at+time.Second, at+5*time.Second
		rec.BytesUp, rec.BytesDown = up, down
		rec.PktsUp, rec.PktsDown = 4, int(down/wire.MSS)+3
		rec.PSHUp, rec.PSHDown = 3, 3
		rec.SNI, rec.CertName, rec.SawFIN = "api-content.dropbox.com", "*.dropbox.com", true
		g.stamp(rec, ip, wire.MakeIP(184, 72, 3, 4), 443)
		if g.cfg.HasDNS {
			rec.FQDN = "api-content.dropbox.com"
		}
		g.record(rec)
	}
}

// providerTraffic generates a competitor's flows: activeFrom gates launch
// dates (Google Drive appears on its launch day, Fig. 2).
func (g *generator) providerTraffic(ip wire.IP, cert string, activeFrom int, dailyVol float64, flowsPerDay int) {
	for d := activeFrom; d < g.cfg.Days; d++ {
		if !g.rng.Bool(0.55) {
			continue // not every installed client is active daily
		}
		dayStart := time.Duration(d) * 24 * time.Hour
		vol := dailyVol * g.rng.Uniform(0.3, 1.7)
		n := 1 + g.rng.Intn(flowsPerDay)
		for i := 0; i < n; i++ {
			at := dayStart + g.cfg.Diurnal.SampleTimeOfDay(g.rng)
			down := int64(vol / float64(n) * g.rng.Uniform(0.5, 1.5))
			up := down / 8
			rec := g.newRecord()
			rec.FirstPacket, rec.LastPacket = at, at+20*time.Second
			rec.LastPayloadUp, rec.LastPayloadDown = at+10*time.Second, at+20*time.Second
			rec.BytesUp, rec.BytesDown = up+294, down+4103
			rec.PktsUp, rec.PktsDown = int(up/wire.MSS)+4, int(down/wire.MSS)+4
			rec.PSHUp, rec.PSHDown = 4, 4
			rec.CertName, rec.SawFIN = cert, true
			g.stamp(rec, ip, wire.MakeIP(17, 32, byte(d), byte(i)), 443)
			g.record(rec)
		}
	}
}

func (g *generator) randomInstant() time.Duration {
	d := g.rng.Intn(g.cfg.Days)
	return time.Duration(d)*24*time.Hour + g.cfg.Diurnal.SampleTimeOfDay(g.rng)
}

// DayOfRecord returns the campaign day containing a record's start.
func DayOfRecord(r *traces.FlowRecord) int {
	return int(r.FirstPacket / (24 * time.Hour))
}
