package workload

import (
	"reflect"
	"testing"

	"insidedropbox/internal/capability"
	"insidedropbox/internal/traces"
)

// shortCfg trims a vantage point to a fast test-sized campaign.
func shortCfg(cfg VPConfig) VPConfig {
	cfg.Days = 5
	return cfg
}

// TestPresetCapsMatchLegacyVersionPaths pins the capability refactor's core
// contract: a Caps override set to the preset matching the vantage point's
// Version produces a bit-identical record stream — the Version branches and
// the profile branches are the same data plane.
func TestPresetCapsMatchLegacyVersionPaths(t *testing.T) {
	cases := []struct {
		name   string
		cfg    VPConfig
		preset capability.Profile
	}{
		{"campus1-v1252", shortCfg(Campus1(0.1)), capability.DropboxV1252()},
		{"campus1-junjul-v140", shortCfg(Campus1JunJul(0.1)), capability.DropboxV140()},
		{"home2-v1252", shortCfg(Home2(0.004)), capability.DropboxV1252()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			legacy := Generate(tc.cfg, 42)

			withCaps := tc.cfg
			p := tc.preset
			withCaps.Caps = &p
			// The profile's IW must equal the calibrated ServerIW for the
			// comparison to be meaningful (profiles override ServerIW).
			if p.IW() != tc.cfg.ServerIW {
				t.Fatalf("preset IW %d != calibrated ServerIW %d", p.IW(), tc.cfg.ServerIW)
			}
			got := Generate(withCaps, 42)

			if len(got.Records) != len(legacy.Records) {
				t.Fatalf("record count: caps %d vs legacy %d", len(got.Records), len(legacy.Records))
			}
			for i := range legacy.Records {
				if !reflect.DeepEqual(*got.Records[i], *legacy.Records[i]) {
					t.Fatalf("record %d diverged:\ncaps   %+v\nlegacy %+v",
						i, *got.Records[i], *legacy.Records[i])
				}
			}
			if got.DropboxHouseholds != legacy.DropboxHouseholds || got.DropboxDevices != legacy.DropboxDevices {
				t.Fatalf("ground truth diverged: %d/%d vs %d/%d",
					got.DropboxHouseholds, got.DropboxDevices,
					legacy.DropboxHouseholds, legacy.DropboxDevices)
			}
		})
	}
}

// TestHypotheticalProfilesChangeTraffic sanity-checks that the what-if
// knobs actually reach the wire: disabling dedup or delta encoding must
// move more storage bytes than the 1.4.0 baseline on the same seed.
func TestHypotheticalProfilesChangeTraffic(t *testing.T) {
	base := shortCfg(Campus1JunJul(0.25))
	storeVolume := func(caps capability.Profile) float64 {
		cfg := base
		cfg.Caps = &caps
		var total float64
		GenerateShard(cfg, 77, 0, 1, func(r *traces.FlowRecord) {
			total += float64(r.BytesUp)
		})
		return total
	}
	baseline := storeVolume(capability.DropboxV140())
	noDedup := storeVolume(capability.NoDedup())
	noDelta := storeVolume(capability.NoDelta())
	if noDedup <= baseline {
		t.Fatalf("no-dedup upload bytes %.3g <= baseline %.3g", noDedup, baseline)
	}
	// Only the edited-file mass inflates without delta encoding, and
	// profile streams resample the heavy tail, so assert direction rather
	// than a magnitude the tail noise could dominate.
	if noDelta <= baseline {
		t.Fatalf("no-delta upload bytes %.3g <= baseline %.3g", noDelta, baseline)
	}
}

// TestShardsShareIPBase pins the cross-shard address plane: every shard
// of a run must draw subscriber IPs from the same 10.X base, or large
// populations alias client addresses across shards. (Below 62500
// subscribers the second octet is exactly the shared base.)
func TestShardsShareIPBase(t *testing.T) {
	cfg := Campus1(0.2)
	cfg.Days = 2
	bases := map[byte]bool{}
	for sh := 0; sh < 3; sh++ {
		GenerateShard(cfg, 4, sh, 3, func(r *traces.FlowRecord) {
			ip := uint32(r.Client)
			if byte(ip>>24) == 10 {
				bases[byte(ip>>16)] = true
			}
		})
	}
	if len(bases) != 1 {
		t.Fatalf("shards drew %d distinct IP bases (%v), want 1 shared base", len(bases), bases)
	}
}

// TestProfileDeterminism pins the contract extension: the same (seed,
// population, profile) triple regenerates identical records even for
// profiles whose extra branches draw from the random stream.
func TestProfileDeterminism(t *testing.T) {
	cfg := shortCfg(Campus1(0.1))
	p := capability.NoDedup()
	cfg.Caps = &p
	a := Generate(cfg, 9)
	b := Generate(cfg, 9)
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if !reflect.DeepEqual(*a.Records[i], *b.Records[i]) {
			t.Fatalf("record %d not reproducible", i)
		}
	}
}
