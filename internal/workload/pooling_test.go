package workload

import (
	"hash/fnv"
	"reflect"
	"testing"

	"insidedropbox/internal/traces"
)

// poolOf is a minimal test double of fleet.RecordPool (fleet cannot be
// imported here without a cycle): Get returns zeroed records, Put zeroes
// and recycles.
type poolOf struct {
	free []*traces.FlowRecord
	gets int
	news int
}

func (p *poolOf) Get() *traces.FlowRecord {
	p.gets++
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free = p.free[:n-1]
		return r
	}
	p.news++
	return new(traces.FlowRecord)
}

func (p *poolOf) Put(r *traces.FlowRecord) {
	*r = traces.FlowRecord{}
	p.free = append(p.free, r)
}

// TestPooledShardMatchesUnpooled pins the pooled-generation contract: a
// shard generated through recycled record storage emits the same records,
// in the same order, with the same stats, as the allocating path — and
// actually recycles (the pool's live set stays far below the record
// count).
func TestPooledShardMatchesUnpooled(t *testing.T) {
	cases := []struct {
		name    string
		cfg     VPConfig
		shard   int
		nshards int
	}{
		{"home1", Home1(0.02), 0, 1},
		{"home1-shard2of4", Home1(0.05), 2, 4},
		{"campus1-outages", Campus1(0.1), 0, 1},
		{"home2-abnormal", Home2(0.02), 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hashStream := func(sink func(emit func(*traces.FlowRecord)) ShardStats) (uint64, ShardStats) {
				h := fnv.New64a()
				w := traces.NewWriter(h)
				stats := sink(func(r *traces.FlowRecord) {
					if err := w.Write(r); err != nil {
						t.Fatal(err)
					}
				})
				if err := w.Flush(); err != nil {
					t.Fatal(err)
				}
				return h.Sum64(), stats
			}

			wantHash, wantStats := hashStream(func(emit func(*traces.FlowRecord)) ShardStats {
				return GenerateShard(tc.cfg, 7, tc.shard, tc.nshards, emit)
			})

			pool := &poolOf{}
			gotHash, gotStats := hashStream(func(emit func(*traces.FlowRecord)) ShardStats {
				return GenerateShardSink(tc.cfg, 7, tc.shard, tc.nshards, ShardSink{
					Emit: func(r *traces.FlowRecord) {
						emit(r)
						pool.Put(r) // consumer done: recycle immediately
					},
					Alloc: pool.Get,
					Free:  pool.Put,
				})
			})

			if gotHash != wantHash {
				t.Fatalf("pooled stream hash %#x != unpooled %#x", gotHash, wantHash)
			}
			if !reflect.DeepEqual(gotStats, wantStats) {
				t.Fatalf("pooled stats %+v != unpooled %+v", gotStats, wantStats)
			}
			if wantStats.Records == 0 {
				t.Fatal("degenerate case: no records generated")
			}
			if pool.news > 8 {
				t.Fatalf("pool allocated %d fresh records over %d emitted: recycling is not happening",
					pool.news, wantStats.Records)
			}
		})
	}
}
