package scenario

import (
	"sort"

	"insidedropbox/internal/simrand"
)

// cohortPresets are the built-in behavior bundles a CohortSpec can name.
// A preset is itself a CohortSpec (without name/weight); explicitly set
// fields of the referencing spec overlay the preset's values.
//
// The bundles are caricatures with a defensible anchor in the paper's
// observations: office workers concentrate small collaborative edits in
// working hours, photo hoarders upload few but huge batches, CI bots
// churn continuously with no diurnal shape, mobile clients connect in
// short bursts behind lossy NATs, and shared team namespaces multiply
// the device-linked folder count (the paper's sect. on shared folders).
var cohortPresets = map[string]CohortSpec{
	"office-worker": {
		Profile:         "dropbox-1.4.0",
		FileSizeMult:    0.8,
		EditRateMult:    1.3,
		SessionRateMult: 1.2,
		SessionLenMult:  1.2,
		Daily:           "office",
		Weekly:          "campus",
	},
	"photo-hoarder": {
		Profile:         "dropbox-1.4.0",
		FileSizeMult:    8,
		EditRateMult:    0.5,
		SessionRateMult: 0.7,
	},
	"ci-bot": {
		Profile:      "full-pipeline",
		AlwaysOn:     true,
		EditRateMult: 6,
		FileSizeMult: 0.3,
		Daily:        "flat",
		Weekly:       "flat",
	},
	"mobile-intermittent": {
		Profile:         "dropbox-1.2.52",
		SessionRateMult: 2,
		SessionLenMult:  0.15,
		NATChopFrac:     0.3,
		EditRateMult:    0.6,
		FileSizeMult:    0.5,
	},
	"shared-team-namespace": {
		NamespaceLambdaMult: 3,
		EditRateMult:        1.5,
		Daily:               "office",
		Weekly:              "campus",
	},
}

// Presets lists the built-in cohort preset names, sorted.
func Presets() []string {
	names := make([]string, 0, len(cohortPresets))
	for n := range cohortPresets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// presetCohort resolves a preset name.
func presetCohort(name string) (CohortSpec, bool) {
	p, ok := cohortPresets[name]
	return p, ok
}

// overlay merges a cohort spec over its preset: zero-valued fields of the
// spec inherit the preset's, everything explicitly set wins. (The one
// zero-value ambiguity — a preset with AlwaysOn true cannot be overridden
// back to false — is acceptable: drop the preset and spell the cohort out.)
func (c CohortSpec) overlay() CohortSpec {
	if c.Preset == "" {
		return c
	}
	p, ok := presetCohort(c.Preset)
	if !ok {
		return c // validated earlier; unreachable after Parse
	}
	out := p
	out.Name, out.Weight, out.Preset = c.Name, c.Weight, c.Preset
	if c.Profile != "" {
		out.Profile = c.Profile
	}
	if c.FileSizeMult != 0 {
		out.FileSizeMult = c.FileSizeMult
	}
	if c.EditRateMult != 0 {
		out.EditRateMult = c.EditRateMult
	}
	if c.SessionRateMult != 0 {
		out.SessionRateMult = c.SessionRateMult
	}
	if c.SessionLenMult != 0 {
		out.SessionLenMult = c.SessionLenMult
	}
	if c.NamespaceLambdaMult != 0 {
		out.NamespaceLambdaMult = c.NamespaceLambdaMult
	}
	if c.AlwaysOn {
		out.AlwaysOn = true
	}
	if c.NATChopFrac != 0 {
		out.NATChopFrac = c.NATChopFrac
	}
	if c.Daily != "" {
		out.Daily = c.Daily
	}
	if c.Weekly != "" {
		out.Weekly = c.Weekly
	}
	if len(c.Flash) > 0 {
		out.Flash = c.Flash
	}
	return out
}

// dailyProfile maps a spec daily-profile name to a simrand profile. "flat"
// is the uniform profile (Normalize of the zero profile).
func dailyProfile(name string) (simrand.DiurnalProfile, bool) {
	switch name {
	case "office":
		return simrand.OfficeHours(), true
	case "home-evenings":
		return simrand.HomeEvenings(), true
	case "campus-roaming":
		return simrand.CampusRoaming(), true
	case "flat":
		var p simrand.DiurnalProfile
		return p.Normalize(), true
	}
	return simrand.DiurnalProfile{}, false
}

// weeklyProfile maps a spec weekly-profile name.
func weeklyProfile(name string) (simrand.WeekdayFactor, bool) {
	switch name {
	case "campus":
		return simrand.CampusWeek(), true
	case "home":
		return simrand.HomeWeek(), true
	case "flat":
		return simrand.WeekdayFactor{1, 1, 1, 1, 1, 1, 1}, true
	}
	return simrand.WeekdayFactor{}, false
}
