package scenario

import (
	"context"
	"hash"
	"hash/fnv"

	"insidedropbox/internal/backend"
	"insidedropbox/internal/fleet"
	"insidedropbox/internal/traces"
)

// StreamResult is one compiled scenario streamed through the fleet
// engine: the merged ground-truth stats (per-cohort counts included), the
// backend arrival set in canonical order, and the campaign's stream hash.
type StreamResult struct {
	Stats fleet.VPStats
	// Requests are the Dropbox-bound arrivals in canonical order (base
	// load — surges are applied at simulation time, see ApplySurges).
	Requests []backend.Request
	// StreamHash fingerprints the full record stream: per-shard FNV-1a
	// over the CSV serialization, folded across shards in shard-index
	// order. It is a function of (spec, seed, shards) alone — worker
	// count never changes it (determinism-contract point 15).
	StreamHash uint64
}

// hashFold mixes one shard's stream hash into the combined fingerprint
// (FNV-1a step over the 8 hash bytes).
func hashFold(acc, shardHash uint64) uint64 {
	const prime = 0x100000001b3
	for i := 0; i < 8; i++ {
		acc ^= (shardHash >> (8 * i)) & 0xff
		acc *= prime
	}
	return acc
}

// hashFoldOffset seeds the fold (the standard FNV-1a offset basis).
const hashFoldOffset = 0xcbf29ce484222325

// streamAgg is the per-shard aggregator of CollectStream: it feeds every
// record through the CSV serializer into a running FNV-1a hash and keeps
// the backend requests (plain values — safe on the pooled path; the CSV
// writer consumes the record before Consume returns).
type streamAgg struct {
	reqs backend.Collector
	h    hash.Hash64
	w    *traces.Writer

	// combined is the shard-order fold of shard hashes, built up on the
	// root aggregator as Merge is called; folded marks the root's own
	// shard hash as already folded in.
	combined uint64
	folded   bool
}

func newStreamAgg() *streamAgg {
	h := fnv.New64a()
	return &streamAgg{h: h, w: traces.NewWriter(h)}
}

// Consume implements fleet.Sink.
func (s *streamAgg) Consume(r *traces.FlowRecord) {
	s.w.Write(r) // hashing never fails; Flush would surface any error
	s.reqs.Consume(r)
}

// shardSum finalizes and returns this shard's own stream hash.
func (s *streamAgg) shardSum() uint64 {
	s.w.Flush()
	return s.h.Sum64()
}

// Merge implements fleet.Aggregator. The engine merges in shard-index
// order onto the shard-0 root, so folding the root's own hash first (on
// the first Merge) and each incoming shard's after keeps the combined
// fingerprint a pure function of the shard streams.
func (s *streamAgg) Merge(other fleet.Aggregator) {
	o := other.(*streamAgg)
	if !s.folded {
		s.combined = hashFold(hashFoldOffset, s.shardSum())
		s.folded = true
	}
	s.combined = hashFold(s.combined, o.shardSum())
	s.reqs.Requests = append(s.reqs.Requests, o.reqs.Requests...)
}

// sum returns the final combined fingerprint (single-shard runs never saw
// a Merge).
func (s *streamAgg) sum() uint64 {
	if !s.folded {
		s.combined = hashFold(hashFoldOffset, s.shardSum())
		s.folded = true
	}
	return s.combined
}

// CollectStream runs a compiled scenario's population through the sharded
// fleet engine once, producing the stream fingerprint, the per-cohort
// ground truth and the backend arrival set in one pass. workers > 0
// overrides the worker count (never the results). Cancelling ctx aborts
// at fleet-shard granularity.
func CollectStream(ctx context.Context, c *Compiled, workers int) (*StreamResult, error) {
	fc := c.Fleet
	if workers > 0 {
		fc.Workers = workers
	}
	agg, stats, err := fleet.Aggregate(ctx, c.VP, c.Seed, fc, func(int) fleet.Aggregator { return newStreamAgg() })
	if err != nil {
		return nil, err
	}
	root := agg.(*streamAgg)
	reqs := root.reqs.Requests
	backend.SortRequests(reqs)
	return &StreamResult{Stats: stats, Requests: reqs, StreamHash: root.sum()}, nil
}
