package scenario

import "testing"

// FuzzScenarioSpec feeds hostile documents through the full spec pipeline:
// Parse (strict decode + validate), and when a document survives, Summary
// and Compile. The invariant is totality — scenario files are
// user-supplied input and must produce an error value, never a panic,
// whatever the bytes. Seed corpus: testdata/fuzz/FuzzScenarioSpec plus the
// f.Add seeds below (one valid spec per section, plus known edge shapes).
func FuzzScenarioSpec(f *testing.F) {
	f.Add([]byte(`{"schema":1,"name":"t"}`))
	f.Add([]byte(`{"schema":1,"name":"t","base":{"vp":"campus1","scale":0.1,"seed":7,"shards":4,"devices_scale":2,"profile":"no-dedup"}}`))
	f.Add([]byte(`{"schema":1,"name":"t","cohorts":[{"name":"a","preset":"office-worker","weight":0.5},{"name":"b","weight":0.5,"flash":[{"day":1,"until_day":2,"mult":3}]}]}`))
	f.Add([]byte(`{"schema":1,"name":"t","backend":{"preset":"scarce","timeline":[{"action":"surge","day":20,"until_day":22,"mult":4},{"action":"region-outage","day":1,"until_day":2,"region":1},{"action":"capacity-scale","day":30,"mult":2,"class":"storage"}]}}`))
	f.Add([]byte(`{"schema":9999999999,"name":"t"}`))
	f.Add([]byte(`{"schema":1,"name":"t","cohorts":[{"name":"a","weight":1e308},{"name":"b","weight":1e308}]}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`[{}]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := Parse(data)
		if err != nil {
			return
		}
		_ = sp.Summary()
		if _, cerr := Compile(sp, 7); cerr != nil {
			// A validated spec should always compile: Compile re-checks the
			// same invariants. Surfacing a divergence here means Validate
			// and Compile disagree about what is legal.
			t.Fatalf("validated spec failed to compile: %v\nspec: %s", cerr, data)
		}
	})
}
