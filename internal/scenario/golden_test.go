package scenario

import (
	"hash/fnv"
	"path/filepath"
	"testing"

	"insidedropbox/internal/traces"
	"insidedropbox/internal/workload"
)

// legacyStreamHash reproduces the golden-hash construction of
// internal/workload/golden_test.go exactly: one FNV-1a hash over the
// non-anonymized CSV serialization of all shards in index order. The
// scenario compiler's output is fed through the identical pipeline the
// flag-driven path uses, so a matching hash means a matching
// configuration, bit for bit.
func legacyStreamHash(t *testing.T, cfg workload.VPConfig, seed int64, nshards int) uint64 {
	t.Helper()
	h := fnv.New64a()
	w := traces.NewWriter(h)
	for sh := 0; sh < nshards; sh++ {
		workload.GenerateShard(cfg, seed, sh, nshards, func(r *traces.FlowRecord) {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return h.Sum64()
}

// TestEmptySpecMatchesLegacyGolden pins the compiler's backward
// compatibility: a spec with no cohorts and no backend section compiles to
// the same record stream the legacy flag path generates, byte for byte.
// The expected hashes are the untouched goldens from
// internal/workload/golden_test.go — if this test fails while that one
// passes, the scenario compiler drifted from the flag path.
func TestEmptySpecMatchesLegacyGolden(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want uint64
	}{
		{"home1-1shard",
			`{"schema":1,"name":"t","base":{"vp":"home1","scale":0.02,"seed":7,"shards":1}}`,
			0xd01117eb3a234b9d},
		{"home1-4shard",
			`{"schema":1,"name":"t","base":{"vp":"home1","scale":0.02,"seed":7,"shards":4}}`,
			0x1887b88d5f86bad5},
		{"home2-abnormal-1shard",
			`{"schema":1,"name":"t","base":{"vp":"home2","scale":0.02,"seed":9,"shards":1}}`,
			0xa59024c1345e9efb},
		{"campus1-1shard",
			`{"schema":1,"name":"t","base":{"vp":"campus1","scale":0.1,"seed":7,"shards":1}}`,
			0x6e788bc7931c6666},
		{"campus1-bigchunks-1shard",
			`{"schema":1,"name":"t","base":{"vp":"campus1","scale":0.1,"seed":7,"shards":1,"profile":"big-chunks-16mb"}}`,
			0x5ffb4eb3ba85ad2b},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp, err := Parse([]byte(tc.doc))
			if err != nil {
				t.Fatal(err)
			}
			c, err := Compile(sp, 0)
			if err != nil {
				t.Fatal(err)
			}
			if c.VP.Cohorts != nil {
				t.Fatal("empty spec grew a cohort plan")
			}
			got := legacyStreamHash(t, c.VP, c.Seed, c.Fleet.Shards)
			if got != tc.want {
				t.Fatalf("compiled stream hash = %#x, want legacy golden %#x (scenario compiler no longer reproduces the flag path)", got, tc.want)
			}
		})
	}
}

// TestCommittedCatalogue loads, validates and compiles every spec in the
// committed scenarios/ catalogue, and checks the paper-baseline spec
// against the legacy 4-shard golden it documents. New catalogue entries
// are covered automatically.
func TestCommittedCatalogue(t *testing.T) {
	paths, err := filepath.Glob("../../scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 4 {
		t.Fatalf("scenarios/ catalogue has %d specs, want at least 4: %v", len(paths), paths)
	}
	for _, p := range paths {
		t.Run(filepath.Base(p), func(t *testing.T) {
			sp, err := Load(p)
			if err != nil {
				t.Fatalf("catalogue spec does not load: %v", err)
			}
			if sp.Description == "" {
				t.Error("catalogue specs must carry a description")
			}
			c, err := Compile(sp, 1)
			if err != nil {
				t.Fatalf("catalogue spec does not compile: %v", err)
			}
			if sp.Name == "paper-baseline" {
				const want = 0x1887b88d5f86bad5 // home1-4shard legacy golden
				if got := legacyStreamHash(t, c.VP, c.Seed, c.Fleet.Shards); got != want {
					t.Fatalf("paper-baseline stream hash = %#x, want %#x (the spec's description documents this golden)", got, want)
				}
			}
		})
	}
}
