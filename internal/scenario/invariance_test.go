package scenario

import (
	"context"
	"reflect"
	"testing"
	"time"

	"insidedropbox/internal/backend"
)

// mixSpec is a small cohort-mix spec used by the invariance tests: three
// presets over the calibrated Home 1 population at test scale.
const mixSpec = `{
	"schema": 1, "name": "mix",
	"base": {"vp": "home1", "scale": 0.02, "seed": 7, "shards": 4},
	"cohorts": [
		{"name": "office", "preset": "office-worker", "weight": 0.5},
		{"name": "mobile", "preset": "mobile-intermittent", "weight": 0.3},
		{"name": "bots", "preset": "ci-bot", "weight": 0.2}
	]
}`

func collectMix(t *testing.T, workers int) *StreamResult {
	t.Helper()
	sp, err := Parse([]byte(mixSpec))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CollectStream(context.Background(), c, workers)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCollectStreamWorkerInvariance pins determinism-contract point 15 for
// the full scenario path: a cohort-mix run at 1 worker and at 8 workers
// produces the identical stream hash, identical merged stats (per-cohort
// counts included) and the identical canonical request set.
func TestCollectStreamWorkerInvariance(t *testing.T) {
	one := collectMix(t, 1)
	eight := collectMix(t, 8)

	if one.StreamHash != eight.StreamHash {
		t.Fatalf("stream hash differs: workers=1 %#x, workers=8 %#x", one.StreamHash, eight.StreamHash)
	}
	if !reflect.DeepEqual(one.Stats, eight.Stats) {
		t.Fatalf("merged stats differ between worker counts:\n1: %+v\n8: %+v", one.Stats, eight.Stats)
	}
	if !reflect.DeepEqual(one.Requests, eight.Requests) {
		t.Fatalf("backend request sets differ between worker counts (%d vs %d requests)", len(one.Requests), len(eight.Requests))
	}
}

// TestCohortGroundTruthSane checks the stream's cohort accounting: every
// spec cohort appears with a non-zero device population, device counts sum
// to the campaign total, and record counts stay within it (web/direct-link
// flows are unattributed household traffic).
func TestCohortGroundTruthSane(t *testing.T) {
	res := collectMix(t, 0)
	st := res.Stats
	var devSum, recSum int
	for _, name := range []string{"office", "mobile", "bots"} {
		if st.CohortDevices[name] == 0 {
			t.Errorf("cohort %s has no devices (population too small or assignment broken)", name)
		}
		devSum += st.CohortDevices[name]
		recSum += st.CohortRecords[name]
	}
	if devSum != st.Devices {
		t.Errorf("cohort devices sum to %d, campaign has %d", devSum, st.Devices)
	}
	if recSum <= 0 || recSum > st.Records {
		t.Errorf("cohort records sum to %d, campaign has %d", recSum, st.Records)
	}
	if len(res.Requests) == 0 {
		t.Error("cohort-mix stream produced no backend arrivals")
	}
}

// TestFlashCrowdDrivesBackend is the PR's acceptance experiment, run on
// the committed flash-crowd-scarce spec: under the scarce preset the surge
// window exhibits the queueing knee (window p95 above the run-wide p95,
// window mean delay a multiple of the run-wide mean); under an infinite
// deployment the same surged arrival set is absorbed with zero delay and
// zero loss. Both simulations consume the same collected stream, and the
// collection is identical at 1 and 8 workers.
func TestFlashCrowdDrivesBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("flash-crowd acceptance run skipped in -short mode")
	}
	sp, err := Load("../../scenarios/flash-crowd-scarce.json")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	one, err := CollectStream(context.Background(), c, 1)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := CollectStream(context.Background(), c, 8)
	if err != nil {
		t.Fatal(err)
	}
	if one.StreamHash != eight.StreamHash || !reflect.DeepEqual(one.Requests, eight.Requests) {
		t.Fatal("flash-crowd collection differs between 1 and 8 workers")
	}

	base := one.Requests
	load := c.Backend.ApplySurges(base)
	if len(load) <= len(base) {
		t.Fatalf("surge did not amplify arrivals: %d -> %d", len(base), len(load))
	}

	// Scarce: capacity provisioned from the BASE load, surged arrivals
	// replayed against it.
	cfg, err := c.Backend.Config(base)
	if err != nil {
		t.Fatal(err)
	}
	scarce, err := backend.Simulate(context.Background(), cfg, load)
	if err != nil {
		t.Fatal(err)
	}
	if len(scarce.Windows) != 1 || scarce.Windows[0].Name != "surge-0" {
		t.Fatalf("expected the one surge report window, got %+v", scarce.Windows)
	}
	win := scarce.Windows[0]
	winP95 := time.Duration(win.Delay.Quantile(0.95))
	overallP95 := scarce.DelayQuantile(0.95)
	if winP95 <= 0 {
		t.Fatal("surge window shows no queueing delay under the scarce preset")
	}
	if winP95 <= overallP95 {
		t.Fatalf("no queueing knee: surge-window p95 %v is not above run-wide p95 %v", winP95, overallP95)
	}
	winMean, overallMean := win.Delay.Mean(), scarce.Delay.Mean()
	if winMean < 2*overallMean {
		t.Fatalf("surge-window mean delay %.3gms is not well above the run-wide %.3gms", winMean/1e6, overallMean/1e6)
	}

	// Infinite: the same surged load, zero effect — the event is only
	// visible because capacity is finite.
	icfg, err := backend.PresetConfig(backend.PresetInfinite, base)
	if err != nil {
		t.Fatal(err)
	}
	icfg.Windows = cfg.Windows
	inf, err := backend.Simulate(context.Background(), icfg, load)
	if err != nil {
		t.Fatal(err)
	}
	if inf.Dropped != 0 || inf.Shed != 0 {
		t.Fatalf("infinite deployment lost requests: dropped=%d shed=%d", inf.Dropped, inf.Shed)
	}
	if d := inf.DelayQuantile(0.99); d != 0 {
		t.Fatalf("infinite deployment shows queueing delay: p99=%v", d)
	}
	if iw := time.Duration(inf.Windows[0].Delay.Quantile(0.99)); iw != 0 {
		t.Fatalf("infinite deployment shows in-window delay: %v", iw)
	}
}
