package scenario

import (
	"reflect"
	"strings"
	"testing"
)

// minimal returns the smallest valid spec document.
func minimal() string {
	return `{"schema": 1, "name": "t"}`
}

// TestParseMinimal: the smallest valid document parses, and the empty
// sections stay empty (no cohorts, no backend).
func TestParseMinimal(t *testing.T) {
	sp, err := Parse([]byte(minimal()))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "t" || len(sp.Cohorts) != 0 || sp.Backend != nil {
		t.Fatalf("minimal spec parsed oddly: %+v", sp)
	}
}

// TestParseStrictness pins the strict-loader contract: unknown fields,
// version drift, trailing garbage, bad weights and malformed sections are
// all load errors, never warnings.
func TestParseStrictness(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // substring of the error
	}{
		{"unknown top-level field", `{"schema":1,"name":"t","bogus":1}`, "bogus"},
		{"unknown nested field", `{"schema":1,"name":"t","base":{"vps":"home1"}}`, "vps"},
		{"unknown cohort field", `{"schema":1,"name":"t","cohorts":[{"name":"a","weight":1,"rate":2}]}`, "rate"},
		{"missing schema", `{"name":"t"}`, "missing schema"},
		{"newer schema", `{"schema":2,"name":"t"}`, "schema 2 not supported"},
		{"trailing content", minimal() + ` {"schema":1,"name":"u"}`, "trailing content"},
		{"empty name", `{"schema":1,"name":""}`, "name"},
		{"uppercase name", `{"schema":1,"name":"Bad"}`, "name"},
		{"unknown vp", `{"schema":1,"name":"t","base":{"vp":"office1"}}`, "vantage point"},
		{"scale too large", `{"schema":1,"name":"t","base":{"scale":11}}`, "scale"},
		{"negative shards", `{"schema":1,"name":"t","base":{"shards":-1}}`, "shards"},
		{"unknown base profile", `{"schema":1,"name":"t","base":{"profile":"dropbox-9"}}`, "profile"},
		{"weights sum low", `{"schema":1,"name":"t","cohorts":[{"name":"a","weight":0.5}]}`, "sum"},
		{"weights sum high", `{"schema":1,"name":"t","cohorts":[{"name":"a","weight":0.7},{"name":"b","weight":0.7}]}`, "sum"},
		{"zero weight", `{"schema":1,"name":"t","cohorts":[{"name":"a","weight":0}]}`, "weight"},
		{"duplicate cohort", `{"schema":1,"name":"t","cohorts":[{"name":"a","weight":0.5},{"name":"a","weight":0.5}]}`, "duplicate"},
		{"unknown preset", `{"schema":1,"name":"t","cohorts":[{"name":"a","weight":1,"preset":"gamer"}]}`, "preset"},
		{"unknown daily", `{"schema":1,"name":"t","cohorts":[{"name":"a","weight":1,"daily":"noon"}]}`, "daily"},
		{"unknown weekly", `{"schema":1,"name":"t","cohorts":[{"name":"a","weight":1,"weekly":"noon"}]}`, "weekly"},
		{"nat chop out of range", `{"schema":1,"name":"t","cohorts":[{"name":"a","weight":1,"nat_chop_frac":1.5}]}`, "nat_chop_frac"},
		{"flash inverted", `{"schema":1,"name":"t","cohorts":[{"name":"a","weight":1,"flash":[{"day":5,"until_day":4,"mult":2}]}]}`, "flash"},
		{"flash past horizon", `{"schema":1,"name":"t","cohorts":[{"name":"a","weight":1,"flash":[{"day":40,"until_day":50,"mult":2}]}]}`, "flash"},
		{"flash zero mult", `{"schema":1,"name":"t","cohorts":[{"name":"a","weight":1,"flash":[{"day":1,"until_day":2,"mult":0}]}]}`, "mult"},
		{"unknown backend preset", `{"schema":1,"name":"t","backend":{"preset":"huge"}}`, "backend preset"},
		{"surge mult too small", `{"schema":1,"name":"t","backend":{"timeline":[{"action":"surge","day":1,"until_day":2,"mult":1}]}}`, "surge mult"},
		{"surge empty window", `{"schema":1,"name":"t","backend":{"timeline":[{"action":"surge","day":2,"until_day":2,"mult":3}]}}`, "surge window"},
		{"outage empty window", `{"schema":1,"name":"t","backend":{"timeline":[{"action":"region-outage","day":2,"until_day":2}]}}`, "region-outage window"},
		{"scale zero mult", `{"schema":1,"name":"t","backend":{"timeline":[{"action":"capacity-scale","day":2,"mult":0}]}}`, "capacity-scale mult"},
		{"scale bad class", `{"schema":1,"name":"t","backend":{"timeline":[{"action":"capacity-scale","day":2,"mult":2,"class":"cache"}]}}`, "class"},
		{"unknown action", `{"schema":1,"name":"t","backend":{"timeline":[{"action":"restart","day":2}]}}`, "unknown action"},
		{"not json", `schema: 1`, "scenario"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestWeightToleranceAccepted: weights that sum to 1 within floating
// tolerance are fine (three thirds).
func TestWeightToleranceAccepted(t *testing.T) {
	doc := `{"schema":1,"name":"t","cohorts":[
		{"name":"a","weight":0.3333333},
		{"name":"b","weight":0.3333333},
		{"name":"c","weight":0.3333334}]}`
	if _, err := Parse([]byte(doc)); err != nil {
		t.Fatal(err)
	}
}

// TestPresetOverlay pins the overlay semantics: preset fields fill zero
// values, explicitly set fields win.
func TestPresetOverlay(t *testing.T) {
	c := CohortSpec{Name: "x", Weight: 1, Preset: "office-worker", FileSizeMult: 3}
	o := c.overlay()
	if o.FileSizeMult != 3 {
		t.Fatalf("explicit field lost: %v", o.FileSizeMult)
	}
	if o.EditRateMult != 1.3 || o.Daily != "office" || o.Profile != "dropbox-1.4.0" {
		t.Fatalf("preset fields not inherited: %+v", o)
	}
	// No preset: overlay is the identity.
	plain := CohortSpec{Name: "y", Weight: 1, EditRateMult: 2}
	if got := plain.overlay(); !reflect.DeepEqual(got, plain) {
		t.Fatalf("overlay changed a preset-less cohort: %+v", got)
	}
}

// TestPresetsComplete: every preset named by the issue exists and every
// preset validates as a cohort.
func TestPresetsComplete(t *testing.T) {
	want := []string{"ci-bot", "mobile-intermittent", "office-worker", "photo-hoarder", "shared-team-namespace"}
	got := Presets()
	if len(got) != len(want) {
		t.Fatalf("Presets() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Presets() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		p, _ := presetCohort(name)
		p.Name, p.Weight = name, 1
		if err := validateCohorts([]CohortSpec{p}); err != nil {
			t.Errorf("preset %s does not validate as a cohort: %v", name, err)
		}
	}
}

// TestCompileDefaults: the minimal spec compiles onto home1 at the
// campaign default scale with one shard, no cohort plan, no backend.
func TestCompileDefaults(t *testing.T) {
	sp, err := Parse([]byte(minimal()))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(sp, 42)
	if err != nil {
		t.Fatal(err)
	}
	if c.VP.Name != "home1" || c.VP.Cohorts != nil || c.Backend != nil {
		t.Fatalf("minimal spec compiled oddly: vp=%s cohorts=%v backend=%v", c.VP.Name, c.VP.Cohorts, c.Backend)
	}
	if c.Seed != 42 || c.Fleet.Shards != 1 {
		t.Fatalf("defaults wrong: seed=%d shards=%d", c.Seed, c.Fleet.Shards)
	}
}

// TestCompileSeedOverride: base.seed beats the caller's seed, and the
// cohort salt follows the effective seed.
func TestCompileSeedOverride(t *testing.T) {
	sp, err := Parse([]byte(`{"schema":1,"name":"t","base":{"seed":7}}`))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(sp, 42)
	if err != nil {
		t.Fatal(err)
	}
	if c.Seed != 7 {
		t.Fatalf("seed override lost: %d", c.Seed)
	}
}

// TestCompileBackendTimeline: each spec action lowers onto the expected
// events, surges and windows.
func TestCompileBackendTimeline(t *testing.T) {
	doc := `{"schema":1,"name":"t","backend":{"preset":"scarce","timeline":[
		{"action":"surge","day":10,"until_day":12,"mult":4},
		{"action":"region-outage","day":15,"until_day":18,"region":1},
		{"action":"capacity-scale","day":30,"mult":2,"class":"storage"}]}}`
	sp, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(sp, 1)
	if err != nil {
		t.Fatal(err)
	}
	be := c.Backend
	if be == nil || be.Preset != "scarce" {
		t.Fatalf("backend section lost: %+v", be)
	}
	if len(be.Surges) != 1 || be.Surges[0].Mult != 4 || be.Surges[0].Start != day(10) || be.Surges[0].End != day(12) {
		t.Fatalf("surge compiled wrong: %+v", be.Surges)
	}
	// Outage lowers to down+up; capacity-scale to one event.
	if len(be.Timeline) != 3 {
		t.Fatalf("timeline has %d events, want 3: %+v", len(be.Timeline), be.Timeline)
	}
	if be.Timeline[0].At != day(15) || be.Timeline[1].At != day(18) || be.Timeline[2].Factor != 2 {
		t.Fatalf("timeline events wrong: %+v", be.Timeline)
	}
	if len(be.Windows) != 3 {
		t.Fatalf("windows: %+v", be.Windows)
	}
}

// TestSummaryMentionsSections: the one-line render names the cohorts and
// backend so -validate-scenario output is useful.
func TestSummaryMentionsSections(t *testing.T) {
	doc := `{"schema":1,"name":"t","cohorts":[{"name":"a","weight":1}],"backend":{"preset":"scarce"}}`
	sp, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	s := sp.Summary()
	for _, want := range []string{"t:", "a:1.00", "scarce"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary %q missing %q", s, want)
		}
	}
}
