package scenario

import (
	"fmt"
	"time"

	"insidedropbox/internal/backend"
	"insidedropbox/internal/capability"
	"insidedropbox/internal/fleet"
	"insidedropbox/internal/simrand"
	"insidedropbox/internal/workload"
)

// Compiled is a spec lowered onto the engine's existing configuration
// surfaces. Compilation is a pure function of (spec, seed): no clock, no
// RNG draws, no environment — the same inputs compile to the same
// Compiled on every host, which is what makes committed specs replayable
// experiment definitions.
type Compiled struct {
	// Spec is the validated source document.
	Spec *Spec
	// VP is the vantage point configuration, cohort plan attached.
	VP workload.VPConfig
	// Seed is the effective campaign seed (spec base.seed wins over the
	// caller's).
	Seed int64
	// Fleet sizes the sharded run (spec base.shards / base.devices_scale).
	Fleet fleet.Config
	// Backend is nil unless the spec has a backend section.
	Backend *CompiledBackend
}

// CompiledBackend is the spec's backend section lowered onto the
// discrete-event model: a sizing preset, in-queue timeline events,
// arrival surges (applied to the request set before simulation, since
// capacity is provisioned against the base load), and the report windows
// that make each timeline entry's effect measurable.
type CompiledBackend struct {
	Preset   string
	Timeline []backend.TimelineEvent
	Surges   []Surge
	Windows  []backend.Window
}

// Surge is one arrival-rate amplification window.
type Surge struct {
	Start, End time.Duration
	Mult       float64
}

// defaults when the spec's base section leaves fields zero.
const (
	defaultVP    = "home1"
	defaultScale = 0.08 // the campaign driver's Home 1 population fraction
)

// cohortSalt derives the cohort-assignment salt. It depends on the seed
// only — never on worker or shard count — so a device's cohort is a pure
// function of (seed, device host ID): determinism-contract point 15.
func cohortSalt(seed int64) uint64 {
	return uint64(simrand.DeriveSeed(seed, "scenario/cohorts"))
}

// day converts a spec's fractional campaign-day offset to a duration.
func day(d float64) time.Duration {
	return time.Duration(d * 24 * float64(time.Hour))
}

// Compile lowers a spec onto the engine configuration. seed is the
// caller's campaign seed; a non-zero base.seed in the spec overrides it.
// The empty spec (no cohorts, no backend, zero base) compiles to exactly
// the configuration the legacy flag path builds, bit for bit — pinned by
// TestEmptySpecMatchesLegacyGolden.
func Compile(sp *Spec, seed int64) (*Compiled, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if sp.Base.Seed != 0 {
		seed = sp.Base.Seed
	}

	vpName := sp.Base.VP
	if vpName == "" {
		vpName = defaultVP
	}
	scale := sp.Base.Scale
	if scale == 0 {
		scale = defaultScale
	}
	vp, ok := vantageConfig(vpName, scale)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown vantage point %q", vpName)
	}
	if sp.Base.Profile != "" {
		p, ok := capability.ByName(sp.Base.Profile)
		if !ok {
			return nil, fmt.Errorf("scenario: unknown capability profile %q", sp.Base.Profile)
		}
		vp.Caps = &p
	}
	if len(sp.Cohorts) > 0 {
		cohorts := make([]workload.Cohort, len(sp.Cohorts))
		for i, cs := range sp.Cohorts {
			c, err := compileCohort(cs)
			if err != nil {
				return nil, err
			}
			cohorts[i] = c
		}
		vp.Cohorts = workload.NewCohortPlan(cohortSalt(seed), cohorts)
	}

	shards := sp.Base.Shards
	if shards == 0 {
		shards = 1
	}
	c := &Compiled{
		Spec:  sp,
		VP:    vp,
		Seed:  seed,
		Fleet: fleet.Config{Shards: shards, DevicesScale: sp.Base.DevicesScale},
	}
	if sp.Backend != nil {
		be, err := compileBackend(sp.Backend)
		if err != nil {
			return nil, err
		}
		c.Backend = be
	}
	return c, nil
}

// compileCohort lowers one cohort spec (preset overlay applied) onto the
// workload generator's cohort parameters.
func compileCohort(cs CohortSpec) (workload.Cohort, error) {
	cs = cs.overlay()
	c := workload.Cohort{
		Name:                cs.Name,
		Weight:              cs.Weight,
		FileSizeMult:        cs.FileSizeMult,
		EditRateMult:        cs.EditRateMult,
		SessionRateMult:     cs.SessionRateMult,
		SessionLenMult:      cs.SessionLenMult,
		NamespaceLambdaMult: cs.NamespaceLambdaMult,
		AlwaysOn:            cs.AlwaysOn,
		NATChopFrac:         cs.NATChopFrac,
	}
	if cs.Profile != "" {
		p, ok := capability.ByName(cs.Profile)
		if !ok {
			return c, fmt.Errorf("scenario: cohort %q: unknown capability profile %q", cs.Name, cs.Profile)
		}
		c.Caps = &p
	}
	if cs.Daily != "" {
		d, ok := dailyProfile(cs.Daily)
		if !ok {
			return c, fmt.Errorf("scenario: cohort %q: unknown daily profile %q", cs.Name, cs.Daily)
		}
		c.Diurnal = &d
	}
	if cs.Weekly != "" {
		w, ok := weeklyProfile(cs.Weekly)
		if !ok {
			return c, fmt.Errorf("scenario: cohort %q: unknown weekly profile %q", cs.Name, cs.Weekly)
		}
		c.Week = &w
	}
	for _, f := range cs.Flash {
		c.Flash = append(c.Flash, workload.FlashWindow{
			Start:    day(f.Day),
			End:      day(f.UntilDay),
			RateMult: f.Mult,
		})
	}
	return c, nil
}

// compileBackend lowers the backend section: surges stay request-set
// transformations (capacity is provisioned against the base load, so a
// flash crowd hits a deployment sized without knowledge of it), outages
// and rollouts become in-queue timeline events, and every entry gets a
// named report window covering its effect.
func compileBackend(bs *BackendSpec) (*CompiledBackend, error) {
	preset := bs.Preset
	if preset == "" {
		preset = backend.PresetProvisioned
	}
	be := &CompiledBackend{Preset: preset}
	for i, te := range bs.Timeline {
		start, end := day(te.Day), day(te.UntilDay)
		switch te.Action {
		case ActionSurge:
			be.Surges = append(be.Surges, Surge{Start: start, End: end, Mult: te.Mult})
			be.Windows = append(be.Windows, backend.Window{
				Name: fmt.Sprintf("surge-%d", i), Start: start, End: end,
			})
		case ActionRegionOutage:
			be.Timeline = append(be.Timeline,
				backend.TimelineEvent{At: start, Action: backend.ActionRegionDown, Region: uint8(te.Region)},
				backend.TimelineEvent{At: end, Action: backend.ActionRegionUp, Region: uint8(te.Region)},
			)
			be.Windows = append(be.Windows, backend.Window{
				Name: fmt.Sprintf("outage-%d", i), Start: start, End: end,
			})
		case ActionCapacityScale:
			cls, ok := backendClass(te.Class)
			if !ok {
				return nil, fmt.Errorf("scenario: capacity-scale class %q unknown", te.Class)
			}
			be.Timeline = append(be.Timeline, backend.TimelineEvent{
				At:         start,
				Action:     backend.ActionScaleCapacity,
				Class:      cls,
				AllClasses: te.Class == "",
				Factor:     te.Mult,
			})
			be.Windows = append(be.Windows, backend.Window{
				Name: fmt.Sprintf("scale-%d", i), Start: start, End: day(vpDays),
			})
		default:
			return nil, fmt.Errorf("scenario: unknown timeline action %q", te.Action)
		}
	}
	return be, nil
}

// Config builds the backend configuration for an arrival set: the preset
// sized from the BASE arrivals (pass pre-surge requests — that is the
// point of a flash-crowd scenario), with the compiled timeline and report
// windows attached.
func (b *CompiledBackend) Config(baseReqs []backend.Request) (backend.Config, error) {
	cfg, err := backend.PresetConfig(b.Preset, baseReqs)
	if err != nil {
		return cfg, err
	}
	cfg.Timeline = b.Timeline
	cfg.Windows = b.Windows
	return cfg, nil
}

// ApplySurges amplifies the arrival set through every surge window in
// order, deterministically (backend.AmplifyWindow); the input slice is
// not modified. With no surges it returns the input unchanged.
func (b *CompiledBackend) ApplySurges(reqs []backend.Request) []backend.Request {
	for _, s := range b.Surges {
		reqs = backend.AmplifyWindow(reqs, s.Start, s.End, s.Mult)
	}
	return reqs
}
