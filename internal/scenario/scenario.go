// Package scenario is the declarative experiment layer: a schema-versioned
// JSON spec describing a population as a weighted mix of behavioral
// cohorts (office workers, photo hoarders, CI bots, mobile clients,
// shared-team namespaces — each binding a capability profile, distribution
// overrides and multi-period temporal patterns) plus a backend timeline
// (arrival surges, region outages, staged capacity rollouts), compiled
// into the engine's existing VPConfig / fleet / backend configuration.
//
// The loader is strict — unknown fields, bad weights and foreign schema
// versions are errors, never warnings — so committed specs are a stable
// contract. Compilation is a pure function of (spec, seed): cohort
// assignment hashes stable device IDs against a seed-derived salt, so the
// compiled campaign's output is identical across any shard or worker
// count, and the empty spec compiles to the legacy flag-driven
// configuration bit for bit (pinned by TestEmptySpecMatchesLegacyGolden).
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"insidedropbox/internal/backend"
	"insidedropbox/internal/capability"
	"insidedropbox/internal/workload"
)

// Schema is the spec version this package reads and writes. Version gating
// is strict in both directions: a missing/zero schema and a newer schema
// are both load errors, so old engines never half-read new specs.
const Schema = 1

// Spec is one declarative scenario.
type Spec struct {
	// Schema must equal the package Schema constant.
	Schema int `json:"schema"`
	// Name identifies the scenario ([a-z0-9-]).
	Name string `json:"name"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`

	// Base selects and scales the vantage point population.
	Base BaseSpec `json:"base,omitempty"`

	// Cohorts splits the population into weighted behavioral cohorts.
	// Empty keeps the single calibrated population.
	Cohorts []CohortSpec `json:"cohorts,omitempty"`

	// Backend adds a server-capacity replay with an optional timeline.
	Backend *BackendSpec `json:"backend,omitempty"`
}

// BaseSpec pins the population parameters a CLI flag would otherwise set.
// Zero values inherit the engine defaults (home1 at the campaign's 0.08
// population fraction, 1 shard, caller-provided seed).
type BaseSpec struct {
	VP           string  `json:"vp,omitempty"`
	Scale        float64 `json:"scale,omitempty"`
	Seed         int64   `json:"seed,omitempty"`
	Shards       int     `json:"shards,omitempty"`
	DevicesScale float64 `json:"devices_scale,omitempty"`
	// Profile swaps the whole population's capability profile (cohorts
	// can override it per cohort).
	Profile string `json:"profile,omitempty"`
}

// CohortSpec is one behavioral cohort. Preset names a built-in behavior
// bundle (see Presets); explicitly set fields overlay the preset's. All
// multipliers are relative to the vantage point's calibrated baseline, 0
// meaning inherit.
type CohortSpec struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
	Preset string  `json:"preset,omitempty"`

	Profile string `json:"profile,omitempty"`

	FileSizeMult        float64 `json:"file_size_mult,omitempty"`
	EditRateMult        float64 `json:"edit_rate_mult,omitempty"`
	SessionRateMult     float64 `json:"session_rate_mult,omitempty"`
	SessionLenMult      float64 `json:"session_len_mult,omitempty"`
	NamespaceLambdaMult float64 `json:"namespace_lambda_mult,omitempty"`
	AlwaysOn            bool    `json:"always_on,omitempty"`
	NATChopFrac         float64 `json:"nat_chop_frac,omitempty"`

	// Daily / Weekly name temporal profiles ("office", "home-evenings",
	// "campus-roaming", "flat" / "campus", "home", "flat"); empty inherits
	// the vantage point's.
	Daily  string `json:"daily,omitempty"`
	Weekly string `json:"weekly,omitempty"`

	// Flash lists bounded high-activity windows in campaign days.
	Flash []FlashSpec `json:"flash,omitempty"`
}

// FlashSpec is one bounded flash event: activity of the cohort is
// multiplied by Mult inside [Day, UntilDay) (fractional days allowed).
type FlashSpec struct {
	Day      float64 `json:"day"`
	UntilDay float64 `json:"until_day"`
	Mult     float64 `json:"mult"`
}

// BackendSpec adds the server-capacity model to the scenario.
type BackendSpec struct {
	// Preset is the deployment sizing ("infinite", "provisioned",
	// "scarce"); empty means provisioned.
	Preset string `json:"preset,omitempty"`
	// Timeline schedules time-varying events against the deployment.
	Timeline []TimelineSpec `json:"timeline,omitempty"`
}

// TimelineSpec is one scheduled backend event, in campaign days.
//
//   - "surge": arrival rate inside [day, until_day) is multiplied by mult
//     (capacity is still provisioned against the base load).
//   - "region-outage": the region's nodes go offline at day and return at
//     until_day.
//   - "capacity-scale": at day, matching nodes' concurrency becomes mult
//     times their configured value (class selects a service; empty class
//     scales every bounded node).
type TimelineSpec struct {
	Action   string  `json:"action"`
	Day      float64 `json:"day"`
	UntilDay float64 `json:"until_day,omitempty"`
	Mult     float64 `json:"mult,omitempty"`
	Region   int     `json:"region,omitempty"`
	Class    string  `json:"class,omitempty"`
}

// Timeline actions.
const (
	ActionSurge         = "surge"
	ActionRegionOutage  = "region-outage"
	ActionCapacityScale = "capacity-scale"
)

// vpDays is the campaign length every vantage point uses (the paper's 42
// capture days); timeline and flash windows must fit inside it.
const vpDays = 42

// VantagePoints lists the vantage point names a spec may select.
func VantagePoints() []string {
	return []string{"home1", "home2", "campus1", "campus1-junjul", "campus2"}
}

// vantageConfig resolves a vantage point name (already validated).
func vantageConfig(name string, scale float64) (workload.VPConfig, bool) {
	switch name {
	case "home1":
		return workload.Home1(scale), true
	case "home2":
		return workload.Home2(scale), true
	case "campus1":
		return workload.Campus1(scale), true
	case "campus1-junjul":
		return workload.Campus1JunJul(scale), true
	case "campus2":
		return workload.Campus2(scale), true
	}
	return workload.VPConfig{}, false
}

// Load reads and validates a spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sp, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sp, nil
}

// Parse decodes and validates one spec document. Decoding is strict:
// unknown fields anywhere in the document and trailing content after it
// are errors.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := checkTrailing(dec); err != nil {
		return nil, err
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

func checkTrailing(dec *json.Decoder) error {
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("scenario: trailing content after spec document")
	}
	return nil
}

// nameOK reports whether a scenario or cohort name sticks to the
// [a-z0-9-] contract (names become telemetry counter and metric keys).
func nameOK(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' {
			return false
		}
	}
	return true
}

// Validate checks the spec against the full contract; Parse and Load call
// it, so a non-nil *Spec from either is always valid.
func (s *Spec) Validate() error {
	switch {
	case s.Schema == 0:
		return fmt.Errorf("scenario: missing schema version (want %d)", Schema)
	case s.Schema != Schema:
		return fmt.Errorf("scenario: schema %d not supported (this engine reads %d)", s.Schema, Schema)
	}
	if !nameOK(s.Name) {
		return fmt.Errorf("scenario: name %q must be non-empty [a-z0-9-]", s.Name)
	}
	if err := s.Base.validate(); err != nil {
		return err
	}
	if err := validateCohorts(s.Cohorts); err != nil {
		return err
	}
	if s.Backend != nil {
		if err := s.Backend.validate(); err != nil {
			return err
		}
	}
	return nil
}

func (b BaseSpec) validate() error {
	if b.VP != "" {
		if _, ok := vantageConfig(b.VP, 0.05); !ok {
			return fmt.Errorf("scenario: unknown vantage point %q (want one of %s)",
				b.VP, strings.Join(VantagePoints(), ", "))
		}
	}
	if b.Scale < 0 || b.Scale > 10 {
		return fmt.Errorf("scenario: base scale %v outside (0, 10]", b.Scale)
	}
	if b.Shards < 0 || b.Shards > workload.MaxShards {
		return fmt.Errorf("scenario: base shards %d outside [1, %d]", b.Shards, workload.MaxShards)
	}
	if b.DevicesScale < 0 {
		return fmt.Errorf("scenario: base devices_scale %v negative", b.DevicesScale)
	}
	if b.Profile != "" {
		if _, ok := capability.ByName(b.Profile); !ok {
			return fmt.Errorf("scenario: unknown capability profile %q (want one of %s)",
				b.Profile, strings.Join(capability.Names(), ", "))
		}
	}
	return nil
}

// weightTolerance bounds how far cohort weights may sum from 1.
const weightTolerance = 1e-6

func validateCohorts(cs []CohortSpec) error {
	if len(cs) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(cs))
	total := 0.0
	for i, c := range cs {
		if !nameOK(c.Name) {
			return fmt.Errorf("scenario: cohort %d name %q must be non-empty [a-z0-9-]", i, c.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("scenario: duplicate cohort name %q", c.Name)
		}
		seen[c.Name] = true
		if c.Weight <= 0 {
			return fmt.Errorf("scenario: cohort %q weight %v must be positive", c.Name, c.Weight)
		}
		total += c.Weight
		if err := c.validate(); err != nil {
			return err
		}
	}
	if d := total - 1; d > weightTolerance || d < -weightTolerance {
		return fmt.Errorf("scenario: cohort weights sum to %v, want 1 (normalize the spec)", total)
	}
	return nil
}

func (c CohortSpec) validate() error {
	if c.Preset != "" {
		if _, ok := presetCohort(c.Preset); !ok {
			return fmt.Errorf("scenario: cohort %q: unknown preset %q (want one of %s)",
				c.Name, c.Preset, strings.Join(Presets(), ", "))
		}
	}
	if c.Profile != "" {
		if _, ok := capability.ByName(c.Profile); !ok {
			return fmt.Errorf("scenario: cohort %q: unknown capability profile %q (want one of %s)",
				c.Name, c.Profile, strings.Join(capability.Names(), ", "))
		}
	}
	for _, m := range []struct {
		name string
		v    float64
	}{
		{"file_size_mult", c.FileSizeMult},
		{"edit_rate_mult", c.EditRateMult},
		{"session_rate_mult", c.SessionRateMult},
		{"session_len_mult", c.SessionLenMult},
		{"namespace_lambda_mult", c.NamespaceLambdaMult},
	} {
		if m.v < 0 || m.v > 1000 {
			return fmt.Errorf("scenario: cohort %q: %s %v outside (0, 1000]", c.Name, m.name, m.v)
		}
	}
	if c.NATChopFrac < 0 || c.NATChopFrac > 1 {
		return fmt.Errorf("scenario: cohort %q: nat_chop_frac %v outside [0, 1]", c.Name, c.NATChopFrac)
	}
	if c.Daily != "" {
		if _, ok := dailyProfile(c.Daily); !ok {
			return fmt.Errorf("scenario: cohort %q: unknown daily profile %q (want office, home-evenings, campus-roaming, flat)", c.Name, c.Daily)
		}
	}
	if c.Weekly != "" {
		if _, ok := weeklyProfile(c.Weekly); !ok {
			return fmt.Errorf("scenario: cohort %q: unknown weekly profile %q (want campus, home, flat)", c.Name, c.Weekly)
		}
	}
	for _, f := range c.Flash {
		if f.Day < 0 || f.UntilDay > vpDays || f.UntilDay <= f.Day {
			return fmt.Errorf("scenario: cohort %q: flash window [%v, %v) outside [0, %d) or empty",
				c.Name, f.Day, f.UntilDay, vpDays)
		}
		if f.Mult <= 0 {
			return fmt.Errorf("scenario: cohort %q: flash mult %v must be positive", c.Name, f.Mult)
		}
	}
	return nil
}

func (b *BackendSpec) validate() error {
	if b.Preset != "" {
		ok := false
		for _, p := range backend.Presets() {
			if b.Preset == p {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("scenario: unknown backend preset %q (want one of %s)",
				b.Preset, strings.Join(backend.Presets(), ", "))
		}
	}
	for i, te := range b.Timeline {
		if te.Day < 0 || te.Day > vpDays {
			return fmt.Errorf("scenario: timeline event %d: day %v outside [0, %d]", i, te.Day, vpDays)
		}
		if te.Region < 0 || te.Region > 255 {
			return fmt.Errorf("scenario: timeline event %d: region %d outside [0, 255]", i, te.Region)
		}
		switch te.Action {
		case ActionSurge:
			if te.UntilDay <= te.Day || te.UntilDay > vpDays {
				return fmt.Errorf("scenario: surge window [%v, %v) outside [0, %d] or empty", te.Day, te.UntilDay, vpDays)
			}
			if te.Mult <= 1 {
				return fmt.Errorf("scenario: surge mult %v must exceed 1", te.Mult)
			}
		case ActionRegionOutage:
			if te.UntilDay <= te.Day || te.UntilDay > vpDays {
				return fmt.Errorf("scenario: region-outage window [%v, %v) outside [0, %d] or empty", te.Day, te.UntilDay, vpDays)
			}
		case ActionCapacityScale:
			if te.Mult <= 0 {
				return fmt.Errorf("scenario: capacity-scale mult %v must be positive", te.Mult)
			}
			if _, ok := backendClass(te.Class); !ok {
				return fmt.Errorf("scenario: capacity-scale class %q unknown (want control, storage, notify or empty)", te.Class)
			}
		default:
			return fmt.Errorf("scenario: timeline event %d: unknown action %q (want %s, %s, %s)",
				i, te.Action, ActionSurge, ActionRegionOutage, ActionCapacityScale)
		}
	}
	return nil
}

// backendClass maps a spec class name; empty means "all classes" (ok with
// the zero Class).
func backendClass(name string) (backend.Class, bool) {
	switch name {
	case "":
		return backend.ClassControl, true
	case "control":
		return backend.ClassControl, true
	case "storage":
		return backend.ClassStorage, true
	case "notify":
		return backend.ClassNotify, true
	}
	return 0, false
}

// Summary renders a one-line human description (the -validate-scenario
// output).
func (s *Spec) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: schema %d", s.Name, s.Schema)
	vp := s.Base.VP
	if vp == "" {
		vp = "home1"
	}
	fmt.Fprintf(&b, ", vp %s", vp)
	if len(s.Cohorts) > 0 {
		names := make([]string, len(s.Cohorts))
		for i, c := range s.Cohorts {
			names[i] = fmt.Sprintf("%s:%.2f", c.Name, c.Weight)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, ", cohorts [%s]", strings.Join(names, " "))
	}
	if s.Backend != nil {
		preset := s.Backend.Preset
		if preset == "" {
			preset = backend.PresetProvisioned
		}
		fmt.Fprintf(&b, ", backend %s (%d timeline events)", preset, len(s.Backend.Timeline))
	}
	return b.String()
}
