// Package netem emulates the network topology between clients and
// data-centers: per-host access links (rate, delay), a core with
// per-site-pair propagation delays, loss, and passive probe taps at the
// border of monitored sites.
//
// The topology mirrors the measurement setup of the paper: the probe sits at
// the border router of a campus or ISP Point of Presence, so captured
// timestamps exclude the client's access segment (the paper's Sec. 4.2
// filters access-technology effects the same way) while including the full
// core path toward the U.S. data-centers.
package netem

import (
	"fmt"
	"time"

	"insidedropbox/internal/simrand"
	"insidedropbox/internal/simtime"
	"insidedropbox/internal/wire"
)

// SiteID names a location: a vantage point ("campus1") or a data-center
// ("dropbox-dc", "amazon-dc").
type SiteID string

// TapDir tells a probe which way a captured frame was traveling relative to
// the monitored site.
type TapDir uint8

// Tap directions.
const (
	TapOutbound TapDir = iota // leaving the monitored site toward the core
	TapInbound                // arriving from the core
)

func (d TapDir) String() string {
	if d == TapOutbound {
		return "out"
	}
	return "in"
}

// Tap receives every frame crossing a monitored site border, with the
// capture timestamp. Implementations must not retain the frame past the
// call unless they copy it.
type Tap interface {
	Capture(now simtime.Time, f *wire.Frame, dir TapDir)
}

// AccessProfile describes a host's access link.
type AccessProfile struct {
	UpRate   float64       // bytes/second toward the core; 0 = unlimited
	DownRate float64       // bytes/second from the core; 0 = unlimited
	Delay    time.Duration // one-way host <-> site border
	Loss     float64       // per-packet loss probability on the access segment
	// QueueBytes caps the drop-tail buffer ahead of each rate-limited
	// direction; packets arriving with more than this backlog are dropped,
	// bounding bufferbloat as a real access router does. Zero uses 256 kB.
	QueueBytes int
}

// queueCap returns the effective drop-tail limit.
func (a AccessProfile) queueCap() int {
	if a.QueueBytes > 0 {
		return a.QueueBytes
	}
	return 256 << 10
}

// Access profiles matching the technologies of Table 2.
func WiredWorkstation() AccessProfile { // Campus 1: 100 Mb/s switched LAN
	return AccessProfile{UpRate: 12.5e6, DownRate: 12.5e6, Delay: 200 * time.Microsecond}
}
func CampusWireless() AccessProfile { // Campus 2 APs: lossier, slower
	return AccessProfile{UpRate: 2.5e6, DownRate: 2.5e6, Delay: 2 * time.Millisecond, Loss: 0.004}
}
func ADSL() AccessProfile { // Home: asymmetric, interleaving delay
	return AccessProfile{UpRate: 128e3, DownRate: 1e6, Delay: 15 * time.Millisecond}
}
func FTTH() AccessProfile {
	return AccessProfile{UpRate: 1.25e6, DownRate: 1.25e6, Delay: 2 * time.Millisecond}
}
func DataCenter() AccessProfile { // server farms: effectively unconstrained
	return AccessProfile{UpRate: 0, DownRate: 0, Delay: 100 * time.Microsecond}
}

// Network is the emulated topology. Not safe for concurrent use; the whole
// simulation is single-goroutine and driven by the scheduler.
type Network struct {
	Sched *simtime.Scheduler

	rng       *simrand.Source
	hosts     map[wire.IP]*Host
	coreDelay map[[2]SiteID]time.Duration
	coreLoss  float64
	taps      map[SiteID][]Tap

	// lastArrival preserves FIFO ordering per (src,dst) host pair even when
	// per-packet jitter is applied.
	lastArrival map[[2]wire.IP]simtime.Time

	delivered uint64
	dropped   uint64
}

// New creates an empty network on the scheduler.
func New(sched *simtime.Scheduler, rng *simrand.Source) *Network {
	return &Network{
		Sched:       sched,
		rng:         rng.Fork("netem"),
		hosts:       make(map[wire.IP]*Host),
		coreDelay:   make(map[[2]SiteID]time.Duration),
		taps:        make(map[SiteID][]Tap),
		lastArrival: make(map[[2]wire.IP]simtime.Time),
	}
}

// SetCoreDelay sets the one-way propagation delay between two sites (both
// directions).
func (n *Network) SetCoreDelay(a, b SiteID, d time.Duration) {
	n.coreDelay[[2]SiteID{a, b}] = d
	n.coreDelay[[2]SiteID{b, a}] = d
}

// CoreDelay returns the configured one-way delay between sites, or a small
// default when unset (hosts within the same site).
func (n *Network) CoreDelay(a, b SiteID) time.Duration {
	if a == b {
		return 50 * time.Microsecond
	}
	if d, ok := n.coreDelay[[2]SiteID{a, b}]; ok {
		return d
	}
	return 5 * time.Millisecond
}

// SetCoreLoss sets the per-packet loss probability in the core.
func (n *Network) SetCoreLoss(p float64) { n.coreLoss = p }

// AttachTap registers a probe at a site's border.
func (n *Network) AttachTap(site SiteID, t Tap) {
	n.taps[site] = append(n.taps[site], t)
}

// Stats returns delivered and dropped packet counts.
func (n *Network) Stats() (delivered, dropped uint64) { return n.delivered, n.dropped }

// Host is an attached endpoint. Receive is invoked for every delivered
// frame; the TCP layer installs it.
type Host struct {
	IP      wire.IP
	Site    SiteID
	Access  AccessProfile
	Receive func(now simtime.Time, f *wire.Frame)

	net              *Network
	upBusy, downBusy simtime.Time

	// pathOffset is a deterministic per-destination extra delay emulating
	// route diversity between this host and individual remote servers
	// (Sec. 4.2.2 observes small per-route RTT steps).
	pathOffset func(dst wire.IP) time.Duration
}

// AddHost attaches a host. IPs must be unique.
func (n *Network) AddHost(ip wire.IP, site SiteID, access AccessProfile) *Host {
	if _, dup := n.hosts[ip]; dup {
		panic(fmt.Sprintf("netem: duplicate host %s", ip))
	}
	h := &Host{IP: ip, Site: site, Access: access, net: n}
	n.hosts[ip] = h
	return h
}

// Host returns the host with the given address, or nil.
func (n *Network) Host(ip wire.IP) *Host { return n.hosts[ip] }

// SetPathOffset installs a per-destination deterministic delay component.
func (h *Host) SetPathOffset(fn func(dst wire.IP) time.Duration) { h.pathOffset = fn }

// Send injects a frame originating at this host. Delivery is scheduled
// through uplink serialization, the core, the destination's downlink, and
// any probe taps along the way. The frame must not be mutated afterwards.
func (h *Host) Send(f *wire.Frame) {
	n := h.net
	dst := n.hosts[f.IP.Dst]
	if dst == nil {
		n.dropped++
		return
	}
	now := n.Sched.Now()

	// Uplink serialization at the sender's access link, drop-tail bounded.
	txStart := now
	if h.upBusy > txStart {
		if h.Access.UpRate > 0 {
			backlog := float64(h.upBusy.Sub(now)) / float64(time.Second) * h.Access.UpRate
			if int(backlog) > h.Access.queueCap() {
				n.dropped++
				return
			}
		}
		txStart = h.upBusy
	}
	txDone := txStart.Add(transmissionDelay(f.WireLen(), h.Access.UpRate))
	h.upBusy = txDone

	// Loss on the sender's access segment happens before the probe sees the
	// frame (an upload lost on campus WiFi never reaches the border).
	if h.Access.Loss > 0 && n.rng.Bool(h.Access.Loss) {
		n.dropped++
		return
	}

	// Border of the source site: outbound tap.
	srcBorder := txDone.Add(h.Access.Delay)
	n.scheduleTaps(h.Site, srcBorder, f, TapOutbound)

	// Core traversal.
	if n.coreLoss > 0 && n.rng.Bool(n.coreLoss) {
		n.dropped++
		return
	}
	core := n.CoreDelay(h.Site, dst.Site)
	if h.pathOffset != nil {
		core += h.pathOffset(f.IP.Dst)
	}
	if dst.pathOffset != nil {
		core += dst.pathOffset(f.IP.Src)
	}
	// Small queueing jitter, FIFO-clamped per host pair so TCP never sees
	// spurious reordering from the emulator itself.
	jitter := time.Duration(n.rng.Uniform(0, 0.002) * float64(core))
	dstBorder := srcBorder.Add(core + jitter)
	key := [2]wire.IP{f.IP.Src, f.IP.Dst}
	if last := n.lastArrival[key]; dstBorder < last {
		dstBorder = last
	}
	n.lastArrival[key] = dstBorder

	// Border of the destination site: inbound tap.
	n.scheduleTaps(dst.Site, dstBorder, f, TapInbound)

	// Loss on the receiver's access segment happens after the probe: the
	// probe counts the eventual retransmission as such.
	if dst.Access.Loss > 0 && n.rng.Bool(dst.Access.Loss) {
		n.dropped++
		return
	}

	// Downlink serialization, drop-tail bounded, then delivery.
	n.Sched.At(dstBorder, func() {
		rxStart := n.Sched.Now()
		if dst.downBusy > rxStart {
			if dst.Access.DownRate > 0 {
				backlog := float64(dst.downBusy.Sub(rxStart)) / float64(time.Second) * dst.Access.DownRate
				if int(backlog) > dst.Access.queueCap() {
					n.dropped++
					return
				}
			}
			rxStart = dst.downBusy
		}
		rxDone := rxStart.Add(transmissionDelay(f.WireLen(), dst.Access.DownRate))
		dst.downBusy = rxDone
		deliver := rxDone.Add(dst.Access.Delay)
		n.Sched.At(deliver, func() {
			n.delivered++
			if dst.Receive != nil {
				dst.Receive(n.Sched.Now(), f)
			}
		})
	})
}

// scheduleTaps delivers the frame to every tap of the site at the given
// instant.
func (n *Network) scheduleTaps(site SiteID, at simtime.Time, f *wire.Frame, dir TapDir) {
	taps := n.taps[site]
	if len(taps) == 0 {
		return
	}
	n.Sched.At(at, func() {
		for _, t := range taps {
			t.Capture(at, f, dir)
		}
	})
}

// transmissionDelay returns size/rate, or zero for unlimited links.
func transmissionDelay(size int, rate float64) time.Duration {
	if rate <= 0 {
		return 0
	}
	return time.Duration(float64(size) / rate * float64(time.Second))
}
