package netem

import (
	"testing"
	"time"

	"insidedropbox/internal/simrand"
	"insidedropbox/internal/simtime"
	"insidedropbox/internal/wire"
)

func testFrame(src, dst wire.IP, payload int) *wire.Frame {
	return &wire.Frame{
		IP:         wire.IPv4Header{TTL: 64, Protocol: wire.ProtocolTCP, Src: src, Dst: dst},
		TCP:        wire.TCPHeader{SrcPort: 40000, DstPort: 443, Flags: wire.FlagACK},
		PayloadLen: payload,
	}
}

func newNet() (*simtime.Scheduler, *Network) {
	sched := simtime.NewScheduler()
	return sched, New(sched, simrand.New(1, "test"))
}

func TestDeliveryWithDelays(t *testing.T) {
	sched, n := newNet()
	n.SetCoreDelay("campus", "dc", 45*time.Millisecond)
	a := n.AddHost(wire.MakeIP(10, 0, 0, 1), "campus", AccessProfile{Delay: time.Millisecond})
	b := n.AddHost(wire.MakeIP(184, 0, 0, 1), "dc", AccessProfile{Delay: time.Millisecond})

	var arrived simtime.Time
	got := 0
	b.Receive = func(now simtime.Time, f *wire.Frame) {
		arrived = now
		got++
	}
	a.Send(testFrame(a.IP, b.IP, 100))
	sched.Run()
	if got != 1 {
		t.Fatalf("delivered %d frames", got)
	}
	// 1ms + 45ms(+ <=0.2% jitter) + 1ms = ~47ms
	lo, hi := 47*time.Millisecond, 48*time.Millisecond
	if d := arrived.Duration(); d < lo || d > hi {
		t.Fatalf("arrival at %v, want in [%v,%v]", d, lo, hi)
	}
}

func TestUnknownDestinationDropped(t *testing.T) {
	sched, n := newNet()
	a := n.AddHost(wire.MakeIP(10, 0, 0, 1), "campus", AccessProfile{})
	a.Send(testFrame(a.IP, wire.MakeIP(1, 2, 3, 4), 10))
	sched.Run()
	if del, drop := n.Stats(); del != 0 || drop != 1 {
		t.Fatalf("stats = %d delivered, %d dropped", del, drop)
	}
}

func TestUplinkSerialization(t *testing.T) {
	sched, n := newNet()
	// 10 kB/s uplink: a 1500-byte packet takes 150 ms to serialize.
	a := n.AddHost(wire.MakeIP(10, 0, 0, 1), "campus", AccessProfile{UpRate: 10e3})
	b := n.AddHost(wire.MakeIP(184, 0, 0, 1), "dc", AccessProfile{})
	var times []simtime.Time
	b.Receive = func(now simtime.Time, f *wire.Frame) { times = append(times, now) }
	for i := 0; i < 3; i++ {
		a.Send(testFrame(a.IP, b.IP, wire.MSS))
	}
	sched.Run()
	if len(times) != 3 {
		t.Fatalf("delivered %d", len(times))
	}
	gap := times[1].Sub(times[0])
	want := time.Duration(float64(wire.MSS+wire.HeadersLen) / 10e3 * float64(time.Second))
	if gap < want-time.Millisecond || gap > want+5*time.Millisecond {
		t.Fatalf("serialization gap = %v, want ≈ %v", gap, want)
	}
}

func TestFIFOOrdering(t *testing.T) {
	sched, n := newNet()
	n.SetCoreDelay("campus", "dc", 45*time.Millisecond)
	a := n.AddHost(wire.MakeIP(10, 0, 0, 1), "campus", AccessProfile{})
	b := n.AddHost(wire.MakeIP(184, 0, 0, 1), "dc", AccessProfile{})
	var seqs []uint32
	b.Receive = func(now simtime.Time, f *wire.Frame) { seqs = append(seqs, f.TCP.Seq) }
	for i := 0; i < 200; i++ {
		f := testFrame(a.IP, b.IP, 100)
		f.TCP.Seq = uint32(i)
		a.Send(f)
	}
	sched.Run()
	if len(seqs) != 200 {
		t.Fatalf("delivered %d", len(seqs))
	}
	for i := range seqs {
		if seqs[i] != uint32(i) {
			t.Fatalf("reordered delivery at %d: %d", i, seqs[i])
		}
	}
}

type recordingTap struct {
	caps []struct {
		at  simtime.Time
		dir TapDir
		len int
	}
}

func (r *recordingTap) Capture(now simtime.Time, f *wire.Frame, dir TapDir) {
	r.caps = append(r.caps, struct {
		at  simtime.Time
		dir TapDir
		len int
	}{now, dir, f.WireLen()})
}

func TestTapSeesBothDirections(t *testing.T) {
	sched, n := newNet()
	n.SetCoreDelay("campus", "dc", 45*time.Millisecond)
	a := n.AddHost(wire.MakeIP(10, 0, 0, 1), "campus", AccessProfile{Delay: 3 * time.Millisecond})
	b := n.AddHost(wire.MakeIP(184, 0, 0, 1), "dc", AccessProfile{})
	tap := &recordingTap{}
	n.AttachTap("campus", tap)

	b.Receive = func(now simtime.Time, f *wire.Frame) {
		reply := testFrame(b.IP, a.IP, 50)
		b.Send(reply)
	}
	a.Receive = func(now simtime.Time, f *wire.Frame) {}
	a.Send(testFrame(a.IP, b.IP, 100))
	sched.Run()

	if len(tap.caps) != 2 {
		t.Fatalf("tap captured %d frames, want 2", len(tap.caps))
	}
	if tap.caps[0].dir != TapOutbound || tap.caps[1].dir != TapInbound {
		t.Fatalf("directions = %v,%v", tap.caps[0].dir, tap.caps[1].dir)
	}
	// Probe-visible RTT excludes the client access segment: roughly
	// 2*45ms core (+jitter, + server access 0.1ms*2), NOT 2*48ms.
	rtt := tap.caps[1].at.Sub(tap.caps[0].at)
	if rtt < 90*time.Millisecond || rtt > 92*time.Millisecond {
		t.Fatalf("probe RTT = %v, want ≈ 90ms", rtt)
	}
}

func TestAccessLoss(t *testing.T) {
	sched, n := newNet()
	a := n.AddHost(wire.MakeIP(10, 0, 0, 1), "campus", AccessProfile{Loss: 1.0})
	b := n.AddHost(wire.MakeIP(184, 0, 0, 1), "dc", AccessProfile{})
	got := 0
	b.Receive = func(simtime.Time, *wire.Frame) { got++ }
	for i := 0; i < 10; i++ {
		a.Send(testFrame(a.IP, b.IP, 10))
	}
	sched.Run()
	if got != 0 {
		t.Fatalf("loss=1.0 delivered %d", got)
	}
	if _, drop := n.Stats(); drop != 10 {
		t.Fatalf("dropped = %d", drop)
	}
}

func TestCoreLossStatistical(t *testing.T) {
	sched, n := newNet()
	n.SetCoreLoss(0.3)
	a := n.AddHost(wire.MakeIP(10, 0, 0, 1), "campus", AccessProfile{})
	b := n.AddHost(wire.MakeIP(184, 0, 0, 1), "dc", AccessProfile{})
	got := 0
	b.Receive = func(simtime.Time, *wire.Frame) { got++ }
	const total = 2000
	for i := 0; i < total; i++ {
		a.Send(testFrame(a.IP, b.IP, 10))
	}
	sched.Run()
	if got < total*55/100 || got > total*85/100 {
		t.Fatalf("with 30%% loss, delivered %d/%d", got, total)
	}
}

func TestPathOffset(t *testing.T) {
	sched, n := newNet()
	n.SetCoreDelay("campus", "dc", 40*time.Millisecond)
	a := n.AddHost(wire.MakeIP(10, 0, 0, 1), "campus", AccessProfile{})
	a.SetPathOffset(func(dst wire.IP) time.Duration {
		return 7 * time.Millisecond
	})
	b := n.AddHost(wire.MakeIP(184, 0, 0, 1), "dc", AccessProfile{})
	var arrived simtime.Time
	b.Receive = func(now simtime.Time, f *wire.Frame) { arrived = now }
	a.Send(testFrame(a.IP, b.IP, 10))
	sched.Run()
	if d := arrived.Duration(); d < 47*time.Millisecond || d > 48*time.Millisecond {
		t.Fatalf("arrival with offset = %v", d)
	}
}

func TestDuplicateHostPanics(t *testing.T) {
	_, n := newNet()
	n.AddHost(wire.MakeIP(10, 0, 0, 1), "campus", AccessProfile{})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate host should panic")
		}
	}()
	n.AddHost(wire.MakeIP(10, 0, 0, 1), "campus", AccessProfile{})
}

func TestAccessProfilesSane(t *testing.T) {
	for _, p := range []AccessProfile{WiredWorkstation(), CampusWireless(), ADSL(), FTTH(), DataCenter()} {
		if p.Loss < 0 || p.Loss > 0.05 {
			t.Fatalf("profile loss out of range: %+v", p)
		}
	}
	if ADSL().UpRate >= ADSL().DownRate {
		t.Fatal("ADSL should be asymmetric")
	}
}

func BenchmarkSendDeliver(b *testing.B) {
	sched, n := newNet()
	n.SetCoreDelay("campus", "dc", 45*time.Millisecond)
	a := n.AddHost(wire.MakeIP(10, 0, 0, 1), "campus", AccessProfile{})
	dst := n.AddHost(wire.MakeIP(184, 0, 0, 1), "dc", AccessProfile{})
	dst.Receive = func(simtime.Time, *wire.Frame) {}
	f := testFrame(a.IP, dst.IP, wire.MSS)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Send(f)
		if i%1024 == 0 {
			sched.Run()
		}
	}
	sched.Run()
}
