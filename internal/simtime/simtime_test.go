package simtime

import (
	"testing"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(Time(30*Millisecond), func() { got = append(got, 3) })
	s.At(Time(10*Millisecond), func() { got = append(got, 1) })
	s.At(Time(20*Millisecond), func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != Time(30*Millisecond) {
		t.Fatalf("clock = %v, want 30ms", s.Now())
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Time(Second), func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events fired out of order: %v", got)
		}
	}
}

func TestSchedulerAfterAndNesting(t *testing.T) {
	s := NewScheduler()
	var at2 Time
	s.After(Second, func() {
		s.After(2*Second, func() { at2 = s.Now() })
	})
	s.Run()
	if want := Time(3 * Second); at2 != want {
		t.Fatalf("nested event fired at %v, want %v", at2, want)
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(Time(Second), func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	s.At(Time(Millisecond), func() {})
}

func TestCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	id := s.After(Second, func() { fired = true })
	if !id.Pending() {
		t.Fatal("event should be pending")
	}
	if !id.Cancel() {
		t.Fatal("first cancel should report true")
	}
	if id.Cancel() {
		t.Fatal("second cancel should report false")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	for i := 1; i <= 5; i++ {
		d := Duration(i) * Second
		s.After(d, func() { fired = append(fired, s.Now()) })
	}
	s.RunUntil(Time(3 * Second))
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if s.Now() != Time(3*Second) {
		t.Fatalf("clock = %v, want 3s", s.Now())
	}
	s.Run()
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
}

func TestRunForAdvancesIdleClock(t *testing.T) {
	s := NewScheduler()
	s.RunFor(time.Minute)
	if s.Now() != Time(Minute) {
		t.Fatalf("clock = %v, want 1m", s.Now())
	}
}

func TestTicker(t *testing.T) {
	s := NewScheduler()
	var ticks []Time
	tk := s.NewTicker(10*Second, func(now Time) {
		ticks = append(ticks, now)
		if len(ticks) == 3 {
			// Stop from inside the callback.
		}
	})
	s.RunUntil(Time(35 * Second))
	tk.Stop()
	s.Run()
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3 (at 10s,20s,30s): %v", len(ticks), ticks)
	}
	for i, want := range []Time{Time(10 * Second), Time(20 * Second), Time(30 * Second)} {
		if ticks[i] != want {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], want)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	s := NewScheduler()
	n := 0
	var tk *Ticker
	tk = s.NewTicker(Second, func(Time) {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	s.Run()
	if n != 2 {
		t.Fatalf("ticker fired %d times, want 2", n)
	}
}

func TestNextDeadline(t *testing.T) {
	s := NewScheduler()
	if _, ok := s.NextDeadline(); ok {
		t.Fatal("empty scheduler should have no deadline")
	}
	id := s.After(5*Second, func() {})
	s.After(9*Second, func() {})
	if d, ok := s.NextDeadline(); !ok || d != Time(5*Second) {
		t.Fatalf("deadline = %v,%v want 5s,true", d, ok)
	}
	id.Cancel()
	if d, ok := s.NextDeadline(); !ok || d != Time(9*Second) {
		t.Fatalf("deadline after cancel = %v,%v want 9s,true", d, ok)
	}
}

func TestFiredCounter(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 7; i++ {
		s.After(Duration(i)*Millisecond, func() {})
	}
	s.Run()
	if s.Fired() != 7 {
		t.Fatalf("fired = %d, want 7", s.Fired())
	}
}

func BenchmarkSchedulerChain(b *testing.B) {
	s := NewScheduler()
	var step func()
	n := 0
	step = func() {
		n++
		if n < b.N {
			s.After(Microsecond, step)
		}
	}
	b.ResetTimer()
	s.After(Microsecond, step)
	s.Run()
}

func BenchmarkSchedulerFanOut(b *testing.B) {
	s := NewScheduler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(Duration(i%1000)*Microsecond, func() {})
	}
	s.Run()
}
