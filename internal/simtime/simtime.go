// Package simtime provides a deterministic discrete-event scheduler used by
// every simulated subsystem in this repository.
//
// The simulator maintains a virtual clock that only advances when the next
// scheduled event fires. Events scheduled for the same instant fire in the
// order they were scheduled (FIFO), which makes runs bit-for-bit reproducible
// regardless of host timing.
package simtime

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is an absolute instant on the virtual clock, measured as a duration
// since the simulation epoch. Using a duration (int64 nanoseconds) keeps
// arithmetic exact and avoids any dependency on wall-clock time.
type Time time.Duration

// Duration re-exports time.Duration for callers that want to avoid importing
// both packages.
type Duration = time.Duration

// Common durations re-exported for convenience.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
	Minute      = time.Minute
	Hour        = time.Hour
	Day         = 24 * time.Hour
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the instant as floating-point seconds since the epoch.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Duration converts the instant to the duration since the epoch.
func (t Time) Duration() Duration { return Duration(t) }

func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: schedule order
	fn   func()
	dead bool
	idx  int // heap index, -1 when popped
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ ev *event }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. Returns true if the event was pending.
func (id EventID) Cancel() bool {
	if id.ev == nil || id.ev.dead {
		return false
	}
	id.ev.dead = true
	return true
}

// Pending reports whether the event is still scheduled to fire.
func (id EventID) Pending() bool { return id.ev != nil && !id.ev.dead && id.ev.idx >= 0 }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// Scheduler owns the virtual clock and the pending-event queue. It is not
// safe for concurrent use: simulations are single-goroutine by design so
// results are deterministic.
type Scheduler struct {
	now     Time
	queue   eventHeap
	seq     uint64
	running bool
	fired   uint64
}

// NewScheduler returns a scheduler with the clock at the epoch.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Fired returns the number of events executed so far (useful for
// instrumentation and budget checks in tests).
func (s *Scheduler) Fired() uint64 { return s.fired }

// Len returns the number of pending events.
func (s *Scheduler) Len() int { return len(s.queue) }

// At schedules fn to run at the absolute instant at. Scheduling in the past
// panics: it always indicates a logic error in a discrete-event simulation.
func (s *Scheduler) At(at Time, fn func()) EventID {
	if at < s.now {
		panic(fmt.Sprintf("simtime: scheduling event at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("simtime: nil event callback")
	}
	ev := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return EventID{ev}
}

// After schedules fn to run d from now. Negative d is clamped to zero.
func (s *Scheduler) After(d Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Step fires the next pending event, advancing the clock to its deadline.
// It returns false when the queue is empty.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.dead {
			continue
		}
		s.now = ev.at
		s.fired++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains.
func (s *Scheduler) Run() {
	s.running = true
	defer func() { s.running = false }()
	for s.Step() {
	}
}

// RunUntil fires events with deadlines at or before limit, then advances the
// clock to limit. Events scheduled beyond limit remain queued.
func (s *Scheduler) RunUntil(limit Time) {
	s.running = true
	defer func() { s.running = false }()
	for len(s.queue) > 0 {
		// Peek without popping dead events permanently out of order.
		next := s.peek()
		if next == nil {
			break
		}
		if next.at > limit {
			break
		}
		s.Step()
	}
	if s.now < limit {
		s.now = limit
	}
}

// RunFor advances the simulation by d virtual time.
func (s *Scheduler) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

func (s *Scheduler) peek() *event {
	for len(s.queue) > 0 {
		ev := s.queue[0]
		if !ev.dead {
			return ev
		}
		heap.Pop(&s.queue)
	}
	return nil
}

// NextDeadline returns the deadline of the next live event and true, or zero
// time and false when the queue is empty.
func (s *Scheduler) NextDeadline() (Time, bool) {
	ev := s.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// Ticker repeatedly invokes fn every period until cancelled. The first tick
// fires one period from now.
type Ticker struct {
	s      *Scheduler
	period Duration
	fn     func(Time)
	id     EventID
	stop   bool
}

// NewTicker starts a ticker on the scheduler. period must be positive.
func (s *Scheduler) NewTicker(period Duration, fn func(Time)) *Ticker {
	if period <= 0 {
		panic("simtime: ticker period must be positive")
	}
	t := &Ticker{s: s, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.id = t.s.After(t.period, func() {
		if t.stop {
			return
		}
		t.fn(t.s.Now())
		if !t.stop {
			t.arm()
		}
	})
}

// Stop cancels the ticker. Safe to call multiple times.
func (t *Ticker) Stop() {
	t.stop = true
	t.id.Cancel()
}
