package dropbox

import (
	"testing"
	"time"

	"insidedropbox/internal/chunker"
	"insidedropbox/internal/dnssim"
	"insidedropbox/internal/netem"
	"insidedropbox/internal/simrand"
	"insidedropbox/internal/simtime"
	"insidedropbox/internal/tcpsim"
	"insidedropbox/internal/tlssim"
	"insidedropbox/internal/wire"
)

// tw is a miniature end-to-end world: one vantage point, the full service,
// and helpers to mint devices.
type tw struct {
	sched    *simtime.Scheduler
	rng      *simrand.Source
	net      *netem.Network
	dir      *dnssim.Directory
	resolver *dnssim.Resolver
	svc      *Service
	nextIP   byte
}

func newTW(t testing.TB, serverIW int) *tw {
	t.Helper()
	sched := simtime.NewScheduler()
	rng := simrand.New(7, "dbx-test")
	net := netem.New(sched, rng)
	net.SetCoreDelay("vp", dnssim.AmazonDC, 45*time.Millisecond)
	net.SetCoreDelay("vp", dnssim.DropboxDC, 85*time.Millisecond)
	dir := dnssim.Build(dnssim.Layout{MetaIPs: 3, NotifyIPs: 4, StorageNames: 12, StorageIPs: 8})
	cfg := tcpsim.DefaultConfig()
	cfg.InitialWindow = serverIW
	svc := NewService(ServiceConfig{
		Sched: sched, Net: net, Rng: rng, Dir: dir,
		ServerTCP: cfg, StorageNamesPerClient: 6,
	})
	resolver := dnssim.NewResolver(dir, rng)
	return &tw{sched: sched, rng: rng, net: net, dir: dir, resolver: resolver, svc: svc}
}

// device mints a device on its own household IP.
func (w *tw) device(t testing.TB, account AccountID, version Version) *Device {
	t.Helper()
	w.nextIP++
	ip := wire.MakeIP(10, 0, 0, w.nextIP)
	host := w.net.AddHost(ip, "vp", netem.WiredWorkstation())
	stack := tcpsim.NewStack(host, w.sched, w.rng, tcpsim.DefaultConfig())
	dev, err := NewDevice(ClientConfig{
		Sched: w.sched, Rng: w.rng, Service: w.svc, Resolver: w.resolver,
		Stack: stack, Version: version, Handshake: tlssim.DefaultHandshake(),
	}, account)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// refs builds n chunk refs of the given size with distinct content.
func mkRefs(seed uint64, n, size int) []chunker.Ref {
	f := chunker.SyntheticFile{Seed: seed, Size: int64(n) * int64(size)}
	refs := f.Refs()
	if size <= chunker.MaxChunkSize && n > 1 {
		// Build refs manually for sub-4MB chunk sizes.
		refs = refs[:0]
		for i := 0; i < n; i++ {
			sub := chunker.SyntheticFile{Seed: seed + uint64(i)*1000003, Size: int64(size)}
			refs = append(refs, sub.Refs()...)
		}
	}
	return refs
}

func identityWire(r chunker.Ref) int { return r.Size }

func TestNotifyEncodingRoundTrip(t *testing.T) {
	req := NotifyRequest{Host: 12345, Namespaces: []NamespaceID{1, 7, 42}}
	got, ok := ParseNotifyRequest(EncodeNotifyRequest(req))
	if !ok || got.Host != req.Host || len(got.Namespaces) != 3 || got.Namespaces[2] != 42 {
		t.Fatalf("round trip = %+v %v", got, ok)
	}
	resp := NotifyResponse{Changed: []NamespaceID{9, 11}}
	gotR, ok := ParseNotifyResponse(EncodeNotifyResponse(resp))
	if !ok || len(gotR.Changed) != 2 || gotR.Changed[0] != 9 {
		t.Fatalf("resp round trip = %+v %v", gotR, ok)
	}
	empty, ok := ParseNotifyResponse(EncodeNotifyResponse(NotifyResponse{}))
	if !ok || len(empty.Changed) != 0 {
		t.Fatalf("empty resp = %+v %v", empty, ok)
	}
	if _, ok := ParseNotifyRequest([]byte("GET / HTTP/1.1\r\n\r\n")); ok {
		t.Fatal("junk request parsed")
	}
}

func TestControlMsgSizeScales(t *testing.T) {
	small := ControlMsgSize(MsgCommitBatch{Refs: mkRefs(1, 1, 1000)})
	big := ControlMsgSize(MsgCommitBatch{Refs: mkRefs(1, 50, 1000)})
	if big <= small {
		t.Fatalf("commit size should grow with refs: %d vs %d", small, big)
	}
	if ControlMsgSize(MsgOK{}) <= 0 {
		t.Fatal("MsgOK has no size")
	}
}

func TestMetastoreAccounts(t *testing.T) {
	m := NewMetastore()
	a := m.CreateAccount()
	if a.Root == 0 {
		t.Fatal("no root namespace")
	}
	h1, err := m.LinkDevice(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := m.LinkDevice(a.ID)
	if h1 == h2 {
		t.Fatal("duplicate host ids")
	}
	if _, err := m.LinkDevice(999); err == nil {
		t.Fatal("linking to missing account should fail")
	}
	b := m.CreateAccount()
	ns, err := m.ShareFolder(a.ID, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	nsA := m.NamespacesOf(a.ID)
	if len(nsA) != 2 || nsA[1] != ns {
		t.Fatalf("account A namespaces = %v", nsA)
	}
	if got := m.Namespace(ns).Members; len(got) != 2 {
		t.Fatalf("share members = %v", got)
	}
}

func TestMetastoreDedupAndJournal(t *testing.T) {
	m := NewMetastore()
	a := m.CreateAccount()
	refs := mkRefs(5, 3, 1000)
	if missing := m.NeedBlocks(refs); len(missing) != 3 {
		t.Fatalf("all chunks should be missing, got %d", len(missing))
	}
	for _, r := range refs {
		m.StoreChunk(r)
	}
	if missing := m.NeedBlocks(refs); len(missing) != 0 {
		t.Fatalf("stored chunks still missing: %d", len(missing))
	}
	if m.DedupHits() != 3 {
		t.Fatalf("dedup hits = %d", m.DedupHits())
	}
	seq, err := m.Commit(a.Root, "x", refs, 3000)
	if err != nil || seq != 1 {
		t.Fatalf("commit = %d, %v", seq, err)
	}
	if got := m.UpdatesSince(a.Root, 0); len(got) != 1 {
		t.Fatalf("updates = %d", len(got))
	}
	if got := m.UpdatesSince(a.Root, 1); len(got) != 0 {
		t.Fatalf("cursor-past updates = %d", len(got))
	}
	if _, err := m.Commit(a.Root, "y", mkRefs(9, 1, 10), 10); err == nil {
		t.Fatal("commit with unknown chunk should fail")
	}
}

func TestUploadStoresChunks(t *testing.T) {
	w := newTW(t, 3)
	acct := w.svc.Meta.CreateAccount()
	dev := w.device(t, acct.ID, V1252)
	var stats []TransferStats
	dev.OnTransferDone = func(s TransferStats) { stats = append(stats, s) }
	dev.Start()
	refs := mkRefs(100, 4, 200_000)
	w.sched.After(2*time.Second, func() {
		dev.Upload(acct.Root, refs, identityWire, nil)
	})
	w.sched.RunUntil(simtime.Time(90 * time.Second))
	if w.svc.Meta.ChunkCount() != 4 {
		t.Fatalf("stored chunks = %d, want 4", w.svc.Meta.ChunkCount())
	}
	if w.svc.StoreOps != 4 {
		t.Fatalf("store ops = %d, want 4 (one per chunk in v1.2.52)", w.svc.StoreOps)
	}
	if w.svc.Meta.JournalSeq(acct.Root) != 1 {
		t.Fatalf("journal seq = %d", w.svc.Meta.JournalSeq(acct.Root))
	}
	var st *TransferStats
	for i := range stats {
		if stats[i].Kind == TransferStore {
			st = &stats[i]
		}
	}
	if st == nil {
		t.Fatal("no store transfer reported")
	}
	if st.Chunks != 4 || st.WireBytes != 800_000 || st.Ops != 4 {
		t.Fatalf("store stats = %+v", *st)
	}
}

func TestDedupSkipsUpload(t *testing.T) {
	w := newTW(t, 3)
	a1 := w.svc.Meta.CreateAccount()
	a2 := w.svc.Meta.CreateAccount()
	d1 := w.device(t, a1.ID, V1252)
	d2 := w.device(t, a2.ID, V1252)
	refs := mkRefs(200, 3, 100_000) // same content on both accounts
	d1.Start()
	d2.Start()
	w.sched.After(time.Second, func() { d1.Upload(a1.Root, refs, identityWire, nil) })
	var d2stats TransferStats
	d2.OnTransferDone = func(s TransferStats) {
		if s.Kind == TransferStore {
			d2stats = s
		}
	}
	w.sched.After(30*time.Second, func() { d2.Upload(a2.Root, refs, identityWire, nil) })
	w.sched.RunUntil(simtime.Time(120 * time.Second))
	if w.svc.StoreOps != 3 {
		t.Fatalf("store ops = %d: dedup should stop the second upload", w.svc.StoreOps)
	}
	if d2stats.Skipped != 3 || d2stats.Chunks != 0 {
		t.Fatalf("second upload stats = %+v", d2stats)
	}
	if w.svc.Meta.JournalSeq(a2.Root) != 1 {
		t.Fatal("dedup'd upload must still commit meta-data")
	}
}

func TestNotificationTriggersDownload(t *testing.T) {
	w := newTW(t, 3)
	acct := w.svc.Meta.CreateAccount()
	d1 := w.device(t, acct.ID, V1252)
	d2 := w.device(t, acct.ID, V1252)
	d1.Start()
	d2.Start()
	refs := mkRefs(300, 2, 500_000)
	var retr TransferStats
	d2.OnTransferDone = func(s TransferStats) {
		if s.Kind == TransferRetrieve {
			retr = s
		}
	}
	w.sched.After(5*time.Second, func() { d1.Upload(acct.Root, refs, identityWire, nil) })
	w.sched.RunUntil(simtime.Time(3 * time.Minute))
	for _, r := range refs {
		if !d2.Has(r.Hash) {
			t.Fatalf("device 2 missing chunk %s", r.Hash.Short())
		}
	}
	if retr.Chunks != 2 || retr.WireBytes != 1_000_000 {
		t.Fatalf("retrieve stats = %+v", retr)
	}
	if w.svc.RetrieveOps != 2 {
		t.Fatalf("retrieve ops = %d", w.svc.RetrieveOps)
	}
	// The retrieve must have started well before the 60 s poll period:
	// notifications push immediately on journal advance.
	if retr.Start.Duration() > 40*time.Second {
		t.Fatalf("retrieve started at %v — notification not pushed", retr.Start)
	}
}

func TestBatchSplitOver100Chunks(t *testing.T) {
	w := newTW(t, 3)
	acct := w.svc.Meta.CreateAccount()
	dev := w.device(t, acct.ID, V1252)
	dev.Start()
	refs := mkRefs(400, 250, 2_000)
	done := false
	w.sched.After(time.Second, func() {
		dev.Upload(acct.Root, refs, identityWire, func() { done = true })
	})
	w.sched.RunUntil(simtime.Time(30 * time.Minute))
	if !done {
		t.Fatal("upload did not complete")
	}
	if got := w.svc.Meta.JournalSeq(acct.Root); got != 3 {
		t.Fatalf("journal entries = %d, want 3 (250 chunks / 100 per batch)", got)
	}
	if w.svc.Meta.ChunkCount() != 250 {
		t.Fatalf("chunks = %d", w.svc.Meta.ChunkCount())
	}
}

func TestV140BundlesSmallChunks(t *testing.T) {
	w := newTW(t, 3)
	acct := w.svc.Meta.CreateAccount()
	dev := w.device(t, acct.ID, V140)
	dev.Start()
	refs := mkRefs(500, 40, 50_000) // 2 MB of small chunks
	w.sched.After(time.Second, func() { dev.Upload(acct.Root, refs, identityWire, nil) })
	w.sched.RunUntil(simtime.Time(5 * time.Minute))
	if w.svc.Meta.ChunkCount() != 40 {
		t.Fatalf("chunks = %d", w.svc.Meta.ChunkCount())
	}
	if w.svc.StoreOps > 3 {
		t.Fatalf("store ops = %d: bundling should collapse 40 small chunks", w.svc.StoreOps)
	}
	if w.svc.BatchOps == 0 {
		t.Fatal("no store_batch issued")
	}
}

func TestSequentialAcksSlowerThanBundling(t *testing.T) {
	durations := map[Version]time.Duration{}
	for _, v := range []Version{V1252, V140} {
		w := newTW(t, 3)
		acct := w.svc.Meta.CreateAccount()
		dev := w.device(t, acct.ID, v)
		dev.Start()
		refs := mkRefs(600, 30, 60_000)
		var st TransferStats
		dev.OnTransferDone = func(s TransferStats) {
			if s.Kind == TransferStore {
				st = s
			}
		}
		w.sched.After(time.Second, func() { dev.Upload(acct.Root, refs, identityWire, nil) })
		w.sched.RunUntil(simtime.Time(10 * time.Minute))
		if st.Chunks != 30 {
			t.Fatalf("%v: chunks = %d", v, st.Chunks)
		}
		durations[v] = st.End.Sub(st.Start)
	}
	if durations[V140]*2 > durations[V1252] {
		t.Fatalf("bundling should at least halve duration: v1.2.52 %v vs v1.4.0 %v",
			durations[V1252], durations[V140])
	}
}

func TestLANSyncAvoidsWAN(t *testing.T) {
	w := newTW(t, 3)
	acct := w.svc.Meta.CreateAccount()
	d1 := w.device(t, acct.ID, V1252)
	d2 := w.device(t, acct.ID, V1252)
	d1.LANPeers = []*Device{d2}
	d2.LANPeers = []*Device{d1}
	d1.Start()
	d2.Start()
	refs := mkRefs(700, 2, 300_000)
	w.sched.After(time.Second, func() { d1.Upload(acct.Root, refs, identityWire, nil) })
	w.sched.RunUntil(simtime.Time(3 * time.Minute))
	if w.svc.RetrieveOps != 0 {
		t.Fatalf("retrieve ops = %d: LAN sync should bypass the cloud", w.svc.RetrieveOps)
	}
	for _, r := range refs {
		if !d2.Has(r.Hash) {
			t.Fatal("peer did not receive chunks over LAN")
		}
	}
}

func TestOfflineDeviceSyncsOnStart(t *testing.T) {
	w := newTW(t, 3)
	acct := w.svc.Meta.CreateAccount()
	d1 := w.device(t, acct.ID, V1252)
	d2 := w.device(t, acct.ID, V1252)
	d1.Start()
	refs := mkRefs(800, 3, 80_000)
	w.sched.After(time.Second, func() { d1.Upload(acct.Root, refs, identityWire, nil) })
	w.sched.RunUntil(simtime.Time(2 * time.Minute))
	// d2 comes online later: the first list must pull everything.
	d2.Start()
	w.sched.RunUntil(simtime.Time(4 * time.Minute))
	for _, r := range refs {
		if !d2.Has(r.Hash) {
			t.Fatal("late-starting device did not sync")
		}
	}
}

func TestStopTearsDownConnections(t *testing.T) {
	w := newTW(t, 3)
	acct := w.svc.Meta.CreateAccount()
	dev := w.device(t, acct.ID, V1252)
	dev.Start()
	w.sched.After(30*time.Second, func() {
		dev.Upload(acct.Root, mkRefs(900, 10, 1_000_000), identityWire, nil)
	})
	w.sched.After(32*time.Second, dev.Stop)
	w.sched.RunUntil(simtime.Time(5 * time.Minute))
	if dev.Online() {
		t.Fatal("device still online")
	}
	// Restart should work cleanly.
	dev.Start()
	w.sched.RunUntil(simtime.Time(8 * time.Minute))
	if !dev.Online() {
		t.Fatal("restart failed")
	}
}

func TestSharedFolderCrossAccount(t *testing.T) {
	w := newTW(t, 3)
	a1 := w.svc.Meta.CreateAccount()
	a2 := w.svc.Meta.CreateAccount()
	shared, err := w.svc.Meta.ShareFolder(a1.ID, a2.ID)
	if err != nil {
		t.Fatal(err)
	}
	d1 := w.device(t, a1.ID, V1252)
	d2 := w.device(t, a2.ID, V1252)
	d1.Start()
	d2.Start()
	refs := mkRefs(1000, 2, 150_000)
	w.sched.After(time.Second, func() { d1.Upload(shared, refs, identityWire, nil) })
	w.sched.RunUntil(simtime.Time(3 * time.Minute))
	for _, r := range refs {
		if !d2.Has(r.Hash) {
			t.Fatal("shared-folder content did not propagate across accounts")
		}
	}
}

func TestNotifyLongPollPunt(t *testing.T) {
	w := newTW(t, 3)
	acct := w.svc.Meta.CreateAccount()
	dev := w.device(t, acct.ID, V1252)
	dev.Start()
	// Run past two poll periods with no changes; the device must stay
	// online with an armed long poll (requests re-issued after punts).
	w.sched.RunUntil(simtime.Time(150 * time.Second))
	armed := 0
	for _, w := range w.svc.notify.waiters {
		if w.armed {
			armed++
		}
	}
	if armed != 1 {
		t.Fatalf("armed long polls = %d, want 1", armed)
	}
}

func BenchmarkUpload10Chunks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := newTW(b, 3)
		acct := w.svc.Meta.CreateAccount()
		dev := w.device(b, acct.ID, V1252)
		dev.Start()
		refs := mkRefs(uint64(i)*17+1, 10, 100_000)
		w.sched.After(time.Second, func() { dev.Upload(acct.Root, refs, identityWire, nil) })
		w.sched.RunUntil(simtime.Time(2 * time.Minute))
		if w.svc.Meta.ChunkCount() != 10 {
			b.Fatalf("chunks = %d", w.svc.Meta.ChunkCount())
		}
	}
}
