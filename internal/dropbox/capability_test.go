package dropbox

import (
	"testing"
	"time"

	"insidedropbox/internal/capability"
	"insidedropbox/internal/netem"
	"insidedropbox/internal/simtime"
	"insidedropbox/internal/tcpsim"
	"insidedropbox/internal/tlssim"
	"insidedropbox/internal/wire"
)

// deviceCaps mints a device with an explicit capability profile.
func (w *tw) deviceCaps(t testing.TB, account AccountID, caps capability.Profile) *Device {
	t.Helper()
	w.nextIP++
	ip := wire.MakeIP(10, 0, 0, w.nextIP)
	host := w.net.AddHost(ip, "vp", netem.WiredWorkstation())
	stack := tcpsim.NewStack(host, w.sched, w.rng, tcpsim.DefaultConfig())
	dev, err := NewDevice(ClientConfig{
		Sched: w.sched, Rng: w.rng, Service: w.svc, Resolver: w.resolver,
		Stack: stack, Caps: &caps, Handshake: tlssim.DefaultHandshake(),
	}, account)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// TestVersionResolvesToPresetProfile pins the legacy bridge: a device built
// from a Version carries the matching preset capability vector.
func TestVersionResolvesToPresetProfile(t *testing.T) {
	w := newTW(t, 3)
	acct := w.svc.Meta.CreateAccount()
	if got := w.device(t, acct.ID, V1252).Caps(); got != capability.DropboxV1252() {
		t.Fatalf("V1252 resolved to %+v", got)
	}
	if got := w.device(t, acct.ID, V140).Caps(); got != capability.DropboxV140() {
		t.Fatalf("V140 resolved to %+v", got)
	}
}

// TestCapsPresetDeviceMatchesVersionDevice replays the same upload in two
// identically-seeded worlds — one device configured by Version, one by the
// matching preset profile — and requires identical transfer statistics and
// server counters: the profile data plane is the Version data plane.
func TestCapsPresetDeviceMatchesVersionDevice(t *testing.T) {
	type outcome struct {
		stats    TransferStats
		storeOps int
		batchOps int
	}
	run := func(useCaps bool) outcome {
		w := newTW(t, 3)
		acct := w.svc.Meta.CreateAccount()
		var dev *Device
		if useCaps {
			dev = w.deviceCaps(t, acct.ID, capability.DropboxV140())
		} else {
			dev = w.device(t, acct.ID, V140)
		}
		var st TransferStats
		dev.OnTransferDone = func(s TransferStats) {
			if s.Kind == TransferStore {
				st = s
			}
		}
		dev.Start()
		refs := mkRefs(800, 25, 70_000)
		w.sched.After(time.Second, func() { dev.Upload(acct.Root, refs, identityWire, nil) })
		w.sched.RunUntil(simtime.Time(5 * time.Minute))
		return outcome{stats: st, storeOps: w.svc.StoreOps, batchOps: w.svc.BatchOps}
	}
	legacy, caps := run(false), run(true)
	if legacy != caps {
		t.Fatalf("profile device diverged from version device:\nlegacy %+v\ncaps   %+v", legacy, caps)
	}
	if legacy.stats.Chunks != 25 {
		t.Fatalf("upload incomplete: %+v", legacy.stats)
	}
}

// TestNoDedupUploadsDuplicateChunks pins the dedup knob on the packet
// path: content the service already holds is re-uploaded in full when the
// profile disables deduplication.
func TestNoDedupUploadsDuplicateChunks(t *testing.T) {
	w := newTW(t, 3)
	a1 := w.svc.Meta.CreateAccount()
	a2 := w.svc.Meta.CreateAccount()
	d1 := w.device(t, a1.ID, V1252)
	d2 := w.deviceCaps(t, a2.ID, func() capability.Profile {
		p := capability.NoDedup()
		p.Bundling = false // per-chunk ops make the op count assertable
		return p
	}())
	refs := mkRefs(900, 3, 100_000) // same content on both accounts
	d1.Start()
	d2.Start()
	w.sched.After(time.Second, func() { d1.Upload(a1.Root, refs, identityWire, nil) })
	var d2stats TransferStats
	d2.OnTransferDone = func(s TransferStats) {
		if s.Kind == TransferStore {
			d2stats = s
		}
	}
	w.sched.After(30*time.Second, func() { d2.Upload(a2.Root, refs, identityWire, nil) })
	w.sched.RunUntil(simtime.Time(120 * time.Second))
	if w.svc.StoreOps != 6 {
		t.Fatalf("store ops = %d: no-dedup should re-upload all 3 chunks", w.svc.StoreOps)
	}
	if d2stats.Skipped != 0 || d2stats.Chunks != 3 {
		t.Fatalf("second upload stats = %+v", d2stats)
	}
}

// TestPipelinedStoreRemovesAckFloor pins the pipelining knob: per-chunk
// operations issued without waiting for acknowledgments complete far
// faster than the sequentially-acknowledged baseline of Sec. 4.4.2.
func TestPipelinedStoreRemovesAckFloor(t *testing.T) {
	pipelined := capability.DropboxV1252()
	pipelined.Name = "pipelined-per-chunk"
	pipelined.CommitPipelining = true

	durations := map[string]time.Duration{}
	for name, caps := range map[string]capability.Profile{
		"sequential": capability.DropboxV1252(),
		"pipelined":  pipelined,
	} {
		w := newTW(t, 3)
		acct := w.svc.Meta.CreateAccount()
		dev := w.deviceCaps(t, acct.ID, caps)
		var st TransferStats
		dev.OnTransferDone = func(s TransferStats) {
			if s.Kind == TransferStore {
				st = s
			}
		}
		dev.Start()
		refs := mkRefs(901, 30, 60_000)
		w.sched.After(time.Second, func() { dev.Upload(acct.Root, refs, identityWire, nil) })
		w.sched.RunUntil(simtime.Time(10 * time.Minute))
		if st.Chunks != 30 || st.Ops != 30 {
			t.Fatalf("%s: stats = %+v", name, st)
		}
		durations[name] = st.End.Sub(st.Start)
	}
	if durations["pipelined"]*2 > durations["sequential"] {
		t.Fatalf("pipelining should at least halve duration: sequential %v vs pipelined %v",
			durations["sequential"], durations["pipelined"])
	}
}

// TestPipelinedRetrieveCompletes exercises the pipelined download path end
// to end: every chunk arrives and is credited despite overlapping
// requests.
func TestPipelinedRetrieveCompletes(t *testing.T) {
	w := newTW(t, 3)
	acct := w.svc.Meta.CreateAccount()
	d1 := w.device(t, acct.ID, V1252)
	d2 := w.deviceCaps(t, acct.ID, func() capability.Profile {
		p := capability.FullPipeline()
		p.Bundling = false
		return p
	}())
	d1.Start()
	d2.Start()
	refs := mkRefs(902, 5, 200_000)
	var retr TransferStats
	d2.OnTransferDone = func(s TransferStats) {
		if s.Kind == TransferRetrieve {
			retr = s
		}
	}
	w.sched.After(5*time.Second, func() { d1.Upload(acct.Root, refs, identityWire, nil) })
	w.sched.RunUntil(simtime.Time(4 * time.Minute))
	for _, r := range refs {
		if !d2.Has(r.Hash) {
			t.Fatalf("device 2 missing chunk %s", r.Hash.Short())
		}
	}
	if retr.Chunks != 5 || retr.Ops != 5 {
		t.Fatalf("retrieve stats = %+v", retr)
	}
}
