package dropbox

import (
	"fmt"

	"insidedropbox/internal/chunker"
)

// Metastore is the server-side state of the service: accounts, devices,
// namespaces, per-namespace journals and the global deduplicating chunk
// index. It is the substrate behind the meta-data servers of Sec. 2.3.2.
type Metastore struct {
	accounts   map[AccountID]*Account
	hosts      map[HostID]*DeviceInfo
	namespaces map[NamespaceID]*Namespace
	chunks     map[chunker.Hash]int // chunk id -> size (content-addressed index)

	nextAccount   AccountID
	nextHost      HostID
	nextNamespace NamespaceID

	// OnJournalAdvance fires after a changeset commits; the notification
	// subsystem subscribes to push changes to online devices.
	OnJournalAdvance func(ns NamespaceID, seq uint64)

	// Stats.
	dedupHits   int
	chunksTotal int
}

// AccountID identifies a user account.
type AccountID uint64

// Account groups the devices and namespaces of one user.
type Account struct {
	ID     AccountID
	Root   NamespaceID
	Hosts  []HostID
	Shared []NamespaceID // shared-folder namespaces joined by this account
}

// DeviceInfo is the server view of a linked device.
type DeviceInfo struct {
	Host    HostID
	Account AccountID
}

// Namespace is one synchronized folder with its journal.
type Namespace struct {
	ID      NamespaceID
	Journal []JournalEntry
	Members []AccountID // accounts with access (>1 for shared folders)
}

// NewMetastore returns an empty store.
func NewMetastore() *Metastore {
	return &Metastore{
		accounts:      make(map[AccountID]*Account),
		hosts:         make(map[HostID]*DeviceInfo),
		namespaces:    make(map[NamespaceID]*Namespace),
		chunks:        make(map[chunker.Hash]int),
		nextAccount:   1,
		nextHost:      1,
		nextNamespace: 1,
	}
}

// CreateAccount provisions an account with its root namespace.
func (m *Metastore) CreateAccount() *Account {
	id := m.nextAccount
	m.nextAccount++
	ns := m.createNamespace()
	ns.Members = []AccountID{id}
	a := &Account{ID: id, Root: ns.ID}
	m.accounts[id] = a
	return a
}

// Account returns the account by id, or nil.
func (m *Metastore) Account(id AccountID) *Account { return m.accounts[id] }

func (m *Metastore) createNamespace() *Namespace {
	ns := &Namespace{ID: m.nextNamespace}
	m.nextNamespace++
	m.namespaces[ns.ID] = ns
	return ns
}

// LinkDevice registers a new device (host_int) under an account.
func (m *Metastore) LinkDevice(account AccountID) (HostID, error) {
	a := m.accounts[account]
	if a == nil {
		return 0, fmt.Errorf("dropbox: no account %d", account)
	}
	h := m.nextHost
	m.nextHost++
	m.hosts[h] = &DeviceInfo{Host: h, Account: account}
	a.Hosts = append(a.Hosts, h)
	return h, nil
}

// Device returns the device record, or nil.
func (m *Metastore) Device(h HostID) *DeviceInfo { return m.hosts[h] }

// ShareFolder creates a shared namespace owned by the given accounts (or
// adds members to grow an existing share).
func (m *Metastore) ShareFolder(members ...AccountID) (NamespaceID, error) {
	if len(members) == 0 {
		return 0, fmt.Errorf("dropbox: shared folder needs members")
	}
	ns := m.createNamespace()
	for _, id := range members {
		a := m.accounts[id]
		if a == nil {
			return 0, fmt.Errorf("dropbox: no account %d", id)
		}
		ns.Members = append(ns.Members, id)
		a.Shared = append(a.Shared, ns.ID)
	}
	return ns.ID, nil
}

// NamespacesOf lists every namespace an account can sync: root + shares.
func (m *Metastore) NamespacesOf(account AccountID) []NamespaceID {
	a := m.accounts[account]
	if a == nil {
		return nil
	}
	out := append([]NamespaceID{a.Root}, a.Shared...)
	return out
}

// Namespace returns a namespace by id, or nil.
func (m *Metastore) Namespace(id NamespaceID) *Namespace { return m.namespaces[id] }

// NeedBlocks filters refs down to the hashes missing from the chunk index —
// the server side of deduplication.
func (m *Metastore) NeedBlocks(refs []chunker.Ref) []chunker.Hash {
	var missing []chunker.Hash
	for _, r := range refs {
		if _, ok := m.chunks[r.Hash]; ok {
			m.dedupHits++
			continue
		}
		missing = append(missing, r.Hash)
	}
	return missing
}

// StoreChunk records an uploaded chunk in the index.
func (m *Metastore) StoreChunk(ref chunker.Ref) {
	if _, ok := m.chunks[ref.Hash]; !ok {
		m.chunks[ref.Hash] = ref.Size
		m.chunksTotal++
	}
}

// HasChunk reports whether the index holds the hash.
func (m *Metastore) HasChunk(h chunker.Hash) bool {
	_, ok := m.chunks[h]
	return ok
}

// ChunkSize returns the stored size of a chunk (0 if unknown).
func (m *Metastore) ChunkSize(h chunker.Hash) int { return m.chunks[h] }

// Commit appends a journal entry to a namespace and fans out the
// notification. All chunks must be present in the index.
func (m *Metastore) Commit(ns NamespaceID, path string, refs []chunker.Ref, wireHint float64) (uint64, error) {
	n := m.namespaces[ns]
	if n == nil {
		return 0, fmt.Errorf("dropbox: no namespace %d", ns)
	}
	for _, r := range refs {
		if !m.HasChunk(r.Hash) {
			return 0, fmt.Errorf("dropbox: commit references missing chunk %s", r.Hash.Short())
		}
	}
	seq := uint64(len(n.Journal)) + 1
	n.Journal = append(n.Journal, JournalEntry{Seq: seq, Path: path, Refs: refs, WireHint: wireHint})
	if m.OnJournalAdvance != nil {
		m.OnJournalAdvance(ns, seq)
	}
	return seq, nil
}

// UpdatesSince returns journal entries past the cursor.
func (m *Metastore) UpdatesSince(ns NamespaceID, cursor uint64) []JournalEntry {
	n := m.namespaces[ns]
	if n == nil || cursor >= uint64(len(n.Journal)) {
		return nil
	}
	return n.Journal[cursor:]
}

// JournalSeq returns the latest sequence number of a namespace.
func (m *Metastore) JournalSeq(ns NamespaceID) uint64 {
	n := m.namespaces[ns]
	if n == nil {
		return 0
	}
	return uint64(len(n.Journal))
}

// DedupHits reports how many uploads were avoided by deduplication.
func (m *Metastore) DedupHits() int { return m.dedupHits }

// ChunkCount reports the number of distinct chunks stored.
func (m *Metastore) ChunkCount() int { return m.chunksTotal }
