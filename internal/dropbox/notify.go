package dropbox

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"insidedropbox/internal/simtime"
	"insidedropbox/internal/tcpsim"
)

// The notification protocol is the one Dropbox exchange that is NOT
// TLS-encrypted (Sec. 2.3.1): clients long-poll notifyX.dropbox.com over
// plain HTTP, carrying their host_int and namespace list in the clear. The
// paper's probe extracts device identifiers and shared-folder counts from
// exactly these bytes, so requests are fully materialized on the wire here.

// EncodeNotifyRequest renders the cleartext long-poll request.
func EncodeNotifyRequest(r NotifyRequest) []byte {
	var b strings.Builder
	b.WriteString("GET /subscribe?host_int=")
	b.WriteString(strconv.FormatUint(uint64(r.Host), 10))
	b.WriteString("&ns_map=")
	for i, ns := range r.Namespaces {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(uint64(ns), 10))
		b.WriteString("_1")
	}
	b.WriteString(" HTTP/1.1\r\nHost: notify.dropbox.com\r\nConnection: keep-alive\r\n\r\n")
	return []byte(b.String())
}

// ParseNotifyRequest recovers the request from captured bytes. The probe
// uses the same parser as the server (classic DPI).
func ParseNotifyRequest(data []byte) (NotifyRequest, bool) {
	s := string(data)
	const pfx = "GET /subscribe?host_int="
	start := strings.Index(s, pfx)
	if start < 0 {
		return NotifyRequest{}, false
	}
	s = s[start+len(pfx):]
	amp := strings.Index(s, "&ns_map=")
	if amp < 0 {
		return NotifyRequest{}, false
	}
	host, err := strconv.ParseUint(s[:amp], 10, 64)
	if err != nil {
		return NotifyRequest{}, false
	}
	rest := s[amp+len("&ns_map="):]
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return NotifyRequest{}, false
	}
	req := NotifyRequest{Host: HostID(host)}
	for _, part := range strings.Split(rest[:sp], ",") {
		if part == "" {
			continue
		}
		idStr, _, _ := strings.Cut(part, "_")
		id, err := strconv.ParseUint(idStr, 10, 32)
		if err != nil {
			return NotifyRequest{}, false
		}
		req.Namespaces = append(req.Namespaces, NamespaceID(id))
	}
	return req, true
}

// EncodeNotifyResponse renders the long-poll response.
func EncodeNotifyResponse(r NotifyResponse) []byte {
	var body strings.Builder
	body.WriteString(`{"ret":"punt","changed":[`)
	for i, ns := range r.Changed {
		if i > 0 {
			body.WriteByte(',')
		}
		body.WriteString(strconv.FormatUint(uint64(ns), 10))
	}
	body.WriteString("]}")
	return []byte(fmt.Sprintf("HTTP/1.1 200 OK\r\nContent-Length: %d\r\n\r\n%s", body.Len(), body.String()))
}

// ParseNotifyResponse recovers the changed-namespace list.
func ParseNotifyResponse(data []byte) (NotifyResponse, bool) {
	s := string(data)
	i := strings.Index(s, `"changed":[`)
	if i < 0 {
		return NotifyResponse{}, false
	}
	s = s[i+len(`"changed":["`)-1:]
	end := strings.IndexByte(s, ']')
	if end < 0 {
		return NotifyResponse{}, false
	}
	var resp NotifyResponse
	for _, part := range strings.Split(s[:end], ",") {
		if part == "" {
			continue
		}
		id, err := strconv.ParseUint(part, 10, 32)
		if err != nil {
			return NotifyResponse{}, false
		}
		resp.Changed = append(resp.Changed, NamespaceID(id))
	}
	return resp, true
}

// notifyState is the server side of the long-poll protocol, shared by all
// notification front-ends.
type notifyState struct {
	svc     *Service
	waiters map[*tcpsim.Conn]*notifyWaiter
	byNS    map[NamespaceID]map[*tcpsim.Conn]struct{}
	nextSeq uint64
}

type notifyWaiter struct {
	conn  *tcpsim.Conn
	req   NotifyRequest
	timer simtime.EventID
	buf   []byte
	armed bool   // request fully received, response pending
	seq   uint64 // arrival order, the deterministic broadcast order
}

func newNotifyState(svc *Service) *notifyState {
	return &notifyState{
		svc:     svc,
		waiters: make(map[*tcpsim.Conn]*notifyWaiter),
		byNS:    make(map[NamespaceID]map[*tcpsim.Conn]struct{}),
	}
}

func (n *notifyState) accept(conn *tcpsim.Conn) {
	n.nextSeq++
	w := &notifyWaiter{conn: conn, seq: n.nextSeq}
	n.waiters[conn] = w
	conn.OnRecv = func(data []byte, size int, push bool) {
		w.buf = append(w.buf, data...)
		if !strings.Contains(string(w.buf), "\r\n\r\n") {
			return
		}
		req, ok := ParseNotifyRequest(w.buf)
		w.buf = nil
		if !ok {
			conn.Abort()
			n.drop(conn)
			return
		}
		n.arm(w, req)
	}
	cleanup := func() { n.drop(conn) }
	conn.OnPeerClose = func() {
		conn.Close()
		cleanup()
	}
	conn.OnReset = cleanup
	conn.OnClosed = cleanup
}

// arm registers the waiter's subscriptions and schedules the 60 s punt.
func (n *notifyState) arm(w *notifyWaiter, req NotifyRequest) {
	w.req = req
	w.armed = true
	for _, ns := range req.Namespaces {
		set := n.byNS[ns]
		if set == nil {
			set = make(map[*tcpsim.Conn]struct{})
			n.byNS[ns] = set
		}
		set[w.conn] = struct{}{}
	}
	w.timer = n.svc.cfg.Sched.After(NotifyPollPeriod, func() {
		n.respond(w, nil)
	})
}

// journalAdvanced pushes an immediate response to every device subscribed
// to the namespace ("changes on the central storage are advertised as soon
// as they are performed").
func (n *notifyState) journalAdvanced(ns NamespaceID, seq uint64) {
	set := n.byNS[ns]
	if len(set) == 0 {
		return
	}
	// Iterating a map keyed by *Conn follows pointer hash order, which
	// varies with heap layout run to run — with several devices on one
	// namespace the broadcast order (and every downstream packet time)
	// became nondeterministic. Respond in connection arrival order.
	ws := make([]*notifyWaiter, 0, len(set))
	for conn := range set {
		if w := n.waiters[conn]; w != nil && w.armed {
			ws = append(ws, w)
		}
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].seq < ws[j].seq })
	for _, w := range ws {
		n.respond(w, []NamespaceID{ns})
	}
}

func (n *notifyState) respond(w *notifyWaiter, changed []NamespaceID) {
	if !w.armed {
		return
	}
	w.armed = false
	w.timer.Cancel()
	n.unsubscribe(w)
	resp := EncodeNotifyResponse(NotifyResponse{Changed: changed})
	w.conn.Write(resp, len(resp), true)
}

func (n *notifyState) unsubscribe(w *notifyWaiter) {
	for _, ns := range w.req.Namespaces {
		if set := n.byNS[ns]; set != nil {
			delete(set, w.conn)
			if len(set) == 0 {
				delete(n.byNS, ns)
			}
		}
	}
}

func (n *notifyState) drop(conn *tcpsim.Conn) {
	w := n.waiters[conn]
	if w == nil {
		return
	}
	w.timer.Cancel()
	n.unsubscribe(w)
	delete(n.waiters, conn)
}
