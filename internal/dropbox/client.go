package dropbox

import (
	"time"

	"insidedropbox/internal/capability"
	"insidedropbox/internal/chunker"
	"insidedropbox/internal/dnssim"
	"insidedropbox/internal/simrand"
	"insidedropbox/internal/simtime"
	"insidedropbox/internal/tcpsim"
	"insidedropbox/internal/tlssim"
	"insidedropbox/internal/wire"
)

// ClientConfig wires a Device into the simulation.
type ClientConfig struct {
	Sched    *simtime.Scheduler
	Rng      *simrand.Source
	Service  *Service
	Resolver *dnssim.Resolver
	Stack    *tcpsim.Stack // shared by all devices behind one IP (NAT)

	// Version selects one of the two historical clients. Caps, when set,
	// overrides it with an arbitrary capability profile; the data plane
	// consults only the resolved profile.
	Version   Version
	Caps      *capability.Profile
	Handshake tlssim.HandshakeConfig

	// ReactionMedian is the median client processing time between storage
	// operations (hashing, compression, disk). Zero uses 70 ms.
	ReactionMedian time.Duration
}

// TransferKind labels a completed synchronization direction.
type TransferKind int

// Transfer kinds.
const (
	TransferStore TransferKind = iota
	TransferRetrieve
)

func (k TransferKind) String() string {
	if k == TransferStore {
		return "store"
	}
	return "retrieve"
}

// TransferStats is ground truth reported after a sync transaction; the
// experiments compare the probe's inferences against it.
type TransferStats struct {
	Kind      TransferKind
	Chunks    int // chunks actually transferred (after dedup/LAN sync)
	Skipped   int // chunks avoided by dedup or LAN sync
	WireBytes int // compressed payload bytes moved
	Ops       int // storage operations issued
	Start     simtime.Time
	End       simtime.Time
}

// Device is one Dropbox client instance (a host_int).
type Device struct {
	Cfg     ClientConfig
	Host    HostID
	Account AccountID

	namespaces []NamespaceID
	cursors    map[NamespaceID]uint64
	have       map[chunker.Hash]struct{}

	// LANPeers are devices on the same LAN: chunks present on a peer are
	// fetched via the LAN Sync Protocol and never cross the probe
	// (Sec. 5.2). Nil disables LAN sync.
	LANPeers []*Device

	// OnTransferDone observes completed transactions.
	OnTransferDone func(TransferStats)

	online       bool
	caps         capability.Profile
	rng          *simrand.Source
	storageNames []string
	nameIdx      int

	control  *rpcConn
	store    *rpcConn
	retrieve *rpcConn

	notifyConn *tcpsim.Conn
	notifyBuf  []byte

	// syncing serializes transactions per device.
	busy  bool
	queue []func()
}

// NewDevice provisions a device for an existing account and registers it in
// the metastore.
func NewDevice(cfg ClientConfig, account AccountID) (*Device, error) {
	if cfg.ReactionMedian == 0 {
		cfg.ReactionMedian = 70 * time.Millisecond
	}
	host, err := cfg.Service.Meta.LinkDevice(account)
	if err != nil {
		return nil, err
	}
	caps := cfg.Version.Profile()
	if cfg.Caps != nil {
		caps = *cfg.Caps
	}
	d := &Device{
		Cfg:        cfg,
		Host:       host,
		Account:    account,
		caps:       caps,
		namespaces: cfg.Service.Meta.NamespacesOf(account),
		cursors:    make(map[NamespaceID]uint64),
		have:       make(map[chunker.Hash]struct{}),
		rng:        cfg.Rng.Fork("dev"),
	}
	return d, nil
}

// Caps returns the device's resolved capability profile.
func (d *Device) Caps() capability.Profile { return d.caps }

// Namespaces returns the namespaces this device synchronizes.
func (d *Device) Namespaces() []NamespaceID { return d.namespaces }

// Online reports whether a session is active.
func (d *Device) Online() bool { return d.online }

// Has reports whether the device holds a chunk locally.
func (d *Device) Has(h chunker.Hash) bool {
	_, ok := d.have[h]
	return ok
}

// reaction samples the client-side inter-operation processing delay.
func (d *Device) reaction() time.Duration {
	return time.Duration(d.rng.LogNormalMedian(float64(d.Cfg.ReactionMedian), 0.5))
}

// Start opens a session: register with the control plane, start the
// notification long-poll, and run the first synchronization (the paper
// observes start-up retrieves dominating, Sec. 5.4).
func (d *Device) Start() {
	if d.online {
		return
	}
	d.online = true
	d.controlCall(MsgRegisterHost{Host: d.Host, Namespaces: d.namespaces}, 1, func(any) {
		if !d.online {
			return
		}
		d.startNotify()
		d.syncNow()
	})
}

// Stop ends the session, closing every connection.
func (d *Device) Stop() {
	if !d.online {
		return
	}
	d.online = false
	if d.notifyConn != nil {
		d.notifyConn.Abort()
		d.notifyConn = nil
	}
	for _, rc := range []*rpcConn{d.control, d.store, d.retrieve} {
		if rc != nil {
			rc.shutdown()
		}
	}
	d.control, d.store, d.retrieve = nil, nil, nil
	d.busy = false
	d.queue = nil
}

// ---------- notification long-poll ----------

func (d *Device) startNotify() {
	names := d.Cfg.Service.cfg.Dir.NotifyNames
	if len(names) == 0 {
		return
	}
	name := names[d.rng.Intn(len(names))]
	ip, ok := d.Cfg.Resolver.Resolve(d.Cfg.Sched.Now(), d.Cfg.Stack.Host.IP, name)
	if !ok {
		return
	}
	conn := d.Cfg.Stack.Dial(ip, 80)
	d.notifyConn = conn
	conn.OnEstablished = func() { d.sendNotifyRequest() }
	conn.OnRecv = func(data []byte, size int, push bool) {
		d.notifyBuf = append(d.notifyBuf, data...)
		resp, ok := ParseNotifyResponse(d.notifyBuf)
		if !ok {
			return
		}
		d.notifyBuf = nil
		if len(resp.Changed) > 0 {
			d.syncNow()
		}
		// Immediately re-poll ("after receiving it, the client immediately
		// sends a new request").
		if d.online && d.notifyConn == conn {
			d.sendNotifyRequest()
		}
	}
	reopen := func() {
		if d.online && d.notifyConn == conn {
			d.notifyConn = nil
			d.notifyBuf = nil
			// Notification connections are re-established immediately
			// after abrupt termination (Sec. 5.5).
			d.Cfg.Sched.After(100*time.Millisecond, func() {
				if d.online && d.notifyConn == nil {
					d.startNotify()
				}
			})
		}
	}
	conn.OnReset = reopen
	conn.OnPeerClose = func() {
		conn.Close()
		reopen()
	}
}

func (d *Device) sendNotifyRequest() {
	if d.notifyConn == nil {
		return
	}
	req := EncodeNotifyRequest(NotifyRequest{Host: d.Host, Namespaces: d.namespaces})
	d.notifyConn.Write(req, len(req), true)
}

// ---------- transaction serialization ----------

// enqueueTask runs fn when the device is idle, serializing transactions.
func (d *Device) enqueueTask(fn func()) {
	if d.busy {
		d.queue = append(d.queue, fn)
		return
	}
	d.busy = true
	fn()
}

func (d *Device) taskDone() {
	if len(d.queue) > 0 {
		next := d.queue[0]
		d.queue = d.queue[1:]
		next()
		return
	}
	d.busy = false
}

// ---------- upload path ----------

// Upload synchronizes new local content: refs are the file's chunks, wire
// maps a chunk size to its compressed transfer size. Batches of at most 100
// chunks run sequentially (Sec. 2.3.2).
func (d *Device) Upload(ns NamespaceID, refs []chunker.Ref, wireOf func(chunker.Ref) int, onDone func()) {
	if !d.online || len(refs) == 0 {
		if onDone != nil {
			onDone()
		}
		return
	}
	d.enqueueTask(func() {
		d.uploadBatches(ns, refs, wireOf, onDone)
	})
}

func (d *Device) uploadBatches(ns NamespaceID, refs []chunker.Ref, wireOf func(chunker.Ref) int, onDone func()) {
	if len(refs) == 0 || !d.online {
		d.taskDone()
		if onDone != nil {
			onDone()
		}
		return
	}
	n := len(refs)
	if n > MaxChunksPerBatch {
		n = MaxChunksPerBatch
	}
	batch := refs[:n]
	rest := refs[n:]
	d.uploadOneBatch(ns, batch, wireOf, func() {
		d.uploadBatches(ns, rest, wireOf, onDone)
	})
}

func (d *Device) uploadOneBatch(ns NamespaceID, batch []chunker.Ref, wireOf func(chunker.Ref) int, next func()) {
	start := d.Cfg.Sched.Now()
	d.controlCall(MsgCommitBatch{Host: d.Host, Namespace: ns, Refs: batch}, 1, func(resp any) {
		nb, _ := resp.(MsgNeedBlocks)
		missing := make(map[chunker.Hash]bool, len(nb.Missing))
		for _, h := range nb.Missing {
			missing[h] = true
		}
		var toSend []chunker.Ref
		skipped := 0
		for _, r := range batch {
			// Without dedup the need_blocks answer is ignored: every chunk
			// crosses the wire even when the server already has it.
			if !d.caps.Dedup || missing[r.Hash] {
				toSend = append(toSend, r)
			} else {
				skipped++
			}
		}
		stats := TransferStats{Kind: TransferStore, Skipped: skipped, Start: start}
		d.storeChunks(toSend, wireOf, &stats, func() {
			d.controlCall(MsgCloseChangeset{Host: d.Host, Namespace: ns, Refs: batch}, 1, func(resp any) {
				if done, ok := resp.(MsgCommitDone); ok {
					if done.Seq > d.cursors[ns] {
						d.cursors[ns] = done.Seq
					}
				}
				for _, r := range batch {
					d.have[r.Hash] = struct{}{}
				}
				stats.End = d.Cfg.Sched.Now()
				if d.OnTransferDone != nil {
					d.OnTransferDone(stats)
				}
				next()
			})
		})
	})
}

// nextStoreOp groups the head of refs into the next store operation per
// the capability profile: one chunk per operation without bundling; with
// bundling, small chunks pack up to the bundle target and a large chunk
// ends its bundle.
func (d *Device) nextStoreOp(refs []chunker.Ref, wireOf func(chunker.Ref) int) (op any, opWire, consumed int) {
	if d.caps.Bundling {
		target := d.caps.BundleTarget()
		var bundle []chunker.Ref
		total := 0
		for _, r := range refs {
			w := wireOf(r)
			if len(bundle) > 0 && (total+w > target) {
				break
			}
			bundle = append(bundle, r)
			total += w
			consumed++
			if w >= target/4 {
				break // big chunks end a bundle
			}
		}
		if len(bundle) == 1 {
			op = MsgStore{Ref: bundle[0], WireSize: total}
		} else {
			op = MsgStoreBatch{Refs: append([]chunker.Ref(nil), bundle...), WireSize: total}
		}
		return op, StoreClientOverhead + total, consumed
	}
	r := refs[0]
	w := wireOf(r)
	return MsgStore{Ref: r, WireSize: w}, StoreClientOverhead + w, 1
}

// storeChunks issues store operations sequentially: one per chunk for
// 1.2.52-style profiles, bundled when the profile enables it. Each
// operation waits for the previous OK — the per-chunk acknowledgment
// bottleneck of Sec. 4.4.2 — unless the profile pipelines commits.
func (d *Device) storeChunks(refs []chunker.Ref, wireOf func(chunker.Ref) int, stats *TransferStats, next func()) {
	if len(refs) == 0 {
		next()
		return
	}
	if d.caps.CommitPipelining {
		d.storeChunksPipelined(refs, wireOf, stats, next)
		return
	}
	op, opWire, consumed := d.nextStoreOp(refs, wireOf)
	stats.Ops++
	stats.Chunks += consumed
	for _, r := range refs[:consumed] {
		stats.WireBytes += wireOf(r)
	}
	d.storageCall(true, op, opWire, 1, func(any) {
		rest := refs[consumed:]
		if len(rest) == 0 {
			next()
			return
		}
		// Client reaction time between chunks.
		d.Cfg.Sched.After(d.reaction(), func() {
			d.storeChunks(rest, wireOf, stats, next)
		})
	})
}

// storeChunksPipelined issues every store operation without waiting for
// acknowledgments: operations go out back to back (client reaction time
// between issues, modelling hashing/compression), responses drain
// asynchronously, and the transaction completes when the last OK arrives.
func (d *Device) storeChunksPipelined(refs []chunker.Ref, wireOf func(chunker.Ref) int, stats *TransferStats, next func()) {
	type pendOp struct {
		op   any
		wire int
	}
	var ops []pendOp
	for len(refs) > 0 {
		op, opWire, consumed := d.nextStoreOp(refs, wireOf)
		stats.Ops++
		stats.Chunks += consumed
		for _, r := range refs[:consumed] {
			stats.WireBytes += wireOf(r)
		}
		ops = append(ops, pendOp{op, opWire})
		refs = refs[consumed:]
	}
	outstanding := len(ops)
	onAck := func(any) {
		outstanding--
		if outstanding == 0 {
			next()
		}
	}
	var issue func(i int)
	issue = func(i int) {
		d.storageCall(true, ops[i].op, ops[i].wire, 1, onAck)
		if i+1 < len(ops) {
			d.Cfg.Sched.After(d.reaction(), func() { issue(i + 1) })
		}
	}
	issue(0)
}

// ---------- download path ----------

// syncNow lists all namespaces and retrieves missing chunks.
func (d *Device) syncNow() {
	if !d.online {
		return
	}
	d.enqueueTask(func() {
		cursors := make(map[NamespaceID]uint64, len(d.namespaces))
		for _, ns := range d.namespaces {
			cursors[ns] = d.cursors[ns]
		}
		d.controlCall(MsgList{Host: d.Host, Cursors: cursors}, 1, func(resp any) {
			lr, _ := resp.(MsgListResp)
			if len(lr.StorageNames) > 0 {
				d.storageNames = lr.StorageNames
			}
			var want []chunker.Ref
			wireHints := make(map[chunker.Hash]int)
			for ns, entries := range lr.Updates {
				for _, e := range entries {
					if e.Seq > d.cursors[ns] {
						d.cursors[ns] = e.Seq
					}
					totalSize := 0
					for _, r := range e.Refs {
						totalSize += r.Size
					}
					for _, r := range e.Refs {
						if _, ok := d.have[r.Hash]; ok {
							continue
						}
						if d.lanFetch(r.Hash) {
							continue
						}
						want = append(want, r)
						if totalSize > 0 && e.WireHint > 0 {
							wireHints[r.Hash] = int(e.WireHint * float64(r.Size) / float64(totalSize))
						}
					}
				}
			}
			if len(want) == 0 {
				d.taskDone()
				return
			}
			stats := TransferStats{Kind: TransferRetrieve, Start: d.Cfg.Sched.Now()}
			d.retrieveChunks(want, &stats, func() {
				stats.End = d.Cfg.Sched.Now()
				if d.OnTransferDone != nil {
					d.OnTransferDone(stats)
				}
				d.taskDone()
			})
		})
	})
}

// lanFetch pulls a chunk from a same-LAN peer if one has it; that traffic
// never crosses the probe.
func (d *Device) lanFetch(h chunker.Hash) bool {
	for _, p := range d.LANPeers {
		if p != d && p.Has(h) {
			d.have[h] = struct{}{}
			return true
		}
	}
	return false
}

// nextRetrieveOp groups the head of refs into the next retrieve operation
// per the capability profile; reqExtra is the request-size growth of a
// multi-hash batch request.
func (d *Device) nextRetrieveOp(refs []chunker.Ref) (op any, reqExtra, consumed int) {
	if d.caps.Bundling {
		target := d.caps.BundleTarget()
		n := 0
		total := 0
		for _, r := range refs {
			if n > 0 && total+r.Size > target {
				break
			}
			n++
			total += r.Size
			if r.Size >= target/4 {
				break
			}
		}
		if n == 1 {
			return MsgRetrieve{Hash: refs[0].Hash}, 0, 1
		}
		hashes := make([]chunker.Hash, n)
		for i := 0; i < n; i++ {
			hashes[i] = refs[i].Hash
		}
		return MsgRetrieveBatch{Hashes: hashes}, 32 * (n - 1), n
	}
	return MsgRetrieve{Hash: refs[0].Hash}, 0, 1
}

// retrieveChunks fetches chunks sequentially; 1.2.52-style profiles send
// one retrieve per chunk as two PSH-marked writes (Fig. 19b), bundling
// profiles batch, and pipelining profiles issue every request up front.
func (d *Device) retrieveChunks(refs []chunker.Ref, stats *TransferStats, next func()) {
	if len(refs) == 0 {
		next()
		return
	}
	if d.caps.CommitPipelining {
		d.retrieveChunksPipelined(refs, stats, next)
		return
	}
	reqSize := RetrieveClientOverheadMin + d.rng.Intn(RetrieveClientOverheadMax-RetrieveClientOverheadMin)
	op, reqExtra, consumed := d.nextRetrieveOp(refs)
	reqSize += reqExtra
	stats.Ops++
	d.storageCall(false, op, reqSize, 2, func(resp any) {
		data, _ := resp.(MsgRetrieveData)
		for _, r := range data.Refs {
			d.have[r.Hash] = struct{}{}
		}
		stats.Chunks += len(data.Refs)
		stats.WireBytes += data.WireSize
		rest := refs[consumed:]
		if len(rest) == 0 {
			next()
			return
		}
		d.Cfg.Sched.After(d.reaction(), func() {
			d.retrieveChunks(rest, stats, next)
		})
	})
}

// retrieveChunksPipelined issues every retrieve request without waiting
// for responses; chunk data is credited as each response arrives (response
// payloads identify their chunks, so ordering does not matter).
func (d *Device) retrieveChunksPipelined(refs []chunker.Ref, stats *TransferStats, next func()) {
	type pendOp struct {
		op  any
		req int
	}
	var ops []pendOp
	for len(refs) > 0 {
		reqSize := RetrieveClientOverheadMin + d.rng.Intn(RetrieveClientOverheadMax-RetrieveClientOverheadMin)
		op, reqExtra, consumed := d.nextRetrieveOp(refs)
		stats.Ops++
		ops = append(ops, pendOp{op, reqSize + reqExtra})
		refs = refs[consumed:]
	}
	outstanding := len(ops)
	onData := func(resp any) {
		data, _ := resp.(MsgRetrieveData)
		for _, r := range data.Refs {
			d.have[r.Hash] = struct{}{}
		}
		stats.Chunks += len(data.Refs)
		stats.WireBytes += data.WireSize
		outstanding--
		if outstanding == 0 {
			next()
		}
	}
	var issue func(i int)
	issue = func(i int) {
		d.storageCall(false, ops[i].op, ops[i].req, 2, onData)
		if i+1 < len(ops) {
			d.Cfg.Sched.After(d.reaction(), func() { issue(i + 1) })
		}
	}
	issue(0)
}

// ---------- RPC connections ----------

// rpcCall is one serialized request awaiting its response.
type rpcCall struct {
	meta    any
	size    int
	parts   int
	done    func(resp any)
	retries int
}

// pipelineDepth bounds in-flight operations on a pipelined storage
// connection — deep enough that the window never stalls a transaction.
const pipelineDepth = 64

// rpcConn is a TLS connection carrying request/response exchanges. With
// maxInflight <= 1 (the historical clients) requests serialize: each waits
// for the previous response. Pipelining profiles raise maxInflight so
// several requests ride the connection at once; responses pop the pending
// queue FIFO.
type rpcConn struct {
	dev         *Device
	sess        *tlssim.Session
	established bool
	closed      bool
	pending     []*rpcCall
	sendQueue   []*rpcCall
	maxInflight int
	kind        string
}

// controlCall issues a meta-data request, transparently (re)opening the
// control connection.
func (d *Device) controlCall(meta any, parts int, done func(any)) {
	if d.control == nil || d.control.closed {
		d.control = d.dialRPC("control")
	}
	if d.control == nil {
		if done != nil {
			done(MsgOK{})
		}
		return
	}
	d.control.issue(&rpcCall{meta: meta, size: ControlMsgSize(meta), parts: parts, done: done})
}

// storageCall issues a storage operation on the store or retrieve
// connection (kept separate so parallel directions use parallel flows).
func (d *Device) storageCall(isStore bool, meta any, size, parts int, done func(any)) {
	slot := &d.retrieve
	kind := "retrieve"
	if isStore {
		slot = &d.store
		kind = "store"
	}
	if *slot == nil || (*slot).closed {
		*slot = d.dialRPC(kind)
	}
	if *slot == nil {
		if done != nil {
			done(MsgOK{})
		}
		return
	}
	(*slot).issue(&rpcCall{meta: meta, size: size, parts: parts, done: done})
}

// dialRPC opens a TLS connection to the right server for the kind.
func (d *Device) dialRPC(kind string) *rpcConn {
	var name string
	switch kind {
	case "control":
		// client-lb load balancer name (Sec. 2.3.2).
		name = "client-lb.dropbox.com"
	default:
		name = d.nextStorageName()
	}
	ip, ok := d.Cfg.Resolver.Resolve(d.Cfg.Sched.Now(), d.Cfg.Stack.Host.IP, name)
	if !ok {
		return nil
	}
	conn := d.Cfg.Stack.Dial(ip, 443)
	sess := tlssim.NewClient(conn, name, d.Cfg.Handshake)
	d.Cfg.Service.RegisterPending(conn.LocalEndpoint(), sess)
	rc := &rpcConn{dev: d, sess: sess, kind: kind}
	if kind != "control" && d.caps.CommitPipelining {
		rc.maxInflight = pipelineDepth
	}
	sess.OnEstablished = func() {
		rc.established = true
		rc.pump()
	}
	sess.OnMessage = func(meta any, size int) {
		if len(rc.pending) == 0 {
			return
		}
		call := rc.pending[0]
		rc.pending = rc.pending[1:]
		if call.done != nil {
			call.done(meta)
		}
		rc.pump()
	}
	fail := func() {
		rc.closed = true
		rc.retryPending()
	}
	sess.OnReset = fail
	sess.OnPeerAlert = func() {} // server idle close incoming
	sess.OnPeerClose = func() {
		// Fig. 19: client answers the server's alert+FIN with a RST.
		rc.closed = true
		sess.Abort()
		rc.retryPending()
	}
	return rc
}

// nextStorageName rotates through the alias list received from the control
// plane (Sec. 2.4).
func (d *Device) nextStorageName() string {
	if len(d.storageNames) == 0 {
		// Before the first list response, fall back to a random alias.
		names := d.Cfg.Service.cfg.Dir.StorageNames
		return names[d.rng.Intn(len(names))]
	}
	name := d.storageNames[d.nameIdx%len(d.storageNames)]
	d.nameIdx++
	return name
}

func (rc *rpcConn) issue(call *rpcCall) {
	rc.sendQueue = append(rc.sendQueue, call)
	rc.pump()
}

func (rc *rpcConn) pump() {
	limit := rc.maxInflight
	if limit < 1 {
		limit = 1
	}
	for rc.established && !rc.closed && len(rc.pending) < limit && len(rc.sendQueue) > 0 {
		call := rc.sendQueue[0]
		rc.sendQueue = rc.sendQueue[1:]
		rc.pending = append(rc.pending, call)
		rc.sess.SendParts(call.meta, call.size, call.parts)
	}
}

// retryPending re-dials and reissues interrupted calls (bounded retries).
func (rc *rpcConn) retryPending() {
	d := rc.dev
	calls := rc.sendQueue
	rc.sendQueue = nil
	if len(rc.pending) > 0 {
		calls = append(append([]*rpcCall(nil), rc.pending...), calls...)
		rc.pending = nil
	}
	if !d.online || len(calls) == 0 {
		for _, c := range calls {
			if c.done != nil {
				c.done(MsgOK{})
			}
		}
		return
	}
	var live []*rpcCall
	for _, c := range calls {
		c.retries++
		if c.retries <= 3 {
			live = append(live, c)
		} else if c.done != nil {
			c.done(MsgOK{})
		}
	}
	if len(live) == 0 {
		return
	}
	next := d.dialRPC(rc.kind)
	if next == nil {
		for _, c := range live {
			if c.done != nil {
				c.done(MsgOK{})
			}
		}
		return
	}
	switch rc.kind {
	case "control":
		d.control = next
	case "store":
		d.store = next
	case "retrieve":
		d.retrieve = next
	}
	for _, c := range live {
		next.issue(c)
	}
}

func (rc *rpcConn) shutdown() {
	if rc.closed {
		return
	}
	rc.closed = true
	rc.sess.Abort()
}

// DialStorageRaw exposes a raw storage dial for experiments that drive
// flows directly (Fig. 9 stratified sampling).
func (d *Device) DialStorageRaw() (*tlssim.Session, wire.IP, string) {
	name := d.nextStorageName()
	ip, ok := d.Cfg.Resolver.Resolve(d.Cfg.Sched.Now(), d.Cfg.Stack.Host.IP, name)
	if !ok {
		return nil, 0, ""
	}
	conn := d.Cfg.Stack.Dial(ip, 443)
	sess := tlssim.NewClient(conn, name, d.Cfg.Handshake)
	d.Cfg.Service.RegisterPending(conn.LocalEndpoint(), sess)
	return sess, ip, name
}
