package dropbox

import (
	"time"

	"insidedropbox/internal/chunker"
	"insidedropbox/internal/dnssim"
	"insidedropbox/internal/netem"
	"insidedropbox/internal/simrand"
	"insidedropbox/internal/simtime"
	"insidedropbox/internal/tcpsim"
	"insidedropbox/internal/tlssim"
	"insidedropbox/internal/wire"
)

// ServiceConfig wires a Service into a simulation.
type ServiceConfig struct {
	Sched *simtime.Scheduler
	Net   *netem.Network
	Rng   *simrand.Source
	Dir   *dnssim.Directory

	// ServerTCP configures the server stacks. The initial window is the
	// knob the paper saw tuned with the 1.4.0 deployment (Appendix A.4).
	ServerTCP tcpsim.Config

	// ReactionMedian is the median server processing time per storage
	// operation ("server reaction time", Sec. 4.4.2). Zero uses the
	// default of 45 ms.
	ReactionMedian time.Duration

	// ControlIdleTimeout closes idle meta-data connections; the paper
	// observed "aggressive TCP connection timeout handling" producing many
	// short TLS connections. Zero uses 15 s.
	ControlIdleTimeout time.Duration

	// StorageNamesPerClient is how many dl-clientX aliases the control
	// plane hands to each client in list responses.
	StorageNamesPerClient int
}

// Service is the whole Dropbox-plus-Amazon backend: every server host from
// the DNS directory, listening and serving.
type Service struct {
	cfg  ServiceConfig
	Meta *Metastore
	rng  *simrand.Source

	// pairing connects the two tlssim endpoints of an in-flight dial.
	pairing map[wire.Endpoint]*tlssim.Session

	// wireSize remembers the compressed transfer size of stored chunks so
	// retrieves send the same byte counts.
	wireSize map[chunker.Hash]int

	notify *notifyState

	// nameCursor rotates which slice of storage names each list response
	// advertises.
	nameCursor int

	// Counters (ground truth for validating probe inferences).
	StoreOps, RetrieveOps int
	BatchOps              int

	// Trace, when set, receives every protocol message the servers handle
	// or send — the equivalent of the paper's decrypting-proxy testbed
	// (Sec. 2.2). The first argument is "recv" or "send"; server names the
	// subsystem ("control" or "storage").
	Trace func(dir, server string, meta any)
}

// NewService builds all server hosts and listeners.
func NewService(cfg ServiceConfig) *Service {
	if cfg.ReactionMedian == 0 {
		cfg.ReactionMedian = 45 * time.Millisecond
	}
	if cfg.ControlIdleTimeout == 0 {
		cfg.ControlIdleTimeout = 15 * time.Second
	}
	if cfg.StorageNamesPerClient == 0 {
		cfg.StorageNamesPerClient = 40
	}
	s := &Service{
		cfg:      cfg,
		Meta:     NewMetastore(),
		rng:      cfg.Rng.Fork("service"),
		pairing:  make(map[wire.Endpoint]*tlssim.Session),
		wireSize: make(map[chunker.Hash]int),
	}
	s.notify = newNotifyState(s)
	s.Meta.OnJournalAdvance = s.notify.journalAdvanced

	for _, name := range cfg.Dir.MetaNames {
		for _, ip := range cfg.Dir.Pool(name) {
			s.ensureHost(ip, dnssim.DropboxDC, s.acceptControl, 443)
		}
	}
	for _, name := range cfg.Dir.NotifyNames {
		for _, ip := range cfg.Dir.Pool(name) {
			s.ensureNotifyHost(ip)
		}
	}
	for _, name := range cfg.Dir.StorageNames {
		for _, ip := range cfg.Dir.Pool(name) {
			s.ensureHost(ip, dnssim.AmazonDC, s.acceptStorage, 443)
		}
	}
	// Remaining Amazon/Dropbox names (web, api, logs) are served by simple
	// storage-style endpoints; the workload model generates their traffic
	// at flow level, but the hosts exist so packet-level tests can reach
	// them.
	for _, name := range []string{"www.dropbox.com", "api.dropbox.com", "d.dropbox.com",
		"dl.dropbox.com", "dl-web.dropbox.com", "api-content.dropbox.com", "dl-debug1.dropbox.com"} {
		for _, ip := range cfg.Dir.Pool(name) {
			s.ensureHost(ip, cfg.Dir.DataCenter(ip), s.acceptStorage, 443)
		}
	}
	return s
}

func (s *Service) ensureHost(ip wire.IP, site string, accept func(*tcpsim.Conn), port uint16) {
	if s.cfg.Net.Host(ip) != nil {
		return
	}
	h := s.cfg.Net.AddHost(ip, netem.SiteID(site), storageAccess())
	st := tcpsim.NewStack(h, s.cfg.Sched, s.rng, s.cfg.ServerTCP)
	st.Listen(port, accept)
}

func (s *Service) ensureNotifyHost(ip wire.IP) {
	if s.cfg.Net.Host(ip) != nil {
		return
	}
	h := s.cfg.Net.AddHost(ip, netem.SiteID(dnssim.DropboxDC), netem.DataCenter())
	st := tcpsim.NewStack(h, s.cfg.Sched, s.rng, s.cfg.ServerTCP)
	st.Listen(80, s.notify.accept)
}

// storageAccess rate-limits each storage front-end to ~10 Mbit/s per
// server in both directions, matching the ceiling the paper observed ("the
// highest observed throughput, close to 10 Mbits/s", Sec. 4.4).
func storageAccess() netem.AccessProfile {
	return netem.AccessProfile{UpRate: 1.25e6, DownRate: 1.25e6, Delay: 100 * time.Microsecond}
}

// SeedChunk pre-populates the storage back-end with a chunk and its
// compressed transfer size — used by experiment labs to stage content for
// retrieve-side measurements without a full upload pass.
func (s *Service) SeedChunk(ref chunker.Ref, wireSize int) {
	s.Meta.StoreChunk(ref)
	s.wireSize[ref.Hash] = wireSize
}

// RegisterPending is called by clients right after dialing: it lets the
// accepting server pair the TLS side channels.
func (s *Service) RegisterPending(local wire.Endpoint, sess *tlssim.Session) {
	s.pairing[local] = sess
}

func (s *Service) pairServer(conn *tcpsim.Conn, server *tlssim.Session) bool {
	client, ok := s.pairing[conn.RemoteEndpoint()]
	if !ok {
		return false
	}
	delete(s.pairing, conn.RemoteEndpoint())
	tlssim.Pair(client, server)
	return true
}

// reaction samples a server processing delay.
func (s *Service) reaction() time.Duration {
	med := float64(s.cfg.ReactionMedian)
	return time.Duration(s.rng.LogNormalMedian(med, 0.5))
}

// ---------- control servers ----------

func (s *Service) acceptControl(conn *tcpsim.Conn) {
	sess := tlssim.NewServer(conn, "*.dropbox.com", tlssim.DefaultHandshake())
	if !s.pairServer(conn, sess) {
		conn.Abort()
		return
	}
	var idle simtime.EventID
	resetIdle := func() {
		idle.Cancel()
		idle = s.cfg.Sched.After(s.cfg.ControlIdleTimeout, func() {
			sess.CloseNotify()
		})
	}
	resetIdle()
	sess.OnMessage = func(meta any, size int) {
		resetIdle()
		delay := s.reaction()
		s.cfg.Sched.After(delay, func() {
			s.handleControl(sess, meta)
			resetIdle()
		})
	}
	sess.OnClosed = func() { idle.Cancel() }
	sess.OnReset = func() { idle.Cancel() }
}

func (s *Service) trace(dir, server string, meta any) {
	if s.Trace != nil {
		s.Trace(dir, server, meta)
	}
}

func (s *Service) handleControl(sess *tlssim.Session, meta any) {
	s.trace("recv", "control", meta)
	switch m := meta.(type) {
	case MsgRegisterHost:
		reply(sess, MsgRegisterOK{})
	case MsgList:
		resp := MsgListResp{Updates: make(map[NamespaceID][]JournalEntry)}
		for ns, cursor := range m.Cursors {
			if upd := s.Meta.UpdatesSince(ns, cursor); len(upd) > 0 {
				resp.Updates[ns] = upd
			}
		}
		resp.StorageNames = s.storageNameSlice()
		reply(sess, resp)
	case MsgCommitBatch:
		missing := s.Meta.NeedBlocks(m.Refs)
		reply(sess, MsgNeedBlocks{Missing: missing})
	case MsgCloseChangeset:
		var wireTotal float64
		for _, r := range m.Refs {
			if w, ok := s.wireSize[r.Hash]; ok {
				wireTotal += float64(w)
			} else {
				wireTotal += float64(r.Size)
			}
		}
		// Committing with a path derived from the host keeps journal
		// entries distinct without a full file-tree model.
		seq, err := s.Meta.Commit(m.Namespace, commitPath(m.Host), m.Refs, wireTotal)
		if err != nil {
			reply(sess, MsgOK{}) // commit of unknown namespace: tolerate
			return
		}
		reply(sess, MsgCommitDone{Seq: seq})
	default:
		reply(sess, MsgOK{})
	}
}

// MsgCommitDone acknowledges close_changeset with the committed sequence so
// the uploader can advance its cursor past its own entry. (Simplification:
// concurrent commits by other devices between a client's list and commit
// are picked up by the next notification cycle.)
type MsgCommitDone struct{ Seq uint64 }

func commitPath(h HostID) string {
	return "f" + string(rune('a'+int(h%26))) + "/upload"
}

func (s *Service) storageNameSlice() []string {
	names := s.cfg.Dir.StorageNames
	k := s.cfg.StorageNamesPerClient
	if k > len(names) {
		k = len(names)
	}
	out := make([]string, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, names[(s.nameCursor+i)%len(names)])
	}
	s.nameCursor = (s.nameCursor + k) % len(names)
	return out
}

func reply(sess *tlssim.Session, m any) {
	sess.Send(m, ControlMsgSize(m))
}

// ---------- storage servers ----------

func (s *Service) acceptStorage(conn *tcpsim.Conn) {
	sess := tlssim.NewServer(conn, "*.dropbox.com", tlssim.DefaultHandshake())
	if !s.pairServer(conn, sess) {
		conn.Abort()
		return
	}
	var idle simtime.EventID
	closed := false
	resetIdle := func() {
		idle.Cancel()
		idle = s.cfg.Sched.After(StorageIdleTimeout, func() {
			// Fig. 19: the server closes an idle storage connection with an
			// SSL alert followed by FIN.
			sess.CloseNotify()
		})
	}
	resetIdle()
	// Any inbound bytes count as activity: a 60 s timer must not sever a
	// slow upload in progress, only truly idle connections. Rearming is
	// throttled to once per second to keep scheduler churn low.
	var lastArm simtime.Time
	sess.OnActivity = func() {
		if closed {
			return
		}
		if now := s.cfg.Sched.Now(); now.Sub(lastArm) >= time.Second {
			lastArm = now
			resetIdle()
		}
	}
	sess.OnMessage = func(meta any, size int) {
		if closed {
			return
		}
		idle.Cancel()
		delay := s.reaction()
		s.cfg.Sched.After(delay, func() {
			if closed {
				return
			}
			s.handleStorage(sess, meta)
			resetIdle()
		})
	}
	sess.OnClosed = func() { closed = true; idle.Cancel() }
	sess.OnReset = func() { closed = true; idle.Cancel() }
}

func (s *Service) handleStorage(sess *tlssim.Session, meta any) {
	s.trace("recv", "storage", meta)
	switch m := meta.(type) {
	case MsgStore:
		s.StoreOps++
		s.Meta.StoreChunk(m.Ref)
		s.wireSize[m.Ref.Hash] = m.WireSize
		sess.Send(MsgStoreOK{}, ServerOpOverhead)
	case MsgStoreBatch:
		s.StoreOps++
		s.BatchOps++
		perChunk := 0
		if len(m.Refs) > 0 {
			perChunk = m.WireSize / len(m.Refs)
		}
		for _, r := range m.Refs {
			s.Meta.StoreChunk(r)
			s.wireSize[r.Hash] = perChunk
		}
		sess.Send(MsgStoreOK{}, ServerOpOverhead)
	case MsgRetrieve:
		s.RetrieveOps++
		size := s.Meta.ChunkSize(m.Hash)
		w, ok := s.wireSize[m.Hash]
		if !ok {
			w = size
		}
		ref := chunker.Ref{Hash: m.Hash, Size: size}
		sess.Send(MsgRetrieveData{Refs: []chunker.Ref{ref}, WireSize: w},
			ServerOpOverhead+w)
	case MsgRetrieveBatch:
		s.RetrieveOps++
		s.BatchOps++
		total := 0
		refs := make([]chunker.Ref, 0, len(m.Hashes))
		for _, h := range m.Hashes {
			size := s.Meta.ChunkSize(h)
			w, ok := s.wireSize[h]
			if !ok {
				w = size
			}
			total += w
			refs = append(refs, chunker.Ref{Hash: h, Size: size})
		}
		sess.Send(MsgRetrieveData{Refs: refs, WireSize: total}, ServerOpOverhead+total)
	}
}
