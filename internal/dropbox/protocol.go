// Package dropbox implements the 2012 Dropbox client/server protocol as
// dissected by the paper (Sec. 2): the meta-data control protocol
// (register_host, list, commit_batch, need_blocks, close_changeset), the
// per-chunk storage protocol with sequential acknowledgments, the v1.4.0
// batched variants (store_batch/retrieve_batch), and the cleartext
// notification long-polling protocol.
//
// The package contains both sides: the service (control, notification and
// Amazon-style storage servers) and the client sync engine, all running over
// tcpsim/tlssim so that every protocol byte appears on the simulated wire
// with the sizes the paper measured (Appendix A).
//
// The client data plane is parameterized by a capability.Profile (bundling
// and its batch target, deduplication, commit pipelining): the historical
// Version constants resolve to the two Dropbox presets via
// Version.Profile, and what-if experiments substitute arbitrary profiles
// through ClientConfig.Caps without touching the protocol code.
package dropbox

import (
	"time"

	"insidedropbox/internal/capability"
	"insidedropbox/internal/chunker"
)

// Version selects the client protocol generation the paper compares in
// Table 4. It survives as the calibrated shorthand for the two clients the
// paper observed; the data plane itself runs on capability.Profile, and
// Version resolves to one of the two Dropbox presets via Profile.
type Version int

// Protocol versions under study.
const (
	// V1252 is client 1.2.52 (Mar/Apr dataset): one chunk per store or
	// retrieve operation, sequentially acknowledged.
	V1252 Version = iota
	// V140 is client 1.4.0 (Jun/Jul dataset): store_batch/retrieve_batch
	// bundle small chunks into single operations.
	V140
)

func (v Version) String() string {
	if v == V140 {
		return "1.4.0"
	}
	return "1.2.52"
}

// Profile resolves the legacy version switch to its capability profile.
// The presets reproduce the historical Version-based behaviour bit for bit
// (pinned by regression tests in workload and flowmodel).
func (v Version) Profile() capability.Profile {
	if v == V140 {
		return capability.DropboxV140()
	}
	return capability.DropboxV1252()
}

// Protocol size constants measured by the authors (Appendix A.2/A.3).
const (
	// StoreClientOverhead is the minimum request framing a client spends
	// per store operation.
	StoreClientOverhead = 634
	// RetrieveClientOverheadMin/Max bound the per-retrieve request size;
	// typical requests fall in 362..426 bytes.
	RetrieveClientOverheadMin = 362
	RetrieveClientOverheadMax = 426
	// ServerOpOverhead is the server-side response framing per operation
	// (the HTTP OK of Fig. 19).
	ServerOpOverhead = 309
	// MaxChunksPerBatch caps chunks per transaction; larger synchronizations
	// split into several batches (Sec. 2.3.2).
	MaxChunksPerBatch = 100
	// MaxBatchBytes is the cap a batch can reach: 100 chunks of 4 MB.
	MaxBatchBytes = MaxChunksPerBatch * chunker.MaxChunkSize
	// StorageIdleTimeout closes an idle storage connection (Fig. 19).
	StorageIdleTimeout = 60 * time.Second
	// NotifyPollPeriod is the long-poll response delay with no changes.
	NotifyPollPeriod = 60 * time.Second
	// BundleTargetBytes is how much v1.4.0 packs into one store_batch —
	// the capability layer's default bundle target, re-exported so the
	// protocol constants read as one set.
	BundleTargetBytes = capability.DefaultBundleTarget
)

// HostID is the device identifier (host_int) carried in notification
// requests.
type HostID uint64

// NamespaceID identifies a synchronized folder; every account has a root
// namespace and one extra namespace per shared folder (Sec. 2.3.1).
type NamespaceID uint32

// ---- control-plane messages (ride the TLS side channel; wire sizes are
// what the probe observes) ----

// MsgRegisterHost announces a device to the control plane.
type MsgRegisterHost struct {
	Host       HostID
	Namespaces []NamespaceID
}

// MsgRegisterOK acknowledges registration.
type MsgRegisterOK struct{}

// MsgList asks for journal updates past the client's cursor.
type MsgList struct {
	Host    HostID
	Cursors map[NamespaceID]uint64
}

// MsgListResp returns per-namespace journal deltas plus the rotating list
// of storage server names handed to clients (Sec. 2.4).
type MsgListResp struct {
	Updates      map[NamespaceID][]JournalEntry
	StorageNames []string
}

// MsgCommitBatch submits meta-data for a batch of chunks about to be stored.
type MsgCommitBatch struct {
	Host      HostID
	Namespace NamespaceID
	Refs      []chunker.Ref
}

// MsgNeedBlocks lists the chunks the server does not already have
// (deduplication, Sec. 2.1); only these must be uploaded.
type MsgNeedBlocks struct {
	Missing []chunker.Hash
}

// MsgCloseChangeset commits a transaction after its chunks are stored.
type MsgCloseChangeset struct {
	Host      HostID
	Namespace NamespaceID
	Refs      []chunker.Ref
}

// MsgOK is the generic acknowledgment.
type MsgOK struct{}

// ---- storage messages ----

// MsgStore uploads one chunk (v1.2.52: one per operation).
type MsgStore struct {
	Ref      chunker.Ref
	WireSize int // compressed bytes actually sent
}

// MsgStoreOK acknowledges one store operation.
type MsgStoreOK struct{}

// MsgStoreBatch uploads several chunks in one operation (v1.4.0).
type MsgStoreBatch struct {
	Refs     []chunker.Ref
	WireSize int
}

// MsgRetrieve requests one chunk.
type MsgRetrieve struct {
	Hash chunker.Hash
}

// MsgRetrieveBatch requests several chunks in one operation (v1.4.0).
type MsgRetrieveBatch struct {
	Hashes []chunker.Hash
}

// MsgRetrieveData carries chunk content back.
type MsgRetrieveData struct {
	Refs     []chunker.Ref
	WireSize int
}

// ---- notification messages (cleartext HTTP long-poll) ----

// NotifyRequest is serialized in cleartext so the probe can read device and
// namespace identifiers (Sec. 2.3.1). See EncodeNotifyRequest.
type NotifyRequest struct {
	Host       HostID
	Namespaces []NamespaceID
}

// NotifyResponse ends a long poll; Changed lists namespaces with news.
type NotifyResponse struct {
	Changed []NamespaceID
}

// JournalEntry is one committed meta-data mutation in a namespace journal.
type JournalEntry struct {
	Seq  uint64
	Path string
	Refs []chunker.Ref
	// WireHint preserves the compressed transfer size for synthetic
	// content so downloaders retrieve the same byte counts uploaders sent.
	WireHint float64
}

// ControlMsgSize returns the on-the-wire plaintext size of a control
// message, approximating the JSON-ish encodings of the real protocol. The
// constants keep control flows small (Fig. 4: control volume is negligible)
// while scaling with content (hash lists).
func ControlMsgSize(m any) int {
	const hashLen = 32
	switch t := m.(type) {
	case MsgRegisterHost:
		return 180 + 8*len(t.Namespaces)
	case MsgRegisterOK:
		return 120
	case MsgList:
		return 160 + 16*len(t.Cursors)
	case MsgListResp:
		n := 200 + 24*len(t.StorageNames)
		for _, entries := range t.Updates {
			for _, e := range entries {
				n += 90 + len(e.Path) + hashLen*len(e.Refs)
			}
		}
		return n
	case MsgCommitBatch:
		return 220 + (hashLen+12)*len(t.Refs)
	case MsgNeedBlocks:
		return 140 + hashLen*len(t.Missing)
	case MsgCloseChangeset:
		return 200 + (hashLen+12)*len(t.Refs)
	case MsgOK:
		return 110
	default:
		return 150
	}
}
