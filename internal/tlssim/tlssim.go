// Package tlssim runs TLS-like sessions over tcpsim connections.
//
// The handshake reproduces the byte and round-trip costs the paper measured
// (Appendix A.2): clients contribute 294 bytes across two flights, servers
// 4103 bytes, and the server's first flight (hello + certificate + done,
// 4031 bytes) needs two congestion windows when the server's initial window
// is 2 segments — the extra round trip the authors observed before Dropbox
// tuned it with the 1.4.0 deployment.
//
// Handshake records are fully materialized on the wire, so a passive probe
// can extract the SNI and the certificate common name exactly as Tstat's DPI
// did. Application data is opaque: record framing is materialized, payload
// bodies are accounted by length only. Message *semantics* (which protocol
// command a record carries) travel on an in-process side channel between the
// two endpoints — the wire carries the same bytes either way, and the
// endpoints of a real TLS connection legitimately know the plaintext.
package tlssim

import (
	"fmt"

	"insidedropbox/internal/tcpsim"
	"insidedropbox/internal/wire"
)

// HandshakeConfig fixes the flight sizes (bytes on the wire, record framing
// included) so both endpoints agree on the handshake layout.
type HandshakeConfig struct {
	ClientHello  int // flight 1, client -> server
	ClientFinish int // flight 2 (key exchange + CCS + finished)
	ServerFlight int // hello + certificate + hello-done
	ServerFinish int // CCS + finished
}

// DefaultHandshake matches the paper's typical sizes: 294 bytes from
// clients, 4103 from servers.
func DefaultHandshake() HandshakeConfig {
	return HandshakeConfig{ClientHello: 139, ClientFinish: 155, ServerFlight: 4031, ServerFinish: 72}
}

// ClientBytes returns the client's total handshake contribution.
func (h HandshakeConfig) ClientBytes() int { return h.ClientHello + h.ClientFinish }

// ServerBytes returns the server's total handshake contribution.
func (h HandshakeConfig) ServerBytes() int { return h.ServerFlight + h.ServerFinish }

// maxRecordPayload is the application-data record payload limit.
const maxRecordPayload = 16384

// MessageWireSize returns the on-the-wire size of an application message of
// the given plaintext length: payload plus record headers.
func MessageWireSize(size int) int {
	if size <= 0 {
		return 0
	}
	records := (size + maxRecordPayload - 1) / maxRecordPayload
	return size + records*wire.RecordHeaderLen
}

// alertWireSize is the close-notify alert record size.
const alertWireSize = wire.RecordHeaderLen + 2

// sideMsg rides the in-process side channel, mirroring stream order.
type sideMsg struct {
	meta  any
	wire  int
	alert bool
}

// Session is one endpoint of a TLS connection.
type Session struct {
	Conn   *tcpsim.Conn
	cfg    HandshakeConfig
	client bool
	name   string // SNI (client) or certificate CN (server)

	// OnEstablished fires when the handshake completes at this endpoint.
	OnEstablished func()
	// OnMessage delivers a complete application message: the side-channel
	// metadata and the plaintext size.
	OnMessage func(meta any, size int)
	// OnPeerAlert fires when the peer's close-notify alert arrives.
	OnPeerAlert func()
	// OnPeerClose fires on TCP FIN from the peer.
	OnPeerClose func()
	// OnReset fires on TCP RST.
	OnReset func()
	// OnClosed fires when the connection is fully gone.
	OnClosed func()
	// OnActivity fires whenever bytes arrive (servers use it to keep idle
	// timers from killing slow in-progress transfers).
	OnActivity func()

	established bool
	hsGot       int // handshake bytes received in the current wait
	hsStage     int
	peer        *Session // side channel: set by the wiring helper

	inbox         []sideMsg // messages the peer has sent, in stream order
	rcvdBytes     int       // app-layer bytes received so far
	boundaryFloor int       // stream offset where inbox[0] starts
}

// NewClient starts the client side of a session on an established-or-dialing
// connection. sni is the requested server name.
func NewClient(conn *tcpsim.Conn, sni string, cfg HandshakeConfig) *Session {
	s := &Session{Conn: conn, cfg: cfg, client: true, name: sni}
	s.install()
	prev := conn.OnEstablished
	conn.OnEstablished = func() {
		if prev != nil {
			prev()
		}
		s.sendClientHello()
	}
	return s
}

// NewServer starts the server side on an accepted connection. certName is
// the certificate common name presented (e.g. "*.dropbox.com").
func NewServer(conn *tcpsim.Conn, certName string, cfg HandshakeConfig) *Session {
	s := &Session{Conn: conn, cfg: cfg, client: false, name: certName}
	s.install()
	return s
}

// Pair wires the side channels of the two endpoints of one simulated
// connection. The campaign/testbed layer calls this after accept; it stands
// in for the shared TLS key material.
func Pair(client, server *Session) {
	client.peer = server
	server.peer = client
}

func (s *Session) install() {
	s.Conn.OnRecv = s.onRecv
	s.Conn.OnPeerClose = func() {
		if s.OnPeerClose != nil {
			s.OnPeerClose()
		}
	}
	s.Conn.OnReset = func() {
		if s.OnReset != nil {
			s.OnReset()
		}
	}
	s.Conn.OnClosed = func() {
		if s.OnClosed != nil {
			s.OnClosed()
		}
	}
}

// Established reports whether the handshake completed.
func (s *Session) Established() bool { return s.established }

// ---------- handshake ----------

func (s *Session) sendClientHello() {
	rec := wire.BuildHandshake(wire.HandshakeClientHello, s.name, s.cfg.ClientHello)
	s.Conn.Write(rec, len(rec), true)
	s.hsStage = 1 // waiting for server flight
}

func (s *Session) sendClientFinish() {
	n := s.cfg.ClientFinish
	ccs := wire.ChangeCipherSpec()
	fin := wire.BuildHandshake(wire.HandshakeFinished, "", n-len(ccs))
	buf := append(append([]byte(nil), ccs...), fin...)
	s.Conn.Write(buf, len(buf), true)
	s.hsStage = 2 // waiting for server finish
}

func (s *Session) sendServerFlight() {
	hello := wire.BuildHandshake(wire.HandshakeServerHello, "", 87)
	done := wire.BuildHandshake(wire.HandshakeServerHelloDone, "", 44)
	certLen := s.cfg.ServerFlight - len(hello) - len(done)
	cert := wire.BuildHandshake(wire.HandshakeCertificate, s.name, certLen)
	buf := append(append(append([]byte(nil), hello...), cert...), done...)
	s.Conn.Write(buf, len(buf), true)
	s.hsStage = 1 // waiting for client finish
}

func (s *Session) sendServerFinish() {
	n := s.cfg.ServerFinish
	ccs := wire.ChangeCipherSpec()
	fin := wire.BuildHandshake(wire.HandshakeFinished, "", n-len(ccs))
	buf := append(append([]byte(nil), ccs...), fin...)
	s.Conn.Write(buf, len(buf), true)
	s.markEstablished()
}

func (s *Session) markEstablished() {
	s.established = true
	if s.OnEstablished != nil {
		s.OnEstablished()
	}
}

func (s *Session) onRecv(data []byte, size int, push bool) {
	if s.OnActivity != nil {
		s.OnActivity()
	}
	if s.established {
		s.onAppBytes(size)
		return
	}
	s.hsGot += size
	if s.client {
		switch s.hsStage {
		case 1: // expecting server flight
			if s.hsGot >= s.cfg.ServerFlight {
				s.hsGot -= s.cfg.ServerFlight
				s.sendClientFinish()
			}
		case 2: // expecting server finish
			if s.hsGot >= s.cfg.ServerFinish {
				extra := s.hsGot - s.cfg.ServerFinish
				s.hsGot = 0
				s.markEstablished()
				if extra > 0 {
					s.onAppBytes(extra)
				}
			}
		}
		return
	}
	// Server side.
	switch s.hsStage {
	case 0: // expecting client hello
		if s.hsGot >= s.cfg.ClientHello {
			s.hsGot -= s.cfg.ClientHello
			s.sendServerFlight()
		}
	case 1: // expecting client finish
		if s.hsGot >= s.cfg.ClientFinish {
			extra := s.hsGot - s.cfg.ClientFinish
			s.hsGot = 0
			s.sendServerFinish()
			if extra > 0 {
				s.onAppBytes(extra)
			}
		}
	}
}

// ---------- application data ----------

// Send transmits one application message of the given plaintext size with
// the metadata delivered to the peer's OnMessage. The final segment carries
// PSH, as a flushed application write.
func (s *Session) Send(meta any, size int) { s.SendParts(meta, size, 1) }

// SendParts transmits one logical message as parts consecutive writes (the
// client's retrieve requests appear as two PSH-marked segments on the wire,
// Fig. 19b). The peer still receives a single OnMessage.
func (s *Session) SendParts(meta any, size int, parts int) {
	if size <= 0 || parts <= 0 {
		panic(fmt.Sprintf("tlssim: bad message size=%d parts=%d", size, parts))
	}
	if parts > size {
		parts = size
	}
	total := MessageWireSize(size)
	if s.peer != nil {
		s.peer.enqueue(sideMsg{meta: meta, wire: total})
	}
	// Split the wire bytes across parts, each ending in PSH. Record headers
	// are materialized at the start of each part for DPI realism.
	base := total / parts
	rem := total % parts
	sent := 0
	for i := 0; i < parts; i++ {
		n := base
		if i == parts-1 {
			n += rem
		}
		if n == 0 {
			continue
		}
		var hdr []byte
		if sent == 0 {
			hdr = wire.AppendOpaque(nil, minInt(size, maxRecordPayload))
			if n < len(hdr) {
				hdr = hdr[:n]
			}
		}
		s.Conn.Write(hdr, n, true)
		sent += n
	}
}

func (s *Session) enqueue(m sideMsg) {
	s.inbox = append(s.inbox, m)
	s.drain()
}

func (s *Session) onAppBytes(n int) {
	s.rcvdBytes += n
	s.drain()
}

func (s *Session) drain() {
	for len(s.inbox) > 0 {
		head := s.inbox[0]
		end := s.boundaryFloor + head.wire
		if s.rcvdBytes < end {
			return
		}
		s.inbox = s.inbox[1:]
		s.boundaryFloor = end
		if head.alert {
			if s.OnPeerAlert != nil {
				s.OnPeerAlert()
			}
		} else if s.OnMessage != nil {
			s.OnMessage(head.meta, head.wire-wireOverhead(head.wire))
		}
	}
}

// wireOverhead back-computes record header bytes for a wire size.
func wireOverhead(wireSize int) int {
	// wireSize = size + 5*ceil(size/16384); invert by trying record counts.
	for records := 1; ; records++ {
		size := wireSize - records*wire.RecordHeaderLen
		if size <= 0 {
			return wireSize // degenerate; treat all as overhead
		}
		if (size+maxRecordPayload-1)/maxRecordPayload == records {
			return records * wire.RecordHeaderLen
		}
	}
}

// CloseNotify sends the close-notify alert and closes the connection
// gracefully (the server's end-of-flow behaviour in Fig. 19).
func (s *Session) CloseNotify() {
	if s.peer != nil {
		s.peer.enqueue(sideMsg{alert: true, wire: alertWireSize})
	}
	rec := wire.AlertClose()
	s.Conn.Write(rec, len(rec), true)
	s.Conn.Close()
}

// Abort resets the connection (the client's teardown in Fig. 19).
func (s *Session) Abort() { s.Conn.Abort() }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
