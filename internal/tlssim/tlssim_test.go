package tlssim

import (
	"testing"
	"testing/quick"
	"time"

	"insidedropbox/internal/netem"
	"insidedropbox/internal/simrand"
	"insidedropbox/internal/simtime"
	"insidedropbox/internal/tcpsim"
	"insidedropbox/internal/wire"
)

// byteTap counts payload bytes and PSH segments per direction and keeps the
// serialized first packets for DPI tests.
type byteTap struct {
	outBytes, inBytes int
	outPSH, inPSH     int
	outCaptured       []byte
	inCaptured        []byte
}

func (b *byteTap) Capture(now simtime.Time, f *wire.Frame, dir netem.TapDir) {
	if dir == netem.TapOutbound {
		b.outBytes += f.PayloadLen
		if f.TCP.Flags.Has(wire.FlagPSH) {
			b.outPSH++
		}
		if len(b.outCaptured) < 8192 {
			b.outCaptured = append(b.outCaptured, f.Payload...)
		}
	} else {
		b.inBytes += f.PayloadLen
		if f.TCP.Flags.Has(wire.FlagPSH) {
			b.inPSH++
		}
		if len(b.inCaptured) < 8192 {
			b.inCaptured = append(b.inCaptured, f.Payload...)
		}
	}
}

type world struct {
	sched          *simtime.Scheduler
	net            *netem.Network
	client, server *tcpsim.Stack
	tap            *byteTap
}

func newWorld(t testing.TB, serverIW int) *world {
	t.Helper()
	sched := simtime.NewScheduler()
	rng := simrand.New(99, "tlstest")
	n := netem.New(sched, rng)
	n.SetCoreDelay("vp", "dc", 45*time.Millisecond)
	ch := n.AddHost(wire.MakeIP(10, 0, 0, 1), "vp", netem.AccessProfile{})
	sh := n.AddHost(wire.MakeIP(184, 72, 0, 1), "dc", netem.AccessProfile{})
	tap := &byteTap{}
	n.AttachTap("vp", tap)
	scfg := tcpsim.DefaultConfig()
	scfg.InitialWindow = serverIW
	return &world{
		sched:  sched,
		net:    n,
		client: tcpsim.NewStack(ch, sched, rng, tcpsim.DefaultConfig()),
		server: tcpsim.NewStack(sh, sched, rng, scfg),
		tap:    tap,
	}
}

// dial sets up a client/server TLS pair on port 443 and returns both
// sessions. The server session is delivered via the returned channel-like
// pointer once accepted.
func dial(w *world) (cs *Session, ssp **Session) {
	var ss *Session
	ssp = &ss
	w.server.Listen(443, func(c *tcpsim.Conn) {
		ss = NewServer(c, "*.dropbox.com", DefaultHandshake())
		Pair(cs, ss)
	})
	conn := w.client.Dial(w.server.Host.IP, 443)
	cs = NewClient(conn, "dl-client3.dropbox.com", DefaultHandshake())
	return cs, ssp
}

func TestHandshakeCompletes(t *testing.T) {
	w := newWorld(t, 3)
	cs, ssp := dial(w)
	var clientUp, serverUp simtime.Time
	cs.OnEstablished = func() { clientUp = w.sched.Now() }
	w.sched.After(time.Millisecond, func() {}) // keep scheduler non-empty at t0
	w.sched.Run()
	if !cs.Established() || *ssp == nil || !(*ssp).Established() {
		t.Fatal("handshake incomplete")
	}
	serverUp = clientUp // client is last to establish
	_ = serverUp
	// IW=3: server flight fits in 3 segments; client established after
	// 3 RTTs (TCP + 2 TLS) ≈ 270 ms.
	if d := clientUp.Duration(); d < 270*time.Millisecond || d > 290*time.Millisecond {
		t.Fatalf("client established at %v, want ≈ 272 ms (3 RTTs)", d)
	}
}

func TestSmallServerIWAddsRTT(t *testing.T) {
	// IW=2: 4031-byte server flight needs two windows -> one extra RTT,
	// the pre-1.4.0 behaviour the paper describes in Appendix A.4.
	w := newWorld(t, 2)
	cs, _ := dial(w)
	var clientUp simtime.Time
	cs.OnEstablished = func() { clientUp = w.sched.Now() }
	w.sched.Run()
	if d := clientUp.Duration(); d < 360*time.Millisecond || d > 390*time.Millisecond {
		t.Fatalf("client established at %v, want ≈ 363 ms (4 RTTs)", d)
	}
}

func TestHandshakeByteBudget(t *testing.T) {
	w := newWorld(t, 3)
	cs, _ := dial(w)
	done := false
	cs.OnEstablished = func() { done = true }
	w.sched.Run()
	if !done {
		t.Fatal("no handshake")
	}
	hs := DefaultHandshake()
	if w.tap.outBytes != hs.ClientBytes() {
		t.Fatalf("client handshake bytes = %d, want %d", w.tap.outBytes, hs.ClientBytes())
	}
	if w.tap.inBytes != hs.ServerBytes() {
		t.Fatalf("server handshake bytes = %d, want %d", w.tap.inBytes, hs.ServerBytes())
	}
	if hs.ClientBytes() != 294 || hs.ServerBytes() != 4103 {
		t.Fatalf("defaults diverge from the paper: %d/%d", hs.ClientBytes(), hs.ServerBytes())
	}
}

func TestDPIExtraction(t *testing.T) {
	w := newWorld(t, 3)
	cs, _ := dial(w)
	cs.OnEstablished = func() {}
	w.sched.Run()
	sni, ok := wire.ExtractSNI(w.tap.outCaptured)
	if !ok || sni != "dl-client3.dropbox.com" {
		t.Fatalf("SNI = %q %v", sni, ok)
	}
	cn, ok := wire.ExtractCertName(w.tap.inCaptured)
	if !ok || cn != "*.dropbox.com" {
		t.Fatalf("cert = %q %v", cn, ok)
	}
}

func TestMessageExchange(t *testing.T) {
	w := newWorld(t, 3)
	cs, ssp := dial(w)
	type rec struct {
		meta any
		size int
	}
	var serverGot, clientGot []rec
	cs.OnMessage = func(meta any, size int) { clientGot = append(clientGot, rec{meta, size}) }
	cs.OnEstablished = func() {
		ss := *ssp
		ss.OnMessage = func(meta any, size int) {
			serverGot = append(serverGot, rec{meta, size})
			ss.Send("ok:"+meta.(string), 309)
		}
		cs.Send("store-1", 65000)
		cs.Send("store-2", 1200)
	}
	w.sched.Run()
	if len(serverGot) != 2 || len(clientGot) != 2 {
		t.Fatalf("messages: server %d, client %d", len(serverGot), len(clientGot))
	}
	if serverGot[0].meta != "store-1" || serverGot[0].size != 65000 {
		t.Fatalf("server msg0 = %+v", serverGot[0])
	}
	if serverGot[1].meta != "store-2" || serverGot[1].size != 1200 {
		t.Fatalf("server msg1 = %+v", serverGot[1])
	}
	if clientGot[0].meta != "ok:store-1" || clientGot[0].size != 309 {
		t.Fatalf("client msg0 = %+v", clientGot[0])
	}
}

func TestSendPartsPSHCount(t *testing.T) {
	w := newWorld(t, 3)
	cs, ssp := dial(w)
	got := 0
	cs.OnEstablished = func() {
		(*ssp).OnMessage = func(meta any, size int) { got = size }
		cs.SendParts("retrieve-req", 380, 2)
	}
	w.sched.Run()
	if got != 380 {
		t.Fatalf("message size = %d", got)
	}
	// Client PSH segments: hello, finish, and 2 for the two-part message.
	if w.tap.outPSH != 4 {
		t.Fatalf("client PSH segments = %d, want 4", w.tap.outPSH)
	}
}

func TestCloseNotifySequence(t *testing.T) {
	w := newWorld(t, 3)
	cs, ssp := dial(w)
	var events []string
	cs.OnPeerAlert = func() { events = append(events, "alert") }
	cs.OnPeerClose = func() {
		events = append(events, "fin")
		cs.Abort() // the client RST of Fig. 19
	}
	cs.OnEstablished = func() {
		ss := *ssp
		ss.OnReset = func() { events = append(events, "server-reset") }
		ss.CloseNotify()
	}
	w.sched.Run()
	if len(events) != 3 || events[0] != "alert" || events[1] != "fin" || events[2] != "server-reset" {
		t.Fatalf("teardown events = %v", events)
	}
}

func TestLargeMessageWireSize(t *testing.T) {
	w := newWorld(t, 3)
	cs, ssp := dial(w)
	const size = 1 << 20
	got := -1
	preBytes := 0
	cs.OnEstablished = func() {
		preBytes = w.tap.outBytes
		(*ssp).OnMessage = func(meta any, n int) { got = n }
		cs.Send("big", size)
	}
	w.sched.Run()
	if got != size {
		t.Fatalf("received %d, want %d", got, size)
	}
	sent := w.tap.outBytes - preBytes
	if sent != MessageWireSize(size) {
		t.Fatalf("wire bytes = %d, want %d", sent, MessageWireSize(size))
	}
}

func TestMessageWireSizeInverse(t *testing.T) {
	f := func(raw uint32) bool {
		size := int(raw%10_000_000) + 1
		w := MessageWireSize(size)
		return w-wireOverhead(w) == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMessageWireSizeEdges(t *testing.T) {
	if MessageWireSize(0) != 0 {
		t.Fatal("zero message should be free")
	}
	if MessageWireSize(1) != 6 {
		t.Fatalf("1-byte message = %d, want 6", MessageWireSize(1))
	}
	if MessageWireSize(16384) != 16389 {
		t.Fatalf("one full record = %d", MessageWireSize(16384))
	}
	if MessageWireSize(16385) != 16385+10 {
		t.Fatalf("two records = %d", MessageWireSize(16385))
	}
}

func BenchmarkHandshake(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := newWorld(b, 3)
		cs, _ := dial(w)
		cs.OnEstablished = func() {}
		w.sched.Run()
		if !cs.Established() {
			b.Fatal("handshake failed")
		}
	}
}
