// Package analysis provides the statistical machinery the experiments use
// to turn flow records into the paper's tables and figures: empirical CDFs,
// quantiles, time-binned series, log-spaced histograms, and text rendering
// (tables and ASCII plots) so every figure regenerates in a terminal.
package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// ECDF is an empirical cumulative distribution over float64 samples.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts the samples.
func NewECDF(samples []float64) *ECDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// N returns the sample count.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-quantile (q in [0,1]).
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	pos := q * float64(len(e.sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(e.sorted) {
		return e.sorted[lo]
	}
	return e.sorted[lo]*(1-frac) + e.sorted[lo+1]*frac
}

// Median returns the 0.5 quantile.
func (e *ECDF) Median() float64 { return e.Quantile(0.5) }

// Min and Max return the extremes.
func (e *ECDF) Min() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return e.sorted[0]
}

// Max returns the largest sample.
func (e *ECDF) Max() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return e.sorted[len(e.sorted)-1]
}

// Mean returns the arithmetic mean of samples.
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// Median returns the middle sample.
func Median(samples []float64) float64 { return NewECDF(samples).Median() }

// Sum totals the samples.
func Sum(samples []float64) float64 {
	s := 0.0
	for _, v := range samples {
		s += v
	}
	return s
}

// TimeBins accumulates values into fixed-width bins over a horizon,
// e.g. bytes per day or session starts per hour.
type TimeBins struct {
	Width time.Duration
	bins  []float64
}

// NewTimeBins covers [0, horizon) with bins of the given width.
func NewTimeBins(horizon, width time.Duration) *TimeBins {
	n := int((horizon + width - 1) / width)
	if n < 1 {
		n = 1
	}
	return &TimeBins{Width: width, bins: make([]float64, n)}
}

// Add accumulates v into the bin containing t (out-of-range is dropped).
func (b *TimeBins) Add(t time.Duration, v float64) {
	i := int(t / b.Width)
	if i < 0 || i >= len(b.bins) {
		return
	}
	b.bins[i] += v
}

// Values returns the bin totals.
func (b *TimeBins) Values() []float64 { return b.bins }

// Bin returns the total of bin i.
func (b *TimeBins) Bin(i int) float64 {
	if i < 0 || i >= len(b.bins) {
		return 0
	}
	return b.bins[i]
}

// Len returns the number of bins.
func (b *TimeBins) Len() int { return len(b.bins) }

// HourOfDayProfile folds a series of timestamped values into 24 hourly
// fractions (the shape of Fig. 15): weekdaysOnly drops Saturday/Sunday
// (day 0 = Monday).
type HourOfDayProfile struct {
	totals [24]float64
	sum    float64
}

// Add accumulates v at offset t from the campaign start.
func (h *HourOfDayProfile) Add(t time.Duration, v float64, weekdaysOnly bool) {
	if weekdaysOnly {
		day := int(t/(24*time.Hour)) % 7
		if day >= 5 {
			return
		}
	}
	hr := int(t/time.Hour) % 24
	h.totals[hr] += v
	h.sum += v
}

// Fractions returns the 24 per-hour shares (summing to 1 when non-empty).
func (h *HourOfDayProfile) Fractions() [24]float64 {
	out := h.totals
	if h.sum > 0 {
		for i := range out {
			out[i] /= h.sum
		}
	}
	return out
}

// LogBins spaces bin edges logarithmically between lo and hi — the x-axis
// slotting used by Fig. 10 ("slots of equal sizes in logarithmic scale").
type LogBins struct {
	Lo, Hi float64
	N      int
}

// Index returns the bin for v, or -1 outside [Lo, Hi].
func (l LogBins) Index(v float64) int {
	if v < l.Lo || v > l.Hi || l.Lo <= 0 {
		return -1
	}
	f := math.Log(v/l.Lo) / math.Log(l.Hi/l.Lo)
	i := int(f * float64(l.N))
	if i >= l.N {
		i = l.N - 1
	}
	return i
}

// Center returns the geometric center of bin i.
func (l LogBins) Center(i int) float64 {
	f0 := float64(i) / float64(l.N)
	f1 := float64(i+1) / float64(l.N)
	lo := l.Lo * math.Pow(l.Hi/l.Lo, f0)
	hi := l.Lo * math.Pow(l.Hi/l.Lo, f1)
	return math.Sqrt(lo * hi)
}

// Counter tallies discrete values (devices per household, namespaces per
// device).
type Counter struct {
	counts map[int]int
	total  int
}

// NewCounter returns an empty tally.
func NewCounter() *Counter { return &Counter{counts: make(map[int]int)} }

// Add increments the tally for v.
func (c *Counter) Add(v int) { c.counts[v]++; c.total++ }

// Fraction returns the share of samples equal to v.
func (c *Counter) Fraction(v int) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.counts[v]) / float64(c.total)
}

// FractionAtLeast returns the share of samples >= v.
func (c *Counter) FractionAtLeast(v int) float64 {
	if c.total == 0 {
		return 0
	}
	n := 0
	for k, cnt := range c.counts {
		if k >= v {
			n += cnt
		}
	}
	return float64(n) / float64(c.total)
}

// Total returns the sample count.
func (c *Counter) Total() int { return c.total }

// Table renders aligned text tables for the terminal and EXPERIMENTS.md.
type Table struct {
	Title  string
	Header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v != 0 && math.Abs(v) < 0.01:
		return fmt.Sprintf("%.2e", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// HumanBytes formats byte counts the way the paper's axes do.
func HumanBytes(v float64) string {
	switch {
	case v >= 1e12:
		return fmt.Sprintf("%.2fTB", v/1e12)
	case v >= 1e9:
		return fmt.Sprintf("%.2fGB", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fMB", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fkB", v/1e3)
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}

// HumanRate formats bits-per-second rates.
func HumanRate(bitsPerSec float64) string {
	switch {
	case bitsPerSec >= 1e9:
		return fmt.Sprintf("%.2fGbit/s", bitsPerSec/1e9)
	case bitsPerSec >= 1e6:
		return fmt.Sprintf("%.2fMbit/s", bitsPerSec/1e6)
	case bitsPerSec >= 1e3:
		return fmt.Sprintf("%.2fkbit/s", bitsPerSec/1e3)
	default:
		return fmt.Sprintf("%.0fbit/s", bitsPerSec)
	}
}
