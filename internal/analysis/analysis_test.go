package analysis

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4, 5})
	if e.N() != 5 {
		t.Fatalf("n = %d", e.N())
	}
	if got := e.At(3); got != 0.6 {
		t.Fatalf("At(3) = %f", got)
	}
	if got := e.At(0.5); got != 0 {
		t.Fatalf("At(0.5) = %f", got)
	}
	if got := e.At(10); got != 1 {
		t.Fatalf("At(10) = %f", got)
	}
	if e.Median() != 3 {
		t.Fatalf("median = %f", e.Median())
	}
	if e.Min() != 1 || e.Max() != 5 {
		t.Fatalf("range = %f..%f", e.Min(), e.Max())
	}
}

func TestECDFQuantileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
		}
		e := NewECDF(raw)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := e.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.At(1) != 0 {
		t.Fatal("empty At should be 0")
	}
	if !math.IsNaN(e.Median()) {
		t.Fatal("empty median should be NaN")
	}
}

func TestMeanMedianSum(t *testing.T) {
	s := []float64{2, 4, 9}
	if Mean(s) != 5 {
		t.Fatalf("mean = %f", Mean(s))
	}
	if Median(s) != 4 {
		t.Fatalf("median = %f", Median(s))
	}
	if Sum(s) != 15 {
		t.Fatalf("sum = %f", Sum(s))
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean should be NaN")
	}
}

func TestTimeBins(t *testing.T) {
	b := NewTimeBins(24*time.Hour, time.Hour)
	if b.Len() != 24 {
		t.Fatalf("bins = %d", b.Len())
	}
	b.Add(30*time.Minute, 5)
	b.Add(90*time.Minute, 7)
	b.Add(25*time.Hour, 100) // out of range, dropped
	if b.Bin(0) != 5 || b.Bin(1) != 7 {
		t.Fatalf("bins = %v", b.Values()[:2])
	}
	if Sum(b.Values()) != 12 {
		t.Fatalf("total = %f", Sum(b.Values()))
	}
	if b.Bin(-1) != 0 || b.Bin(99) != 0 {
		t.Fatal("out-of-range Bin should be 0")
	}
}

func TestHourOfDayProfile(t *testing.T) {
	var h HourOfDayProfile
	h.Add(10*time.Hour, 1, false)                // Monday 10:00
	h.Add(24*time.Hour+10*time.Hour, 1, false)   // Tuesday 10:00
	h.Add(5*24*time.Hour+10*time.Hour, 10, true) // Saturday, weekdays-only: dropped
	f := h.Fractions()
	if f[10] != 1.0 {
		t.Fatalf("hour 10 share = %f", f[10])
	}
}

func TestLogBins(t *testing.T) {
	l := LogBins{Lo: 1000, Hi: 1e9, N: 20}
	if l.Index(999) != -1 {
		t.Fatal("below range should be -1")
	}
	if l.Index(1000) != 0 {
		t.Fatalf("Index(lo) = %d", l.Index(1000))
	}
	if l.Index(1e9) != 19 {
		t.Fatalf("Index(hi) = %d", l.Index(1e9))
	}
	// Centers are monotonically increasing.
	prev := 0.0
	for i := 0; i < l.N; i++ {
		c := l.Center(i)
		if c <= prev {
			t.Fatalf("center %d = %f not increasing", i, c)
		}
		if l.Index(c) != i {
			t.Fatalf("center of bin %d maps to %d", i, l.Index(c))
		}
		prev = c
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	for _, v := range []int{1, 1, 1, 2, 3, 5} {
		c.Add(v)
	}
	if c.Fraction(1) != 0.5 {
		t.Fatalf("fraction(1) = %f", c.Fraction(1))
	}
	if got := c.FractionAtLeast(2); got != 0.5 {
		t.Fatalf("fractionAtLeast(2) = %f", got)
	}
	if c.Total() != 6 {
		t.Fatalf("total = %d", c.Total())
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X: demo", "name", "flows", "volume")
	tb.AddRow("campus1", 167189, 146.0)
	tb.AddRow("home1", 1438369, 1153.0)
	out := tb.String()
	if !strings.Contains(out, "Table X: demo") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "campus1") || !strings.Contains(out, "1438369") {
		t.Fatalf("missing rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestHumanFormats(t *testing.T) {
	if HumanBytes(1536) != "1.54kB" {
		t.Fatalf("kB = %q", HumanBytes(1536))
	}
	if HumanBytes(2.5e9) != "2.50GB" {
		t.Fatalf("GB = %q", HumanBytes(2.5e9))
	}
	if HumanBytes(12) != "12B" {
		t.Fatalf("B = %q", HumanBytes(12))
	}
	if HumanRate(530e3) != "530.00kbit/s" {
		t.Fatalf("rate = %q", HumanRate(530e3))
	}
}

func TestPlotCDF(t *testing.T) {
	p := NewPlot("Fig X: demo CDF", "bytes", "CDF")
	p.LogX = true
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = float64(i+1) * 100
	}
	p.AddECDF("campus1", NewECDF(samples))
	out := p.String()
	if !strings.Contains(out, "Fig X: demo CDF") || !strings.Contains(out, "*=campus1") {
		t.Fatalf("plot missing pieces:\n%s", out)
	}
	if len(strings.Split(out, "\n")) < 20 {
		t.Fatal("plot too short")
	}
}

func TestPlotScatterLogLog(t *testing.T) {
	p := NewPlot("scatter", "x", "y")
	p.LogX, p.LogY = true, true
	p.AddSeries("a", []float64{1e3, 1e6, 1e9}, []float64{1e2, 1e5, 1e7})
	p.AddSeries("b", []float64{1e4}, []float64{1e3})
	out := p.String()
	if !strings.Contains(out, "+=b") {
		t.Fatalf("second marker missing:\n%s", out)
	}
	// Zero/negative points must not panic on log axes.
	p.AddSeries("c", []float64{0, -5}, []float64{1, 1})
	_ = p.String()
}

func TestPlotForcedBounds(t *testing.T) {
	p := NewPlot("bounded", "x", "y")
	p.SetBounds(0, 10, 0, 1)
	p.AddSeries("s", []float64{5, 50}, []float64{0.5, 0.5}) // 50 is clipped
	out := p.String()
	if !strings.Contains(out, "10") {
		t.Fatalf("bounds not used:\n%s", out)
	}
}

func TestQuantileSummary(t *testing.T) {
	s := QuantileSummary("demo", []float64{1, 2, 3})
	if !strings.Contains(s, "median=2") {
		t.Fatalf("summary = %q", s)
	}
	if !strings.Contains(QuantileSummary("empty", nil), "no samples") {
		t.Fatal("empty summary wrong")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("keys = %v", keys)
	}
}

func BenchmarkECDFAt(b *testing.B) {
	samples := make([]float64, 100000)
	for i := range samples {
		samples[i] = float64(i % 1000)
	}
	e := NewECDF(samples)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.At(float64(i % 1000))
	}
}
