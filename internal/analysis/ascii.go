package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Plot renders multi-series charts as ASCII, standing in for the paper's
// gnuplot figures. X and Y axes can be linear or logarithmic.
type Plot struct {
	Title        string
	XLabel       string
	YLabel       string
	Width        int
	Height       int
	LogX, LogY   bool
	series       []plotSeries
	xMin, xMax   float64
	yMin, yMax   float64
	hasRange     bool
	forcedBounds bool
}

type plotSeries struct {
	name   string
	marker byte
	xs, ys []float64
}

// markers assigned to series in order.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// NewPlot creates an 72x20 plot canvas.
func NewPlot(title, xlabel, ylabel string) *Plot {
	return &Plot{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 72, Height: 20}
}

// SetBounds fixes the axis ranges instead of auto-scaling.
func (p *Plot) SetBounds(xMin, xMax, yMin, yMax float64) {
	p.xMin, p.xMax, p.yMin, p.yMax = xMin, xMax, yMin, yMax
	p.forcedBounds = true
}

// AddSeries appends a named point set.
func (p *Plot) AddSeries(name string, xs, ys []float64) {
	m := markers[len(p.series)%len(markers)]
	p.series = append(p.series, plotSeries{name: name, marker: m, xs: xs, ys: ys})
	if p.forcedBounds {
		return
	}
	for i := range xs {
		x, y := xs[i], ys[i]
		if p.LogX && x <= 0 || p.LogY && y <= 0 {
			continue
		}
		if !p.hasRange {
			p.xMin, p.xMax, p.yMin, p.yMax = x, x, y, y
			p.hasRange = true
			continue
		}
		p.xMin = math.Min(p.xMin, x)
		p.xMax = math.Max(p.xMax, x)
		p.yMin = math.Min(p.yMin, y)
		p.yMax = math.Max(p.yMax, y)
	}
}

// AddECDF samples an ECDF into a series (the standard CDF figure style).
func (p *Plot) AddECDF(name string, e *ECDF) {
	if e.N() == 0 {
		return
	}
	const points = 120
	xs := make([]float64, 0, points)
	ys := make([]float64, 0, points)
	lo, hi := e.Min(), e.Max()
	if p.LogX {
		if lo <= 0 {
			lo = math.SmallestNonzeroFloat64
		}
		for i := 0; i <= points; i++ {
			x := lo * math.Pow(hi/lo, float64(i)/points)
			xs = append(xs, x)
			ys = append(ys, e.At(x))
		}
	} else {
		for i := 0; i <= points; i++ {
			x := lo + (hi-lo)*float64(i)/points
			xs = append(xs, x)
			ys = append(ys, e.At(x))
		}
	}
	p.AddSeries(name, xs, ys)
}

func (p *Plot) scaleX(x float64) (int, bool) {
	if p.LogX {
		if x <= 0 || p.xMin <= 0 {
			return 0, false
		}
		f := math.Log(x/p.xMin) / math.Log(p.xMax/p.xMin)
		return int(f * float64(p.Width-1)), f >= 0 && f <= 1
	}
	if p.xMax == p.xMin {
		return 0, x == p.xMin
	}
	f := (x - p.xMin) / (p.xMax - p.xMin)
	return int(f * float64(p.Width-1)), f >= 0 && f <= 1
}

func (p *Plot) scaleY(y float64) (int, bool) {
	if p.LogY {
		if y <= 0 || p.yMin <= 0 {
			return 0, false
		}
		f := math.Log(y/p.yMin) / math.Log(p.yMax/p.yMin)
		return int(f * float64(p.Height-1)), f >= 0 && f <= 1
	}
	if p.yMax == p.yMin {
		return 0, y == p.yMin
	}
	f := (y - p.yMin) / (p.yMax - p.yMin)
	return int(f * float64(p.Height-1)), f >= 0 && f <= 1
}

// String renders the canvas.
func (p *Plot) String() string {
	grid := make([][]byte, p.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", p.Width))
	}
	for _, s := range p.series {
		for i := range s.xs {
			cx, okx := p.scaleX(s.xs[i])
			cy, oky := p.scaleY(s.ys[i])
			if !okx || !oky {
				continue
			}
			row := p.Height - 1 - cy
			if row >= 0 && row < p.Height && cx >= 0 && cx < p.Width {
				grid[row][cx] = s.marker
			}
		}
	}
	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	var legend []string
	for _, s := range p.series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.marker, s.name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "  [%s]\n", strings.Join(legend, "  "))
	}
	yTop := formatAxis(p.yMax)
	yBot := formatAxis(p.yMin)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", pad)
		if i == 0 {
			label = fmt.Sprintf("%*s", pad, yTop)
		}
		if i == p.Height-1 {
			label = fmt.Sprintf("%*s", pad, yBot)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", pad), strings.Repeat("-", p.Width))
	left := formatAxis(p.xMin)
	right := formatAxis(p.xMax)
	gap := p.Width - len(left) - len(right)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", pad), left, strings.Repeat(" ", gap), right)
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s, y: %s\n", strings.Repeat(" ", pad), p.XLabel, p.YLabel)
	}
	return b.String()
}

func formatAxis(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e9 || av < 1e-3:
		return fmt.Sprintf("%.1e", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// QuantileSummary renders a compact distribution summary line.
func QuantileSummary(name string, samples []float64) string {
	if len(samples) == 0 {
		return fmt.Sprintf("%s: no samples", name)
	}
	e := NewECDF(samples)
	return fmt.Sprintf("%s: n=%d min=%.3g p25=%.3g median=%.3g p75=%.3g p95=%.3g max=%.3g mean=%.3g",
		name, e.N(), e.Min(), e.Quantile(0.25), e.Median(), e.Quantile(0.75),
		e.Quantile(0.95), e.Max(), Mean(samples))
}

// SortedKeys returns map keys in sorted order (stable table rendering).
func SortedKeys[K ~string, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
