package chunker

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func TestSplitJoinRoundTrip(t *testing.T) {
	data := SyntheticFile{Seed: 7, Size: 3*MaxChunkSize + 12345}.Generate()
	chunks := Split(data)
	if len(chunks) != 4 {
		t.Fatalf("chunks = %d, want 4", len(chunks))
	}
	for i, c := range chunks[:3] {
		if c.Size != MaxChunkSize {
			t.Fatalf("chunk %d size = %d", i, c.Size)
		}
	}
	if chunks[3].Size != 12345 {
		t.Fatalf("tail chunk = %d", chunks[3].Size)
	}
	if !bytes.Equal(Join(chunks), data) {
		t.Fatal("join != original")
	}
}

func TestSplitEmpty(t *testing.T) {
	if Split(nil) != nil {
		t.Fatal("empty split should be nil")
	}
}

func TestHashStability(t *testing.T) {
	a := HashBytes([]byte("hello"))
	b := HashBytes([]byte("hello"))
	c := HashBytes([]byte("hellp"))
	if a != b {
		t.Fatal("same content, different hash")
	}
	if a == c {
		t.Fatal("different content, same hash")
	}
	if len(a.Short()) != 8 {
		t.Fatalf("short form %q", a.Short())
	}
}

func TestDedupAcrossIdenticalContent(t *testing.T) {
	d1 := SyntheticFile{Seed: 1, Size: MaxChunkSize * 2}.Generate()
	d2 := SyntheticFile{Seed: 1, Size: MaxChunkSize * 2}.Generate()
	c1, c2 := Split(d1), Split(d2)
	for i := range c1 {
		if c1[i].Hash != c2[i].Hash {
			t.Fatal("identical files should share chunk hashes")
		}
	}
}

func TestSyntheticRefs(t *testing.T) {
	f := SyntheticFile{Seed: 42, Size: 2*MaxChunkSize + 100}
	refs := f.Refs()
	if len(refs) != 3 {
		t.Fatalf("refs = %d", len(refs))
	}
	if refs[0].Size != MaxChunkSize || refs[2].Size != 100 {
		t.Fatalf("sizes = %d,%d", refs[0].Size, refs[2].Size)
	}
	// Same seed+size: identical hashes (synthetic dedup).
	again := SyntheticFile{Seed: 42, Size: 2*MaxChunkSize + 100}.Refs()
	for i := range refs {
		if refs[i] != again[i] {
			t.Fatal("synthetic refs not deterministic")
		}
	}
	// Different seed: different hashes.
	other := SyntheticFile{Seed: 43, Size: 2*MaxChunkSize + 100}.Refs()
	if refs[0].Hash == other[0].Hash {
		t.Fatal("different seeds should not collide")
	}
}

func TestSyntheticRefsExactMultiple(t *testing.T) {
	refs := SyntheticFile{Seed: 1, Size: 2 * MaxChunkSize}.Refs()
	if len(refs) != 2 || refs[1].Size != MaxChunkSize {
		t.Fatalf("refs = %+v", refs)
	}
	if (SyntheticFile{}).Refs() != nil {
		t.Fatal("zero-size file should have no refs")
	}
}

func TestSyntheticRefsProperty(t *testing.T) {
	f := func(seed uint64, sz uint32) bool {
		size := int64(sz%50_000_000) + 1
		refs := SyntheticFile{Seed: seed, Size: size}.Refs()
		total := int64(0)
		for _, r := range refs {
			if r.Size <= 0 || r.Size > MaxChunkSize {
				return false
			}
			total += int64(r.Size)
		}
		return total == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWireSize(t *testing.T) {
	f := SyntheticFile{CompressRatio: 0.5}
	if got := f.WireSize(1000); got != 500 {
		t.Fatalf("wire size = %d", got)
	}
	f.CompressRatio = 0 // unset -> incompressible
	if got := f.WireSize(1000); got != 1000 {
		t.Fatalf("wire size = %d", got)
	}
	f.CompressRatio = 0.0001
	if got := f.WireSize(10); got < 1 {
		t.Fatalf("wire size must be positive, got %d", got)
	}
}

func TestFlateSizeCompresses(t *testing.T) {
	zeros := make([]byte, 100000)
	if got := FlateSize(zeros); got >= 1000 {
		t.Fatalf("zeros compressed to %d", got)
	}
	random := SyntheticFile{Seed: 9, Size: 100000}.Generate()
	if got := FlateSize(random); got < 90000 {
		t.Fatalf("random data compressed to %d — too compressible", got)
	}
}

func TestReaderMatchesGenerate(t *testing.T) {
	f := SyntheticFile{Seed: 5, Size: 10000}
	direct := f.Generate()
	streamed, err := io.ReadAll(f.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct, streamed) {
		t.Fatal("reader and generate disagree")
	}
}

func TestSyntheticRefsDistinctWithinFile(t *testing.T) {
	// Regression: the old i<<20|size hash encoding overlapped the index
	// with full-chunk sizes (4 MB sets bit 22), so chunks 0 and 4 of a
	// 24 MB file shared a hash and spuriously deduplicated.
	for _, limit := range []int{MaxChunkSize, 16 << 20} {
		f := SyntheticFile{Seed: 3, Size: 40 * int64(MaxChunkSize)}
		seen := map[Hash]int{}
		for i, r := range f.RefsLimit(limit) {
			if prev, dup := seen[r.Hash]; dup {
				t.Fatalf("limit %d: chunks %d and %d collide", limit, prev, i)
			}
			seen[r.Hash] = i
		}
	}
}

func TestRefsLimitCustomBoundary(t *testing.T) {
	f := SyntheticFile{Seed: 9, Size: 40 << 20} // 40 MB
	refs := f.RefsLimit(16 << 20)
	if len(refs) != 3 || refs[0].Size != 16<<20 || refs[2].Size != 8<<20 {
		t.Fatalf("16MB chunking of 40MB = %d refs, sizes %v %v %v",
			len(refs), refs[0].Size, refs[1].Size, refs[2].Size)
	}
	// The default limit path is RefsLimit at MaxChunkSize.
	a, b := f.Refs(), f.RefsLimit(0)
	if len(a) != 10 || len(b) != 10 || a[0].Hash != b[0].Hash {
		t.Fatalf("default chunking mismatch: %d vs %d refs", len(a), len(b))
	}
}

func BenchmarkSplit4MB(b *testing.B) {
	data := SyntheticFile{Seed: 1, Size: MaxChunkSize}.Generate()
	b.SetBytes(MaxChunkSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Split(data)
	}
}

func BenchmarkSyntheticRefs(b *testing.B) {
	f := SyntheticFile{Seed: 1, Size: 100 * MaxChunkSize}
	for i := 0; i < b.N; i++ {
		_ = f.Refs()
	}
}

// TestChunkSpanMatchesRefsLimit pins the allocation-free chunk layout to
// the ref-materializing implementation, size for size.
func TestChunkSpanMatchesRefsLimit(t *testing.T) {
	sizes := []int64{0, 1, 100, MaxChunkSize - 1, MaxChunkSize, MaxChunkSize + 1,
		3 * MaxChunkSize, 3*MaxChunkSize + 7, 2e9}
	limits := []int{0, 1 << 10, MaxChunkSize, 16 << 20}
	for _, size := range sizes {
		for _, limit := range limits {
			refs := (SyntheticFile{Seed: 1, Size: size}).RefsLimit(limit)
			n, last := ChunkSpanLimit(size, limit)
			if n != len(refs) {
				t.Fatalf("size %d limit %d: n=%d, refs=%d", size, limit, n, len(refs))
			}
			eff := limit
			if eff <= 0 {
				eff = MaxChunkSize
			}
			for i, r := range refs {
				want := eff
				if i == n-1 {
					want = last
				}
				if r.Size != want {
					t.Fatalf("size %d limit %d chunk %d: span size %d, ref size %d",
						size, limit, i, want, r.Size)
				}
			}
		}
	}
}
