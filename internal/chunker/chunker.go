// Package chunker implements the Dropbox data model of Sec. 2.1: files are
// split into chunks of at most 4 MB, each chunk identified by its SHA-256
// hash, and chunks are compressed before transmission.
//
// Two representations coexist:
//
//   - Real content ([]byte) is split and hashed exactly — used by the
//     testbed, the delta encoder and the data-plane tests.
//   - SyntheticFile describes population-scale content by (seed, size):
//     chunk hashes are derived deterministically from the seed so that two
//     synthetic files with the same seed deduplicate against each other just
//     as identical real files would, without materializing gigabytes.
package chunker

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"io"
)

// MaxChunkSize is the Dropbox chunk limit: 4 MB.
const MaxChunkSize = 4 << 20

// Hash is a SHA-256 chunk identifier.
type Hash [sha256.Size]byte

// Short returns the first 8 hex digits, for logs.
func (h Hash) Short() string {
	const hex = "0123456789abcdef"
	out := make([]byte, 8)
	for i := 0; i < 4; i++ {
		out[2*i] = hex[h[i]>>4]
		out[2*i+1] = hex[h[i]&0xf]
	}
	return string(out)
}

// Ref describes one chunk without its content.
type Ref struct {
	Hash Hash
	Size int
}

// Chunk is a content-carrying chunk.
type Chunk struct {
	Ref
	Data []byte
}

// HashBytes returns the chunk id of data.
func HashBytes(data []byte) Hash { return sha256.Sum256(data) }

// Split divides real content into chunks of at most MaxChunkSize.
func Split(data []byte) []Chunk {
	if len(data) == 0 {
		return nil
	}
	out := make([]Chunk, 0, (len(data)+MaxChunkSize-1)/MaxChunkSize)
	for off := 0; off < len(data); off += MaxChunkSize {
		end := off + MaxChunkSize
		if end > len(data) {
			end = len(data)
		}
		c := data[off:end]
		out = append(out, Chunk{Ref: Ref{Hash: HashBytes(c), Size: len(c)}, Data: c})
	}
	return out
}

// Join reassembles chunks into the original content.
func Join(chunks []Chunk) []byte {
	total := 0
	for _, c := range chunks {
		total += len(c.Data)
	}
	out := make([]byte, 0, total)
	for _, c := range chunks {
		out = append(out, c.Data...)
	}
	return out
}

// FlateSize returns the DEFLATE-compressed size of data, the "compresses
// chunks before submitting them" step for real content.
func FlateSize(data []byte) int {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		panic(err) // only fires on an invalid level constant
	}
	if _, err := w.Write(data); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	w.Close()
	return buf.Len()
}

// SyntheticFile stands for file content at population scale. Seed selects
// the content identity: equal (Seed, Size) means byte-identical content.
// CompressRatio in (0,1] scales chunk sizes to their on-the-wire compressed
// size, standing in for running DEFLATE over content we never materialize.
type SyntheticFile struct {
	Seed          uint64
	Size          int64
	CompressRatio float64
}

// Refs returns the chunk references of the synthetic file at the standard
// 4 MB chunk limit. Hashes derive from (seed, index, chunk size) so
// identical files collide chunk-wise and different files essentially never
// do.
func (f SyntheticFile) Refs() []Ref { return f.RefsLimit(MaxChunkSize) }

// RefsLimit chunks the synthetic file at a custom chunk size limit — the
// hook capability profiles use to explore chunk sizes the real client never
// shipped. limit <= 0 falls back to MaxChunkSize. The hash derivation is
// identical to Refs, so equal (seed, index, size) triples deduplicate
// across limits just as equal content would.
func (f SyntheticFile) RefsLimit(limit int) []Ref {
	if f.Size <= 0 {
		return nil
	}
	if limit <= 0 {
		limit = MaxChunkSize
	}
	n := int((f.Size + int64(limit) - 1) / int64(limit))
	out := make([]Ref, n)
	var buf [25]byte
	copy(buf[16:], "synth")
	for i := 0; i < n; i++ {
		size := limit
		if i == n-1 {
			if rem := int(f.Size % int64(limit)); rem != 0 {
				size = rem
			}
		}
		binary.BigEndian.PutUint64(buf[0:8], f.Seed)
		// Index in the high word, size in the low: the fields must not
		// overlap, or distinct full-size chunks of one file collide (a
		// 4 MB size sets bit 22, which an i<<20 encoding also used —
		// chunks 0 and 4 of a 24 MB file used to share a hash).
		binary.BigEndian.PutUint64(buf[8:16], uint64(i)<<32|uint64(size))
		out[i] = Ref{Hash: sha256.Sum256(buf[:]), Size: size}
	}
	return out
}

// ChunkSpanLimit returns the chunk layout of a file of the given byte size
// at a chunk size limit without materializing refs or hashes: n chunks, of
// which the first n-1 are exactly limit bytes and the last is last bytes.
// This is the flow-level fast path's view of RefsLimit — chunk sizes only,
// no SHA-256 — and it matches RefsLimit chunk for chunk (pinned by
// TestChunkSpanMatchesRefsLimit). limit <= 0 falls back to MaxChunkSize.
func ChunkSpanLimit(size int64, limit int) (n, last int) {
	if size <= 0 {
		return 0, 0
	}
	if limit <= 0 {
		limit = MaxChunkSize
	}
	n = int((size + int64(limit) - 1) / int64(limit))
	last = limit
	if rem := int(size % int64(limit)); rem != 0 {
		last = rem
	}
	return n, last
}

// WireSize returns the compressed transfer size of a chunk of the file.
func (f SyntheticFile) WireSize(chunkSize int) int {
	r := f.CompressRatio
	if r <= 0 || r > 1 {
		r = 1
	}
	w := int(float64(chunkSize) * r)
	if w < 1 {
		w = 1
	}
	return w
}

// splitmix64 scrambles the seed so that nearby seeds yield unrelated
// streams (a plain seed|1 init made seeds 6 and 7 generate identical
// content).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1 // xorshift must not start at zero
	}
	return x
}

// Generate materializes deterministic pseudo-random content for the
// synthetic file (small files only; used by the testbed). The content is a
// xorshift stream seeded by Seed, so Generate is consistent with Refs only
// in identity (same seed = same bytes), which is all dedup needs.
func (f SyntheticFile) Generate() []byte {
	out := make([]byte, f.Size)
	state := splitmix64(f.Seed)
	for i := range out {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		out[i] = byte(state)
	}
	return out
}

// Reader returns the synthetic content as a stream without allocating the
// whole file (for io-oriented callers).
func (f SyntheticFile) Reader() io.Reader {
	return &synthReader{state: splitmix64(f.Seed), remain: f.Size}
}

type synthReader struct {
	state  uint64
	remain int64
}

func (r *synthReader) Read(p []byte) (int, error) {
	if r.remain <= 0 {
		return 0, io.EOF
	}
	n := len(p)
	if int64(n) > r.remain {
		n = int(r.remain)
	}
	for i := 0; i < n; i++ {
		r.state ^= r.state << 13
		r.state ^= r.state >> 7
		r.state ^= r.state << 17
		p[i] = byte(r.state)
	}
	r.remain -= int64(n)
	return n, nil
}
