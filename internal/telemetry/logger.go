package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// LogPeriodically starts a goroutine that writes one compact snapshot
// line to w every interval — the -telemetry-interval CLI sink. Each line
// carries the counters that moved since the previous tick (with their
// per-second rate), the non-zero gauges, and the histogram counts, so a
// long campaign shows live throughput without any per-record cost: the
// logger only reads.
//
// The returned stop function halts the logger, waits for it to exit, and
// emits one final line so short runs still log a snapshot. Stop is
// idempotent.
func LogPeriodically(w io.Writer, interval time.Duration) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	var once sync.Once
	start := time.Now()
	prev := Snapshot()
	prevAt := start
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case now := <-tick.C:
				cur := Snapshot()
				writeSnapLine(w, start, cur, prev, now.Sub(prevAt))
				prev, prevAt = cur, now
			case <-done:
				writeSnapLine(w, start, Snapshot(), prev, time.Since(prevAt))
				return
			}
		}
	}()
	return func() {
		once.Do(func() { close(done) })
		wg.Wait()
	}
}

// writeSnapLine renders one snapshot line: elapsed tag, changed counters
// with rates, non-zero gauges.
func writeSnapLine(w io.Writer, start time.Time, cur, prev Snap, dt time.Duration) {
	var b []byte
	b = append(b, "telemetry["...)
	b = strconv.AppendFloat(b, time.Since(start).Seconds(), 'f', 1, 64)
	b = append(b, "s]"...)
	for _, name := range sortedKeys(cur.Counters) {
		v := cur.Counters[name]
		if v == 0 {
			continue
		}
		b = append(b, ' ')
		b = append(b, name...)
		b = append(b, '=')
		b = append(b, fmtCount(float64(v))...)
		if d := v - prev.Counters[name]; d > 0 && dt > 0 {
			b = append(b, "(+"...)
			b = append(b, fmtCount(float64(d)/dt.Seconds())...)
			b = append(b, "/s)"...)
		}
	}
	for _, name := range sortedKeys(cur.Gauges) {
		if v := cur.Gauges[name]; v != 0 {
			b = append(b, ' ')
			b = append(b, name...)
			b = append(b, '=')
			b = strconv.AppendInt(b, v, 10)
		}
	}
	b = append(b, '\n')
	w.Write(b)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// fmtCount renders a count or rate compactly (1234567 -> "1.23M").
func fmtCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.1fK", v/1e3)
	default:
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
}
