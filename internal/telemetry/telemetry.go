// Package telemetry is the repo's zero-dependency instrumentation layer:
// named atomic counters, gauges and timing histograms that the hot
// subsystems (fleet, workload, traces, the experiment runner) update and
// that sinks — the periodic stderr logger, the RunManifest written next to
// results, and tests — read as consistent snapshots.
//
// The layer is built for the determinism contract of this repository:
// instrumentation observes, it never participates. No metric update can
// change a generated record, an aggregate or a serialized byte, so golden
// stream hashes are identical with telemetry read, unread, or ignored
// (pinned by TestStreamGoldenWithTelemetry). The cost model is equally
// strict: hot paths either update metrics at shard/flush granularity or
// pay a single uncontended atomic add — no allocation, no locking, no
// formatting — so enabled-but-unread telemetry stays inside the
// fleet/home1-8shard allocs-per-record CI gate (PERFORMANCE.md budgets
// the overhead).
//
// Metrics are process-global and monotonic for the process lifetime:
// NewCounter et al. register by name once and return the same metric on
// every call, so package-level `var m = telemetry.NewCounter(...)`
// declarations across packages share one registry. Snapshot returns a
// point-in-time copy; Reset (tests only) zeroes values but keeps
// registrations.
package telemetry

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// usable, but counters are normally obtained from NewCounter so they
// appear in snapshots.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous atomic value (pool depth, busy workers, peak
// RSS). The zero value is usable.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (use negative deltas to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// SetMax raises the gauge to v if v exceeds the current value.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is one bucket per power-of-two nanosecond: bucket i counts
// observations with bits.Len64(ns) == i, so the histogram spans 1 ns to
// ~292 years at O(1) memory and lock-free merging of concurrent Observe
// calls.
const histBuckets = 64

// Hist is a concurrent log2-spaced duration histogram: per-shard wall
// times, per-experiment durations. All methods are safe for concurrent
// use; Observe is a few atomic adds.
type Hist struct {
	count   atomic.Uint64
	sumNS   atomic.Int64
	maxNS   atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one duration (negative durations count as zero).
func (h *Hist) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(ns))%histBuckets].Add(1)
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Hist) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

// Max returns the largest observation.
func (h *Hist) Max() time.Duration { return time.Duration(h.maxNS.Load()) }

// Mean returns the average observation (0 when empty).
func (h *Hist) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(uint64(h.sumNS.Load()) / n)
}

// Quantile returns the approximate q-quantile (q in [0,1]): the geometric
// midpoint of the bucket holding the q-th observation. Relative error is
// bounded by the power-of-two bucket width (~41%), which is plenty for
// "are shards balanced" questions; exact timings belong in the manifest's
// per-shard records.
func (h *Hist) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := uint64(q * float64(n-1))
	var seen uint64
	for b := range h.buckets {
		c := h.buckets[b].Load()
		seen += c
		if c > 0 && seen > rank {
			if b == 0 {
				return 0
			}
			lo := int64(1) << (b - 1)
			mid := lo + lo/2 // midpoint of [2^(b-1), 2^b)
			if m := h.maxNS.Load(); mid > m {
				mid = m
			}
			return time.Duration(mid)
		}
	}
	return h.Max()
}

// ---------- the registry ----------

var (
	regMu    sync.Mutex
	counters = map[string]*Counter{}
	gauges   = map[string]*Gauge{}
	hists    = map[string]*Hist{}
	infos    = map[string]string{}
)

// NewCounter returns the registered counter of that name, creating it on
// first use. Safe to call from package init and concurrently.
func NewCounter(name string) *Counter {
	regMu.Lock()
	defer regMu.Unlock()
	c := counters[name]
	if c == nil {
		c = &Counter{}
		counters[name] = c
	}
	return c
}

// NewGauge returns the registered gauge of that name, creating it on
// first use.
func NewGauge(name string) *Gauge {
	regMu.Lock()
	defer regMu.Unlock()
	g := gauges[name]
	if g == nil {
		g = &Gauge{}
		gauges[name] = g
	}
	return g
}

// NewHist returns the registered histogram of that name, creating it on
// first use.
func NewHist(name string) *Hist {
	regMu.Lock()
	defer regMu.Unlock()
	h := hists[name]
	if h == nil {
		h = &Hist{}
		hists[name] = h
	}
	return h
}

// SetInfo publishes a string annotation (a stream hash, a config digest)
// that snapshots and manifests carry verbatim.
func SetInfo(key, value string) {
	regMu.Lock()
	defer regMu.Unlock()
	infos[key] = value
}

// TimingStats summarizes one histogram inside a snapshot.
type TimingStats struct {
	Count        uint64  `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MeanMs       float64 `json:"mean_ms"`
	P50Ms        float64 `json:"p50_ms"`
	P95Ms        float64 `json:"p95_ms"`
	MaxMs        float64 `json:"max_ms"`
}

// Snap is a point-in-time copy of every registered metric. Map iteration
// order is undefined as usual; renderers sort keys.
type Snap struct {
	Counters map[string]uint64      `json:"counters"`
	Gauges   map[string]int64       `json:"gauges,omitempty"`
	Timings  map[string]TimingStats `json:"timings,omitempty"`
	Info     map[string]string      `json:"info,omitempty"`
}

// Snapshot copies every registered metric. Values are loaded atomically
// per metric (the snapshot is not a global atomic cut, which observers of
// a live run do not need).
func Snapshot() Snap {
	regMu.Lock()
	defer regMu.Unlock()
	s := Snap{Counters: make(map[string]uint64, len(counters))}
	for name, c := range counters {
		s.Counters[name] = c.Load()
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]int64, len(gauges))
		for name, g := range gauges {
			s.Gauges[name] = g.Load()
		}
	}
	if len(hists) > 0 {
		s.Timings = make(map[string]TimingStats, len(hists))
		for name, h := range hists {
			s.Timings[name] = TimingStats{
				Count:        h.Count(),
				TotalSeconds: h.Sum().Seconds(),
				MeanMs:       float64(h.Mean()) / 1e6,
				P50Ms:        float64(h.Quantile(0.5)) / 1e6,
				P95Ms:        float64(h.Quantile(0.95)) / 1e6,
				MaxMs:        float64(h.Max()) / 1e6,
			}
		}
	}
	if len(infos) > 0 {
		s.Info = make(map[string]string, len(infos))
		for k, v := range infos {
			s.Info[k] = v
		}
	}
	return s
}

// CounterNames returns the registered counter names, sorted.
func CounterNames() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Reset zeroes every registered metric and clears info annotations, but
// keeps registrations (package-level metric vars stay valid). Intended
// for tests that assert absolute values.
func Reset() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, c := range counters {
		c.v.Store(0)
	}
	for _, g := range gauges {
		g.v.Store(0)
	}
	for _, h := range hists {
		h.count.Store(0)
		h.sumNS.Store(0)
		h.maxNS.Store(0)
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
	}
	clear(infos)
}
