package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// ManifestSchema versions the manifest.json layout. Bump only on
// incompatible changes; added optional fields keep the schema number.
const ManifestSchema = 1

// ManifestFile is the canonical manifest file name inside a results
// directory.
const ManifestFile = "manifest.json"

// ExperimentTiming is one experiment's wall-clock record inside a
// manifest.
type ExperimentTiming struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Seconds float64 `json:"seconds"`
	// Err carries the failure message of an experiment that did not
	// complete ("" on success) — interrupted campaigns keep their partial
	// provenance.
	Err string `json:"err,omitempty"`
}

// ShardTiming is one generated shard's record inside a manifest: which
// experiment was running, which vantage point and shard, how many records
// it emitted and how long it took.
type ShardTiming struct {
	Experiment string  `json:"experiment,omitempty"`
	VP         string  `json:"vp"`
	Shard      int     `json:"shard"`
	Shards     int     `json:"shards"`
	Records    int64   `json:"records"`
	Seconds    float64 `json:"seconds"`
}

// ResumeInfo records what a resumed run reused from its checkpoint, so
// the manifest answers "which parts of this output were regenerated?"
// without consulting logs.
type ResumeInfo struct {
	// Checkpoint is the path of the checkpoint file or directory the run
	// resumed from.
	Checkpoint string `json:"checkpoint"`
	// ResumedShards counts generation shards reused from checkpointed
	// parts rather than regenerated.
	ResumedShards int `json:"resumed_shards,omitempty"`
	// ResumedExperiments counts experiments whose results were loaded
	// from a results checkpoint rather than recomputed.
	ResumedExperiments int `json:"resumed_experiments,omitempty"`
}

// Manifest is the machine-readable provenance record of one run: the
// reproducibility key (seed, spec), the execution environment, per-
// experiment and per-shard timings, the stream hash when a serialized
// stream was produced, and a full telemetry snapshot. Every Run with a
// results directory writes one as manifest.json next to the rendered
// results.
type Manifest struct {
	Schema      int    `json:"schema"`
	CreatedUnix int64  `json:"created_unix"`
	GoVersion   string `json:"go"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`

	Seed int64 `json:"seed"`
	// Spec flattens the run's configuration (scale, shards, selection,
	// profiles, ...) as ordered-irrelevant key/value strings.
	Spec map[string]string `json:"spec,omitempty"`

	// StreamHash is the FNV-1a hash of the serialized record stream, when
	// the run produced one (trace exports set it; analysis-only runs leave
	// it empty). Two runs of the same spec must produce the same hash —
	// the telemetry-on/off golden check in CI compares exactly this.
	StreamHash string `json:"stream_hash,omitempty"`

	Experiments []ExperimentTiming `json:"experiments"`
	Shards      []ShardTiming      `json:"shards"`

	// Resume records checkpoint provenance when the run resumed earlier
	// work instead of starting fresh. Optional — its addition keeps
	// schema 1 (absent means an uninterrupted run).
	Resume *ResumeInfo `json:"resume,omitempty"`

	// Telemetry is the process-wide metric snapshot at write time.
	Telemetry Snap `json:"telemetry"`
}

// NewManifest returns a manifest stamped with the current execution
// environment.
func NewManifest(seed int64) *Manifest {
	return &Manifest{
		Schema:      ManifestSchema,
		CreatedUnix: time.Now().Unix(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Seed:        seed,
	}
}

// Finalize captures the current telemetry snapshot into the manifest and
// normalizes nil slices so the JSON always carries the experiments and
// shards arrays (the schema contract CI validates).
func (m *Manifest) Finalize() {
	m.Telemetry = Snapshot()
	if m.Experiments == nil {
		m.Experiments = []ExperimentTiming{}
	}
	if m.Shards == nil {
		m.Shards = []ShardTiming{}
	}
	if h, ok := m.Telemetry.Info["stream_hash"]; ok && m.StreamHash == "" {
		m.StreamHash = h
	}
}

// Validate checks the schema contract: version match and the fields every
// consumer relies on.
func (m *Manifest) Validate() error {
	if m.Schema != ManifestSchema {
		return fmt.Errorf("telemetry: manifest schema %d, want %d", m.Schema, ManifestSchema)
	}
	if m.GoVersion == "" || m.GOMAXPROCS < 1 {
		return fmt.Errorf("telemetry: manifest missing execution environment")
	}
	if m.Experiments == nil || m.Shards == nil {
		return fmt.Errorf("telemetry: manifest missing experiments/shards arrays")
	}
	if m.Telemetry.Counters == nil {
		return fmt.Errorf("telemetry: manifest missing counter snapshot")
	}
	return nil
}

// Encode renders the manifest as indented JSON.
func (m *Manifest) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Save finalizes the manifest and writes it to path.
func (m *Manifest) Save(path string) error {
	m.Finalize()
	data, err := m.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadManifest parses and validates a manifest.json.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("telemetry: parsing %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &m, nil
}
