package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestManifestRoundTrip pins the manifest contract end to end: Save
// finalizes (environment stamped, snapshot captured, nil slices
// normalized), LoadManifest validates, and every recorded field
// survives the trip.
func TestManifestRoundTrip(t *testing.T) {
	Reset() // metrics are process-global; -count=2 must start from zero
	c := NewCounter("test.manifest.counter")
	c.Add(11)
	SetInfo("stream_hash", "00000000deadbeef")

	m := NewManifest(42)
	m.Spec = map[string]string{"vp": "home1", "scale": "0.02"}
	m.Experiments = []ExperimentTiming{{ID: "table3", Title: "Flows", Seconds: 1.5}}
	m.Shards = []ShardTiming{{Experiment: "table3", VP: "home1", Shard: 0, Shards: 4, Records: 1210, Seconds: 0.01}}

	path := filepath.Join(t.TempDir(), ManifestFile)
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != ManifestSchema || got.Seed != 42 {
		t.Fatalf("schema/seed = %d/%d, want %d/42", got.Schema, got.Seed, ManifestSchema)
	}
	if got.GoVersion == "" || got.GOMAXPROCS < 1 || got.NumCPU < 1 {
		t.Fatalf("environment not stamped: %+v", got)
	}
	if got.Spec["vp"] != "home1" {
		t.Fatalf("spec lost: %v", got.Spec)
	}
	if len(got.Experiments) != 1 || got.Experiments[0].ID != "table3" {
		t.Fatalf("experiments lost: %+v", got.Experiments)
	}
	if len(got.Shards) != 1 || got.Shards[0].Records != 1210 {
		t.Fatalf("shards lost: %+v", got.Shards)
	}
	if got.Telemetry.Counters["test.manifest.counter"] != 11 {
		t.Fatalf("counter snapshot lost: %v", got.Telemetry.Counters)
	}
	// Finalize picks the stream hash out of the info annotations.
	if got.StreamHash != "00000000deadbeef" {
		t.Fatalf("stream hash = %q, want 00000000deadbeef", got.StreamHash)
	}
}

// TestManifestEmptyRun pins that a manifest with no experiments and no
// shards still validates — a failed or selection-empty campaign keeps
// its provenance record, with arrays present (not null) in the JSON.
func TestManifestEmptyRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), ManifestFile)
	if err := NewManifest(1).Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, `"experiments": []`) || !strings.Contains(s, `"shards": []`) {
		t.Fatalf("empty manifest JSON carries null arrays:\n%s", s)
	}
}

// TestManifestValidate pins the rejection paths consumers rely on.
func TestManifestValidate(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, mutate func(m *Manifest)) string {
		t.Helper()
		m := NewManifest(1)
		m.Finalize()
		mutate(m)
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	cases := []struct {
		name   string
		mutate func(m *Manifest)
	}{
		{"bad-schema.json", func(m *Manifest) { m.Schema = ManifestSchema + 1 }},
		{"no-env.json", func(m *Manifest) { m.GoVersion = "" }},
		{"no-counters.json", func(m *Manifest) { m.Telemetry.Counters = nil }},
	}
	for _, tc := range cases {
		if _, err := LoadManifest(write(tc.name, tc.mutate)); err == nil {
			t.Errorf("%s: LoadManifest accepted an invalid manifest", tc.name)
		}
	}
	if _, err := LoadManifest(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("LoadManifest accepted a missing file")
	}
	if _, err := LoadManifest(write("ok.json", func(m *Manifest) {})); err != nil {
		t.Errorf("valid manifest rejected: %v", err)
	}
}
