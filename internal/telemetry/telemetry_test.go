package telemetry

import (
	"sync"
	"testing"
	"time"
)

// TestRegistryIdempotent pins the registration contract: the same name
// returns the same metric, so package-level metric vars across packages
// share one registry.
func TestRegistryIdempotent(t *testing.T) {
	if NewCounter("test.reg") != NewCounter("test.reg") {
		t.Fatal("NewCounter returned distinct counters for one name")
	}
	if NewGauge("test.reg.g") != NewGauge("test.reg.g") {
		t.Fatal("NewGauge returned distinct gauges for one name")
	}
	if NewHist("test.reg.h") != NewHist("test.reg.h") {
		t.Fatal("NewHist returned distinct histograms for one name")
	}
}

// TestConcurrentUpdates hammers one counter, gauge and histogram from
// many goroutines while snapshots are taken concurrently — the shape of
// live fleet workers racing the periodic logger. Run under -race this
// pins the lock-free update paths.
func TestConcurrentUpdates(t *testing.T) {
	Reset() // metrics are process-global; -count=2 must start from zero
	c := NewCounter("test.conc.counter")
	g := NewGauge("test.conc.gauge")
	gm := NewGauge("test.conc.max")
	h := NewHist("test.conc.hist")

	const workers = 8
	const perWorker = 1000
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // concurrent reader, as the stderr logger would be
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				Snapshot()
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < perWorker; i++ {
				c.Add(2)
				g.Add(1)
				g.Add(-1)
				gm.SetMax(int64(w*perWorker + i))
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	if got := c.Load(); got != workers*perWorker*2 {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker*2)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", got, workers*perWorker)
	}
	if got := g.Load(); got != 0 {
		t.Fatalf("gauge after paired adds = %d, want 0", got)
	}
	if max := gm.Load(); max != workers*perWorker-1 {
		t.Fatalf("gauge SetMax high-water = %d, want %d", max, workers*perWorker-1)
	}
}

// TestHistStats pins the histogram summary math on a known distribution.
func TestHistStats(t *testing.T) {
	Reset()
	h := NewHist("test.hist.stats")
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if want := 5050 * time.Millisecond; h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	if h.Max() != 100*time.Millisecond {
		t.Fatalf("max = %v, want 100ms", h.Max())
	}
	if want := 50500 * time.Microsecond; h.Mean() != want {
		t.Fatalf("mean = %v, want %v", h.Mean(), want)
	}
	// Quantiles are bucket midpoints: assert they are ordered and inside
	// the log2 error bound (factor of two around the exact value).
	p50, p95 := h.Quantile(0.5), h.Quantile(0.95)
	if p50 > p95 {
		t.Fatalf("p50 %v > p95 %v", p50, p95)
	}
	if p50 < 25*time.Millisecond || p50 > 100*time.Millisecond {
		t.Fatalf("p50 = %v, outside the 2x bucket bound of 50ms", p50)
	}
	if p95 < 48*time.Millisecond || p95 > 100*time.Millisecond {
		t.Fatalf("p95 = %v, outside the 2x bucket bound of 95ms", p95)
	}
	if h.Quantile(1) > h.Max() {
		t.Fatalf("q(1) = %v beyond max %v", h.Quantile(1), h.Max())
	}
	if got := (&Hist{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty hist quantile = %v, want 0", got)
	}
}

// TestSnapshotAndReset pins the snapshot contents and the test-only Reset
// contract: values zero, registrations survive.
func TestSnapshotAndReset(t *testing.T) {
	Reset()
	c := NewCounter("test.snap.counter")
	g := NewGauge("test.snap.gauge")
	h := NewHist("test.snap.hist")
	c.Add(7)
	g.Set(-3)
	h.Observe(2 * time.Second)
	SetInfo("test.snap.info", "abc")

	s := Snapshot()
	if s.Counters["test.snap.counter"] != 7 {
		t.Fatalf("snapshot counter = %d, want 7", s.Counters["test.snap.counter"])
	}
	if s.Gauges["test.snap.gauge"] != -3 {
		t.Fatalf("snapshot gauge = %d, want -3", s.Gauges["test.snap.gauge"])
	}
	ts := s.Timings["test.snap.hist"]
	if ts.Count != 1 || ts.TotalSeconds != 2 || ts.MaxMs != 2000 {
		t.Fatalf("snapshot timing = %+v, want count 1, 2s total, 2000ms max", ts)
	}
	if s.Info["test.snap.info"] != "abc" {
		t.Fatalf("snapshot info = %q, want abc", s.Info["test.snap.info"])
	}

	// The snapshot is a copy: later updates must not leak into it.
	c.Add(100)
	if s.Counters["test.snap.counter"] != 7 {
		t.Fatal("snapshot mutated by a later counter update")
	}

	Reset()
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 {
		t.Fatal("Reset left non-zero values")
	}
	s2 := Snapshot()
	if _, ok := s2.Counters["test.snap.counter"]; !ok {
		t.Fatal("Reset dropped the counter registration")
	}
	if _, ok := s2.Info["test.snap.info"]; ok {
		t.Fatal("Reset kept an info annotation")
	}
	c.Add(1) // the package-level var stays usable after Reset
	if c.Load() != 1 {
		t.Fatal("counter unusable after Reset")
	}
}
