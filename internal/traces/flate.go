package traces

// Seekable compressed archival framing.
//
// The binary columnar format (binary.go) is the performance path; this
// file adds the archival tier on top of it: the same block bodies,
// individually DEFLATE-compressed (stdlib compress/flate — the repo's
// zero-dependency rule rules out zstd) and framed so that a reader can
// seek to any record without decompressing the stream before it.
//
// # Wire format
//
//	header := magic "IDBF1\n" | flags byte (bit 0: client column anonymized)
//	frame  := uvarint rawLen (> 0) | uvarint compLen | compLen bytes
//	end    := uvarint 0 (frame sentinel, one zero byte)
//	index  := uvarint frameCount | frameCount x (uvarint records | uvarint frameLen)
//	footer := uint64 LE indexLen | 8-byte magic "IDBFIDX1"
//
// Each frame's payload is one complete DEFLATE stream whose decompressed
// bytes are exactly one block body (the `body` production of binary.go,
// rawLen bytes) — frames are independently decompressible, which is what
// makes seeking possible. frameLen in the index is the frame's total
// length including its two uvarint headers, so cumulative sums give every
// frame's byte offset; records is the frame's record count, so cumulative
// sums give every frame's first record ordinal. The footer is fixed-size
// and lands at EOF: a seekable reader reads the last 16 bytes, walks back
// indexLen bytes to the index, and can then position itself on the frame
// containing any record ordinal. Sequential readers ignore the index (the
// zero sentinel tells them the frames are over) and stream like the
// binary reader does.
//
// Shard ranges reduce to record ranges: the per-shard record counts in a
// run manifest (dropsim -manifest) prefix-sum into each shard's first
// record ordinal, which SeekToRecord accepts directly — PERFORMANCE.md
// documents the workflow.
//
// Writing is terminal: Flush writes the sentinel, index and footer, and
// the stream cannot be appended to afterwards (unlike the raw binary
// format). Compression runs on the same ordered worker pool as the
// parallel binary writer, so the output bytes are identical for every
// worker count.

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// flateMagic opens every compressed trace stream.
var flateMagic = [6]byte{'I', 'D', 'B', 'F', '1', '\n'}

// flateFooterMagic closes every compressed trace stream.
var flateFooterMagic = [8]byte{'I', 'D', 'B', 'F', 'I', 'D', 'X', '1'}

// flateFooterLen is the fixed footer size: uint64 index length + magic.
const flateFooterLen = 16

// flateHeaderLen is the fixed header size: 6-byte magic + flags byte.
const flateHeaderLen = 7

// maxFrameRaw caps a frame's decompressed size — a format limit, not a
// tunable. Default blocks decompress to ~1MB; 16MB leaves an order of
// magnitude of headroom while keeping a hostile frame (DEFLATE inflates
// up to ~1000x) from turning a few KB of input into gigabytes of
// decompression work. Writers configured so extreme that a single block
// body exceeds this produce streams the reader rejects.
const maxFrameRaw = 1 << 24

// errFlateFinalized reports a Write after the terminal Flush.
var errFlateFinalized = errors.New("traces: flate stream already finalized (Flush wrote the index)")

// appendSlice adapts a byte slice into an io.Writer for compressors.
type appendSlice []byte

func (s *appendSlice) Write(p []byte) (int, error) {
	*s = append(*s, p...)
	return len(p), nil
}

// flateFrame is one index entry: the frame's record count and its total
// encoded length (headers included).
type flateFrame struct {
	records  uint64
	frameLen uint64
}

// FlateWriter streams flow records as the compressed archival format.
// Methods must not be called concurrently — the Workers parallelism is
// internal, and byte-identical output is guaranteed for every worker
// count. Flush is terminal: it writes the seek index and footer.
type FlateWriter struct {
	// Anonymize replaces client addresses with the stable 48-bit tokens
	// of the CSV format. It must be set before the first Write.
	Anonymize bool
	// BlockRecords overrides the records-per-frame target (0 means
	// DefaultBlockRecords). It must be set before the first Write.
	BlockRecords int
	// Level is the flate compression level (flate.BestSpeed ..
	// flate.BestCompression; 0 means flate.DefaultCompression). It must
	// be set before the first Write.
	Level int

	w           io.Writer
	pool        *blockPool
	cur         *blockAccum
	index       []flateFrame
	wroteHeader bool
	finished    bool
	err         error
}

// NewFlateWriter wraps w with a pool of workers frame compressors
// (workers < 1 means 1).
func NewFlateWriter(w io.Writer, workers int) *FlateWriter {
	fw := &FlateWriter{w: w}
	fw.pool = newBlockPool(w, workers,
		func(st *encScratch, acc *blockAccum) []byte { return fw.finishFrame(st, acc) },
		func(acc *blockAccum, frame []byte) {
			// Merger goroutine; Flush reads index only after drain, so the
			// appends are ordered-before every read.
			fw.index = append(fw.index, flateFrame{records: uint64(acc.n), frameLen: uint64(len(frame))})
			rawLen, _ := binary.Uvarint(frame)
			mFlateFrames.Inc()
			mFlateRecords.Add(uint64(acc.n))
			mFlateRawBytes.Add(rawLen)
			mFlateBytes.Add(uint64(len(frame)))
		})
	return fw
}

// level resolves the configured compression level.
func (w *FlateWriter) level() int {
	if w.Level == 0 {
		return flate.DefaultCompression
	}
	return w.Level
}

// finishFrame encodes one accum's block body and compresses it into a
// framed payload. Runs on a worker goroutine; all scratch is owned by the
// accum (frame bytes) or the worker (the flate compressor).
func (w *FlateWriter) finishFrame(st *encScratch, acc *blockAccum) []byte {
	raw := acc.encodeBody(acc.buf[:0])
	acc.buf = raw

	const reserve = 2 * binary.MaxVarintLen64
	if cap(acc.out) < reserve {
		acc.out = make([]byte, reserve)
	}
	acc.out = acc.out[:reserve]
	sink := (*appendSlice)(&acc.out)
	if st.fw == nil {
		// The level is validated here, once per worker: flate.NewWriter
		// only errors on an out-of-range level.
		fw, err := flate.NewWriter(sink, w.level())
		if err != nil {
			panic(fmt.Sprintf("traces: invalid flate level %d: %v", w.level(), err))
		}
		st.fw = fw
	} else {
		st.fw.Reset(sink)
	}
	st.fw.Write(raw) // appendSlice never errors
	st.fw.Close()

	frame := acc.out
	compLen := len(frame) - reserve
	// Right-align the two uvarint headers immediately before the payload.
	var hdr [reserve]byte
	n1 := binary.PutUvarint(hdr[:], uint64(len(raw)))
	n2 := binary.PutUvarint(hdr[n1:], uint64(compLen))
	start := reserve - n1 - n2
	copy(frame[start:], hdr[:n1+n2])
	return frame[start:]
}

func (w *FlateWriter) blockTarget() int {
	if w.BlockRecords > 0 {
		return w.BlockRecords
	}
	return DefaultBlockRecords
}

// ensureStarted writes the stream header once and (re)starts the pool.
func (w *FlateWriter) ensureStarted() error {
	if w.err != nil {
		return w.err
	}
	if !w.wroteHeader {
		var hdr [flateHeaderLen]byte
		copy(hdr[:], flateMagic[:])
		if w.Anonymize {
			hdr[6] |= anonFlag
		}
		if _, err := w.w.Write(hdr[:]); err != nil {
			w.err = err
			return err
		}
		w.wroteHeader = true
	}
	w.pool.start()
	return nil
}

// Write buffers one record; nothing in r is retained after return.
func (w *FlateWriter) Write(r *FlowRecord) error {
	if w.finished {
		return errFlateFinalized
	}
	if err := w.ensureStarted(); err != nil {
		return err
	}
	if err := w.pool.loadErr(); err != nil {
		return err
	}
	if w.cur == nil {
		w.cur = w.pool.getAccum()
	}
	w.cur.add(r, w.Anonymize)
	if w.cur.n >= w.blockTarget() {
		w.pool.submit(w.cur)
		w.cur = nil
	}
	return nil
}

// Flush finalizes the stream: any partial frame is compressed and
// written, the worker pool drains and stops, and the sentinel, index and
// footer land after the last frame. A zero-record Flush writes a valid
// empty stream (header, sentinel, empty index, footer). Further Writes
// fail with an error; Flush itself is idempotent.
func (w *FlateWriter) Flush() error {
	if w.finished {
		return w.err
	}
	if err := w.ensureStarted(); err != nil {
		return err
	}
	if w.cur != nil {
		if w.cur.n > 0 {
			w.pool.submit(w.cur)
		} else {
			w.pool.free <- w.cur
		}
		w.cur = nil
	}
	if err := w.pool.drain(); err != nil {
		w.err = err
		w.finished = true
		return err
	}
	trailer := []byte{0} // frame sentinel
	idx := binary.AppendUvarint(nil, uint64(len(w.index)))
	for _, f := range w.index {
		idx = binary.AppendUvarint(idx, f.records)
		idx = binary.AppendUvarint(idx, f.frameLen)
	}
	trailer = append(trailer, idx...)
	var footer [flateFooterLen]byte
	binary.LittleEndian.PutUint64(footer[:8], uint64(len(idx)))
	copy(footer[8:], flateFooterMagic[:])
	trailer = append(trailer, footer[:]...)
	w.finished = true
	if _, err := w.w.Write(trailer); err != nil {
		w.err = err
	}
	return w.err
}

// FlateReader parses a compressed archival trace stream back into
// records. Wrapping an io.ReadSeeker additionally enables SeekToRecord:
// the reader loads the trailing index and repositions onto the frame
// containing any record ordinal, so a partial range costs only its own
// frames' decompression.
type FlateReader struct {
	rs     io.ReadSeeker // non-nil when the source supports seeking
	br     *bufio.Reader
	header bool
	anon   bool
	err    error

	recs []*FlowRecord // decoded records of the current frame
	next int
	skip int // records to discard after a seek landed mid-frame

	comp    []byte // compressed frame scratch
	raw     []byte // decompressed body scratch
	compRdr bytes.Reader
	fr      io.ReadCloser // flate decompressor, reused via flate.Resetter
	sc      blockDecScratch

	// Seek index, loaded lazily by the first SeekToRecord/NumRecords.
	index      []flateFrame
	frameOff   []int64 // byte offset of each frame
	cumRecords []int64 // first record ordinal of each frame
	total      int64   // total records per the index
}

// NewFlateReader wraps r. If r is an io.ReadSeeker the reader supports
// SeekToRecord; otherwise it streams sequentially.
func NewFlateReader(r io.Reader) *FlateReader {
	fr := &FlateReader{br: bufio.NewReader(r)}
	if rs, ok := r.(io.ReadSeeker); ok {
		fr.rs = rs
	}
	return fr
}

// Anonymized reports whether the stream's client column is anonymized
// (meaningful after the first Read or SeekToRecord).
func (r *FlateReader) Anonymized() bool { return r.anon }

// ensureHeader consumes and validates the stream header once.
func (r *FlateReader) ensureHeader() error {
	if r.header {
		return nil
	}
	var hdr [flateHeaderLen]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("traces: reading flate header: %w", err)
	}
	if [6]byte(hdr[:6]) != flateMagic {
		return errors.New("traces: not a compressed trace stream (bad magic)")
	}
	r.anon = hdr[6]&anonFlag != 0
	r.header = true
	return nil
}

// Read returns the next record, or io.EOF at end of stream. Returned
// records are freshly allocated and do not alias reader state.
func (r *FlateReader) Read() (*FlowRecord, error) {
	if r.err != nil {
		return nil, r.err
	}
	if err := r.ensureHeader(); err != nil {
		r.err = err
		return nil, err
	}
	for r.next >= len(r.recs) {
		if err := r.readFrame(); err != nil {
			r.err = err
			return nil, err
		}
		if r.skip > 0 {
			n := min(r.skip, len(r.recs))
			r.next += n
			r.skip -= n
		}
	}
	rec := r.recs[r.next]
	r.recs[r.next] = nil
	r.next++
	return rec, nil
}

// readFrame decompresses and decodes the next frame into r.recs, or
// returns io.EOF after validating the trailer when the sentinel is hit.
func (r *FlateReader) readFrame() error {
	rawLen, err := binary.ReadUvarint(r.br)
	if err != nil {
		if err == io.EOF {
			return fmt.Errorf("traces: flate stream truncated (missing trailer): %w", io.ErrUnexpectedEOF)
		}
		return fmt.Errorf("traces: reading frame length: %w", err)
	}
	if rawLen == 0 {
		// Frame sentinel: index and footer follow, then EOF.
		return r.validateTrailer()
	}
	if rawLen > maxFrameRaw {
		return fmt.Errorf("traces: implausible frame raw length %d", rawLen)
	}
	compLen, err := binary.ReadUvarint(r.br)
	if err != nil {
		return fmt.Errorf("traces: reading frame compressed length: %w", err)
	}
	if compLen == 0 || compLen > 1<<31 {
		return fmt.Errorf("traces: implausible frame compressed length %d", compLen)
	}
	comp, err := readExact(r.br, r.comp, int(compLen))
	r.comp = comp[:0]
	if err != nil {
		return fmt.Errorf("traces: reading frame payload: %w", err)
	}
	r.compRdr.Reset(comp)
	if r.fr == nil {
		r.fr = flate.NewReader(&r.compRdr)
	} else if err := r.fr.(flate.Resetter).Reset(&r.compRdr, nil); err != nil {
		return fmt.Errorf("traces: resetting flate decompressor: %w", err)
	}
	// The raw buffer grows only as the decompressor actually produces
	// bytes, so a corrupt rawLen cannot force a huge allocation either.
	raw, err := readExact(r.fr, r.raw, int(rawLen))
	r.raw = raw[:0]
	if err != nil {
		return fmt.Errorf("traces: decompressing frame: %w", err)
	}
	// The payload must decompress to exactly rawLen bytes.
	var one [1]byte
	if n, err := r.fr.Read(one[:]); n != 0 || (err != nil && err != io.EOF) {
		return errors.New("traces: frame decompresses past its declared raw length")
	}
	recs, err := decodeBlockBody(raw, r.anon, &r.sc)
	if err != nil {
		return err
	}
	r.recs = recs
	r.next = 0
	return nil
}

// validateTrailer reads the index and footer after the sentinel and
// returns io.EOF if they are well formed.
func (r *FlateReader) validateTrailer() error {
	count, err := binary.ReadUvarint(r.br)
	if err != nil {
		return fmt.Errorf("traces: reading index count: %w", err)
	}
	if count > 1<<40 {
		return fmt.Errorf("traces: implausible index frame count %d", count)
	}
	for i := uint64(0); i < count; i++ {
		if _, err := binary.ReadUvarint(r.br); err != nil {
			return fmt.Errorf("traces: reading index entry %d: %w", i, err)
		}
		if _, err := binary.ReadUvarint(r.br); err != nil {
			return fmt.Errorf("traces: reading index entry %d: %w", i, err)
		}
	}
	var footer [flateFooterLen]byte
	if _, err := io.ReadFull(r.br, footer[:]); err != nil {
		return fmt.Errorf("traces: reading footer: %w", err)
	}
	if [8]byte(footer[8:]) != flateFooterMagic {
		return errors.New("traces: corrupt flate stream (bad footer magic)")
	}
	return io.EOF
}

// loadIndex reads the trailing index through the seeker, then restores
// the logical read position, so index lookups never disturb a stream
// mid-read.
func (r *FlateReader) loadIndex() error {
	if r.index != nil {
		return nil
	}
	if r.rs == nil {
		return errors.New("traces: seeking requires an io.ReadSeeker source")
	}
	pos, err := r.rs.Seek(0, io.SeekCurrent)
	if err != nil {
		return err
	}
	pos -= int64(r.br.Buffered())
	idxErr := r.readIndex()
	if _, err := r.rs.Seek(pos, io.SeekStart); err != nil {
		if idxErr != nil {
			return idxErr
		}
		return err
	}
	r.br.Reset(r.rs)
	return idxErr
}

// readIndex parses the footer and index from the end of the stream.
// It leaves the seek position unspecified — loadIndex restores it.
func (r *FlateReader) readIndex() error {
	size, err := r.rs.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}
	if size < flateHeaderLen+1+flateFooterLen {
		return errors.New("traces: flate stream too short to carry an index")
	}
	if _, err := r.rs.Seek(size-flateFooterLen, io.SeekStart); err != nil {
		return err
	}
	var footer [flateFooterLen]byte
	if _, err := io.ReadFull(r.rs, footer[:]); err != nil {
		return fmt.Errorf("traces: reading footer: %w", err)
	}
	if [8]byte(footer[8:]) != flateFooterMagic {
		return errors.New("traces: corrupt flate stream (bad footer magic)")
	}
	idxLen := int64(binary.LittleEndian.Uint64(footer[:8]))
	if idxLen < 1 || idxLen > size-flateFooterLen-flateHeaderLen-1 {
		return fmt.Errorf("traces: corrupt flate index (length %d of %d-byte stream)", idxLen, size)
	}
	if _, err := r.rs.Seek(size-flateFooterLen-idxLen, io.SeekStart); err != nil {
		return err
	}
	idx := make([]byte, idxLen)
	if _, err := io.ReadFull(r.rs, idx); err != nil {
		return fmt.Errorf("traces: reading index: %w", err)
	}
	d := &bdec{b: idx}
	count := d.uvarint()
	if d.err != nil || count > uint64(idxLen) {
		return errors.New("traces: corrupt flate index (count)")
	}
	index := make([]flateFrame, 0, count)
	frameOff := make([]int64, 0, count)
	cumRecords := make([]int64, 0, count)
	off, records := int64(flateHeaderLen), int64(0)
	framesEnd := size - flateFooterLen - idxLen - 1 // sentinel byte precedes the index
	for i := uint64(0); i < count; i++ {
		f := flateFrame{records: d.uvarint(), frameLen: d.uvarint()}
		if d.err != nil {
			return errors.New("traces: corrupt flate index (entry)")
		}
		if f.records == 0 || f.frameLen == 0 {
			return errors.New("traces: corrupt flate index (empty frame)")
		}
		index = append(index, f)
		frameOff = append(frameOff, off)
		cumRecords = append(cumRecords, records)
		off += int64(f.frameLen)
		records += int64(f.records)
		if off > framesEnd {
			return fmt.Errorf("traces: corrupt flate index (frame %d offset %d past frame section end %d)", i, off, framesEnd)
		}
	}
	if d.off != len(idx) {
		return errors.New("traces: corrupt flate index (trailing bytes)")
	}
	r.index, r.frameOff, r.cumRecords, r.total = index, frameOff, cumRecords, records
	return nil
}

// NumRecords returns the stream's total record count from the index
// (requires an io.ReadSeeker source). The read position is preserved:
// it can be called before, during or after sequential reading without
// disturbing the stream.
func (r *FlateReader) NumRecords() (int64, error) {
	if err := r.loadIndex(); err != nil {
		return 0, err
	}
	return r.total, nil
}

// SeekToRecord repositions the reader so the next Read returns record
// ordinal n (0-based, in stream order). Only the frame containing n and
// later frames are ever decompressed. Requires an io.ReadSeeker source.
// Seeking to the total record count positions at EOF; past it is an
// error.
func (r *FlateReader) SeekToRecord(n int64) error {
	if err := r.loadIndex(); err != nil {
		return err
	}
	if n < 0 || n > r.total {
		return fmt.Errorf("traces: record %d out of range (stream has %d)", n, r.total)
	}
	if !r.header {
		// Validate the header once so anon is known before decoding.
		if _, err := r.rs.Seek(0, io.SeekStart); err != nil {
			return err
		}
		r.br.Reset(r.rs)
		if err := r.ensureHeader(); err != nil {
			return err
		}
	}
	mFlateSeeks.Inc()
	// Binary search: the last frame whose first ordinal is <= n.
	lo, hi := 0, len(r.cumRecords)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if r.cumRecords[mid] <= n {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	target, skip := int64(flateHeaderLen), int64(0)
	if len(r.index) > 0 && n < r.total {
		target, skip = r.frameOff[lo], n-r.cumRecords[lo]
	} else {
		// Empty stream or n == total: position on the sentinel.
		if len(r.index) > 0 {
			last := len(r.index) - 1
			target = r.frameOff[last] + int64(r.index[last].frameLen)
		}
	}
	if _, err := r.rs.Seek(target, io.SeekStart); err != nil {
		return err
	}
	r.br.Reset(r.rs)
	r.recs, r.next, r.skip = nil, 0, int(skip)
	r.err = nil // a previous io.EOF is cleared by an explicit seek
	return nil
}
