package traces

// The block codec shared by every binary-framed serialization: a
// blockAccum accumulates records column-wise and encodes one block body
// (the `body` production of the wire format documented in binary.go);
// decodeBlockBody reverses it. The sequential BinaryWriter, the
// ParallelBinaryWriter worker pool and the flate archival tier all build
// their frames from exactly these two functions, which is what makes the
// "worker count and framing never change the decoded records" contract
// checkable block by block.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"insidedropbox/internal/wire"
)

// dictCol accumulates one dictionary-encoded string column for the block
// being built. All storage is reused across blocks.
type dictCol struct {
	idx     map[string]uint32
	entries []string
	refs    []uint32
}

func (d *dictCol) add(s string) {
	if d.idx == nil {
		d.idx = make(map[string]uint32)
	}
	i, ok := d.idx[s]
	if !ok {
		i = uint32(len(d.entries))
		d.idx[s] = i
		d.entries = append(d.entries, s)
	}
	d.refs = append(d.refs, i)
}

func (d *dictCol) reset() {
	clear(d.idx)
	d.entries = d.entries[:0]
	d.refs = d.refs[:0]
}

func (d *dictCol) encode(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(d.entries)))
	for _, s := range d.entries {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	for _, r := range d.refs {
		buf = binary.AppendUvarint(buf, uint64(r))
	}
	return buf
}

// dictU64 is dictCol over numeric values (the address columns).
type dictU64 struct {
	idx     map[uint64]uint32
	entries []uint64
	refs    []uint32
}

func (d *dictU64) add(v uint64) {
	if d.idx == nil {
		d.idx = make(map[uint64]uint32)
	}
	i, ok := d.idx[v]
	if !ok {
		i = uint32(len(d.entries))
		d.idx[v] = i
		d.entries = append(d.entries, v)
	}
	d.refs = append(d.refs, i)
}

func (d *dictU64) reset() {
	clear(d.idx)
	d.entries = d.entries[:0]
	d.refs = d.refs[:0]
}

func (d *dictU64) encode(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(d.entries)))
	for _, v := range d.entries {
		buf = binary.AppendUvarint(buf, v)
	}
	for _, r := range d.refs {
		buf = binary.AppendUvarint(buf, uint64(r))
	}
	return buf
}

// blockAccum holds one block's records column-wise, pre-encoding. All
// storage is reused across blocks; the zero value is ready to use.
type blockAccum struct {
	n int // records accumulated

	client, server     dictU64
	cport, sport       []uint64
	first, last        []int64
	lpUp, lpDown       []int64
	bytesUp, bytesDown []int64
	pktsUp, pktsDown   []int64
	pshUp, pshDown     []int64
	retrUp, retrDown   []int64
	minRTT, rttSamples []int64
	notifyHost         []uint64
	nsCount            []uint64
	nsVals             []uint64
	flags              []byte
	vp, sni, cert      dictCol
	fqdn               dictCol

	buf []byte // frame encode scratch, owned by whoever encodes this accum
	out []byte // second scratch for framings that post-process buf (flate)
}

// add appends one record to the block under construction; nothing in r is
// retained.
func (a *blockAccum) add(r *FlowRecord, anonymize bool) {
	if anonymize {
		a.client.add(anonToken(r.Client))
	} else {
		a.client.add(uint64(uint32(r.Client)))
	}
	a.server.add(uint64(uint32(r.Server)))
	a.cport = append(a.cport, uint64(r.ClientPort))
	a.sport = append(a.sport, uint64(r.ServerPort))
	a.first = append(a.first, int64(r.FirstPacket))
	a.last = append(a.last, int64(r.LastPacket-r.FirstPacket))
	a.lpUp = append(a.lpUp, int64(r.LastPayloadUp-r.LastPacket))
	a.lpDown = append(a.lpDown, int64(r.LastPayloadDown-r.LastPacket))
	a.bytesUp = append(a.bytesUp, r.BytesUp)
	a.bytesDown = append(a.bytesDown, r.BytesDown)
	a.pktsUp = append(a.pktsUp, int64(r.PktsUp))
	a.pktsDown = append(a.pktsDown, int64(r.PktsDown))
	a.pshUp = append(a.pshUp, int64(r.PSHUp))
	a.pshDown = append(a.pshDown, int64(r.PSHDown))
	a.retrUp = append(a.retrUp, int64(r.RetransUp))
	a.retrDown = append(a.retrDown, int64(r.RetransDown))
	a.minRTT = append(a.minRTT, int64(r.MinRTT))
	a.rttSamples = append(a.rttSamples, int64(r.RTTSamples))
	a.notifyHost = append(a.notifyHost, r.NotifyHost)
	a.nsCount = append(a.nsCount, uint64(len(r.NotifyNamespaces)))
	for _, ns := range r.NotifyNamespaces {
		a.nsVals = append(a.nsVals, uint64(ns))
	}
	var fl byte
	if r.SawSYN {
		fl |= 1 << 0
	}
	if r.SawFIN {
		fl |= 1 << 1
	}
	if r.SawRST {
		fl |= 1 << 2
	}
	if r.ServerClosed {
		fl |= 1 << 3
	}
	a.flags = append(a.flags, fl)
	a.vp.add(r.VP)
	a.sni.add(r.SNI)
	a.cert.add(r.CertName)
	a.fqdn.add(r.FQDN)
	a.n++
}

// encodeBody appends the block body (uvarint record count, then every
// column) to buf and returns the grown slice.
func (a *blockAccum) encodeBody(buf []byte) []byte {
	body := binary.AppendUvarint(buf, uint64(a.n))
	body = a.client.encode(body)
	body = a.server.encode(body)
	for _, v := range a.cport {
		body = binary.AppendUvarint(body, v)
	}
	for _, v := range a.sport {
		body = binary.AppendUvarint(body, v)
	}
	prev := int64(0)
	for _, v := range a.first {
		body = binary.AppendVarint(body, v-prev)
		prev = v
	}
	for _, v := range a.last {
		body = binary.AppendVarint(body, v)
	}
	for _, v := range a.lpUp {
		body = binary.AppendVarint(body, v)
	}
	for _, v := range a.lpDown {
		body = binary.AppendVarint(body, v)
	}
	for _, col := range [...][]int64{
		a.bytesUp, a.bytesDown, a.pktsUp, a.pktsDown,
		a.pshUp, a.pshDown, a.retrUp, a.retrDown,
		a.minRTT, a.rttSamples,
	} {
		for _, v := range col {
			body = binary.AppendVarint(body, v)
		}
	}
	body = a.vp.encode(body)
	body = a.sni.encode(body)
	body = a.cert.encode(body)
	body = a.fqdn.encode(body)
	for _, v := range a.notifyHost {
		body = binary.AppendUvarint(body, v)
	}
	for _, v := range a.nsCount {
		body = binary.AppendUvarint(body, v)
	}
	for _, v := range a.nsVals {
		body = binary.AppendUvarint(body, v)
	}
	body = append(body, a.flags...)
	return body
}

// reset clears the accumulator for the next block, keeping all storage.
func (a *blockAccum) reset() {
	a.n = 0
	a.client.reset()
	a.server.reset()
	a.cport = a.cport[:0]
	a.sport = a.sport[:0]
	a.first = a.first[:0]
	a.last = a.last[:0]
	a.lpUp = a.lpUp[:0]
	a.lpDown = a.lpDown[:0]
	a.bytesUp = a.bytesUp[:0]
	a.bytesDown = a.bytesDown[:0]
	a.pktsUp = a.pktsUp[:0]
	a.pktsDown = a.pktsDown[:0]
	a.pshUp = a.pshUp[:0]
	a.pshDown = a.pshDown[:0]
	a.retrUp = a.retrUp[:0]
	a.retrDown = a.retrDown[:0]
	a.minRTT = a.minRTT[:0]
	a.rttSamples = a.rttSamples[:0]
	a.notifyHost = a.notifyHost[:0]
	a.nsCount = a.nsCount[:0]
	a.nsVals = a.nsVals[:0]
	a.flags = a.flags[:0]
	a.vp.reset()
	a.sni.reset()
	a.cert.reset()
	a.fqdn.reset()
}

// ---------- decode side ----------

// bdec is a cursor over one decoded block body.
type bdec struct {
	b   []byte
	off int
	err error
}

func (d *bdec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.err = errors.New("traces: corrupt binary block (uvarint)")
		return 0
	}
	d.off += n
	return v
}

func (d *bdec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.err = errors.New("traces: corrupt binary block (varint)")
		return 0
	}
	d.off += n
	return v
}

func (d *bdec) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	// n comes straight from an untrusted uvarint: compare against the
	// remaining length by subtraction so a huge n cannot overflow the
	// check and panic the slice below.
	if n < 0 || n > len(d.b)-d.off {
		d.err = errors.New("traces: corrupt binary block (bytes)")
		return nil
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b
}

// dictU64Vals decodes a numeric dictionary column into one value per
// record, using (and returning) the caller's entry scratch.
func (d *bdec) dictU64Vals(n int, scratch []uint64) (vals, entries []uint64) {
	dl := int(d.uvarint())
	if d.err != nil || dl > len(d.b) {
		if d.err == nil {
			d.err = errors.New("traces: corrupt binary block (u64 dict)")
		}
		return nil, scratch
	}
	entries = scratch[:0]
	for i := 0; i < dl; i++ {
		entries = append(entries, d.uvarint())
	}
	vals = make([]uint64, n)
	for i := range vals {
		ref := d.uvarint()
		if d.err != nil {
			return nil, entries
		}
		if ref >= uint64(len(entries)) {
			d.err = errors.New("traces: corrupt binary block (u64 dict ref)")
			return nil, entries
		}
		vals[i] = entries[ref]
	}
	return vals, entries
}

func (d *bdec) dict(n int, scratch []string) ([]string, []string) {
	dl := int(d.uvarint())
	if d.err != nil || dl > len(d.b) {
		if d.err == nil {
			d.err = errors.New("traces: corrupt binary block (dict)")
		}
		return nil, scratch
	}
	entries := scratch[:0]
	for i := 0; i < dl; i++ {
		entries = append(entries, string(d.bytes(int(d.uvarint()))))
	}
	vals := make([]string, n)
	for i := range vals {
		ref := d.uvarint()
		if d.err != nil {
			return nil, entries
		}
		if ref >= uint64(len(entries)) {
			d.err = errors.New("traces: corrupt binary block (dict ref)")
			return nil, entries
		}
		vals[i] = entries[ref]
	}
	return vals, entries
}

// blockDecScratch holds the dictionary decode scratch a block decoder
// reuses across blocks.
type blockDecScratch struct {
	strs []string
	u64s []uint64
}

// decodeBlockBody parses one block body into freshly allocated records
// that do not alias body or the scratch. anon streams decode with
// Client == 0, matching the CSV reader's behaviour on anonymized rows.
func decodeBlockBody(body []byte, anon bool, sc *blockDecScratch) ([]*FlowRecord, error) {
	d := &bdec{b: body}
	n := int(d.uvarint())
	if d.err != nil {
		return nil, d.err
	}
	// Every record costs at least 24 body bytes (25 columns write one
	// varint or flag byte each, minus generous slack), so a count claiming
	// less is corrupt — and the bound keeps a hostile count from forcing
	// a record allocation far larger than the input that carried it.
	if n <= 0 || n > len(body)/24+1 {
		return nil, fmt.Errorf("traces: implausible block record count %d", n)
	}
	recs := make([]*FlowRecord, n)
	backing := make([]FlowRecord, n)
	for i := range recs {
		recs[i] = &backing[i]
	}
	var clients, servers []uint64
	clients, sc.u64s = d.dictU64Vals(n, sc.u64s)
	if !anon && clients != nil {
		for i := range recs {
			recs[i].Client = wire.IP(uint32(clients[i]))
		}
	}
	servers, sc.u64s = d.dictU64Vals(n, sc.u64s)
	for i := range recs {
		if servers != nil {
			recs[i].Server = wire.IP(uint32(servers[i]))
		}
	}
	for i := range recs {
		recs[i].ClientPort = uint16(d.uvarint())
	}
	for i := range recs {
		recs[i].ServerPort = uint16(d.uvarint())
	}
	prev := int64(0)
	for i := range recs {
		prev += d.varint()
		recs[i].FirstPacket = time.Duration(prev)
	}
	for i := range recs {
		recs[i].LastPacket = recs[i].FirstPacket + time.Duration(d.varint())
	}
	for i := range recs {
		recs[i].LastPayloadUp = recs[i].LastPacket + time.Duration(d.varint())
	}
	for i := range recs {
		recs[i].LastPayloadDown = recs[i].LastPacket + time.Duration(d.varint())
	}
	for i := range recs {
		recs[i].BytesUp = d.varint()
	}
	for i := range recs {
		recs[i].BytesDown = d.varint()
	}
	for i := range recs {
		recs[i].PktsUp = int(d.varint())
	}
	for i := range recs {
		recs[i].PktsDown = int(d.varint())
	}
	for i := range recs {
		recs[i].PSHUp = int(d.varint())
	}
	for i := range recs {
		recs[i].PSHDown = int(d.varint())
	}
	for i := range recs {
		recs[i].RetransUp = int(d.varint())
	}
	for i := range recs {
		recs[i].RetransDown = int(d.varint())
	}
	for i := range recs {
		recs[i].MinRTT = time.Duration(d.varint())
	}
	for i := range recs {
		recs[i].RTTSamples = int(d.varint())
	}
	var vals []string
	vals, sc.strs = d.dict(n, sc.strs)
	for i := range recs {
		if vals != nil {
			recs[i].VP = vals[i]
		}
	}
	vals, sc.strs = d.dict(n, sc.strs)
	for i := range recs {
		if vals != nil {
			recs[i].SNI = vals[i]
		}
	}
	vals, sc.strs = d.dict(n, sc.strs)
	for i := range recs {
		if vals != nil {
			recs[i].CertName = vals[i]
		}
	}
	vals, sc.strs = d.dict(n, sc.strs)
	for i := range recs {
		if vals != nil {
			recs[i].FQDN = vals[i]
		}
	}
	for i := range recs {
		recs[i].NotifyHost = d.uvarint()
	}
	counts := make([]int, n)
	for i := range counts {
		counts[i] = int(d.uvarint())
		if d.err == nil && counts[i] > len(body) {
			d.err = errors.New("traces: corrupt binary block (ns count)")
		}
	}
	for i := range recs {
		if c := counts[i]; c > 0 && d.err == nil {
			ns := make([]uint32, c)
			for j := range ns {
				ns[j] = uint32(d.uvarint())
			}
			recs[i].NotifyNamespaces = ns
		}
	}
	flags := d.bytes(n)
	if d.err != nil {
		return nil, d.err
	}
	for i, fl := range flags {
		recs[i].SawSYN = fl&(1<<0) != 0
		recs[i].SawFIN = fl&(1<<1) != 0
		recs[i].SawRST = fl&(1<<2) != 0
		recs[i].ServerClosed = fl&(1<<3) != 0
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("traces: %d trailing bytes in block", len(body)-d.off)
	}
	return recs, nil
}
