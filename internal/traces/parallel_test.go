package traces

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// encodeSequential serializes recs with the sequential BinaryWriter —
// the byte-identity reference for the parallel writer.
func encodeSequential(t *testing.T, recs []*FlowRecord, blockRecords int, anon bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	w.BlockRecords = blockRecords
	w.Anonymize = anon
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelBinaryMatchesSequential pins the determinism contract: the
// parallel writer's output is byte-identical to the sequential writer's
// for every worker count, including partial tail blocks and anonymized
// streams.
func TestParallelBinaryMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var recs []*FlowRecord
	for i := 0; i < 10_000; i++ {
		recs = append(recs, randRecord(rng, i))
	}
	for _, anon := range []bool{false, true} {
		for _, blockRecords := range []int{257, 1024} {
			want := encodeSequential(t, recs, blockRecords, anon)
			for _, workers := range []int{1, 2, 8} {
				var buf bytes.Buffer
				pw := NewParallelBinaryWriter(&buf, workers)
				pw.BlockRecords = blockRecords
				pw.Anonymize = anon
				for _, r := range recs {
					if err := pw.Write(r); err != nil {
						t.Fatal(err)
					}
				}
				if err := pw.Flush(); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf.Bytes(), want) {
					t.Fatalf("anon=%v block=%d workers=%d: output differs from sequential writer (%d vs %d bytes)",
						anon, blockRecords, workers, buf.Len(), len(want))
				}
			}
		}
	}
}

// TestParallelBinaryRoundTrip decodes a parallel-written stream with the
// ordinary reader.
func TestParallelBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	var recs []*FlowRecord
	for i := 0; i < 3_000; i++ {
		recs = append(recs, randRecord(rng, i))
	}
	var buf bytes.Buffer
	pw := NewParallelBinaryWriter(&buf, 4)
	pw.BlockRecords = 256
	for _, r := range recs {
		if err := pw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := NewBinaryReader(&buf)
	for i, want := range recs {
		got, err := br.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(want)) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, err := br.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

// TestParallelBinaryAppendAfterFlush exercises the restart path: Flush
// stops the pool, a later Write restarts it, and the stream stays valid.
func TestParallelBinaryAppendAfterFlush(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var recs []*FlowRecord
	for i := 0; i < 700; i++ {
		recs = append(recs, randRecord(rng, i))
	}
	var buf bytes.Buffer
	pw := NewParallelBinaryWriter(&buf, 3)
	pw.BlockRecords = 128
	for _, r := range recs[:300] {
		if err := pw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[300:] {
		if err := pw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := NewBinaryReader(&buf)
	for i := range recs {
		got, err := br.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(recs[i])) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, err := br.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

// failAfterWriter errors every write after the first n.
type failAfterWriter struct {
	n    int
	seen int
}

var errWriterBroke = errors.New("writer broke")

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.seen++
	if w.seen > w.n {
		return 0, errWriterBroke
	}
	return len(p), nil
}

// TestParallelBinaryWriteError checks that an underlying write error is
// latched and surfaced, and that Flush still drains cleanly (no leaked
// goroutines, no deadlock).
func TestParallelBinaryWriteError(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	pw := NewParallelBinaryWriter(&failAfterWriter{n: 2}, 4) // header + 1 block succeed
	pw.BlockRecords = 64
	var failed bool
	for i := 0; i < 10_000; i++ {
		if err := pw.Write(randRecord(rng, i)); err != nil {
			if !errors.Is(err, errWriterBroke) {
				t.Fatalf("unexpected error: %v", err)
			}
			failed = true
			break
		}
	}
	err := pw.Flush()
	if !failed && err == nil {
		t.Fatal("write error never surfaced")
	}
	if err != nil && !errors.Is(err, errWriterBroke) {
		t.Fatalf("Flush: unexpected error: %v", err)
	}
}

// waitForGoroutines polls until the goroutine count drops back to base
// (the runtime needs a beat to unwind exiting goroutines).
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, want <= %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestParallelBinaryNoGoroutineLeak pins the lifecycle contract: after
// Flush the writer owns no goroutines, even when the stream is abandoned
// early (a partial block was buffered but the consumer stops writing).
func TestParallelBinaryNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(25))
	var buf bytes.Buffer
	pw := NewParallelBinaryWriter(&buf, 8)
	pw.BlockRecords = 64
	// Abandon mid-block: 100 records leaves a partial accumulator.
	for i := 0; i < 100; i++ {
		if err := pw.Write(randRecord(rng, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	waitForGoroutines(t, base)

	// And again with an empty Flush (no records at all).
	pw2 := NewParallelBinaryWriter(&buf, 8)
	if err := pw2.Flush(); err != nil {
		t.Fatal(err)
	}
	waitForGoroutines(t, base)
}
