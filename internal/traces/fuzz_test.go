package traces

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"insidedropbox/internal/wire"
)

// fuzzRecord deserializes the fuzzer's raw bytes into a batch of
// records: a deterministic, crash-free mapping from arbitrary input to
// arbitrary-ish field values, so the round-trip fuzzers explore the
// encoder's input space rather than the decoder's.
func fuzzRecords(data []byte) []*FlowRecord {
	if len(data) == 0 {
		return nil
	}
	// The first byte seeds a PRNG; subsequent bytes perturb fields so the
	// corpus bytes matter beyond the seed.
	rng := rand.New(rand.NewSource(int64(data[0])))
	n := 1 + len(data)/4
	if n > 300 {
		n = 300
	}
	recs := make([]*FlowRecord, 0, n)
	at := func(i int) byte {
		if len(data) == 0 {
			return 0
		}
		return data[i%len(data)]
	}
	for i := 0; i < n; i++ {
		r := randRecord(rng, i)
		r.BytesUp = int64(at(i)) << (at(i+1) % 40)
		r.PktsUp = int(at(i + 2))
		r.FirstPacket = time.Duration(int64(at(i+3))) * time.Minute
		r.LastPacket = r.FirstPacket + time.Duration(at(i+4))*time.Second
		r.Client = wire.IP(uint32(at(i))<<24 | uint32(at(i+5)))
		if at(i+6)%7 == 0 {
			r.SNI = string(data[i%len(data):][:min(len(data)-i%len(data), 40)])
		}
		recs = append(recs, r)
	}
	return recs
}

// FuzzBinaryRoundTrip drives arbitrary record batches through the
// sequential binary codec, the parallel writer, and the flate tier,
// asserting lossless round-trips and the cross-writer byte-identity
// contract.
func FuzzBinaryRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1}, uint8(1))
	f.Add([]byte("inside dropbox imc2012"), uint8(7))
	f.Add(bytes.Repeat([]byte{0xab, 0x00, 0xff}, 40), uint8(129))
	f.Fuzz(func(t *testing.T, data []byte, knobs uint8) {
		recs := fuzzRecords(data)
		anon := knobs&1 != 0
		blockRecords := 1 + int(knobs>>1) // 1..128

		var seq bytes.Buffer
		bw := NewBinaryWriter(&seq)
		bw.Anonymize = anon
		bw.BlockRecords = blockRecords
		for _, r := range recs {
			if err := bw.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}

		var par bytes.Buffer
		pw := NewParallelBinaryWriter(&par, 4)
		pw.Anonymize = anon
		pw.BlockRecords = blockRecords
		for _, r := range recs {
			if err := pw.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := pw.Flush(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seq.Bytes(), par.Bytes()) {
			t.Fatal("parallel writer output differs from sequential writer")
		}

		br := NewBinaryReader(bytes.NewReader(seq.Bytes()))
		for i, want := range recs {
			got, err := br.Read()
			if err != nil {
				t.Fatalf("record %d: %v", i, err)
			}
			checkFuzzRecord(t, i, got, want, anon)
		}
		if _, err := br.Read(); err != io.EOF {
			t.Fatalf("expected EOF, got %v", err)
		}

		var comp bytes.Buffer
		fw := NewFlateWriter(&comp, 2)
		fw.Anonymize = anon
		fw.BlockRecords = blockRecords
		for _, r := range recs {
			if err := fw.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
		fr := NewFlateReader(bytes.NewReader(comp.Bytes()))
		for i, want := range recs {
			got, err := fr.Read()
			if err != nil {
				t.Fatalf("flate record %d: %v", i, err)
			}
			checkFuzzRecord(t, i, got, want, anon)
		}
		if _, err := fr.Read(); err != io.EOF {
			t.Fatalf("flate: expected EOF, got %v", err)
		}
	})
}

// checkFuzzRecord compares a decoded record against the original,
// accounting for anonymization (client decodes to 0).
func checkFuzzRecord(t *testing.T, i int, got, want *FlowRecord, anon bool) {
	t.Helper()
	w := *normalize(want)
	if anon {
		w.Client = 0
	}
	if !reflect.DeepEqual(normalize(got), &w) {
		t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got, &w)
	}
}

// FuzzFlateFrameReader feeds arbitrary bytes to both readers: any input —
// corrupted, truncated, or valid — must produce records or a clean error,
// never a panic, hang, or unbounded allocation.
func FuzzFlateFrameReader(f *testing.F) {
	// Valid streams (so mutations explore near-valid space), plus raw junk.
	rng := rand.New(rand.NewSource(51))
	var recs []*FlowRecord
	for i := 0; i < 200; i++ {
		recs = append(recs, randRecord(rng, i))
	}
	var comp bytes.Buffer
	fw := NewFlateWriter(&comp, 1)
	fw.BlockRecords = 64
	for _, r := range recs {
		if err := fw.Write(r); err != nil {
			f.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(comp.Bytes())
	var raw bytes.Buffer
	bw := NewBinaryWriter(&raw)
	bw.BlockRecords = 64
	for _, r := range recs {
		if err := bw.Write(r); err != nil {
			f.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(raw.Bytes())
	f.Add([]byte{})
	f.Add([]byte("IDBF1\n\x00"))
	f.Add([]byte("IDBT1\n\x00"))
	f.Add([]byte("IDBF1\n\x00\x05\x03abc\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		const maxRecords = 1 << 20 // backstop against decode loops
		fr := NewFlateReader(bytes.NewReader(data))
		for n := 0; ; n++ {
			if _, err := fr.Read(); err != nil {
				break
			}
			if n > maxRecords {
				t.Fatal("flate reader yielded implausibly many records")
			}
		}
		if fr.rs != nil {
			total, err := fr.NumRecords()
			if err == nil && (total < 0 || total > maxRecords) {
				t.Fatalf("implausible NumRecords %d", total)
			}
			if err == nil && total > 0 {
				if err := fr.SeekToRecord(total / 2); err == nil {
					fr.Read()
				}
			}
		}
		br := NewBinaryReader(bytes.NewReader(data))
		for n := 0; ; n++ {
			if _, err := br.Read(); err != nil {
				break
			}
			if n > maxRecords {
				t.Fatal("binary reader yielded implausibly many records")
			}
		}
	})
}
