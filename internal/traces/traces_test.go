package traces

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"insidedropbox/internal/wire"
)

func sampleRecord() *FlowRecord {
	return &FlowRecord{
		VP:     "campus1",
		Client: wire.MakeIP(10, 1, 2, 3), Server: wire.MakeIP(184, 72, 9, 9),
		ClientPort: 40001, ServerPort: 443,
		FirstPacket: 3 * time.Second, LastPacket: 9 * time.Second,
		LastPayloadUp: 8 * time.Second, LastPayloadDown: 7 * time.Second,
		BytesUp: 123456, BytesDown: 7890,
		PktsUp: 100, PktsDown: 60, PSHUp: 4, PSHDown: 7,
		RetransUp: 1, RetransDown: 2,
		MinRTT: 92 * time.Millisecond, RTTSamples: 14,
		SNI: "dl-client9.dropbox.com", CertName: "*.dropbox.com",
		FQDN:       "dl-client9.dropbox.com",
		NotifyHost: 777, NotifyNamespaces: []uint32{1, 5, 9},
		SawSYN: true, SawFIN: true, SawRST: true, ServerClosed: true,
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rec := sampleRecord()
	if err := w.Write(rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	got, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	// Sub-microsecond RTT precision is lost by design; normalize.
	rec.MinRTT = rec.MinRTT.Truncate(time.Microsecond)
	if !reflect.DeepEqual(rec, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, rec)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestAnonymization(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Anonymize = true
	if err := w.Write(sampleRecord()); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	out := buf.String()
	if strings.Contains(out, "10.1.2.3") {
		t.Fatal("client address leaked through anonymization")
	}
	if !strings.Contains(out, "184.72.9.9") {
		t.Fatal("server address should remain (as in the public traces)")
	}
	// Stable tokens: writing twice yields the same token.
	var buf2 bytes.Buffer
	w2 := NewWriter(&buf2)
	w2.Anonymize = true
	w2.Write(sampleRecord())
	w2.Flush()
	if buf.String() != buf2.String() {
		t.Fatal("anonymization not deterministic")
	}
}

func TestDuration(t *testing.T) {
	r := sampleRecord()
	if r.Duration() != 6*time.Second {
		t.Fatalf("duration = %v", r.Duration())
	}
}

func TestManyRecords(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	const n = 500
	for i := 0; i < n; i++ {
		rec := sampleRecord()
		rec.BytesUp = int64(i)
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	r := NewReader(&buf)
	for i := 0; i < n; i++ {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.BytesUp != int64(i) {
			t.Fatalf("record %d bytes = %d", i, got.BytesUp)
		}
	}
}

func BenchmarkWrite(b *testing.B) {
	w := NewWriter(io.Discard)
	rec := sampleRecord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.Write(rec); err != nil {
			b.Fatal(err)
		}
	}
	w.Flush()
}
