package traces

// Binary columnar trace codec.
//
// The CSV format mirrors the paper's public release and stays the
// compatibility path; this file adds the performance path: a block-columnar
// binary encoding that is ~3.5x smaller on the wire (measured by the
// serialize scenarios in PERFORMANCE.md) and allocation-free on the write
// side once its per-block scratch buffers are warm (the property
// BenchmarkTraceWriteBinary pins).
//
// # Wire format
//
// A stream is a fixed header followed by zero or more length-prefixed
// blocks; the stream ends at EOF on a block boundary (no trailer):
//
//	header := magic "IDBT1\n" | flags byte (bit 0: client column anonymized)
//	block  := uvarint bodyLen | body
//	body   := uvarint n (records in block, n >= 1) | columns
//
// Columns appear in a fixed order, each run-length n. Integer columns use
// varints (unsigned fields: uvarint; signed fields: zigzag varint, written
// with encoding/binary AppendVarint). Time columns are delta-encoded:
// FirstPacket against the previous record's FirstPacket (records arrive
// roughly time-ordered, so deltas stay small), LastPacket against the
// same record's FirstPacket, and LastPayloadUp / LastPayloadDown against
// the same record's LastPacket (payload usually ends within an RTT of the
// close, so these deltas are tiny). MinRTT is stored in nanoseconds — the
// binary codec round-trips records exactly, unlike the CSV columns'
// microsecond truncation.
//
// String columns (VP, SNI, CertName, FQDN) are dictionary-encoded per
// block: a dictionary of distinct values in first-appearance order, then
// one index per record. Generated traces draw these from small interned
// sets (~520 storage SNIs, 20 notify FQDNs), so a block's dictionary is a
// few hundred bytes amortized over thousands of records. The client and
// server address columns are dictionary-encoded the same way over numeric
// values — a population block revisits the same households and the same
// ~670 service addresses over and over:
//
//	dictcol  := uvarint d | d x (uvarint len | bytes) | n x uvarint index
//	dictu64  := uvarint d | d x uvarint value         | n x uvarint index
//
// The NotifyNamespaces column stores n uvarint counts followed by the
// concatenated uvarint namespace IDs. Boolean flags pack into one byte per
// record (bit 0 SawSYN, 1 SawFIN, 2 SawRST, 3 ServerClosed).
//
// The client column's dictionary holds raw uint32 addresses, or — when
// the header's anonymize flag is set — the same stable 48-bit FNV tokens
// the CSV format prints as "h%012x". Readers of anonymized streams return
// Client == 0, matching the CSV reader's behaviour on anonymized rows.
//
// The block encoder and decoder themselves live in block.go (blockAccum /
// decodeBlockBody) and are shared verbatim with the parallel writer
// (parallel.go) and the flate archival framing (flate.go) — the framings
// differ, the block bytes never do.
//
// # Ownership
//
// BinaryWriter.Write copies everything it needs out of the record before
// returning: callers may recycle the *FlowRecord (and its
// NotifyNamespaces backing array) immediately, which is what the fleet
// engine's record pool does. BinaryReader.Read returns freshly
// allocated records that do not alias reader state.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// binaryMagic opens every binary trace stream.
var binaryMagic = [6]byte{'I', 'D', 'B', 'T', '1', '\n'}

// DefaultBlockRecords is the records-per-block target of the binary
// writer: large enough to amortize dictionaries and length prefixes,
// small enough that readers never hold more than a few MB per block.
const DefaultBlockRecords = 4096

const anonFlag = 1 << 0

// BinaryWriter streams flow records in the binary columnar format.
// Methods must not be called concurrently. Records are buffered into
// blocks of BlockRecords and hit the underlying writer on block
// boundaries and Flush.
type BinaryWriter struct {
	w io.Writer
	// Anonymize replaces client addresses with the stable 48-bit tokens of
	// the CSV format. It must be set before the first Write.
	Anonymize bool
	// BlockRecords overrides the records-per-block target (0 means
	// DefaultBlockRecords). It must be set before the first Write.
	BlockRecords int

	wroteHeader bool
	err         error

	acc blockAccum // block under construction; storage reused
	buf []byte     // block encode scratch
}

// NewBinaryWriter wraps w.
func NewBinaryWriter(w io.Writer) *BinaryWriter { return &BinaryWriter{w: w} }

func (w *BinaryWriter) blockTarget() int {
	if w.BlockRecords > 0 {
		return w.BlockRecords
	}
	return DefaultBlockRecords
}

// writeBinaryHeader emits the 7-byte stream header.
func writeBinaryHeader(w io.Writer, anonymize bool) error {
	var hdr [7]byte
	copy(hdr[:], binaryMagic[:])
	if anonymize {
		hdr[6] |= anonFlag
	}
	_, err := w.Write(hdr[:])
	return err
}

// writeHeader emits the stream header once.
func (w *BinaryWriter) writeHeader() error {
	if w.wroteHeader || w.err != nil {
		return w.err
	}
	if err := writeBinaryHeader(w.w, w.Anonymize); err != nil {
		w.err = err
		return err
	}
	w.wroteHeader = true
	return nil
}

// Write buffers one record; nothing in r is retained after return.
func (w *BinaryWriter) Write(r *FlowRecord) error {
	if err := w.writeHeader(); err != nil {
		return err
	}
	w.acc.add(r, w.Anonymize)
	if w.acc.n >= w.blockTarget() {
		return w.flushBlock()
	}
	return nil
}

// flushBlock encodes the buffered records as one block and writes it.
func (w *BinaryWriter) flushBlock() error {
	if w.err != nil {
		return w.err
	}
	if w.acc.n == 0 {
		return nil
	}
	// Reserve prefix room up front, encode the body after it, then write
	// the length just before the body start — one Write per block, so an
	// unbuffered underlying writer sees one syscall per block.
	const pfxReserve = binary.MaxVarintLen64
	if cap(w.buf) < pfxReserve {
		w.buf = make([]byte, pfxReserve)
	}
	body := w.acc.encodeBody(w.buf[:pfxReserve])
	w.buf = body // keep the grown scratch

	var pfx [binary.MaxVarintLen64]byte
	np := binary.PutUvarint(pfx[:], uint64(len(body)-pfxReserve))
	start := pfxReserve - np
	copy(body[start:], pfx[:np])
	if _, err := w.w.Write(body[start:]); err != nil {
		w.err = err
		return err
	}
	mBinBlocks.Inc()
	mBinRecords.Add(uint64(w.acc.n))
	mBinBytes.Add(uint64(len(body) - start))
	w.acc.reset()
	return nil
}

// Flush writes any partially filled block — and the stream header, so a
// zero-record export is a valid (empty) stream, not an empty file. The
// stream remains appendable: a flushed partial block is simply a smaller
// block.
func (w *BinaryWriter) Flush() error {
	if err := w.writeHeader(); err != nil {
		return err
	}
	if err := w.flushBlock(); err != nil {
		return err
	}
	return w.err
}

// readExact reads exactly n bytes from r, reusing scratch when it is
// large enough and otherwise growing the buffer incrementally while the
// bytes actually arrive — so a corrupt multi-GB length prefix costs a
// read error, not a multi-GB up-front allocation (the fuzz targets hit
// exactly that). The returned slice aliases scratch when possible.
func readExact(r io.Reader, scratch []byte, n int) ([]byte, error) {
	if cap(scratch) >= n {
		b := scratch[:n]
		_, err := io.ReadFull(r, b)
		return b, err
	}
	const chunk = 1 << 20
	b := scratch[:0]
	for len(b) < n {
		take := min(n-len(b), chunk)
		off := len(b)
		b = append(b, make([]byte, take)...)
		if _, err := io.ReadFull(r, b[off:off+take]); err != nil {
			return b, err
		}
	}
	return b, nil
}

// BinaryReader parses a binary columnar trace stream back into records.
type BinaryReader struct {
	r      *bufio.Reader
	header bool
	anon   bool
	err    error

	recs []*FlowRecord // decoded records of the current block
	next int

	body []byte          // block read scratch
	sc   blockDecScratch // dictionary decode scratch
}

// NewBinaryReader wraps r.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return &BinaryReader{r: bufio.NewReader(r)}
}

// Anonymized reports whether the stream's client column is anonymized
// (meaningful after the first Read).
func (r *BinaryReader) Anonymized() bool { return r.anon }

// readBinaryHeader consumes and validates the 7-byte stream header,
// returning the anonymize flag.
func readBinaryHeader(br *bufio.Reader) (anon bool, err error) {
	var hdr [7]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = io.ErrUnexpectedEOF
		}
		return false, fmt.Errorf("traces: reading binary header: %w", err)
	}
	if [6]byte(hdr[:6]) != binaryMagic {
		return false, errors.New("traces: not a binary trace stream (bad magic)")
	}
	return hdr[6]&anonFlag != 0, nil
}

// Read returns the next record, or io.EOF at end of stream. Returned
// records are freshly allocated and do not alias reader state.
func (r *BinaryReader) Read() (*FlowRecord, error) {
	if r.err != nil {
		return nil, r.err
	}
	if !r.header {
		anon, err := readBinaryHeader(r.r)
		if err != nil {
			r.err = err
			return nil, r.err
		}
		r.anon = anon
		r.header = true
	}
	for r.next >= len(r.recs) {
		if err := r.readBlock(); err != nil {
			r.err = err
			return nil, err
		}
	}
	rec := r.recs[r.next]
	r.recs[r.next] = nil
	r.next++
	return rec, nil
}

// readBlock decodes the next block into r.recs.
func (r *BinaryReader) readBlock() error {
	bodyLen, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("traces: reading block length: %w", err)
	}
	if bodyLen == 0 || bodyLen > 1<<31 {
		return fmt.Errorf("traces: implausible block length %d", bodyLen)
	}
	body, err := readExact(r.r, r.body, int(bodyLen))
	r.body = body[:0]
	if err != nil {
		return fmt.Errorf("traces: reading block body: %w", err)
	}
	recs, err := decodeBlockBody(body, r.anon, &r.sc)
	if err != nil {
		return err
	}
	r.recs = recs
	r.next = 0
	return nil
}
