package traces

// Binary columnar trace codec.
//
// The CSV format mirrors the paper's public release and stays the
// compatibility path; this file adds the performance path: a block-columnar
// binary encoding that is ~3.5x smaller on the wire (measured by the
// serialize scenarios in PERFORMANCE.md) and allocation-free on the write
// side once its per-block scratch buffers are warm (the property
// BenchmarkTraceWriteBinary pins).
//
// # Wire format
//
// A stream is a fixed header followed by zero or more length-prefixed
// blocks; the stream ends at EOF on a block boundary (no trailer):
//
//	header := magic "IDBT1\n" | flags byte (bit 0: client column anonymized)
//	block  := uvarint bodyLen | body
//	body   := uvarint n (records in block, n >= 1) | columns
//
// Columns appear in a fixed order, each run-length n. Integer columns use
// varints (unsigned fields: uvarint; signed fields: zigzag varint, written
// with encoding/binary AppendVarint). Time columns are delta-encoded:
// FirstPacket against the previous record's FirstPacket (records arrive
// roughly time-ordered, so deltas stay small), LastPacket against the
// same record's FirstPacket, and LastPayloadUp / LastPayloadDown against
// the same record's LastPacket (payload usually ends within an RTT of the
// close, so these deltas are tiny). MinRTT is stored in nanoseconds — the
// binary codec round-trips records exactly, unlike the CSV columns'
// microsecond truncation.
//
// String columns (VP, SNI, CertName, FQDN) are dictionary-encoded per
// block: a dictionary of distinct values in first-appearance order, then
// one index per record. Generated traces draw these from small interned
// sets (~520 storage SNIs, 20 notify FQDNs), so a block's dictionary is a
// few hundred bytes amortized over thousands of records. The client and
// server address columns are dictionary-encoded the same way over numeric
// values — a population block revisits the same households and the same
// ~670 service addresses over and over:
//
//	dictcol  := uvarint d | d x (uvarint len | bytes) | n x uvarint index
//	dictu64  := uvarint d | d x uvarint value         | n x uvarint index
//
// The NotifyNamespaces column stores n uvarint counts followed by the
// concatenated uvarint namespace IDs. Boolean flags pack into one byte per
// record (bit 0 SawSYN, 1 SawFIN, 2 SawRST, 3 ServerClosed).
//
// The client column's dictionary holds raw uint32 addresses, or — when
// the header's anonymize flag is set — the same stable 48-bit FNV tokens
// the CSV format prints as "h%012x". Readers of anonymized streams return
// Client == 0, matching the CSV reader's behaviour on anonymized rows.
//
// # Ownership
//
// BinaryWriter.Write copies everything it needs out of the record before
// returning: callers may recycle the *FlowRecord (and its
// NotifyNamespaces backing array) immediately, which is what the fleet
// engine's record pool does. Retained string fields are immutable Go
// strings, so sharing them is safe. BinaryReader.Read returns freshly
// allocated records that do not alias reader state.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"insidedropbox/internal/wire"
)

// binaryMagic opens every binary trace stream.
var binaryMagic = [6]byte{'I', 'D', 'B', 'T', '1', '\n'}

// DefaultBlockRecords is the records-per-block target of the binary
// writer: large enough to amortize dictionaries and length prefixes,
// small enough that readers never hold more than a few MB per block.
const DefaultBlockRecords = 4096

const anonFlag = 1 << 0

// dictCol accumulates one dictionary-encoded string column for the block
// being built. All storage is reused across blocks.
type dictCol struct {
	idx     map[string]uint32
	entries []string
	refs    []uint32
}

func (d *dictCol) add(s string) {
	if d.idx == nil {
		d.idx = make(map[string]uint32)
	}
	i, ok := d.idx[s]
	if !ok {
		i = uint32(len(d.entries))
		d.idx[s] = i
		d.entries = append(d.entries, s)
	}
	d.refs = append(d.refs, i)
}

func (d *dictCol) reset() {
	clear(d.idx)
	d.entries = d.entries[:0]
	d.refs = d.refs[:0]
}

func (d *dictCol) encode(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(d.entries)))
	for _, s := range d.entries {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	for _, r := range d.refs {
		buf = binary.AppendUvarint(buf, uint64(r))
	}
	return buf
}

// dictU64 is dictCol over numeric values (the address columns).
type dictU64 struct {
	idx     map[uint64]uint32
	entries []uint64
	refs    []uint32
}

func (d *dictU64) add(v uint64) {
	if d.idx == nil {
		d.idx = make(map[uint64]uint32)
	}
	i, ok := d.idx[v]
	if !ok {
		i = uint32(len(d.entries))
		d.idx[v] = i
		d.entries = append(d.entries, v)
	}
	d.refs = append(d.refs, i)
}

func (d *dictU64) reset() {
	clear(d.idx)
	d.entries = d.entries[:0]
	d.refs = d.refs[:0]
}

func (d *dictU64) encode(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(d.entries)))
	for _, v := range d.entries {
		buf = binary.AppendUvarint(buf, v)
	}
	for _, r := range d.refs {
		buf = binary.AppendUvarint(buf, uint64(r))
	}
	return buf
}

// BinaryWriter streams flow records in the binary columnar format.
// Methods must not be called concurrently. Records are buffered into
// blocks of BlockRecords and hit the underlying writer on block
// boundaries and Flush.
type BinaryWriter struct {
	w io.Writer
	// Anonymize replaces client addresses with the stable 48-bit tokens of
	// the CSV format. It must be set before the first Write.
	Anonymize bool
	// BlockRecords overrides the records-per-block target (0 means
	// DefaultBlockRecords). It must be set before the first Write.
	BlockRecords int

	wroteHeader bool
	err         error
	n           int

	// Column accumulators for the block under construction; all reused.
	client, server     dictU64
	cport, sport       []uint64
	first, last        []int64
	lpUp, lpDown       []int64
	bytesUp, bytesDown []int64
	pktsUp, pktsDown   []int64
	pshUp, pshDown     []int64
	retrUp, retrDown   []int64
	minRTT, rttSamples []int64
	notifyHost         []uint64
	nsCount            []uint64
	nsVals             []uint64
	flags              []byte
	vp, sni, cert      dictCol
	fqdn               dictCol

	buf []byte // block encode scratch
}

// NewBinaryWriter wraps w.
func NewBinaryWriter(w io.Writer) *BinaryWriter { return &BinaryWriter{w: w} }

func (w *BinaryWriter) blockTarget() int {
	if w.BlockRecords > 0 {
		return w.BlockRecords
	}
	return DefaultBlockRecords
}

// writeHeader emits the stream header once.
func (w *BinaryWriter) writeHeader() error {
	if w.wroteHeader || w.err != nil {
		return w.err
	}
	var hdr [7]byte
	copy(hdr[:], binaryMagic[:])
	if w.Anonymize {
		hdr[6] |= anonFlag
	}
	if _, err := w.w.Write(hdr[:]); err != nil {
		w.err = err
		return err
	}
	w.wroteHeader = true
	return nil
}

// Write buffers one record; nothing in r is retained after return.
func (w *BinaryWriter) Write(r *FlowRecord) error {
	if err := w.writeHeader(); err != nil {
		return err
	}
	if w.Anonymize {
		w.client.add(anonToken(r.Client))
	} else {
		w.client.add(uint64(uint32(r.Client)))
	}
	w.server.add(uint64(uint32(r.Server)))
	w.cport = append(w.cport, uint64(r.ClientPort))
	w.sport = append(w.sport, uint64(r.ServerPort))
	w.first = append(w.first, int64(r.FirstPacket))
	w.last = append(w.last, int64(r.LastPacket-r.FirstPacket))
	w.lpUp = append(w.lpUp, int64(r.LastPayloadUp-r.LastPacket))
	w.lpDown = append(w.lpDown, int64(r.LastPayloadDown-r.LastPacket))
	w.bytesUp = append(w.bytesUp, r.BytesUp)
	w.bytesDown = append(w.bytesDown, r.BytesDown)
	w.pktsUp = append(w.pktsUp, int64(r.PktsUp))
	w.pktsDown = append(w.pktsDown, int64(r.PktsDown))
	w.pshUp = append(w.pshUp, int64(r.PSHUp))
	w.pshDown = append(w.pshDown, int64(r.PSHDown))
	w.retrUp = append(w.retrUp, int64(r.RetransUp))
	w.retrDown = append(w.retrDown, int64(r.RetransDown))
	w.minRTT = append(w.minRTT, int64(r.MinRTT))
	w.rttSamples = append(w.rttSamples, int64(r.RTTSamples))
	w.notifyHost = append(w.notifyHost, r.NotifyHost)
	w.nsCount = append(w.nsCount, uint64(len(r.NotifyNamespaces)))
	for _, ns := range r.NotifyNamespaces {
		w.nsVals = append(w.nsVals, uint64(ns))
	}
	var fl byte
	if r.SawSYN {
		fl |= 1 << 0
	}
	if r.SawFIN {
		fl |= 1 << 1
	}
	if r.SawRST {
		fl |= 1 << 2
	}
	if r.ServerClosed {
		fl |= 1 << 3
	}
	w.flags = append(w.flags, fl)
	w.vp.add(r.VP)
	w.sni.add(r.SNI)
	w.cert.add(r.CertName)
	w.fqdn.add(r.FQDN)
	w.n++
	if w.n >= w.blockTarget() {
		return w.flushBlock()
	}
	return nil
}

// flushBlock encodes the buffered records as one block and writes it.
func (w *BinaryWriter) flushBlock() error {
	if w.err != nil {
		return w.err
	}
	if w.n == 0 {
		return nil
	}
	// Reserve prefix room up front, encode the body after it, then write
	// the length just before the body start — one Write per block, so an
	// unbuffered underlying writer sees one syscall per block.
	const pfxReserve = binary.MaxVarintLen64
	if cap(w.buf) < pfxReserve {
		w.buf = make([]byte, pfxReserve)
	}
	buf := w.buf[:pfxReserve]
	body := binary.AppendUvarint(buf, uint64(w.n))
	body = w.client.encode(body)
	body = w.server.encode(body)
	for _, v := range w.cport {
		body = binary.AppendUvarint(body, v)
	}
	for _, v := range w.sport {
		body = binary.AppendUvarint(body, v)
	}
	prev := int64(0)
	for _, v := range w.first {
		body = binary.AppendVarint(body, v-prev)
		prev = v
	}
	for _, v := range w.last {
		body = binary.AppendVarint(body, v)
	}
	for _, v := range w.lpUp {
		body = binary.AppendVarint(body, v)
	}
	for _, v := range w.lpDown {
		body = binary.AppendVarint(body, v)
	}
	for _, col := range [...][]int64{
		w.bytesUp, w.bytesDown, w.pktsUp, w.pktsDown,
		w.pshUp, w.pshDown, w.retrUp, w.retrDown,
		w.minRTT, w.rttSamples,
	} {
		for _, v := range col {
			body = binary.AppendVarint(body, v)
		}
	}
	body = w.vp.encode(body)
	body = w.sni.encode(body)
	body = w.cert.encode(body)
	body = w.fqdn.encode(body)
	for _, v := range w.notifyHost {
		body = binary.AppendUvarint(body, v)
	}
	for _, v := range w.nsCount {
		body = binary.AppendUvarint(body, v)
	}
	for _, v := range w.nsVals {
		body = binary.AppendUvarint(body, v)
	}
	body = append(body, w.flags...)
	w.buf = body // keep the grown scratch

	var pfx [binary.MaxVarintLen64]byte
	np := binary.PutUvarint(pfx[:], uint64(len(body)-pfxReserve))
	start := pfxReserve - np
	copy(body[start:], pfx[:np])
	if _, err := w.w.Write(body[start:]); err != nil {
		w.err = err
		return err
	}
	mBinBlocks.Inc()
	mBinRecords.Add(uint64(w.n))
	mBinBytes.Add(uint64(len(body) - start))
	w.resetBlock()
	return nil
}

func (w *BinaryWriter) resetBlock() {
	w.n = 0
	w.client.reset()
	w.server.reset()
	w.cport = w.cport[:0]
	w.sport = w.sport[:0]
	w.first = w.first[:0]
	w.last = w.last[:0]
	w.lpUp = w.lpUp[:0]
	w.lpDown = w.lpDown[:0]
	w.bytesUp = w.bytesUp[:0]
	w.bytesDown = w.bytesDown[:0]
	w.pktsUp = w.pktsUp[:0]
	w.pktsDown = w.pktsDown[:0]
	w.pshUp = w.pshUp[:0]
	w.pshDown = w.pshDown[:0]
	w.retrUp = w.retrUp[:0]
	w.retrDown = w.retrDown[:0]
	w.minRTT = w.minRTT[:0]
	w.rttSamples = w.rttSamples[:0]
	w.notifyHost = w.notifyHost[:0]
	w.nsCount = w.nsCount[:0]
	w.nsVals = w.nsVals[:0]
	w.flags = w.flags[:0]
	w.vp.reset()
	w.sni.reset()
	w.cert.reset()
	w.fqdn.reset()
}

// Flush writes any partially filled block — and the stream header, so a
// zero-record export is a valid (empty) stream, not an empty file. The
// stream remains appendable: a flushed partial block is simply a smaller
// block.
func (w *BinaryWriter) Flush() error {
	if err := w.writeHeader(); err != nil {
		return err
	}
	if err := w.flushBlock(); err != nil {
		return err
	}
	return w.err
}

// bdec is a cursor over one decoded block body.
type bdec struct {
	b   []byte
	off int
	err error
}

func (d *bdec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.err = errors.New("traces: corrupt binary block (uvarint)")
		return 0
	}
	d.off += n
	return v
}

func (d *bdec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.err = errors.New("traces: corrupt binary block (varint)")
		return 0
	}
	d.off += n
	return v
}

func (d *bdec) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	// n comes straight from an untrusted uvarint: compare against the
	// remaining length by subtraction so a huge n cannot overflow the
	// check and panic the slice below.
	if n < 0 || n > len(d.b)-d.off {
		d.err = errors.New("traces: corrupt binary block (bytes)")
		return nil
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b
}

// dictU64Vals decodes a numeric dictionary column into one value per
// record, using (and returning) the caller's entry scratch.
func (d *bdec) dictU64Vals(n int, scratch []uint64) (vals, entries []uint64) {
	dl := int(d.uvarint())
	if d.err != nil || dl > len(d.b) {
		if d.err == nil {
			d.err = errors.New("traces: corrupt binary block (u64 dict)")
		}
		return nil, scratch
	}
	entries = scratch[:0]
	for i := 0; i < dl; i++ {
		entries = append(entries, d.uvarint())
	}
	vals = make([]uint64, n)
	for i := range vals {
		ref := d.uvarint()
		if d.err != nil {
			return nil, entries
		}
		if ref >= uint64(len(entries)) {
			d.err = errors.New("traces: corrupt binary block (u64 dict ref)")
			return nil, entries
		}
		vals[i] = entries[ref]
	}
	return vals, entries
}

func (d *bdec) dict(n int, scratch []string) ([]string, []string) {
	dl := int(d.uvarint())
	if d.err != nil || dl > len(d.b) {
		if d.err == nil {
			d.err = errors.New("traces: corrupt binary block (dict)")
		}
		return nil, scratch
	}
	entries := scratch[:0]
	for i := 0; i < dl; i++ {
		entries = append(entries, string(d.bytes(int(d.uvarint()))))
	}
	vals := make([]string, n)
	for i := range vals {
		ref := d.uvarint()
		if d.err != nil {
			return nil, entries
		}
		if ref >= uint64(len(entries)) {
			d.err = errors.New("traces: corrupt binary block (dict ref)")
			return nil, entries
		}
		vals[i] = entries[ref]
	}
	return vals, entries
}

// BinaryReader parses a binary columnar trace stream back into records.
type BinaryReader struct {
	r      *bufio.Reader
	header bool
	anon   bool
	err    error

	recs []*FlowRecord // decoded records of the current block
	next int

	body    []byte   // block read scratch
	scratch []string // string dict decode scratch
	u64s    []uint64 // numeric dict decode scratch
}

// NewBinaryReader wraps r.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return &BinaryReader{r: bufio.NewReader(r)}
}

// Anonymized reports whether the stream's client column is anonymized
// (meaningful after the first Read).
func (r *BinaryReader) Anonymized() bool { return r.anon }

// Read returns the next record, or io.EOF at end of stream. Returned
// records are freshly allocated and do not alias reader state.
func (r *BinaryReader) Read() (*FlowRecord, error) {
	if r.err != nil {
		return nil, r.err
	}
	if !r.header {
		var hdr [7]byte
		if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				err = io.ErrUnexpectedEOF
			}
			r.err = fmt.Errorf("traces: reading binary header: %w", err)
			return nil, r.err
		}
		if [6]byte(hdr[:6]) != binaryMagic {
			r.err = errors.New("traces: not a binary trace stream (bad magic)")
			return nil, r.err
		}
		r.anon = hdr[6]&anonFlag != 0
		r.header = true
	}
	for r.next >= len(r.recs) {
		if err := r.readBlock(); err != nil {
			r.err = err
			return nil, err
		}
	}
	rec := r.recs[r.next]
	r.recs[r.next] = nil
	r.next++
	return rec, nil
}

// readBlock decodes the next block into r.recs.
func (r *BinaryReader) readBlock() error {
	bodyLen, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("traces: reading block length: %w", err)
	}
	if bodyLen == 0 || bodyLen > 1<<31 {
		return fmt.Errorf("traces: implausible block length %d", bodyLen)
	}
	if cap(r.body) < int(bodyLen) {
		r.body = make([]byte, bodyLen)
	}
	body := r.body[:bodyLen]
	if _, err := io.ReadFull(r.r, body); err != nil {
		return fmt.Errorf("traces: reading block body: %w", err)
	}
	d := &bdec{b: body}
	n := int(d.uvarint())
	if d.err != nil {
		return d.err
	}
	if n <= 0 || n > int(bodyLen) {
		return fmt.Errorf("traces: implausible block record count %d", n)
	}
	recs := make([]*FlowRecord, n)
	backing := make([]FlowRecord, n)
	for i := range recs {
		recs[i] = &backing[i]
	}
	var clients, servers []uint64
	clients, r.u64s = d.dictU64Vals(n, r.u64s)
	if !r.anon && clients != nil {
		for i := range recs {
			recs[i].Client = wire.IP(uint32(clients[i]))
		}
	}
	servers, r.u64s = d.dictU64Vals(n, r.u64s)
	for i := range recs {
		if servers != nil {
			recs[i].Server = wire.IP(uint32(servers[i]))
		}
	}
	for i := range recs {
		recs[i].ClientPort = uint16(d.uvarint())
	}
	for i := range recs {
		recs[i].ServerPort = uint16(d.uvarint())
	}
	prev := int64(0)
	for i := range recs {
		prev += d.varint()
		recs[i].FirstPacket = time.Duration(prev)
	}
	for i := range recs {
		recs[i].LastPacket = recs[i].FirstPacket + time.Duration(d.varint())
	}
	for i := range recs {
		recs[i].LastPayloadUp = recs[i].LastPacket + time.Duration(d.varint())
	}
	for i := range recs {
		recs[i].LastPayloadDown = recs[i].LastPacket + time.Duration(d.varint())
	}
	for i := range recs {
		recs[i].BytesUp = d.varint()
	}
	for i := range recs {
		recs[i].BytesDown = d.varint()
	}
	for i := range recs {
		recs[i].PktsUp = int(d.varint())
	}
	for i := range recs {
		recs[i].PktsDown = int(d.varint())
	}
	for i := range recs {
		recs[i].PSHUp = int(d.varint())
	}
	for i := range recs {
		recs[i].PSHDown = int(d.varint())
	}
	for i := range recs {
		recs[i].RetransUp = int(d.varint())
	}
	for i := range recs {
		recs[i].RetransDown = int(d.varint())
	}
	for i := range recs {
		recs[i].MinRTT = time.Duration(d.varint())
	}
	for i := range recs {
		recs[i].RTTSamples = int(d.varint())
	}
	var vals []string
	vals, r.scratch = d.dict(n, r.scratch)
	for i := range recs {
		if vals != nil {
			recs[i].VP = vals[i]
		}
	}
	vals, r.scratch = d.dict(n, r.scratch)
	for i := range recs {
		if vals != nil {
			recs[i].SNI = vals[i]
		}
	}
	vals, r.scratch = d.dict(n, r.scratch)
	for i := range recs {
		if vals != nil {
			recs[i].CertName = vals[i]
		}
	}
	vals, r.scratch = d.dict(n, r.scratch)
	for i := range recs {
		if vals != nil {
			recs[i].FQDN = vals[i]
		}
	}
	for i := range recs {
		recs[i].NotifyHost = d.uvarint()
	}
	counts := make([]int, n)
	for i := range counts {
		counts[i] = int(d.uvarint())
		if d.err == nil && counts[i] > int(bodyLen) {
			d.err = errors.New("traces: corrupt binary block (ns count)")
		}
	}
	for i := range recs {
		if c := counts[i]; c > 0 && d.err == nil {
			ns := make([]uint32, c)
			for j := range ns {
				ns[j] = uint32(d.uvarint())
			}
			recs[i].NotifyNamespaces = ns
		}
	}
	flags := d.bytes(n)
	if d.err != nil {
		return d.err
	}
	for i, fl := range flags {
		recs[i].SawSYN = fl&(1<<0) != 0
		recs[i].SawFIN = fl&(1<<1) != 0
		recs[i].SawRST = fl&(1<<2) != 0
		recs[i].ServerClosed = fl&(1<<3) != 0
	}
	if d.off != len(body) {
		return fmt.Errorf("traces: %d trailing bytes in block", len(body)-d.off)
	}
	r.recs = recs
	r.next = 0
	return nil
}
