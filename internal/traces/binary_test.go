package traces

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"insidedropbox/internal/wire"
)

// randRecord draws one randomized record; the namespace shape cycles
// through the edge cases (nil, empty-but-allocated, single, long).
func randRecord(rng *rand.Rand, i int) *FlowRecord {
	r := &FlowRecord{
		VP:         fmt.Sprintf("vp%d", rng.Intn(4)),
		Client:     wire.IP(rng.Uint32()),
		Server:     wire.IP(rng.Uint32()),
		ClientPort: uint16(rng.Intn(1 << 16)),
		ServerPort: uint16(rng.Intn(1 << 16)),

		FirstPacket:  time.Duration(rng.Int63n(int64(42 * 24 * time.Hour))),
		BytesUp:      rng.Int63n(1 << 40),
		BytesDown:    rng.Int63n(1 << 40),
		PktsUp:       rng.Intn(1 << 20),
		PktsDown:     rng.Intn(1 << 20),
		PSHUp:        rng.Intn(200),
		PSHDown:      rng.Intn(200),
		RetransUp:    rng.Intn(50),
		RetransDown:  rng.Intn(50),
		MinRTT:       time.Duration(rng.Int63n(int64(time.Second))),
		RTTSamples:   rng.Intn(1000),
		SNI:          []string{"", "dl-client77.dropbox.com", "client-lb.dropbox.com"}[rng.Intn(3)],
		CertName:     []string{"", "*.dropbox.com"}[rng.Intn(2)],
		FQDN:         []string{"", "notify3.dropbox.com", "dl.dropbox.com"}[rng.Intn(3)],
		NotifyHost:   uint64(rng.Int63()),
		SawSYN:       rng.Intn(2) == 0,
		SawFIN:       rng.Intn(2) == 0,
		SawRST:       rng.Intn(2) == 0,
		ServerClosed: rng.Intn(2) == 0,
	}
	r.LastPacket = r.FirstPacket + time.Duration(rng.Int63n(int64(time.Hour)))
	r.LastPayloadUp = r.FirstPacket + time.Duration(rng.Int63n(int64(time.Hour)))
	r.LastPayloadDown = r.FirstPacket + time.Duration(rng.Int63n(int64(time.Hour)))
	switch i % 4 {
	case 0: // nil namespaces
	case 1:
		r.NotifyNamespaces = []uint32{}
	case 2:
		r.NotifyNamespaces = []uint32{rng.Uint32()}
	case 3:
		ns := make([]uint32, 1+rng.Intn(40))
		for j := range ns {
			ns[j] = rng.Uint32()
		}
		r.NotifyNamespaces = ns
	}
	return r
}

// normalize maps the serialization-equivalent forms onto one canonical
// record: both codecs decode an absent namespace list as nil.
func normalize(r *FlowRecord) *FlowRecord {
	c := *r
	if len(c.NotifyNamespaces) == 0 {
		c.NotifyNamespaces = nil
	}
	return &c
}

func TestBinaryRoundTripRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var recs []*FlowRecord
	for i := 0; i < 10_000; i++ {
		recs = append(recs, randRecord(rng, i))
	}
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	bw.BlockRecords = 257 // force many blocks, including a partial tail
	for _, r := range recs {
		if err := bw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := NewBinaryReader(&buf)
	for i, want := range recs {
		got, err := br.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(want)) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if _, err := br.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestBinaryCSVEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var recs []*FlowRecord
	for i := 0; i < 2_000; i++ {
		r := randRecord(rng, i)
		// CSV's text IP column cannot represent every uint32 losslessly
		// only because anonymization replaces it; use clear-mode writers
		// here and normalize MinRTT to CSV's microsecond resolution.
		recs = append(recs, r)
	}
	var cbuf, bbuf bytes.Buffer
	cw, bw := NewWriter(&cbuf), NewBinaryWriter(&bbuf)
	for _, r := range recs {
		if err := cw.Write(r); err != nil {
			t.Fatal(err)
		}
		if err := bw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	cr, br := NewReader(&cbuf), NewBinaryReader(&bbuf)
	for i := range recs {
		fromCSV, err := cr.Read()
		if err != nil {
			t.Fatalf("csv record %d: %v", i, err)
		}
		fromBin, err := br.Read()
		if err != nil {
			t.Fatalf("binary record %d: %v", i, err)
		}
		// The binary codec is exact; CSV truncates MinRTT to microseconds.
		// Truncate the binary copy the same way, then demand equality.
		fromBin.MinRTT = fromBin.MinRTT.Truncate(time.Microsecond)
		if !reflect.DeepEqual(normalize(fromBin), normalize(fromCSV)) {
			t.Fatalf("record %d: csv and binary decode differently:\n csv %+v\n bin %+v",
				i, fromCSV, fromBin)
		}
	}
}

func TestBinaryAnonymized(t *testing.T) {
	rec := sampleRecord()
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	bw.Anonymize = true
	if err := bw.Write(rec); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := NewBinaryReader(&buf)
	got, err := br.Read()
	if err != nil {
		t.Fatal(err)
	}
	if !br.Anonymized() {
		t.Fatal("reader did not detect the anonymize flag")
	}
	if got.Client != 0 {
		t.Fatalf("anonymized stream leaked client %v", got.Client)
	}
	got.Client = rec.Client // rest must survive
	if !reflect.DeepEqual(normalize(got), normalize(rec)) {
		t.Fatalf("anonymized round trip mangled non-client fields:\n got %+v\nwant %+v", got, rec)
	}
}

// TestAnonTokenMatchesFNVReference pins the hand-rolled FNV-1a token to the
// standard library implementation: the anonymization tokens in published
// CSV traces must never change.
func TestAnonTokenMatchesFNVReference(t *testing.T) {
	for _, ip := range []wire.IP{0, wire.MakeIP(10, 0, 0, 1), wire.MakeIP(10, 199, 249, 249), wire.IP(0xffffffff)} {
		h := fnv.New64a()
		fmt.Fprintf(h, "anon-%d", uint32(ip))
		want := h.Sum64() & 0xffffffffffff
		if got := anonToken(ip); got != want {
			t.Fatalf("anonToken(%v) = %x, want %x", ip, got, want)
		}
	}
}

func TestBinaryEmptyStream(t *testing.T) {
	// A zero-record export is a valid stream: Flush writes the header, and
	// a reader gets clean io.EOF (matching an empty CSV export).
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 7 {
		t.Fatalf("empty flush wrote %d bytes, want the 7-byte header", buf.Len())
	}
	br := NewBinaryReader(bytes.NewReader(buf.Bytes()))
	if _, err := br.Read(); err != io.EOF {
		t.Fatalf("empty stream: want io.EOF, got %v", err)
	}
	// The stream stays appendable after an empty flush.
	if err := bw.Write(sampleRecord()); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br = NewBinaryReader(&buf)
	if _, err := br.Read(); err != nil {
		t.Fatal(err)
	}
	if _, err := br.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestBinaryWriteAllocationFree(t *testing.T) {
	rec := sampleRecord()
	bw := NewBinaryWriter(io.Discard)
	// Warm the scratch buffers across a full block cycle.
	for i := 0; i < 2*DefaultBlockRecords; i++ {
		if err := bw.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(2*DefaultBlockRecords, func() {
		if err := bw.Write(rec); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.01 {
		t.Fatalf("steady-state binary Write allocates %.3f objects/record, want 0", allocs)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	br := NewBinaryReader(bytes.NewReader([]byte("vp,client,server\nnot,binary,data\n")))
	if _, err := br.Read(); err == nil {
		t.Fatal("reader accepted a CSV stream as binary")
	}
}

// TestBinaryRejectsHugeDictLength pins the overflow-safe bounds check: a
// crafted entry-length uvarint near MaxInt64 must surface as a corruption
// error, never a slice-bounds panic.
func TestBinaryRejectsHugeDictLength(t *testing.T) {
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	if err := bw.Write(sampleRecord()); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Find the VP dictionary's entry-length byte and blow it up into a
	// 9-byte maximal uvarint by rewriting the tail of the stream. Easier
	// and just as effective: corrupt every byte position and demand no
	// panic escapes the reader.
	for i := 7; i < len(data); i++ {
		for _, b := range []byte{0xff, 0x80, 0x7f} {
			mut := append([]byte(nil), data...)
			mut[i] = b
			br := NewBinaryReader(bytes.NewReader(mut))
			for {
				if _, err := br.Read(); err != nil {
					break // io.EOF or a corruption error — both fine
				}
			}
		}
	}
}

// TestBinaryBadMagic pins the header validation error.
func TestBinaryBadMagic(t *testing.T) {
	br := NewBinaryReader(bytes.NewReader([]byte("IDBX9\n\x00rest")))
	if _, err := br.Read(); err == nil || err == io.EOF {
		t.Fatalf("bad magic should fail, got %v", err)
	}
}

// TestBinaryTruncated cuts a valid stream at every interesting boundary:
// inside the header, inside a block length, and inside a block body. A
// truncated stream must end in an error, never clean EOF or a panic.
func TestBinaryTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	bw.BlockRecords = 100
	for i := 0; i < 500; i++ {
		if err := bw.Write(randRecord(rng, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()
	for _, cut := range []int{0, 1, 6, 8, 9, 40, len(stream) / 2, len(stream) - 1} {
		br := NewBinaryReader(bytes.NewReader(stream[:cut]))
		var err error
		for {
			if _, err = br.Read(); err != nil {
				break
			}
		}
		if err == io.EOF {
			t.Fatalf("cut=%d: truncated stream read to clean EOF", cut)
		}
	}
}

// TestBinaryDictIndexOutOfRange rewrites a block so a record references a
// dictionary entry past the dictionary's end; the decoder must reject it.
func TestBinaryDictIndexOutOfRange(t *testing.T) {
	// Hand-assemble a minimal block body: 1 record whose VP dictionary
	// holds one entry but whose index column says entry 5.
	body := []byte{1}            // n = 1
	body = append(body, 1, 1)    // client dict: 1 entry, value 1
	body = append(body, 0)       // client index[0] = 0
	body = append(body, 1, 2, 0) // server dict: 1 entry value 2, index 0
	// cport, sport, first, last, lpu, lpd, bytes x2, pkts x2, psh x2,
	// retr x2, minrtt, rttsamples: 16 zero varint columns.
	for i := 0; i < 16; i++ {
		body = append(body, 0)
	}
	body = append(body, 1, 2, 'v', 'p') // VP dict: 1 entry "vp"
	body = append(body, 5)              // VP index[0] = 5 — out of range
	var stream bytes.Buffer
	if err := writeBinaryHeader(&stream, false); err != nil {
		t.Fatal(err)
	}
	var pfx [10]byte
	stream.Write(pfx[:binary.PutUvarint(pfx[:], uint64(len(body)))])
	stream.Write(body)
	br := NewBinaryReader(bytes.NewReader(stream.Bytes()))
	_, err := br.Read()
	if err == nil || err == io.EOF {
		t.Fatalf("out-of-range dictionary index should fail, got %v", err)
	}
}

// TestBinaryTrailingGarbageInBlock pads a block body past its declared
// columns; the decoder must flag the trailing bytes.
func TestBinaryTrailingGarbageInBlock(t *testing.T) {
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	if err := bw.Write(sampleRecord()); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()
	// Re-frame the single block with 3 junk bytes appended to the body.
	bodyLen, n := binary.Uvarint(stream[7:])
	body := append([]byte(nil), stream[7+n:7+n+int(bodyLen)]...)
	body = append(body, 0xde, 0xad, 0xbe)
	var mut bytes.Buffer
	mut.Write(stream[:7])
	var pfx [10]byte
	mut.Write(pfx[:binary.PutUvarint(pfx[:], uint64(len(body)))])
	mut.Write(body)
	br := NewBinaryReader(bytes.NewReader(mut.Bytes()))
	_, err := br.Read()
	if err == nil || err == io.EOF {
		t.Fatalf("trailing bytes in block body should fail, got %v", err)
	}
}
