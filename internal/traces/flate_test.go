package traces

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

// encodeFlate serializes recs with a FlateWriter and returns the stream.
func encodeFlate(t *testing.T, recs []*FlowRecord, blockRecords, workers int, anon bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewFlateWriter(&buf, workers)
	w.BlockRecords = blockRecords
	w.Anonymize = anon
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFlateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var recs []*FlowRecord
	for i := 0; i < 5_000; i++ {
		recs = append(recs, randRecord(rng, i))
	}
	stream := encodeFlate(t, recs, 257, 1, false)
	fr := NewFlateReader(bytes.NewReader(stream))
	for i, want := range recs {
		got, err := fr.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(want)) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if _, err := fr.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

// TestFlateDeterministicAcrossWorkers pins the determinism contract for
// the archival tier: worker count never changes the output bytes.
func TestFlateDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	var recs []*FlowRecord
	for i := 0; i < 6_000; i++ {
		recs = append(recs, randRecord(rng, i))
	}
	want := encodeFlate(t, recs, 300, 1, true)
	for _, workers := range []int{2, 8} {
		got := encodeFlate(t, recs, 300, workers, true)
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: output differs from workers=1 (%d vs %d bytes)", workers, len(got), len(want))
		}
	}
}

// TestFlateNumRecordsPreservesPosition pins the loadIndex contract:
// index lookups (NumRecords) must not disturb a sequential read,
// whether they happen before the first Read or in the middle of one.
func TestFlateNumRecordsPreservesPosition(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	var recs []*FlowRecord
	for i := 0; i < 700; i++ {
		recs = append(recs, randRecord(rng, i))
	}
	stream := encodeFlate(t, recs, 128, 2, false)
	fr := NewFlateReader(bytes.NewReader(stream))
	if n, err := fr.NumRecords(); err != nil || n != int64(len(recs)) {
		t.Fatalf("NumRecords before reading = %d, %v; want %d", n, err, len(recs))
	}
	for i, want := range recs {
		if i == 300 || i == 301 { // mid-frame, repeated
			if n, err := fr.NumRecords(); err != nil || n != int64(len(recs)) {
				t.Fatalf("NumRecords at record %d = %d, %v", i, n, err)
			}
		}
		got, err := fr.Read()
		if err != nil {
			t.Fatalf("record %d after NumRecords: %v", i, err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(want)) {
			t.Fatalf("record %d diverged after NumRecords", i)
		}
	}
	if _, err := fr.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

// TestFlateSeekToRecord pins the acceptance criterion: a seeked partial
// read returns exactly the records of the requested range, bit-exact
// against the full sequential decode.
func TestFlateSeekToRecord(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	var recs []*FlowRecord
	for i := 0; i < 4_000; i++ {
		recs = append(recs, randRecord(rng, i))
	}
	stream := encodeFlate(t, recs, 256, 4, false)
	fr := NewFlateReader(bytes.NewReader(stream))

	total, err := fr.NumRecords()
	if err != nil {
		t.Fatal(err)
	}
	if total != int64(len(recs)) {
		t.Fatalf("NumRecords = %d, want %d", total, len(recs))
	}

	// Seek targets cover: block-start, mid-block, first record, the very
	// last record, and the EOF position.
	for _, start := range []int64{0, 1, 255, 256, 257, 1000, 3999, 4000} {
		if err := fr.SeekToRecord(start); err != nil {
			t.Fatalf("SeekToRecord(%d): %v", start, err)
		}
		for i := start; i < total; i++ {
			got, err := fr.Read()
			if err != nil {
				t.Fatalf("seek %d, record %d: %v", start, i, err)
			}
			if !reflect.DeepEqual(normalize(got), normalize(recs[i])) {
				t.Fatalf("seek %d, record %d mismatch", start, i)
			}
			if i > start+300 {
				break // partial range is the point; don't re-read the tail each time
			}
		}
		if start == total {
			if _, err := fr.Read(); err != io.EOF {
				t.Fatalf("seek to EOF position: expected EOF, got %v", err)
			}
		}
	}

	// Out-of-range seeks fail cleanly.
	if err := fr.SeekToRecord(-1); err == nil {
		t.Fatal("SeekToRecord(-1) should fail")
	}
	if err := fr.SeekToRecord(total + 1); err == nil {
		t.Fatal("SeekToRecord(total+1) should fail")
	}

	// Seeking backwards after EOF works (EOF state is cleared).
	if err := fr.SeekToRecord(total); err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
	if err := fr.SeekToRecord(42); err != nil {
		t.Fatal(err)
	}
	got, err := fr.Read()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(got), normalize(recs[42])) {
		t.Fatal("record 42 after re-seek mismatch")
	}
}

// TestFlateSeekRequiresSeeker checks the non-seekable degradation.
func TestFlateSeekRequiresSeeker(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	recs := []*FlowRecord{randRecord(rng, 0)}
	stream := encodeFlate(t, recs, 16, 1, false)
	// io.MultiReader hides the Seeker.
	fr := NewFlateReader(io.MultiReader(bytes.NewReader(stream)))
	if err := fr.SeekToRecord(0); err == nil {
		t.Fatal("SeekToRecord on a non-seekable source should fail")
	}
	// Sequential reading still works.
	if _, err := fr.Read(); err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestFlateEmptyStream(t *testing.T) {
	stream := encodeFlate(t, nil, 0, 2, true)
	fr := NewFlateReader(bytes.NewReader(stream))
	if _, err := fr.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
	if !fr.Anonymized() {
		t.Fatal("anonymize flag lost")
	}
	fr2 := NewFlateReader(bytes.NewReader(stream))
	n, err := fr2.NumRecords()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("NumRecords = %d, want 0", n)
	}
	if err := fr2.SeekToRecord(0); err != nil {
		t.Fatal(err)
	}
	if _, err := fr2.Read(); err != io.EOF {
		t.Fatalf("expected EOF after seek, got %v", err)
	}
}

func TestFlateWriteAfterFlushFails(t *testing.T) {
	var buf bytes.Buffer
	w := NewFlateWriter(&buf, 1)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil { // idempotent
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(35))
	if err := w.Write(randRecord(rng, 0)); err == nil {
		t.Fatal("Write after terminal Flush should fail")
	}
}

func TestFlateCompresses(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	var recs []*FlowRecord
	for i := 0; i < 4_096; i++ {
		recs = append(recs, randRecord(rng, i))
	}
	var raw bytes.Buffer
	bw := NewBinaryWriter(&raw)
	for _, r := range recs {
		if err := bw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	comp := encodeFlate(t, recs, 0, 1, false)
	if len(comp) >= raw.Len() {
		t.Fatalf("flate stream (%d bytes) not smaller than raw binary (%d bytes)", len(comp), raw.Len())
	}
}

// --- reader error paths ---

func TestFlateBadMagic(t *testing.T) {
	fr := NewFlateReader(bytes.NewReader([]byte("NOTFLT\x00rest")))
	if _, err := fr.Read(); err == nil || err == io.EOF {
		t.Fatalf("bad magic should fail, got %v", err)
	}
}

func TestFlateTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	var recs []*FlowRecord
	for i := 0; i < 1_000; i++ {
		recs = append(recs, randRecord(rng, i))
	}
	stream := encodeFlate(t, recs, 128, 1, false)
	// Every truncation point must yield a clean error (or valid records
	// followed by one), never a panic and never silent success.
	for _, cut := range []int{0, 3, flateHeaderLen, flateHeaderLen + 1, flateHeaderLen + 10, len(stream) / 2, len(stream) - 1} {
		fr := NewFlateReader(bytes.NewReader(stream[:cut]))
		var err error
		for {
			_, err = fr.Read()
			if err != nil {
				break
			}
		}
		if err == io.EOF {
			t.Fatalf("cut=%d: truncated stream read to clean EOF", cut)
		}
	}
}

func TestFlateBadFooterMagic(t *testing.T) {
	stream := encodeFlate(t, nil, 0, 1, false)
	bad := bytes.Clone(stream)
	bad[len(bad)-1] ^= 0xff
	fr := NewFlateReader(bytes.NewReader(bad))
	if _, err := fr.Read(); err == nil || err == io.EOF {
		t.Fatalf("bad footer magic should fail, got %v", err)
	}
	fr2 := NewFlateReader(bytes.NewReader(bad))
	if _, err := fr2.NumRecords(); err == nil {
		t.Fatal("NumRecords with bad footer magic should fail")
	}
}

// TestFlateIndexOffsetPastEOF corrupts the index so the cumulative frame
// offsets run past the frame section; the seek path must reject it.
func TestFlateIndexOffsetPastEOF(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	var recs []*FlowRecord
	for i := 0; i < 300; i++ {
		recs = append(recs, randRecord(rng, i))
	}
	stream := encodeFlate(t, recs, 100, 1, false)

	// Rebuild the trailer with an inflated frameLen in the first entry.
	idxLen := int(binary.LittleEndian.Uint64(stream[len(stream)-flateFooterLen:]))
	idxStart := len(stream) - flateFooterLen - idxLen
	idx := stream[idxStart : idxStart+idxLen]
	d := &bdec{b: idx}
	count := d.uvarint()
	var badIdx []byte
	badIdx = binary.AppendUvarint(badIdx, count)
	for i := uint64(0); i < count; i++ {
		records, frameLen := d.uvarint(), d.uvarint()
		if i == 0 {
			frameLen += 1 << 20
		}
		badIdx = binary.AppendUvarint(badIdx, records)
		badIdx = binary.AppendUvarint(badIdx, frameLen)
	}
	bad := append([]byte(nil), stream[:idxStart]...)
	bad = append(bad, badIdx...)
	var footer [flateFooterLen]byte
	binary.LittleEndian.PutUint64(footer[:8], uint64(len(badIdx)))
	copy(footer[8:], flateFooterMagic[:])
	bad = append(bad, footer[:]...)

	fr := NewFlateReader(bytes.NewReader(bad))
	if err := fr.SeekToRecord(0); err == nil {
		t.Fatal("index with offsets past EOF should fail to load")
	}
}

// TestFlateFrameCorruption flips bytes inside the first frame; decoding
// must fail cleanly (flate checksum-less streams can decode garbage, so
// the block decoder's bounds checks are the backstop — any outcome but a
// panic or silent wrong-length success passes).
func TestFlateFrameCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	var recs []*FlowRecord
	for i := 0; i < 500; i++ {
		recs = append(recs, randRecord(rng, i))
	}
	stream := encodeFlate(t, recs, 500, 1, false)
	for off := flateHeaderLen; off < len(stream); off += 7 {
		bad := bytes.Clone(stream)
		bad[off] ^= 0x55
		fr := NewFlateReader(bytes.NewReader(bad))
		n := 0
		for {
			if _, err := fr.Read(); err != nil {
				break
			}
			if n++; n > len(recs) {
				t.Fatalf("offset %d: corrupted stream yielded more records than written", off)
			}
		}
	}
}
