package traces

// Parallel block serialization.
//
// The binary codec spends almost all of its CPU inside encodeBody —
// varint packing and dictionary lookups over a block of records — and
// blocks are independent of each other by construction. blockPool
// exploits that: filled block accumulators are handed to a bounded
// worker pool for encoding while a single merger goroutine writes the
// encoded frames back in strict submission order. It is the fleet
// engine's ordered-streaming pattern (internal/fleet/stream.go) applied
// to serialization: workers race, the output stream does not.
//
// The determinism contract holds by construction: block boundaries
// depend only on the record sequence (every BlockRecords records), each
// frame's bytes depend only on its block's records, and the merger
// enforces submission order — so the output stream is byte-identical to
// the sequential writer's for every worker count
// (TestParallelBinaryMatchesSequential pins it).
//
// Lifecycle: the pool's goroutines start lazily on the first Write and
// stop on every Flush, after draining — a flushed writer owns no
// goroutines, so RecordWriter consumers that only ever call
// Write/.../Flush never leak. The stream stays appendable: the next
// Write simply restarts the pool.

import (
	"compress/flate"
	"encoding/binary"
	"io"
	"sync"
)

// encJob carries one filled block accumulator through the worker pool.
type encJob struct {
	acc   *blockAccum
	frame []byte        // encoded frame; set by the worker before done closes
	done  chan struct{} // closed by the worker when frame is ready
}

// encScratch is per-worker encode state. The flate compressor is created
// lazily, only by framings that compress.
type encScratch struct {
	fw *flate.Writer
}

// blockPool encodes blocks on a bounded worker pool and writes the
// resulting frames to w in strict submission order. finish runs on a
// worker goroutine and must return frame bytes owned by the job's accum
// (valid until the accum is recycled); onFrame, when non-nil, runs on
// the merger goroutine after each successful frame write, before the
// accum is reset — index builders and telemetry hang off it.
type blockPool struct {
	w       io.Writer
	workers int
	finish  func(st *encScratch, acc *blockAccum) []byte
	onFrame func(acc *blockAccum, frame []byte)

	// Accumulator free list: its capacity bounds the blocks in flight
	// (encoding, queued, or being filled), which bounds memory and
	// provides backpressure when encoding falls behind accumulation.
	free      chan *blockAccum
	allocated int

	running bool
	jobs    chan *encJob
	order   chan *encJob
	wg      sync.WaitGroup // workers
	mwg     sync.WaitGroup // merger

	mu  sync.Mutex
	err error // first write error, latched forever
}

func newBlockPool(w io.Writer, workers int,
	finish func(*encScratch, *blockAccum) []byte,
	onFrame func(*blockAccum, []byte)) *blockPool {

	if workers < 1 {
		workers = 1
	}
	return &blockPool{
		w: w, workers: workers, finish: finish, onFrame: onFrame,
		free: make(chan *blockAccum, workers+2),
	}
}

func (p *blockPool) loadErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

func (p *blockPool) setErr(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

// start spins up the workers and the merger. Idempotent while running.
func (p *blockPool) start() {
	if p.running {
		return
	}
	// Channel capacity matches the accum pool, so submit never blocks:
	// backpressure happens in getAccum, where it is counted.
	p.jobs = make(chan *encJob, cap(p.free))
	p.order = make(chan *encJob, cap(p.free))
	for i := 0; i < p.workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	p.mwg.Add(1)
	go p.merge()
	p.running = true
}

func (p *blockPool) worker() {
	defer p.wg.Done()
	st := &encScratch{}
	for j := range p.jobs {
		j.frame = p.finish(st, j.acc)
		close(j.done)
	}
}

// merge writes frames in submission order; on a write error all later
// frames are skipped (the error is latched) but their accums are still
// recycled so producers never deadlock.
func (p *blockPool) merge() {
	defer p.mwg.Done()
	for j := range p.order {
		<-j.done
		if p.loadErr() == nil {
			if _, err := p.w.Write(j.frame); err != nil {
				p.setErr(err)
			} else if p.onFrame != nil {
				p.onFrame(j.acc, j.frame)
			}
		}
		j.acc.reset()
		p.free <- j.acc
	}
}

// getAccum returns a reset accumulator, blocking (and counting the stall)
// when every accumulator is in flight.
func (p *blockPool) getAccum() *blockAccum {
	select {
	case acc := <-p.free:
		return acc
	default:
	}
	if p.allocated < cap(p.free) {
		p.allocated++
		return &blockAccum{}
	}
	mParStalls.Inc()
	return <-p.free
}

// submit hands a filled accumulator to the pool. The caller must have
// called start and must not touch acc afterwards.
func (p *blockPool) submit(acc *blockAccum) {
	j := &encJob{acc: acc, done: make(chan struct{})}
	p.order <- j
	p.jobs <- j
}

// drain waits for every submitted block to be encoded and written, stops
// all pool goroutines, and returns the first write error. The pool can
// be started again afterwards.
func (p *blockPool) drain() error {
	if !p.running {
		return p.loadErr()
	}
	close(p.jobs)
	close(p.order)
	p.wg.Wait()
	p.mwg.Wait()
	p.running = false
	return p.loadErr()
}

// finishBinaryFrame encodes one accum as a length-prefixed binary block —
// the exact frame BinaryWriter.flushBlock writes.
func finishBinaryFrame(_ *encScratch, acc *blockAccum) []byte {
	const pfxReserve = binary.MaxVarintLen64
	if cap(acc.buf) < pfxReserve {
		acc.buf = make([]byte, pfxReserve)
	}
	body := acc.encodeBody(acc.buf[:pfxReserve])
	acc.buf = body // keep the grown scratch with the accum
	var pfx [binary.MaxVarintLen64]byte
	np := binary.PutUvarint(pfx[:], uint64(len(body)-pfxReserve))
	start := pfxReserve - np
	copy(body[start:], pfx[:np])
	return body[start:]
}

// ParallelBinaryWriter streams flow records in the binary columnar
// format, encoding blocks on Workers goroutines while preserving the
// sequential writer's exact output bytes. Methods must not be called
// concurrently — parallelism is internal. Use it where serialization,
// not generation, is the bottleneck (the export scenarios in
// PERFORMANCE.md); NewBinaryWriter remains the zero-goroutine path.
type ParallelBinaryWriter struct {
	// Anonymize replaces client addresses with the stable 48-bit tokens
	// of the CSV format. It must be set before the first Write.
	Anonymize bool
	// BlockRecords overrides the records-per-block target (0 means
	// DefaultBlockRecords). It must be set before the first Write.
	BlockRecords int

	w           io.Writer
	pool        *blockPool
	cur         *blockAccum
	wroteHeader bool
	err         error
}

// NewParallelBinaryWriter wraps w with a pool of workers block encoders
// (workers < 1 means 1). The output stream is byte-identical to
// NewBinaryWriter's for every worker count.
func NewParallelBinaryWriter(w io.Writer, workers int) *ParallelBinaryWriter {
	pw := &ParallelBinaryWriter{w: w}
	pw.pool = newBlockPool(w, workers, finishBinaryFrame, func(acc *blockAccum, frame []byte) {
		mBinBlocks.Inc()
		mBinRecords.Add(uint64(acc.n))
		mBinBytes.Add(uint64(len(frame)))
		mParBlocks.Inc()
	})
	return pw
}

func (w *ParallelBinaryWriter) blockTarget() int {
	if w.BlockRecords > 0 {
		return w.BlockRecords
	}
	return DefaultBlockRecords
}

// ensureStarted writes the stream header once and (re)starts the pool.
func (w *ParallelBinaryWriter) ensureStarted() error {
	if w.err != nil {
		return w.err
	}
	if !w.wroteHeader {
		if err := writeBinaryHeader(w.w, w.Anonymize); err != nil {
			w.err = err
			return err
		}
		w.wroteHeader = true
	}
	w.pool.start()
	return nil
}

// Write buffers one record; nothing in r is retained after return. A
// full block is handed to the worker pool, blocking only when every
// in-flight block is still being encoded (backpressure).
func (w *ParallelBinaryWriter) Write(r *FlowRecord) error {
	if err := w.ensureStarted(); err != nil {
		return err
	}
	if err := w.pool.loadErr(); err != nil {
		return err
	}
	if w.cur == nil {
		w.cur = w.pool.getAccum()
	}
	w.cur.add(r, w.Anonymize)
	if w.cur.n >= w.blockTarget() {
		w.pool.submit(w.cur)
		w.cur = nil
	}
	return nil
}

// Flush submits any partial block, waits until every submitted block has
// been encoded and written, and stops the pool goroutines — after Flush
// the writer owns no goroutines. The stream stays appendable: the next
// Write restarts the pool. A zero-record Flush still writes the header,
// so an empty export is a valid (empty) stream.
func (w *ParallelBinaryWriter) Flush() error {
	if err := w.ensureStarted(); err != nil {
		return err
	}
	if w.cur != nil {
		if w.cur.n > 0 {
			w.pool.submit(w.cur)
		} else {
			w.pool.free <- w.cur
		}
		w.cur = nil
	}
	if err := w.pool.drain(); err != nil {
		w.err = err
		return err
	}
	return nil
}
