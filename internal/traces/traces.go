// Package traces defines the flow-record schema the probe exports and its
// two serializations: the anonymized CSV format mirroring the public
// release of the paper's measurements (traces.simpleweb.org/dropbox) — one
// row per TCP flow with byte/packet/PSH counters, RTT estimates and DPI
// labels, and client addresses anonymized — and a block-columnar binary
// format (BinaryWriter/BinaryReader, see binary.go for the wire format)
// that is ~3.5x smaller and allocation-free on the write side, for
// population-scale trace exports.
//
// Writers never retain the records passed to Write: both formats copy what
// they need before returning, so callers may recycle records (the fleet
// engine's pooled generation path depends on this).
package traces

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
	"unicode"
	"unicode/utf8"

	"insidedropbox/internal/wire"
)

// FlowRecord is one monitored TCP flow, as exported by the probe. "Up" is
// the client-to-server direction (outbound from the monitored site).
type FlowRecord struct {
	VP                     string // vantage point name
	Client                 wire.IP
	Server                 wire.IP
	ClientPort, ServerPort uint16

	// Times are offsets from the campaign start.
	FirstPacket time.Duration
	LastPacket  time.Duration
	// Last payload-carrying packet per direction (Appendix A.4 duration
	// accounting).
	LastPayloadUp   time.Duration
	LastPayloadDown time.Duration

	BytesUp, BytesDown     int64 // TCP payload bytes
	PktsUp, PktsDown       int
	PSHUp, PSHDown         int
	RetransUp, RetransDown int

	// MinRTT is the minimum probe<->server round trip (external RTT);
	// RTTSamples counts valid samples (the paper uses flows with >= 10).
	MinRTT     time.Duration
	RTTSamples int

	// DPI labels.
	SNI      string // TLS server name from the ClientHello
	CertName string // certificate common name (e.g. *.dropbox.com)
	FQDN     string // DNS name the client resolved for the server IP

	// Notification-protocol extraction (cleartext flows only).
	NotifyHost       uint64
	NotifyNamespaces []uint32

	SawSYN, SawFIN, SawRST bool
	// ServerClosed reports the server sent the first FIN (passive close of
	// storage flows; chunk-count estimation depends on it, Appendix A.3).
	ServerClosed bool
}

// Duration returns the flow duration from first packet to last packet.
func (r *FlowRecord) Duration() time.Duration { return r.LastPacket - r.FirstPacket }

// csvHeader lists the exported columns, in order.
var csvHeader = []string{
	"vp", "client", "server", "cport", "sport",
	"first", "last", "last_payload_up", "last_payload_down",
	"bytes_up", "bytes_down", "pkts_up", "pkts_down",
	"psh_up", "psh_down", "retr_up", "retr_down",
	"min_rtt_us", "rtt_samples",
	"sni", "cert", "fqdn",
	"notify_host", "notify_ns",
	"syn", "fin", "rst", "server_closed",
}

// RecordWriter is the streaming sink both trace serializations implement;
// format-agnostic exporters (cmd/dropsim) write through it.
type RecordWriter interface {
	Write(*FlowRecord) error
	Flush() error
}

// Writer streams flow records as CSV. Rows are built with append-based
// field encoding into a reused buffer — byte-identical to encoding/csv
// output (quoting rules included) but allocation-free per record once the
// scratch is warm, where the encoding/csv + strconv.Format path cost
// 13.4 allocs/rec (BENCH_pr3). TestCSVMatchesEncodingCSV pins the byte
// identity, TestCSVWriteAllocations pins the allocation budget.
type Writer struct {
	bw *bufio.Writer
	// Anonymize replaces client addresses with stable opaque tokens, as the
	// public traces do.
	Anonymize   bool
	wroteHeader bool
	err         error

	// Reused per-Write row scratch; records are never retained.
	buf []byte

	// Telemetry tallies, published on Flush.
	nrec   int
	nbytes int64
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// anonToken produces the stable 48-bit anonymization token for an address:
// the FNV-1a hash of "anon-<decimal ip>", the value the CSV format prints
// as "h%012x" and the binary format stores raw.
func anonToken(ip wire.IP) uint64 {
	var buf [24]byte
	b := append(buf[:0], "anon-"...)
	b = strconv.AppendUint(b, uint64(uint32(ip)), 10)
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h & 0xffffffffffff
}

// anonIP renders the anonymous token for an address.
func anonIP(ip wire.IP) string {
	return string(appendAnonIP(nil, ip))
}

// appendAnonIP appends the "h%012x" rendering of an address's token.
func appendAnonIP(b []byte, ip wire.IP) []byte {
	const hex = "0123456789abcdef"
	tok := anonToken(ip)
	b = append(b, 'h')
	for shift := 44; shift >= 0; shift -= 4 {
		b = append(b, hex[(tok>>shift)&0xf])
	}
	return b
}

// appendIP appends the dotted-quad rendering of an address.
func appendIP(b []byte, ip wire.IP) []byte {
	b = strconv.AppendUint(b, uint64(byte(ip>>24)), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(byte(ip>>16)), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(byte(ip>>8)), 10)
	b = append(b, '.')
	return strconv.AppendUint(b, uint64(byte(ip)), 10)
}

// csvFieldNeedsQuotes mirrors encoding/csv's fieldNeedsQuotes for the
// default configuration (Comma ',', no CRLF) — the byte-identity contract
// with the old encoding/csv-based writer depends on matching it exactly.
func csvFieldNeedsQuotes(field string) bool {
	if field == "" {
		return false
	}
	if field == `\.` {
		return true
	}
	for i := 0; i < len(field); i++ {
		c := field[i]
		if c == '\n' || c == '\r' || c == '"' || c == ',' {
			return true
		}
	}
	r1, _ := utf8.DecodeRuneInString(field)
	return unicode.IsSpace(r1)
}

// appendCSVField appends one field, quoting exactly as encoding/csv
// would (quote doubling; \r and \n kept verbatim inside quotes).
func appendCSVField(b []byte, field string) []byte {
	if !csvFieldNeedsQuotes(field) {
		return append(b, field...)
	}
	b = append(b, '"')
	for i := 0; i < len(field); i++ {
		c := field[i]
		if c == '"' {
			b = append(b, '"', '"')
			continue
		}
		b = append(b, c)
	}
	return append(b, '"')
}

// appendBool appends the 0/1 rendering of a flag.
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, '1')
	}
	return append(b, '0')
}

// Write emits one record.
func (w *Writer) Write(r *FlowRecord) error {
	if w.err != nil {
		return w.err
	}
	if !w.wroteHeader {
		b := w.buf[:0]
		for i, f := range csvHeader {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendCSVField(b, f)
		}
		b = append(b, '\n')
		w.buf = b
		if err := w.writeRow(b); err != nil {
			return err
		}
		w.wroteHeader = true
	}
	b := w.buf[:0]
	b = appendCSVField(b, r.VP)
	b = append(b, ',')
	if w.Anonymize {
		b = appendAnonIP(b, r.Client)
	} else {
		b = appendIP(b, r.Client)
	}
	b = append(b, ',')
	b = appendIP(b, r.Server)
	b = append(b, ',')
	b = strconv.AppendUint(b, uint64(r.ClientPort), 10)
	b = append(b, ',')
	b = strconv.AppendUint(b, uint64(r.ServerPort), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(r.FirstPacket), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(r.LastPacket), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(r.LastPayloadUp), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(r.LastPayloadDown), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, r.BytesUp, 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, r.BytesDown, 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(r.PktsUp), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(r.PktsDown), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(r.PSHUp), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(r.PSHDown), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(r.RetransUp), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(r.RetransDown), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, r.MinRTT.Microseconds(), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(r.RTTSamples), 10)
	b = append(b, ',')
	b = appendCSVField(b, r.SNI)
	b = append(b, ',')
	b = appendCSVField(b, r.CertName)
	b = append(b, ',')
	b = appendCSVField(b, r.FQDN)
	b = append(b, ',')
	b = strconv.AppendUint(b, r.NotifyHost, 10)
	b = append(b, ',')
	for i, n := range r.NotifyNamespaces {
		if i > 0 {
			b = append(b, ';')
		}
		b = strconv.AppendUint(b, uint64(n), 10)
	}
	b = append(b, ',')
	b = appendBool(b, r.SawSYN)
	b = append(b, ',')
	b = appendBool(b, r.SawFIN)
	b = append(b, ',')
	b = appendBool(b, r.SawRST)
	b = append(b, ',')
	b = appendBool(b, r.ServerClosed)
	b = append(b, '\n')
	w.buf = b
	w.nrec++
	return w.writeRow(b)
}

// writeRow pushes one encoded row into the buffered writer.
func (w *Writer) writeRow(b []byte) error {
	n, err := w.bw.Write(b)
	w.nbytes += int64(n)
	if err != nil {
		w.err = err
	}
	return err
}

// Flush finishes the stream and publishes the accumulated record/byte
// telemetry.
func (w *Writer) Flush() error {
	if err := w.bw.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	if w.nrec > 0 {
		mCSVRecords.Add(uint64(w.nrec))
		w.nrec = 0
	}
	if w.nbytes > 0 {
		mCSVBytes.Add(uint64(w.nbytes))
		w.nbytes = 0
	}
	return w.err
}

// Reader parses flow-record CSV back into records. Anonymized client
// columns parse to 0.0.0.0 with the token preserved in ClientToken.
type Reader struct {
	cr     *csv.Reader
	header bool
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.FieldsPerRecord = len(csvHeader)
	return &Reader{cr: cr}
}

// Read returns the next record, or io.EOF.
func (r *Reader) Read() (*FlowRecord, error) {
	if !r.header {
		if _, err := r.cr.Read(); err != nil {
			return nil, err
		}
		r.header = true
	}
	row, err := r.cr.Read()
	if err != nil {
		return nil, err
	}
	rec := &FlowRecord{VP: row[0]}
	rec.Client = parseIP(row[1])
	rec.Server = parseIP(row[2])
	rec.ClientPort = uint16(atoi(row[3]))
	rec.ServerPort = uint16(atoi(row[4]))
	rec.FirstPacket = time.Duration(atoi64(row[5]))
	rec.LastPacket = time.Duration(atoi64(row[6]))
	rec.LastPayloadUp = time.Duration(atoi64(row[7]))
	rec.LastPayloadDown = time.Duration(atoi64(row[8]))
	rec.BytesUp = atoi64(row[9])
	rec.BytesDown = atoi64(row[10])
	rec.PktsUp = atoi(row[11])
	rec.PktsDown = atoi(row[12])
	rec.PSHUp = atoi(row[13])
	rec.PSHDown = atoi(row[14])
	rec.RetransUp = atoi(row[15])
	rec.RetransDown = atoi(row[16])
	rec.MinRTT = time.Duration(atoi64(row[17])) * time.Microsecond
	rec.RTTSamples = atoi(row[18])
	rec.SNI, rec.CertName, rec.FQDN = row[19], row[20], row[21]
	rec.NotifyHost = uint64(atoi64(row[22]))
	if row[23] != "" {
		for _, part := range strings.Split(row[23], ";") {
			rec.NotifyNamespaces = append(rec.NotifyNamespaces, uint32(atoi64(part)))
		}
	}
	rec.SawSYN = row[24] == "1"
	rec.SawFIN = row[25] == "1"
	rec.SawRST = row[26] == "1"
	rec.ServerClosed = row[27] == "1"
	return rec, nil
}

func parseIP(s string) wire.IP {
	var a, b, c, d byte
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return 0 // anonymized token
	}
	return wire.MakeIP(a, b, c, d)
}

func atoi(s string) int {
	v, _ := strconv.Atoi(s)
	return v
}

func atoi64(s string) int64 {
	v, _ := strconv.ParseInt(s, 10, 64)
	return v
}
