package traces

import "insidedropbox/internal/telemetry"

// Serialization telemetry per codec. The CSV writer counts locally and
// publishes on Flush; the binary writer publishes once per encoded block —
// neither path adds atomics per record.
var (
	mCSVRecords = telemetry.NewCounter("traces.csv_records")
	mCSVBytes   = telemetry.NewCounter("traces.csv_bytes")
	mBinRecords = telemetry.NewCounter("traces.binary_records")
	mBinBytes   = telemetry.NewCounter("traces.binary_bytes")
	mBinBlocks  = telemetry.NewCounter("traces.binary_blocks")

	// Parallel writer: blocks encoded through the worker pool, and the
	// times a producer stalled waiting for a free block accumulator
	// (encoding falling behind generation — the backpressure signal).
	mParBlocks = telemetry.NewCounter("traces.parallel_blocks")
	mParStalls = telemetry.NewCounter("traces.parallel_block_waits")

	// Flate archival tier: compressed frames written, records inside
	// them, pre- and post-compression byte counts (their ratio is the
	// achieved compression), and index-driven seeks served.
	mFlateFrames   = telemetry.NewCounter("traces.flate_frames")
	mFlateRecords  = telemetry.NewCounter("traces.flate_records")
	mFlateRawBytes = telemetry.NewCounter("traces.flate_raw_bytes")
	mFlateBytes    = telemetry.NewCounter("traces.flate_bytes")
	mFlateSeeks    = telemetry.NewCounter("traces.flate_seeks")
)
