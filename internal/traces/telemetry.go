package traces

import "io"

import "insidedropbox/internal/telemetry"

// Serialization telemetry per codec. The CSV writer counts locally and
// publishes on Flush; the binary writer publishes once per encoded block —
// neither path adds atomics per record.
var (
	mCSVRecords = telemetry.NewCounter("traces.csv_records")
	mCSVBytes   = telemetry.NewCounter("traces.csv_bytes")
	mBinRecords = telemetry.NewCounter("traces.binary_records")
	mBinBytes   = telemetry.NewCounter("traces.binary_bytes")
	mBinBlocks  = telemetry.NewCounter("traces.binary_blocks")
)

// meteredWriter counts the bytes reaching the underlying writer. The
// count accumulates as a plain int (writers are single-goroutine by
// contract) and is published by the owning codec's Flush.
type meteredWriter struct {
	w io.Writer
	n int64
}

func (m *meteredWriter) Write(p []byte) (int, error) {
	n, err := m.w.Write(p)
	m.n += int64(n)
	return n, err
}
