package traces

import (
	"bytes"
	"encoding/csv"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// referenceCSV renders records through encoding/csv with the exact field
// formatting the pre-rewrite Writer used — the byte-identity oracle for
// the append-based encoder (golden stream hashes across the repo pin the
// same bytes transitively).
func referenceCSV(t *testing.T, recs []*FlowRecord, anonymize bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	cw := csv.NewWriter(&buf)
	if err := cw.Write(csvHeader); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		client := r.Client.String()
		if anonymize {
			client = anonIP(r.Client)
		}
		var ns []string
		for _, n := range r.NotifyNamespaces {
			ns = append(ns, strconv.FormatUint(uint64(n), 10))
		}
		row := []string{
			r.VP, client, r.Server.String(),
			strconv.Itoa(int(r.ClientPort)), strconv.Itoa(int(r.ServerPort)),
			strconv.FormatInt(int64(r.FirstPacket), 10),
			strconv.FormatInt(int64(r.LastPacket), 10),
			strconv.FormatInt(int64(r.LastPayloadUp), 10),
			strconv.FormatInt(int64(r.LastPayloadDown), 10),
			strconv.FormatInt(r.BytesUp, 10), strconv.FormatInt(r.BytesDown, 10),
			strconv.Itoa(r.PktsUp), strconv.Itoa(r.PktsDown),
			strconv.Itoa(r.PSHUp), strconv.Itoa(r.PSHDown),
			strconv.Itoa(r.RetransUp), strconv.Itoa(r.RetransDown),
			strconv.FormatInt(r.MinRTT.Microseconds(), 10),
			strconv.Itoa(r.RTTSamples),
			r.SNI, r.CertName, r.FQDN,
			strconv.FormatUint(r.NotifyHost, 10), strings.Join(ns, ";"),
			boolRef(r.SawSYN), boolRef(r.SawFIN), boolRef(r.SawRST), boolRef(r.ServerClosed),
		}
		if err := cw.Write(row); err != nil {
			t.Fatal(err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func boolRef(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// TestCSVMatchesEncodingCSV pins the append-based encoder to the
// encoding/csv reference byte for byte, including fields that trigger
// csv quoting.
func TestCSVMatchesEncodingCSV(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var recs []*FlowRecord
	for i := 0; i < 2_000; i++ {
		recs = append(recs, randRecord(rng, i))
	}
	// Quote-triggering and edge-case fields (never produced by the
	// simulator, but the encoder must not silently diverge on them).
	hostile := []string{
		"", `\.`, "a,b", `say "hi"`, "line\nbreak", "cr\rhere",
		" leadingspace", "\ttab", "é-utf8", `""`, ",", "\n",
	}
	for i, s := range hostile {
		r := randRecord(rng, i)
		r.VP = s
		r.SNI = hostile[(i+1)%len(hostile)]
		r.CertName = hostile[(i+2)%len(hostile)]
		r.FQDN = hostile[(i+3)%len(hostile)]
		recs = append(recs, r)
	}
	for _, anon := range []bool{false, true} {
		want := referenceCSV(t, recs, anon)
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.Anonymize = anon
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			got := buf.Bytes()
			n := min(len(got), len(want))
			at := n
			for i := 0; i < n; i++ {
				if got[i] != want[i] {
					at = i
					break
				}
			}
			lo := max(0, at-60)
			t.Fatalf("anon=%v: output diverges from encoding/csv at byte %d:\n got %q\nwant %q",
				anon, at, got[lo:min(len(got), at+60)], want[lo:min(len(want), at+60)])
		}
	}
}

// TestCSVWriteAllocations pins the hot-path allocation budget the
// append-based encoder bought (was 13.4 allocs/rec via encoding/csv +
// strconv.Format, BENCH_pr3; ISSUE 7 targets <= 2).
func TestCSVWriteAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	recs := make([]*FlowRecord, 64)
	for i := range recs {
		recs[i] = randRecord(rng, i)
	}
	w := NewWriter(io.Discard)
	w.Anonymize = true
	// Warm up: header row, row scratch growth, bufio fill.
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		if err := w.Write(recs[i%len(recs)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs > 2 {
		t.Fatalf("CSV Write allocates %.1f/rec, want <= 2", allocs)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}
