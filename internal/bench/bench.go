// Package bench is the repo's tracked performance harness: a fixed
// catalogue of pinned generation, aggregation and serialization workloads
// whose measurements are recorded as machine-readable BENCH_<rev>.json
// files at the repository root, so every PR has a baseline to beat and a
// regression gate to pass.
//
// The harness measures wall-clock throughput (records/sec, MB/sec) and
// allocator pressure (allocs and allocated bytes per record, via
// runtime.MemStats deltas around each scenario) plus the process peak RSS
// (VmHWM on Linux). Scenario populations and seeds are constants: two
// reports are comparable if and only if their scenario names and Quick
// flags match — Compare enforces exactly that.
//
// Scenarios deliberately span the whole record pipeline: raw single-shard
// generation, the 8-shard fleet aggregation path, the what-if engine, both
// trace serializations, the end-to-end sharded export, and the
// discrete-event backend simulation (events/sec through its load knee). See
// PERFORMANCE.md for the catalogue, the JSON schema, and the workflow for
// recording and comparing runs across PRs.
package bench

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"insidedropbox/internal/backend"
	"insidedropbox/internal/campaign"
	"insidedropbox/internal/capability"
	"insidedropbox/internal/experiments"
	"insidedropbox/internal/fleet"
	scenariopkg "insidedropbox/internal/scenario"
	"insidedropbox/internal/telemetry"
	"insidedropbox/internal/traces"
	"insidedropbox/internal/workload"
)

// Schema is the BENCH_*.json schema version.
const Schema = 1

// benchSeed pins every scenario's campaign seed.
const benchSeed = 2012

// ScenarioResult is one measured workload.
type ScenarioResult struct {
	Name    string `json:"name"`
	Records int64  `json:"records"`
	// Bytes is the serialized output volume, for scenarios that write.
	Bytes   int64   `json:"bytes,omitempty"`
	Seconds float64 `json:"seconds"`

	RecordsPerSec float64 `json:"records_per_sec"`
	// MBPerSec is output megabytes per second (only when Bytes > 0).
	MBPerSec            float64 `json:"mb_per_sec,omitempty"`
	AllocsPerRecord     float64 `json:"allocs_per_record"`
	AllocBytesPerRecord float64 `json:"alloc_bytes_per_record"`

	// GOMAXPROCS is the parallelism the scenario ran at — per scenario
	// because throughput on the sharded scenarios scales with it, so
	// cross-report deltas are only meaningful when it matches. Omitted
	// (0) in reports recorded before it was tracked.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	// PeakRSSBytes is the process high-water RSS after this scenario.
	// It is cumulative across the run (the kernel counter never drops),
	// so the first scenario to raise it is the one that cost the memory.
	PeakRSSBytes int64 `json:"peak_rss_bytes,omitempty"`
}

// Report is one recorded harness run — the content of a BENCH_<rev>.json.
type Report struct {
	Schema         int    `json:"schema"`
	Rev            string `json:"rev"`
	RecordedAtUnix int64  `json:"recorded_at_unix"`
	GoVersion      string `json:"go"`
	GOOS           string `json:"goos"`
	GOARCH         string `json:"goarch"`
	GOMAXPROCS     int    `json:"gomaxprocs"`
	Quick          bool   `json:"quick"`
	// PeakRSSBytes is the process high-water RSS after all scenarios ran
	// (0 where /proc/self/status is unavailable). It is a whole-process
	// figure, so it reflects the largest scenario, not a sum.
	PeakRSSBytes int64            `json:"peak_rss_bytes"`
	Scenarios    []ScenarioResult `json:"scenarios"`
}

// Options configures a harness run.
type Options struct {
	// Quick shrinks every scenario to CI-smoke scale.
	Quick bool
	// Rev labels the report (git short SHA or a PR label).
	Rev string
	// Filter, when non-nil, selects scenarios by name.
	Filter func(name string) bool
	// Log, when non-nil, receives one line per scenario as it completes.
	Log io.Writer
}

// scenario is one catalogue entry. run executes the workload and returns
// the records processed and bytes written (0 when not a serializer);
// setup, when present, prepares inputs outside the measured region. The
// context is the harness run's: scenarios pass it to the engine entry
// points so an interrupted bench tears down at shard granularity.
type scenario struct {
	name  string
	setup func(quick bool)
	// procs, when > 0, forces GOMAXPROCS for the measured region (restored
	// afterwards) — the multi-core campaign scenarios pin 1 vs 8 so their
	// ratio measures fan-out speedup, not whatever the host happens to be.
	procs int
	run   func(ctx context.Context, quick bool) (records, bytes int64)
}

// catalogue returns the fixed scenario set, in execution order.
func catalogue() []scenario {
	return []scenario{
		{name: "generate/home1-1shard", run: runGenerate},
		{name: "fleet/home1-8shard", run: runFleet8},
		{name: "whatif/campus1-2profiles", run: runWhatIf},
		{name: "serialize/csv", setup: warmSerializeDataset, run: runSerializeCSV},
		{name: "serialize/binary", setup: warmSerializeDataset, run: runSerializeBinary},
		{name: "serialize/binary-parallel", setup: warmSerializeDataset, run: runSerializeBinaryParallel},
		{name: "serialize/flate", setup: warmSerializeDataset, run: runSerializeFlate},
		{name: "export/home1-8shard-binary", run: runExportBinary},
		{name: "export/home1-8shard-binary-parallel", run: runExportBinaryParallel},
		{name: "backend/saturation", setup: warmBackendArrivals, run: runBackendSaturation},
		{name: "scenario/cohort-mix", setup: warmScenarioCompiled, run: runScenarioCohortMix},
		{name: "campaign/home1-8shard-1core", procs: 1, run: runCampaign1Core},
		{name: "campaign/home1-8shard-multicore", procs: 8, run: runCampaignMultiCore},
	}
}

// ScenarioNames lists the catalogue in order (for CLI help and docs).
func ScenarioNames() []string {
	cat := catalogue()
	names := make([]string, len(cat))
	for i, s := range cat {
		names[i] = s.name
	}
	return names
}

// Run executes the catalogue and assembles the report. Cancelling ctx
// stops between scenarios, between a scenario's repetitions, and
// mid-repetition at fleet-shard granularity on the sharded scenarios;
// the partial report covers the scenarios that completed.
func Run(ctx context.Context, opts Options) *Report {
	rep := &Report{
		Schema:         Schema,
		Rev:            opts.Rev,
		RecordedAtUnix: time.Now().Unix(),
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Quick:          opts.Quick,
	}
	for _, sc := range catalogue() {
		if opts.Filter != nil && !opts.Filter(sc.name) {
			continue
		}
		if ctx.Err() != nil {
			break
		}
		res := measure(ctx, sc, opts.Quick)
		if ctx.Err() != nil {
			// The scenario was interrupted mid-workload: its counts and
			// rates are partial garbage, so keep it out of the report
			// (the contract is "scenarios that completed").
			break
		}
		rep.Scenarios = append(rep.Scenarios, res)
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "%-28s %9.0f rec/s  %6.2f allocs/rec  %8.1f B-alloc/rec%s\n",
				res.Name, res.RecordsPerSec, res.AllocsPerRecord, res.AllocBytesPerRecord,
				mbCol(res))
		}
	}
	rep.PeakRSSBytes = peakRSS()
	return rep
}

func mbCol(r ScenarioResult) string {
	if r.MBPerSec == 0 {
		return ""
	}
	return fmt.Sprintf("  %8.1f MB/s", r.MBPerSec)
}

// measure runs one scenario under MemStats bracketing; setup work happens
// before the bracket so only the workload itself is measured.
func measure(ctx context.Context, sc scenario, quick bool) ScenarioResult {
	if sc.setup != nil {
		sc.setup(quick)
	}
	if sc.procs > 0 {
		old := runtime.GOMAXPROCS(sc.procs)
		defer runtime.GOMAXPROCS(old)
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	records, bytes := sc.run(ctx, quick)
	dt := time.Since(t0)
	runtime.ReadMemStats(&m1)

	res := ScenarioResult{
		Name:    sc.name,
		Records: records,
		Bytes:   bytes,
		Seconds: dt.Seconds(),
	}
	if records > 0 && dt > 0 {
		res.RecordsPerSec = float64(records) / dt.Seconds()
		res.AllocsPerRecord = float64(m1.Mallocs-m0.Mallocs) / float64(records)
		res.AllocBytesPerRecord = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(records)
	}
	if bytes > 0 && dt > 0 {
		res.MBPerSec = float64(bytes) / 1e6 / dt.Seconds()
	}
	res.GOMAXPROCS = runtime.GOMAXPROCS(0)
	res.PeakRSSBytes = peakRSS()
	mPeakRSS.Set(res.PeakRSSBytes)
	mScenarioSeconds.Observe(dt)
	mScenarios.Inc()
	return res
}

// Harness telemetry: the peak-RSS gauge tracks the scenario bracket in
// measure, so a -telemetry-interval run shows which scenario raised the
// high-water mark as it happens.
var (
	mScenarios       = telemetry.NewCounter("bench.scenarios")
	mScenarioSeconds = telemetry.NewHist("bench.scenario_seconds")
	mPeakRSS         = telemetry.NewGauge("bench.peak_rss_bytes")
)

// ---------- the scenario catalogue ----------

// scalesFor returns (population scale, repetitions) for the generation
// scenarios.
func scalesFor(quick bool) (float64, int) {
	if quick {
		return 0.02, 2
	}
	return 0.2, 5
}

// runGenerate measures raw single-shard generation: the legacy sequential
// hot path, streaming into a counting sink.
func runGenerate(ctx context.Context, quick bool) (int64, int64) {
	scale, reps := scalesFor(quick)
	cfg := workload.Home1(scale)
	var n int64
	for i := 0; i < reps; i++ {
		if ctx.Err() != nil {
			break
		}
		workload.GenerateShard(cfg, benchSeed, 0, 1, func(r *traces.FlowRecord) { n++ })
	}
	return n, 0
}

// runFleet8 measures the sharded streaming aggregation path: 8 shards
// folded into a fleet.Summary.
func runFleet8(ctx context.Context, quick bool) (int64, int64) {
	scale, reps := scalesFor(quick)
	cfg := workload.Home1(scale)
	var n int64
	for i := 0; i < reps; i++ {
		_, stats, err := fleet.Summarize(ctx, cfg, benchSeed, fleet.Config{Shards: 8})
		if err != nil {
			break
		}
		n += int64(stats.Records)
	}
	return n, 0
}

// runWhatIf measures the capability what-if engine: one population
// replayed under the two historical Dropbox profiles.
func runWhatIf(ctx context.Context, quick bool) (int64, int64) {
	scale := 0.5
	if quick {
		scale = 0.1
	}
	profiles, err := capability.Parse("dropbox-1.2.52,dropbox-1.4.0")
	if err != nil {
		panic(err)
	}
	rep, err := experiments.WhatIfConfig{
		Seed:     benchSeed,
		VP:       workload.Campus1(scale),
		Fleet:    fleet.Config{Shards: 4},
		Profiles: profiles,
	}.Run(ctx)
	if err != nil {
		return 0, 0
	}
	var n int64
	for _, run := range rep.Runs {
		n += int64(run.Stats.Records)
	}
	return n, 0
}

// serializeCache memoizes the pinned dataset the serialization scenarios
// write, per scale, so generation happens once — in the setup phase,
// outside the measured region.
var serializeCache = map[bool]*workload.Dataset{}

// serializeDataset returns the pinned dataset and repetition count of the
// serialization scenarios.
func serializeDataset(quick bool) (*workload.Dataset, int) {
	scale, reps := 0.05, 10
	if quick {
		scale, reps = 0.02, 2
	}
	ds := serializeCache[quick]
	if ds == nil {
		ds = workload.Generate(workload.Home1(scale), benchSeed)
		serializeCache[quick] = ds
	}
	return ds, reps
}

// warmSerializeDataset is the serialization scenarios' setup hook.
func warmSerializeDataset(quick bool) { serializeDataset(quick) }

// countWriter counts bytes and discards them.
type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// runSerializeCSV measures the anonymized CSV writer against a
// pre-generated in-memory dataset.
func runSerializeCSV(ctx context.Context, quick bool) (int64, int64) {
	ds, reps := serializeDataset(quick)
	var cw countWriter
	var n int64
	for i := 0; i < reps; i++ {
		if ctx.Err() != nil {
			break
		}
		w := traces.NewWriter(&cw)
		w.Anonymize = true
		for _, r := range ds.Records {
			if err := w.Write(r); err != nil {
				panic(err)
			}
			n++
		}
		if err := w.Flush(); err != nil {
			panic(err)
		}
	}
	return n, cw.n
}

// runSerializeBinary measures the binary columnar writer on the same
// dataset as runSerializeCSV.
func runSerializeBinary(ctx context.Context, quick bool) (int64, int64) {
	ds, reps := serializeDataset(quick)
	var cw countWriter
	var n int64
	for i := 0; i < reps; i++ {
		if ctx.Err() != nil {
			break
		}
		w := traces.NewBinaryWriter(&cw)
		w.Anonymize = true
		for _, r := range ds.Records {
			if err := w.Write(r); err != nil {
				panic(err)
			}
			n++
		}
		if err := w.Flush(); err != nil {
			panic(err)
		}
	}
	return n, cw.n
}

// runSerializeBinaryParallel measures the parallel binary writer at
// GOMAXPROCS workers on the same dataset — byte-identical output to
// serialize/binary, so the rec/s delta between the two is pure encoding
// parallelism (zero at GOMAXPROCS=1, where the pool is overhead).
func runSerializeBinaryParallel(ctx context.Context, quick bool) (int64, int64) {
	ds, reps := serializeDataset(quick)
	var cw countWriter
	var n int64
	for i := 0; i < reps; i++ {
		if ctx.Err() != nil {
			break
		}
		w := traces.NewParallelBinaryWriter(&cw, runtime.GOMAXPROCS(0))
		w.Anonymize = true
		for _, r := range ds.Records {
			if err := w.Write(r); err != nil {
				panic(err)
			}
			n++
		}
		if err := w.Flush(); err != nil {
			panic(err)
		}
	}
	return n, cw.n
}

// runSerializeFlate measures the compressed archival tier (flate frames
// plus seek index) at GOMAXPROCS workers on the same dataset. Bytes are
// post-compression, so MB/s here is not comparable to serialize/binary —
// rec/s is the cross-format axis.
func runSerializeFlate(ctx context.Context, quick bool) (int64, int64) {
	ds, reps := serializeDataset(quick)
	var cw countWriter
	var n int64
	for i := 0; i < reps; i++ {
		if ctx.Err() != nil {
			break
		}
		w := traces.NewFlateWriter(&cw, runtime.GOMAXPROCS(0))
		w.Anonymize = true
		for _, r := range ds.Records {
			if err := w.Write(r); err != nil {
				panic(err)
			}
			n++
		}
		if err := w.Flush(); err != nil {
			panic(err)
		}
	}
	return n, cw.n
}

// runExportBinary measures the flagship end-to-end path: 8-shard ordered
// streaming through the Records iterator straight into the binary writer,
// nothing materialized.
func runExportBinary(ctx context.Context, quick bool) (int64, int64) {
	scale, reps := scalesFor(quick)
	reps = (reps + 1) / 2
	cfg := workload.Home1(scale)
	var cw countWriter
	var n int64
	for i := 0; i < reps; i++ {
		if ctx.Err() != nil {
			break
		}
		w := traces.NewBinaryWriter(&cw)
		w.Anonymize = true
		for r, err := range fleet.Records(ctx, cfg, benchSeed, fleet.Config{Shards: 8}) {
			if err != nil {
				return n, cw.n
			}
			if err := w.Write(r); err != nil {
				panic(err)
			}
			n++
		}
		if err := w.Flush(); err != nil {
			panic(err)
		}
	}
	return n, cw.n
}

// runExportBinaryParallel is runExportBinary with block encoding spread
// over GOMAXPROCS workers — the configuration dropsim -format=binary
// -serialize-workers uses, and the scenario that shows serialization
// keeping up with generation on multi-core machines (the output bytes
// are identical to export/home1-8shard-binary by the determinism
// contract).
func runExportBinaryParallel(ctx context.Context, quick bool) (int64, int64) {
	scale, reps := scalesFor(quick)
	reps = (reps + 1) / 2
	cfg := workload.Home1(scale)
	var cw countWriter
	var n int64
	for i := 0; i < reps; i++ {
		if ctx.Err() != nil {
			break
		}
		w := traces.NewParallelBinaryWriter(&cw, runtime.GOMAXPROCS(0))
		w.Anonymize = true
		for r, err := range fleet.Records(ctx, cfg, benchSeed, fleet.Config{Shards: 8}) {
			if err != nil {
				return n, cw.n
			}
			if err := w.Write(r); err != nil {
				panic(err)
			}
			n++
		}
		if err := w.Flush(); err != nil {
			panic(err)
		}
	}
	return n, cw.n
}

// arrivalsCache memoizes the backend arrival set per scale, so the fleet
// collection happens once — in the setup phase, outside the measured
// region (the event loop, not arrival derivation, is what this scenario
// tracks).
var arrivalsCache = map[bool][]backend.Request{}

// backendArrivals returns the pinned backend arrival set of the
// backend/saturation scenario.
func backendArrivals(quick bool) []backend.Request {
	reqs := arrivalsCache[quick]
	if reqs == nil {
		scale, _ := scalesFor(quick)
		var err error
		reqs, _, err = backend.CollectArrivals(context.Background(),
			workload.Home1(scale), benchSeed, fleet.Config{Shards: 8})
		if err != nil {
			panic(err)
		}
		arrivalsCache[quick] = reqs
	}
	return reqs
}

// warmBackendArrivals is the backend scenario's setup hook.
func warmBackendArrivals(quick bool) { backendArrivals(quick) }

// runBackendSaturation measures the discrete-event backend simulation:
// the provisioned deployment replayed below and above its saturation
// knee (the two regimes exercise short-queue and deep-queue event-loop
// behavior). Records here are processed simulation events, so
// records_per_sec is the event-loop throughput in events/sec.
func runBackendSaturation(ctx context.Context, quick bool) (int64, int64) {
	reqs := backendArrivals(quick)
	cfg, err := backend.PresetConfig(backend.PresetProvisioned, reqs)
	if err != nil {
		panic(err)
	}
	knee, ok := backend.SaturationPoint(cfg, reqs)
	if !ok {
		panic("bench: provisioned preset has no bounded class")
	}
	reps := 4
	if quick {
		reps = 2
	}
	var events int64
	for i := 0; i < reps; i++ {
		for _, f := range []float64{0.5, 2} {
			rep, err := backend.Simulate(ctx, cfg, backend.ScaleLoad(reqs, f*knee))
			if err != nil {
				return events, 0
			}
			events += rep.Events
		}
	}
	return events, 0
}

// scenarioCache memoizes the compiled cohort-mix spec per scale; the
// compilation (cheap, pure) happens in the setup phase so the measured
// region is the scenario streaming path alone.
var scenarioCache = map[bool]*scenariopkg.Compiled{}

// scenarioCompiled returns the pinned cohort-mix scenario of the
// scenario/cohort-mix benchmark: the three most behaviorally divergent
// presets over the Home 1 population, 8 shards.
func scenarioCompiled(quick bool) *scenariopkg.Compiled {
	c := scenarioCache[quick]
	if c == nil {
		scale, _ := scalesFor(quick)
		sp := &scenariopkg.Spec{
			Schema: scenariopkg.Schema,
			Name:   "bench-cohort-mix",
			Base:   scenariopkg.BaseSpec{VP: "home1", Scale: scale, Shards: 8},
			Cohorts: []scenariopkg.CohortSpec{
				{Name: "office", Preset: "office-worker", Weight: 0.5},
				{Name: "mobile", Preset: "mobile-intermittent", Weight: 0.3},
				{Name: "bots", Preset: "ci-bot", Weight: 0.2},
			},
		}
		var err error
		c, err = scenariopkg.Compile(sp, benchSeed)
		if err != nil {
			panic(err)
		}
		scenarioCache[quick] = c
	}
	return c
}

// warmScenarioCompiled is the scenario benchmark's setup hook.
func warmScenarioCompiled(quick bool) { scenarioCompiled(quick) }

// runScenarioCohortMix measures the declarative-scenario streaming path:
// cohort-overlaid generation across 8 shards, per-shard CSV
// fingerprinting and backend-arrival collection in one pass — the full
// CollectStream pipeline the scenario/* experiments run on.
func runScenarioCohortMix(ctx context.Context, quick bool) (int64, int64) {
	c := scenarioCompiled(quick)
	_, reps := scalesFor(quick)
	var n int64
	for i := 0; i < reps; i++ {
		res, err := scenariopkg.CollectStream(ctx, c, 0)
		if err != nil {
			break
		}
		n += int64(res.Stats.Records)
	}
	return n, 0
}

// runCampaign measures the checkpointing campaign runner end to end —
// shard-range fan-out, per-shard checkpoint commits, and the canonical-
// order merge into a binary export — at a pinned job count. Each rep runs
// in a fresh directory so checkpoint resume never short-circuits the
// measured work. The 1-core and multicore variants differ only in jobs
// and the forced GOMAXPROCS (see the scenario's procs field); their
// rec/s ratio is the fan-out speedup PERFORMANCE.md tracks.
func runCampaign(ctx context.Context, quick bool, jobs int) (int64, int64) {
	scale, reps := scalesFor(quick)
	var recs, bytes int64
	for i := 0; i < reps; i++ {
		if ctx.Err() != nil {
			break
		}
		dir, err := os.MkdirTemp("", "bench-campaign-")
		if err != nil {
			panic(err)
		}
		res, err := campaign.Run(ctx, campaign.Config{
			Spec: campaign.Spec{VP: "home1", Scale: scale, Seed: benchSeed, Shards: 8, Format: "binary"},
			Dir:  dir,
			Jobs: jobs,
		})
		if err == nil {
			recs += int64(res.Records)
			bytes += res.ExportBytes
		}
		os.RemoveAll(dir)
		if err != nil {
			break
		}
	}
	return recs, bytes
}

func runCampaign1Core(ctx context.Context, quick bool) (int64, int64) {
	return runCampaign(ctx, quick, 1)
}

func runCampaignMultiCore(ctx context.Context, quick bool) (int64, int64) {
	return runCampaign(ctx, quick, 8)
}

// ---------- persistence, discovery, comparison ----------

// FileName returns the canonical report file name for a revision label.
func FileName(rev string) string { return "BENCH_" + rev + ".json" }

// Write renders the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Save writes the report to path.
func (r *Report) Save(path string) error {
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// Load parses one BENCH_*.json.
func Load(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(bufio.NewReader(f)).Decode(&rep); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("bench: %s has schema %d, want %d", path, rep.Schema, Schema)
	}
	return &rep, nil
}

// FindLatest returns the most recently recorded BENCH_*.json in dir (by
// recorded_at_unix, ties broken by file name), or "" when none exist.
// Reports whose Quick flag matches the requested scale are preferred —
// allocs-per-record carries scale-dependent warm-up amortization, so a
// quick CI run should gate against the committed quick reference — with
// any-scale reports as the fallback.
func FindLatest(dir string, quick bool) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	sort.Strings(matches)
	best, bestAt := "", int64(-1)
	anyBest, anyAt := "", int64(-1)
	for _, m := range matches {
		rep, err := Load(m)
		if err != nil {
			continue // unreadable or foreign-schema files never win
		}
		if rep.RecordedAtUnix >= anyAt {
			anyBest, anyAt = m, rep.RecordedAtUnix
		}
		if rep.Quick == quick && rep.RecordedAtUnix >= bestAt {
			best, bestAt = m, rep.RecordedAtUnix
		}
	}
	if best == "" {
		best = anyBest
	}
	return best, nil
}

// Scenario returns a report's scenario by name (nil if absent).
func (r *Report) Scenario(name string) *ScenarioResult {
	for i := range r.Scenarios {
		if r.Scenarios[i].Name == name {
			return &r.Scenarios[i]
		}
	}
	return nil
}

// Compare checks current against a baseline report and returns one
// violation string per scenario whose allocs-per-record regressed beyond
// maxAllocsRatio (e.g. 2 fails anything worse than 2x the baseline).
// Scenarios missing from either side are skipped: the gate is
// timing-independent, so it is safe on noisy CI machines. A baseline
// recorded at a different Quick scale is compared all the same —
// allocs-per-record is nearly scale-invariant — but the mismatch is
// called out in the returned notes.
func Compare(current, baseline *Report, maxAllocsRatio float64) (violations, notes []string) {
	if current.Quick != baseline.Quick {
		notes = append(notes, fmt.Sprintf(
			"note: comparing quick=%v run against quick=%v baseline %s",
			current.Quick, baseline.Quick, baseline.Rev))
	}
	for _, cur := range current.Scenarios {
		base := baseline.Scenario(cur.Name)
		if base == nil || base.Records == 0 || cur.Records == 0 {
			continue
		}
		if base.AllocsPerRecord <= 0 {
			continue
		}
		ratio := cur.AllocsPerRecord / base.AllocsPerRecord
		if ratio > maxAllocsRatio {
			violations = append(violations, fmt.Sprintf(
				"%s: %.2f allocs/record vs baseline %.2f (%.2fx > %.2fx limit, baseline %s)",
				cur.Name, cur.AllocsPerRecord, base.AllocsPerRecord, ratio,
				maxAllocsRatio, baseline.Rev))
		} else {
			notes = append(notes, fmt.Sprintf("%s: %.2fx baseline allocs/record",
				cur.Name, ratio))
		}
	}
	return violations, notes
}

// DeltaSummary renders one line per scenario present in both reports,
// comparing throughput and allocator pressure against the baseline —
// the human-readable companion to Compare's pass/fail gate. Timing
// deltas are annotated, not gated: wall-clock noise on shared CI boxes
// makes them advisory. A GOMAXPROCS mismatch is flagged on the line,
// since parallel-scenario throughput is not comparable across it.
func DeltaSummary(current, baseline *Report) []string {
	var lines []string
	for _, cur := range current.Scenarios {
		base := baseline.Scenario(cur.Name)
		if base == nil || base.Records == 0 || cur.Records == 0 {
			continue
		}
		line := fmt.Sprintf("%-28s %9.0f rec/s (%s)  %6.2f allocs/rec (%s)",
			cur.Name,
			cur.RecordsPerSec, pctDelta(cur.RecordsPerSec, base.RecordsPerSec),
			cur.AllocsPerRecord, pctDelta(cur.AllocsPerRecord, base.AllocsPerRecord))
		if cur.MBPerSec > 0 && base.MBPerSec > 0 {
			line += fmt.Sprintf("  %8.1f MB/s (%s)", cur.MBPerSec, pctDelta(cur.MBPerSec, base.MBPerSec))
		}
		if cur.GOMAXPROCS != base.GOMAXPROCS && cur.GOMAXPROCS > 0 && base.GOMAXPROCS > 0 {
			line += fmt.Sprintf("  [gomaxprocs %d vs %d]", cur.GOMAXPROCS, base.GOMAXPROCS)
		}
		lines = append(lines, line)
	}
	return lines
}

// pctDelta formats a signed percentage change versus a baseline value.
func pctDelta(cur, base float64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (cur/base-1)*100)
}

// peakRSS reads the process high-water RSS (VmHWM) from /proc/self/status;
// 0 on platforms without procfs.
func peakRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
