package bench

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSerializeScenarios runs the serialization scenarios at quick
// scale: the harness must produce populated, internally consistent
// measurements.
func TestRunSerializeScenarios(t *testing.T) {
	rep := Run(context.Background(), Options{
		Quick:  true,
		Rev:    "test",
		Filter: func(name string) bool { return strings.HasPrefix(name, "serialize/") },
	})
	if len(rep.Scenarios) != 4 {
		t.Fatalf("got %d scenarios, want 4", len(rep.Scenarios))
	}
	for _, s := range rep.Scenarios {
		if s.Records == 0 || s.Seconds <= 0 || s.RecordsPerSec <= 0 {
			t.Fatalf("unpopulated scenario %+v", s)
		}
		if s.Bytes == 0 || s.MBPerSec <= 0 {
			t.Fatalf("serializer scenario without byte accounting: %+v", s)
		}
	}
	csv, bin := rep.Scenario("serialize/csv"), rep.Scenario("serialize/binary")
	if csv == nil || bin == nil {
		t.Fatal("scenario lookup failed")
	}
	// The binary format's core size claim, pinned at harness level.
	if ratio := float64(csv.Bytes) / float64(bin.Bytes); ratio < 3 {
		t.Fatalf("binary output only %.2fx smaller than CSV, want >= 3x", ratio)
	}
	// The parallel writer emits byte-identical streams, so per-rep volume
	// must match the sequential writer exactly.
	par := rep.Scenario("serialize/binary-parallel")
	if par == nil {
		t.Fatal("serialize/binary-parallel missing")
	}
	if par.Bytes != bin.Bytes || par.Records != bin.Records {
		t.Fatalf("parallel scenario volume %d bytes/%d recs differs from sequential %d/%d",
			par.Bytes, par.Records, bin.Bytes, bin.Records)
	}
	// And the archival tier's size claim: flate frames beat raw binary.
	fl := rep.Scenario("serialize/flate")
	if fl == nil {
		t.Fatal("serialize/flate missing")
	}
	if fl.Bytes >= bin.Bytes {
		t.Fatalf("flate output %d bytes not smaller than raw binary %d", fl.Bytes, bin.Bytes)
	}
}

func TestSaveLoadCompareFindLatest(t *testing.T) {
	dir := t.TempDir()
	base := &Report{
		Schema: Schema, Rev: "old", RecordedAtUnix: 100, Quick: false,
		Scenarios: []ScenarioResult{
			{Name: "fleet/home1-8shard", Records: 1000, AllocsPerRecord: 3.0},
		},
	}
	quickRef := &Report{
		Schema: Schema, Rev: "old-quick", RecordedAtUnix: 50, Quick: true,
		Scenarios: []ScenarioResult{
			{Name: "fleet/home1-8shard", Records: 100, AllocsPerRecord: 3.5},
		},
	}
	for _, r := range []*Report{base, quickRef} {
		if err := r.Save(filepath.Join(dir, FileName(r.Rev))); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt files are skipped, not fatal.
	if err := os.WriteFile(filepath.Join(dir, "BENCH_garbage.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := Load(filepath.Join(dir, FileName("old")))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rev != "old" || got.Scenarios[0].AllocsPerRecord != 3.0 {
		t.Fatalf("round trip mangled report: %+v", got)
	}

	// FindLatest prefers the matching-scale report even when an
	// other-scale one is newer.
	if p, _ := FindLatest(dir, true); filepath.Base(p) != FileName("old-quick") {
		t.Fatalf("quick lookup returned %s", p)
	}
	if p, _ := FindLatest(dir, false); filepath.Base(p) != FileName("old") {
		t.Fatalf("full lookup returned %s", p)
	}

	cur := &Report{
		Schema: Schema, Rev: "new", Quick: false,
		Scenarios: []ScenarioResult{
			{Name: "fleet/home1-8shard", Records: 1000, AllocsPerRecord: 6.5},
			{Name: "not/in-baseline", Records: 10, AllocsPerRecord: 99},
		},
	}
	violations, _ := Compare(cur, base, 2.0)
	if len(violations) != 1 || !strings.Contains(violations[0], "fleet/home1-8shard") {
		t.Fatalf("want one fleet violation, got %v", violations)
	}
	if violations, _ := Compare(cur, base, 3.0); len(violations) != 0 {
		t.Fatalf("6.5 allocs vs 3.0 baseline should pass a 3x gate, got %v", violations)
	}
}
