package flowmodel

import (
	"reflect"
	"testing"
	"time"

	"insidedropbox/internal/capability"
	"insidedropbox/internal/classify"
	"insidedropbox/internal/dropbox"
	"insidedropbox/internal/simrand"
)

// TestCapsPresetMatchesVersionSynthesis pins the flow-model side of the
// capability contract: Params carrying the preset profile synthesize
// byte-identical records to Params carrying the legacy Version switch.
func TestCapsPresetMatchesVersionSynthesis(t *testing.T) {
	chunks := []int{20_000, 20_000, 3_000_000, 500, 4 << 20, 80_000}
	for _, tc := range []struct {
		version dropbox.Version
		preset  capability.Profile
	}{
		{dropbox.V1252, capability.DropboxV1252()},
		{dropbox.V140, capability.DropboxV140()},
	} {
		for _, dir := range []classify.Direction{classify.DirStore, classify.DirRetrieve} {
			spec := StorageFlowSpec{Dir: dir, ChunkWires: chunks, ServerClosesIdle: true}

			rngA := simrand.New(11, "caps-eq")
			pA := DefaultParams(95 * time.Millisecond)
			pA.Version = tc.version
			legacy := Synthesize(rngA, pA, spec)

			rngB := simrand.New(11, "caps-eq")
			pB := DefaultParams(95 * time.Millisecond)
			prof := tc.preset
			pB.Caps = &prof
			got := Synthesize(rngB, pB, spec)

			if !reflect.DeepEqual(legacy, got) {
				t.Fatalf("%v/%v: caps synthesis diverged:\nlegacy %+v\ncaps   %+v",
					tc.version, dir, legacy, got)
			}
		}
	}
}

// TestPipelinedProfileRemovesAckFloor pins the pipelined timing model: the
// same multi-operation flow completes much faster without per-operation
// acknowledgment waits, while its byte accounting stays identical.
func TestPipelinedProfileRemovesAckFloor(t *testing.T) {
	small := make([]int, 50)
	for i := range small {
		small[i] = 20_000
	}
	spec := StorageFlowSpec{Dir: classify.DirStore, ChunkWires: small}

	seqRng := simrand.New(7, "pipe")
	pSeq := DefaultParams(90 * time.Millisecond)
	seq := Synthesize(seqRng, pSeq, spec)

	pipeRng := simrand.New(7, "pipe")
	pPipe := DefaultParams(90 * time.Millisecond)
	prof := capability.DropboxV1252() // per-chunk ops, so pipelining has work to do
	prof.CommitPipelining = true
	pPipe.Caps = &prof
	pipe := Synthesize(pipeRng, pPipe, spec)

	if pipe.BytesUp != seq.BytesUp || pipe.BytesDown != seq.BytesDown ||
		pipe.PSHUp != seq.PSHUp || pipe.PSHDown != seq.PSHDown {
		t.Fatalf("pipelining changed byte accounting: %+v vs %+v", pipe, seq)
	}
	seqDur := classify.TransferDuration(seq, classify.DirStore)
	pipeDur := classify.TransferDuration(pipe, classify.DirStore)
	// Pipelining removes per-op acknowledgment round trips and server
	// reactions but keeps the client's own issue spacing (the packet-level
	// pipelined client still separates issues by a reaction time), so the
	// win is large but bounded — at least 2x here, not free.
	if pipeDur*2 > seqDur {
		t.Fatalf("pipelining should collapse the ack floor: sequential %v vs pipelined %v",
			seqDur, pipeDur)
	}
}

// TestCustomBundleTargetGroupsOps exercises a non-default bundle target:
// chunks below the large-chunk threshold (target/4) pack until the target,
// so a 16 MB target bundles five 3 MB chunks into one operation where the
// default 4 MB target makes each its own (3 MB exceeds 4 MB/4).
func TestCustomBundleTargetGroupsOps(t *testing.T) {
	chunks := []int{3 << 20, 3 << 20, 3 << 20, 3 << 20, 3 << 20}
	if ops := groupOpsInto(nil, capability.BigChunks16MB(), chunks); len(ops) != 1 {
		t.Fatalf("16MB target should bundle five 3MB chunks into 1 op, got %d", len(ops))
	}
	if ops := groupOpsInto(nil, capability.DropboxV140(), chunks); len(ops) != 5 {
		t.Fatalf("4MB target should cut each 3MB chunk into its own op, got %d", len(ops))
	}
}
