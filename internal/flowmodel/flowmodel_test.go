package flowmodel

import (
	"math"
	"strings"
	"testing"
	"time"

	"insidedropbox/internal/chunker"
	"insidedropbox/internal/classify"
	"insidedropbox/internal/dnssim"
	"insidedropbox/internal/dropbox"
	"insidedropbox/internal/netem"
	"insidedropbox/internal/simrand"
	"insidedropbox/internal/simtime"
	"insidedropbox/internal/tcpsim"
	"insidedropbox/internal/tlssim"
	"insidedropbox/internal/traces"
	"insidedropbox/internal/tstat"
	"insidedropbox/internal/wire"
)

func TestHandshakeRTTs(t *testing.T) {
	if HandshakeRTTs(3) != 3 {
		t.Fatalf("IW=3: %d RTTs", HandshakeRTTs(3))
	}
	if HandshakeRTTs(2) != 4 {
		t.Fatalf("IW=2: %d RTTs (pre-1.4.0 extra pause)", HandshakeRTTs(2))
	}
	if HandshakeRTTs(10) != 3 {
		t.Fatalf("IW=10: %d RTTs", HandshakeRTTs(10))
	}
}

func TestThetaShape(t *testing.T) {
	rtt := 90 * time.Millisecond
	// Tiny transfer: bounded by handshake+1 round = 4 RTTs.
	if got := ThetaLatency(100, rtt, 3); got != 4*rtt {
		t.Fatalf("tiny latency = %v", got)
	}
	// Monotone: more bytes, no lower latency; higher throughput bound.
	prevLat := time.Duration(0)
	prevTheta := 0.0
	for _, size := range []int64{1_000, 10_000, 100_000, 1_000_000, 10_000_000} {
		lat := ThetaLatency(size, rtt, 3)
		if lat < prevLat {
			t.Fatalf("latency decreased at %d", size)
		}
		th := Theta(size, rtt, 3)
		if th < prevTheta {
			t.Fatalf("theta decreased at %d: %f < %f", size, th, prevTheta)
		}
		prevLat, prevTheta = lat, th
	}
	// The paper's observation: a flow of ~50 kB cannot exceed ~1 Mbit/s at
	// 90 ms RTT.
	if th := Theta(50_000, rtt, 3); th > 1.2e6 {
		t.Fatalf("theta(50kB) = %f — slow start bound too loose", th)
	}
	if Theta(0, rtt, 3) != 0 {
		t.Fatal("theta of empty transfer")
	}
}

func TestGroupOpsV1252OnePerChunk(t *testing.T) {
	ops := groupOpsInto(nil, dropbox.V1252.Profile(), []int{100, 200, 300})
	if len(ops) != 3 {
		t.Fatalf("ops = %d", len(ops))
	}
}

func TestGroupOpsV140Bundles(t *testing.T) {
	chunks := make([]int, 40)
	for i := range chunks {
		chunks[i] = 50_000
	}
	ops := groupOpsInto(nil, dropbox.V140.Profile(), chunks)
	if len(ops) != 1 {
		t.Fatalf("40 small chunks should bundle into 1 op, got %d", len(ops))
	}
	// Large chunks break bundles.
	ops = groupOpsInto(nil, dropbox.V140.Profile(), []int{4 << 20, 4 << 20})
	if len(ops) != 2 {
		t.Fatalf("two 4MB chunks = %d ops", len(ops))
	}
}

func TestSynthesizedBytesFollowConstants(t *testing.T) {
	rng := simrand.New(3, "t")
	p := DefaultParams(90 * time.Millisecond)
	rec := Synthesize(rng, p, StorageFlowSpec{
		Dir: classify.DirStore, ChunkWires: []int{100_000, 100_000}, ServerClosesIdle: true,
	})
	wantUp := int64(294 + 2*tlssim.MessageWireSize(634+100_000))
	if rec.BytesUp != wantUp {
		t.Fatalf("bytes up = %d, want %d", rec.BytesUp, wantUp)
	}
	wantDown := int64(4103 + 2*tlssim.MessageWireSize(309) + 7)
	if rec.BytesDown != wantDown {
		t.Fatalf("bytes down = %d, want %d", rec.BytesDown, wantDown)
	}
	if rec.PSHDown != 5 { // hello+finish+2 OKs+alert
		t.Fatalf("psh down = %d", rec.PSHDown)
	}
	// The paper's estimators must recover the truth from this record.
	if classify.TagStorage(rec) != classify.DirStore {
		t.Fatal("synthesized store flow tagged retrieve")
	}
	if got := classify.EstimateChunks(rec, classify.DirStore); got != 2 {
		t.Fatalf("estimated chunks = %d", got)
	}
}

func TestSynthesizedRetrieveTagging(t *testing.T) {
	rng := simrand.New(4, "t")
	p := DefaultParams(90 * time.Millisecond)
	rec := Synthesize(rng, p, StorageFlowSpec{
		Dir: classify.DirRetrieve, ChunkWires: []int{500_000}, ServerClosesIdle: true,
	})
	if classify.TagStorage(rec) != classify.DirRetrieve {
		t.Fatal("synthesized retrieve flow tagged store")
	}
	if got := classify.EstimateChunks(rec, classify.DirRetrieve); got != 1 {
		t.Fatalf("estimated chunks = %d", got)
	}
	// Duration accounting must survive the 60 s idle-close compensation.
	d := classify.TransferDuration(rec, classify.DirRetrieve)
	if d > 30*time.Second {
		t.Fatalf("retrieve duration = %v — idle close not compensated", d)
	}
}

// packetTruth runs the same transfer through the full packet-level stack
// and returns the probe's record.
func packetTruth(t *testing.T, dir classify.Direction, chunkSizes []int, version dropbox.Version) *traces.FlowRecord {
	t.Helper()
	sched := simtime.NewScheduler()
	rng := simrand.New(21, "calib")
	net := netem.New(sched, rng)
	net.SetCoreDelay("vp", dnssim.AmazonDC, 45*time.Millisecond)
	net.SetCoreDelay("vp", dnssim.DropboxDC, 85*time.Millisecond)
	dir2 := dnssim.Build(dnssim.Layout{MetaIPs: 2, NotifyIPs: 2, StorageNames: 4, StorageIPs: 4})
	svc := dropbox.NewService(dropbox.ServiceConfig{
		Sched: sched, Net: net, Rng: rng, Dir: dir2, ServerTCP: tcpsim.DefaultConfig(),
	})
	resolver := dnssim.NewResolver(dir2, rng)
	probe := tstat.New(sched, tstat.DefaultConfig("calib"))
	var recs []*traces.FlowRecord
	probe.OnRecord = func(r *traces.FlowRecord) { recs = append(recs, r) }
	resolver.Log = probe.ObserveDNS
	net.AttachTap("vp", probe)

	mk := func(ip wire.IP) *dropbox.Device {
		host := net.AddHost(ip, "vp", netem.WiredWorkstation())
		stack := tcpsim.NewStack(host, sched, rng, tcpsim.DefaultConfig())
		acct := svc.Meta.CreateAccount()
		dev, err := dropbox.NewDevice(dropbox.ClientConfig{
			Sched: sched, Rng: rng, Service: svc, Resolver: resolver,
			Stack: stack, Version: version, Handshake: tlssim.DefaultHandshake(),
		}, acct.ID)
		if err != nil {
			t.Fatal(err)
		}
		return dev
	}
	var refs []chunker.Ref
	for i, sz := range chunkSizes {
		f := chunker.SyntheticFile{Seed: uint64(i)*31 + 5, Size: int64(sz)}
		refs = append(refs, f.Refs()...)
	}
	wireOf := func(r chunker.Ref) int { return r.Size }

	uploader := mk(wire.MakeIP(10, 0, 0, 1))
	uploader.Start()
	ns := svc.Meta.Account(uploader.Account).Root
	sched.After(2*time.Second, func() { uploader.Upload(ns, refs, wireOf, nil) })
	if dir == classify.DirRetrieve {
		// A second account shares the folder and downloads.
		dl := mk(wire.MakeIP(10, 0, 0, 2))
		shared, err := svc.Meta.ShareFolder(uploader.Account, dl.Account)
		if err != nil {
			t.Fatal(err)
		}
		// Re-provision devices so they subscribe to the share: simpler to
		// upload into the shared namespace directly.
		_ = shared
		t.Fatal("retrieve calibration uses downloadTruth helper instead")
	}
	sched.RunUntil(simtime.Time(20 * time.Minute))
	probe.FlushAll()
	for _, r := range recs {
		if strings.HasPrefix(r.FQDN, "dl-client") {
			return r
		}
	}
	t.Fatal("no storage flow captured")
	return nil
}

func TestCalibrationStoreV1252(t *testing.T) {
	chunks := []int{150_000, 150_000, 150_000, 150_000}
	truth := packetTruth(t, classify.DirStore, chunks, dropbox.V1252)

	rng := simrand.New(22, "calib2")
	p := DefaultParams(truth.MinRTT)
	model := Synthesize(rng, p, StorageFlowSpec{
		Dir: classify.DirStore, ChunkWires: chunks,
		Start: truth.FirstPacket, ServerClosesIdle: truth.ServerClosed,
	})

	// Bytes agree exactly.
	if model.BytesUp != truth.BytesUp {
		t.Errorf("bytes up: model %d vs packet %d", model.BytesUp, truth.BytesUp)
	}
	if model.BytesDown != truth.BytesDown {
		t.Errorf("bytes down: model %d vs packet %d", model.BytesDown, truth.BytesDown)
	}
	// PSH agree exactly.
	if model.PSHUp != truth.PSHUp || model.PSHDown != truth.PSHDown {
		t.Errorf("psh: model %d/%d vs packet %d/%d",
			model.PSHUp, model.PSHDown, truth.PSHUp, truth.PSHDown)
	}
	// Durations agree within tolerance.
	md := classify.TransferDuration(model, classify.DirStore).Seconds()
	td := classify.TransferDuration(truth, classify.DirStore).Seconds()
	if ratio := md / td; math.Abs(ratio-1) > 0.35 {
		t.Errorf("duration: model %.2fs vs packet %.2fs (ratio %.2f)", md, td, ratio)
	}
}

func TestCalibrationStoreV140(t *testing.T) {
	chunks := []int{80_000, 80_000, 80_000, 80_000, 80_000, 80_000}
	truth := packetTruth(t, classify.DirStore, chunks, dropbox.V140)
	rng := simrand.New(23, "calib3")
	p := DefaultParams(truth.MinRTT)
	p.Version = dropbox.V140
	model := Synthesize(rng, p, StorageFlowSpec{
		Dir: classify.DirStore, ChunkWires: chunks,
		Start: truth.FirstPacket, ServerClosesIdle: truth.ServerClosed,
	})
	if model.BytesUp != truth.BytesUp {
		t.Errorf("bytes up: model %d vs packet %d", model.BytesUp, truth.BytesUp)
	}
	if model.PSHDown != truth.PSHDown {
		t.Errorf("psh down: model %d vs packet %d", model.PSHDown, truth.PSHDown)
	}
}

func TestModelShowsSequentialAckPenalty(t *testing.T) {
	// Many small chunks vs one big transfer of the same volume: the paper's
	// core performance finding is that the former is much slower.
	rng := simrand.New(5, "t")
	p := DefaultParams(90 * time.Millisecond)
	small := make([]int, 50)
	for i := range small {
		small[i] = 20_000
	}
	manyRec := Synthesize(rng, p, StorageFlowSpec{Dir: classify.DirStore, ChunkWires: small})
	oneRec := Synthesize(rng, p, StorageFlowSpec{Dir: classify.DirStore, ChunkWires: []int{1_000_000}})
	many := classify.TransferDuration(manyRec, classify.DirStore)
	one := classify.TransferDuration(oneRec, classify.DirStore)
	if many < 3*one {
		t.Fatalf("sequential acks: 50x20kB took %v, 1x1MB took %v — penalty missing", many, one)
	}
	// And v1.4.0 bundling removes most of it.
	p140 := p
	p140.Version = dropbox.V140
	rec140 := Synthesize(rng, p140, StorageFlowSpec{Dir: classify.DirStore, ChunkWires: small})
	bundled := classify.TransferDuration(rec140, classify.DirStore)
	if bundled*2 > many {
		t.Fatalf("bundling did not help: %v vs %v", bundled, many)
	}
}

func TestThroughputBelowTheta(t *testing.T) {
	// Synthesized single-chunk flows must respect the slow-start bound
	// (Fig. 9: θ approximates the maximum throughput).
	rng := simrand.New(6, "t")
	p := DefaultParams(90 * time.Millisecond)
	for _, size := range []int{5_000, 50_000, 500_000, 5_000_000} {
		rec := Synthesize(rng, p, StorageFlowSpec{Dir: classify.DirStore, ChunkWires: []int{size}})
		tp := classify.Throughput(rec, classify.DirStore)
		bound := Theta(classify.Payload(rec, classify.DirStore), p.RTT, p.IW)
		if tp > bound*1.15 {
			t.Fatalf("size %d: throughput %.0f exceeds θ %.0f", size, tp, bound)
		}
	}
}
