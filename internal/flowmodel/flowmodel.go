// Package flowmodel is the calibrated flow-level model of Dropbox storage
// flows: it synthesizes the flow records a probe would emit for a given
// transfer without simulating packets, using the protocol constants of
// Appendix A and a slow-start latency model following Dukkipati et al. [4]
// (the θ bound of Fig. 9).
//
// The paper's authors did the same in reverse: they measured per-operation
// overheads in a testbed and built flow-level models to interpret passive
// traces. Here the packet-level path (tcpsim + tlssim + tstat) is the
// ground truth, and property tests in this package's test suite verify that
// synthesized flows agree with packet-simulated ones on bytes exactly and
// on durations within a tolerance. Population-scale campaigns (42 days,
// thousands of households) then use this fast path.
package flowmodel

import (
	"time"

	"insidedropbox/internal/capability"
	"insidedropbox/internal/classify"
	"insidedropbox/internal/dropbox"
	"insidedropbox/internal/simrand"
	"insidedropbox/internal/tlssim"
	"insidedropbox/internal/traces"
	"insidedropbox/internal/wire"
)

// Params captures the path and protocol configuration of a vantage point.
type Params struct {
	// RTT is the probe-to-storage-server round trip.
	RTT time.Duration
	// Bandwidth is the bottleneck rate in bytes/second (min of access link
	// and per-server ceiling; the paper observed ~10 Mbit/s maxima).
	Bandwidth float64
	// IW is the server's initial congestion window in segments: 2 before
	// the 1.4.0 deployment (one extra handshake RTT), 3 after.
	IW int
	// ClientReaction / ServerReaction are median per-operation processing
	// times (Sec. 4.4.2 attributes much of long-flow duration to them).
	ClientReaction time.Duration
	ServerReaction time.Duration
	// Version selects per-chunk (1.2.52) or bundled (1.4.0) operations.
	// Caps, when set, overrides it with an arbitrary capability profile:
	// operation grouping follows the profile's bundling knobs, and
	// CommitPipelining switches the timing model from sequential
	// per-operation acknowledgments to overlapped transfers.
	Version dropbox.Version
	Caps    *capability.Profile
}

// profile resolves the effective capability profile of the params.
func (p Params) profile() capability.Profile {
	if p.Caps != nil {
		return *p.Caps
	}
	return p.Version.Profile()
}

// DefaultParams matches the packet-level defaults for a campus client.
func DefaultParams(rtt time.Duration) Params {
	return Params{
		RTT:            rtt,
		Bandwidth:      1.25e6,
		IW:             3,
		ClientReaction: 70 * time.Millisecond,
		ServerReaction: 45 * time.Millisecond,
		Version:        dropbox.V1252,
	}
}

// HandshakeRTTs returns the round trips before application data can flow:
// 1 TCP + 2 TLS, plus one more when the server's initial window cannot
// carry its 4031-byte first flight (IW=2, the pre-1.4.0 behaviour).
func HandshakeRTTs(iw int) int {
	if iw*wire.MSS >= 4031 {
		return 3
	}
	return 4
}

// ThetaLatency is the minimum time to complete a transfer of the given
// payload assuming the flow never leaves slow start: handshake round trips
// plus one round per congestion-window doubling (computed as in Dukkipati
// et al., adjusted for the SSL handshake overhead as the paper does).
func ThetaLatency(payload int64, rtt time.Duration, iw int) time.Duration {
	rounds := HandshakeRTTs(iw)
	cwnd := int64(iw) * wire.MSS
	remaining := payload
	for remaining > 0 {
		rounds++
		remaining -= cwnd
		cwnd *= 2
	}
	return time.Duration(rounds) * rtt
}

// Theta returns the slow-start throughput bound in bits/second for a
// transfer of the given payload (the θ curve of Fig. 9).
func Theta(payload int64, rtt time.Duration, iw int) float64 {
	if payload <= 0 {
		return 0
	}
	lat := ThetaLatency(payload, rtt, iw).Seconds()
	if lat <= 0 {
		return 0
	}
	return float64(payload) * 8 / lat
}

// StorageFlowSpec describes one storage flow to synthesize.
type StorageFlowSpec struct {
	Dir        classify.Direction
	ChunkWires []int // compressed per-chunk transfer sizes
	Start      time.Duration
	// ServerClosesIdle marks the flow as ending via the server's 60 s
	// idle close (alert + FIN answered by a client RST), the common case.
	ServerClosesIdle bool
}

// op groups chunks into storage operations per the capability profile.
type op struct {
	wire int // payload bytes of the operation's data message (sum of chunks)
}

// groupOpsInto appends the operation grouping of chunks to dst (usually a
// reused scratch slice) and returns it.
func groupOpsInto(dst []op, prof capability.Profile, chunks []int) []op {
	if !prof.Bundling {
		for _, c := range chunks {
			dst = append(dst, op{wire: c})
		}
		return dst
	}
	target := prof.BundleTarget()
	cur := op{}
	n := 0
	for _, c := range chunks {
		if n > 0 && cur.wire+c > target {
			dst = append(dst, cur)
			cur, n = op{}, 0
		}
		cur.wire += c
		n++
		if c >= target/4 {
			dst = append(dst, cur)
			cur, n = op{}, 0
		}
	}
	if n > 0 {
		dst = append(dst, cur)
	}
	return dst
}

// cwndModel tracks analytic slow-start growth across a flow.
type cwndModel struct {
	cwnd int64
	cap  int64
}

func newCwnd(iw int) *cwndModel {
	return &cwndModel{cwnd: int64(iw) * wire.MSS, cap: 1 << 20}
}

// transfer returns the time to move n bytes at the current window over a
// path with the given RTT and bottleneck rate, advancing the window.
func (c *cwndModel) transfer(n int64, rtt time.Duration, bw float64) time.Duration {
	var t time.Duration
	for n > 0 {
		send := c.cwnd
		if n < send {
			send = n
		}
		round := rtt
		if bw > 0 {
			tx := time.Duration(float64(send) / bw * float64(time.Second))
			if tx > round {
				round = tx
			}
		}
		t += round
		n -= send
		c.cwnd *= 2
		if c.cwnd > c.cap {
			c.cwnd = c.cap
		}
	}
	return t
}

// Synth carries the reusable scratch state of one synthesizing goroutine
// (the operation-grouping buffer). The zero value is ready to use; a Synth
// must not be shared across goroutines. Population-scale generators hold
// one per shard so per-flow synthesis allocates nothing but the record —
// and not even that when the caller supplies pooled records to
// SynthesizeInto.
type Synth struct {
	ops []op
}

// Synthesize produces the flow record the probe would emit for the spec.
// Byte counts follow the protocol constants exactly; durations follow the
// slow-start model plus per-operation reaction times and the sequential
// acknowledgment round trips.
func Synthesize(rng *simrand.Source, p Params, spec StorageFlowSpec) *traces.FlowRecord {
	var s Synth
	return s.SynthesizeInto(new(traces.FlowRecord), rng, p, spec)
}

// SynthesizeInto is Synthesize writing into caller-supplied storage: rec
// must be zero-valued (freshly allocated or reset by a record pool) and is
// returned filled. Nothing in rec is retained by the Synth.
func (s *Synth) SynthesizeInto(rec *traces.FlowRecord, rng *simrand.Source, p Params, spec StorageFlowSpec) *traces.FlowRecord {
	prof := p.profile()
	ops := groupOpsInto(s.ops[:0], prof, spec.ChunkWires)
	s.ops = ops
	hs := tlssim.DefaultHandshake()
	rec.FirstPacket = spec.Start
	rec.SawSYN = true
	rec.SNI = "dl-client0.dropbox.com"
	rec.CertName = "*.dropbox.com"
	rec.ServerPort = 443

	// --- byte accounting (exact) ---
	up := int64(hs.ClientBytes())
	down := int64(hs.ServerBytes())
	pshUp, pshDown := 2, 2 // hello + finish in each direction
	for _, o := range ops {
		if spec.Dir == classify.DirStore {
			up += int64(tlssim.MessageWireSize(dropbox.StoreClientOverhead + o.wire))
			down += int64(tlssim.MessageWireSize(dropbox.ServerOpOverhead))
			pshUp++   // data message
			pshDown++ // OK
		} else {
			req := dropbox.RetrieveClientOverheadMin +
				rng.Intn(dropbox.RetrieveClientOverheadMax-dropbox.RetrieveClientOverheadMin)
			up += int64(tlssim.MessageWireSize(req))
			down += int64(tlssim.MessageWireSize(dropbox.ServerOpOverhead + o.wire))
			pshUp += 2 // request sent as two PSH writes (Fig. 19b)
			pshDown++
		}
	}
	if spec.ServerClosesIdle {
		down += int64(wire.RecordHeaderLen + 2) // close-notify alert
		pshDown++
		rec.ServerClosed = true
		rec.SawRST = true // client answers with RST
	} else {
		rec.SawFIN = true
	}
	rec.BytesUp, rec.BytesDown = up, down
	rec.PSHUp, rec.PSHDown = pshUp, pshDown

	// --- timing model ---
	rtt := time.Duration(rng.Jitter(p.RTT, 0.01))
	t := spec.Start + time.Duration(HandshakeRTTs(p.IW))*rtt
	cw := newCwnd(p.IW)
	var lastUp, lastDown time.Duration
	lastUp = t - rtt/2 // client finish write
	lastDown = t - rtt // server finish
	if prof.CommitPipelining && len(ops) > 0 {
		// Pipelined commits: every operation is issued without waiting for
		// the previous acknowledgment, so per-operation round trips and
		// server reactions overlap with data transfer (removing the
		// sequential-acknowledgment floor of Sec. 4.4.2). What remains is
		// the client's own issue spacing — the packet-level pipelined
		// client still separates issues by a reaction time (hashing,
		// compression), so the flow takes at least that long — plus one
		// exposed server reaction at the boundary.
		var issueSpan time.Duration
		for i := range ops {
			if i > 0 {
				issueSpan += time.Duration(rng.LogNormalMedian(float64(p.ClientReaction), 0.5))
			}
		}
		srv := time.Duration(rng.LogNormalMedian(float64(p.ServerReaction), 0.5))
		var payload int64
		for _, o := range ops {
			if spec.Dir == classify.DirStore {
				payload += int64(dropbox.StoreClientOverhead + o.wire)
			} else {
				payload += int64(dropbox.ServerOpOverhead + o.wire)
			}
		}
		span := cw.transfer(payload, rtt, p.Bandwidth)
		if issueSpan > span {
			span = issueSpan
		}
		if spec.Dir == classify.DirStore {
			t += span
			lastUp = t - rtt/2 // last data segment passes the probe
			t += srv           // final OK trails the stream
			lastDown = t
		} else {
			// Requests issue from the handshake end over issueSpan; the
			// last one, not the first, is the final upstream payload
			// (otherwise long transfers trip the 60 s idle-close
			// compensation in classify.TransferDuration).
			lastUp = t + issueSpan
			t += rtt/2 + srv // first request reaches server, processing
			t += span
			lastDown = t - rtt/2
		}
	} else {
		for i, o := range ops {
			if i > 0 {
				t += time.Duration(rng.LogNormalMedian(float64(p.ClientReaction), 0.5))
			}
			srv := time.Duration(rng.LogNormalMedian(float64(p.ServerReaction), 0.5))
			if spec.Dir == classify.DirStore {
				dataT := cw.transfer(int64(dropbox.StoreClientOverhead+o.wire), rtt, p.Bandwidth)
				t += dataT
				lastUp = t - rtt/2 // last data segment passes the probe
				t += srv           // server processes, then the OK returns
				lastDown = t
			} else {
				t += rtt/2 + srv // request reaches server, processing
				dataT := cw.transfer(int64(dropbox.ServerOpOverhead+o.wire), rtt, p.Bandwidth)
				t += dataT
				lastUp = t - dataT - srv // request segments
				lastDown = t - rtt/2
			}
		}
	}
	rec.LastPayloadUp, rec.LastPayloadDown = lastUp, lastDown
	rec.LastPacket = t
	if spec.ServerClosesIdle {
		alert := t + dropbox.StorageIdleTimeout
		rec.LastPayloadDown = alert
		rec.LastPacket = alert + rtt/2
	}

	// --- probe-side estimates ---
	rec.MinRTT = rtt
	upSegs := int(up/wire.MSS) + len(ops) + 2
	rec.PktsUp = upSegs
	rec.PktsDown = int(down/wire.MSS) + len(ops) + 2
	samples := upSegs
	if spec.Dir == classify.DirRetrieve {
		samples = 2 + 2*len(ops)
	}
	rec.RTTSamples = samples
	return rec
}
