// Package campaign is the process-level runner for continental-scale
// trace campaigns: it splits one vantage-point campaign into independent
// shard-range jobs, executes them across all cores (or across separate
// processes via the plan/run/merge flow), and checkpoints per-shard
// progress so an interrupted run resumes exactly where it stopped.
//
// The layout on disk is one campaign directory holding:
//
//   - parts/shard-NNNN.part — the shard's record stream in the binary
//     columnar codec (full fidelity, never anonymized);
//   - parts/shard-NNNN.state — the shard's ShardStats plus mergeable
//     fleet.Summary aggregator state as JSON;
//   - checkpoint.ckpt (and checkpoint-job-NNN.ckpt per planned job) —
//     schema-versioned, CRC-guarded progress records listing completed
//     shards with the size and FNV-1a hash of each artifact;
//   - plan.ckpt — the shard-range job split for multi-process fan-out.
//
// Every checkpoint carries the campaign spec's fingerprint, so a
// checkpoint from a different spec, a truncated file, a corrupted
// payload, or a stale schema all fail loudly — there is no silent
// partial resume. Writes are atomic (tmp + fsync + rename): a crash mid
// checkpoint-write leaves the previous valid checkpoint plus a stray
// .tmp that the next run ignores and overwrites.
//
// Determinism contract (EXPERIMENTS.md point 16): each shard's stream is
// a pure function of (seed, shard, nshards) and parts are concatenated
// in canonical shard order at merge time, so the job count, the process
// count, GOMAXPROCS, and any kill/resume history never change a byte of
// the final export — only wall-clock time. Summary aggregators are
// restored per shard and folded left in shard-index order, matching
// fleet.Aggregate exactly, so even floating-point aggregates are
// bit-identical. The crash-injection suite pins all of this against the
// legacy golden stream hashes.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"insidedropbox/internal/capability"
	"insidedropbox/internal/fleet"
	"insidedropbox/internal/telemetry"
	"insidedropbox/internal/traces"
	"insidedropbox/internal/workload"
)

// Campaign telemetry: checkpoint events and resume provenance feed the
// same counter registry every other subsystem reports through, so run
// manifests pick them up without campaign-specific plumbing.
var (
	mCheckpoints   = telemetry.NewCounter("campaign.checkpoints_written")
	mShardsResumed = telemetry.NewCounter("campaign.shards_resumed")
	mShardRetries  = telemetry.NewCounter("campaign.shard_retries")
	mMerges        = telemetry.NewCounter("campaign.merges")
)

// Spec defines a campaign. It is the identity the checkpoint fingerprint
// derives from: two specs with equal fingerprints generate byte-identical
// campaigns, so resuming under a changed spec is always an error.
type Spec struct {
	// VP names the vantage point (campus1, campus1-junjul, campus2,
	// home1, home2).
	VP string `json:"vp"`
	// Scale is the population scale in percent of the paper's dataset.
	Scale float64 `json:"scale"`
	// Seed is the campaign's root random seed.
	Seed int64 `json:"seed"`
	// Shards partitions the population (part of the campaign identity,
	// exactly as in fleet.Config).
	Shards int `json:"shards"`
	// DevicesScale multiplies the subscriber population; <=0 means 1.
	DevicesScale float64 `json:"devices_scale,omitempty"`
	// Profile optionally swaps in a capability profile by name.
	Profile string `json:"profile,omitempty"`
	// Format is the final export encoding: csv (default), binary, or
	// binary-flate. Parts are always stored binary regardless.
	Format string `json:"format,omitempty"`
	// Anonymize replaces client addresses with stable opaque tokens in
	// the final export (parts always keep full fidelity).
	Anonymize bool `json:"anonymize,omitempty"`
}

// normalized fills defaults without validating.
func (s Spec) normalized() Spec {
	if s.DevicesScale <= 0 {
		s.DevicesScale = 1
	}
	if s.Format == "" {
		s.Format = "csv"
	}
	if s.Shards < 1 {
		s.Shards = 1
	}
	return s
}

// validate checks the normalized spec resolves to a runnable campaign.
func (s Spec) validate() error {
	if _, err := s.vpConfig(); err != nil {
		return err
	}
	if s.Scale <= 0 {
		return fmt.Errorf("campaign: spec scale must be > 0 (got %g)", s.Scale)
	}
	if s.Shards > workload.MaxShards {
		return fmt.Errorf("campaign: spec shards %d exceeds the maximum %d", s.Shards, workload.MaxShards)
	}
	switch s.Format {
	case "csv", "binary", "binary-flate":
	default:
		return fmt.Errorf("campaign: unknown export format %q (csv, binary, binary-flate)", s.Format)
	}
	return nil
}

// vpConfig resolves the spec's vantage point and capability profile into
// the scaled generation config.
func (s Spec) vpConfig() (workload.VPConfig, error) {
	var cfg workload.VPConfig
	switch s.VP {
	case "campus1":
		cfg = workload.Campus1(s.Scale)
	case "campus1-junjul":
		cfg = workload.Campus1JunJul(s.Scale)
	case "campus2":
		cfg = workload.Campus2(s.Scale)
	case "home1":
		cfg = workload.Home1(s.Scale)
	case "home2":
		cfg = workload.Home2(s.Scale)
	default:
		return cfg, fmt.Errorf("campaign: unknown vantage point %q (campus1, campus1-junjul, campus2, home1, home2)", s.VP)
	}
	if s.Profile != "" {
		p, ok := capability.ByName(s.Profile)
		if !ok {
			return cfg, fmt.Errorf("campaign: unknown capability profile %q (valid: %s)",
				s.Profile, strings.Join(capability.Names(), ", "))
		}
		cfg.Caps = &p
	}
	return fleet.Config{DevicesScale: s.DevicesScale}.ScaledVP(cfg), nil
}

// Fingerprint is the campaign's identity hash: FNV-1a over the canonical
// rendering of every spec field that affects generated bytes. Checkpoint
// files embed it, and loaders reject any mismatch.
func (s Spec) Fingerprint() string {
	s = s.normalized()
	h := fnv.New64a()
	fmt.Fprintf(h, "campaign|v1|vp=%s|scale=%g|seed=%d|shards=%d|devscale=%g|profile=%s|format=%s|anon=%t",
		s.VP, s.Scale, s.Seed, s.Shards, s.DevicesScale, s.Profile, s.Format, s.Anonymize)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Fingerprint hashes an arbitrary canonical identity string into the
// 16-hex-digit form checkpoints embed — shared with the facade's
// experiment-level checkpoints so every resume path validates identity
// the same way.
func Fingerprint(canonical string) string {
	h := fnv.New64a()
	io.WriteString(h, canonical)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Event reports campaign progress to a Config.Observer. Stages: "resume"
// (a shard skipped because the checkpoint already records it), "shard"
// (a shard generated and checkpointed), "retry" (a failed attempt about
// to be retried, with Err and Attempt set), "merge" (the final export
// committed). Events fire concurrently from job goroutines; observers
// must be safe for concurrent use. Observation only — an observer never
// changes campaign output.
type Event struct {
	Stage       string
	Shard       int
	Attempt     int
	Records     int
	Done, Total int
	Err         error
}

// Config drives one campaign run.
type Config struct {
	Spec Spec
	// Dir is the campaign directory (checkpoints and shard parts).
	Dir string
	// Out is the final export path; empty means Dir/export.<ext>.
	Out string
	// Jobs bounds how many shard-range jobs generate concurrently in
	// this process; 0 means GOMAXPROCS. Jobs never changes results.
	Jobs int
	// Resume permits continuing from existing checkpoints. Without it,
	// a directory that already holds checkpointed progress is an error —
	// never a silent partial resume.
	Resume bool
	// Retries bounds per-shard retry attempts after a failure: 0 means
	// the default (2 retries), negative disables retry entirely.
	Retries int
	// RetryBackoff is the first retry's delay, doubling per attempt;
	// 0 means the default (100ms).
	RetryBackoff time.Duration
	// Observer, when non-nil, receives progress Events (see Event).
	Observer func(Event)
	// AfterShard, when non-nil, runs after a shard's checkpoint entry is
	// durably committed — the hook process-kill harnesses attach to. It
	// runs on job goroutines; observation only.
	AfterShard func(shard int)

	// crashAt injects a hard stop at a named stage for the
	// crash-equivalence tests ("part", "state", "checkpoint-mid-write",
	// "checkpoint", "merge-mid-write"). Test-only.
	crashAt func(stage string, shard int)
	// failShard injects a transient per-attempt failure for the retry
	// tests. Test-only.
	failShard func(shard, attempt int) error
}

func (c Config) retries() int {
	switch {
	case c.Retries < 0:
		return 0
	case c.Retries == 0:
		return 2
	default:
		return c.Retries
	}
}

func (c Config) backoff() time.Duration {
	if c.RetryBackoff <= 0 {
		return 100 * time.Millisecond
	}
	return c.RetryBackoff
}

// Result describes a completed campaign.
type Result struct {
	Spec        Spec
	Records     int
	ExportPath  string
	ExportBytes int64
	// StreamHash is the FNV-1a hash of the export bytes, formatted
	// exactly like manifest stream hashes ("%016x").
	StreamHash string
	// Summary is the campaign's merged streaming aggregate, folded from
	// per-shard states in canonical shard order.
	Summary *fleet.Summary
	// Stats is the merged generation ground truth.
	Stats workload.ShardStats
	// ResumedShards counts shards satisfied from checkpoints;
	// GeneratedShards counts shards generated by this run.
	ResumedShards, GeneratedShards int
}

// Run executes a campaign start to finish in this process: generate (or
// resume) every shard across Jobs concurrent shard-range jobs, then merge
// the parts in canonical shard order into the final export. Cancelling
// ctx stops at shard granularity with all completed progress checkpointed
// — rerunning with Resume picks up exactly where it stopped, and the
// resumed export is byte-identical to an uninterrupted run.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	r, err := newRunner(cfg, checkpointName)
	if err != nil {
		return nil, err
	}
	if err := r.generate(ctx, 0, r.spec.Shards, cfg.Jobs); err != nil {
		return nil, err
	}
	return r.merge(ctx)
}

// runner holds one campaign process's state.
type runner struct {
	cfg  Config
	spec Spec
	vp   workload.VPConfig
	fp   string

	dir    string
	ckPath string

	mu      sync.Mutex
	done    map[int]ShardDone // every known completed shard (all checkpoint files)
	own     []ShardDone       // entries owned by ckPath, sorted by shard
	resumed int
	genned  int
}

// newRunner validates the spec, prepares the campaign directory, and
// loads any existing checkpoints (enforcing the Resume gate).
func newRunner(cfg Config, ckFile string) (*runner, error) {
	spec := cfg.Spec.normalized()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	vp, err := spec.vpConfig()
	if err != nil {
		return nil, err
	}
	if cfg.Dir == "" {
		return nil, errors.New("campaign: config needs a campaign directory (Dir)")
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "parts"), 0o755); err != nil {
		return nil, fmt.Errorf("campaign: preparing campaign directory: %w", err)
	}
	r := &runner{
		cfg:    cfg,
		spec:   spec,
		vp:     vp,
		fp:     spec.Fingerprint(),
		dir:    cfg.Dir,
		ckPath: filepath.Join(cfg.Dir, ckFile),
		done:   make(map[int]ShardDone),
	}
	own, all, err := loadCheckpoints(cfg.Dir, ckFile, r.fp)
	if err != nil {
		return nil, err
	}
	if len(all) > 0 && !cfg.Resume {
		return nil, fmt.Errorf("campaign: %s already holds checkpointed progress (%d shards); pass Resume to continue or use a fresh directory", cfg.Dir, len(all))
	}
	r.own = own
	for _, e := range all {
		if err := r.verifyArtifacts(e); err != nil {
			return nil, err
		}
		r.done[e.Shard] = e
	}
	return r, nil
}

// verifyArtifacts checks a checkpointed shard's part and state files are
// present with the recorded sizes — a cheap loud-failure gate at load
// time; content hashes are verified as the bytes stream through merge.
func (r *runner) verifyArtifacts(e ShardDone) error {
	for _, f := range []struct {
		path string
		want int64
	}{
		{partPath(r.dir, e.Shard), e.PartBytes},
		{statePath(r.dir, e.Shard), e.StateBytes},
	} {
		fi, err := os.Stat(f.path)
		if err != nil {
			return fmt.Errorf("campaign: checkpoint records shard %d complete but its artifact is missing: %w", e.Shard, err)
		}
		if fi.Size() != f.want {
			return fmt.Errorf("campaign: shard %d artifact %s is %d bytes, checkpoint recorded %d — artifacts and checkpoint disagree",
				e.Shard, filepath.Base(f.path), fi.Size(), f.want)
		}
	}
	return nil
}

func (r *runner) observe(ev Event) {
	if r.cfg.Observer != nil {
		ev.Total = r.spec.Shards
		r.cfg.Observer(ev)
	}
}

func (r *runner) crash(stage string, shard int) {
	if r.cfg.crashAt != nil {
		r.cfg.crashAt(stage, shard)
	}
}

// generate runs every not-yet-done shard in [lo, hi) across jobs
// concurrent shard-range workers.
func (r *runner) generate(ctx context.Context, lo, hi, jobs int) error {
	var pending []int
	for sh := lo; sh < hi; sh++ {
		if e, ok := r.doneEntry(sh); ok {
			// Resumed means "this run's range, satisfied from checkpoint" —
			// sibling jobs' progress elsewhere in the directory is not ours.
			r.resumed++
			mShardsResumed.Inc()
			r.observe(Event{Stage: "resume", Shard: sh, Records: e.Records, Done: r.doneCount()})
			continue
		}
		pending = append(pending, sh)
	}
	if len(pending) == 0 {
		return ctx.Err()
	}

	var (
		failMu  sync.Mutex
		failErr error
	)
	fail := func(err error) {
		failMu.Lock()
		if failErr == nil {
			failErr = err
		}
		failMu.Unlock()
	}
	failed := func() bool {
		failMu.Lock()
		defer failMu.Unlock()
		return failErr != nil
	}

	var wg sync.WaitGroup
	for _, jb := range fleet.SplitJobs(len(pending), jobs) {
		wg.Add(1)
		go func(jb fleet.ShardJob) {
			defer wg.Done()
			for i := jb.Lo; i < jb.Hi; i++ {
				if ctx.Err() != nil || failed() {
					return
				}
				if err := r.runShardWithRetry(ctx, pending[i]); err != nil {
					fail(err)
					return
				}
			}
		}(jb)
	}
	wg.Wait()
	failMu.Lock()
	err := failErr
	failMu.Unlock()
	if err != nil {
		return err
	}
	return ctx.Err()
}

func (r *runner) doneEntry(sh int) (ShardDone, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.done[sh]
	return e, ok
}

func (r *runner) doneCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.done)
}

// runShardWithRetry is the bounded-retry wrapper around one shard's
// generation: transient failures (sink IO, injected faults) back off and
// retry up to Config.Retries times; a cancelled ctx never retries.
func (r *runner) runShardWithRetry(ctx context.Context, sh int) error {
	retries := r.cfg.retries()
	for attempt := 0; ; attempt++ {
		err := r.runShardOnce(sh, attempt)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if attempt >= retries {
			return fmt.Errorf("campaign: shard %d failed after %d attempts: %w", sh, attempt+1, err)
		}
		mShardRetries.Inc()
		r.observe(Event{Stage: "retry", Shard: sh, Attempt: attempt + 1, Err: err})
		select {
		case <-time.After(r.cfg.backoff() << attempt):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// runShardOnce generates one shard into its part and state files and
// commits a checkpoint entry. Every artifact lands atomically (tmp +
// fsync + rename), so a crash at any point leaves either the previous
// state or the complete new one — never a torn file.
func (r *runner) runShardOnce(sh, attempt int) (err error) {
	if r.cfg.failShard != nil {
		if ferr := r.cfg.failShard(sh, attempt); ferr != nil {
			return ferr
		}
	}

	part := partPath(r.dir, sh)
	partHash := fnv.New64a()
	var partBytes int64
	var st workload.ShardStats
	sum := fleet.NewSummary(r.vp.Days)
	err = writeFileAtomicFunc(part, func(f *os.File) error {
		cw := &countWriter{w: io.MultiWriter(f, partHash), n: &partBytes}
		bw := traces.NewBinaryWriter(cw)
		ws := &fleet.WriterSink{W: bw}
		st = fleet.RunShard(r.vp, r.spec.Seed, sh, r.spec.Shards, sinkPair{ws, sum})
		if ws.Err != nil {
			return ws.Err
		}
		return bw.Flush()
	})
	if err != nil {
		return fmt.Errorf("campaign: shard %d part: %w", sh, err)
	}
	r.crash("part", sh)

	stateBytes, stateHash, err := writeShardState(statePath(r.dir, sh), st, sum)
	if err != nil {
		return fmt.Errorf("campaign: shard %d state: %w", sh, err)
	}
	r.crash("state", sh)

	entry := ShardDone{
		Shard:      sh,
		Records:    st.Records,
		PartBytes:  partBytes,
		PartHash:   fmt.Sprintf("%016x", partHash.Sum64()),
		StateBytes: stateBytes,
		StateHash:  stateHash,
	}
	if err := r.commit(sh, entry); err != nil {
		return err
	}
	r.crash("checkpoint", sh)
	if r.cfg.AfterShard != nil {
		r.cfg.AfterShard(sh)
	}
	r.observe(Event{Stage: "shard", Shard: sh, Records: st.Records, Done: r.doneCount()})
	return nil
}

// commit records a completed shard in the runner's checkpoint file.
func (r *runner) commit(sh int, e ShardDone) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.done[sh] = e
	r.genned++
	r.own = append(r.own, e)
	sort.Slice(r.own, func(i, j int) bool { return r.own[i].Shard < r.own[j].Shard })
	body := checkpointBody{
		Schema:      CheckpointSchema,
		Kind:        kindShards,
		Fingerprint: r.fp,
		Spec:        &r.spec,
		Shards:      r.own,
	}
	if err := saveCheckpoint(r.ckPath, body, func(f *os.File) {
		r.crash("checkpoint-mid-write", sh)
		_ = f
	}); err != nil {
		return fmt.Errorf("campaign: shard %d checkpoint: %w", sh, err)
	}
	mCheckpoints.Inc()
	return nil
}

// sinkPair fans one shard's pooled record stream into the part writer
// and the streaming summary. Both consumers copy what they keep, so the
// pooled ownership rules hold.
type sinkPair struct {
	w   *fleet.WriterSink
	sum *fleet.Summary
}

func (p sinkPair) Consume(rec *traces.FlowRecord) {
	p.w.Consume(rec)
	p.sum.Consume(rec)
}

// countWriter counts bytes written through it.
type countWriter struct {
	w io.Writer
	n *int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	*c.n += int64(n)
	return n, err
}

// hashReader hashes and counts everything read through it.
type hashReader struct {
	r io.Reader
	h hash.Hash64
	n int64
}

func (h *hashReader) Read(p []byte) (int, error) {
	n, err := h.r.Read(p)
	if n > 0 {
		h.h.Write(p[:n])
		h.n += int64(n)
	}
	return n, err
}

// Paths inside a campaign directory.

const checkpointName = "checkpoint.ckpt"

func partPath(dir string, sh int) string {
	return filepath.Join(dir, "parts", fmt.Sprintf("shard-%04d.part", sh))
}

func statePath(dir string, sh int) string {
	return filepath.Join(dir, "parts", fmt.Sprintf("shard-%04d.state", sh))
}

func jobCheckpointName(job int) string {
	return fmt.Sprintf("checkpoint-job-%03d.ckpt", job)
}

// ExportExt maps a spec format to the conventional export extension.
func ExportExt(format string) string {
	switch format {
	case "binary":
		return ".idb"
	case "binary-flate":
		return ".idbf"
	default:
		return ".csv"
	}
}
