package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"insidedropbox/internal/fleet"
	"insidedropbox/internal/workload"
)

// CheckpointSchema versions the checkpoint payload. Loaders reject any
// other version — a stale checkpoint never resumes silently.
const CheckpointSchema = 1

// envelopeMagic opens every checkpoint file. The header line is
//
//	IDCP1 <crc32-ieee hex8> <payload-length>\n
//
// followed by exactly payload-length bytes of JSON. The CRC guards the
// payload, the length catches truncation, and the magic catches files
// that are not checkpoints at all — three distinct loud failures.
const envelopeMagic = "IDCP1"

// Checkpoint payload kinds.
const (
	kindShards  = "shards"
	kindPlan    = "plan"
	kindResults = "results"
)

// ShardDone is one completed shard's checkpoint entry: what was
// generated and the exact size and FNV-1a hash of each on-disk artifact,
// so resume and merge verify the bytes they reuse.
type ShardDone struct {
	Shard      int    `json:"shard"`
	Records    int    `json:"records"`
	PartBytes  int64  `json:"part_bytes"`
	PartHash   string `json:"part_hash"`
	StateBytes int64  `json:"state_bytes"`
	StateHash  string `json:"state_hash"`
}

// checkpointBody is the JSON payload inside the envelope. One shape
// serves all kinds; unused sections stay empty.
type checkpointBody struct {
	Schema      int         `json:"schema"`
	Kind        string      `json:"kind"`
	Fingerprint string      `json:"fingerprint"`
	Spec        *Spec       `json:"spec,omitempty"`
	Shards      []ShardDone `json:"shards,omitempty"`
	// Jobs holds the planned shard ranges as [lo, hi) pairs (kind plan).
	Jobs [][2]int `json:"jobs,omitempty"`
	// Results holds serialized experiment results (kind results).
	Results []ResultEntry `json:"results,omitempty"`
}

// ResultEntry stores one experiment's serialized result in a results
// checkpoint.
type ResultEntry struct {
	ID     string          `json:"id"`
	Result json.RawMessage `json:"result"`
}

// encodeEnvelope frames a payload with the guarded header.
func encodeEnvelope(payload []byte) []byte {
	head := fmt.Sprintf("%s %08x %d\n", envelopeMagic, crc32.ChecksumIEEE(payload), len(payload))
	return append([]byte(head), payload...)
}

// decodeEnvelope validates the frame and returns the payload. Every
// failure mode gets its own message: these errors are the user's only
// clue why a resume refused to proceed.
func decodeEnvelope(data []byte) ([]byte, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("checkpoint truncated: no header line in %d bytes", len(data))
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) < 1 || fields[0] != envelopeMagic {
		return nil, fmt.Errorf("not a campaign checkpoint (header %q, want magic %q)", string(data[:nl]), envelopeMagic)
	}
	if len(fields) != 3 {
		return nil, fmt.Errorf("checkpoint header unreadable: %q", string(data[:nl]))
	}
	var crc uint32
	var n int
	if _, err := fmt.Sscanf(fields[1]+" "+fields[2], "%x %d", &crc, &n); err != nil {
		return nil, fmt.Errorf("checkpoint header unreadable: %q", string(data[:nl]))
	}
	payload := data[nl+1:]
	if n < 0 || len(payload) != n {
		return nil, fmt.Errorf("checkpoint truncated: header declares %d payload bytes, file holds %d", n, len(payload))
	}
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return nil, fmt.Errorf("checkpoint corrupt: payload CRC %08x, header says %08x", got, crc)
	}
	return payload, nil
}

// decodeCheckpoint decodes and validates a checkpoint file's bytes
// against the expected kind and spec fingerprint. An empty wantFP skips
// the fingerprint gate (used by plan loading, which recovers the spec
// from the file itself).
func decodeCheckpoint(data []byte, wantKind, wantFP string) (*checkpointBody, error) {
	payload, err := decodeEnvelope(data)
	if err != nil {
		return nil, err
	}
	var body checkpointBody
	if err := json.Unmarshal(payload, &body); err != nil {
		return nil, fmt.Errorf("checkpoint payload is not valid JSON: %w", err)
	}
	if body.Schema != CheckpointSchema {
		return nil, fmt.Errorf("checkpoint schema %d is not supported by this build (wants %d) — rerun without resume", body.Schema, CheckpointSchema)
	}
	if wantKind != "" && body.Kind != wantKind {
		return nil, fmt.Errorf("checkpoint kind %q, expected %q", body.Kind, wantKind)
	}
	if wantFP != "" && body.Fingerprint != wantFP {
		return nil, fmt.Errorf("checkpoint belongs to a different campaign spec (fingerprint %s, this run is %s) — resuming under a changed spec is not allowed", body.Fingerprint, wantFP)
	}
	return &body, nil
}

// readCheckpointFile loads and validates one checkpoint file.
func readCheckpointFile(path, wantKind, wantFP string) (*checkpointBody, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	body, err := decodeCheckpoint(data, wantKind, wantFP)
	if err != nil {
		return nil, fmt.Errorf("campaign: %s: %w", path, err)
	}
	return body, nil
}

// saveCheckpoint writes a checkpoint atomically: encode, write to a .tmp
// sibling, fsync, rename over the target, fsync the directory. A crash
// at any point leaves either the previous checkpoint or the new one —
// stray .tmp files are ignored by loaders and overwritten by the next
// save. midWrite, when non-nil, runs after half the bytes are flushed
// (the crash-injection hook for the mid-fsync kill tests).
func saveCheckpoint(path string, body checkpointBody, midWrite func(*os.File)) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	data := encodeEnvelope(payload)
	return writeFileAtomicFunc(path, func(f *os.File) error {
		if midWrite != nil {
			if _, err := f.Write(data[:len(data)/2]); err != nil {
				return err
			}
			if err := f.Sync(); err != nil {
				return err
			}
			midWrite(f)
			_, err := f.Write(data[len(data)/2:])
			return err
		}
		_, err := f.Write(data)
		return err
	})
}

// writeFileAtomicFunc streams content into path via a .tmp sibling with
// fsync + rename + directory fsync, so the target path only ever holds
// complete content.
func writeFileAtomicFunc(path string, fill func(*os.File) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// loadCheckpoints reads every shard checkpoint in a campaign directory —
// the runner's own file plus any per-job files from a multi-process plan
// — validates each against the spec fingerprint, and unions the entries.
// Conflicting duplicates (same shard, different artifact hashes) are an
// error; identical duplicates collapse. Returns the entries owned by
// ownFile (so the runner extends its own file without absorbing other
// jobs' entries) and the full union sorted by shard.
func loadCheckpoints(dir, ownFile, wantFP string) (own, all []ShardDone, err error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(paths)
	seen := make(map[int]ShardDone)
	for _, p := range paths {
		body, err := readCheckpointFile(p, "", wantFP)
		if err != nil {
			return nil, nil, err
		}
		if body.Kind != kindShards {
			continue // plan files share the dir; fingerprint-checked above
		}
		for _, e := range body.Shards {
			if prev, ok := seen[e.Shard]; ok {
				if prev != e {
					return nil, nil, fmt.Errorf("campaign: shard %d appears in multiple checkpoints with different artifacts (%s vs %s) — the campaign directory is inconsistent",
						e.Shard, prev.PartHash, e.PartHash)
				}
				continue
			}
			seen[e.Shard] = e
		}
		if filepath.Base(p) == ownFile {
			own = append(own, e2slice(body.Shards)...)
		}
	}
	for _, e := range seen {
		all = append(all, e)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Shard < all[j].Shard })
	sort.Slice(own, func(i, j int) bool { return own[i].Shard < own[j].Shard })
	return own, all, nil
}

func e2slice(s []ShardDone) []ShardDone { return append([]ShardDone(nil), s...) }

// shardState is the JSON stored beside each part: the shard's generation
// ground truth plus its mergeable streaming aggregate, so a separate
// process can fold summaries without touching record streams.
type shardState struct {
	Schema  int                 `json:"schema"`
	Stats   workload.ShardStats `json:"stats"`
	Summary *fleet.SummaryState `json:"summary"`
}

// writeShardState serializes one shard's generation stats plus mergeable
// summary state, returning the written size and FNV-1a hash.
func writeShardState(path string, st workload.ShardStats, sum *fleet.Summary) (int64, string, error) {
	state := shardState{Schema: CheckpointSchema, Stats: st, Summary: sum.State()}
	data, err := json.Marshal(state)
	if err != nil {
		return 0, "", err
	}
	if err := writeFileAtomicFunc(path, func(f *os.File) error {
		_, err := f.Write(data)
		return err
	}); err != nil {
		return 0, "", err
	}
	h := fnv.New64a()
	h.Write(data)
	return int64(len(data)), fmt.Sprintf("%016x", h.Sum64()), nil
}

// readShardState loads and verifies one shard's state file against its
// checkpoint entry.
func readShardState(dir string, e ShardDone) (*shardState, error) {
	data, err := os.ReadFile(statePath(dir, e.Shard))
	if err != nil {
		return nil, fmt.Errorf("campaign: shard %d state: %w", e.Shard, err)
	}
	h := fnv.New64a()
	h.Write(data)
	if got := fmt.Sprintf("%016x", h.Sum64()); int64(len(data)) != e.StateBytes || got != e.StateHash {
		return nil, fmt.Errorf("campaign: shard %d state file does not match its checkpoint entry (%d bytes hash %s, recorded %d bytes hash %s)",
			e.Shard, len(data), got, e.StateBytes, e.StateHash)
	}
	var st shardState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("campaign: shard %d state: %w", e.Shard, err)
	}
	if st.Schema != CheckpointSchema {
		return nil, fmt.Errorf("campaign: shard %d state schema %d, this build reads %d", e.Shard, st.Schema, CheckpointSchema)
	}
	return &st, nil
}
