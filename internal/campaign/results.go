package campaign

import (
	"encoding/json"
	"fmt"
	"os"
)

// ResultsCheckpoint persists completed experiment results between runs —
// the facade's experiment-granularity resume. It reuses the guarded
// checkpoint envelope (schema, CRC, fingerprint), so a results file from
// a different run configuration fails loudly instead of replaying stale
// results into a changed campaign.
type ResultsCheckpoint struct {
	path string
	fp   string

	entries []ResultEntry
	byID    map[string]json.RawMessage
}

// OpenResultsCheckpoint opens (or initializes) a results checkpoint at
// path for a run whose identity hashes to fingerprint. When the file
// exists, resume must be set — pre-existing results without an explicit
// resume is an error, mirroring the shard runner's gate.
func OpenResultsCheckpoint(path, fingerprint string, resume bool) (*ResultsCheckpoint, error) {
	c := &ResultsCheckpoint{path: path, fp: fingerprint, byID: make(map[string]json.RawMessage)}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: results checkpoint: %w", err)
	}
	if !resume {
		return nil, fmt.Errorf("campaign: %s already holds checkpointed results; resume explicitly or remove it", path)
	}
	body, err := decodeCheckpoint(data, kindResults, fingerprint)
	if err != nil {
		return nil, fmt.Errorf("campaign: %s: %w", path, err)
	}
	c.entries = body.Results
	for _, e := range body.Results {
		c.byID[e.ID] = e.Result
	}
	return c, nil
}

// Len returns the number of stored results.
func (c *ResultsCheckpoint) Len() int { return len(c.entries) }

// Lookup unmarshals the stored result for id into out, reporting whether
// one exists.
func (c *ResultsCheckpoint) Lookup(id string, out any) (bool, error) {
	raw, ok := c.byID[id]
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, fmt.Errorf("campaign: results checkpoint entry %q: %w", id, err)
	}
	return true, nil
}

// Record stores one experiment's result and persists the checkpoint
// atomically — after Record returns, a killed run resumes past this
// experiment.
func (c *ResultsCheckpoint) Record(id string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("campaign: serializing result %q: %w", id, err)
	}
	if _, ok := c.byID[id]; !ok {
		c.entries = append(c.entries, ResultEntry{ID: id, Result: raw})
	} else {
		for i := range c.entries {
			if c.entries[i].ID == id {
				c.entries[i].Result = raw
			}
		}
	}
	c.byID[id] = raw
	body := checkpointBody{
		Schema:      CheckpointSchema,
		Kind:        kindResults,
		Fingerprint: c.fp,
		Results:     c.entries,
	}
	if err := saveCheckpoint(c.path, body, nil); err != nil {
		return fmt.Errorf("campaign: results checkpoint: %w", err)
	}
	mCheckpoints.Inc()
	return nil
}
