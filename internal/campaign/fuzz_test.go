package campaign

import (
	"encoding/json"
	"testing"
)

// FuzzCheckpointDecode hammers the checkpoint loader with arbitrary
// bytes: it must return errors, never panic, and anything it accepts
// must re-encode to a frame it accepts again with identical content
// (decode/encode/decode is the identity on the valid subset). Checkpoint
// files cross process and machine boundaries in the multi-process flow,
// so the loader is an input-validation surface, not just a codec.
func FuzzCheckpointDecode(f *testing.F) {
	seed := func(body checkpointBody) {
		payload, err := json.Marshal(body)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(encodeEnvelope(payload))
	}
	spec := Spec{VP: "home1", Scale: 0.02, Seed: 7, Shards: 4}
	seed(checkpointBody{
		Schema: CheckpointSchema, Kind: kindShards, Fingerprint: spec.Fingerprint(), Spec: &spec,
		Shards: []ShardDone{{Shard: 0, Records: 123, PartBytes: 4567, PartHash: "00c0ffee00c0ffee", StateBytes: 89, StateHash: "00deadbeef000000"}},
	})
	seed(checkpointBody{
		Schema: CheckpointSchema, Kind: kindPlan, Fingerprint: spec.Fingerprint(), Spec: &spec,
		Jobs: [][2]int{{0, 2}, {2, 4}},
	})
	seed(checkpointBody{
		Schema: CheckpointSchema, Kind: kindResults, Fingerprint: Fingerprint("run|seed=7"),
		Results: []ResultEntry{{ID: "table3", Result: json.RawMessage(`{"n":42}`)}},
	})
	// Hostile shapes: truncation, non-checkpoint, torn header, bad CRC.
	f.Add([]byte(""))
	f.Add([]byte("IDCP1"))
	f.Add([]byte("IDCP1 00000000 0\n"))
	f.Add([]byte("IDCP1 deadbeef 4\n{}"))
	f.Add([]byte("IDCP9 00000000 2\n{}"))
	f.Add([]byte("not a checkpoint at all\njust bytes"))

	f.Fuzz(func(t *testing.T, data []byte) {
		body, err := decodeCheckpoint(data, "", "")
		if err != nil {
			return // rejected loudly: that is the contract
		}
		payload, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("accepted body failed to re-marshal: %v", err)
		}
		again, err := decodeCheckpoint(encodeEnvelope(payload), body.Kind, body.Fingerprint)
		if err != nil {
			t.Fatalf("re-encoded checkpoint rejected: %v", err)
		}
		p2, err := json.Marshal(again)
		if err != nil {
			t.Fatal(err)
		}
		if string(payload) != string(p2) {
			t.Fatalf("decode/encode/decode is not the identity:\n%s\nvs\n%s", payload, p2)
		}
	})
}
