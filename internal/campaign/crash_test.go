package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
)

// crashExit is the status the crash helper dies with — distinct from
// both success and ordinary test failure so the harness can tell an
// injected kill from a real bug.
const crashExit = 137

// TestCampaignCrashHelper is not a test: it is the subprocess body the
// crash-injection suite re-executes. Guarded by env so a normal `go
// test` run skips it. The helper runs a campaign with a crashAt hook
// that hard-kills the process (os.Exit, no deferred cleanup — the
// closest in-process stand-in for SIGKILL) when the injected stage and
// shard are reached.
func TestCampaignCrashHelper(t *testing.T) {
	if os.Getenv("CAMPAIGN_CRASH_HELPER") != "1" {
		t.Skip("crash helper: only runs re-executed")
	}
	var spec Spec
	if err := json.Unmarshal([]byte(os.Getenv("CAMPAIGN_SPEC")), &spec); err != nil {
		t.Fatalf("helper spec: %v", err)
	}
	stage := os.Getenv("CAMPAIGN_STAGE")
	shard, _ := strconv.Atoi(os.Getenv("CAMPAIGN_SHARD"))
	jobs, _ := strconv.Atoi(os.Getenv("CAMPAIGN_JOBS"))
	cfg := Config{
		Spec:   spec,
		Dir:    os.Getenv("CAMPAIGN_DIR"),
		Jobs:   jobs,
		Resume: os.Getenv("CAMPAIGN_RESUME") == "1",
		crashAt: func(st string, sh int) {
			if st == stage && sh == shard {
				os.Exit(crashExit)
			}
		},
	}
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatalf("helper run: %v", err)
	}
}

// crashRun re-executes the test binary as a campaign process that kills
// itself at (stage, shard), asserting it did crash.
func crashRun(t *testing.T, dir string, spec Spec, stage string, shard, jobs int, resume bool) {
	t.Helper()
	specJSON, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCampaignCrashHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"CAMPAIGN_CRASH_HELPER=1",
		"CAMPAIGN_SPEC="+string(specJSON),
		"CAMPAIGN_DIR="+dir,
		"CAMPAIGN_STAGE="+stage,
		"CAMPAIGN_SHARD="+strconv.Itoa(shard),
		"CAMPAIGN_JOBS="+strconv.Itoa(jobs),
	)
	if resume {
		cmd.Env = append(cmd.Env, "CAMPAIGN_RESUME=1")
	}
	out, err := cmd.CombinedOutput()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != crashExit {
		t.Fatalf("crash at %s/shard %d: process err = %v (want exit %d)\n%s", stage, shard, err, crashExit, out)
	}
}

// TestResumeMatchesUninterrupted is the PR's correctness backbone: kill
// the campaign at shard completion, mid-checkpoint fsync, and mid-merge,
// resume, and require every resulting export to reproduce its legacy
// golden stream hash bit for bit. Killed processes leave no cleanup —
// stray .tmp files, committed checkpoints, and finished parts are
// exactly what a real SIGKILL leaves behind.
func TestResumeMatchesUninterrupted(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash matrix is not -short")
	}
	for _, tc := range goldenCampaigns {
		t.Run(tc.name, func(t *testing.T) {
			spec := tc.spec.normalized()
			lastShard := spec.Shards - 1
			stages := []struct {
				stage string
				shard int
			}{
				// Kill right after a shard's checkpoint entry is durable
				// (the "arbitrary shard boundary" case).
				{"checkpoint", 0},
				// Kill after the part file landed but before its
				// checkpoint entry: the shard must regenerate.
				{"part", lastShard},
				// Kill mid-checkpoint-write, after the partial temp file
				// was fsynced: the previous checkpoint must survive.
				{"checkpoint-mid-write", lastShard},
				// Kill while the merge is streaming parts into the export.
				{"merge-mid-write", 0},
			}
			straight := mustRun(t, Config{Spec: spec, Dir: t.TempDir(), Jobs: 1})
			for _, st := range stages {
				t.Run(st.stage, func(t *testing.T) {
					dir := t.TempDir()
					crashRun(t, dir, spec, st.stage, st.shard, 2, false)
					res := mustRun(t, Config{Spec: spec, Dir: dir, Jobs: 2, Resume: true})
					if res.StreamHash != tc.want {
						t.Fatalf("resume after %s kill: export hash = %s, want golden %s", st.stage, res.StreamHash, tc.want)
					}
					// Byte-compare against the straight-through run too
					// (the hash pins it; this catches hash-path bugs).
					if !bytes.Equal(readExport(t, res), readExport(t, straight)) {
						t.Fatal("resumed export bytes differ from an uninterrupted run")
					}
				})
			}
		})
	}
}

// TestRepeatedKillsConverge chains several kills at different shard
// boundaries of one campaign directory — every intermediate state must
// resume, and the final export must still be golden.
func TestRepeatedKillsConverge(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash chain is not -short")
	}
	spec := Spec{VP: "home1", Scale: 0.02, Seed: 7, Shards: 4}
	dir := t.TempDir()
	chain := []struct {
		stage string
		shard int
	}{
		{"checkpoint", 0},
		{"part", 2},
		{"checkpoint-mid-write", 3},
		{"merge-mid-write", 0},
	}
	// jobs=1 keeps the shard order deterministic so each injected stage
	// is guaranteed to still be pending when its run starts.
	for i, st := range chain {
		crashRun(t, dir, spec, st.stage, st.shard, 1, i > 0)
	}
	res := mustRun(t, Config{Spec: spec, Dir: dir, Jobs: 2, Resume: true})
	if want := "1887b88d5f86bad5"; res.StreamHash != want {
		t.Fatalf("after %d kills, resumed export hash = %s, want %s", len(chain), res.StreamHash, want)
	}
}

// TestCrashLeavesLoadableState documents what a kill leaves behind: a
// valid checkpoint (never a torn one), and possibly stray .tmp files
// that the resumed run ignores.
func TestCrashLeavesLoadableState(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test is not -short")
	}
	spec := Spec{VP: "home1", Scale: 0.02, Seed: 7, Shards: 4}
	dir := t.TempDir()
	crashRun(t, dir, spec, "checkpoint-mid-write", 2, 1, false)

	// The mid-write kill left a stray temp next to a valid checkpoint.
	if _, err := os.Stat(filepath.Join(dir, checkpointName+".tmp")); err != nil {
		t.Fatalf("expected a stray checkpoint temp after the mid-write kill: %v", err)
	}
	own, all, err := loadCheckpoints(dir, checkpointName, spec.Fingerprint())
	if err != nil {
		t.Fatalf("checkpoint left by the kill must load cleanly: %v", err)
	}
	if len(all) == 0 || len(own) != len(all) {
		t.Fatalf("expected committed shard progress before the kill, got own=%d all=%d", len(own), len(all))
	}

	res := mustRun(t, Config{Spec: spec, Dir: dir, Resume: true})
	if want := "1887b88d5f86bad5"; res.StreamHash != want {
		t.Fatalf("post-crash resume hash = %s, want %s", res.StreamHash, want)
	}
	if res.ResumedShards != len(all) {
		t.Fatalf("resume reused %d shards, checkpoint held %d", res.ResumedShards, len(all))
	}
}

// TestPlannedJobCrashResume runs the multi-process flow under injection:
// plan, crash job 0 mid-range, resume job 0, run job 1, merge — the
// golden hash must survive the whole dance.
func TestPlannedJobCrashResume(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test is not -short")
	}
	spec := Spec{VP: "home1", Scale: 0.02, Seed: 7, Shards: 4}
	dir := t.TempDir()
	plan, err := WritePlan(dir, spec, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Job 0 owns shards [0, 2): kill it right after shard 0 checkpoints.
	helperJob(t, dir, 0, "checkpoint", 0, false)
	// Resume job 0 to completion, then run job 1 straight through.
	if _, err := RunJob(context.Background(), dir, 0, JobOptions{Resume: true}); err != nil {
		t.Fatalf("resuming job 0: %v", err)
	}
	if _, err := RunJob(context.Background(), dir, 1, JobOptions{}); err != nil {
		t.Fatalf("job 1: %v", err)
	}
	res, err := Merge(context.Background(), spec, dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if want := "1887b88d5f86bad5"; res.StreamHash != want {
		t.Fatalf("planned crash-resume merge hash = %s, want %s", res.StreamHash, want)
	}
	if got := len(plan.Jobs); got != 2 {
		t.Fatalf("plan has %d jobs, want 2", got)
	}
}

// helperJob re-executes the binary as one planned job with a crash
// injection (see TestCampaignJobCrashHelper).
func helperJob(t *testing.T, dir string, job int, stage string, shard int, resume bool) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCampaignJobCrashHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"CAMPAIGN_JOB_HELPER=1",
		"CAMPAIGN_DIR="+dir,
		"CAMPAIGN_JOB="+strconv.Itoa(job),
		"CAMPAIGN_STAGE="+stage,
		"CAMPAIGN_SHARD="+strconv.Itoa(shard),
	)
	if resume {
		cmd.Env = append(cmd.Env, "CAMPAIGN_RESUME=1")
	}
	out, err := cmd.CombinedOutput()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != crashExit {
		t.Fatalf("job %d crash at %s/shard %d: err = %v (want exit %d)\n%s", job, stage, shard, err, crashExit, out)
	}
}

// TestCampaignJobCrashHelper is the planned-job twin of
// TestCampaignCrashHelper (env-guarded, not a real test).
func TestCampaignJobCrashHelper(t *testing.T) {
	if os.Getenv("CAMPAIGN_JOB_HELPER") != "1" {
		t.Skip("job crash helper: only runs re-executed")
	}
	dir := os.Getenv("CAMPAIGN_DIR")
	job, _ := strconv.Atoi(os.Getenv("CAMPAIGN_JOB"))
	stage := os.Getenv("CAMPAIGN_STAGE")
	shard, _ := strconv.Atoi(os.Getenv("CAMPAIGN_SHARD"))

	p, err := LoadPlan(dir)
	if err != nil {
		t.Fatalf("helper plan: %v", err)
	}
	cfg := Config{
		Spec:   p.Spec,
		Dir:    dir,
		Resume: os.Getenv("CAMPAIGN_RESUME") == "1",
		crashAt: func(st string, sh int) {
			if st == stage && sh == shard {
				os.Exit(crashExit)
			}
		},
	}
	r, err := newJobRunner(cfg, job, p.Jobs[job])
	if err != nil {
		t.Fatalf("helper job runner: %v", err)
	}
	if err := r.generate(context.Background(), p.Jobs[job].Lo, p.Jobs[job].Hi, 1); err != nil {
		t.Fatalf("helper job run: %v", err)
	}
}
