package campaign

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"runtime"
	"testing"

	"insidedropbox/internal/traces"
)

// TestCampaignJobsInvariance extends the determinism contract (point 16):
// the number of concurrent shard-range jobs never changes a byte of the
// export.
func TestCampaignJobsInvariance(t *testing.T) {
	spec := Spec{VP: "home1", Scale: 0.02, Seed: 7, Shards: 8}
	var ref []byte
	for _, jobs := range []int{1, 2, 8} {
		res := mustRun(t, Config{Spec: spec, Dir: t.TempDir(), Jobs: jobs})
		data := readExport(t, res)
		if ref == nil {
			ref = data
			continue
		}
		if !bytes.Equal(ref, data) {
			t.Fatalf("export bytes differ between -jobs 1 and -jobs %d", jobs)
		}
	}
}

// TestCampaignGOMAXPROCSInvariance: the core count never changes a byte
// of the export (it only changes wall-clock time).
func TestCampaignGOMAXPROCSInvariance(t *testing.T) {
	spec := Spec{VP: "home1", Scale: 0.02, Seed: 7, Shards: 4}
	run := func(procs int) []byte {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		res := mustRun(t, Config{Spec: spec, Dir: t.TempDir(), Jobs: 4})
		return readExport(t, res)
	}
	single := run(1)
	multi := run(runtime.NumCPU())
	if !bytes.Equal(single, multi) {
		t.Fatal("export bytes differ between GOMAXPROCS=1 and GOMAXPROCS=NumCPU")
	}
	h := fnv.New64a()
	h.Write(single)
	if got, want := fmt.Sprintf("%016x", h.Sum64()), "1887b88d5f86bad5"; got != want {
		t.Fatalf("export hash = %s, want the home1-4shard golden %s", got, want)
	}
}

// TestSplitMergeMatchesSingleProcess: the multi-process plan/run/merge
// flow must produce byte-identical output to an in-process run — the
// mergeable-aggregator-state contract, end to end.
func TestSplitMergeMatchesSingleProcess(t *testing.T) {
	spec := Spec{VP: "home1", Scale: 0.02, Seed: 7, Shards: 8}

	single := mustRun(t, Config{Spec: spec, Dir: t.TempDir(), Jobs: 1})

	dir := t.TempDir()
	plan, err := WritePlan(dir, spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Jobs) != 3 {
		t.Fatalf("plan split into %d jobs, want 3", len(plan.Jobs))
	}
	for j := range plan.Jobs {
		if _, err := RunJob(context.Background(), dir, j, JobOptions{}); err != nil {
			t.Fatalf("job %d: %v", j, err)
		}
	}
	merged, err := Merge(context.Background(), spec, dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if merged.StreamHash != single.StreamHash {
		t.Fatalf("split-merge hash %s != single-process hash %s", merged.StreamHash, single.StreamHash)
	}
	if !bytes.Equal(readExport(t, merged), readExport(t, single)) {
		t.Fatal("split-merge export bytes differ from the single-process run")
	}
	wantM, gotM := single.Summary.Metrics(), merged.Summary.Metrics()
	for k, w := range wantM {
		if g := gotM[k]; g != w {
			t.Fatalf("merged summary metric %q = %v, single-process %v", k, g, w)
		}
	}
}

// TestCampaignExportFormats: the binary and archival exports are
// job-count invariant too, and both decode back to the exact golden
// record stream (re-serialized as CSV, they reproduce the golden hash).
func TestCampaignExportFormats(t *testing.T) {
	for _, format := range []string{"binary", "binary-flate"} {
		t.Run(format, func(t *testing.T) {
			spec := Spec{VP: "home1", Scale: 0.02, Seed: 7, Shards: 4, Format: format}
			a := mustRun(t, Config{Spec: spec, Dir: t.TempDir(), Jobs: 1})
			b := mustRun(t, Config{Spec: spec, Dir: t.TempDir(), Jobs: 4})
			if !bytes.Equal(readExport(t, a), readExport(t, b)) {
				t.Fatalf("%s export bytes differ between -jobs 1 and -jobs 4", format)
			}

			f, err := os.Open(a.ExportPath)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			var rd interface {
				Read() (*traces.FlowRecord, error)
			}
			if format == "binary" {
				rd = traces.NewBinaryReader(f)
			} else {
				rd = traces.NewFlateReader(f)
			}
			h := fnv.New64a()
			cw := traces.NewWriter(h)
			for {
				rec, err := rd.Read()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				if err := cw.Write(rec); err != nil {
					t.Fatal(err)
				}
			}
			if err := cw.Flush(); err != nil {
				t.Fatal(err)
			}
			if got, want := fmt.Sprintf("%016x", h.Sum64()), "1887b88d5f86bad5"; got != want {
				t.Fatalf("%s round-trip CSV hash = %s, want golden %s", format, got, want)
			}
		})
	}
}

// TestCampaignAnonymizedInvariance: the anonymized export (what
// cmd/dropsim ships by default) is also jobs-invariant — the anonymizer
// is a pure per-record function, so fan-out cannot perturb it.
func TestCampaignAnonymizedInvariance(t *testing.T) {
	spec := Spec{VP: "home1", Scale: 0.02, Seed: 7, Shards: 4, Anonymize: true}
	a := mustRun(t, Config{Spec: spec, Dir: t.TempDir(), Jobs: 1})
	b := mustRun(t, Config{Spec: spec, Dir: t.TempDir(), Jobs: 3})
	if a.StreamHash != b.StreamHash || !bytes.Equal(readExport(t, a), readExport(t, b)) {
		t.Fatal("anonymized export differs across job counts")
	}
}
