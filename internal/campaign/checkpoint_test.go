package campaign

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"insidedropbox/internal/fleet"
)

// quickSpec is the cheapest campaign the robustness tests can corrupt.
var quickSpec = Spec{VP: "home1", Scale: 0.01, Seed: 7, Shards: 2}

// seedCampaign runs a quick campaign and returns its directory and the
// raw checkpoint bytes.
func seedCampaign(t *testing.T) (string, []byte) {
	t.Helper()
	dir := t.TempDir()
	mustRun(t, Config{Spec: quickSpec, Dir: dir, Jobs: 1})
	data, err := os.ReadFile(filepath.Join(dir, checkpointName))
	if err != nil {
		t.Fatal(err)
	}
	return dir, data
}

func resumeErr(t *testing.T, dir string, spec Spec) error {
	t.Helper()
	_, err := Run(context.Background(), Config{Spec: spec, Dir: dir, Resume: true})
	return err
}

// TestCheckpointRobustness: every way a checkpoint file can be wrong
// must fail loudly with a distinct, explanatory error — never a silent
// partial resume, never a panic.
func TestCheckpointRobustness(t *testing.T) {
	rewrite := func(t *testing.T, dir string, data []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, checkpointName), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("truncated file", func(t *testing.T) {
		dir, data := seedCampaign(t)
		rewrite(t, dir, data[:len(data)-7])
		if err := resumeErr(t, dir, quickSpec); err == nil || !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("err = %v, want truncation error", err)
		}
	})

	t.Run("truncated header", func(t *testing.T) {
		dir, data := seedCampaign(t)
		rewrite(t, dir, data[:3])
		if err := resumeErr(t, dir, quickSpec); err == nil || !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("err = %v, want truncation error", err)
		}
	})

	t.Run("corrupted payload", func(t *testing.T) {
		dir, data := seedCampaign(t)
		data[len(data)-5] ^= 0x40
		rewrite(t, dir, data)
		if err := resumeErr(t, dir, quickSpec); err == nil || !strings.Contains(err.Error(), "CRC") {
			t.Fatalf("err = %v, want CRC error", err)
		}
	})

	t.Run("not a checkpoint", func(t *testing.T) {
		dir, _ := seedCampaign(t)
		rewrite(t, dir, []byte("GIF89a such image\nvery bytes"))
		if err := resumeErr(t, dir, quickSpec); err == nil || !strings.Contains(err.Error(), "not a campaign checkpoint") {
			t.Fatalf("err = %v, want magic error", err)
		}
	})

	t.Run("stale schema", func(t *testing.T) {
		dir, data := seedCampaign(t)
		payload, err := decodeEnvelope(data)
		if err != nil {
			t.Fatal(err)
		}
		var body checkpointBody
		if err := json.Unmarshal(payload, &body); err != nil {
			t.Fatal(err)
		}
		body.Schema = 999
		stale, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rewrite(t, dir, encodeEnvelope(stale))
		if err := resumeErr(t, dir, quickSpec); err == nil || !strings.Contains(err.Error(), "schema 999") {
			t.Fatalf("err = %v, want schema error", err)
		}
	})

	t.Run("different spec", func(t *testing.T) {
		dir, _ := seedCampaign(t)
		other := quickSpec
		other.Seed = 99
		if err := resumeErr(t, dir, other); err == nil || !strings.Contains(err.Error(), "different campaign spec") {
			t.Fatalf("err = %v, want fingerprint error", err)
		}
	})

	t.Run("resume without flag", func(t *testing.T) {
		dir, _ := seedCampaign(t)
		_, err := Run(context.Background(), Config{Spec: quickSpec, Dir: dir})
		if err == nil || !strings.Contains(err.Error(), "already holds checkpointed progress") {
			t.Fatalf("err = %v, want resume-gate error", err)
		}
	})

	t.Run("stray tmp ignored", func(t *testing.T) {
		dir, _ := seedCampaign(t)
		if err := os.WriteFile(filepath.Join(dir, checkpointName+".tmp"), []byte("torn half-write garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := resumeErr(t, dir, quickSpec); err != nil {
			t.Fatalf("stray .tmp must not block resume: %v", err)
		}
	})

	t.Run("missing part artifact", func(t *testing.T) {
		dir, _ := seedCampaign(t)
		if err := os.Remove(partPath(dir, 1)); err != nil {
			t.Fatal(err)
		}
		if err := resumeErr(t, dir, quickSpec); err == nil || !strings.Contains(err.Error(), "artifact is missing") {
			t.Fatalf("err = %v, want missing-artifact error", err)
		}
	})

	t.Run("part size drift", func(t *testing.T) {
		dir, _ := seedCampaign(t)
		f, err := os.OpenFile(partPath(dir, 0), os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.WriteString("extra")
		f.Close()
		if err := resumeErr(t, dir, quickSpec); err == nil || !strings.Contains(err.Error(), "disagree") {
			t.Fatalf("err = %v, want size-mismatch error", err)
		}
	})

	t.Run("part content corruption", func(t *testing.T) {
		dir, _ := seedCampaign(t)
		p := partPath(dir, 0)
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x01 // same size, different bytes
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		err = resumeErr(t, dir, quickSpec)
		if err == nil || !strings.Contains(err.Error(), "does not match its checkpoint entry") {
			t.Fatalf("err = %v, want hash-mismatch error", err)
		}
	})
}

// TestPlanRobustness: plan files live in the same guarded envelope.
func TestPlanRobustness(t *testing.T) {
	t.Run("replan different spec", func(t *testing.T) {
		dir := t.TempDir()
		if _, err := WritePlan(dir, quickSpec, 2); err != nil {
			t.Fatal(err)
		}
		other := quickSpec
		other.Seed = 99
		if _, err := WritePlan(dir, other, 2); err == nil || !strings.Contains(err.Error(), "different plan") {
			t.Fatalf("err = %v, want replan error", err)
		}
	})
	t.Run("replan identical is idempotent", func(t *testing.T) {
		dir := t.TempDir()
		a, err := WritePlan(dir, quickSpec, 2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := WritePlan(dir, quickSpec, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Jobs) != len(b.Jobs) {
			t.Fatalf("idempotent replan changed the split: %d vs %d jobs", len(a.Jobs), len(b.Jobs))
		}
	})
	t.Run("job out of range", func(t *testing.T) {
		dir := t.TempDir()
		if _, err := WritePlan(dir, quickSpec, 2); err != nil {
			t.Fatal(err)
		}
		if _, err := RunJob(context.Background(), dir, 7, JobOptions{}); err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("err = %v, want range error", err)
		}
	})
	t.Run("no plan", func(t *testing.T) {
		if _, err := RunJob(context.Background(), t.TempDir(), 0, JobOptions{}); err == nil {
			t.Fatal("running a job without a plan must fail")
		}
	})
	t.Run("merge incomplete", func(t *testing.T) {
		dir := t.TempDir()
		if _, err := WritePlan(dir, quickSpec, 2); err != nil {
			t.Fatal(err)
		}
		if _, err := RunJob(context.Background(), dir, 0, JobOptions{}); err != nil {
			t.Fatal(err)
		}
		_, err := Merge(context.Background(), quickSpec, dir, "")
		if err == nil || !strings.Contains(err.Error(), "shards incomplete") {
			t.Fatalf("err = %v, want incomplete-merge error", err)
		}
	})
	t.Run("job rerun without resume", func(t *testing.T) {
		dir := t.TempDir()
		if _, err := WritePlan(dir, quickSpec, 2); err != nil {
			t.Fatal(err)
		}
		if _, err := RunJob(context.Background(), dir, 0, JobOptions{}); err != nil {
			t.Fatal(err)
		}
		// Sibling jobs are unaffected by job 0's progress...
		if _, err := RunJob(context.Background(), dir, 1, JobOptions{}); err != nil {
			t.Fatalf("sibling job must start despite job 0's checkpoints: %v", err)
		}
		// ...but rerunning job 0 itself needs the resume flag.
		if _, err := RunJob(context.Background(), dir, 0, JobOptions{}); err == nil || !strings.Contains(err.Error(), "pass Resume") {
			t.Fatalf("err = %v, want job resume-gate error", err)
		}
	})
}

// TestResultsCheckpointRobustness covers the experiment-results variant
// of the guarded envelope.
func TestResultsCheckpointRobustness(t *testing.T) {
	type fake struct {
		ID   string
		N    int
		Text string
	}
	path := filepath.Join(t.TempDir(), "experiments.ckpt")
	fp := Fingerprint("run|seed=7|quick=true")

	c, err := OpenResultsCheckpoint(path, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Record("table3", fake{"table3", 42, "answer"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Record("figure7", fake{"figure7", 7, "plot"}); err != nil {
		t.Fatal(err)
	}

	// Reopen with resume: both results round-trip.
	c2, err := OpenResultsCheckpoint(path, fp, true)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 2 {
		t.Fatalf("reopened checkpoint holds %d results, want 2", c2.Len())
	}
	var got fake
	if ok, err := c2.Lookup("table3", &got); err != nil || !ok || got.N != 42 {
		t.Fatalf("lookup table3 = %+v ok=%v err=%v", got, ok, err)
	}
	if ok, _ := c2.Lookup("nope", &got); ok {
		t.Fatal("lookup of an unknown id must report absent")
	}

	// Without resume, an existing file is an error.
	if _, err := OpenResultsCheckpoint(path, fp, false); err == nil || !strings.Contains(err.Error(), "resume explicitly") {
		t.Fatalf("err = %v, want results resume-gate error", err)
	}
	// A different run fingerprint is an error.
	if _, err := OpenResultsCheckpoint(path, Fingerprint("run|seed=8"), true); err == nil || !strings.Contains(err.Error(), "different campaign spec") {
		t.Fatalf("err = %v, want fingerprint error", err)
	}
}

// TestSummaryStateValidation: corrupted aggregator state fails loudly.
func TestSummaryStateValidation(t *testing.T) {
	sum := fleet.NewSummary(3)
	st := sum.State()
	st.Schema = 99
	if _, err := st.Summary(); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("err = %v, want schema error", err)
	}
	st = sum.State()
	st.DayVolume = st.DayVolume[:1]
	if _, err := st.Summary(); err == nil || !strings.Contains(err.Error(), "day vectors") {
		t.Fatalf("err = %v, want day-vector error", err)
	}
	var h fleet.LogHist
	h.Observe(1024)
	hs := h.State()
	hs.Buckets[0][0] = 9999
	if err := h.Restore(hs); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v, want bucket-range error", err)
	}
}
