package campaign

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"insidedropbox/internal/fleet"
	"insidedropbox/internal/workload"
)

// goldenCampaigns mirrors the five legacy golden stream hashes pinned in
// internal/workload's TestRecordStreamGolden: a campaign's merged CSV
// export (non-anonymized) must reproduce them bit for bit on every path
// — fresh, resumed, multi-job, multi-process. The hashes are the FNV-1a
// of the serialized stream, formatted as manifests format them.
var goldenCampaigns = []struct {
	name string
	spec Spec
	want string
}{
	{"home1-1shard", Spec{VP: "home1", Scale: 0.02, Seed: 7, Shards: 1}, "d01117eb3a234b9d"},
	{"home1-4shard", Spec{VP: "home1", Scale: 0.02, Seed: 7, Shards: 4}, "1887b88d5f86bad5"},
	{"home2-abnormal-1shard", Spec{VP: "home2", Scale: 0.02, Seed: 9, Shards: 1}, "a59024c1345e9efb"},
	{"campus1-1shard", Spec{VP: "campus1", Scale: 0.1, Seed: 7, Shards: 1}, "6e788bc7931c6666"},
	{"campus1-bigchunks-1shard", Spec{VP: "campus1", Scale: 0.1, Seed: 7, Shards: 1, Profile: "big-chunks-16mb"}, "5ffb4eb3ba85ad2b"},
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("campaign run: %v", err)
	}
	return res
}

func readExport(t *testing.T, res *Result) []byte {
	t.Helper()
	data, err := os.ReadFile(res.ExportPath)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCampaignGolden pins the campaign runner to the legacy golden
// stream hashes: generating through per-shard part files and merging in
// canonical order must be byte-equivalent to the direct generation path.
func TestCampaignGolden(t *testing.T) {
	for _, tc := range goldenCampaigns {
		t.Run(tc.name, func(t *testing.T) {
			res := mustRun(t, Config{Spec: tc.spec, Dir: t.TempDir(), Jobs: 2})
			if res.StreamHash != tc.want {
				t.Fatalf("campaign export hash = %s, want %s", res.StreamHash, tc.want)
			}
			if res.GeneratedShards != tc.spec.normalized().Shards || res.ResumedShards != 0 {
				t.Fatalf("fresh run generated %d / resumed %d shards, want %d / 0",
					res.GeneratedShards, res.ResumedShards, tc.spec.normalized().Shards)
			}
			if res.Records != res.Stats.Records {
				t.Fatalf("export carries %d records, generation stats say %d", res.Records, res.Stats.Records)
			}
		})
	}
}

// TestCampaignSummaryMatchesSingleProcess pins the split-state aggregator
// path: per-shard Summary states restored from disk and folded in shard
// order must reproduce the single-process fleet.Summarize aggregate
// exactly, floating point included.
func TestCampaignSummaryMatchesSingleProcess(t *testing.T) {
	spec := Spec{VP: "home1", Scale: 0.02, Seed: 7, Shards: 4}
	res := mustRun(t, Config{Spec: spec, Dir: t.TempDir(), Jobs: 4})

	vp, err := spec.normalized().vpConfig()
	if err != nil {
		t.Fatal(err)
	}
	direct, stats, err := fleet.Summarize(context.Background(), vp, spec.Seed, fleet.Config{Shards: spec.Shards})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != res.Records {
		t.Fatalf("record counts diverge: campaign %d, direct %d", res.Records, stats.Records)
	}
	want, got := direct.Metrics(), res.Summary.Metrics()
	for k, w := range want {
		if g, ok := got[k]; !ok || g != w {
			t.Fatalf("summary metric %q = %v, direct path computed %v", k, got[k], w)
		}
	}
}

// TestCampaignRetryConvergence covers the bounded-retry fix: a shard
// that fails transiently must converge to the same golden hash, and a
// shard that keeps failing must exhaust its attempts loudly.
func TestCampaignRetryConvergence(t *testing.T) {
	spec := Spec{VP: "home1", Scale: 0.02, Seed: 7, Shards: 4}

	attempts := make(map[int]int)
	res := mustRun(t, Config{
		Spec: spec, Dir: t.TempDir(), Jobs: 1,
		Retries: 2, RetryBackoff: 1,
		failShard: func(sh, attempt int) error {
			attempts[sh]++
			if sh == 2 && attempt < 2 {
				return fmt.Errorf("injected transient failure (attempt %d)", attempt)
			}
			return nil
		},
	})
	if want := "1887b88d5f86bad5"; res.StreamHash != want {
		t.Fatalf("export hash after retries = %s, want %s", res.StreamHash, want)
	}
	if attempts[2] != 3 {
		t.Fatalf("shard 2 ran %d attempts, want 3", attempts[2])
	}

	_, err := Run(context.Background(), Config{
		Spec: spec, Dir: t.TempDir(), Jobs: 1,
		Retries: 1, RetryBackoff: 1,
		failShard: func(sh, attempt int) error {
			if sh == 1 {
				return errors.New("injected permanent failure")
			}
			return nil
		},
	})
	if err == nil || !strings.Contains(err.Error(), "after 2 attempts") {
		t.Fatalf("permanently failing shard: err = %v, want attempt-exhaustion error", err)
	}
}

// TestCampaignResumeAfterCancel exercises the soft-interruption path: a
// context cancelled mid-generation leaves checkpointed progress, and a
// resumed run completes to the golden hash without regenerating the
// finished shards.
func TestCampaignResumeAfterCancel(t *testing.T) {
	spec := Spec{VP: "home1", Scale: 0.02, Seed: 7, Shards: 4}
	dir := t.TempDir()

	ctx, cancel := context.WithCancel(context.Background())
	done := 0
	_, err := Run(ctx, Config{
		Spec: spec, Dir: dir, Jobs: 1,
		AfterShard: func(int) {
			done++
			if done == 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: err = %v, want context.Canceled", err)
	}

	res := mustRun(t, Config{Spec: spec, Dir: dir, Jobs: 2, Resume: true})
	if want := "1887b88d5f86bad5"; res.StreamHash != want {
		t.Fatalf("resumed export hash = %s, want %s", res.StreamHash, want)
	}
	if res.ResumedShards == 0 || res.ResumedShards+res.GeneratedShards != 4 {
		t.Fatalf("resumed %d + generated %d shards, want them to partition 4 with a non-empty resume",
			res.ResumedShards, res.GeneratedShards)
	}
}

// TestCampaignSpecValidation covers the loud-failure surface of spec
// resolution.
func TestCampaignSpecValidation(t *testing.T) {
	base := Spec{VP: "home1", Scale: 0.02, Seed: 7, Shards: 1}
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"unknown vp", func(s *Spec) { s.VP = "mars1" }, "unknown vantage point"},
		{"zero scale", func(s *Spec) { s.Scale = 0 }, "scale must be > 0"},
		{"bad format", func(s *Spec) { s.Format = "xml" }, "unknown export format"},
		{"bad profile", func(s *Spec) { s.Profile = "quantum" }, "unknown capability profile"},
		{"too many shards", func(s *Spec) { s.Shards = workload.MaxShards + 1 }, "exceeds the maximum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := base
			tc.mut(&spec)
			_, err := Run(context.Background(), Config{Spec: spec, Dir: t.TempDir()})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
	if _, err := Run(context.Background(), Config{Spec: base}); err == nil || !strings.Contains(err.Error(), "campaign directory") {
		t.Fatalf("missing Dir: err = %v, want directory error", err)
	}
}

// TestFingerprintSensitivity: every byte-affecting spec field must move
// the fingerprint, and normalization-equivalent specs must share it.
func TestFingerprintSensitivity(t *testing.T) {
	base := Spec{VP: "home1", Scale: 0.02, Seed: 7, Shards: 4}
	fp := base.Fingerprint()
	muts := []func(*Spec){
		func(s *Spec) { s.VP = "home2" },
		func(s *Spec) { s.Scale = 0.03 },
		func(s *Spec) { s.Seed = 8 },
		func(s *Spec) { s.Shards = 8 },
		func(s *Spec) { s.DevicesScale = 2 },
		func(s *Spec) { s.Profile = "big-chunks-16mb" },
		func(s *Spec) { s.Format = "binary" },
		func(s *Spec) { s.Anonymize = true },
	}
	for i, mut := range muts {
		spec := base
		mut(&spec)
		if spec.Fingerprint() == fp {
			t.Fatalf("mutation %d did not change the fingerprint", i)
		}
	}
	norm := base
	norm.DevicesScale = 1
	norm.Format = "csv"
	if norm.Fingerprint() != fp {
		t.Fatal("normalization-equivalent specs must share a fingerprint")
	}
}
