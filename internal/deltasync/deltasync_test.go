package deltasync

import (
	"bytes"
	"testing"
	"testing/quick"

	"insidedropbox/internal/chunker"
)

func synth(seed uint64, size int64) []byte {
	return chunker.SyntheticFile{Seed: seed, Size: size}.Generate()
}

func roundTrip(t *testing.T, base, target []byte, blockSize int) *Delta {
	t.Helper()
	sig := NewSignature(base, blockSize)
	d := GenerateDelta(sig, target)
	got, err := Apply(base, sig.BlockSize, d)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if !bytes.Equal(got, target) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(target))
	}
	return d
}

func TestIdenticalFilesTinyDelta(t *testing.T) {
	data := synth(1, 100000)
	d := roundTrip(t, data, data, 0)
	// Only the sub-block tail ships as literal (classic rsync behaviour).
	if d.LiteralBytes >= DefaultBlockSize {
		t.Fatalf("identical content shipped %d literal bytes", d.LiteralBytes)
	}
	if d.WireSize() > d.LiteralBytes+200 {
		t.Fatalf("delta for identical 100 kB file is %d bytes", d.WireSize())
	}
}

func TestAppendOnlyChange(t *testing.T) {
	base := synth(2, 50000)
	target := append(append([]byte(nil), base...), synth(3, 5000)...)
	d := roundTrip(t, base, target, 0)
	if d.LiteralBytes > 5000+DefaultBlockSize {
		t.Fatalf("append-only delta shipped %d literals", d.LiteralBytes)
	}
	if d.MatchedBytes < 48000 {
		t.Fatalf("append-only delta matched only %d bytes", d.MatchedBytes)
	}
}

func TestMiddleEdit(t *testing.T) {
	base := synth(4, 80000)
	target := append([]byte(nil), base...)
	copy(target[40000:40100], bytes.Repeat([]byte{0xFF}, 100))
	d := roundTrip(t, base, target, 0)
	// The edit invalidates at most a couple of blocks.
	if d.LiteralBytes > 3*DefaultBlockSize {
		t.Fatalf("middle edit shipped %d literals", d.LiteralBytes)
	}
}

func TestInsertionShiftsContent(t *testing.T) {
	// Rolling checksum must resynchronize after an unaligned insertion.
	base := synth(5, 60000)
	target := append([]byte(nil), base[:30000]...)
	target = append(target, []byte("INSERTED")...)
	target = append(target, base[30000:]...)
	d := roundTrip(t, base, target, 0)
	if d.MatchedBytes < 50000 {
		t.Fatalf("after insertion matched only %d bytes — rolling resync broken", d.MatchedBytes)
	}
}

func TestCompletelyDifferentContent(t *testing.T) {
	base := synth(6, 20000)
	target := synth(7, 20000)
	d := roundTrip(t, base, target, 0)
	if d.LiteralBytes != 20000 {
		t.Fatalf("unrelated content matched %d bytes", d.MatchedBytes)
	}
}

func TestEmptyCases(t *testing.T) {
	roundTrip(t, nil, synth(8, 1000), 0)             // empty base
	roundTrip(t, synth(9, 1000), nil, 0)             // empty target
	roundTrip(t, nil, nil, 0)                        // both empty
	roundTrip(t, synth(10, 100), synth(10, 100), 64) // tiny with small blocks
}

func TestTargetSmallerThanBlock(t *testing.T) {
	base := synth(11, 10000)
	target := base[:100]
	d := roundTrip(t, base, target, 0)
	if d.LiteralBytes != 100 {
		t.Fatalf("sub-block target: literals = %d", d.LiteralBytes)
	}
}

func TestSignatureStats(t *testing.T) {
	sig := NewSignature(synth(12, 10*DefaultBlockSize+5), 0)
	if sig.Blocks() != 10 {
		t.Fatalf("blocks = %d", sig.Blocks())
	}
	want := 8 + 10*(4+strongLen)
	if sig.WireSize() != want {
		t.Fatalf("sig wire size = %d, want %d", sig.WireSize(), want)
	}
}

func TestApplyRejectsCorruptDeltas(t *testing.T) {
	base := synth(13, 10000)
	sig := NewSignature(base, 0)
	d := GenerateDelta(sig, synth(13, 10000))
	cases := [][]byte{
		{},           // empty
		{opCopy},     // truncated op
		{0x99, 0x01}, // unknown op
		{opLiteral, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}, // absurd literal
		d.Bytes()[:len(d.Bytes())-1],                                      // missing end marker
	}
	for i, c := range cases {
		if _, err := Apply(base, sig.BlockSize, ParseDelta(c)); err == nil {
			t.Fatalf("corrupt delta %d accepted", i)
		}
	}
	// Copy outside base bounds.
	var out []byte
	out = append(out, opCopy, 0xFF, 0x01, 0x01, opEnd)
	if _, err := Apply(base[:100], DefaultBlockSize, ParseDelta(out)); err == nil {
		t.Fatal("out-of-bounds copy accepted")
	}
}

func TestWeakSumRolling(t *testing.T) {
	data := synth(14, 5000)
	const n = 512
	w := newWeakSum(data[0:n])
	for i := 0; i+n < len(data); i++ {
		fresh := newWeakSum(data[i : i+n])
		if w.digest() != fresh.digest() {
			t.Fatalf("rolling diverged at offset %d", i)
		}
		w.roll(data[i], data[i+n])
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seedA, seedB uint64, sizeA, sizeB uint16, mutate bool) bool {
		base := synth(seedA, int64(sizeA)+1)
		var target []byte
		if mutate {
			target = append([]byte(nil), base...)
			if len(target) > 10 {
				target[len(target)/2] ^= 0xFF
			}
			target = append(target, synth(seedB, int64(sizeB%512))...)
		} else {
			target = synth(seedB, int64(sizeB)+1)
		}
		sig := NewSignature(base, 256)
		d := GenerateDelta(sig, target)
		got, err := Apply(base, 256, d)
		return err == nil && bytes.Equal(got, target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaSavesBandwidth(t *testing.T) {
	// The headline purpose: retransmitting a slightly-edited 1 MB file
	// should cost a small fraction of the full size.
	base := synth(15, 1<<20)
	target := append([]byte(nil), base...)
	for i := 0; i < 10; i++ {
		target[i*100000] ^= 0x55
	}
	sig := NewSignature(base, 0)
	d := GenerateDelta(sig, target)
	if d.WireSize() > (1<<20)/10 {
		t.Fatalf("delta = %d bytes for 10 point edits in 1 MB", d.WireSize())
	}
}

func BenchmarkSignature1MB(b *testing.B) {
	data := synth(16, 1<<20)
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		_ = NewSignature(data, 0)
	}
}

func BenchmarkDelta1MBEdit(b *testing.B) {
	base := synth(17, 1<<20)
	target := append([]byte(nil), base...)
	target[500000] ^= 0xAA
	sig := NewSignature(base, 0)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = GenerateDelta(sig, target)
	}
}
