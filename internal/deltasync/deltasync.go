// Package deltasync implements an rsync/librsync-style delta codec: the
// Dropbox client "reduces the amount of exchanged data by using delta
// encoding when transmitting chunks" (Sec. 2.1) via librsync; this package
// provides the same signature / delta / patch pipeline.
//
// The weak checksum is the classic rolling rsync checksum; the strong
// checksum is truncated SHA-256. Deltas serialize to a compact binary
// format so their on-the-wire size is measurable.
package deltasync

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// DefaultBlockSize is the signature block granularity.
const DefaultBlockSize = 2048

// strongLen is the truncated strong-hash length stored per block.
const strongLen = 16

// weakSum is the rolling checksum state over a window of length l:
// a = sum(X_i) mod 2^16, b = sum((l-i)*X_i) mod 2^16, s = a | b<<16.
type weakSum struct {
	a, b uint32
	l    int
}

func newWeakSum(data []byte) weakSum {
	var w weakSum
	w.l = len(data)
	for i, x := range data {
		w.a += uint32(x)
		w.b += uint32(len(data)-i) * uint32(x)
	}
	w.a &= 0xffff
	w.b &= 0xffff
	return w
}

// roll slides the window one byte: drop out, take in.
func (w *weakSum) roll(out, in byte) {
	w.a = (w.a + uint32(in) - uint32(out)) & 0xffff
	w.b = (w.b + w.a - uint32(w.l)*uint32(out)) & 0xffff
}

func (w weakSum) digest() uint32 { return w.a | w.b<<16 }

func strongHash(data []byte) [strongLen]byte {
	full := sha256.Sum256(data)
	var s [strongLen]byte
	copy(s[:], full[:strongLen])
	return s
}

// Signature summarizes a base file for delta generation.
type Signature struct {
	BlockSize int
	blocks    []sigBlock
	byWeak    map[uint32][]int // weak digest -> block indexes
	baseLen   int
}

type sigBlock struct {
	weak   uint32
	strong [strongLen]byte
}

// NewSignature computes the signature of base with the given block size
// (DefaultBlockSize if <= 0).
func NewSignature(base []byte, blockSize int) *Signature {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	s := &Signature{
		BlockSize: blockSize,
		byWeak:    make(map[uint32][]int),
		baseLen:   len(base),
	}
	for off := 0; off+blockSize <= len(base); off += blockSize {
		blk := base[off : off+blockSize]
		w := newWeakSum(blk).digest()
		idx := len(s.blocks)
		s.blocks = append(s.blocks, sigBlock{weak: w, strong: strongHash(blk)})
		s.byWeak[w] = append(s.byWeak[w], idx)
	}
	return s
}

// Blocks returns the number of signature blocks.
func (s *Signature) Blocks() int { return len(s.blocks) }

// WireSize returns the serialized signature size: 8 bytes header plus
// (4 weak + strongLen) per block, matching librsync's layout.
func (s *Signature) WireSize() int { return 8 + len(s.blocks)*(4+strongLen) }

// Op codes in the delta stream.
const (
	opCopy    = 0xC0
	opLiteral = 0x41
	opEnd     = 0x00
)

// Delta is an encoded difference from a base to a target.
type Delta struct {
	buf []byte
	// Literal counts bytes shipped verbatim (diagnostics).
	LiteralBytes int
	// Matched counts bytes reused from the base.
	MatchedBytes int
}

// WireSize returns the serialized delta size.
func (d *Delta) WireSize() int { return len(d.buf) }

// Bytes returns the serialized delta.
func (d *Delta) Bytes() []byte { return d.buf }

// ParseDelta wraps serialized bytes for Apply.
func ParseDelta(data []byte) *Delta { return &Delta{buf: data} }

// GenerateDelta encodes target against the signature of a base.
func GenerateDelta(sig *Signature, target []byte) *Delta {
	d := &Delta{}
	bs := sig.BlockSize
	var lit []byte

	flushLit := func() {
		if len(lit) == 0 {
			return
		}
		d.buf = append(d.buf, opLiteral)
		d.buf = binary.AppendUvarint(d.buf, uint64(len(lit)))
		d.buf = append(d.buf, lit...)
		d.LiteralBytes += len(lit)
		lit = lit[:0]
	}
	emitCopy := func(block, count int) {
		d.buf = append(d.buf, opCopy)
		d.buf = binary.AppendUvarint(d.buf, uint64(block))
		d.buf = binary.AppendUvarint(d.buf, uint64(count))
		d.MatchedBytes += count * bs
	}

	i := 0
	var w weakSum
	haveSum := false
	pendingCopyStart, pendingCopyLen := -1, 0
	for i+bs <= len(target) {
		if !haveSum {
			w = newWeakSum(target[i : i+bs])
			haveSum = true
		}
		match := -1
		if idxs, ok := sig.byWeak[w.digest()]; ok {
			strong := strongHash(target[i : i+bs])
			for _, idx := range idxs {
				if sig.blocks[idx].strong == strong {
					match = idx
					break
				}
			}
		}
		if match >= 0 {
			flushLit()
			if pendingCopyStart >= 0 && match == pendingCopyStart+pendingCopyLen {
				pendingCopyLen++
			} else {
				if pendingCopyStart >= 0 {
					emitCopy(pendingCopyStart, pendingCopyLen)
				}
				pendingCopyStart, pendingCopyLen = match, 1
			}
			i += bs
			haveSum = false
		} else {
			if pendingCopyStart >= 0 {
				emitCopy(pendingCopyStart, pendingCopyLen)
				pendingCopyStart = -1
			}
			lit = append(lit, target[i])
			if i+bs < len(target) {
				w.roll(target[i], target[i+bs])
			} else {
				haveSum = false // window hit the end; loop exits next check
			}
			i++
		}
	}
	if pendingCopyStart >= 0 {
		emitCopy(pendingCopyStart, pendingCopyLen)
	}
	lit = append(lit, target[i:]...)
	flushLit()
	d.buf = append(d.buf, opEnd)
	return d
}

// Apply reconstructs the target from the base and a delta.
func Apply(base []byte, sigBlockSize int, d *Delta) ([]byte, error) {
	if sigBlockSize <= 0 {
		sigBlockSize = DefaultBlockSize
	}
	var out []byte
	buf := d.buf
	for {
		if len(buf) == 0 {
			return nil, errors.New("deltasync: truncated delta (missing end op)")
		}
		op := buf[0]
		buf = buf[1:]
		switch op {
		case opEnd:
			return out, nil
		case opCopy:
			block, n := binary.Uvarint(buf)
			if n <= 0 {
				return nil, errors.New("deltasync: bad copy block")
			}
			buf = buf[n:]
			count, n := binary.Uvarint(buf)
			if n <= 0 {
				return nil, errors.New("deltasync: bad copy count")
			}
			buf = buf[n:]
			start := int(block) * sigBlockSize
			end := start + int(count)*sigBlockSize
			if start < 0 || end > len(base) || end < start {
				return nil, fmt.Errorf("deltasync: copy [%d:%d] outside base of %d", start, end, len(base))
			}
			out = append(out, base[start:end]...)
		case opLiteral:
			length, n := binary.Uvarint(buf)
			if n <= 0 {
				return nil, errors.New("deltasync: bad literal length")
			}
			buf = buf[n:]
			if uint64(len(buf)) < length {
				return nil, errors.New("deltasync: literal exceeds delta")
			}
			out = append(out, buf[:length]...)
			buf = buf[length:]
		default:
			return nil, fmt.Errorf("deltasync: unknown op 0x%02x", op)
		}
	}
}
